//! # Concurrent Generators
//!
//! A Rust reproduction of *Embedding Concurrent Generators* (Peter Mills and
//! Clinton Jeffery, IPDPS HIPS 2016): a model of explicit concurrency for
//! Icon/Unicon-style generators based on co-expressions and multithreaded
//! generator proxies ("pipes"), together with the mixed-language embedding
//! toolchain (scoped annotations, generator flattening, interpretation and
//! transpilation) the paper builds around it.
//!
//! This facade crate re-exports the workspace members under one roof:
//!
//! | Module | Crate | Paper section |
//! |---|---|---|
//! | [`gde`] | goal-directed evaluation runtime | Sec. II, V.B |
//! | [`coexpr`] | co-expressions (`|<>e`, `@`, `^`, `!`) | Sec. III.A |
//! | [`pipes`] | generator proxies (`|>e`) over blocking queues | Sec. III.B |
//! | [`mapreduce`] | chunking, DataParallel map-reduce, pipelines | Sec. IV, Fig. 4 |
//! | [`junicon`] | scoped annotations, normalization, interpreter, transpiler | Secs. IV–VI |
//! | [`bigint`] | arbitrary-precision arithmetic substrate | Sec. VII |
//! | [`blockingq`] | blocking queues, MVars, futures | Sec. III.B |
//! | [`exec`] | thread pool substrate | Sec. V.D |
//! | [`wordcount`] | the Fig. 3 / Fig. 6 evaluation workload | Sec. VII |
//!
//! ## Quickstart
//!
//! The paper's opening example — multiples of primes via goal-directed
//! evaluation, `(1 to 2) * isprime(4 to 7)` — in the combinator API:
//!
//! ```
//! use concurrent_generators::gde::{Gen, Step, Value};
//! use concurrent_generators::gde::comb::{to_range, filter_map, product_map};
//!
//! // isprime(x): produce x if prime, else fail.
//! let isprime = |v: &Value| match v.as_int() {
//!     Some(n) if (2..n).all(|d| n % d != 0) && n >= 2 => Some(v.clone()),
//!     _ => None,
//! };
//! let mut g = product_map(
//!     to_range(1, 2, 1),
//!     move |_| Box::new(filter_map(to_range(4, 7, 1), isprime)),
//!     |i, j| Some(Value::from(i.as_int().unwrap() * j.as_int().unwrap())),
//! );
//! let mut results = Vec::new();
//! while let Step::Suspend(v) = g.resume() {
//!     results.push(v.as_int().unwrap());
//! }
//! assert_eq!(results, vec![5, 7, 10, 14]); // 1*5, 1*7, 2*5, 2*7
//! ```

pub use bigint;
pub use blockingq;
pub use coexpr;
pub use exec;
pub use gde;
pub use junicon;
pub use mapreduce;
pub use obs;
pub use pipes;
pub use wordcount;
