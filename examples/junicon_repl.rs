//! An interactive Junicon REPL — the paper's "capability for interactive
//! evaluation ... enables exploration and rapid prototyping" (Sec. I), the
//! Groovy path of the harness.
//!
//! Run with: `cargo run --example junicon_repl`
//!
//! ```text
//! junicon> (1 to 3) * (1 to 3)
//! 1 | 2 | 3 | 2 | 4 | 6 | 3 | 6 | 9
//! junicon> def fact(n) { if n <= 1 then return 1; return n * fact(n - 1); }
//! loaded.
//! junicon> fact(20)
//! 2432902008176640000
//! junicon> :quit
//! ```

use concurrent_generators::junicon::Interp;
use std::io::{BufRead, Write};

fn main() {
    let interp = Interp::new().with_echo(true);
    let stdin = std::io::stdin();
    let mut stdout = std::io::stdout();
    println!(
        "junicon repl — generator expressions, def f(...) {{...}}, :quit to exit\n\
         results print as  v1 | v2 | ...  ; a failing expression prints (fail)"
    );
    loop {
        print!("junicon> ");
        stdout.flush().expect("flush prompt");
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(e) => {
                eprintln!("read error: {e}");
                break;
            }
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if line == ":quit" || line == ":q" {
            break;
        }
        // Declarations load; expressions evaluate and print all results.
        if line.starts_with("def ") || line.starts_with("procedure ") || line.starts_with("class ")
        {
            match interp.load(line) {
                Ok(()) => println!("loaded."),
                Err(e) => println!("error: {e}"),
            }
            continue;
        }
        match interp.eval(line) {
            Ok(results) if results.is_empty() => println!("(fail)"),
            Ok(results) => {
                let rendered: Vec<String> = results.iter().map(|v| v.to_string()).collect();
                println!("{}", rendered.join(" | "));
            }
            Err(e) => println!("error: {e}"),
        }
    }
    println!("bye.");
}
