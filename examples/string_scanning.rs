//! String scanning — "such search has particular application in string
//! processing, the forte of Icon and Unicon" (Sec. II.A).
//!
//! Demonstrates the scanning environment `s ? expr`, the positional
//! builtins `tab`/`move`/`upto`/`many`/`find`/`match`, the `&subject` and
//! `&pos` keywords, and a scanning tokenizer running *inside a pipe* on
//! another thread (the scan environment is thread-local).
//!
//! Run with: `cargo run --example string_scanning`

use concurrent_generators::junicon::Interp;

fn show(i: &Interp, expr: &str) {
    let rendered: Vec<String> = i
        .eval(expr)
        .expect("valid expression")
        .iter()
        .map(|v| v.to_string())
        .collect();
    println!("  {expr:<52} => [{}]", rendered.join(", "));
}

fn main() {
    let i = Interp::new();

    println!("basics: tab moves &pos and returns the span");
    show(&i, r#""generators" ? tab(4)"#);
    show(&i, r#""generators" ? { tab(4); &pos }"#);
    show(&i, r#""generators" ? { move(3); tab(0) }"#);

    println!("\nsearch functions use the implicit subject inside a scan");
    show(&i, r#""misty isles" ? find("is")"#);
    show(&i, r#""strength" ? upto("aeiou")"#);

    println!("\nthe canonical Icon tokenizer");
    i.load(
        r#"
        def tokens(s) {
            local letters;
            letters := "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789";
            s ? {
                while tab(upto(letters)) do {
                    suspend tab(many(letters));
                };
            };
        }
        "#,
    )
    .expect("tokenizer loads");
    show(&i, r#"tokens("goal-directed evaluation, 2016!")"#);

    println!("\ntokenizing on another thread (scan env is thread-local)");
    show(&i, r#"! (|> tokens("pipes and scans compose"))"#);

    println!("\nscans nest; the outer environment is restored at suspensions");
    show(&i, r#""outer" ? { tab(3); ("in" ? tab(2)) & &pos }"#);

    // Cross-check the tokenizer against Rust's splitter.
    let words = i
        .eval(r#"tokens("the quick brown fox")"#)
        .expect("tokenize");
    let got: Vec<String> = words.iter().map(|v| v.to_string()).collect();
    assert_eq!(got, vec!["the", "quick", "brown", "fox"]);
    println!("\ntokenizer agrees with the reference ✓");
}
