//! Deterministic batching observability demo.
//!
//! Runs a *single-threaded*, fixed choreography of batch queue operations
//! — straddling `put_all`s, bounded `take_batch`es, whole-buffer drains,
//! a refused over-capacity `try_put_all` — and prints the resulting
//! process-wide `obs` snapshot. Because no schedule nondeterminism is
//! involved, **two runs of this example print byte-identical output**;
//! `scripts/examples_smoke.sh` exploits that to pin the
//! `blockingq.queue.batch_fill` accounting (chunk sizes, counts, and the
//! batch_puts/batch_takes split) against accidental drift.
//!
//! Run with: `cargo run --example obs_batching`

use concurrent_generators::blockingq::BlockingQueue;
use concurrent_generators::obs;

fn main() {
    let q: BlockingQueue<u32> = BlockingQueue::bounded(8);

    // Two clean batch puts: fills 5 and 3 (queue now exactly full).
    q.put_all((0..5).collect()).expect("open");
    q.put_all((5..8).collect()).expect("open");

    // A full queue refuses a non-blocking batch outright: no fill recorded.
    let refused = q.try_put_all(vec![99; 4]).is_err();

    // Bounded batch take (4) then a whole-buffer drain (4).
    let first = q.take_batch(4).expect("data").len();
    let mut buf = Vec::new();
    let drained = q.drain_into(&mut buf);

    // An over-capacity non-blocking batch accepts the fitting prefix (8)
    // and refunds the rest.
    let refund = match q.try_put_all((100..110).collect()) {
        Err(concurrent_generators::blockingq::TryPutError::Full(rest)) => rest.len(),
        _ => 0,
    };

    // Empty the queue again: a capped take (3) and a final drain (5).
    let second = q.take_batch(3).expect("data").len();
    let tail = q.drain_into(&mut buf);
    q.close();

    println!(
        "choreography: refused={refused} take1={first} drain1={drained} \
         refund={refund} take2={second} drain2={tail}"
    );
    // The snapshot is sorted and rendered deterministically; with the
    // `obs` feature off it is simply empty (and still deterministic).
    print!("{}", obs::snapshot().render_text());
}
