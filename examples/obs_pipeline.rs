//! Observability demo: instrument a threaded pipeline and a fan-in merge.
//!
//! Builds the Fig. 2-style `Pipeline` (each stage a producer thread over a
//! blocking queue) plus a `pipes::merge` fan-in, drains both, then prints
//! the process-wide `obs` registry snapshot. Every queue put/take, pipe
//! item, and merge arrival seen below happened on the real runtime hot
//! paths — the demo only *reads* the counters at the end.
//!
//! Run with: `cargo run --example obs_pipeline`

use concurrent_generators::gde::comb::to_range;
use concurrent_generators::gde::{ops, BoxGen, GenExt, Value};
use concurrent_generators::mapreduce::Pipeline;
use concurrent_generators::obs;
use concurrent_generators::pipes::merge;

fn main() {
    // Stage 1: a three-hop threaded pipeline: 1..=64, squared, +1.
    let mut g = Pipeline::from(|| Box::new(to_range(1, 64, 1)) as BoxGen)
        .with_capacity(8)
        .stage(|v| ops::mul(v, v))
        .stage(|v| ops::add(v, &Value::from(1)))
        .build();
    let piped = g.collect_values();
    println!(
        "pipeline produced {} values (last = {:?})",
        piped.len(),
        piped.last()
    );

    // Stage 2: fan-in — three producer threads merged into one stream.
    let sources: Vec<Box<dyn Fn() -> BoxGen + Send + Sync>> = (0..3)
        .map(|k| {
            let lo = k * 100 + 1;
            Box::new(move || Box::new(to_range(lo, lo + 19, 1)) as BoxGen)
                as Box<dyn Fn() -> BoxGen + Send + Sync>
        })
        .collect();
    let merged = merge(sources, 4).collect_values();
    println!("merge produced {} values from 3 sources", merged.len());

    // Everything above was instrumented as a side effect; read it back.
    let snap = obs::snapshot();
    println!("\nRuntime observability snapshot:");
    for line in snap.render_text().lines() {
        println!("  {line}");
    }

    // The results must be right in either build; the counters only exist
    // when instrumentation is compiled in (the root `obs` feature).
    assert_eq!(piped.len(), 64);
    assert_eq!(merged.len(), 60);
    if cfg!(feature = "obs") {
        assert!(snap.counter("pipes.pipe.items").unwrap_or(0) >= 64 * 2);
        assert_eq!(snap.counter("pipes.fan.merge_sources"), Some(3));
        assert_eq!(snap.counter("pipes.fan.merge_items"), Some(60));
        assert!(snap.counter("blockingq.queue.puts").unwrap_or(0) > 0);
        println!("\nok: counters match the work performed");
    } else {
        assert!(snap.rows().is_empty(), "uninstrumented build metered work");
        println!("\nok: results verified (instrumentation compiled out)");
    }
}
