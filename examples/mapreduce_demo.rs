//! Building map-reduce from concurrent generators (Fig. 4).
//!
//! Shows the same higher-order abstraction three ways:
//!  1. the `mapreduce` library crate (`DataParallel`), i.e. the refined
//!     Rust implementation;
//!  2. the Fig. 4 Junicon source (`chunk` + `mapReduce`) executed by the
//!     interpreter, spawning a real pipe thread per chunk;
//!  3. a plain sequential fold, as the correctness reference.
//!
//! Run with: `cargo run --example mapreduce_demo`

use concurrent_generators::gde::comb::to_range;
use concurrent_generators::gde::{GenExt, Value};
use concurrent_generators::junicon::Interp;
use concurrent_generators::mapreduce::DataParallel;

const FIGURE4_SOURCE: &str = r#"
    def chunk(e) {
        local c;
        c := [];
        while put(c, @e) do {
            if *c >= 25 then { suspend c; c := []; };
        };
        if *c > 0 then { return c; };
    }
    def mapReduce(f, s, r, i) {
        local c, t, tasks;
        tasks := [];
        every c := chunk(s) do {
            t := |> { local x; x := i; every x := r(x, f(!c)); x };
            tasks::add(t);
        };
        suspend ! (! tasks);
    }
    def square(x) { return x * x; }
    def add(a, b) { return a + b; }
"#;

fn main() {
    let n = 200i64;
    let reference: i64 = (1..=n).map(|i| i * i).sum();

    // 1. The library: DataParallel over a generator source, pool-backed.
    let dp = DataParallel::new(25);
    let mut partials = dp.map_reduce(
        |v| concurrent_generators::gde::ops::mul(v, v),
        to_range(1, n, 1),
        |acc, v| concurrent_generators::gde::ops::add(&acc, &v),
        Value::from(0),
    );
    let lib_total: i64 = partials
        .collect_values()
        .iter()
        .map(|v| v.as_int().unwrap())
        .sum();
    println!("library DataParallel:   sum of squares 1..{n} = {lib_total}");
    assert_eq!(lib_total, reference);

    // 2. The Fig. 4 source, interpreted: chunk + pipe-per-chunk + ordered
    //    promotion of the task results.
    let interp = Interp::new();
    interp.load(FIGURE4_SOURCE).expect("figure 4 source");
    let partials = interp
        .eval(&format!("mapReduce(square, <> (1 to {n}), add, 0)"))
        .expect("mapReduce runs");
    let junicon_total: i64 = partials.iter().map(|v| v.as_int().unwrap()).sum();
    println!(
        "figure-4 junicon:       {} chunk partial(s), total = {junicon_total}",
        partials.len()
    );
    assert_eq!(junicon_total, reference);

    // 3. Reference.
    println!("sequential reference:   {reference}");
    println!("all totals agree ✓");
}
