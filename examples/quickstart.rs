//! Quickstart: goal-directed evaluation in five minutes.
//!
//! Reproduces Sec. II of the paper — every expression is a generator, and
//! nested generators compose by backtracking search — first through the
//! `gde` combinator API (what transpiled code builds), then through the
//! Junicon interpreter (the interactive path).
//!
//! Run with: `cargo run --example quickstart`

use concurrent_generators::gde::comb::{filter_map, product_map, to_range};
use concurrent_generators::gde::{GenExt, Value};
use concurrent_generators::junicon::Interp;

fn main() {
    // ---------------------------------------------------------------
    // The paper's opening example:  (1 to 2) * isprime(4 to 7)
    // isprime(x) produces x if prime, otherwise *fails*; the product
    // searches the cross product and yields only successful results.
    // ---------------------------------------------------------------
    let isprime = |v: &Value| {
        let n = v.as_int()?;
        if n >= 2 && (2..n).all(|d| n % d != 0) {
            Some(v.clone())
        } else {
            None
        }
    };
    let mut g = product_map(
        to_range(1, 2, 1),
        move |_| Box::new(filter_map(to_range(4, 7, 1), isprime)),
        concurrent_generators::gde::ops::mul,
    );
    let results: Vec<i64> = g
        .collect_values()
        .iter()
        .map(|v| v.as_int().unwrap())
        .collect();
    println!("(1 to 2) * isprime(4 to 7)  =  {results:?}");
    assert_eq!(results, vec![5, 7, 10, 14]); // 1*5, 1*7, 2*5, 2*7

    // ---------------------------------------------------------------
    // The same expression through the embedded-language interpreter.
    // ---------------------------------------------------------------
    let interp = Interp::new();
    let via_junicon: Vec<i64> = interp
        .eval("(1 to 2) * isprime(4 to 7)")
        .expect("valid junicon")
        .iter()
        .map(|v| v.as_int().unwrap())
        .collect();
    println!("same, interpreted junicon   =  {via_junicon:?}");
    assert_eq!(via_junicon, results);

    // ---------------------------------------------------------------
    // Goal-directed comparisons: `<` succeeds producing its right
    // operand, or fails — so comparisons filter inside generators.
    // ---------------------------------------------------------------
    let evens = interp
        .eval("every x := 1 to 10 do write(x % 2 = 0)")
        .unwrap();
    drop(evens);
    println!(
        "writes of x%2=0 over 1..10  =  {:?}  (only even x succeed)",
        interp.output()
    );

    // ---------------------------------------------------------------
    // Generator functions: suspend yields a sequence across calls.
    // ---------------------------------------------------------------
    interp
        .load("def squares(n) { suspend (1 to n) * (1 to n); }")
        .unwrap();
    let sq: Vec<i64> = interp
        .eval("squares(3) \\ 5") // limitation: first five results
        .unwrap()
        .iter()
        .map(|v| v.as_int().unwrap())
        .collect();
    println!("squares(3) limited to 5     =  {sq:?}");

    // ---------------------------------------------------------------
    // And concurrency: a pipe (|>) runs the generator on its own
    // thread; ! promotes the proxy back into this thread's iteration.
    // ---------------------------------------------------------------
    let piped: Vec<i64> = interp
        .eval("! (|> (1 to 5))")
        .unwrap()
        .iter()
        .map(|v| v.as_int().unwrap())
        .collect();
    println!("! (|> (1 to 5))             =  {piped:?}  (produced on another thread)");
    assert_eq!(piped, vec![1, 2, 3, 4, 5]);
}
