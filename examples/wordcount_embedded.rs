//! The Fig. 3 program, end to end: mixed-language embedding of concurrent
//! generators into a host program.
//!
//! The embedded source below is (modulo the Unicon-subset syntax) the
//! WordCount class of Fig. 3: `readLines` / `splitWords` / `hashWords` as
//! Junicon generator functions, `wordToNumber` / `hashNumber` as *host*
//! (Rust) natives reached through `::` invocation, and a `runPipeline`
//! whose hash stage is spun onto a separate thread with `|>`.
//!
//! One syntactic deviation from Fig. 3: the paper's Junicon exposes method
//! invocations as iterator *objects* that must be unravelled with `!`
//! (`!splitWords(line)`); this reproduction follows real Icon, where an
//! invocation generates its results directly, so the `!` is dropped
//! (`!` on a string would generate its one-character substrings).
//!
//! Run with: `cargo run --example wordcount_embedded`

use concurrent_generators::bigint::BigUint;
use concurrent_generators::gde::{GenExt, Value};
use concurrent_generators::junicon::mixed::run_mixed;
use concurrent_generators::junicon::Interp;
use concurrent_generators::wordcount::{native, Corpus, Weight};

const MIXED_SOURCE: &str = r#"
// ---- host Rust above; embedded Junicon below -------------------------
@<script lang="junicon">
    def readLines() { suspend !lines; }
    def splitWords(line) { suspend ! line::split("\\s+"); }
    def hashWords(line) {
        suspend this::hashNumber(this::wordToNumber( splitWords(line) ));
    }
@</script>
"#;

fn main() {
    let corpus = Corpus::generate(200, 8, 2016);

    // Host side: register the computational natives (Fig. 3's
    // wordToNumber / hashNumber Java methods) and the shared `lines`.
    let interp = Interp::new();
    interp.globals().declare("lines", corpus.as_value());
    interp.globals().declare("this", Value::Null);
    interp.register_native("wordToNumber", |_this, args| {
        let word = args.first()?.as_str()?;
        BigUint::from_str_radix(word, 36)
            .ok()
            .map(|n| Value::big(n.into()))
    });
    interp.register_native("hashNumber", |_this, args| {
        let n = args.first()?;
        let mag = match n.deref() {
            Value::Int(i) if i >= 0 => i as f64,
            Value::Big(b) => b.to_f64(),
            _ => return None,
        };
        Some(Value::Real(mag.sqrt()))
    });

    // Load the embedded regions out of the mixed source.
    let regions = run_mixed(MIXED_SOURCE, &interp).expect("valid mixed source");
    println!("loaded {regions} embedded junicon region(s)");

    // runPipeline: iterate the embedded generator expression from the
    // host, exactly Fig. 3's `for (Object i : @<script> ... @</script>)`.
    // The |> pipes the wordToNumber stage onto its own thread.
    let mut total = 0.0;
    let g = interp
        .gen("this::hashNumber( ! (|> this::wordToNumber( splitWords(readLines()))))")
        .expect("pipeline expression");
    for v in concurrent_generators::gde::GenIter(g) {
        total += v.as_real().unwrap_or(0.0);
    }
    println!("embedded pipeline total hash  = {total:.3}");

    // The simpler per-line generator function route.
    let mut total2 = 0.0;
    let mut g2 = interp.gen("hashWords(readLines())").expect("hashWords");
    while let Some(v) = g2.next_value() {
        total2 += v.as_real().unwrap_or(0.0);
    }
    println!("embedded hashWords total hash = {total2:.3}");

    // Cross-check against the native Rust suite.
    let reference = native::sequential(corpus.lines(), Weight::Light);
    println!("native sequential total hash  = {reference:.3}");
    assert!((total - reference).abs() < reference * 1e-9);
    assert!((total2 - reference).abs() < reference * 1e-9);
    println!("all three totals agree ✓");
}
