//! Observability demo: the Fig. 6 word-count cells, metered.
//!
//! Runs a few cells of the evaluation matrix (both suites, several
//! variants) on a small corpus, then prints the `obs` snapshot: queue
//! traffic, pool utilization, chunk counts, and per-cell wall-time
//! percentiles — the same numbers `figure6 --json` embeds in its output.
//!
//! Run with: `cargo run --example obs_wordcount`

use concurrent_generators::obs;
use concurrent_generators::wordcount::{run_cell, Corpus, Suite, Variant, Weight};

fn main() {
    let corpus = Corpus::generate(400, 12, 42);
    println!(
        "corpus: {} lines, {} words",
        corpus.lines().len(),
        corpus.word_count()
    );

    let variants = [
        Variant::Sequential,
        Variant::DataParallel,
        Variant::MapReduce,
    ];
    let mut reference = None;
    for suite in [Suite::Native, Suite::Embedded] {
        for variant in variants {
            let total = run_cell(suite, variant, &corpus, Weight::Light);
            println!(
                "  {:<8} {:<13} total = {total}",
                suite.name(),
                variant.name()
            );
            // Every cell computes the same hash up to float summation
            // order; the variants differ only in how the work is
            // scheduled, so the totals must agree to relative precision.
            match reference {
                None => reference = Some(total),
                Some(r) => assert!(
                    ((total - r) / r).abs() < 1e-9,
                    "variant disagreed on the hash: {total} vs {r}"
                ),
            }
        }
    }

    let snap = obs::snapshot();
    println!("\nRuntime observability snapshot:");
    for line in snap.render_text().lines() {
        println!("  {line}");
    }

    // Six cells ran; the parallel ones exercised the pool and the queues.
    // The counters only exist when instrumentation is compiled in (the
    // root `obs` feature); the cell agreement above holds either way.
    if cfg!(feature = "obs") {
        assert_eq!(snap.counter("wordcount.cells"), Some(6));
        assert!(snap.counter("mapreduce.chunks").unwrap_or(0) > 0);
        assert!(snap.counter("exec.pool.tasks_run").unwrap_or(0) > 0);
        assert!(snap.counter("blockingq.queue.takes").unwrap_or(0) > 0);
        println!("\nok: all six cells agree and the runtime was metered");
    } else {
        assert!(snap.rows().is_empty(), "uninstrumented build metered work");
        println!("\nok: all six cells agree (instrumentation compiled out)");
    }
}
