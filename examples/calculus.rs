//! A tour of the calculus for concurrent generators (Fig. 1).
//!
//! ```text
//! <> e    first-class generator
//! |<> e   co-expression that shadows the local environment
//! |> e    generator proxy that runs in a separate thread
//! @ c     next: step co-expression one iteration
//! ! c     promote co-expression to a generator
//! ^ c     restart with a new copy of the local environment
//! ```
//!
//! Run with: `cargo run --example calculus`

use concurrent_generators::junicon::Interp;

fn show(interp: &Interp, expr: &str) {
    let results = interp.eval(expr).expect("valid expression");
    let rendered: Vec<String> = results.iter().map(|v| v.to_string()).collect();
    println!("  {expr:<28} => [{}]", rendered.join(", "));
}

fn main() {
    let i = Interp::new();

    println!("<> e : first-class generators are explicitly stepped with @");
    i.eval("c := <> (1 to 3)").unwrap();
    show(&i, "@c");
    show(&i, "@c");
    show(&i, "@c");
    show(&i, "@c"); // exhausted: fails, producing nothing

    println!("\n^ c : refresh rewinds to a fresh copy of the creation state");
    i.eval("d := ^c").unwrap();
    show(&i, "@d"); // starts over at 1

    println!("\n|<> e : co-expressions shadow their environment");
    i.eval("x := 10").unwrap();
    i.eval("cap := |<> (x * 100)").unwrap();
    i.eval("x := 99").unwrap(); // later mutation is invisible to cap
    show(&i, "@cap"); // 1000, not 9900

    println!("\n! c : promotion turns a co-expression back into a generator");
    i.eval("e := <> ((1 to 3) * 7)").unwrap();
    show(&i, "!e");

    println!("\n|> e : pipes run the generator on another thread");
    show(&i, "! (|> (1 to 4))");
    // pipes compose: x * !|>(...) is the paper's parallel pipelining form
    show(&i, "(10 | 20) * ! (|> (1 to 2))");

    println!("\n*c counts results produced so far");
    i.eval("f := <> (1 to 100)").unwrap();
    i.eval("@f").unwrap();
    i.eval("@f").unwrap();
    show(&i, "*f");

    println!("\nsingleton pipes are futures: |> of a one-result expression");
    show(&i, "@ (|> (6 * 7))");
}
