//! The compilation path: transpile a mixed-language source to Rust.
//!
//! Prints the generated Rust for the paper's Fig. 5 example (`spawnMap`)
//! and for a whole mixed file, demonstrating the migration pipeline:
//! scoped annotations → metaparse → normalize (generator flattening) →
//! emit Rust targeting the `gde`/`junicon::rt` kernel.
//!
//! Run with: `cargo run --example transpile`

use concurrent_generators::junicon::emit::emit_program_source;
use concurrent_generators::junicon::mixed::transpile_mixed;

fn main() {
    // ------------------------------------------------------------------
    // Fig. 5: def spawnMap (f, chunk) { suspend ! (|> f(!chunk)); }
    // ------------------------------------------------------------------
    let fig5 = "def spawnMap(f, chunk) { suspend ! (|> f(!chunk)); }";
    println!("==== junicon source =================================================");
    println!("{fig5}\n");
    println!("==== generated Rust (the Fig. 5 analogue) ===========================");
    println!("{}", emit_program_source(fig5).expect("valid source"));

    // ------------------------------------------------------------------
    // A whole mixed file: host text passes through, embedded regions are
    // replaced by generated modules.
    // ------------------------------------------------------------------
    let mixed = r#"
// Host Rust:
fn host_helper() -> i64 { 41 }

@<script lang="junicon">
    def upto(n) { suspend 1 to n; }
@</script>

// More host Rust below.
"#;
    println!("==== mixed-language input ===========================================");
    println!("{mixed}");
    println!("==== transpiled output ==============================================");
    println!("{}", transpile_mixed(mixed).expect("valid mixed source"));
}
