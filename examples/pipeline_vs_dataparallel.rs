//! Fig. 2: the pipeline model vs the data-parallel model, expressed with
//! concurrent generators.
//!
//! ```text
//! Pipeline       f(! |> s)                         — fixed code: a stage per thread
//! Data parallel  every (c = chunk(s)) |> f(!c)     — fixed data: a chunk per thread
//! ```
//!
//! Both compute the same word-count hash; this example runs each (plus a
//! sequential baseline) and reports wall-clock times so the coordination
//! structure is visible.
//!
//! Run with: `cargo run --release --example pipeline_vs_dataparallel`

use concurrent_generators::wordcount::{embedded, native, Corpus, Weight};
use std::time::Instant;

fn timed<T>(label: &str, f: impl FnOnce() -> T) -> T {
    let t0 = Instant::now();
    let out = f();
    println!("  {label:<38} {:>10.2?}", t0.elapsed());
    out
}

fn main() {
    let corpus = Corpus::generate(2_000, 10, 7);
    println!(
        "word-count over {} lines / {} words (heavyweight hash nodes)\n",
        corpus.lines().len(),
        corpus.word_count()
    );
    let weight = Weight::Heavy;

    println!("embedded concurrent generators:");
    let seq = timed("sequential  f(s)", || embedded::sequential(&corpus, weight));
    let pipe = timed("pipeline    f(! |> s)", || {
        embedded::pipeline(&corpus, weight)
    });
    let dp = timed("data-par    every (c=chunk(s)) |> f(!c)", || {
        embedded::data_parallel(&corpus, weight)
    });
    let mr = timed("map-reduce  (Fig. 4 DataParallel)", || {
        embedded::map_reduce(&corpus, weight)
    });

    println!("\nnative Rust suite:");
    let nseq = timed("sequential", || native::sequential(corpus.lines(), weight));
    timed("pipeline (BlockingQueue, 2 threads)", || {
        native::pipeline(corpus.lines(), weight)
    });
    timed("map-reduce (thread pool)", || {
        native::map_reduce(corpus.lines(), weight)
    });

    // Every structure computes the same total.
    for (label, v) in [
        ("pipeline", pipe),
        ("data-parallel", dp),
        ("map-reduce", mr),
    ] {
        assert!(
            (v - seq).abs() < seq.abs() * 1e-9,
            "{label} diverged: {v} vs {seq}"
        );
    }
    assert!((nseq - seq).abs() < seq.abs() * 1e-9);
    println!("\nall totals agree ✓  (total hash = {seq:.3})");
    println!(
        "\nnote: on a single-core machine the parallel forms show coordination \
         overhead only; on multi-core they overtake sequential as in Fig. 6."
    );
}
