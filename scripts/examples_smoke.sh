#!/usr/bin/env bash
# Smoke-run every example in examples/ (ISSUE 1 satellite; hardened in
# ISSUE 2 to fail fast).
#
# Each example must exit 0 within the timeout. The interactive
# `junicon_repl` is driven with a scripted session on stdin (it exits
# cleanly on `:quit` / EOF). Everything runs `--offline`: the workspace is
# hermetic and must never need the registry (see DESIGN.md § "Hermetic
# build").
#
# The script stops at the FIRST failing example and names it, so CI logs
# point straight at the culprit instead of burying it in a summary.
set -euo pipefail
cd "$(dirname "$0")/.."

TIMEOUT="${EXAMPLES_SMOKE_TIMEOUT:-120}"
PROFILE_FLAG="${EXAMPLES_SMOKE_PROFILE:---release}"

echo "== building examples ($PROFILE_FLAG, offline)"
cargo build --offline "$PROFILE_FLAG" --examples

run() {
    local name="$1"
    shift
    echo "== example: $name"
    timeout "$TIMEOUT" cargo run --offline "$PROFILE_FLAG" --quiet --example "$name" -- "$@" \
        > /dev/null
}

for src in examples/*.rs; do
    name="$(basename "$src" .rs)"
    case "$name" in
        junicon_repl)
            echo "== example: junicon_repl (scripted session)"
            printf 'write(1 to 3)\nevery i := 1 to 3 do write(i * i)\n:quit\n' \
                | timeout "$TIMEOUT" cargo run --offline "$PROFILE_FLAG" --quiet --example junicon_repl \
                > /dev/null || { echo "examples smoke: FAILED at example 'junicon_repl'"; exit 1; }
            ;;
        *)
            run "$name" || { echo "examples smoke: FAILED at example '$name'"; exit 1; }
            ;;
    esac
done

echo "examples smoke: all examples ran cleanly"
