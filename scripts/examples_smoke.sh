#!/usr/bin/env bash
# Smoke-run every example in examples/ (ISSUE 1 satellite; hardened in
# ISSUE 2 to fail fast; ISSUE 3 runs the suite in BOTH observability
# modes and pins the batch-transport metrics).
#
# Each example must exit 0 within the timeout. The interactive
# `junicon_repl` is driven with a scripted session on stdin (it exits
# cleanly on `:quit` / EOF). Everything runs `--offline`: the workspace is
# hermetic and must never need the registry (see DESIGN.md § "Hermetic
# build").
#
# Observability matrix: the full example sweep runs once with
# `--features obs` (instrumented — the root crate's default, spelled out
# explicitly so the intent survives a default change) and once with
# `--no-default-features` (zero instrumentation compiled in). Then the
# deterministic `obs_batching` choreography is run twice and its outputs
# diffed byte-for-byte: the `blockingq.queue.batch_fill` histogram and the
# batch_puts/batch_takes split are exact functions of the choreography, so
# ANY divergence (between runs, or from the pinned accounting below) means
# the batch instrumentation drifted.
#
# The script stops at the FIRST failing example and names it, so CI logs
# point straight at the culprit instead of burying it in a summary.
set -euo pipefail
cd "$(dirname "$0")/.."

TIMEOUT="${EXAMPLES_SMOKE_TIMEOUT:-120}"
PROFILE_FLAG="${EXAMPLES_SMOKE_PROFILE:---release}"

run() {
    local features_flag="$1" name="$2"
    shift 2
    echo "== example: $name ($features_flag)"
    timeout "$TIMEOUT" cargo run --offline "$PROFILE_FLAG" $features_flag --quiet --example "$name" -- "$@" \
        > /dev/null
}

sweep() {
    local features_flag="$1"
    echo "== building examples ($PROFILE_FLAG, offline, $features_flag)"
    cargo build --offline "$PROFILE_FLAG" $features_flag --examples
    for src in examples/*.rs; do
        local name
        name="$(basename "$src" .rs)"
        case "$name" in
            junicon_repl)
                echo "== example: junicon_repl (scripted session, $features_flag)"
                printf 'write(1 to 3)\nevery i := 1 to 3 do write(i * i)\n:quit\n' \
                    | timeout "$TIMEOUT" cargo run --offline "$PROFILE_FLAG" $features_flag --quiet --example junicon_repl \
                    > /dev/null || { echo "examples smoke: FAILED at example 'junicon_repl' ($features_flag)"; exit 1; }
                ;;
            *)
                run "$features_flag" "$name" || { echo "examples smoke: FAILED at example '$name' ($features_flag)"; exit 1; }
                ;;
        esac
    done
}

# Instrumented sweep (explicit), then the uninstrumented sweep.
sweep "--features obs"
sweep "--no-default-features"

echo "== obs determinism: obs_batching twice, byte-identical"
tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT
timeout "$TIMEOUT" cargo run --offline "$PROFILE_FLAG" --features obs --quiet --example obs_batching \
    > "$tmpdir/run1.txt"
timeout "$TIMEOUT" cargo run --offline "$PROFILE_FLAG" --features obs --quiet --example obs_batching \
    > "$tmpdir/run2.txt"
if ! diff -u "$tmpdir/run1.txt" "$tmpdir/run2.txt"; then
    echo "examples smoke: FAILED — obs_batching snapshot is nondeterministic"
    exit 1
fi
# Pin the batch accounting itself: the choreography puts 16 elements in 3
# batch transactions and takes 16 in 4, with chunk fills in [3, 8].
grep -q 'batch_fill *count=7 min=3 max=8' "$tmpdir/run1.txt" \
    || { echo "examples smoke: FAILED — batch_fill accounting drifted"; cat "$tmpdir/run1.txt"; exit 1; }
grep -q 'batch_puts *3$' "$tmpdir/run1.txt" \
    || { echo "examples smoke: FAILED — batch_puts accounting drifted"; cat "$tmpdir/run1.txt"; exit 1; }
grep -q 'batch_takes *4$' "$tmpdir/run1.txt" \
    || { echo "examples smoke: FAILED — batch_takes accounting drifted"; cat "$tmpdir/run1.txt"; exit 1; }
echo "obs determinism: snapshot stable and batch accounting pinned"

echo "examples smoke: all examples ran cleanly in both obs modes"
