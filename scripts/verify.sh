#!/usr/bin/env bash
# Tier-1 verification (ROADMAP.md) plus the hermetic-build guard (ISSUE 1):
#
#   1. grep guard  — no dependency section in any Cargo.toml may name a
#                    registry (version-requirement) dependency; everything
#                    must be a `path = ...` / `workspace = true` entry;
#   2. metadata    — `cargo metadata` must resolve to path-only packages
#                    (every package's `source` is null);
#   3. build+test  — `cargo build --release --offline` and
#                    `cargo test -q --offline` across the whole workspace.
#
# The `--offline` flag is the invariant, not an optimization: this
# repository must build on a machine that has never reached a registry.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== [1/3] manifest guard: no registry dependencies"
# Inside [dependencies]/[dev-dependencies]/[build-dependencies]/
# [workspace.dependencies] sections, any value containing a version
# requirement (a digit, caret, tilde, wildcard or comparison after `"`)
# reintroduces the registry and fails the build.
bad=0
while IFS= read -r manifest; do
    hits="$(awk '
        /^\[/ {
            indeps = ($0 ~ /^\[(workspace\.)?(dependencies|dev-dependencies|build-dependencies)\]/)
        }
        indeps && /=[[:space:]]*"[0-9^~*<>=]/ { printf "%s:%d: %s\n", FILENAME, FNR, $0 }
        indeps && /version[[:space:]]*=[[:space:]]*"/ { printf "%s:%d: %s\n", FILENAME, FNR, $0 }
    ' "$manifest")"
    if [ -n "$hits" ]; then
        echo "$hits"
        bad=1
    fi
done < <(find . -name Cargo.toml -not -path './target/*')
if [ "$bad" -ne 0 ]; then
    echo "FAIL: registry (non-path) dependencies found; use an in-tree shim under crates/shims/ instead"
    exit 1
fi
echo "   ok: all dependency entries are path/workspace"

echo "== [2/3] cargo metadata: path-only package sources"
if cargo metadata --offline --format-version 1 2>/dev/null | grep -q '"source":"registry+'; then
    echo "FAIL: cargo metadata resolves at least one registry package"
    exit 1
fi
echo "   ok: no registry sources in the resolved graph"

echo "== [3/3] build + test (offline)"
cargo build --release --offline --workspace
cargo test -q --offline --workspace

echo "verify: OK"
