#!/usr/bin/env bash
# The full offline CI pipeline (ISSUE 2). Runs, in order:
#
#   1. scripts/verify.sh        — tier-1: hermetic guard + build + test;
#   2. cargo fmt --check        — formatting is load-bearing;
#   3. cargo clippy -D warnings — lints are errors (loud skip if the
#                                 component is not installed);
#   4. obs feature matrix       — every instrumented crate must compile
#                                 BOTH with `--features obs` and, in
#                                 isolation, without it (feature
#                                 unification hides the latter in
#                                 workspace-wide builds);
#   5. scripts/examples_smoke.sh — every example runs, fail-fast;
#   6. bench smoke              — a fast figure6 run + criterion smoke
#                                 via the TINYBENCH_* knobs, emitting
#                                 BENCH_ci.json (uploaded as a CI
#                                 artifact; compare against the
#                                 committed BENCH_baseline.json).
#
# Everything is `--offline`: CI must pass on a machine that has never
# reached a registry. No step downloads anything.
set -euo pipefail
cd "$(dirname "$0")/.."

step() { echo; echo "==== ci: $*"; }

step "[1/6] tier-1 verify (hermetic guard + build + test)"
scripts/verify.sh

step "[2/6] cargo fmt --check"
if command -v rustfmt > /dev/null 2>&1; then
    cargo fmt --all -- --check
    echo "   ok: formatting clean"
else
    echo "   !!! SKIPPED: rustfmt is not installed (rustup component add rustfmt)"
fi

step "[3/6] cargo clippy --workspace --all-targets -- -D warnings"
if cargo clippy --version > /dev/null 2>&1; then
    cargo clippy --workspace --all-targets --offline -- -D warnings
    echo "   ok: clippy clean"
else
    echo "   !!! SKIPPED: clippy is not installed (rustup component add clippy)"
fi

step "[4/6] obs feature matrix (on + isolated off)"
# With the feature: the whole workspace, all targets (bench + root
# already default it on, but be explicit for the instrumented crates).
OBS_CRATES=(gde blockingq exec pipes mapreduce wordcount)
for crate in "${OBS_CRATES[@]}"; do
    cargo build --offline -q -p "$crate" --features obs
done
echo "   ok: instrumented builds"
# Without it: each crate in isolation, so feature unification from the
# root crate/bench cannot quietly re-enable obs. This is the zero-cost
# compile gate — the obs_on! macro must expand to nothing and the crates
# must carry no obs code at all.
for crate in "${OBS_CRATES[@]}" coexpr junicon bigint obs; do
    cargo build --offline -q -p "$crate"
    cargo test --offline -q -p "$crate" > /dev/null
done
echo "   ok: uninstrumented builds + tests (obs off)"

step "[5/6] examples smoke"
scripts/examples_smoke.sh

step "[6/6] bench smoke -> BENCH_ci.json"
# Small corpus + few iterations: this is a wiring check (does the
# harness run, does the JSON parse, are obs metrics non-zero), not a
# measurement. BENCH_baseline.json is the committed full-size run.
cargo run --offline -q -p bench --release --bin figure6 -- \
    --lines 200 --heavy-lines 40 --iters 3 --warmup 1 --json BENCH_ci.json
# Criterion smoke through the shim's env knobs: tiny sample budget.
# Print the hot-path numbers with instrumentation ON and OFF side by
# side (the zero-cost claim, measured).
echo "   -- obs-overhead (instrumentation ON):"
TINYBENCH_SAMPLES=5 TINYBENCH_WARMUP_MS=10 TINYBENCH_SAMPLE_MS=1 \
    cargo bench --offline -q -p bench --bench obs_overhead \
    | grep -E "put_take" | sed 's/^/      /'
echo "   -- obs-overhead (instrumentation OFF):"
TINYBENCH_SAMPLES=5 TINYBENCH_WARMUP_MS=10 TINYBENCH_SAMPLE_MS=1 \
    cargo bench --offline -q -p bench --no-default-features --bench obs_overhead \
    | grep -E "put_take" | sed 's/^/      /'
# Environment hot path: the slot/by-name gap and the interned-key win,
# re-measured cheaply every run (see DESIGN.md § Slot-resolved
# environments).
echo "   -- env hot path (slot vs by-name vs table keys):"
TINYBENCH_SAMPLES=5 TINYBENCH_WARMUP_MS=10 TINYBENCH_SAMPLE_MS=1 \
    cargo bench --offline -q -p bench --bench env_hot \
    | grep -E "env_hot/" | sed 's/^/      /'
# Stage fusion: the collapsed-closure vs stage-per-node gap, re-measured
# cheaply every run (see DESIGN.md § Stage fusion).
echo "   -- stage fusion (fused vs unfused combinator chains):"
TINYBENCH_SAMPLES=5 TINYBENCH_WARMUP_MS=10 TINYBENCH_SAMPLE_MS=1 \
    cargo bench --offline -q -p bench --bench fusion \
    | grep -E "fusion/" | sed 's/^/      /'
grep -q '"schema": "figure6-v2"' BENCH_ci.json
grep -q '"obs": {' BENCH_ci.json
echo "   ok: BENCH_ci.json written (schema figure6-v2, obs snapshot embedded)"

# Queue-contention regression gate. Batched transport (this repo's pipe
# default) amortizes the take side: consumers pull whole chunks per lock
# acquisition instead of parking once per item. The pre-batching seed
# baseline measured blocked_takes/takes = 28262/378288 ~= 0.0747; if the
# ratio in this run climbs back above that, per-item transport has crept
# back onto the hot path — fail loudly. (The absolute takes count varies
# with corpus size, so the gate is on the *ratio*, which is scale-free.)
MAX_BLOCKED_TAKE_RATIO="0.0747"
blocked_takes="$(grep -o '"blockingq.queue.blocked_takes": {"kind": "counter", "value": [0-9]*' BENCH_ci.json | grep -o '[0-9]*$' || true)"
takes="$(grep -o '"blockingq.queue.takes": {"kind": "counter", "value": [0-9]*' BENCH_ci.json | grep -o '[0-9]*$' || true)"
if grep -q '"obs": null' BENCH_ci.json || [ -z "${blocked_takes}" ] || [ -z "${takes}" ] || [ "${takes}" = "0" ]; then
    echo "   !!! SKIPPED: contention gate needs the obs snapshot in BENCH_ci.json"
    echo "   !!!          (bench built without the obs feature, or no takes recorded)"
else
    if awk -v b="$blocked_takes" -v t="$takes" -v cap="$MAX_BLOCKED_TAKE_RATIO" \
        'BEGIN { exit !(b / t <= cap) }'; then
        echo "   ok: contention gate — blocked_takes/takes = ${blocked_takes}/${takes} <= ${MAX_BLOCKED_TAKE_RATIO}"
    else
        echo "   FAIL: blocked_takes/takes = ${blocked_takes}/${takes} exceeds the"
        echo "         pre-batching baseline ratio ${MAX_BLOCKED_TAKE_RATIO} — the batched"
        echo "         transport regression gate tripped (see DESIGN.md § Batched transport)."
        exit 1
    fi
fi

# Stage-fusion wiring gate. The fig6 embedded cells build their stage
# plans through gde::comb::fuse, so a healthy run MUST have fused at
# least one run of monogenic stages (the counter tallies collapsed
# seams). Zero means the fusion rewriter silently stopped being reached
# — e.g. a refactor routed the wordcount variants around StagePlan —
# which would quietly re-open the embedded/native gap the next gate
# guards. Skips (loudly) when the snapshot is absent: without obs there
# is no counter to read.
fused_stages="$(grep -o '"gde.comb.fused_stages": {"kind": "counter", "value": [0-9]*' BENCH_ci.json | grep -o '[0-9]*$' || true)"
if grep -q '"obs": null' BENCH_ci.json; then
    echo "   !!! SKIPPED: fusion gate needs the obs snapshot in BENCH_ci.json"
    echo "   !!!          (bench built without the obs feature)"
elif [ -z "${fused_stages}" ] || [ "${fused_stages}" = "0" ]; then
    echo "   FAIL: gde.comb.fused_stages = ${fused_stages:-missing} in BENCH_ci.json —"
    echo "         the benchmarked pipelines no longer reach the stage-fusion"
    echo "         rewriter (see DESIGN.md § Stage fusion)."
    exit 1
else
    echo "   ok: fusion gate — gde.comb.fused_stages = ${fused_stages} > 0"
fi

# Embedded/native gap regression gate. Slot-resolved environments plus
# symbol interning brought the Sequential-Lightweight Junicon/Native
# median ratio down to ~2.0x, and emit-time stage fusion (collapsing
# each resolved monogenic suffix into one composed closure) cut it to
# ~1.73x (BENCH_baseline.json, the re-derived figure). Gate at
# baseline + 15% headroom: if the ratio in this run climbs above it,
# by-name lookups, per-word allocations, or an unfused hot path have
# crept back into the embedded build — fail loudly. (Medians of a
# ratio are scale-free, so the small smoke corpus works; the gate skips
# when either median is missing.)
MAX_SEQ_LW_RATIO="1.99"
jun_seq="$(grep -o '{"suite": "Junicon", "variant": "Sequential", "weight": "Lightweight", "median_ns": [0-9]*' BENCH_ci.json | grep -o '[0-9]*$' || true)"
nat_seq="$(grep -o '{"suite": "Native", "variant": "Sequential", "weight": "Lightweight", "median_ns": [0-9]*' BENCH_ci.json | grep -o '[0-9]*$' || true)"
if [ -z "${jun_seq}" ] || [ -z "${nat_seq}" ] || [ "${nat_seq}" = "0" ]; then
    echo "   !!! SKIPPED: embedded/native gate needs Sequential-Lightweight medians in BENCH_ci.json"
else
    if awk -v j="$jun_seq" -v n="$nat_seq" -v cap="$MAX_SEQ_LW_RATIO" \
        'BEGIN { exit !(j / n <= cap) }'; then
        echo "   ok: embedded/native gate — Junicon/Native Sequential-LW = ${jun_seq}/${nat_seq} <= ${MAX_SEQ_LW_RATIO}"
    else
        echo "   FAIL: Junicon/Native Sequential-Lightweight = ${jun_seq}/${nat_seq} exceeds"
        echo "         the slot-resolution baseline ratio ${MAX_SEQ_LW_RATIO} — by-name lookups or"
        echo "         per-word allocations are back on the embedded hot path"
        echo "         (see DESIGN.md § Slot-resolved environments)."
        exit 1
    fi
fi

echo
echo "ci: OK"
