#!/usr/bin/env bash
# The full offline CI pipeline (ISSUE 2, gates extracted in ISSUE 7).
# Runs, in order:
#
#   1. scripts/verify.sh        — tier-1: hermetic guard + build + test;
#   2. cargo fmt --check        — formatting is load-bearing;
#   3. cargo clippy -D warnings — lints are errors;
#   4. obs feature matrix       — every instrumented crate must compile
#                                 BOTH with `--features obs` and, in
#                                 isolation, without it (feature
#                                 unification hides the latter in
#                                 workspace-wide builds);
#   5. scripts/examples_smoke.sh — every example runs, fail-fast;
#   6. schedtest smoke          — the deterministic schedule-exploration
#                                 model suites under --cfg schedtest
#                                 (including the fault-injection models),
#                                 summarized to SCHEDTEST_ci.json;
#   7. bench smoke + gates      — a fast figure6 run emitting
#                                 BENCH_ci.json, the fault-plane smoke
#                                 emitting FAULTS_ci.json, criterion
#                                 smokes via the TINYBENCH_* knobs, then
#                                 the regression gates (`bench --bin
#                                 gates`, tested in
#                                 crates/bench/tests/gates.rs) plus a
#                                 report-only drift table against the
#                                 committed BENCH_baseline.json.
#
# Strictness: under CI=1 (or CI=true — what GitHub Actions exports) any
# "loud skip" becomes a hard failure: a runner without rustfmt/clippy, or
# a bench build that lost its obs snapshot, must fail the pipeline rather
# than quietly narrowing it. Locally (no CI env) skips stay warnings so a
# minimal toolchain can still run the rest.
#
# Everything is `--offline`: CI must pass on a machine that has never
# reached a registry. No step downloads anything.
set -euo pipefail
cd "$(dirname "$0")/.."

STRICT=0
case "${CI:-}" in
    1 | true) STRICT=1 ;;
esac

step() { echo; echo "==== ci: $*"; }

# A tool gap is a warning locally, a failure under CI=1.
loud_skip() {
    echo "   !!! SKIPPED: $*"
    if [ "$STRICT" = "1" ]; then
        echo "   !!! CI strict mode: skips are failures"
        exit 1
    fi
}

step "[1/7] tier-1 verify (hermetic guard + build + test)"
scripts/verify.sh

step "[2/7] cargo fmt --check"
if command -v rustfmt > /dev/null 2>&1; then
    cargo fmt --all -- --check
    echo "   ok: formatting clean"
else
    loud_skip "rustfmt is not installed (rustup component add rustfmt)"
fi

step "[3/7] cargo clippy --workspace --all-targets -- -D warnings"
if cargo clippy --version > /dev/null 2>&1; then
    cargo clippy --workspace --all-targets --offline -- -D warnings
    echo "   ok: clippy clean"
else
    loud_skip "clippy is not installed (rustup component add clippy)"
fi

step "[4/7] obs feature matrix (on + isolated off)"
# With the feature: the whole workspace, all targets (bench + root
# already default it on, but be explicit for the instrumented crates).
OBS_CRATES=(gde blockingq exec pipes mapreduce wordcount)
for crate in "${OBS_CRATES[@]}"; do
    cargo build --offline -q -p "$crate" --features obs
done
echo "   ok: instrumented builds"
# Without it: each crate in isolation, so feature unification from the
# root crate/bench cannot quietly re-enable obs. This is the zero-cost
# compile gate — the obs_on! macro must expand to nothing and the crates
# must carry no obs code at all.
for crate in "${OBS_CRATES[@]}" coexpr junicon bigint obs; do
    cargo build --offline -q -p "$crate"
    cargo test --offline -q -p "$crate" > /dev/null
done
echo "   ok: uninstrumented builds + tests (obs off)"
# The fault-injection plane has the same shape: `faultpoint!` must expand
# to nothing without the feature (checked above by the isolated builds)
# and compile cleanly with it — including the registry's own obs wiring.
for crate in blockingq pipes exec; do
    cargo build --offline -q -p "$crate" --features faultinj
done
cargo build --offline -q -p faultinj --features obs
echo "   ok: faultpoint builds (faultinj on)"

step "[5/7] examples smoke"
scripts/examples_smoke.sh

step "[6/7] schedtest smoke -> SCHEDTEST_ci.json (schedule-exploration model tests)"
# The deterministic schedule-exploration suites (crates/schedtest/tests/
# model_*.rs) under the virtual scheduler: RUSTFLAGS="--cfg schedtest"
# swaps the parking_lot shim to virtual primitives, so the build lands in
# its own target dir rather than thrashing the main cache. The budget is
# a backstop well above the largest committed exhaustive test (~25k
# schedules): a test that suddenly needs more fails its own `complete`
# assertion loudly instead of burning CI minutes. Each explore() call
# appends one summary line to SCHEDTEST_ci.json; the schedtest gate below
# checks the smoke actually explored schedules.
rm -f SCHEDTEST_ci.json
RUSTFLAGS="--cfg schedtest" CARGO_TARGET_DIR=target/schedtest \
    SCHEDTEST_BUDGET=50000 SCHEDTEST_JSON="$PWD/SCHEDTEST_ci.json" \
    cargo test --offline -q -p schedtest \
    --test model_blockingq --test model_pipes --test model_exec \
    --test model_faults \
    -- --test-threads=1
echo "   ok: model suites green ($(wc -l < SCHEDTEST_ci.json) explorations summarized)"

step "[7/7] bench smoke -> BENCH_ci.json, then the regression gates"
# Small corpus + few iterations: this is a wiring check (does the
# harness run, do the gates hold), not a measurement. BENCH_baseline.json
# is the committed full-size run.
cargo run --offline -q -p bench --release --bin figure6 -- \
    --lines 200 --heavy-lines 40 --iters 3 --warmup 1 --json BENCH_ci.json
# Fault-plane smoke: deterministic injection scenarios through every
# recovery surface (Retry replay, Propagate, degrading fan-in, pool
# containment), snapshotting the fault counters for the `faults` gate.
# Built with the faultinj feature — the figure6 run above stays
# faultpoint-free, so the seq-lw-ratio gate measures the unarmed plane.
cargo run --offline -q -p bench --release --features faultinj \
    --bin fault_smoke -- FAULTS_ci.json 2> /dev/null \
    | sed 's/^/   /'
# Criterion smoke through the shim's env knobs: tiny sample budget.
# Print the hot-path numbers with instrumentation ON and OFF side by
# side (the zero-cost claim, measured).
echo "   -- obs-overhead (instrumentation ON):"
TINYBENCH_SAMPLES=5 TINYBENCH_WARMUP_MS=10 TINYBENCH_SAMPLE_MS=1 \
    cargo bench --offline -q -p bench --bench obs_overhead \
    | grep -E "put_take" | sed 's/^/      /'
echo "   -- obs-overhead (instrumentation OFF):"
TINYBENCH_SAMPLES=5 TINYBENCH_WARMUP_MS=10 TINYBENCH_SAMPLE_MS=1 \
    cargo bench --offline -q -p bench --no-default-features --bench obs_overhead \
    | grep -E "put_take" | sed 's/^/      /'
# Environment hot path: the slot/by-name gap and the interned-key win,
# re-measured cheaply every run (see DESIGN.md § Slot-resolved
# environments).
echo "   -- env hot path (slot vs by-name vs table keys):"
TINYBENCH_SAMPLES=5 TINYBENCH_WARMUP_MS=10 TINYBENCH_SAMPLE_MS=1 \
    cargo bench --offline -q -p bench --bench env_hot \
    | grep -E "env_hot/" | sed 's/^/      /'
# Stage fusion: the collapsed-closure vs stage-per-node gap, re-measured
# cheaply every run (see DESIGN.md § Stage fusion).
echo "   -- stage fusion (fused vs unfused combinator chains):"
TINYBENCH_SAMPLES=5 TINYBENCH_WARMUP_MS=10 TINYBENCH_SAMPLE_MS=1 \
    cargo bench --offline -q -p bench --bench fusion \
    | grep -E "fusion/" | sed 's/^/      /'
# Value representation: create/clone/key costs per string form, the
# compact-value win re-measured cheaply every run (see DESIGN.md §
# Compact values).
echo "   -- value representation (Str vs Sym vs Slice):"
TINYBENCH_SAMPLES=5 TINYBENCH_WARMUP_MS=10 TINYBENCH_SAMPLE_MS=1 \
    cargo bench --offline -q -p bench --bench value_repr \
    | grep -E "value_repr/" | sed 's/^/      /'
# String plane: builder-arena concat vs owned, coerced compares, and
# byte-indexed subscripting, re-measured cheaply every run (see DESIGN.md
# § String builder arena).
echo "   -- string plane (builder vs owned concat, coercions, subscripts):"
TINYBENCH_SAMPLES=5 TINYBENCH_WARMUP_MS=10 TINYBENCH_SAMPLE_MS=1 \
    cargo bench --offline -q -p bench --bench str_ops \
    | grep -E "str_ops/" | sed 's/^/      /'

# The regression gates, extracted from the inline grep/awk blocks that
# used to live here into a tested binary (crates/bench/src/gates.rs;
# fixtures in crates/bench/tests/). One PASS/FAIL/SKIP line per gate:
#
#   schema          BENCH_ci.json is a well-formed figure6-v2 snapshot —
#                   renamed keys FAIL loudly instead of skipping;
#   schedtest       SCHEDTEST_ci.json (step 6) sums to explored_schedules
#                   > 0 with no failing exploration — the model smoke
#                   genuinely ran under the virtual scheduler;
#   contention      blocked_takes/takes <= 0.0747, the pre-batching seed
#                   baseline (28262/378288; scale-free, see DESIGN.md §
#                   Batched transport);
#   fusion          gde.comb.fused_stages > 0 — the benchmarked pipelines
#                   still reach the stage-fusion rewriter;
#   compact-values  gde.value.inline_hits > 0 — the compact value
#                   representation is still on the hot path;
#   concat-slices   gde.value.concat_slices > 0 — concatenation still
#                   reaches the builder arena's zero-copy regimes
#                   (widening / tail extension);
#   faults          FAULTS_ci.json (fault_smoke above) shows every fault
#                   counter non-zero: faults.injected, the pipe policy
#                   counters, and blockingq.close.failed — a renamed key
#                   or a dead recovery surface FAILs loudly;
#   seq-lw-ratio    Junicon/Native Sequential-Lightweight median ratio.
#                   The allocation-free string plane (ISSUE 9: builder
#                   arena, batched hot-loop instrumentation, generator
#                   recycling at flat barriers) brought the committed
#                   full-size baseline to ~1.40x (from ~1.53x after
#                   ISSUE 7, ~1.73x at seed); gate at baseline + 15%
#                   headroom = 1.61.
#
# The drift table against BENCH_baseline.json is report-only: smoke-size
# medians are noisy, but the per-cell direction is worth a line in every
# CI log.
GATE_FLAGS=(--json BENCH_ci.json
    --max-blocked-take-ratio 0.0747
    --max-seq-lw-ratio 1.61
    --schedtest-json SCHEDTEST_ci.json
    --faults-json FAULTS_ci.json
    --baseline BENCH_baseline.json)
if [ "$STRICT" = "1" ]; then
    GATE_FLAGS+=(--strict)
fi
cargo run --offline -q -p bench --release --bin gates -- "${GATE_FLAGS[@]}" \
    | sed 's/^/   /'

echo
echo "ci: OK"
