//! A fixed-size worker pool over a shared blocking job queue.

use blockingq::{BlockingQueue, MVar};
// Worker threads spawn through the parking_lot shim so the whole pool is
// virtualized under --cfg schedtest (see DESIGN.md § "Schedule
// exploration").
use parking_lot::thread::JoinHandle;
use std::num::NonZeroUsize;
use std::sync::OnceLock;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A fixed-size thread pool.
///
/// Jobs are drawn FIFO from a shared unbounded queue by `threads` workers.
/// Dropping the pool closes the queue and joins the workers after the
/// already-queued jobs have drained.
pub struct ThreadPool {
    queue: BlockingQueue<Job>,
    workers: Vec<JoinHandle<()>>,
    /// Job panics contained by the workers (see [`ThreadPool::execute`]).
    contained: std::sync::Arc<parking_lot::sync::atomic::AtomicU64>,
}

/// A job rejected by [`ThreadPool::try_submit`]: the pool is shut down.
///
/// Carries the boxed job and its [`Task`] handle so no work is lost —
/// [`SubmitError::run_inline`] executes the job on the calling thread and
/// the handle resolves exactly as if a worker had run it.
pub struct SubmitError<T> {
    job: Job,
    task: Task<T>,
}

impl<T> SubmitError<T> {
    /// Run the rejected job on the calling thread and return its task
    /// handle (already resolved; a job panic is captured and re-raised by
    /// [`Task::join`], not here).
    pub fn run_inline(self) -> Task<T> {
        (self.job)();
        self.task
    }
}

impl<T> std::fmt::Debug for SubmitError<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("SubmitError(\"pool is shut down\")")
    }
}

impl ThreadPool {
    /// Create a pool with `threads` worker threads (minimum 1).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let queue: BlockingQueue<Job> = BlockingQueue::unbounded();
        let contained = std::sync::Arc::new(parking_lot::sync::atomic::AtomicU64::new(0));
        let workers = (0..threads)
            .map(|i| {
                let queue = queue.clone();
                let contained = contained.clone();
                obs_on!(crate::stats::pool().workers_spawned.inc(););
                parking_lot::thread::Builder::new()
                    .name(format!("exec-worker-{i}"))
                    .spawn(move || {
                        while let Some(job) = queue.take() {
                            obs_on!(let _busy = crate::stats::pool().busy.start(););
                            // Contain job panics: a panicking `execute`
                            // job must not kill the worker and silently
                            // shrink the pool for the rest of the
                            // process. (`submit` jobs already route their
                            // payload through the Task slot and never
                            // unwind out of the wrapper.)
                            let run =
                                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                    faultpoint!("exec.worker.job");
                                    job()
                                }));
                            if run.is_err() {
                                contained.fetch_add(1, parking_lot::sync::atomic::Ordering::AcqRel);
                                obs_on!(crate::stats::pool().contained_panics.inc(););
                            }
                            obs_on!(crate::stats::pool().tasks_run.inc(););
                        }
                    })
                    .expect("failed to spawn pool worker")
            })
            .collect();
        ThreadPool {
            queue,
            workers,
            contained,
        }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Job panics contained by workers so far (each one a fire-and-forget
    /// `execute` job that would otherwise have killed its worker).
    pub fn contained_panics(&self) -> u64 {
        self.contained
            .load(parking_lot::sync::atomic::Ordering::Acquire)
    }

    /// Enqueue a fire-and-forget job.
    ///
    /// # Panics
    ///
    /// If the pool has been shut down ("pool is shut down"). Use
    /// [`ThreadPool::try_submit`] to handle rejection without panicking.
    pub fn execute<F: FnOnce() + Send + 'static>(&self, job: F) {
        self.queue
            .put(Box::new(job))
            .unwrap_or_else(|_| panic!("pool is shut down"));
        obs_on!(crate::stats::pool().tasks_queued.inc(););
    }

    /// Enqueue a job and get a [`Task`] handle resolving to its result.
    ///
    /// If the job panics the panic payload is captured and re-raised in
    /// [`Task::join`], mirroring `std::thread::JoinHandle`.
    ///
    /// # Panics
    ///
    /// If the pool has been shut down, like [`ThreadPool::execute`]. Use
    /// [`ThreadPool::try_submit`] for the non-panicking variant.
    pub fn submit<T, F>(&self, job: F) -> Task<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        match self.try_submit(job) {
            Ok(task) => task,
            Err(_) => panic!("pool is shut down"),
        }
    }

    /// Enqueue a job, or hand it back if the pool is shut down.
    ///
    /// The rejection carries the (boxed) job and its task handle, so the
    /// caller can degrade gracefully — most simply by running the job on
    /// its own thread via [`SubmitError::run_inline`], which is how the
    /// mapreduce/wordcount drivers stay alive across a shut-down global
    /// pool instead of panicking mid-reduction.
    pub fn try_submit<T, F>(&self, job: F) -> Result<Task<T>, SubmitError<T>>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        let slot: MVar<std::thread::Result<T>> = MVar::empty();
        let slot2 = slot.clone();
        let wrapped: Job = Box::new(move || {
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
            slot2.put(result);
        });
        match self.queue.put(wrapped) {
            Ok(()) => {
                obs_on!(crate::stats::pool().tasks_queued.inc(););
                Ok(Task { slot })
            }
            Err(blockingq::PutError(job)) => Err(SubmitError {
                job,
                task: Task { slot },
            }),
        }
    }

    /// Drain all queued jobs and stop the workers, blocking until done.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        self.queue.close();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// Handle to a submitted job's eventual result.
pub struct Task<T> {
    slot: MVar<std::thread::Result<T>>,
}

impl<T> std::fmt::Debug for Task<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Task")
            .field("done", &self.is_done())
            .finish()
    }
}

impl<T> Task<T> {
    /// Block until the job completes and return its result.
    ///
    /// # Panics
    /// Re-raises the job's panic, like `JoinHandle::join().unwrap()`.
    pub fn join(self) -> T {
        match self.slot.take() {
            Ok(v) => v,
            Err(payload) => std::panic::resume_unwind(payload),
        }
    }

    /// True iff the job has completed (successfully or by panicking).
    pub fn is_done(&self) -> bool {
        self.slot.is_full()
    }
}

/// The worker count the global pool will use (or already uses): the
/// `EXEC_THREADS` environment variable when set to a positive integer,
/// otherwise the number of available cores.
///
/// Exposed so harnesses (the figure 6 runner) can record the effective
/// size in their output without forcing the pool into existence.
pub fn global_threads() -> usize {
    if let Ok(raw) = std::env::var("EXEC_THREADS") {
        match raw.trim().parse::<usize>() {
            Ok(n) if n >= 1 => return n,
            _ => eprintln!("exec: ignoring invalid EXEC_THREADS={raw:?} (want a positive integer)"),
        }
    }
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(4)
}

/// The process-wide default pool, sized by [`global_threads`]: the
/// `EXEC_THREADS` environment variable when set, else the number of
/// available cores.
///
/// This mirrors the common-pool role of Java's `ForkJoinPool.commonPool()`
/// that backs parallel streams in the paper's baseline suite (and
/// `EXEC_THREADS` plays the role of
/// `java.util.concurrent.ForkJoinPool.common.parallelism`: scaling
/// experiments pin the pool width without recompiling).
pub fn global() -> &'static ThreadPool {
    static GLOBAL: OnceLock<ThreadPool> = OnceLock::new();
    GLOBAL.get_or_init(|| ThreadPool::new(global_threads()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn executes_all_jobs() {
        let pool = ThreadPool::new(4);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..100 {
            let c = counter.clone();
            pool.execute(move || {
                c.fetch_add(1, Ordering::SeqCst);
            });
        }
        pool.shutdown();
        assert_eq!(counter.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn submit_returns_result() {
        let pool = ThreadPool::new(2);
        let t = pool.submit(|| 6 * 7);
        assert_eq!(t.join(), 42);
    }

    #[test]
    fn submit_many_ordered_by_handle() {
        let pool = ThreadPool::new(3);
        let tasks: Vec<Task<usize>> = (0..50).map(|i| pool.submit(move || i * i)).collect();
        let results: Vec<usize> = tasks.into_iter().map(Task::join).collect();
        assert_eq!(results, (0..50).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn panicking_job_propagates_on_join() {
        let pool = ThreadPool::new(1);
        let t: Task<()> = pool.submit(|| panic!("boom"));
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| t.join()));
        assert!(err.is_err());
        // Pool survives the panic and keeps executing jobs.
        assert_eq!(pool.submit(|| 5).join(), 5);
    }

    #[test]
    fn single_thread_pool_runs_sequentially() {
        let pool = ThreadPool::new(1);
        let log = Arc::new(parking_lot::Mutex::new(Vec::new()));
        for i in 0..10 {
            let log = log.clone();
            pool.execute(move || log.lock().push(i));
        }
        pool.shutdown();
        assert_eq!(*log.lock(), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn uses_multiple_workers() {
        // With 4 workers and 4 jobs that each wait for all jobs to start,
        // completion requires genuine parallelism.
        let pool = ThreadPool::new(4);
        let barrier = Arc::new(std::sync::Barrier::new(4));
        let tasks: Vec<Task<()>> = (0..4)
            .map(|_| {
                let b = barrier.clone();
                pool.submit(move || {
                    b.wait();
                })
            })
            .collect();
        for t in tasks {
            t.join();
        }
    }

    #[test]
    fn global_pool_is_shared() {
        let a = global() as *const ThreadPool;
        let b = global() as *const ThreadPool;
        assert_eq!(a, b);
        assert!(global().threads() >= 1);
        assert_eq!(global().submit(|| "ok").join(), "ok");
    }

    #[test]
    fn exec_threads_env_overrides_width() {
        // Runs in its own process-state bubble: no other test in this
        // binary reads EXEC_THREADS outside `global()`, which is forced
        // *without* the variable first so the OnceLock is already settled.
        let _ = global().threads();
        std::env::set_var("EXEC_THREADS", "3");
        assert_eq!(global_threads(), 3);
        std::env::set_var("EXEC_THREADS", "  7 ");
        assert_eq!(global_threads(), 7);
        std::env::set_var("EXEC_THREADS", "0");
        let fallback = global_threads(); // invalid: falls back to cores
        assert!(fallback >= 1);
        std::env::set_var("EXEC_THREADS", "lots");
        assert!(global_threads() >= 1);
        std::env::remove_var("EXEC_THREADS");
        assert!(global_threads() >= 1);
    }

    #[test]
    fn try_submit_rejected_job_runs_inline() {
        let pool = ThreadPool::new(1);
        assert_eq!(pool.try_submit(|| 11).expect("pool live").join(), 11);
        pool.shutdown();
        // Shutdown consumed the pool; build another and shut it down while
        // keeping the handle to exercise the rejection path.
        let pool = ThreadPool::new(1);
        pool.queue.close();
        let rejected = pool.try_submit(|| 6 * 7).expect_err("pool shut down");
        assert_eq!(
            format!("{rejected:?}"),
            "SubmitError(\"pool is shut down\")"
        );
        // No work lost: the job runs on this thread, the handle resolves.
        let task = rejected.run_inline();
        assert!(task.is_done());
        assert_eq!(task.join(), 42);
    }

    #[test]
    fn run_inline_captures_job_panics_for_join() {
        let pool = ThreadPool::new(1);
        pool.queue.close();
        let task: Task<()> = pool
            .try_submit(|| panic!("inline boom"))
            .expect_err("rejected")
            .run_inline();
        // The panic is deferred to join, exactly like a worker run.
        assert!(std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| task.join())).is_err());
    }

    #[test]
    fn submit_panics_when_pool_is_shut_down() {
        let pool = ThreadPool::new(1);
        pool.queue.close();
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = pool.submit(|| 1);
        }))
        .unwrap_err();
        let msg = err.downcast_ref::<&str>().expect("str payload");
        assert!(msg.contains("pool is shut down"), "{msg}");
    }

    #[test]
    fn worker_survives_panicking_execute_job() {
        // Pre-containment, a panicking fire-and-forget job killed its
        // worker: a 1-thread pool would then never run another job.
        let pool = ThreadPool::new(1);
        pool.execute(|| panic!("fire-and-forget boom"));
        assert_eq!(pool.submit(|| 5).join(), 5, "worker still alive");
        assert_eq!(pool.contained_panics(), 1);
    }

    #[test]
    fn is_done_flips_after_completion() {
        let pool = ThreadPool::new(1);
        let t = pool.submit(|| 1);
        // Ensure the job has run by submitting a second and joining it.
        pool.submit(|| 2).join();
        assert!(t.is_done());
        assert_eq!(t.join(), 1);
    }
}
