//! A fixed-size worker pool over a shared blocking job queue.

use blockingq::{BlockingQueue, MVar};
// Worker threads spawn through the parking_lot shim so the whole pool is
// virtualized under --cfg schedtest (see DESIGN.md § "Schedule
// exploration").
use parking_lot::thread::JoinHandle;
use std::num::NonZeroUsize;
use std::sync::OnceLock;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A fixed-size thread pool.
///
/// Jobs are drawn FIFO from a shared unbounded queue by `threads` workers.
/// Dropping the pool closes the queue and joins the workers after the
/// already-queued jobs have drained.
pub struct ThreadPool {
    queue: BlockingQueue<Job>,
    workers: Vec<JoinHandle<()>>,
}

impl ThreadPool {
    /// Create a pool with `threads` worker threads (minimum 1).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let queue: BlockingQueue<Job> = BlockingQueue::unbounded();
        let workers = (0..threads)
            .map(|i| {
                let queue = queue.clone();
                obs_on!(crate::stats::pool().workers_spawned.inc(););
                parking_lot::thread::Builder::new()
                    .name(format!("exec-worker-{i}"))
                    .spawn(move || {
                        while let Some(job) = queue.take() {
                            obs_on!(let _busy = crate::stats::pool().busy.start(););
                            job();
                            obs_on!(crate::stats::pool().tasks_run.inc(););
                        }
                    })
                    .expect("failed to spawn pool worker")
            })
            .collect();
        ThreadPool { queue, workers }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Enqueue a fire-and-forget job.
    pub fn execute<F: FnOnce() + Send + 'static>(&self, job: F) {
        self.queue
            .put(Box::new(job))
            .unwrap_or_else(|_| panic!("pool is shut down"));
        obs_on!(crate::stats::pool().tasks_queued.inc(););
    }

    /// Enqueue a job and get a [`Task`] handle resolving to its result.
    ///
    /// If the job panics the panic payload is captured and re-raised in
    /// [`Task::join`], mirroring `std::thread::JoinHandle`.
    pub fn submit<T, F>(&self, job: F) -> Task<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        let slot: MVar<std::thread::Result<T>> = MVar::empty();
        let slot2 = slot.clone();
        self.execute(move || {
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
            slot2.put(result);
        });
        Task { slot }
    }

    /// Drain all queued jobs and stop the workers, blocking until done.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        self.queue.close();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// Handle to a submitted job's eventual result.
pub struct Task<T> {
    slot: MVar<std::thread::Result<T>>,
}

impl<T> Task<T> {
    /// Block until the job completes and return its result.
    ///
    /// # Panics
    /// Re-raises the job's panic, like `JoinHandle::join().unwrap()`.
    pub fn join(self) -> T {
        match self.slot.take() {
            Ok(v) => v,
            Err(payload) => std::panic::resume_unwind(payload),
        }
    }

    /// True iff the job has completed (successfully or by panicking).
    pub fn is_done(&self) -> bool {
        self.slot.is_full()
    }
}

/// The worker count the global pool will use (or already uses): the
/// `EXEC_THREADS` environment variable when set to a positive integer,
/// otherwise the number of available cores.
///
/// Exposed so harnesses (the figure 6 runner) can record the effective
/// size in their output without forcing the pool into existence.
pub fn global_threads() -> usize {
    if let Ok(raw) = std::env::var("EXEC_THREADS") {
        match raw.trim().parse::<usize>() {
            Ok(n) if n >= 1 => return n,
            _ => eprintln!("exec: ignoring invalid EXEC_THREADS={raw:?} (want a positive integer)"),
        }
    }
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(4)
}

/// The process-wide default pool, sized by [`global_threads`]: the
/// `EXEC_THREADS` environment variable when set, else the number of
/// available cores.
///
/// This mirrors the common-pool role of Java's `ForkJoinPool.commonPool()`
/// that backs parallel streams in the paper's baseline suite (and
/// `EXEC_THREADS` plays the role of
/// `java.util.concurrent.ForkJoinPool.common.parallelism`: scaling
/// experiments pin the pool width without recompiling).
pub fn global() -> &'static ThreadPool {
    static GLOBAL: OnceLock<ThreadPool> = OnceLock::new();
    GLOBAL.get_or_init(|| ThreadPool::new(global_threads()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn executes_all_jobs() {
        let pool = ThreadPool::new(4);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..100 {
            let c = counter.clone();
            pool.execute(move || {
                c.fetch_add(1, Ordering::SeqCst);
            });
        }
        pool.shutdown();
        assert_eq!(counter.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn submit_returns_result() {
        let pool = ThreadPool::new(2);
        let t = pool.submit(|| 6 * 7);
        assert_eq!(t.join(), 42);
    }

    #[test]
    fn submit_many_ordered_by_handle() {
        let pool = ThreadPool::new(3);
        let tasks: Vec<Task<usize>> = (0..50).map(|i| pool.submit(move || i * i)).collect();
        let results: Vec<usize> = tasks.into_iter().map(Task::join).collect();
        assert_eq!(results, (0..50).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn panicking_job_propagates_on_join() {
        let pool = ThreadPool::new(1);
        let t: Task<()> = pool.submit(|| panic!("boom"));
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| t.join()));
        assert!(err.is_err());
        // Pool survives the panic and keeps executing jobs.
        assert_eq!(pool.submit(|| 5).join(), 5);
    }

    #[test]
    fn single_thread_pool_runs_sequentially() {
        let pool = ThreadPool::new(1);
        let log = Arc::new(parking_lot::Mutex::new(Vec::new()));
        for i in 0..10 {
            let log = log.clone();
            pool.execute(move || log.lock().push(i));
        }
        pool.shutdown();
        assert_eq!(*log.lock(), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn uses_multiple_workers() {
        // With 4 workers and 4 jobs that each wait for all jobs to start,
        // completion requires genuine parallelism.
        let pool = ThreadPool::new(4);
        let barrier = Arc::new(std::sync::Barrier::new(4));
        let tasks: Vec<Task<()>> = (0..4)
            .map(|_| {
                let b = barrier.clone();
                pool.submit(move || {
                    b.wait();
                })
            })
            .collect();
        for t in tasks {
            t.join();
        }
    }

    #[test]
    fn global_pool_is_shared() {
        let a = global() as *const ThreadPool;
        let b = global() as *const ThreadPool;
        assert_eq!(a, b);
        assert!(global().threads() >= 1);
        assert_eq!(global().submit(|| "ok").join(), "ok");
    }

    #[test]
    fn exec_threads_env_overrides_width() {
        // Runs in its own process-state bubble: no other test in this
        // binary reads EXEC_THREADS outside `global()`, which is forced
        // *without* the variable first so the OnceLock is already settled.
        let _ = global().threads();
        std::env::set_var("EXEC_THREADS", "3");
        assert_eq!(global_threads(), 3);
        std::env::set_var("EXEC_THREADS", "  7 ");
        assert_eq!(global_threads(), 7);
        std::env::set_var("EXEC_THREADS", "0");
        let fallback = global_threads(); // invalid: falls back to cores
        assert!(fallback >= 1);
        std::env::set_var("EXEC_THREADS", "lots");
        assert!(global_threads() >= 1);
        std::env::remove_var("EXEC_THREADS");
        assert!(global_threads() >= 1);
    }

    #[test]
    fn is_done_flips_after_completion() {
        let pool = ThreadPool::new(1);
        let t = pool.submit(|| 1);
        // Ensure the job has run by submitting a second and joining it.
        pool.submit(|| 2).join();
        assert!(t.is_done());
        assert_eq!(t.join(), 1);
    }
}
