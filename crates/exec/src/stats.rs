//! Instrumentation points for the thread pool (`obs` feature only).
//!
//! Shared process-wide metric family in the global [`obs::Registry`];
//! see `blockingq::stats` for the design rationale. Pool utilization is
//! `busy.total_ns / (workers × wall time of the run)` — the snapshot
//! carries the numerator, the benchmark harness knows the denominator.

use std::sync::{Arc, OnceLock};

/// Metrics for [`crate::ThreadPool`].
pub(crate) struct PoolStats {
    /// Worker threads ever spawned.
    pub workers_spawned: Arc<obs::Counter>,
    /// Jobs accepted into pool queues (`execute`/`submit`).
    pub tasks_queued: Arc<obs::Counter>,
    /// Jobs actually run by workers.
    pub tasks_run: Arc<obs::Counter>,
    /// Per-job busy time on workers (count, total, and latency window).
    pub busy: Arc<obs::Timer>,
    /// Job panics contained by workers (the worker survived).
    pub contained_panics: Arc<obs::Counter>,
}

pub(crate) fn pool() -> &'static PoolStats {
    static STATS: OnceLock<PoolStats> = OnceLock::new();
    STATS.get_or_init(|| PoolStats {
        workers_spawned: obs::counter("exec.pool.workers_spawned"),
        tasks_queued: obs::counter("exec.pool.tasks_queued"),
        tasks_run: obs::counter("exec.pool.tasks_run"),
        busy: obs::timer("exec.pool.busy"),
        contained_panics: obs::counter("exec.pool.contained_panics"),
    })
}
