//! Task execution substrate: a fixed thread pool and task handles.
//!
//! The paper's pipes "leverage Java's facilities for thread pool management
//! and support for multi-core execution" (Sec. V.D). This crate is that
//! facility for the Rust reproduction: a small fixed-size pool fed from a
//! shared [`blockingq::BlockingQueue`] of jobs, plus a [`Task`] handle that
//! resolves a write-once [`blockingq::Future`] with the job's result.

mod pool;

pub use pool::{global, Task, ThreadPool};
