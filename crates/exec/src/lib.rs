//! Task execution substrate: a fixed thread pool and task handles.
//!
//! The paper's pipes "leverage Java's facilities for thread pool management
//! and support for multi-core execution" (Sec. V.D). This crate is that
//! facility for the Rust reproduction: a small fixed-size pool fed from a
//! shared [`blockingq::BlockingQueue`] of jobs, plus a [`Task`] handle that
//! resolves a write-once [`blockingq::Future`] with the job's result.

/// Expands its body only when the `obs` feature is on (see the identical
/// shim in `blockingq`): instrumentation sites vanish entirely when
/// observability is disabled.
#[cfg(feature = "obs")]
macro_rules! obs_on {
    ($($body:tt)*) => { $($body)* };
}
#[cfg(not(feature = "obs"))]
macro_rules! obs_on {
    ($($body:tt)*) => {};
}

mod pool;
#[cfg(feature = "obs")]
mod stats;

pub use pool::{global, global_threads, Task, ThreadPool};
