//! Task execution substrate: a fixed thread pool and task handles.
//!
//! The paper's pipes "leverage Java's facilities for thread pool management
//! and support for multi-core execution" (Sec. V.D). This crate is that
//! facility for the Rust reproduction: a small fixed-size pool fed from a
//! shared [`blockingq::BlockingQueue`] of jobs, plus a [`Task`] handle that
//! resolves a write-once [`blockingq::Future`] with the job's result.

/// Expands its body only when the `obs` feature is on (see the identical
/// shim in `blockingq`): instrumentation sites vanish entirely when
/// observability is disabled.
#[cfg(feature = "obs")]
macro_rules! obs_on {
    ($($body:tt)*) => { $($body)* };
}
#[cfg(not(feature = "obs"))]
macro_rules! obs_on {
    ($($body:tt)*) => {};
}

/// A deterministic fault-injection site (see the `faultinj` crate): a
/// no-op unless this crate's `faultinj` feature is on *and* the site is
/// armed. Armed sites panic; the worker's containment turns that into a
/// counted contained panic instead of a dead worker.
#[cfg(feature = "faultinj")]
macro_rules! faultpoint {
    ($site:expr) => {
        faultinj::hit($site)
    };
}
#[cfg(not(feature = "faultinj"))]
macro_rules! faultpoint {
    ($site:expr) => {};
}

mod pool;
#[cfg(feature = "obs")]
mod stats;

pub use pool::{global, global_threads, SubmitError, Task, ThreadPool};

/// Force-create this crate's metric family so snapshots carry explicit
/// zeros before any pool runs. No-op without the `obs` feature.
pub fn obs_register() {
    #[cfg(feature = "obs")]
    stats::pool();
}
