//! The suspendable, failure-driven iterator trait.

use crate::value::Value;

/// One step of a generator: a suspended value, or failure.
#[derive(Clone, Debug, PartialEq)]
pub enum Step {
    /// The generator suspends, producing a value; resuming continues from
    /// the point of suspension.
    Suspend(Value),
    /// The generator fails: no (further) result. Failure terminates the
    /// iterator until it is restarted.
    Fail,
}

impl Step {
    /// The suspended value, if any.
    pub fn value(self) -> Option<Value> {
        match self {
            Step::Suspend(v) => Some(v),
            Step::Fail => None,
        }
    }

    /// True iff this step failed.
    pub fn is_fail(&self) -> bool {
        matches!(self, Step::Fail)
    }
}

/// A suspendable, failure-driven, restartable generator — the
/// `IconIterator` contract of Sec. V.B.
///
/// # Contract
///
/// * [`Gen::resume`] returns `Suspend(v)` for each result in turn, then
///   `Fail`. After a `Fail`, further `resume` calls keep returning `Fail`
///   until [`Gen::restart`] is called.
/// * [`Gen::restart`] resets the generator to its initial state. Generators
///   that read [`crate::Var`]s re-read them after a restart, so restarting
///   re-evaluates the expression against the current environment — the
///   property the backtracking product `e & e'` relies on.
pub trait Gen: Send {
    /// Produce the next result or fail.
    fn resume(&mut self) -> Step;
    /// Reset to the initial state (the next `resume` starts over).
    fn restart(&mut self);
    /// Rebind this generator to a fresh source value in place, as if the
    /// flat-stage factory had just constructed it over `v`. Returns
    /// `false` (the default) when in-place rebinding is unsupported, in
    /// which case the caller builds a fresh generator instead.
    ///
    /// Flat barriers ([`crate::comb::fuse::FlatFused`]) construct one
    /// sub-generator per outer value — for a line/word pipeline that is
    /// one heap allocation per *line*. A factory-built generator that
    /// implements `rebind` lets the barrier recycle the previous
    /// allocation across outer values instead.
    fn rebind(&mut self, _v: &Value) -> bool {
        false
    }
}

/// The ubiquitous owned generator type.
pub type BoxGen = Box<dyn Gen>;

impl Gen for BoxGen {
    fn resume(&mut self) -> Step {
        (**self).resume()
    }
    fn restart(&mut self) {
        (**self).restart()
    }
    fn rebind(&mut self, v: &Value) -> bool {
        (**self).rebind(v)
    }
}

/// Convenience adaptors over any generator.
pub trait GenExt: Gen {
    /// `resume` flattened into an `Option`.
    fn next_value(&mut self) -> Option<Value> {
        self.resume().value()
    }

    /// Drain into a vector (runs to failure).
    fn collect_values(&mut self) -> Vec<Value> {
        let mut out = Vec::new();
        while let Step::Suspend(v) = self.resume() {
            out.push(v);
        }
        out
    }

    /// The first result, if any (leaves the generator mid-iteration).
    fn first(&mut self) -> Option<Value> {
        self.next_value()
    }

    /// Count the results (runs to failure).
    fn count(&mut self) -> usize {
        let mut n = 0;
        while let Step::Suspend(_) = self.resume() {
            n += 1;
        }
        n
    }
}

impl<G: Gen + ?Sized> GenExt for G {}

/// Adapter exposing a [`Gen`] as a standard Rust [`Iterator`].
///
/// This is the "exposed as a Java Iterator used in the for statement" side
/// of Fig. 3: embedded generator expressions interoperate with native
/// iteration.
pub struct GenIter<G: Gen>(pub G);

impl<G: Gen> Iterator for GenIter<G> {
    type Item = Value;
    fn next(&mut self) -> Option<Value> {
        self.0.next_value()
    }
}

impl IntoIterator for Box<dyn Gen> {
    type Item = Value;
    type IntoIter = GenIter<BoxGen>;
    fn into_iter(self) -> Self::IntoIter {
        GenIter(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comb::{to_range, unit};

    #[test]
    fn step_accessors() {
        assert_eq!(Step::Suspend(Value::from(1)).value(), Some(Value::from(1)));
        assert_eq!(Step::Fail.value(), None);
        assert!(Step::Fail.is_fail());
        assert!(!Step::Suspend(Value::Null).is_fail());
    }

    #[test]
    fn collect_and_count() {
        let mut g = to_range(1, 4, 1);
        assert_eq!(
            g.collect_values()
                .iter()
                .map(|v| v.as_int().unwrap())
                .collect::<Vec<_>>(),
            vec![1, 2, 3, 4]
        );
        g.restart();
        assert_eq!(g.count(), 4);
    }

    #[test]
    fn gen_iter_interop() {
        let vals: Vec<i64> = GenIter(to_range(10, 12, 1))
            .map(|v| v.as_int().unwrap())
            .collect();
        assert_eq!(vals, vec![10, 11, 12]);
    }

    #[test]
    fn boxed_into_iterator() {
        let g: BoxGen = Box::new(unit(Value::from(5)));
        let vals: Vec<Value> = g.into_iter().collect();
        assert_eq!(vals.len(), 1);
    }
}
