//! The string builder arena — shared append-only buffers behind
//! [`Value::Built`](crate::Value::Built).
//!
//! `ops::concat` used to re-own every result into a fresh `String` +
//! `Arc<str>`; on concat-heavy paths (the paper's per-word `word=count`
//! formatting, report assembly) that is two allocations per `||`. The
//! builder arena replaces them with *windows into a shared chunk*: a
//! [`StrBuilder`] appends operand bytes into its current [`StrBuf`] chunk
//! and hands out `(chunk, start, len)` handles — the string analogue of
//! the per-line slice arena from the compact-value work. Three regimes,
//! from cheapest up:
//!
//! * **adjacency widening** — the operands are windows of the *same*
//!   owner and textually adjacent (`a` ends exactly where `b` starts):
//!   the result is a wider window of that owner, zero bytes copied
//!   (counted as `gde.value.concat_slices`);
//! * **tail extension** — the left operand is the *last published
//!   window* of the builder's current chunk: only the right operand's
//!   bytes are appended and the window widens over both (also
//!   `concat_slices`: the left operand's bytes were not re-copied);
//! * **fresh append** — both operands are copied into the chunk and the
//!   result windows over the pair (`gde.value.concat_copies`; still one
//!   amortized allocation instead of two per concat).
//!
//! # Ownership and soundness
//!
//! A [`StrBuf`] is an append-only byte chunk with a published length.
//! The *single* writer is the `StrBuilder` that allocated it (builders
//! are not `Clone`, chunks are never handed to another builder): it
//! writes only bytes **at or beyond** the published length, then
//! publishes the new length with a `Release` store. Readers
//! ([`StrBuf::window`]) only dereference windows validated against a
//! length they loaded with `Acquire`, so writer and readers always touch
//! disjoint bytes — published bytes are immutable for the rest of the
//! chunk's life. That published-prefix-immutable invariant is what makes
//! the `unsafe impl Send/Sync` below sound, and it is exactly the
//! promote-at-escape discipline of the line arenas: a window pins its
//! chunk via `Arc`, and any window that escapes its stage is promoted to
//! an owned form by the same hatches slices use ([`crate::Value::promote`]).
//!
//! When a result does not fit the current chunk the builder *retires* it
//! (outstanding windows keep it alive through their `Arc`s; a chunk with
//! no windows drops immediately) and starts a fresh one, growing
//! geometrically up to a cap so a long report does not thrash chunk
//! allocation. Windows never span chunks.

use std::cell::{RefCell, UnsafeCell};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

/// First chunk size; retirement doubles up to [`MAX_CHUNK`].
const MIN_CHUNK: usize = 1 << 12;
/// Geometric growth cap — a single oversized result still gets a
/// dedicated chunk of its own size, but steady-state chunks stop here.
const MAX_CHUNK: usize = 1 << 16;

/// An append-only shared string chunk: the arena behind
/// [`Value::Built`](crate::Value::Built) windows.
///
/// Bytes up to [`StrBuf::len`] are published UTF-8 and immutable; bytes
/// beyond it belong exclusively to the owning [`StrBuilder`].
pub struct StrBuf {
    bytes: Box<[UnsafeCell<u8>]>,
    /// Published length: `Release`-stored by the writer after the bytes
    /// are in place, `Acquire`-loaded by readers.
    len: AtomicUsize,
}

// Safety: the writer only mutates bytes >= the published `len` and is
// unique (StrBuilder is not Clone and never shares its current chunk
// with another builder); readers only dereference bytes < a published
// `len` they Acquire-loaded. Writer and readers are therefore always
// disjoint, and published bytes are immutable.
unsafe impl Send for StrBuf {}
unsafe impl Sync for StrBuf {}

impl StrBuf {
    fn with_capacity(cap: usize) -> Arc<StrBuf> {
        Arc::new(StrBuf {
            bytes: (0..cap).map(|_| UnsafeCell::new(0)).collect(),
            len: AtomicUsize::new(0),
        })
    }

    /// Published length in bytes.
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Acquire)
    }

    /// True iff nothing has been published into this chunk yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.bytes.len()
    }

    /// View a published window as text.
    ///
    /// # Panics
    /// If the window reaches beyond the published length. A window that
    /// splits a UTF-8 sequence panics in debug builds only — windows
    /// handed out by the builder always sit on char boundaries of
    /// published `&str` writes.
    pub fn window(&self, start: usize, end: usize) -> &str {
        let published = self.len();
        assert!(
            start <= end && end <= published,
            "StrBuf window {start}..{end} beyond published {published}"
        );
        // Safety: the published prefix is immutable (see type-level
        // comment), so a shared slice of it cannot race the writer.
        let bytes = unsafe {
            std::slice::from_raw_parts(self.bytes[start].get() as *const u8, end - start)
        };
        debug_assert!(
            std::str::from_utf8(bytes).is_ok(),
            "StrBuf window {start}..{end} splits a UTF-8 sequence"
        );
        // Safety: every published byte came from a `&str` via `push_str`/
        // `push_concat`/`try_extend`, and the builder only hands out
        // windows aligned to those writes — re-validating on every read
        // would make `BuiltStr::as_str` O(len) per call.
        unsafe { std::str::from_utf8_unchecked(bytes) }
    }

    /// Writer-side copy: `src` into `start..start+src.len()`, which must
    /// lie wholly at or beyond the published length.
    fn write(&self, start: usize, src: &[u8]) {
        debug_assert!(start >= self.len() && start + src.len() <= self.capacity());
        for (i, b) in src.iter().enumerate() {
            // Safety: exclusive writer (see type-level comment) and the
            // range is unpublished, so no reader can alias it.
            unsafe { *self.bytes[start + i].get() = *b };
        }
    }

    fn publish(&self, new_len: usize) {
        self.len.store(new_len, Ordering::Release);
    }
}

/// A window into a [`StrBuf`] as the builder hands them out.
#[derive(Clone)]
pub struct BufWindow {
    pub buf: Arc<StrBuf>,
    pub start: u32,
    pub len: u32,
}

/// The per-stage string builder: owns the current chunk, appends concat
/// operands, and hands out [`BufWindow`]s. Not `Clone` — one writer per
/// chunk, by construction.
pub struct StrBuilder {
    chunk: Arc<StrBuf>,
}

impl Default for StrBuilder {
    fn default() -> Self {
        StrBuilder::new()
    }
}

impl StrBuilder {
    /// A builder with an empty initial chunk.
    pub fn new() -> StrBuilder {
        StrBuilder {
            chunk: StrBuf::with_capacity(MIN_CHUNK),
        }
    }

    /// The current chunk (tests use this to watch arena lifetime through
    /// a `Weak`).
    pub fn chunk(&self) -> &Arc<StrBuf> {
        &self.chunk
    }

    /// Retire the current chunk and start a fresh one with room for at
    /// least `needed` bytes.
    fn retire(&mut self, needed: usize) {
        let grown = (self.chunk.capacity() * 2).clamp(MIN_CHUNK, MAX_CHUNK);
        self.chunk = StrBuf::with_capacity(grown.max(needed));
    }

    /// Append `text` as a fresh published window.
    pub fn push_str(&mut self, text: &str) -> BufWindow {
        let start = self.reserve(text.len());
        self.chunk.write(start, text.as_bytes());
        self.chunk.publish(start + text.len());
        BufWindow {
            buf: self.chunk.clone(),
            start: start as u32,
            len: text.len() as u32,
        }
    }

    /// Append the concatenation `a || b` as one published window.
    pub fn push_concat(&mut self, a: &str, b: &str) -> BufWindow {
        let total = a.len() + b.len();
        let start = self.reserve(total);
        self.chunk.write(start, a.as_bytes());
        self.chunk.write(start + a.len(), b.as_bytes());
        self.chunk.publish(start + total);
        BufWindow {
            buf: self.chunk.clone(),
            start: start as u32,
            len: total as u32,
        }
    }

    /// Tail extension: if `w` is the last published window of the
    /// *current* chunk and `b` fits (possibly after growth is ruled
    /// out — extension never relocates), append only `b`'s bytes and
    /// return the widened window. `None` means the caller must fall back
    /// to a fresh [`StrBuilder::push_concat`].
    pub fn try_extend(&mut self, w: &BufWindow, b: &str) -> Option<BufWindow> {
        let end = (w.start + w.len) as usize;
        if !Arc::ptr_eq(&w.buf, &self.chunk) || end != self.chunk.len() {
            return None;
        }
        if end + b.len() > self.chunk.capacity() {
            return None;
        }
        self.chunk.write(end, b.as_bytes());
        self.chunk.publish(end + b.len());
        Some(BufWindow {
            buf: self.chunk.clone(),
            start: w.start,
            len: w.len + b.len() as u32,
        })
    }

    /// Room for `n` more bytes in the current chunk, retiring it if
    /// necessary; returns the write offset.
    fn reserve(&mut self, n: usize) -> usize {
        let len = self.chunk.len();
        if len + n > self.chunk.capacity() {
            self.retire(n);
            0
        } else {
            len
        }
    }
}

thread_local! {
    /// The per-thread builder behind `ops::concat`: stages are
    /// thread-confined (a generator resumes on one thread at a time, and
    /// values crossing a pipe are deep-copied/promoted), so a
    /// thread-local arena gives every stage builder-backed concatenation
    /// with no plumbing and no locks — and therefore no new scheduling
    /// points for the schedtest model suites.
    static BUILDER: RefCell<StrBuilder> = RefCell::new(StrBuilder::new());
}

/// Run `f` with the calling thread's string builder.
pub fn with_builder<R>(f: impl FnOnce(&mut StrBuilder) -> R) -> R {
    BUILDER.with(|b| f(&mut b.borrow_mut()))
}

/// Test-only mutation hook for the differential suite: when set, the
/// adjacency fast path in `ops::concat` widens its window *one byte
/// short* — the classic off-by-one the boxed-vs-builder differential
/// must catch (`gde/tests/strplane_diff.rs`). Production code must never
/// enable it.
#[doc(hidden)]
pub static ADJACENCY_SKEW: AtomicBool = AtomicBool::new(false);

#[doc(hidden)]
pub fn set_adjacency_skew(on: bool) {
    ADJACENCY_SKEW.store(on, Ordering::SeqCst);
}

pub(crate) fn adjacency_skew() -> bool {
    ADJACENCY_SKEW.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_read_back_what_was_pushed() {
        let mut b = StrBuilder::new();
        let w1 = b.push_str("hello");
        let w2 = b.push_concat(" ", "world");
        assert_eq!(
            w1.buf
                .window(w1.start as usize, (w1.start + w1.len) as usize),
            "hello"
        );
        assert_eq!(
            w2.buf
                .window(w2.start as usize, (w2.start + w2.len) as usize),
            " world"
        );
    }

    #[test]
    fn tail_extension_widens_in_place() {
        let mut b = StrBuilder::new();
        let w = b.push_str("ab");
        let wide = b.try_extend(&w, "cd").expect("tail window must extend");
        assert!(Arc::ptr_eq(&w.buf, &wide.buf));
        assert_eq!(wide.start, w.start);
        assert_eq!(
            wide.buf
                .window(wide.start as usize, (wide.start + wide.len) as usize),
            "abcd"
        );
    }

    #[test]
    fn non_tail_windows_do_not_extend() {
        let mut b = StrBuilder::new();
        let w = b.push_str("ab");
        let _later = b.push_str("xx"); // w is no longer the tail
        assert!(b.try_extend(&w, "cd").is_none());
    }

    #[test]
    fn retirement_keeps_old_windows_alive() {
        let mut b = StrBuilder::new();
        let w = b.push_str("keep");
        let first_chunk = Arc::downgrade(&w.buf);
        // Overflow the chunk: forces retirement.
        let big = "y".repeat(MIN_CHUNK);
        let w2 = b.push_str(&big);
        assert!(!Arc::ptr_eq(&w.buf, &w2.buf), "oversize push must retire");
        assert_eq!(w.buf.window(0, 4), "keep", "retired chunk still readable");
        drop(w);
        assert!(
            first_chunk.upgrade().is_none(),
            "retired chunk must drop with its last window"
        );
    }

    #[test]
    fn oversize_results_get_dedicated_chunks() {
        let mut b = StrBuilder::new();
        let huge = "z".repeat(MAX_CHUNK + 17);
        let w = b.push_str(&huge);
        assert_eq!(w.len as usize, huge.len());
        assert_eq!(
            w.buf.window(w.start as usize, (w.start + w.len) as usize),
            huge
        );
    }

    #[test]
    fn extension_respects_capacity() {
        let mut b = StrBuilder::new();
        let w = b.push_str("start");
        let too_big = "q".repeat(MIN_CHUNK);
        assert!(b.try_extend(&w, &too_big).is_none());
    }

    #[test]
    fn published_windows_are_readable_across_threads() {
        let mut b = StrBuilder::new();
        let w = b.push_str("crossing");
        let handle = std::thread::spawn(move || {
            w.buf
                .window(w.start as usize, (w.start + w.len) as usize)
                .to_string()
        });
        // Keep writing while the reader runs: disjoint bytes.
        for _ in 0..100 {
            b.push_str("noise");
        }
        assert_eq!(handle.join().unwrap(), "crossing");
    }
}
