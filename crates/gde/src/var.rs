//! Reified variables — the `IconVar` analogue.
//!
//! Sec. V.C of the paper: "Our approach ... is to expose variables in both
//! plain and reified form while maintaining consistency between them" —
//! a declaration `local x` becomes a field plus
//! `IconVar x_r = new IconVar(()->x, (rhs)->x=rhs)`. In Rust the reified
//! form is a shared mutable cell; the "plain form" is simply [`Var::get`].
//! Reified variables are what allow generator expressions to be restarted
//! against the *current* environment, and what co-expressions copy when they
//! shadow their locals.

use crate::value::Value;
use parking_lot::Mutex;
use std::fmt;
use std::sync::Arc;

/// A shared, mutable, thread-safe variable cell.
///
/// Cloning a `Var` aliases the same cell (assignment through one alias is
/// seen by all); [`Var::fresh_copy`] creates a new cell with a copy of the
/// current value, which is the primitive used by co-expression environment
/// shadowing.
#[derive(Clone, Default)]
pub struct Var {
    cell: Arc<Mutex<Value>>,
}

impl Var {
    /// Create a variable holding `v`.
    ///
    /// Storing into a cell is an escape point for borrowed string handles:
    /// an `Env` slot can outlive the pipeline stage that produced the
    /// value, so slices are [promoted](Value::promote) to owned form here
    /// (a no-op for every other variant) rather than pinning a line
    /// buffer from inside an environment.
    pub fn new(v: Value) -> Var {
        Var {
            cell: Arc::new(Mutex::new(v.promote())),
        }
    }

    /// Create a variable holding null.
    pub fn null() -> Var {
        Var::new(Value::Null)
    }

    /// Read the current value (a cheap clone).
    pub fn get(&self) -> Value {
        self.cell.lock().clone()
    }

    /// Assign a new value (promoting borrowed handles — see [`Var::new`]).
    pub fn set(&self, v: Value) {
        *self.cell.lock() = v.promote();
    }

    /// Swap in a new value, returning the old one (promoting borrowed
    /// handles — see [`Var::new`]).
    pub fn replace(&self, v: Value) -> Value {
        std::mem::replace(&mut self.cell.lock(), v.promote())
    }

    /// Apply `f` to the current value in place (promoting borrowed
    /// handles the closure may have written — see [`Var::new`]).
    pub fn update(&self, f: impl FnOnce(&mut Value)) {
        let mut guard = self.cell.lock();
        f(&mut guard);
        if guard.is_borrowed() {
            let v = std::mem::take(&mut *guard);
            *guard = v.promote();
        }
    }

    /// A *new* cell holding a clone of the current value — the shadowing
    /// primitive for `|<>e` and `^e` ("copying local variable references
    /// upon creation" to "preclude interference").
    pub fn fresh_copy(&self) -> Var {
        Var::new(self.get())
    }

    /// True iff `other` aliases the same cell.
    pub fn same_cell(&self, other: &Var) -> bool {
        Arc::ptr_eq(&self.cell, &other.cell)
    }
}

impl fmt::Debug for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Var({:?})", self.get())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_set_roundtrip() {
        let v = Var::null();
        assert!(v.get().is_null());
        v.set(Value::from(5));
        assert_eq!(v.get().as_int(), Some(5));
    }

    #[test]
    fn clones_alias_the_same_cell() {
        let a = Var::new(Value::from(1));
        let b = a.clone();
        b.set(Value::from(2));
        assert_eq!(a.get().as_int(), Some(2));
        assert!(a.same_cell(&b));
    }

    #[test]
    fn fresh_copy_isolates() {
        let a = Var::new(Value::from(1));
        let b = a.fresh_copy();
        b.set(Value::from(99));
        assert_eq!(a.get().as_int(), Some(1));
        assert!(!a.same_cell(&b));
    }

    #[test]
    fn replace_and_update() {
        let v = Var::new(Value::from(10));
        let old = v.replace(Value::from(20));
        assert_eq!(old.as_int(), Some(10));
        v.update(|val| *val = Value::from(val.as_int().unwrap() + 1));
        assert_eq!(v.get().as_int(), Some(21));
    }

    #[test]
    fn vars_are_send_and_shareable() {
        let v = Var::new(Value::from(0));
        let v2 = v.clone();
        std::thread::spawn(move || v2.set(Value::from(7)))
            .join()
            .unwrap();
        assert_eq!(v.get().as_int(), Some(7));
    }
}
