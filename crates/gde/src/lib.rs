//! Goal-directed evaluation runtime.
//!
//! This crate is the Rust analogue of the paper's Java kernel (Sec. V.B,
//! Sec. VI): "a single Java class, IconIterator, implements the stream-like
//! interface in a tightly knitted logic that provides iteration that is
//! suspendable, failure-driven, and optionally reversible." Everything the
//! transformation targets lives here:
//!
//! * [`Value`] — the dynamic value universe of the embedded language (null,
//!   machine and big integers, reals, strings, lists, tables, procedures,
//!   co-expressions);
//! * [`Gen`] / [`Step`] — suspendable, failure-driven, restartable iterators
//!   (the `IconIterator` contract: failure terminates the iterator, restart
//!   resets it to re-evaluate against the current environment);
//! * [`comb`] — the composition forms the transformation maps constructs
//!   onto: product (`&`), alternation (`|`), bound iteration (`x in e`),
//!   limitation, bounded expressions, `to` ranges, promotion (`!e`),
//!   invocation, and the control constructs `every`/`while`/`if`;
//! * [`Var`] — reified variables (the `IconVar` analogue) giving the
//!   first-class reference semantics of Sec. V.C;
//! * [`ops`] — the goal-directed operators: arithmetic with automatic big-
//!   integer promotion and string→numeric coercion, and comparisons that
//!   *succeed producing their right operand* or fail;
//! * [`func`] — variadic generator functions ([`ProcValue`]) and lifting of
//!   native Rust functions into singleton iterators;
//! * `env` — lexical environments of reified variables, copied ("shadowed")
//!   by co-expressions.
//!
//! # The iterator contract
//!
//! A [`Gen`] produces a sequence of values by repeated [`Gen::resume`] calls,
//! each returning [`Step::Suspend`] with the next value, until it returns
//! [`Step::Fail`] — failure *is* the termination signal, exactly as in Icon
//! ("generators, when viewed as Java iterators, are terminated by failure of
//! the next() method"). After failing, a generator keeps failing until
//! [`Gen::restart`] is called, which resets it to the beginning; restart
//! re-reads any [`Var`]s the generator references, so a restarted generator
//! re-evaluates in the *current* environment. This is what makes the
//! backtracking product work: `e & e'` restarts `e'` for every value of `e`.

/// Expands its body only when the `obs` feature is on (the same shim as
/// in `blockingq`/`wordcount`): instrumentation sites vanish entirely
/// when observability is disabled.
#[cfg(feature = "obs")]
macro_rules! obs_on {
    ($($body:tt)*) => { $($body)* };
}
#[cfg(not(feature = "obs"))]
macro_rules! obs_on {
    ($($body:tt)*) => {};
}

/// Cached handles to this crate's hot-path counters. `obs::counter(name)`
/// takes the registry lock on every call; these sites run per variable
/// reference / per interned word, so each counter's `Arc` is resolved once
/// and parked in a `OnceLock`.
#[cfg(feature = "obs")]
pub(crate) mod obs_hot {
    use std::sync::{Arc, OnceLock};

    macro_rules! cached_counter {
        ($fn_name:ident, $metric:literal) => {
            pub(crate) fn $fn_name() -> &'static Arc<obs::Counter> {
                static C: OnceLock<Arc<obs::Counter>> = OnceLock::new();
                C.get_or_init(|| obs::counter($metric))
            }
        };
    }

    cached_counter!(slot_hits, "gde.env.slot_hits");
    cached_counter!(name_fallbacks, "gde.env.name_fallbacks");
    cached_counter!(interned, "gde.sym.interned");
    cached_counter!(fused_stages, "gde.comb.fused_stages");
    cached_counter!(fusion_barriers, "gde.comb.fusion_barriers");
    cached_counter!(value_inline_hits, "gde.value.inline_hits");
    cached_counter!(value_promotions, "gde.value.promotions");
    cached_counter!(value_arc_clones, "gde.value.arc_clones");
    cached_counter!(concat_slices, "gde.value.concat_slices");
    cached_counter!(concat_copies, "gde.value.concat_copies");
    cached_counter!(coerce_cached, "gde.value.coerce_cached");
}

/// Force-register this crate's hot-path counters with the obs registry
/// (at zero) without bumping any of them.
///
/// Snapshot readers use this so the *absence* of environment activity is
/// stated explicitly: a figure-6 report that claims "no by-name
/// fallbacks on the embedded hot path" should show
/// `gde.env.name_fallbacks = 0`, not silently omit the metric.
#[cfg(feature = "obs")]
pub fn obs_register() {
    let _ = obs_hot::slot_hits();
    let _ = obs_hot::name_fallbacks();
    let _ = obs_hot::interned();
    let _ = obs_hot::fused_stages();
    let _ = obs_hot::fusion_barriers();
    let _ = obs_hot::value_inline_hits();
    let _ = obs_hot::value_promotions();
    let _ = obs_hot::value_arc_clones();
    let _ = obs_hot::concat_slices();
    let _ = obs_hot::concat_copies();
    let _ = obs_hot::coerce_cached();
}

pub mod comb;
pub mod env;
pub mod func;
mod gen;
pub mod ops;
pub mod strbuf;
pub mod sym;
mod value;
mod var;

pub use env::{Env, FrameLayout};
pub use func::ProcValue;
pub use gen::{BoxGen, Gen, GenExt, GenIter, Step};
pub use strbuf::{StrBuf, StrBuilder};
pub use sym::Symbol;
pub use value::{BuiltStr, CoRef, Coroutine, Key, ObjData, ObjRef, StrSlice, Value};
pub use var::Var;
