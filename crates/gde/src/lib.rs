//! Goal-directed evaluation runtime.
//!
//! This crate is the Rust analogue of the paper's Java kernel (Sec. V.B,
//! Sec. VI): "a single Java class, IconIterator, implements the stream-like
//! interface in a tightly knitted logic that provides iteration that is
//! suspendable, failure-driven, and optionally reversible." Everything the
//! transformation targets lives here:
//!
//! * [`Value`] — the dynamic value universe of the embedded language (null,
//!   machine and big integers, reals, strings, lists, tables, procedures,
//!   co-expressions);
//! * [`Gen`] / [`Step`] — suspendable, failure-driven, restartable iterators
//!   (the `IconIterator` contract: failure terminates the iterator, restart
//!   resets it to re-evaluate against the current environment);
//! * [`comb`] — the composition forms the transformation maps constructs
//!   onto: product (`&`), alternation (`|`), bound iteration (`x in e`),
//!   limitation, bounded expressions, `to` ranges, promotion (`!e`),
//!   invocation, and the control constructs `every`/`while`/`if`;
//! * [`Var`] — reified variables (the `IconVar` analogue) giving the
//!   first-class reference semantics of Sec. V.C;
//! * [`ops`] — the goal-directed operators: arithmetic with automatic big-
//!   integer promotion and string→numeric coercion, and comparisons that
//!   *succeed producing their right operand* or fail;
//! * [`func`] — variadic generator functions ([`ProcValue`]) and lifting of
//!   native Rust functions into singleton iterators;
//! * `env` — lexical environments of reified variables, copied ("shadowed")
//!   by co-expressions.
//!
//! # The iterator contract
//!
//! A [`Gen`] produces a sequence of values by repeated [`Gen::resume`] calls,
//! each returning [`Step::Suspend`] with the next value, until it returns
//! [`Step::Fail`] — failure *is* the termination signal, exactly as in Icon
//! ("generators, when viewed as Java iterators, are terminated by failure of
//! the next() method"). After failing, a generator keeps failing until
//! [`Gen::restart`] is called, which resets it to the beginning; restart
//! re-reads any [`Var`]s the generator references, so a restarted generator
//! re-evaluates in the *current* environment. This is what makes the
//! backtracking product work: `e & e'` restarts `e'` for every value of `e`.

pub mod comb;
pub mod env;
pub mod func;
mod gen;
pub mod ops;
mod value;
mod var;

pub use func::ProcValue;
pub use gen::{BoxGen, Gen, GenExt, GenIter, Step};
pub use value::{CoRef, Coroutine, Key, ObjData, ObjRef, Value};
pub use var::Var;
