//! Variadic generator functions.
//!
//! Sec. V.C: "Since methods in Unicon are variadic, i.e., they can take any
//! number of arguments, they are effectively translated into variadic lambda
//! expressions that return an iterator." A [`ProcValue`] is exactly that: a
//! named, shareable closure from an argument vector to a fresh generator.
//! Missing arguments read as null; extra arguments are ignored by bodies
//! that do not unpack them — both Icon behaviours.

use crate::comb::{thunk, Thunk};
use crate::gen::BoxGen;
use crate::value::Value;
use std::sync::Arc;

type ProcFn = dyn Fn(Vec<Value>) -> BoxGen + Send + Sync;

/// A first-class procedure: invocation returns a suspendable generator.
#[derive(Clone)]
pub struct ProcValue {
    name: Arc<str>,
    f: Arc<ProcFn>,
}

impl ProcValue {
    /// Wrap a generator-function body. The body receives the (variadic)
    /// argument vector and returns the iterator for this invocation.
    pub fn new(
        name: impl AsRef<str>,
        f: impl Fn(Vec<Value>) -> BoxGen + Send + Sync + 'static,
    ) -> ProcValue {
        ProcValue {
            name: Arc::from(name.as_ref()),
            f: Arc::new(f),
        }
    }

    /// Lift a plain (non-generator) native function: its result is promoted
    /// to a singleton iterator, `None` to failure — the treatment of "plain
    /// Java methods" in Sec. V.A.
    pub fn native(
        name: impl AsRef<str>,
        f: impl Fn(&[Value]) -> Option<Value> + Send + Sync + 'static,
    ) -> ProcValue {
        let f = Arc::new(f);
        ProcValue::new(name, move |args: Vec<Value>| {
            let f = Arc::clone(&f);
            Box::new(thunk(move || f(&args))) as BoxGen
        })
    }

    /// The procedure's name (for diagnostics and `image()`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Invoke: produce a fresh generator over this argument vector.
    pub fn invoke(&self, args: Vec<Value>) -> BoxGen {
        (self.f)(args)
    }

    /// Pointer identity (used by `===`).
    pub fn same(&self, other: &ProcValue) -> bool {
        Arc::ptr_eq(&self.f, &other.f)
    }
}

impl std::fmt::Debug for ProcValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "procedure {}", self.name)
    }
}

/// Fetch argument `i`, defaulting to null — the variadic unpack convention
/// (`params.length > i ? params[i] : null` in the paper's Fig. 5).
pub fn arg(args: &[Value], i: usize) -> Value {
    args.get(i).cloned().unwrap_or(Value::Null)
}

/// Build the invocation thunk for a value that should be a procedure:
/// used by `invoke_iter` nodes after normalization. Fails (`None`) when the
/// callee is not invocable.
pub fn invoke_value(callee: &Value, args: Vec<Value>) -> Option<BoxGen> {
    match callee.deref() {
        Value::Proc(p) => Some(p.invoke(args)),
        _ => None,
    }
}

/// Convenience: a singleton generator reading one value thunk (shorthand
/// used by emitted code).
pub fn lifted(f: impl Fn() -> Option<Value> + Send + 'static) -> Thunk {
    thunk(f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comb::{to_range, values};
    use crate::gen::GenExt;
    use crate::ops;

    #[test]
    fn native_proc_promotes_result() {
        let double = ProcValue::native("double", |args| ops::mul(&arg(args, 0), &Value::from(2)));
        let mut g = double.invoke(vec![Value::from(21)]);
        assert_eq!(g.next_value().unwrap().as_int(), Some(42));
        assert!(g.next_value().is_none()); // singleton
    }

    #[test]
    fn native_proc_failure_propagates() {
        let half = ProcValue::native("half", |args| {
            let n = arg(args, 0).as_int()?;
            if n % 2 == 0 {
                Some(Value::from(n / 2))
            } else {
                None
            }
        });
        assert!(half.invoke(vec![Value::from(3)]).next_value().is_none());
        assert_eq!(
            half.invoke(vec![Value::from(8)])
                .next_value()
                .unwrap()
                .as_int(),
            Some(4)
        );
    }

    #[test]
    fn generator_proc_suspends_many() {
        let upto = ProcValue::new("upto", |args| {
            let n = arg(&args, 0).as_int().unwrap_or(0);
            Box::new(to_range(1, n, 1)) as BoxGen
        });
        let vals = upto.invoke(vec![Value::from(3)]).collect_values();
        assert_eq!(vals.len(), 3);
    }

    #[test]
    fn missing_args_are_null() {
        let probe = ProcValue::native("probe", |args| {
            Some(Value::from(if arg(args, 1).is_null() { 1 } else { 0 }))
        });
        assert_eq!(
            probe
                .invoke(vec![Value::from(9)])
                .next_value()
                .unwrap()
                .as_int(),
            Some(1)
        );
        assert_eq!(
            probe
                .invoke(vec![Value::from(9), Value::from(9)])
                .next_value()
                .unwrap()
                .as_int(),
            Some(0)
        );
    }

    #[test]
    fn each_invocation_is_independent() {
        let gen = ProcValue::new("vals", |_| {
            Box::new(values(vec![Value::from(1), Value::from(2)])) as BoxGen
        });
        let mut a = gen.invoke(vec![]);
        let mut b = gen.invoke(vec![]);
        assert_eq!(a.next_value().unwrap().as_int(), Some(1));
        assert_eq!(b.next_value().unwrap().as_int(), Some(1)); // not shared
    }

    #[test]
    fn invoke_value_dispatch() {
        let p = ProcValue::native("id", |args| Some(arg(args, 0)));
        let as_value = Value::Proc(p);
        assert!(invoke_value(&as_value, vec![Value::from(1)]).is_some());
        assert!(invoke_value(&Value::from(3), vec![]).is_none());
        assert!(invoke_value(&Value::str("f"), vec![]).is_none());
    }

    #[test]
    fn proc_identity() {
        let p = ProcValue::native("p", |_| None);
        let q = p.clone();
        let r = ProcValue::native("p", |_| None);
        assert!(p.same(&q));
        assert!(!p.same(&r));
    }
}
