//! The dynamic value universe of the embedded language.

use crate::env::Env;
use crate::func::ProcValue;
use crate::var::Var;
use bigint::BigInt;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// A coroutine as seen by the runtime: something that can be stepped (`@`),
/// restarted, and refreshed (`^`).
///
/// The concrete implementation lives in the `coexpr` crate; the trait is
/// defined here so that co-expressions can be first-class [`Value`]s without
/// a dependency cycle.
pub trait Coroutine: Send {
    /// Step one iteration (`@c`): the next value, or `None` on failure.
    fn step(&mut self) -> Option<Value>;
    /// Reset iteration to the beginning.
    fn restart(&mut self);
    /// Create a fresh copy with a new copy of the shadowed environment
    /// (`^c`). Returns `None` for coroutines that do not support refresh.
    fn refreshed(&self) -> Option<CoRef>;
    /// Number of results produced so far (Icon's `*c`).
    fn produced(&self) -> u64;
}

/// Shared handle to a [`Coroutine`].
pub type CoRef = Arc<Mutex<dyn Coroutine>>;

/// An object: the runtime form of a Unicon class instance (Sec. V.C).
///
/// Fields live in an [`Env`] frame — each field is thereby available "in
/// both plain and reified form" (the env's [`Var`] cells are the reified
/// `x_r` side; [`ObjData::get_field`] is the plain side). Methods are
/// procedures pre-bound to this object's field environment.
pub struct ObjData {
    pub class_name: Arc<str>,
    pub fields: Env,
    pub methods: Arc<std::collections::HashMap<String, ProcValue>>,
}

/// Shared handle to an object.
pub type ObjRef = Arc<ObjData>;

impl ObjData {
    /// Read a field (null if unset); `None` if the name is not a field.
    /// Only the instance's own frame is consulted — the enclosing scope
    /// (globals) is not a field.
    pub fn get_field(&self, name: &str) -> Option<Value> {
        self.fields.lookup_local(name).map(|v| v.get())
    }

    /// Write a field; fails if the name is not a declared field.
    pub fn set_field(&self, name: &str, v: Value) -> Option<Value> {
        let cell = self.fields.lookup_local(name)?;
        cell.set(v.clone());
        Some(v)
    }

    /// Look up a method bound to this object.
    pub fn method(&self, name: &str) -> Option<ProcValue> {
        self.methods.get(name).cloned()
    }
}

/// Hashable key for table subscripts (scalar values only).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Key {
    Null,
    Int(i64),
    /// Reals are keyed by bit pattern, as Icon tables key on value identity.
    RealBits(u64),
    Str(Arc<str>),
}

/// A dynamically typed value.
///
/// Values are cheap to clone: compound values (lists, tables) are shared
/// handles with interior mutability, matching Icon's reference semantics for
/// structures. All variants are `Send + Sync`, which is what lets pipes move
/// generated values between threads.
#[derive(Clone, Default)]
pub enum Value {
    /// The null value (`&null`); also the value of unset variables.
    #[default]
    Null,
    /// Machine integer. Arithmetic that overflows promotes to [`Value::Big`].
    Int(i64),
    /// Arbitrary-precision integer (Icon's large integers).
    Big(Arc<BigInt>),
    /// Real number.
    Real(f64),
    /// Immutable string.
    Str(Arc<str>),
    /// Mutable shared list.
    List(Arc<Mutex<Vec<Value>>>),
    /// Mutable shared table with a default value.
    Table(Arc<Mutex<TableData>>),
    /// A procedure / generator function.
    Proc(ProcValue),
    /// A co-expression.
    Co(CoRef),
    /// A first-class reified variable (reference semantics, Sec. V.C).
    Ref(Var),
    /// A class instance.
    Object(ObjRef),
}

/// Backing storage for [`Value::Table`].
pub struct TableData {
    pub entries: HashMap<Key, Value>,
    pub default: Value,
}

impl Value {
    /// Build a string value.
    pub fn str(s: impl AsRef<str>) -> Value {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// Build a string value through the process-wide interner
    /// ([`crate::sym`]): repeated texts share one allocation, so table
    /// keys and comparisons on hot paths hit interned pointers.
    pub fn interned(s: &str) -> Value {
        Value::Str(crate::sym::intern(s))
    }

    /// Build a list value from elements.
    pub fn list(items: Vec<Value>) -> Value {
        Value::List(Arc::new(Mutex::new(items)))
    }

    /// Build an empty table with default `Null`.
    pub fn table() -> Value {
        Value::Table(Arc::new(Mutex::new(TableData {
            entries: HashMap::new(),
            default: Value::Null,
        })))
    }

    /// Build a big-integer value, normalizing to `Int` when it fits.
    pub fn big(b: BigInt) -> Value {
        match b.to_i64() {
            Some(i) => Value::Int(i),
            None => Value::Big(Arc::new(b)),
        }
    }

    /// True iff this is the null value.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The machine integer, if this is one.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The float, if this is a real.
    pub fn as_real(&self) -> Option<f64> {
        match self {
            Value::Real(r) => Some(*r),
            _ => None,
        }
    }

    /// The string slice, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The list handle, if this is a list.
    pub fn as_list(&self) -> Option<&Arc<Mutex<Vec<Value>>>> {
        match self {
            Value::List(l) => Some(l),
            _ => None,
        }
    }

    /// Dereference: if this is a reified variable, its current value;
    /// otherwise the value itself. (Icon's implicit dereferencing.)
    pub fn deref(&self) -> Value {
        match self {
            Value::Ref(v) => v.get().deref(),
            other => other.clone(),
        }
    }

    /// The table key for this value, if it is a scalar.
    pub fn as_key(&self) -> Option<Key> {
        match self.deref() {
            Value::Null => Some(Key::Null),
            Value::Int(i) => Some(Key::Int(i)),
            Value::Real(r) => Some(Key::RealBits(r.to_bits())),
            Value::Str(s) => Some(Key::Str(s)),
            _ => None,
        }
    }

    /// Icon's `*x`: size of a string, list, table, or results count of a
    /// co-expression. `None` for sizeless values.
    pub fn size(&self) -> Option<i64> {
        match self.deref() {
            Value::Str(s) => Some(s.chars().count() as i64),
            Value::List(l) => Some(l.lock().len() as i64),
            Value::Table(t) => Some(t.lock().entries.len() as i64),
            Value::Co(c) => Some(c.lock().produced() as i64),
            _ => None,
        }
    }

    /// Type name, as Icon's `type(x)` would report.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Int(_) | Value::Big(_) => "integer",
            Value::Real(_) => "real",
            Value::Str(_) => "string",
            Value::List(_) => "list",
            Value::Table(_) => "table",
            Value::Proc(_) => "procedure",
            Value::Co(_) => "co-expression",
            Value::Ref(_) => "variable",
            Value::Object(_) => "object",
        }
    }

    /// Structural equivalence (Icon's `===` on scalars; identity on
    /// structures).
    pub fn equiv(&self, other: &Value) -> bool {
        match (&self.deref(), &other.deref()) {
            (Value::Null, Value::Null) => true,
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Big(a), Value::Big(b)) => a == b,
            (Value::Int(a), Value::Big(b)) | (Value::Big(b), Value::Int(a)) => {
                b.to_i64() == Some(*a)
            }
            (Value::Real(a), Value::Real(b)) => a == b,
            // Interned strings ([`Value::interned`]) share one allocation,
            // so the pointer check settles the common case without
            // touching the bytes.
            (Value::Str(a), Value::Str(b)) => Arc::ptr_eq(a, b) || a == b,
            (Value::List(a), Value::List(b)) => Arc::ptr_eq(a, b),
            (Value::Table(a), Value::Table(b)) => Arc::ptr_eq(a, b),
            (Value::Proc(a), Value::Proc(b)) => a.same(b),
            (Value::Co(a), Value::Co(b)) => Arc::ptr_eq(a, b),
            (Value::Object(a), Value::Object(b)) => Arc::ptr_eq(a, b),
            _ => false,
        }
    }

    /// Deep conversion to an owned, thread-isolated copy.
    ///
    /// Pipes use this at thread boundaries so that a consumer can never
    /// mutate the producer's structures — the type-level enforcement of the
    /// paper's "co-expressions minimize interference by isolating a copy of
    /// the local environment".
    pub fn deep_copy(&self) -> Value {
        match self.deref() {
            Value::List(l) => {
                let items = l.lock().iter().map(Value::deep_copy).collect();
                Value::list(items)
            }
            Value::Table(t) => {
                let t = t.lock();
                let entries = t
                    .entries
                    .iter()
                    .map(|(k, v)| (k.clone(), v.deep_copy()))
                    .collect();
                Value::Table(Arc::new(Mutex::new(TableData {
                    entries,
                    default: t.default.deep_copy(),
                })))
            }
            scalar => scalar,
        }
    }
}

impl PartialEq for Value {
    /// Equality is [`Value::equiv`]: structural on scalars, identity on
    /// structures. Note this means `Value::from(3) != Value::str("3")`.
    fn eq(&self, other: &Self) -> bool {
        self.equiv(other)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Real(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::str(v)
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(Arc::from(v.as_str()))
    }
}

impl From<BigInt> for Value {
    fn from(v: BigInt) -> Self {
        Value::big(v)
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "&null"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Big(b) => write!(f, "{b}"),
            Value::Real(r) => write!(f, "{r:?}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::List(l) => {
                let l = l.lock();
                write!(f, "[")?;
                for (i, v) in l.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v:?}")?;
                }
                write!(f, "]")
            }
            Value::Table(t) => write!(f, "table#{}", t.lock().entries.len()),
            Value::Proc(p) => write!(f, "procedure {}", p.name()),
            Value::Co(_) => write!(f, "co-expression"),
            Value::Ref(v) => write!(f, "ref({:?})", v.get()),
            Value::Object(o) => write!(f, "object {}", o.class_name),
        }
    }
}

impl fmt::Display for Value {
    /// Icon-style string image: strings print bare, others as in `Debug`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.deref() {
            Value::Str(s) => f.write_str(&s),
            other => write!(f, "{other:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_constructors_and_accessors() {
        assert_eq!(Value::from(42).as_int(), Some(42));
        assert_eq!(Value::from(2.5).as_real(), Some(2.5));
        assert_eq!(Value::str("hi").as_str(), Some("hi"));
        assert!(Value::Null.is_null());
        assert_eq!(Value::from(42).as_str(), None);
    }

    #[test]
    fn big_normalizes_to_int_when_small() {
        let v = Value::big(BigInt::from(7i64));
        assert!(matches!(v, Value::Int(7)));
        let huge = BigInt::from_str_radix("123456789012345678901234567890", 10).unwrap();
        assert!(matches!(Value::big(huge), Value::Big(_)));
    }

    #[test]
    fn sizes() {
        assert_eq!(Value::str("héllo").size(), Some(5));
        assert_eq!(Value::list(vec![Value::Null; 3]).size(), Some(3));
        assert_eq!(Value::from(5).size(), None);
        assert_eq!(Value::table().size(), Some(0));
    }

    #[test]
    fn equiv_scalars_and_identity() {
        assert!(Value::from(3).equiv(&Value::from(3)));
        assert!(!Value::from(3).equiv(&Value::from(4)));
        assert!(Value::str("a").equiv(&Value::str("a")));
        assert!(!Value::from(3).equiv(&Value::str("3"))); // no coercion in ===
        let l1 = Value::list(vec![]);
        let l2 = Value::list(vec![]);
        assert!(l1.equiv(&l1.clone()));
        assert!(!l1.equiv(&l2)); // identity, not structure
    }

    #[test]
    fn lists_share_mutations() {
        let l = Value::list(vec![Value::from(1)]);
        let alias = l.clone();
        if let Value::List(h) = &l {
            h.lock().push(Value::from(2));
        }
        assert_eq!(alias.size(), Some(2));
    }

    #[test]
    fn deep_copy_isolates() {
        let inner = Value::list(vec![Value::from(1)]);
        let outer = Value::list(vec![inner.clone()]);
        let copy = outer.deep_copy();
        if let Value::List(h) = &inner {
            h.lock().push(Value::from(2));
        }
        // The copy's inner list is unaffected.
        if let Value::List(h) = &copy {
            assert_eq!(h.lock()[0].size(), Some(1));
        } else {
            panic!("copy is not a list");
        }
    }

    #[test]
    fn deref_unwraps_refs() {
        let var = Var::new(Value::from(9));
        let r = Value::Ref(var.clone());
        assert_eq!(r.deref().as_int(), Some(9));
        var.set(Value::from(10));
        assert_eq!(r.deref().as_int(), Some(10));
    }

    #[test]
    fn keys_for_scalars_only() {
        assert_eq!(Value::from(1).as_key(), Some(Key::Int(1)));
        assert_eq!(Value::str("k").as_key(), Some(Key::Str(Arc::from("k"))));
        assert_eq!(Value::Null.as_key(), Some(Key::Null));
        assert_eq!(Value::list(vec![]).as_key(), None);
    }

    #[test]
    fn type_names() {
        assert_eq!(Value::from(1).type_name(), "integer");
        assert_eq!(Value::str("s").type_name(), "string");
        assert_eq!(Value::from(1.0).type_name(), "real");
        assert_eq!(Value::Null.type_name(), "null");
    }

    #[test]
    fn display_images() {
        assert_eq!(Value::str("plain").to_string(), "plain");
        assert_eq!(Value::from(3).to_string(), "3");
        assert_eq!(
            Value::list(vec![Value::from(1), Value::str("x")]).to_string(),
            "[1, \"x\"]"
        );
    }
}
