//! The dynamic value universe of the embedded language.

use crate::env::Env;
use crate::func::ProcValue;
use crate::strbuf::{BufWindow, StrBuf};
use crate::sym::Symbol;
use crate::var::Var;
use bigint::BigInt;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

/// A coroutine as seen by the runtime: something that can be stepped (`@`),
/// restarted, and refreshed (`^`).
///
/// The concrete implementation lives in the `coexpr` crate; the trait is
/// defined here so that co-expressions can be first-class [`Value`]s without
/// a dependency cycle.
pub trait Coroutine: Send {
    /// Step one iteration (`@c`): the next value, or `None` on failure.
    fn step(&mut self) -> Option<Value>;
    /// Reset iteration to the beginning.
    fn restart(&mut self);
    /// Create a fresh copy with a new copy of the shadowed environment
    /// (`^c`). Returns `None` for coroutines that do not support refresh.
    fn refreshed(&self) -> Option<CoRef>;
    /// Number of results produced so far (Icon's `*c`).
    fn produced(&self) -> u64;
}

/// Shared handle to a [`Coroutine`].
pub type CoRef = Arc<Mutex<dyn Coroutine>>;

/// An object: the runtime form of a Unicon class instance (Sec. V.C).
///
/// Fields live in an [`Env`] frame — each field is thereby available "in
/// both plain and reified form" (the env's [`Var`] cells are the reified
/// `x_r` side; [`ObjData::get_field`] is the plain side). Methods are
/// procedures pre-bound to this object's field environment.
pub struct ObjData {
    pub class_name: Arc<str>,
    pub fields: Env,
    pub methods: Arc<std::collections::HashMap<String, ProcValue>>,
}

/// Shared handle to an object.
pub type ObjRef = Arc<ObjData>;

impl ObjData {
    /// Read a field (null if unset); `None` if the name is not a field.
    /// Only the instance's own frame is consulted — the enclosing scope
    /// (globals) is not a field.
    pub fn get_field(&self, name: &str) -> Option<Value> {
        self.fields.lookup_local(name).map(|v| v.get())
    }

    /// Write a field; fails if the name is not a declared field.
    pub fn set_field(&self, name: &str, v: Value) -> Option<Value> {
        let cell = self.fields.lookup_local(name)?;
        cell.set(v.clone());
        Some(v)
    }

    /// Look up a method bound to this object.
    pub fn method(&self, name: &str) -> Option<ProcValue> {
        self.methods.get(name).cloned()
    }
}

/// Hashable key for table subscripts (scalar values only).
///
/// String-like keys come in two forms — an owned [`Key::Str`] and a
/// compact interned [`Key::Sym`] — which must be interchangeable in a
/// table: `Eq` and `Hash` are hand-written so that both forms compare by
/// text and hash to the same digest (FNV-1a; [`Key::Sym`] replays its
/// cached copy instead of re-hashing the bytes).
#[derive(Clone, Debug)]
pub enum Key {
    Null,
    Int(i64),
    /// Reals are keyed by bit pattern, as Icon tables key on value identity.
    RealBits(u64),
    Str(Arc<str>),
    /// Interned string key: copyable handle, cached hash.
    Sym(Symbol),
}

impl Key {
    /// The text of a string-like key, if it is one.
    fn text(&self) -> Option<&str> {
        match self {
            Key::Str(s) => Some(s),
            Key::Sym(s) => Some(s.as_str()),
            _ => None,
        }
    }
}

impl PartialEq for Key {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Key::Null, Key::Null) => true,
            (Key::Int(a), Key::Int(b)) => a == b,
            (Key::RealBits(a), Key::RealBits(b)) => a == b,
            // Sym/Sym hits the pointer fast path inside Symbol::eq.
            (Key::Sym(a), Key::Sym(b)) => a == b,
            (a, b) => match (a.text(), b.text()) {
                (Some(a), Some(b)) => a == b,
                _ => false,
            },
        }
    }
}

impl Eq for Key {}

impl std::hash::Hash for Key {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        match self {
            Key::Null => state.write_u8(0),
            Key::Int(i) => {
                state.write_u8(1);
                state.write_i64(*i);
            }
            Key::RealBits(b) => {
                state.write_u8(2);
                state.write_u64(*b);
            }
            // Both string forms hash to the same digest so a table keyed
            // by Key::Str("x") finds Key::Sym("x") and vice versa.
            Key::Str(s) => {
                state.write_u8(3);
                state.write_u64(crate::sym::fnv1a(s));
            }
            Key::Sym(s) => {
                state.write_u8(3);
                state.write_u64(s.hash_code());
            }
        }
    }
}

/// A view into a shared line buffer: the compact representation for
/// string payloads produced by hot generators (`WordSplit`).
///
/// The "arena" here is the pipeline's per-line `Arc<str>` buffer: every
/// word of a line is a `(start, len)` window into the one allocation the
/// corpus already holds, so yielding a word costs no hashing, no interner
/// walk, and no new allocation — just an `Arc` refcount on the line.
/// Slices are *borrowed handles* in the ownership sense: they pin their
/// line buffer alive, so any value that outlives its stage must be
/// promoted to an owned form ([`Value::promote`]) to let the arena drop.
pub struct StrSlice {
    owner: Arc<str>,
    start: u32,
    len: u32,
    /// Cached char count; `u32::MAX` = not yet computed. (The fat owner
    /// pointer plus this still fits the 32-byte payload budget set by
    /// `ProcValue` — see the size test.)
    chars: AtomicU32,
}

impl Clone for StrSlice {
    fn clone(&self) -> StrSlice {
        StrSlice {
            owner: self.owner.clone(),
            start: self.start,
            len: self.len,
            chars: AtomicU32::new(self.chars.load(Ordering::Relaxed)),
        }
    }
}

impl StrSlice {
    /// The viewed text.
    pub fn as_str(&self) -> &str {
        &self.owner[self.start as usize..(self.start + self.len) as usize]
    }

    /// The backing line buffer this slice pins.
    pub fn owner(&self) -> &Arc<str> {
        &self.owner
    }

    /// Character count, computed once and cached.
    pub fn char_len(&self) -> usize {
        let cached = self.chars.load(Ordering::Relaxed);
        if cached != u32::MAX {
            return cached as usize;
        }
        let n = str_char_len(self.as_str());
        self.chars.store(n as u32, Ordering::Relaxed);
        n
    }

    /// `(start, len)` of the window, in bytes of the owner.
    pub(crate) fn bounds(&self) -> (u32, u32) {
        (self.start, self.len)
    }

    /// Another window of the same owner (byte coordinates of the owner;
    /// boundary validity is the caller's obligation, as with
    /// [`Value::slice_at_ascii_delims`]).
    pub(crate) fn with_bounds(&self, start: u32, len: u32) -> StrSlice {
        StrSlice {
            owner: self.owner.clone(),
            start,
            len,
            chars: AtomicU32::new(u32::MAX),
        }
    }
}

/// A window into a builder-arena chunk ([`StrBuf`]): the compact
/// representation for concatenation results (`ops::concat`).
///
/// Like [`StrSlice`] this is a borrowed handle — it pins its chunk and
/// must be [promoted](Value::promote) at every escape route — but its
/// owner pointer is *thin* (`StrBuf` is sized), which leaves room for a
/// cached character count without growing [`Value`] past its 32-byte
/// budget. The count is filled lazily on the first [`BuiltStr::char_len`]
/// call (subscripts with negative indices, `*x`) and replayed after.
pub struct BuiltStr {
    buf: Arc<StrBuf>,
    start: u32,
    len: u32,
    /// Cached char count; `u32::MAX` = not yet computed.
    chars: AtomicU32,
}

impl Clone for BuiltStr {
    fn clone(&self) -> BuiltStr {
        BuiltStr {
            buf: self.buf.clone(),
            start: self.start,
            len: self.len,
            chars: AtomicU32::new(self.chars.load(Ordering::Relaxed)),
        }
    }
}

impl BuiltStr {
    /// The viewed text.
    pub fn as_str(&self) -> &str {
        self.buf
            .window(self.start as usize, (self.start + self.len) as usize)
    }

    /// The arena chunk this window pins.
    pub fn owner(&self) -> &Arc<StrBuf> {
        &self.buf
    }

    pub(crate) fn window(&self) -> BufWindow {
        BufWindow {
            buf: self.buf.clone(),
            start: self.start,
            len: self.len,
        }
    }

    /// `(start, len)` of the window, in bytes of the chunk.
    pub(crate) fn bounds(&self) -> (u32, u32) {
        (self.start, self.len)
    }

    /// Another window of the same chunk (byte coordinates of the chunk,
    /// which must lie within its published prefix).
    pub(crate) fn with_bounds(&self, start: u32, len: u32) -> BuiltStr {
        BuiltStr {
            buf: self.buf.clone(),
            start,
            len,
            chars: AtomicU32::new(u32::MAX),
        }
    }

    /// Character count, computed once and cached.
    pub fn char_len(&self) -> usize {
        let cached = self.chars.load(Ordering::Relaxed);
        if cached != u32::MAX {
            return cached as usize;
        }
        let n = str_char_len(self.as_str());
        self.chars.store(n as u32, Ordering::Relaxed);
        n
    }
}

/// Character count with the ASCII fast path: all-ASCII text (the hot
/// case — corpus words, formatted numbers) is `len()` bytes without a
/// decode walk.
pub(crate) fn str_char_len(s: &str) -> usize {
    if s.is_ascii() {
        s.len()
    } else {
        s.chars().count()
    }
}

/// A dynamically typed value.
///
/// Values are cheap to clone: compound values (lists, tables) are shared
/// handles with interior mutability, matching Icon's reference semantics for
/// structures. All variants are `Send + Sync`, which is what lets pipes move
/// generated values between threads.
///
/// The compact variants — [`Value::Sym`] (copyable interned handle with a
/// cached hash) and [`Value::Slice`] (arena-backed view into a shared line
/// buffer) — exist so the per-element cost of fused stages is a move, not
/// an `Arc` clone plus a re-hash; `Clone` is hand-written to count how
/// often each regime is hit (`gde.value.inline_hits` / `arc_clones`).
#[derive(Default)]
pub enum Value {
    /// The null value (`&null`); also the value of unset variables.
    #[default]
    Null,
    /// Machine integer. Arithmetic that overflows promotes to [`Value::Big`].
    Int(i64),
    /// Arbitrary-precision integer (Icon's large integers).
    Big(Arc<BigInt>),
    /// Real number.
    Real(f64),
    /// Immutable string.
    Str(Arc<str>),
    /// Interned string: a copyable handle into the immortal symbol table.
    Sym(Symbol),
    /// Borrowed string: a window into a shared line buffer (see
    /// [`StrSlice`]). Must be [promoted](Value::promote) before escaping
    /// its pipeline.
    Slice(StrSlice),
    /// Borrowed string: a window into a builder-arena chunk (see
    /// [`BuiltStr`]) — what `ops::concat` yields. Must be
    /// [promoted](Value::promote) before escaping its pipeline.
    Built(BuiltStr),
    /// Mutable shared list.
    List(Arc<Mutex<Vec<Value>>>),
    /// Mutable shared table with a default value.
    Table(Arc<Mutex<TableData>>),
    /// A procedure / generator function.
    Proc(ProcValue),
    /// A co-expression.
    Co(CoRef),
    /// A first-class reified variable (reference semantics, Sec. V.C).
    Ref(Var),
    /// A class instance.
    Object(ObjRef),
}

impl Clone for Value {
    fn clone(&self) -> Value {
        match self {
            // Inline regime: copied in registers, no refcount traffic.
            Value::Null => {
                obs_on!(crate::obs_hot::value_inline_hits().inc());
                Value::Null
            }
            Value::Int(i) => {
                obs_on!(crate::obs_hot::value_inline_hits().inc());
                Value::Int(*i)
            }
            Value::Real(r) => {
                obs_on!(crate::obs_hot::value_inline_hits().inc());
                Value::Real(*r)
            }
            Value::Sym(s) => {
                obs_on!(crate::obs_hot::value_inline_hits().inc());
                Value::Sym(*s)
            }
            // Shared regime: an Arc refcount per clone.
            Value::Big(b) => {
                obs_on!(crate::obs_hot::value_arc_clones().inc());
                Value::Big(b.clone())
            }
            Value::Str(s) => {
                obs_on!(crate::obs_hot::value_arc_clones().inc());
                Value::Str(s.clone())
            }
            Value::Slice(s) => {
                obs_on!(crate::obs_hot::value_arc_clones().inc());
                Value::Slice(s.clone())
            }
            Value::Built(s) => {
                obs_on!(crate::obs_hot::value_arc_clones().inc());
                Value::Built(s.clone())
            }
            Value::List(l) => {
                obs_on!(crate::obs_hot::value_arc_clones().inc());
                Value::List(l.clone())
            }
            Value::Table(t) => {
                obs_on!(crate::obs_hot::value_arc_clones().inc());
                Value::Table(t.clone())
            }
            Value::Proc(p) => {
                obs_on!(crate::obs_hot::value_arc_clones().inc());
                Value::Proc(p.clone())
            }
            Value::Co(c) => {
                obs_on!(crate::obs_hot::value_arc_clones().inc());
                Value::Co(c.clone())
            }
            Value::Ref(v) => {
                obs_on!(crate::obs_hot::value_arc_clones().inc());
                Value::Ref(v.clone())
            }
            Value::Object(o) => {
                obs_on!(crate::obs_hot::value_arc_clones().inc());
                Value::Object(o.clone())
            }
        }
    }
}

/// Backing storage for [`Value::Table`].
pub struct TableData {
    pub entries: HashMap<Key, Value>,
    pub default: Value,
}

impl Value {
    /// Build a string value.
    pub fn str(s: impl AsRef<str>) -> Value {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// Build a string value through the process-wide interner
    /// ([`crate::sym`]): repeated texts share one allocation, and the
    /// resulting [`Value::Sym`] is a copyable handle with a cached hash,
    /// so table keys and comparisons on hot paths hit interned pointers
    /// and clones stay off the refcount.
    pub fn interned(s: &str) -> Value {
        obs_on!(crate::obs_hot::value_inline_hits().inc());
        Value::Sym(Symbol::new(s))
    }

    /// Build a borrowed string value: a `[start, end)` window into a
    /// shared line buffer (see [`StrSlice`]). The window must lie on
    /// `char` boundaries. This is the zero-hash, zero-allocation path hot
    /// generators use per emitted word; the handle pins `owner` until it
    /// is dropped or [promoted](Value::promote).
    pub fn slice(owner: Arc<str>, start: usize, end: usize) -> Value {
        owner
            .get(start..end)
            .expect("Value::slice window must be in-bounds on char boundaries");
        obs_on!(crate::obs_hot::value_inline_hits().inc());
        Value::Slice(StrSlice {
            owner,
            start: start as u32,
            len: (end - start) as u32,
            chars: AtomicU32::new(u32::MAX),
        })
    }

    /// [`Value::slice`] for producers whose windows are char-boundary
    /// correct *by construction* — splitting at ASCII delimiters always
    /// lands on boundaries, whatever the word bytes are — so the
    /// per-element validation is debug-asserted instead of paid on every
    /// yield. Still memory-safe for a bad caller: a malformed window
    /// panics at first use instead of here.
    ///
    /// Unlike [`Value::slice`] this does *not* bump
    /// `gde.value.inline_hits` per call: the producers that earn the
    /// trusted path yield one window per word on the hottest loop in the
    /// system, where even a relaxed atomic increment is measurable. They
    /// count locally and flush per batch via
    /// [`Value::note_inline_windows`].
    pub fn slice_at_ascii_delims(owner: Arc<str>, start: usize, end: usize) -> Value {
        debug_assert!(
            owner.get(start..end).is_some(),
            "slice_at_ascii_delims window must be in-bounds on char boundaries"
        );
        Value::Slice(StrSlice {
            owner,
            start: start as u32,
            len: (end - start) as u32,
            chars: AtomicU32::new(u32::MAX),
        })
    }

    /// Batched `gde.value.inline_hits` accounting for
    /// [`Value::slice_at_ascii_delims`] producers: one atomic add per
    /// batch (a line, a chunk) instead of one per yielded window. The
    /// counter stays exact at snapshot granularity — producers flush at
    /// every exhaustion/reset/drop edge, and snapshots are taken after
    /// the generators driving them have been dropped.
    pub fn note_inline_windows(n: u64) {
        #[cfg(not(feature = "obs"))]
        let _ = n;
        obs_on!(if n > 0 {
            crate::obs_hot::value_inline_hits().add(n);
        });
    }

    /// Wrap a builder-arena window (see [`crate::strbuf`]) as a borrowed
    /// string value.
    pub fn built(w: BufWindow) -> Value {
        Value::Built(BuiltStr {
            buf: w.buf,
            start: w.start,
            len: w.len,
            chars: AtomicU32::new(u32::MAX),
        })
    }

    /// True for the borrowed string forms ([`Value::Slice`],
    /// [`Value::Built`]) that pin an arena and must be
    /// [promoted](Value::promote) before escaping their stage.
    pub fn is_borrowed(&self) -> bool {
        matches!(self, Value::Slice(_) | Value::Built(_))
    }

    /// Promote a borrowed handle to an owned value — the escape hatch a
    /// value takes when it outlives its stage (stored in an `Env` slot,
    /// captured by a deferred body, used as a table key, or crossing a
    /// pipe to another thread).
    ///
    /// Small slices promote to interned [`Value::Sym`] handles (matching
    /// what the pre-compact runtime stored for escaped words, and keeping
    /// later comparisons on the pointer fast path); larger ones become
    /// plain owned strings so the immortal interner is never fed bulk
    /// text. Either way the promoted value no longer pins its line
    /// buffer, so the arena can drop as soon as the pipeline does.
    pub fn promote(self) -> Value {
        match &self {
            Value::Slice(s) => Self::promote_text(s.as_str()),
            Value::Built(s) => Self::promote_text(s.as_str()),
            _ => self,
        }
    }

    fn promote_text(text: &str) -> Value {
        obs_on!(crate::obs_hot::value_promotions().inc());
        if text.len() <= Self::PROMOTE_INTERN_MAX {
            Value::Sym(Symbol::new(text))
        } else {
            Value::Str(Arc::from(text))
        }
    }

    /// Longest slice (in bytes) that [`Value::promote`] routes through the
    /// immortal interner; longer text gets a private owned allocation.
    const PROMOTE_INTERN_MAX: usize = 64;

    /// The text of a string-like value (`Str`, `Sym` or `Slice`), without
    /// dereferencing.
    fn text(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            Value::Sym(s) => Some(s.as_str()),
            Value::Slice(s) => Some(s.as_str()),
            Value::Built(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// Build a list value from elements.
    pub fn list(items: Vec<Value>) -> Value {
        Value::List(Arc::new(Mutex::new(items)))
    }

    /// Build an empty table with default `Null`.
    pub fn table() -> Value {
        Value::Table(Arc::new(Mutex::new(TableData {
            entries: HashMap::new(),
            default: Value::Null,
        })))
    }

    /// Build a big-integer value, normalizing to `Int` when it fits.
    pub fn big(b: BigInt) -> Value {
        match b.to_i64() {
            Some(i) => Value::Int(i),
            None => Value::Big(Arc::new(b)),
        }
    }

    /// True iff this is the null value.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The machine integer, if this is one.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The float, if this is a real.
    pub fn as_real(&self) -> Option<f64> {
        match self {
            Value::Real(r) => Some(*r),
            _ => None,
        }
    }

    /// The string slice, if this is a string (owned, interned, or
    /// borrowed form).
    pub fn as_str(&self) -> Option<&str> {
        self.text()
    }

    /// The list handle, if this is a list.
    pub fn as_list(&self) -> Option<&Arc<Mutex<Vec<Value>>>> {
        match self {
            Value::List(l) => Some(l),
            _ => None,
        }
    }

    /// Dereference: if this is a reified variable, its current value;
    /// otherwise the value itself. (Icon's implicit dereferencing.)
    pub fn deref(&self) -> Value {
        match self {
            Value::Ref(v) => v.get().deref(),
            other => other.clone(),
        }
    }

    /// The table key for this value, if it is a scalar.
    ///
    /// A key escapes into the table's own storage, so borrowed slices are
    /// [promoted](Value::promote) here rather than pinning a line buffer
    /// from inside a table.
    pub fn as_key(&self) -> Option<Key> {
        match self.deref() {
            Value::Null => Some(Key::Null),
            Value::Int(i) => Some(Key::Int(i)),
            Value::Real(r) => Some(Key::RealBits(r.to_bits())),
            Value::Str(s) => Some(Key::Str(s)),
            Value::Sym(s) => Some(Key::Sym(s)),
            v @ (Value::Slice(_) | Value::Built(_)) => match v.promote() {
                Value::Sym(s) => Some(Key::Sym(s)),
                Value::Str(s) => Some(Key::Str(s)),
                _ => unreachable!("promoting a borrowed handle yields a string form"),
            },
            _ => None,
        }
    }

    /// Icon's `*x`: size of a string, list, table, or results count of a
    /// co-expression. `None` for sizeless values.
    pub fn size(&self) -> Option<i64> {
        let v = self.deref();
        match &v {
            // The borrowed forms replay their cached char counts; the
            // owned forms take the ASCII fast path before decoding.
            Value::Built(s) => Some(s.char_len() as i64),
            Value::Slice(s) => Some(s.char_len() as i64),
            Value::Str(_) | Value::Sym(_) => {
                Some(str_char_len(v.text().expect("string form")) as i64)
            }
            Value::List(l) => Some(l.lock().len() as i64),
            Value::Table(t) => Some(t.lock().entries.len() as i64),
            Value::Co(c) => Some(c.lock().produced() as i64),
            _ => None,
        }
    }

    /// Type name, as Icon's `type(x)` would report.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Int(_) | Value::Big(_) => "integer",
            Value::Real(_) => "real",
            Value::Str(_) | Value::Sym(_) | Value::Slice(_) | Value::Built(_) => "string",
            Value::List(_) => "list",
            Value::Table(_) => "table",
            Value::Proc(_) => "procedure",
            Value::Co(_) => "co-expression",
            Value::Ref(_) => "variable",
            Value::Object(_) => "object",
        }
    }

    /// Structural equivalence (Icon's `===` on scalars; identity on
    /// structures).
    pub fn equiv(&self, other: &Value) -> bool {
        match (&self.deref(), &other.deref()) {
            (Value::Null, Value::Null) => true,
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Big(a), Value::Big(b)) => a == b,
            (Value::Int(a), Value::Big(b)) | (Value::Big(b), Value::Int(a)) => {
                b.to_i64() == Some(*a)
            }
            (Value::Real(a), Value::Real(b)) => a == b,
            // Interned strings ([`Value::interned`]) share one allocation,
            // so the pointer check settles the common case without
            // touching the bytes.
            (Value::Str(a), Value::Str(b)) => Arc::ptr_eq(a, b) || a == b,
            (Value::Sym(a), Value::Sym(b)) => a == b,
            // Mixed string forms (owned / interned / borrowed) compare by
            // text: the representation is an optimization, not a type.
            (a @ (Value::Str(_) | Value::Sym(_) | Value::Slice(_) | Value::Built(_)), b)
                if matches!(
                    b,
                    Value::Str(_) | Value::Sym(_) | Value::Slice(_) | Value::Built(_)
                ) =>
            {
                a.text() == b.text()
            }
            (Value::List(a), Value::List(b)) => Arc::ptr_eq(a, b),
            (Value::Table(a), Value::Table(b)) => Arc::ptr_eq(a, b),
            (Value::Proc(a), Value::Proc(b)) => a.same(b),
            (Value::Co(a), Value::Co(b)) => Arc::ptr_eq(a, b),
            (Value::Object(a), Value::Object(b)) => Arc::ptr_eq(a, b),
            _ => false,
        }
    }

    /// Deep conversion to an owned, thread-isolated copy.
    ///
    /// Pipes use this at thread boundaries so that a consumer can never
    /// mutate the producer's structures — the type-level enforcement of the
    /// paper's "co-expressions minimize interference by isolating a copy of
    /// the local environment".
    pub fn deep_copy(&self) -> Value {
        match self.deref() {
            // Crossing a thread boundary is the canonical "outlives its
            // stage" event: borrowed slices promote to owned form so the
            // consumer never pins the producer's line buffers.
            v @ (Value::Slice(_) | Value::Built(_)) => v.promote(),
            Value::List(l) => {
                let items = l.lock().iter().map(Value::deep_copy).collect();
                Value::list(items)
            }
            Value::Table(t) => {
                let t = t.lock();
                let entries = t
                    .entries
                    .iter()
                    .map(|(k, v)| (k.clone(), v.deep_copy()))
                    .collect();
                Value::Table(Arc::new(Mutex::new(TableData {
                    entries,
                    default: t.default.deep_copy(),
                })))
            }
            scalar => scalar,
        }
    }
}

impl PartialEq for Value {
    /// Equality is [`Value::equiv`]: structural on scalars, identity on
    /// structures. Note this means `Value::from(3) != Value::str("3")`.
    fn eq(&self, other: &Self) -> bool {
        self.equiv(other)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Real(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::str(v)
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(Arc::from(v.as_str()))
    }
}

impl From<BigInt> for Value {
    fn from(v: BigInt) -> Self {
        Value::big(v)
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "&null"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Big(b) => write!(f, "{b}"),
            Value::Real(r) => write!(f, "{r:?}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Sym(s) => write!(f, "{:?}", s.as_str()),
            Value::Slice(s) => write!(f, "{:?}", s.as_str()),
            Value::Built(s) => write!(f, "{:?}", s.as_str()),
            Value::List(l) => {
                let l = l.lock();
                write!(f, "[")?;
                for (i, v) in l.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v:?}")?;
                }
                write!(f, "]")
            }
            Value::Table(t) => write!(f, "table#{}", t.lock().entries.len()),
            Value::Proc(p) => write!(f, "procedure {}", p.name()),
            Value::Co(_) => write!(f, "co-expression"),
            Value::Ref(v) => write!(f, "ref({:?})", v.get()),
            Value::Object(o) => write!(f, "object {}", o.class_name),
        }
    }
}

impl fmt::Display for Value {
    /// Icon-style string image: strings print bare, others as in `Debug`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let v = self.deref();
        match v.text() {
            Some(s) => f.write_str(s),
            None => write!(f, "{v:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_stays_within_its_size_budget() {
        // Step moves a Value per suspension on the hot path. The ceiling
        // is set by `ProcValue` (a fat `Arc<str>` name plus a fat
        // `Arc<dyn Fn>` — 32 bytes), so the enum is 40 bytes with the
        // tag. The string payloads must stay at or under that 32-byte
        // line: `StrSlice` spends its headroom on the cached char count,
        // and `BuiltStr`'s thin chunk pointer keeps it at 24. Adding a
        // field that pushes any payload past 32 grows *every* Value.
        assert!(
            std::mem::size_of::<Value>() <= 40,
            "Value is {} bytes (BuiltStr {}, StrSlice {})",
            std::mem::size_of::<Value>(),
            std::mem::size_of::<BuiltStr>(),
            std::mem::size_of::<StrSlice>()
        );
        assert!(std::mem::size_of::<StrSlice>() <= 32);
        assert!(std::mem::size_of::<BuiltStr>() <= 24);
    }

    #[test]
    fn built_values_behave_like_strings() {
        use crate::strbuf::StrBuilder;
        let mut b = StrBuilder::new();
        let v = Value::built(b.push_str("héllo"));
        assert_eq!(v.as_str(), Some("héllo"));
        assert_eq!(v.type_name(), "string");
        assert_eq!(v.size(), Some(5)); // chars, not bytes
        assert_eq!(v.size(), Some(5)); // cached replay
        assert_eq!(v.to_string(), "héllo");
        assert_eq!(format!("{v:?}"), "\"héllo\"");
        assert!(v.is_borrowed());
        assert!(v.equiv(&Value::str("héllo")));
        assert!(v.clone().equiv(&v));
    }

    #[test]
    fn built_promotes_and_unpins_its_chunk() {
        use crate::strbuf::StrBuilder;
        let mut b = StrBuilder::new();
        let v = Value::built(b.push_str("escape"));
        let weak = Arc::downgrade(b.chunk());
        drop(b);
        let promoted = v.clone().promote();
        assert!(matches!(promoted, Value::Sym(_)));
        assert!(!promoted.is_borrowed());
        // Key and deep_copy take the same hatch.
        assert_eq!(v.as_key(), Value::str("escape").as_key());
        assert!(!v.deep_copy().is_borrowed());
        drop(v);
        assert!(
            weak.upgrade().is_none(),
            "promoted values must not pin the arena chunk"
        );
    }

    #[test]
    fn var_store_promotes_built() {
        use crate::strbuf::StrBuilder;
        let mut b = StrBuilder::new();
        let var = Var::new(Value::built(b.push_str("stored")));
        assert!(!var.get().is_borrowed());
        var.set(Value::built(b.push_str("again")));
        assert!(!var.get().is_borrowed());
        var.update(|v| *v = Value::built(b.push_str("updated")));
        assert!(!var.get().is_borrowed());
        assert_eq!(var.get().as_str(), Some("updated"));
    }

    #[test]
    fn scalar_constructors_and_accessors() {
        assert_eq!(Value::from(42).as_int(), Some(42));
        assert_eq!(Value::from(2.5).as_real(), Some(2.5));
        assert_eq!(Value::str("hi").as_str(), Some("hi"));
        assert!(Value::Null.is_null());
        assert_eq!(Value::from(42).as_str(), None);
    }

    #[test]
    fn big_normalizes_to_int_when_small() {
        let v = Value::big(BigInt::from(7i64));
        assert!(matches!(v, Value::Int(7)));
        let huge = BigInt::from_str_radix("123456789012345678901234567890", 10).unwrap();
        assert!(matches!(Value::big(huge), Value::Big(_)));
    }

    #[test]
    fn sizes() {
        assert_eq!(Value::str("héllo").size(), Some(5));
        assert_eq!(Value::list(vec![Value::Null; 3]).size(), Some(3));
        assert_eq!(Value::from(5).size(), None);
        assert_eq!(Value::table().size(), Some(0));
    }

    #[test]
    fn equiv_scalars_and_identity() {
        assert!(Value::from(3).equiv(&Value::from(3)));
        assert!(!Value::from(3).equiv(&Value::from(4)));
        assert!(Value::str("a").equiv(&Value::str("a")));
        assert!(!Value::from(3).equiv(&Value::str("3"))); // no coercion in ===
        let l1 = Value::list(vec![]);
        let l2 = Value::list(vec![]);
        assert!(l1.equiv(&l1.clone()));
        assert!(!l1.equiv(&l2)); // identity, not structure
    }

    #[test]
    fn lists_share_mutations() {
        let l = Value::list(vec![Value::from(1)]);
        let alias = l.clone();
        if let Value::List(h) = &l {
            h.lock().push(Value::from(2));
        }
        assert_eq!(alias.size(), Some(2));
    }

    #[test]
    fn deep_copy_isolates() {
        let inner = Value::list(vec![Value::from(1)]);
        let outer = Value::list(vec![inner.clone()]);
        let copy = outer.deep_copy();
        if let Value::List(h) = &inner {
            h.lock().push(Value::from(2));
        }
        // The copy's inner list is unaffected.
        if let Value::List(h) = &copy {
            assert_eq!(h.lock()[0].size(), Some(1));
        } else {
            panic!("copy is not a list");
        }
    }

    #[test]
    fn deref_unwraps_refs() {
        let var = Var::new(Value::from(9));
        let r = Value::Ref(var.clone());
        assert_eq!(r.deref().as_int(), Some(9));
        var.set(Value::from(10));
        assert_eq!(r.deref().as_int(), Some(10));
    }

    #[test]
    fn keys_for_scalars_only() {
        assert_eq!(Value::from(1).as_key(), Some(Key::Int(1)));
        assert_eq!(Value::str("k").as_key(), Some(Key::Str(Arc::from("k"))));
        assert_eq!(Value::Null.as_key(), Some(Key::Null));
        assert_eq!(Value::list(vec![]).as_key(), None);
    }

    fn slice_of(line: &str, start: usize, end: usize) -> Value {
        Value::slice(Arc::from(line), start, end)
    }

    #[test]
    fn string_forms_are_interchangeable() {
        let owned = Value::str("word");
        let interned = Value::interned("word");
        let sliced = slice_of("a word b", 2, 6);
        assert!(matches!(interned, Value::Sym(_)));
        assert!(matches!(sliced, Value::Slice(_)));
        for v in [&owned, &interned, &sliced] {
            assert_eq!(v.as_str(), Some("word"));
            assert_eq!(v.type_name(), "string");
            assert_eq!(v.size(), Some(4));
            assert_eq!(v.to_string(), "word");
            assert_eq!(format!("{v:?}"), "\"word\"");
        }
        assert!(owned.equiv(&interned));
        assert!(owned.equiv(&sliced));
        assert!(interned.equiv(&sliced));
        assert!(!interned.equiv(&Value::interned("other")));
        assert!(!sliced.equiv(&slice_of("words", 0, 5)));
    }

    #[test]
    fn string_key_forms_collide_in_tables() {
        // A table keyed through one string form must be found through the
        // others: Key::Str and Key::Sym hash to the same digest and
        // compare by text.
        let t = Value::table();
        if let Value::Table(h) = &t {
            let k = Value::str("shared").as_key().unwrap();
            h.lock().entries.insert(k, Value::from(1));
        }
        for probe in [
            Value::interned("shared"),
            slice_of("shared", 0, 6),
            Value::str("shared"),
        ] {
            let k = probe.as_key().unwrap();
            if let Value::Table(h) = &t {
                assert_eq!(
                    h.lock().entries.get(&k).and_then(Value::as_int),
                    Some(1),
                    "probe {probe:?} missed"
                );
            }
        }
    }

    #[test]
    fn slice_windows_and_boundaries() {
        let line: Arc<str> = Arc::from("héllo wörld");
        let w = Value::slice(line.clone(), 0, 6); // "héllo" is 6 bytes
        assert_eq!(w.as_str(), Some("héllo"));
        assert_eq!(w.size(), Some(5)); // chars, not bytes
    }

    #[test]
    #[should_panic(expected = "char boundaries")]
    fn slice_rejects_split_chars() {
        let line: Arc<str> = Arc::from("é");
        Value::slice(line, 0, 1); // middle of the two-byte é
    }

    #[test]
    fn promote_releases_the_arena() {
        // The promoted value no longer pins the line buffer: once the
        // pipeline's handle drops, the arena is freed even though the
        // promoted word lives on.
        let line: Arc<str> = Arc::from("pinned line");
        let weak = Arc::downgrade(&line);
        let word = Value::slice(line, 0, 6);
        let promoted = word.promote();
        assert!(matches!(promoted, Value::Sym(_)));
        assert!(weak.upgrade().is_none(), "promotion must unpin the arena");
        assert_eq!(promoted.as_str(), Some("pinned"));
    }

    #[test]
    fn promote_large_text_stays_private() {
        // Bulk text must not be fed to the immortal interner.
        let big = "x".repeat(200);
        let line: Arc<str> = Arc::from(big.as_str());
        let v = Value::slice(line, 0, 200).promote();
        assert!(matches!(v, Value::Str(_)));
        assert_eq!(v.size(), Some(200));
    }

    #[test]
    fn promote_is_identity_elsewhere() {
        for v in [
            Value::Null,
            Value::from(3),
            Value::str("owned"),
            Value::interned("sym"),
            Value::list(vec![]),
        ] {
            let before = format!("{v:?}");
            assert_eq!(format!("{:?}", v.promote()), before);
        }
    }

    #[test]
    fn deep_copy_promotes_slices() {
        let line: Arc<str> = Arc::from("over the wire");
        let weak = Arc::downgrade(&line);
        let word = Value::slice(line, 0, 4);
        let crossed = word.deep_copy();
        drop(word);
        assert!(weak.upgrade().is_none(), "deep_copy must unpin the arena");
        assert_eq!(crossed.as_str(), Some("over"));
    }

    #[test]
    fn coercions_cover_compact_forms() {
        use crate::ops;
        let sym = Value::interned("42");
        let sli = slice_of("xx 42 yy", 3, 5);
        for v in [&sym, &sli] {
            assert!(matches!(ops::to_num(v), Some(ops::Num::Int(42))));
            assert_eq!(ops::to_str(v).as_deref(), Some("42"));
            assert_eq!(
                ops::index(v, &Value::from(1)).and_then(|c| c.as_str().map(str::to_string)),
                Some("4".to_string())
            );
        }
    }

    #[test]
    fn type_names() {
        assert_eq!(Value::from(1).type_name(), "integer");
        assert_eq!(Value::str("s").type_name(), "string");
        assert_eq!(Value::from(1.0).type_name(), "real");
        assert_eq!(Value::Null.type_name(), "null");
    }

    #[test]
    fn display_images() {
        assert_eq!(Value::str("plain").to_string(), "plain");
        assert_eq!(Value::from(3).to_string(), "3");
        assert_eq!(
            Value::list(vec![Value::from(1), Value::str("x")]).to_string(),
            "[1, \"x\"]"
        );
    }
}
