//! Process-wide lock-free symbol interner.
//!
//! Variable names (after the resolve pass) and hot string values (the
//! wordcount table keys) are interned into a global append-only table:
//! interning the same text twice returns two handles to the *same*
//! `Arc<str>` allocation, so equality on interned strings is a pointer
//! comparison and repeated words stop allocating.
//!
//! The table is a fixed array of buckets, each the head of a CAS-linked
//! list of immortal nodes. Lookups are wait-free (an atomic load plus a
//! short list walk); inserts are lock-free (CAS push onto the bucket
//! head, retried on contention). Nodes are never freed — the interner is
//! process-wide and append-only, which is exactly the lifetime of a
//! symbol table. A racing double-insert of the same text is benign: both
//! threads return a valid handle, one of the two nodes simply becomes an
//! unreachable duplicate ahead of the canonical entry (lookups stop at
//! the first match, so later interns converge on one pointer).

use std::sync::atomic::{AtomicPtr, Ordering};
use std::sync::Arc;

/// Number of buckets (power of two). Sized for "hot-vocabulary" scale:
/// the interner serves not just identifiers (thousands) but table keys on
/// workload hot paths — e.g. every distinct word of a wordcount corpus —
/// so chains must stay short into the tens of thousands of entries. The
/// table is a flat array of pointers (512 KiB), allocated once per
/// process on first intern.
const BUCKETS: usize = 1 << 16;

pub(crate) struct Node {
    hash: u64,
    text: Arc<str>,
    next: *mut Node,
}

// Nodes are only ever shared read-only after publication.
unsafe impl Send for Node {}
unsafe impl Sync for Node {}

struct Table {
    /// Heap-allocated so table construction never puts half a megabyte on
    /// the initializing thread's stack (the first intern can happen on a
    /// worker thread deep inside a generator tree).
    buckets: Box<[AtomicPtr<Node>]>,
}

impl Table {
    fn get() -> &'static Table {
        use std::sync::OnceLock;
        static TABLE: OnceLock<Table> = OnceLock::new();
        TABLE.get_or_init(|| Table {
            buckets: (0..BUCKETS)
                .map(|_| AtomicPtr::new(std::ptr::null_mut()))
                .collect(),
        })
    }
}

/// FNV-1a, the classic short-string hash.
pub(crate) fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Intern `s`: return the canonical shared allocation for this text.
///
/// Two `intern` calls with equal text return `Arc`s whose
/// [`Arc::ptr_eq`] holds (modulo a benign creation race, after which all
/// subsequent interns converge on one pointer), so interned strings
/// compare by pointer on the equality fast path ([`crate::Value::equiv`]).
pub fn intern(s: &str) -> Arc<str> {
    intern_node(s).text.clone()
}

/// Intern `s` and return the canonical immortal table node. Published
/// nodes are never freed, so `&'static` is sound — this is what makes
/// [`Symbol`] a `Copy` handle.
pub(crate) fn intern_node(s: &str) -> &'static Node {
    let table = Table::get();
    let hash = fnv1a(s);
    let bucket = &table.buckets[(hash as usize) & (BUCKETS - 1)];

    // Fast path: walk the published chain.
    let head = bucket.load(Ordering::Acquire);
    if let Some(found) = find(head, hash, s) {
        return found;
    }

    // Slow path: allocate a node and CAS it in, re-checking only the
    // prefix of the chain that appeared since our load.
    let node = Box::into_raw(Box::new(Node {
        hash,
        text: Arc::from(s),
        next: head,
    }));
    let mut seen = head;
    loop {
        // Safety: `node` is ours until successfully published.
        unsafe { (*node).next = seen };
        match bucket.compare_exchange_weak(seen, node, Ordering::Release, Ordering::Acquire) {
            Ok(_) => {
                obs_on!(crate::obs_hot::interned().inc());
                // Safety: just published — immortal from here on.
                return unsafe { &*node };
            }
            Err(newer) => {
                // Someone else pushed; check the newly visible prefix for
                // our text before retrying.
                if let Some(found) = find_until(newer, seen, hash, s) {
                    // Benign race lost: free our unpublished node.
                    drop(unsafe { Box::from_raw(node) });
                    return found;
                }
                seen = newer;
            }
        }
    }
}

/// Intern an already-shared string, returning the canonical `Arc`
/// (which all later [`intern`] calls with the same text will also
/// return).
pub fn intern_arc(s: &Arc<str>) -> Arc<str> {
    intern(s)
}

fn find(mut cur: *mut Node, hash: u64, s: &str) -> Option<&'static Node> {
    while !cur.is_null() {
        // Safety: published nodes are immortal and immutable.
        let node = unsafe { &*cur };
        if node.hash == hash && &*node.text == s {
            return Some(node);
        }
        cur = node.next;
    }
    None
}

/// Walk from `cur` down to (exclusive) `stop`, the part of the chain we
/// have not examined yet after a failed CAS.
fn find_until(mut cur: *mut Node, stop: *mut Node, hash: u64, s: &str) -> Option<&'static Node> {
    while !cur.is_null() && cur != stop {
        let node = unsafe { &*cur };
        if node.hash == hash && &*node.text == s {
            return Some(node);
        }
        cur = node.next;
    }
    None
}

/// An interned name: a `Copy` handle (one pointer) into the immortal
/// interner table, carrying the canonical text and a cached hash. This is
/// the payload the resolve pass stores in `Atom::Slot` and the compact
/// string representation behind `Value::Sym` — copying is a register
/// move (no `Arc` traffic), comparisons are pointer compares, hashing
/// replays the cached FNV-1a digest.
#[derive(Clone, Copy)]
pub struct Symbol {
    node: &'static Node,
}

impl Symbol {
    /// Intern `s` and wrap the canonical handle.
    pub fn new(s: &str) -> Symbol {
        Symbol {
            node: intern_node(s),
        }
    }

    /// The symbol's text. Interner nodes are immortal, so the slice is
    /// `'static`.
    pub fn as_str(&self) -> &'static str {
        let text: &'static Arc<str> = &self.node.text;
        text
    }

    /// The canonical shared allocation.
    pub fn arc(&self) -> Arc<str> {
        self.node.text.clone()
    }

    /// The cached FNV-1a hash of the text.
    pub fn hash_code(&self) -> u64 {
        self.node.hash
    }
}

impl PartialEq for Symbol {
    fn eq(&self, other: &Self) -> bool {
        // Canonical handles make pointer equality sufficient; fall back to
        // text equality to stay correct across a benign creation race.
        std::ptr::eq(self.node, other.node) || self.node.text == other.node.text
    }
}

impl Eq for Symbol {}

impl std::hash::Hash for Symbol {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        state.write_u64(self.node.hash);
    }
}

impl std::fmt::Debug for Symbol {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Symbol({:?})", self.as_str())
    }
}

impl std::fmt::Display for Symbol {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl std::ops::Deref for Symbol {
    type Target = str;
    fn deref(&self) -> &str {
        self.as_str()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_canonical() {
        let a = intern("hello-sym");
        let b = intern("hello-sym");
        assert!(Arc::ptr_eq(&a, &b));
        let c = intern("other-sym");
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(&*a, "hello-sym");
    }

    #[test]
    fn intern_arc_converges() {
        let fresh: Arc<str> = Arc::from("converge-me");
        let canon = intern_arc(&fresh);
        let again = intern("converge-me");
        assert!(Arc::ptr_eq(&canon, &again));
    }

    #[test]
    fn empty_and_unicode() {
        assert!(Arc::ptr_eq(&intern(""), &intern("")));
        assert!(Arc::ptr_eq(&intern("héllo"), &intern("héllo")));
    }

    #[test]
    fn symbols_are_copy_word_sized_handles() {
        // The whole point of the node-backed representation: a Symbol is
        // one pointer, copied in registers, and its text is immortal.
        assert_eq!(std::mem::size_of::<Symbol>(), std::mem::size_of::<usize>());
        let a = Symbol::new("copy-me");
        let b = a; // Copy, not Clone
        assert_eq!(a, b);
        let text: &'static str = a.as_str();
        assert_eq!(text, "copy-me");
    }

    #[test]
    fn symbols_compare_by_pointer() {
        let a = Symbol::new("x");
        let b = Symbol::new("x");
        let c = Symbol::new("y");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.hash_code(), b.hash_code());
        assert_eq!(a.as_str(), "x");
        assert!(Arc::ptr_eq(&a.arc(), &b.arc()));
    }

    #[test]
    fn concurrent_interning_converges() {
        // Hammer the same small key set from many threads; afterwards
        // every key must intern to one canonical pointer.
        let keys: Vec<String> = (0..64).map(|i| format!("k{i}")).collect();
        let mut handles = Vec::new();
        for t in 0..8 {
            let keys = keys.clone();
            handles.push(std::thread::spawn(move || {
                let mut got = Vec::new();
                for round in 0..200 {
                    let k = &keys[(t * 31 + round * 7) % keys.len()];
                    got.push((k.clone(), intern(k)));
                }
                got
            }));
        }
        let all: Vec<(String, Arc<str>)> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        for key in &keys {
            let canon = intern(key);
            for (k, v) in &all {
                if k == key {
                    assert!(Arc::ptr_eq(v, &canon), "{key} did not converge");
                }
            }
        }
    }

    #[test]
    fn many_distinct_keys_share_buckets() {
        // More keys than buckets: chains must stay correct.
        for i in 0..4096 {
            let k = format!("bulk-{i}");
            let a = intern(&k);
            let b = intern(&k);
            assert!(Arc::ptr_eq(&a, &b));
        }
    }
}
