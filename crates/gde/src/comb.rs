//! Generator combinators: the stream-like composition interface.
//!
//! "After normalization, the transformation of expressions proceeds by
//! mapping constructs and operators onto a stream-like interface for
//! composing suspendable iterators using functional forms such as product,
//! concatenation, map, and reduce" (Sec. V.B). These are those forms. The
//! names track the paper's `Icon*` classes: [`product`] is `IconProduct`,
//! [`bind`] is `IconIn`, [`promote`] is `IconPromote`, [`invoke_iter`] is
//! `IconInvokeIterator`, and so on.

use crate::gen::{BoxGen, Gen, Step};
use crate::value::Value;
use crate::var::Var;

pub mod fuse;

// ---------------------------------------------------------------------------
// Leaf generators
// ---------------------------------------------------------------------------

/// A singleton iterator: produces `v` once, then fails.
///
/// This is `<>e` in its degenerate form and the lifting applied to plain
/// native results: "for plain Java methods, invocation just promotes the
/// result to a singleton iterator" (Sec. V.A).
pub fn unit(v: Value) -> Unit {
    Unit { v, done: false }
}

pub struct Unit {
    v: Value,
    done: bool,
}

impl Gen for Unit {
    fn resume(&mut self) -> Step {
        if self.done {
            Step::Fail
        } else {
            self.done = true;
            Step::Suspend(self.v.clone())
        }
    }
    fn restart(&mut self) {
        self.done = false;
    }
}

/// A generator that always fails (Icon's `&fail`).
pub fn fail() -> FailGen {
    FailGen
}

pub struct FailGen;

impl Gen for FailGen {
    fn resume(&mut self) -> Step {
        Step::Fail
    }
    fn restart(&mut self) {}
}

/// A singleton iterator whose value is recomputed from the environment on
/// each (re)start — the lifted closure form of `@<script lang="java">`
/// regions and reified variable reads.
pub fn thunk(f: impl Fn() -> Option<Value> + Send + 'static) -> Thunk {
    Thunk {
        f: Box::new(f),
        done: false,
    }
}

pub struct Thunk {
    f: Box<dyn Fn() -> Option<Value> + Send>,
    done: bool,
}

impl Gen for Thunk {
    fn resume(&mut self) -> Step {
        if self.done {
            return Step::Fail;
        }
        self.done = true;
        match (self.f)() {
            Some(v) => Step::Suspend(v),
            None => Step::Fail,
        }
    }
    fn restart(&mut self) {
        self.done = false;
    }
}

/// Generate each element of a vector in turn.
pub fn values(items: Vec<Value>) -> Values {
    Values { items, pos: 0 }
}

pub struct Values {
    items: Vec<Value>,
    pos: usize,
}

impl Gen for Values {
    fn resume(&mut self) -> Step {
        match self.items.get(self.pos) {
            Some(v) => {
                self.pos += 1;
                Step::Suspend(v.clone())
            }
            None => Step::Fail,
        }
    }
    fn restart(&mut self) {
        self.pos = 0;
    }
}

/// Icon's `i to j by k`: the arithmetic sequence from `i` through `j`.
///
/// # Panics
/// Panics if `by` is zero (as Icon errors at runtime).
pub fn to_range(from: i64, to: i64, by: i64) -> ToRange {
    assert!(by != 0, "`to ... by 0` is an error");
    ToRange {
        from,
        to,
        by,
        next: from,
        exhausted: false,
    }
}

pub struct ToRange {
    from: i64,
    to: i64,
    by: i64,
    next: i64,
    exhausted: bool,
}

impl Gen for ToRange {
    fn resume(&mut self) -> Step {
        let in_range = if self.by > 0 {
            self.next <= self.to
        } else {
            self.next >= self.to
        };
        if self.exhausted || !in_range {
            return Step::Fail;
        }
        let v = self.next;
        // checked_add failing means the step left i64 entirely, which also
        // means v was the last in-range value.
        match v.checked_add(self.by) {
            Some(n) => self.next = n,
            None => self.exhausted = true,
        }
        Step::Suspend(Value::Int(v))
    }
    fn restart(&mut self) {
        self.next = self.from;
        self.exhausted = false;
    }
}

/// A dynamic `to ... by` whose bounds are re-read from thunks at each
/// restart (used when range endpoints are themselves variables).
pub fn to_range_dyn(
    from: impl Fn() -> Option<i64> + Send + 'static,
    to: impl Fn() -> Option<i64> + Send + 'static,
    by: impl Fn() -> Option<i64> + Send + 'static,
) -> ToRangeDyn {
    ToRangeDyn {
        from: Box::new(from),
        to: Box::new(to),
        by: Box::new(by),
        state: None,
        failed: false,
    }
}

pub struct ToRangeDyn {
    from: Box<dyn Fn() -> Option<i64> + Send>,
    to: Box<dyn Fn() -> Option<i64> + Send>,
    by: Box<dyn Fn() -> Option<i64> + Send>,
    state: Option<ToRange>,
    failed: bool,
}

impl Gen for ToRangeDyn {
    fn resume(&mut self) -> Step {
        if self.failed {
            return Step::Fail;
        }
        if self.state.is_none() {
            match ((self.from)(), (self.to)(), (self.by)()) {
                (Some(f), Some(t), Some(b)) if b != 0 => {
                    self.state = Some(to_range(f, t, b));
                }
                _ => {
                    self.failed = true;
                    return Step::Fail;
                }
            }
        }
        self.state.as_mut().expect("just initialized").resume()
    }
    fn restart(&mut self) {
        self.state = None;
        self.failed = false;
    }
}

// ---------------------------------------------------------------------------
// Composition: product, alternation, binding
// ---------------------------------------------------------------------------

/// The iterator product `e & e'` — `IconProduct`.
///
/// For each result of `left`, `right` is restarted and iterated; the
/// product yields `right`'s results. When `right` fails, the product
/// *backtracks* by resuming `left`. Values flow from left to right through
/// [`Var`] bindings (see [`bind`]), so `right`'s restart re-reads them.
pub fn product(left: impl Gen + 'static, right: impl Gen + 'static) -> Product {
    Product {
        left: Box::new(left),
        right: Box::new(right),
        have_left: false,
    }
}

/// [`product`] over a slice of already-boxed factors, associating right.
pub fn product_all(mut factors: Vec<BoxGen>) -> BoxGen {
    match factors.len() {
        0 => Box::new(unit(Value::Null)),
        1 => factors.pop().expect("len checked"),
        _ => {
            let first = factors.remove(0);
            Box::new(Product {
                left: first,
                right: product_all(factors),
                have_left: false,
            })
        }
    }
}

pub struct Product {
    left: BoxGen,
    right: BoxGen,
    have_left: bool,
}

impl Gen for Product {
    fn resume(&mut self) -> Step {
        loop {
            if !self.have_left {
                match self.left.resume() {
                    Step::Suspend(_) => {
                        self.have_left = true;
                        self.right.restart();
                    }
                    Step::Fail => return Step::Fail,
                }
            }
            match self.right.resume() {
                Step::Suspend(v) => return Step::Suspend(v),
                Step::Fail => self.have_left = false,
            }
        }
    }
    fn restart(&mut self) {
        self.left.restart();
        self.have_left = false;
    }
}

/// Convenience: the mapped product of two generators, `f(i, j)` over the
/// cross product, with per-pair failure (`None`) pruning that pair. This is
/// how binary operators compose: `x + y` is
/// `product_map(x, |_| y, ops::add)`.
pub fn product_map(
    left: impl Gen + 'static,
    right_factory: impl Fn(&Value) -> BoxGen + Send + 'static,
    f: impl Fn(&Value, &Value) -> Option<Value> + Send + 'static,
) -> ProductMap {
    ProductMap {
        left: Box::new(left),
        right_factory: Box::new(right_factory),
        f: Box::new(f),
        cur: None,
    }
}

type RightFactory = Box<dyn Fn(&Value) -> BoxGen + Send>;
type PairFn = Box<dyn Fn(&Value, &Value) -> Option<Value> + Send>;

pub struct ProductMap {
    left: BoxGen,
    right_factory: RightFactory,
    f: PairFn,
    cur: Option<(Value, BoxGen)>,
}

impl Gen for ProductMap {
    fn resume(&mut self) -> Step {
        loop {
            if self.cur.is_none() {
                match self.left.resume() {
                    Step::Suspend(lv) => {
                        let right = (self.right_factory)(&lv);
                        self.cur = Some((lv, right));
                    }
                    Step::Fail => return Step::Fail,
                }
            }
            let (lv, right) = self.cur.as_mut().expect("just set");
            match right.resume() {
                Step::Suspend(rv) => {
                    if let Some(out) = (self.f)(lv, &rv) {
                        return Step::Suspend(out);
                    }
                    // pair failed: keep searching this right sequence
                }
                Step::Fail => self.cur = None,
            }
        }
    }
    fn restart(&mut self) {
        self.left.restart();
        self.cur = None;
    }
}

/// Stage concatenation: for each value of `left`, instantiate a generator
/// with `right_factory` and yield its values *directly*.
///
/// This is [`product_map`] specialised to an identity pair-function — the
/// shape every Fig. 3 stage composition (`splitWords(readLines())`)
/// lowers to. Having a dedicated combinator matters on hot paths: the
/// generic form must route every inner value through a boxed closure and
/// clone it (the pair-function takes borrows), while `flat` moves each
/// suspended value straight through — zero clones, zero closure calls per
/// element.
pub fn flat(
    left: impl Gen + 'static,
    right_factory: impl Fn(&Value) -> BoxGen + Send + 'static,
) -> Flat {
    Flat {
        left: Box::new(left),
        right_factory: Box::new(right_factory),
        cur: None,
    }
}

pub struct Flat {
    left: BoxGen,
    right_factory: RightFactory,
    cur: Option<BoxGen>,
}

impl Gen for Flat {
    fn resume(&mut self) -> Step {
        loop {
            if self.cur.is_none() {
                match self.left.resume() {
                    Step::Suspend(lv) => self.cur = Some((self.right_factory)(&lv)),
                    Step::Fail => return Step::Fail,
                }
            }
            match self.cur.as_mut().expect("just set").resume() {
                Step::Suspend(rv) => return Step::Suspend(rv),
                Step::Fail => self.cur = None,
            }
        }
    }
    fn restart(&mut self) {
        self.left.restart();
        self.cur = None;
    }
}

/// Bound iteration `(x in e)` — `IconIn`.
///
/// Yields `e`'s results, assigning each to `var` as a side effect. This is
/// the glue of the normalization of Sec. V.A: flattened primaries
/// communicate through these bindings.
pub fn bind(var: Var, inner: impl Gen + 'static) -> Bind {
    Bind {
        var,
        inner: Box::new(inner),
    }
}

pub struct Bind {
    var: Var,
    inner: BoxGen,
}

impl Gen for Bind {
    fn resume(&mut self) -> Step {
        match self.inner.resume() {
            Step::Suspend(v) => {
                self.var.set(v.clone());
                Step::Suspend(v)
            }
            Step::Fail => Step::Fail,
        }
    }
    fn restart(&mut self) {
        self.inner.restart();
    }
}

/// Alternation `e | e'`: concatenation of generator sequences.
pub fn alt(a: impl Gen + 'static, b: impl Gen + 'static) -> Alt {
    Alt {
        items: vec![Box::new(a), Box::new(b)],
        pos: 0,
    }
}

/// N-ary alternation.
pub fn alt_all(items: Vec<BoxGen>) -> Alt {
    Alt { items, pos: 0 }
}

pub struct Alt {
    items: Vec<BoxGen>,
    pos: usize,
}

impl Gen for Alt {
    fn resume(&mut self) -> Step {
        while let Some(g) = self.items.get_mut(self.pos) {
            match g.resume() {
                Step::Suspend(v) => return Step::Suspend(v),
                Step::Fail => self.pos += 1,
            }
        }
        Step::Fail
    }
    fn restart(&mut self) {
        for g in &mut self.items {
            g.restart();
        }
        self.pos = 0;
    }
}

// ---------------------------------------------------------------------------
// Limitation, bounding, repetition
// ---------------------------------------------------------------------------

/// Limitation `e \ n`: at most `n` results.
pub fn limit(inner: impl Gen + 'static, n: usize) -> Limit {
    Limit {
        inner: Box::new(inner),
        n,
        produced: 0,
    }
}

pub struct Limit {
    inner: BoxGen,
    n: usize,
    produced: usize,
}

impl Gen for Limit {
    fn resume(&mut self) -> Step {
        if self.produced >= self.n {
            return Step::Fail;
        }
        match self.inner.resume() {
            Step::Suspend(v) => {
                self.produced += 1;
                Step::Suspend(v)
            }
            Step::Fail => Step::Fail,
        }
    }
    fn restart(&mut self) {
        self.inner.restart();
        self.produced = 0;
    }
}

/// A bounded expression: produces at most one result and can never be
/// resumed for more (the `;`-separated statement semantics of Sec. II.A:
/// "singleton iterators that are limited to producing at most one result").
pub fn bounded(inner: impl Gen + 'static) -> Limit {
    limit(inner, 1)
}

/// Repeated alternation `|e|`: cycles `e`, restarting it each time it runs
/// out; fails only when a full pass of `e` produces no result (which
/// otherwise would loop forever).
pub fn repeat_alt(inner: impl Gen + 'static) -> RepeatAlt {
    RepeatAlt {
        inner: Box::new(inner),
        produced_this_pass: false,
        dead: false,
    }
}

pub struct RepeatAlt {
    inner: BoxGen,
    produced_this_pass: bool,
    dead: bool,
}

impl Gen for RepeatAlt {
    fn resume(&mut self) -> Step {
        if self.dead {
            return Step::Fail;
        }
        loop {
            match self.inner.resume() {
                Step::Suspend(v) => {
                    self.produced_this_pass = true;
                    return Step::Suspend(v);
                }
                Step::Fail => {
                    if !self.produced_this_pass {
                        self.dead = true;
                        return Step::Fail;
                    }
                    self.inner.restart();
                    self.produced_this_pass = false;
                }
            }
        }
    }
    fn restart(&mut self) {
        self.inner.restart();
        self.produced_this_pass = false;
        self.dead = false;
    }
}

// ---------------------------------------------------------------------------
// Mapping and filtering
// ---------------------------------------------------------------------------

/// Map a fallible function over a generator; `None` results are skipped
/// (the goal-directed filter).
pub fn filter_map(
    inner: impl Gen + 'static,
    f: impl Fn(&Value) -> Option<Value> + Send + 'static,
) -> FilterMap {
    FilterMap {
        inner: Box::new(inner),
        f: Box::new(f),
    }
}

type ValueMapFn = Box<dyn Fn(&Value) -> Option<Value> + Send>;

pub struct FilterMap {
    inner: BoxGen,
    f: ValueMapFn,
}

impl Gen for FilterMap {
    fn resume(&mut self) -> Step {
        loop {
            match self.inner.resume() {
                Step::Suspend(v) => {
                    if let Some(out) = (self.f)(&v) {
                        return Step::Suspend(out);
                    }
                }
                Step::Fail => return Step::Fail,
            }
        }
    }
    fn restart(&mut self) {
        self.inner.restart();
    }
}

// ---------------------------------------------------------------------------
// Promotion: ! and invocation
// ---------------------------------------------------------------------------

/// Promotion `!e` — `IconPromote`: lift a value to a generator of its
/// elements.
///
/// * lists generate their elements (snapshot of the current contents);
/// * strings generate their 1-character substrings;
/// * tables generate their values;
/// * co-expressions are unravelled: each resume steps the coroutine
///   ("`!e → repeatUntilFailure(suspend @e)`", Sec. III);
/// * other values fail.
///
/// The value is obtained from a thunk so that a restart re-reads the
/// (possibly reassigned) source variable.
pub fn promote(src: impl Fn() -> Value + Send + 'static) -> Promote {
    Promote {
        src: Box::new(src),
        state: PromoteState::Fresh,
    }
}

/// [`promote`] of an already-known value.
pub fn promote_value(v: Value) -> Promote {
    promote(move || v.clone())
}

pub struct Promote {
    src: Box<dyn Fn() -> Value + Send>,
    state: PromoteState,
}

enum PromoteState {
    Fresh,
    Items(Values),
    Co(crate::value::CoRef, bool),
    Dead,
}

impl Gen for Promote {
    fn resume(&mut self) -> Step {
        loop {
            match &mut self.state {
                PromoteState::Fresh => {
                    let v = (self.src)().deref();
                    self.state = match v {
                        Value::List(l) => PromoteState::Items(values(l.lock().clone())),
                        s @ (Value::Str(_) | Value::Sym(_) | Value::Slice(_) | Value::Built(_)) => {
                            PromoteState::Items(values(
                                s.as_str()
                                    .expect("string form")
                                    .chars()
                                    .map(|c| Value::from(c.to_string()))
                                    .collect(),
                            ))
                        }
                        Value::Table(t) => PromoteState::Items(values(
                            t.lock().entries.values().cloned().collect(),
                        )),
                        Value::Co(c) => PromoteState::Co(c, false),
                        _ => PromoteState::Dead,
                    };
                }
                PromoteState::Items(vs) => return vs.resume(),
                PromoteState::Co(c, done) => {
                    if *done {
                        return Step::Fail;
                    }
                    match c.lock().step() {
                        Some(v) => return Step::Suspend(v),
                        None => {
                            *done = true;
                            return Step::Fail;
                        }
                    }
                }
                PromoteState::Dead => return Step::Fail,
            }
        }
    }
    fn restart(&mut self) {
        self.state = PromoteState::Fresh;
    }
}

/// Deferred invocation — `IconInvokeIterator`.
///
/// The thunk re-resolves the callee and arguments (reading their bound
/// [`Var`]s) each time the node is restarted, then delegates iteration to
/// the generator the invocation returns. A thunk returning `None` (callee
/// not invocable) fails.
pub fn invoke_iter(thunk: impl Fn() -> Option<BoxGen> + Send + 'static) -> InvokeIter {
    InvokeIter {
        thunk: Box::new(thunk),
        cur: None,
        dead: false,
    }
}

pub struct InvokeIter {
    thunk: Box<dyn Fn() -> Option<BoxGen> + Send>,
    cur: Option<BoxGen>,
    dead: bool,
}

impl Gen for InvokeIter {
    fn resume(&mut self) -> Step {
        if self.dead {
            return Step::Fail;
        }
        if self.cur.is_none() {
            match (self.thunk)() {
                Some(g) => self.cur = Some(g),
                None => {
                    self.dead = true;
                    return Step::Fail;
                }
            }
        }
        self.cur.as_mut().expect("just set").resume()
    }
    fn restart(&mut self) {
        self.cur = None;
        self.dead = false;
    }
}

// ---------------------------------------------------------------------------
// Control constructs
// ---------------------------------------------------------------------------

/// `every e do body`: drive `e` to failure, evaluating `body` (bounded) for
/// each result; the whole construct fails (produces no results), like Icon's
/// `every`.
pub fn every_do(source: impl Gen + 'static, body: impl FnMut(&Value) + Send + 'static) -> EveryDo {
    EveryDo {
        source: Box::new(source),
        body: Box::new(body),
        done: false,
    }
}

pub struct EveryDo {
    source: BoxGen,
    body: Box<dyn FnMut(&Value) + Send>,
    done: bool,
}

impl Gen for EveryDo {
    fn resume(&mut self) -> Step {
        if !self.done {
            while let Step::Suspend(v) = self.source.resume() {
                (self.body)(&v);
            }
            self.done = true;
        }
        Step::Fail
    }
    fn restart(&mut self) {
        self.source.restart();
        self.done = false;
    }
}

/// `while cond do body`: re-evaluates the bounded condition thunk before
/// each pass; runs the body while the condition succeeds. Fails when done.
pub fn while_do(
    cond: impl FnMut() -> Option<Value> + Send + 'static,
    body: impl FnMut() + Send + 'static,
) -> WhileDo {
    WhileDo {
        cond: Box::new(cond),
        body: Box::new(body),
        done: false,
    }
}

pub struct WhileDo {
    cond: Box<dyn FnMut() -> Option<Value> + Send>,
    body: Box<dyn FnMut() + Send>,
    done: bool,
}

impl Gen for WhileDo {
    fn resume(&mut self) -> Step {
        if !self.done {
            while (self.cond)().is_some() {
                (self.body)();
            }
            self.done = true;
        }
        Step::Fail
    }
    fn restart(&mut self) {
        self.done = false;
    }
}

/// `if cond then e1 else e2`: evaluates the bounded condition once per
/// (re)start, then delegates all iteration to the chosen branch.
pub fn if_then_else(
    cond: impl Fn() -> Option<Value> + Send + 'static,
    then_branch: impl Gen + 'static,
    else_branch: impl Gen + 'static,
) -> IfThenElse {
    IfThenElse {
        cond: Box::new(cond),
        then_branch: Box::new(then_branch),
        else_branch: Box::new(else_branch),
        chosen: None,
    }
}

pub struct IfThenElse {
    cond: Box<dyn Fn() -> Option<Value> + Send>,
    then_branch: BoxGen,
    else_branch: BoxGen,
    chosen: Option<bool>,
}

impl Gen for IfThenElse {
    fn resume(&mut self) -> Step {
        let chosen = *self.chosen.get_or_insert_with(|| (self.cond)().is_some());
        if chosen {
            self.then_branch.resume()
        } else {
            self.else_branch.resume()
        }
    }
    fn restart(&mut self) {
        self.then_branch.restart();
        self.else_branch.restart();
        self.chosen = None;
    }
}

/// The sequence `a; b; …; z` — `IconSequence`: each leading expression is
/// evaluated as a bounded singleton (its results discarded beyond the
/// first attempt), then iteration is delegated to the final expression.
pub fn seq(mut exprs: Vec<BoxGen>) -> BoxGen {
    match exprs.len() {
        0 => Box::new(unit(Value::Null)),
        1 => exprs.pop().expect("len checked"),
        _ => {
            let last = exprs.pop().expect("len checked");
            Box::new(Seq {
                leading: exprs,
                last,
                pos: 0,
            })
        }
    }
}

pub struct Seq {
    leading: Vec<BoxGen>,
    last: BoxGen,
    pos: usize,
}

impl Gen for Seq {
    fn resume(&mut self) -> Step {
        while self.pos < self.leading.len() {
            // Bounded evaluation: one attempt, result discarded.
            let _ = self.leading[self.pos].resume();
            self.pos += 1;
        }
        self.last.resume()
    }
    fn restart(&mut self) {
        for g in &mut self.leading {
            g.restart();
        }
        self.last.restart();
        self.pos = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::GenExt;
    use crate::ops;

    fn ints(g: &mut dyn Gen) -> Vec<i64> {
        g.collect_values()
            .iter()
            .map(|v| v.as_int().unwrap())
            .collect()
    }

    #[test]
    fn unit_produces_once_then_fails_until_restart() {
        let mut g = unit(Value::from(7));
        assert_eq!(g.resume(), Step::Suspend(Value::from(7)));
        assert_eq!(g.resume(), Step::Fail);
        assert_eq!(g.resume(), Step::Fail);
        g.restart();
        assert_eq!(g.resume(), Step::Suspend(Value::from(7)));
    }

    #[test]
    fn to_range_forward_backward() {
        assert_eq!(ints(&mut to_range(1, 4, 1)), vec![1, 2, 3, 4]);
        assert_eq!(ints(&mut to_range(10, 1, -3)), vec![10, 7, 4, 1]);
        assert_eq!(ints(&mut to_range(5, 1, 1)), Vec::<i64>::new());
        assert_eq!(ints(&mut to_range(3, 3, 1)), vec![3]);
    }

    #[test]
    fn to_range_survives_i64_edge() {
        let mut g = to_range(i64::MAX - 1, i64::MAX, 1);
        assert_eq!(ints(&mut g), vec![i64::MAX - 1, i64::MAX]);
    }

    #[test]
    #[should_panic(expected = "by 0")]
    fn to_range_zero_step_panics() {
        to_range(1, 2, 0);
    }

    #[test]
    fn product_is_cross_product_via_bindings() {
        // (i in 1 to 2) & (j in 4 to 5) & i*10+j
        let i = Var::null();
        let j = Var::null();
        let (i2, j2) = (i.clone(), j.clone());
        let g = product(
            bind(i.clone(), to_range(1, 2, 1)),
            product(
                bind(j.clone(), to_range(4, 5, 1)),
                thunk(move || ops::add(&ops::mul(&i2.get(), &Value::from(10))?, &j2.get())),
            ),
        );
        let mut g = g;
        assert_eq!(ints(&mut g), vec![14, 15, 24, 25]);
        // Restart resets everything.
        g.restart();
        assert_eq!(ints(&mut g), vec![14, 15, 24, 25]);
    }

    #[test]
    fn product_backtracks_on_right_failure() {
        // (i in 1 to 3) & (i if even else fail): only 2 survives.
        let i = Var::null();
        let i2 = i.clone();
        let mut g = product(
            bind(i.clone(), to_range(1, 3, 1)),
            thunk(move || {
                let v = i2.get();
                if v.as_int().unwrap() % 2 == 0 {
                    Some(v)
                } else {
                    None
                }
            }),
        );
        assert_eq!(ints(&mut g), vec![2]);
    }

    #[test]
    fn product_map_prime_multiples_example() {
        // The paper's Sec. II example: (1 to 2) * isprime(4 to 7)
        // = 5, 7, 10, 14.
        let isprime = |v: &Value| {
            let n = v.as_int()?;
            if n >= 2 && (2..n).all(|d| n % d != 0) {
                Some(v.clone())
            } else {
                None
            }
        };
        let mut g = product_map(
            to_range(1, 2, 1),
            move |_| Box::new(filter_map(to_range(4, 7, 1), isprime)) as BoxGen,
            ops::mul,
        );
        assert_eq!(ints(&mut g), vec![5, 7, 10, 14]);
    }

    #[test]
    fn product_all_flattens() {
        let x = Var::null();
        let y = Var::null();
        let (x2, y2) = (x.clone(), y.clone());
        let mut g = product_all(vec![
            Box::new(bind(x, to_range(1, 2, 1))),
            Box::new(bind(y, to_range(1, 2, 1))),
            Box::new(thunk(move || {
                ops::add(&ops::mul(&x2.get(), &Value::from(10))?, &y2.get())
            })),
        ]);
        assert_eq!(ints(&mut g), vec![11, 12, 21, 22]);
    }

    #[test]
    fn alt_concatenates() {
        let mut g = alt(to_range(1, 2, 1), to_range(10, 11, 1));
        assert_eq!(ints(&mut g), vec![1, 2, 10, 11]);
        g.restart();
        assert_eq!(ints(&mut g), vec![1, 2, 10, 11]);
    }

    #[test]
    fn alt_all_with_empty_members() {
        let mut g = alt_all(vec![
            Box::new(fail()) as BoxGen,
            Box::new(unit(Value::from(1))),
            Box::new(fail()),
            Box::new(unit(Value::from(2))),
        ]);
        assert_eq!(ints(&mut g), vec![1, 2]);
    }

    #[test]
    fn limit_caps_results() {
        assert_eq!(ints(&mut limit(to_range(1, 100, 1), 3)), vec![1, 2, 3]);
        assert_eq!(ints(&mut limit(to_range(1, 2, 1), 5)), vec![1, 2]);
        assert_eq!(ints(&mut limit(to_range(1, 5, 1), 0)), Vec::<i64>::new());
    }

    #[test]
    fn bounded_is_limit_one() {
        let mut g = bounded(to_range(7, 9, 1));
        assert_eq!(ints(&mut g), vec![7]);
    }

    #[test]
    fn repeat_alt_cycles_and_detects_empty() {
        let mut g = limit(repeat_alt(to_range(1, 2, 1)), 5);
        assert_eq!(ints(&mut g), vec![1, 2, 1, 2, 1]);
        // |&fail| must fail rather than loop forever.
        let mut empty = repeat_alt(fail());
        assert_eq!(empty.resume(), Step::Fail);
    }

    #[test]
    fn filter_map_skips_failures() {
        let mut g = filter_map(to_range(1, 6, 1), |v| {
            let n = v.as_int()?;
            if n % 2 == 0 {
                Some(Value::from(n * n))
            } else {
                None
            }
        });
        assert_eq!(ints(&mut g), vec![4, 16, 36]);
    }

    #[test]
    fn promote_list_string_and_scalar() {
        let l = Value::list(vec![Value::from(1), Value::from(2)]);
        assert_eq!(ints(&mut promote_value(l)), vec![1, 2]);

        let s: Vec<String> = promote_value(Value::str("abc"))
            .collect_values()
            .iter()
            .map(|v| v.as_str().unwrap().to_string())
            .collect();
        assert_eq!(s, vec!["a", "b", "c"]);

        assert_eq!(promote_value(Value::from(5)).resume(), Step::Fail);
        assert_eq!(promote_value(Value::Null).resume(), Step::Fail);
    }

    #[test]
    fn promote_rereads_source_after_restart() {
        let v = Var::new(Value::list(vec![Value::from(1)]));
        let v2 = v.clone();
        let mut g = promote(move || v2.get());
        assert_eq!(ints(&mut g), vec![1]);
        v.set(Value::list(vec![Value::from(9), Value::from(8)]));
        g.restart();
        assert_eq!(ints(&mut g), vec![9, 8]);
    }

    #[test]
    fn invoke_iter_redispatches_on_restart() {
        let which = Var::new(Value::from(0));
        let which2 = which.clone();
        let mut g = invoke_iter(move || {
            let n = which2.get().as_int()?;
            Some(Box::new(to_range(n, n + 1, 1)) as BoxGen)
        });
        assert_eq!(ints(&mut g), vec![0, 1]);
        which.set(Value::from(10));
        g.restart();
        assert_eq!(ints(&mut g), vec![10, 11]);
    }

    #[test]
    fn invoke_iter_fails_on_bad_callee() {
        let mut g = invoke_iter(|| None);
        assert_eq!(g.resume(), Step::Fail);
        assert_eq!(g.resume(), Step::Fail);
    }

    #[test]
    fn every_do_drives_side_effects() {
        let acc = Var::new(Value::from(0));
        let acc2 = acc.clone();
        let mut g = every_do(to_range(1, 4, 1), move |v| {
            let cur = acc2.get();
            acc2.set(ops::add(&cur, v).unwrap());
        });
        assert_eq!(g.resume(), Step::Fail); // every fails
        assert_eq!(acc.get().as_int(), Some(10));
    }

    #[test]
    fn while_do_loops_until_cond_fails() {
        let n = Var::new(Value::from(0));
        let (nc, nb) = (n.clone(), n.clone());
        let mut g = while_do(
            move || ops::lt(&nc.get(), &Value::from(5)),
            move || {
                let cur = nb.get();
                nb.set(ops::add(&cur, &Value::from(1)).unwrap());
            },
        );
        assert_eq!(g.resume(), Step::Fail);
        assert_eq!(n.get().as_int(), Some(5));
    }

    #[test]
    fn if_then_else_choice_rechecked_on_restart() {
        let flag = Var::new(Value::from(1));
        let f2 = flag.clone();
        let mut g = if_then_else(
            move || ops::num_eq(&f2.get(), &Value::from(1)),
            unit(Value::str("then")),
            unit(Value::str("else")),
        );
        assert_eq!(g.next_value().unwrap().as_str(), Some("then"));
        flag.set(Value::from(0));
        g.restart();
        assert_eq!(g.next_value().unwrap().as_str(), Some("else"));
    }

    #[test]
    fn seq_bounds_leading_and_delegates_last() {
        let log = Var::new(Value::list(vec![]));
        let l1 = log.clone();
        let side = thunk(move || {
            if let Value::List(l) = l1.get() {
                l.lock().push(Value::from(1));
            }
            Some(Value::Null)
        });
        let mut g = seq(vec![Box::new(side) as BoxGen, Box::new(to_range(5, 7, 1))]);
        assert_eq!(ints(&mut g), vec![5, 6, 7]);
        // The leading expression ran exactly once even though the last
        // generator was resumed several times.
        assert_eq!(log.get().size(), Some(1));
    }

    #[test]
    fn thunk_reevaluates_on_restart_only() {
        let v = Var::new(Value::from(1));
        let v2 = v.clone();
        let mut g = thunk(move || Some(v2.get()));
        assert_eq!(g.next_value().unwrap().as_int(), Some(1));
        assert_eq!(g.resume(), Step::Fail);
        v.set(Value::from(2));
        g.restart();
        assert_eq!(g.next_value().unwrap().as_int(), Some(2));
    }
}
