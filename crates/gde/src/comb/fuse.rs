//! Emit-time combinator stage fusion.
//!
//! Every combinator stage in a pipeline costs one virtual `resume` (plus
//! one [`Step`] construction and match) per produced value: a
//! `hash(parse(split(lines)))` chain pays three boxed dispatches per word
//! before any real work happens. Stream-fusion folklore (Coutts et al.,
//! "Stream Fusion"; Kiselyov et al., "Stream Fusion, to Completeness")
//! says adjacent *monogenic* stages — stages that produce at most one
//! output per input: map, filter, filter-map — compose into a single
//! closure with no observable difference, because goal-directed skipping
//! (`None` prunes the value) and failure propagation (`Fail` passes
//! through untouched) are both preserved by ordinary function
//! composition.
//!
//! This module reifies a pipeline as data first — a [`Stage`] IR — so a
//! [`fuse`](StagePlan::fuse) rewriter can collapse maximal runs of
//! adjacent monogenic stages into one composed filter-map closure with
//! exactly one `resume` per emitted value. [`Stage::Flat`] (one input →
//! a whole sub-generator of outputs, the `splitWords(!lines)` shape) is a
//! *fusion barrier*: its inner generator has its own suspension points,
//! so stages cannot move across it. A run *following* a barrier can
//! still be absorbed into it ([`FlatFused`]) — the flat node applies the
//! composed closure inline to each inner suspension instead of paying a
//! separate boxed stage.
//!
//! Fusion is a pure rewrite: [`StagePlan::instantiate_unfused`] builds
//! the traditional one-node-per-stage tree, and the differential suite
//! (`gde/tests/fusion_diff.rs`) proves fused ≡ unfused — identical
//! outputs, identical per-stage evaluation counts, identical failure
//! points — over randomized pipelines, restarts and schedules.
//!
//! With the `obs` feature on, fusion is visible at runtime:
//! `gde.comb.fused_stages` counts the dispatch seams eliminated by each
//! `fuse()` (and by emitted-code fusion, via [`emitted_fused`]), and
//! `gde.comb.fusion_barriers` counts the flat barriers that cut runs
//! short.

use super::{filter_map, flat};
use crate::gen::{BoxGen, Gen, Step};
use crate::value::Value;
use std::sync::Arc;

/// A composed (or single-stage) monogenic transform: at most one output
/// per input, `None` skips the value.
pub type FusedFn = Arc<dyn Fn(&Value) -> Option<Value> + Send + Sync>;

/// One pipeline stage, as data. Closures are `Arc`ed so a plan can be
/// fused once and instantiated many times (pipe producers re-instantiate
/// on every restart).
#[derive(Clone)]
pub enum Stage {
    /// Total per-value transform: always one output per input.
    Map(Arc<dyn Fn(&Value) -> Value + Send + Sync>),
    /// Goal-directed guard: the value passes through unchanged or is
    /// skipped.
    Filter(Arc<dyn Fn(&Value) -> bool + Send + Sync>),
    /// The general monogenic stage: transform or skip.
    FilterMap(FusedFn),
    /// One input value → a whole sub-generator of outputs (stage
    /// concatenation, [`super::flat`]). Not monogenic: a fusion barrier.
    Flat(Arc<dyn Fn(&Value) -> BoxGen + Send + Sync>),
}

impl Stage {
    /// True for stages that produce at most one output per input — the
    /// stages `fuse()` may compose.
    pub fn is_monogenic(&self) -> bool {
        !matches!(self, Stage::Flat(_))
    }

    /// The stage as a monogenic closure (barriers have none).
    fn as_fn(&self) -> Option<FusedFn> {
        match self {
            Stage::Map(f) => {
                let f = Arc::clone(f);
                Some(Arc::new(move |v| Some(f(v))))
            }
            Stage::Filter(p) => {
                let p = Arc::clone(p);
                Some(Arc::new(move |v| if p(v) { Some(v.clone()) } else { None }))
            }
            Stage::FilterMap(f) => Some(Arc::clone(f)),
            Stage::Flat(_) => None,
        }
    }
}

/// An ordered pipeline description: a source-agnostic list of stages.
///
/// Build one with the chaining constructors, then either
/// [`fuse`](StagePlan::fuse) it (production path) or
/// [`instantiate_unfused`](StagePlan::instantiate_unfused) it (the
/// reference semantics the differential suite compares against).
#[derive(Clone, Default)]
pub struct StagePlan {
    stages: Vec<Stage>,
}

impl StagePlan {
    pub fn new() -> StagePlan {
        StagePlan::default()
    }

    /// Append a total map stage.
    pub fn map(mut self, f: impl Fn(&Value) -> Value + Send + Sync + 'static) -> StagePlan {
        self.stages.push(Stage::Map(Arc::new(f)));
        self
    }

    /// Append a filter stage.
    pub fn filter(mut self, p: impl Fn(&Value) -> bool + Send + Sync + 'static) -> StagePlan {
        self.stages.push(Stage::Filter(Arc::new(p)));
        self
    }

    /// Append a filter-map stage.
    pub fn filter_map(
        mut self,
        f: impl Fn(&Value) -> Option<Value> + Send + Sync + 'static,
    ) -> StagePlan {
        self.stages.push(Stage::FilterMap(Arc::new(f)));
        self
    }

    /// Append a flattening stage (fusion barrier).
    pub fn flat(mut self, f: impl Fn(&Value) -> BoxGen + Send + Sync + 'static) -> StagePlan {
        self.stages.push(Stage::Flat(Arc::new(f)));
        self
    }

    /// Append an already-built [`Stage`].
    pub fn stage(mut self, s: Stage) -> StagePlan {
        self.stages.push(s);
        self
    }

    /// The number of stages in the plan.
    pub fn len(&self) -> usize {
        self.stages.len()
    }

    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }

    /// Collapse maximal runs of adjacent monogenic stages into single
    /// composed closures, absorbing each run that follows a flat barrier
    /// into the barrier itself. The result instantiates with one
    /// `resume` per emitted value per segment.
    pub fn fuse(&self) -> FusedPlan {
        let mut segments: Vec<Segment> = Vec::new();
        let mut run: Vec<Stage> = Vec::new();
        let mut seams: u64 = 0;
        let mut barriers: u64 = 0;

        let flush = |segments: &mut Vec<Segment>, run: &mut Vec<Stage>, seams: &mut u64| {
            if run.is_empty() {
                return;
            }
            let k = run.len() as u64;
            let fused = compose(run.drain(..));
            match segments.last_mut() {
                // A run directly after a flat barrier: absorb it into the
                // barrier node — all k stage dispatches disappear.
                Some(seg @ Segment::Flat(_)) => {
                    let Segment::Flat(f) = std::mem::replace(seg, Segment::Apply(fused.clone()))
                    else {
                        unreachable!("matched Flat above")
                    };
                    *seg = Segment::FlatApply(f, fused);
                    *seams += k;
                }
                // A standalone run collapses k nodes into one: k-1 seams.
                _ => {
                    segments.push(Segment::Apply(fused));
                    *seams += k - 1;
                }
            }
        };

        for st in &self.stages {
            match st {
                Stage::Flat(f) => {
                    flush(&mut segments, &mut run, &mut seams);
                    segments.push(Segment::Flat(Arc::clone(f)));
                    barriers += 1;
                }
                monogenic => run.push(monogenic.clone()),
            }
        }
        flush(&mut segments, &mut run, &mut seams);

        obs_on!({
            crate::obs_hot::fused_stages().add(seams);
            crate::obs_hot::fusion_barriers().add(barriers);
        });
        #[cfg(not(feature = "obs"))]
        let _ = (seams, barriers);
        FusedPlan {
            segments: Arc::new(segments),
        }
    }

    /// Build the traditional one-combinator-node-per-stage tree over
    /// `source` — the reference semantics fusion must preserve. Every
    /// produced value pays one virtual `resume` per stage.
    pub fn instantiate_unfused(&self, source: BoxGen) -> BoxGen {
        let mut g = source;
        for st in &self.stages {
            g = match st {
                Stage::Flat(f) => {
                    let f = Arc::clone(f);
                    Box::new(flat(g, move |v| f(v)))
                }
                monogenic => {
                    let f = monogenic.as_fn().expect("non-flat stage is monogenic");
                    Box::new(filter_map(g, move |v| f(v)))
                }
            };
        }
        g
    }

    /// Fuse and instantiate in one step (convenience for one-shot
    /// pipelines; reuse [`StagePlan::fuse`]'s result when the pipeline is
    /// rebuilt per restart, e.g. under a pipe).
    pub fn instantiate(&self, source: BoxGen) -> BoxGen {
        self.fuse().instantiate(source)
    }
}

/// Compose a run of monogenic stages into one closure, left to right.
/// Evaluation order and skip behavior are exactly the unfused tree's:
/// stage i+1 sees stage i's output, a `None` anywhere prunes the value
/// without touching later stages.
fn compose(run: impl IntoIterator<Item = Stage>) -> FusedFn {
    let mut acc: Option<FusedFn> = None;
    for st in run {
        let f = st.as_fn().expect("fuse runs contain only monogenic stages");
        acc = Some(match acc {
            None => f,
            Some(g) => Arc::new(move |v| g(v).and_then(|x| f(&x))),
        });
    }
    acc.expect("compose of a non-empty run")
}

/// One instantiable segment of a fused pipeline.
#[derive(Clone)]
enum Segment {
    /// A fused monogenic run: one [`Apply`] node.
    Apply(FusedFn),
    /// A bare flat barrier (no following run to absorb).
    Flat(Arc<dyn Fn(&Value) -> BoxGen + Send + Sync>),
    /// A flat barrier with the following fused run applied inline to
    /// each inner suspension: one [`FlatFused`] node.
    FlatApply(Arc<dyn Fn(&Value) -> BoxGen + Send + Sync>, FusedFn),
}

/// The output of [`StagePlan::fuse`]: a reusable, thread-shareable
/// instantiation recipe. Cloning is cheap (one `Arc`); a pipe factory
/// can instantiate the same fused plan on every producer (re)spawn.
#[derive(Clone)]
pub struct FusedPlan {
    segments: Arc<Vec<Segment>>,
}

impl FusedPlan {
    /// Build the fused generator tree over `source`.
    pub fn instantiate(&self, source: BoxGen) -> BoxGen {
        let mut g = source;
        for seg in self.segments.iter() {
            g = match seg {
                Segment::Apply(f) => Box::new(Apply {
                    inner: g,
                    f: Arc::clone(f),
                }),
                Segment::Flat(factory) => {
                    let factory = Arc::clone(factory);
                    Box::new(flat(g, move |v| factory(v)))
                }
                Segment::FlatApply(factory, f) => Box::new(FlatFused {
                    left: g,
                    factory: Arc::clone(factory),
                    f: Arc::clone(f),
                    cur: None,
                    live: false,
                }),
            };
        }
        g
    }

    /// The number of instantiated nodes per pipeline (segments), for
    /// tests and diagnostics.
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }
}

/// A fused monogenic run over an inner generator: semantically
/// [`super::FilterMap`], but holding the shareable composed closure.
pub struct Apply {
    inner: BoxGen,
    f: FusedFn,
}

impl Gen for Apply {
    fn resume(&mut self) -> Step {
        loop {
            match self.inner.resume() {
                Step::Suspend(v) => {
                    if let Some(out) = (self.f)(&v) {
                        return Step::Suspend(out);
                    }
                }
                Step::Fail => return Step::Fail,
            }
        }
    }
    fn restart(&mut self) {
        self.inner.restart();
    }
}

/// A flat barrier with an absorbed monogenic run: for each value of
/// `left`, iterate the sub-generator `factory` builds, applying the
/// composed closure inline to each inner suspension. Equivalent to
/// `Apply(f) ∘ Flat(factory)` with one fewer boxed dispatch per emitted
/// value.
pub struct FlatFused {
    left: BoxGen,
    factory: Arc<dyn Fn(&Value) -> BoxGen + Send + Sync>,
    f: FusedFn,
    /// The sub-generator for the current (or, between outer values, the
    /// previous) `left` suspension. An exhausted generator is kept so a
    /// [`Gen::rebind`]-capable one can be recycled for the next outer
    /// value instead of paying a factory call + box per value.
    cur: Option<BoxGen>,
    /// Whether `cur` is bound to a not-yet-exhausted `left` value.
    live: bool,
}

impl Gen for FlatFused {
    fn resume(&mut self) -> Step {
        loop {
            if !self.live {
                match self.left.resume() {
                    Step::Suspend(lv) => {
                        let recycled = match self.cur.as_mut() {
                            Some(g) => g.rebind(&lv),
                            None => false,
                        };
                        if !recycled {
                            self.cur = Some((self.factory)(&lv));
                        }
                        self.live = true;
                    }
                    Step::Fail => return Step::Fail,
                }
            }
            match self.cur.as_mut().expect("live implies cur").resume() {
                Step::Suspend(rv) => {
                    if let Some(out) = (self.f)(&rv) {
                        return Step::Suspend(out);
                    }
                }
                Step::Fail => self.live = false,
            }
        }
    }
    fn restart(&mut self) {
        self.left.restart();
        self.live = false;
    }
}

/// Entry point for transpiled code (`junicon::emit`): wrap `inner` in a
/// single fused node for a run of `stages` monogenic stages the emitter
/// collapsed at emit time. Bumps `gde.comb.fused_stages` by `stages` at
/// construction so emitted-code fusion shows up in the same runtime
/// counters as plan fusion.
pub fn emitted_fused(
    inner: BoxGen,
    stages: u64,
    f: impl Fn(&Value) -> Option<Value> + Send + Sync + 'static,
) -> Apply {
    #[cfg(not(feature = "obs"))]
    let _ = stages;
    obs_on!(crate::obs_hot::fused_stages().add(stages););
    Apply {
        inner,
        f: Arc::new(f),
    }
}

/// Test-only mutation hook for the differential suite: fuse the plan
/// like [`StagePlan::fuse`], but inject the classic off-by-one into the
/// fused closure's *skip path* — after a stage skips a value, the next
/// value bypasses the composed transform entirely (it is passed through
/// raw). `gde/tests/fusion_diff.rs` proves the differential oracle
/// catches this mutant; production code must never call it.
#[doc(hidden)]
pub fn fuse_with_skip_mutation(plan: &StagePlan) -> FusedPlan {
    let honest = plan.fuse();
    let segments: Vec<Segment> = honest
        .segments
        .iter()
        .map(|seg| match seg {
            Segment::Apply(f) => Segment::Apply(mutate_skip(Arc::clone(f))),
            Segment::FlatApply(factory, f) => {
                Segment::FlatApply(Arc::clone(factory), mutate_skip(Arc::clone(f)))
            }
            bare => bare.clone(),
        })
        .collect();
    FusedPlan {
        segments: Arc::new(segments),
    }
}

fn mutate_skip(f: FusedFn) -> FusedFn {
    let skipped = std::sync::atomic::AtomicBool::new(false);
    Arc::new(move |v| {
        if skipped.swap(false, std::sync::atomic::Ordering::Relaxed) {
            // Off-by-one: the value after a skip leaks through unfused.
            return Some(v.clone());
        }
        let out = f(v);
        if out.is_none() {
            skipped.store(true, std::sync::atomic::Ordering::Relaxed);
        }
        out
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comb::{to_range, values};
    use crate::gen::GenExt;

    fn ints(g: &mut dyn Gen) -> Vec<i64> {
        g.collect_values()
            .iter()
            .map(|v| v.as_int().unwrap())
            .collect()
    }

    fn plan_double_even_squares() -> StagePlan {
        StagePlan::new()
            .map(|v| Value::from(v.as_int().unwrap() * 2))
            .filter(|v| v.as_int().unwrap() % 4 == 0)
            .filter_map(|v| Some(Value::from(v.as_int()? * v.as_int()?)))
    }

    #[test]
    fn fused_and_unfused_agree_on_a_monogenic_run() {
        let plan = plan_double_even_squares();
        let mut fused = plan.instantiate(Box::new(to_range(1, 8, 1)));
        let mut unfused = plan.instantiate_unfused(Box::new(to_range(1, 8, 1)));
        assert_eq!(ints(&mut fused), ints(&mut unfused));
        assert_eq!(ints(&mut fused), Vec::<i64>::new()); // both exhausted
        fused.restart();
        unfused.restart();
        assert_eq!(ints(&mut fused), ints(&mut unfused));
    }

    #[test]
    fn monogenic_run_collapses_to_one_segment() {
        let fused = plan_double_even_squares().fuse();
        assert_eq!(fused.segment_count(), 1);
    }

    #[test]
    fn flat_is_a_barrier_and_absorbs_the_following_run() {
        // map | flat | filter | map  →  Apply, FlatApply: 2 segments.
        let plan = StagePlan::new()
            .map(|v| v.clone())
            .flat(|v| {
                let n = v.as_int().unwrap_or(0);
                Box::new(to_range(0, n, 1))
            })
            .filter(|v| v.as_int().unwrap() % 2 == 0)
            .map(|v| Value::from(v.as_int().unwrap() + 100));
        let fused = plan.fuse();
        assert_eq!(fused.segment_count(), 2);
        let mut f = fused.instantiate(Box::new(to_range(1, 3, 1)));
        let mut u = plan.instantiate_unfused(Box::new(to_range(1, 3, 1)));
        assert_eq!(ints(&mut f), ints(&mut u));
        assert_eq!(ints(&mut u), Vec::<i64>::new());
    }

    #[test]
    fn empty_plan_is_the_identity() {
        let plan = StagePlan::new();
        let mut g = plan.instantiate(Box::new(to_range(1, 3, 1)));
        assert_eq!(ints(&mut g), vec![1, 2, 3]);
        assert_eq!(plan.fuse().segment_count(), 0);
    }

    #[test]
    fn skip_then_emit_interleaving_is_preserved() {
        // A filter that rejects odd values between accepted ones: the
        // fused closure must keep skipping inside one resume.
        let plan = StagePlan::new().filter(|v| v.as_int().unwrap() % 2 == 0);
        let src = || Box::new(values((1..=7).map(Value::from).collect())) as BoxGen;
        let mut f = plan.instantiate(src());
        let mut u = plan.instantiate_unfused(src());
        assert_eq!(ints(&mut f), vec![2, 4, 6]);
        assert_eq!(ints(&mut u), vec![2, 4, 6]);
    }

    #[test]
    fn emitted_fused_behaves_like_filter_map() {
        let mut g = emitted_fused(Box::new(to_range(1, 6, 1)), 2, |v| {
            let n = v.as_int()?;
            (n % 2 == 0).then(|| Value::from(n * 10))
        });
        assert_eq!(ints(&mut g), vec![20, 40, 60]);
        g.restart();
        assert_eq!(ints(&mut g), vec![20, 40, 60]);
    }

    #[test]
    fn skip_mutant_diverges_from_unfused() {
        // Sanity for the mutation hook itself: the mutant leaks the value
        // after each skip *bypassing the composed transform*, so any
        // pipeline where a skip precedes a transformed value diverges.
        // (A pure filter can't see it — leaked values are unchanged —
        // which is exactly why the differential suite pairs skips with
        // maps in its mutation check.)
        let plan = StagePlan::new()
            .filter(|v| v.as_int().unwrap() % 2 == 0)
            .map(|v| Value::from(v.as_int().unwrap() * 10));
        let src = || Box::new(to_range(1, 6, 1)) as BoxGen;
        let honest = plan.instantiate(src());
        let mutant = fuse_with_skip_mutation(&plan).instantiate(src());
        let (mut honest, mut mutant) = (honest, mutant);
        assert_ne!(ints(&mut honest), ints(&mut mutant));
    }
}
