//! Lexical environments of reified variables.
//!
//! The interpreter and the co-expression machinery share this scope chain.
//! Its key operation is [`Env::shadow`], the environment copy a
//! co-expression takes at creation time: "co-expressions ... preclude
//! interference by copying local variable references upon creation"
//! (Sec. II.B). Shadowing copies the *local* frame's cells (each shadowed
//! variable gets a fresh cell with the current value) while continuing to
//! share outer frames, matching the paper's textual "scoping up for
//! referenced locals".

use crate::value::Value;
use crate::var::Var;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

struct Frame {
    vars: Mutex<HashMap<String, Var>>,
    parent: Option<Env>,
}

/// A scope: a frame of named [`Var`]s with an optional parent.
#[derive(Clone)]
pub struct Env {
    frame: Arc<Frame>,
}

impl Default for Env {
    fn default() -> Self {
        Self::root()
    }
}

impl Env {
    /// A fresh root scope.
    pub fn root() -> Env {
        Env {
            frame: Arc::new(Frame {
                vars: Mutex::new(HashMap::new()),
                parent: None,
            }),
        }
    }

    /// A child scope whose lookups fall through to `self`.
    pub fn child(&self) -> Env {
        Env {
            frame: Arc::new(Frame {
                vars: Mutex::new(HashMap::new()),
                parent: Some(self.clone()),
            }),
        }
    }

    /// Declare (or re-declare) a local in this frame, returning its cell.
    pub fn declare(&self, name: &str, v: Value) -> Var {
        let var = Var::new(v);
        self.frame.vars.lock().insert(name.to_string(), var.clone());
        var
    }

    /// Find a variable's cell in this frame only (no parent search).
    pub fn lookup_local(&self, name: &str) -> Option<Var> {
        self.frame.vars.lock().get(name).cloned()
    }

    /// Find a variable's cell, searching up the scope chain.
    pub fn lookup(&self, name: &str) -> Option<Var> {
        if let Some(v) = self.frame.vars.lock().get(name) {
            return Some(v.clone());
        }
        self.frame.parent.as_ref().and_then(|p| p.lookup(name))
    }

    /// Find or create: undeclared names spring into existence as null
    /// locals in the current frame (Icon's implicit locals).
    pub fn lookup_or_declare(&self, name: &str) -> Var {
        self.lookup(name)
            .unwrap_or_else(|| self.declare(name, Value::Null))
    }

    /// Read a variable's value (null if undeclared).
    pub fn get(&self, name: &str) -> Value {
        self.lookup(name).map(|v| v.get()).unwrap_or(Value::Null)
    }

    /// Assign, declaring in the current frame if absent.
    pub fn set(&self, name: &str, v: Value) {
        self.lookup_or_declare(name).set(v);
    }

    /// The co-expression copy: a new frame containing *fresh cells* holding
    /// clones of this frame's current values, sharing the parent chain.
    pub fn shadow(&self) -> Env {
        let copied: HashMap<String, Var> = self
            .frame
            .vars
            .lock()
            .iter()
            .map(|(k, v)| (k.clone(), v.fresh_copy()))
            .collect();
        Env {
            frame: Arc::new(Frame {
                vars: Mutex::new(copied),
                parent: self.frame.parent.clone(),
            }),
        }
    }

    /// Names declared in this frame (not the parents), sorted.
    pub fn local_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.frame.vars.lock().keys().cloned().collect();
        names.sort();
        names
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn declare_get_set() {
        let env = Env::root();
        env.declare("x", Value::from(1));
        assert_eq!(env.get("x").as_int(), Some(1));
        env.set("x", Value::from(2));
        assert_eq!(env.get("x").as_int(), Some(2));
        assert!(env.get("missing").is_null());
    }

    #[test]
    fn child_sees_parent_and_can_shadow_locally() {
        let root = Env::root();
        root.declare("x", Value::from(1));
        let child = root.child();
        assert_eq!(child.get("x").as_int(), Some(1));
        // Assignment through the chain writes the parent's cell.
        child.set("x", Value::from(5));
        assert_eq!(root.get("x").as_int(), Some(5));
        // Declaring locally hides the parent.
        child.declare("x", Value::from(99));
        assert_eq!(child.get("x").as_int(), Some(99));
        assert_eq!(root.get("x").as_int(), Some(5));
    }

    #[test]
    fn implicit_declaration_in_current_frame() {
        let root = Env::root();
        let child = root.child();
        child.set("fresh", Value::from(3));
        assert_eq!(child.get("fresh").as_int(), Some(3));
        assert!(root.lookup("fresh").is_none());
    }

    #[test]
    fn shadow_copies_local_frame_only() {
        let root = Env::root();
        root.declare("outer", Value::from(10));
        let scope = root.child();
        scope.declare("local", Value::from(1));

        let shadowed = scope.shadow();
        // Writing the shadowed local does not affect the original...
        shadowed.set("local", Value::from(42));
        assert_eq!(scope.get("local").as_int(), Some(1));
        // ...but the outer (parent) variable is still shared.
        shadowed.set("outer", Value::from(20));
        assert_eq!(root.get("outer").as_int(), Some(20));
    }

    #[test]
    fn shadow_snapshots_current_values() {
        let scope = Env::root();
        scope.declare("n", Value::from(7));
        let shadowed = scope.shadow();
        scope.set("n", Value::from(8));
        assert_eq!(shadowed.get("n").as_int(), Some(7));
    }

    #[test]
    fn local_names_sorted() {
        let env = Env::root();
        env.declare("b", Value::Null);
        env.declare("a", Value::Null);
        assert_eq!(env.local_names(), vec!["a".to_string(), "b".to_string()]);
    }
}
