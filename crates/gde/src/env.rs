//! Lexical environments of reified variables.
//!
//! The interpreter and the co-expression machinery share this scope chain.
//! Its key operation is [`Env::shadow`], the environment copy a
//! co-expression takes at creation time: "co-expressions ... preclude
//! interference by copying local variable references upon creation"
//! (Sec. II.B). Shadowing copies the *local* frame's cells (each shadowed
//! variable gets a fresh cell with the current value) while continuing to
//! share outer frames, matching the paper's textual "scoping up for
//! referenced locals".
//!
//! # Slot-resolved frames
//!
//! A frame stores its variables in two tiers:
//!
//! * **Slots** — a fixed `Box<[Var]>` array laid out by a shared
//!   [`FrameLayout`]. The resolve pass (junicon's `resolve` module)
//!   assigns every statically-declared variable a `(depth, slot)`
//!   coordinate; [`Env::slot`] then reaches the cell in two pointer hops
//!   with no hashing and no lock (the `Var` itself carries the interior
//!   mutability). This is the fast path every resolved variable reference
//!   takes.
//! * **Overlay** — a mutexed `HashMap` for names that spring into
//!   existence dynamically (Icon's implicit locals via by-name `declare`/
//!   `set`, string invocation, the REPL/global frame). By-name lookup
//!   checks the overlay first, then the layout's slots, then the parent —
//!   so a dynamic re-declaration correctly shadows a slot, and unresolved
//!   code keeps the exact pre-slot semantics.
//!
//! With the `obs` feature on, `gde.env.slot_hits` counts fast-path slot
//! accesses and `gde.env.name_fallbacks` counts by-name lookups, so a
//! benchmark snapshot shows when code is falling off the fast path.

use crate::sym::Symbol;
use crate::value::Value;
use crate::var::Var;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

/// The static shape of a frame: slot-index → name, plus a name → *latest*
/// slot index map for the by-name fallback path.
///
/// A layout is built once (by the resolve pass, per procedure / class
/// body) and shared by every activation frame via `Arc`. The same name
/// may own several slots — each re-declaration gets a fresh slot, exactly
/// as a re-`declare` used to create a fresh cell — and the index maps the
/// name to the last one, which is the cell by-name code must see.
pub struct FrameLayout {
    names: Box<[Symbol]>,
    index: HashMap<Arc<str>, usize>,
}

impl FrameLayout {
    /// Build a layout from slot names in slot order. Duplicate names are
    /// allowed; the by-name index keeps the *last* occurrence.
    pub fn of(names: impl IntoIterator<Item = Symbol>) -> Arc<FrameLayout> {
        let names: Box<[Symbol]> = names.into_iter().collect();
        let mut index = HashMap::with_capacity(names.len());
        for (i, sym) in names.iter().enumerate() {
            index.insert(sym.arc(), i); // later slots overwrite: latest wins
        }
        Arc::new(FrameLayout { names, index })
    }

    /// The canonical empty layout (shared by all layout-less frames).
    pub fn empty() -> Arc<FrameLayout> {
        static EMPTY: OnceLock<Arc<FrameLayout>> = OnceLock::new();
        EMPTY.get_or_init(|| FrameLayout::of([])).clone()
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True iff the layout has no slots.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// The latest slot index owned by `name`, if any.
    pub fn slot_of(&self, name: &str) -> Option<usize> {
        self.index.get(name).copied()
    }

    /// The name occupying slot `idx`.
    pub fn name(&self, idx: usize) -> &Symbol {
        &self.names[idx]
    }
}

struct Frame {
    /// Slot cells, allocated null at frame birth, addressed by `layout`.
    slots: Box<[Var]>,
    layout: Arc<FrameLayout>,
    /// Dynamically-declared names; checked *before* the slots so a
    /// by-name re-declaration shadows a slot.
    overlay: Mutex<HashMap<String, Var>>,
    parent: Option<Env>,
}

impl Frame {
    fn with(layout: Arc<FrameLayout>, parent: Option<Env>) -> Frame {
        Frame {
            slots: (0..layout.len()).map(|_| Var::null()).collect(),
            layout,
            overlay: Mutex::new(HashMap::new()),
            parent,
        }
    }
}

/// A scope: a frame of named [`Var`]s with an optional parent.
#[derive(Clone)]
pub struct Env {
    frame: Arc<Frame>,
}

impl Default for Env {
    fn default() -> Self {
        Self::root()
    }
}

impl Env {
    /// A fresh root scope.
    pub fn root() -> Env {
        Env {
            frame: Arc::new(Frame::with(FrameLayout::empty(), None)),
        }
    }

    /// A child scope whose lookups fall through to `self`.
    pub fn child(&self) -> Env {
        Env {
            frame: Arc::new(Frame::with(FrameLayout::empty(), Some(self.clone()))),
        }
    }

    /// A child scope with pre-allocated slot cells shaped by `layout` —
    /// the activation frame of a resolved procedure. Every slot starts
    /// null (the resolved program initializes parameters and `local`
    /// initializers itself).
    pub fn child_with_layout(&self, layout: Arc<FrameLayout>) -> Env {
        Env {
            frame: Arc::new(Frame::with(layout, Some(self.clone()))),
        }
    }

    /// The fast path: the cell at `(depth, idx)` — walk `depth` parents,
    /// index the slot array. No hashing, no frame lock. Panics if the
    /// coordinate is outside the frame's layout (that is a resolver bug,
    /// never a program error).
    pub fn slot(&self, depth: usize, idx: usize) -> Var {
        let mut frame = &self.frame;
        for _ in 0..depth {
            frame = &frame
                .parent
                .as_ref()
                .expect("gde::Env::slot: depth exceeds scope chain")
                .frame;
        }
        obs_on!(crate::obs_hot::slot_hits().inc());
        frame.slots[idx].clone()
    }

    /// The cell at slot `idx` of *this* frame (depth 0).
    pub fn slot_local(&self, idx: usize) -> Var {
        obs_on!(crate::obs_hot::slot_hits().inc());
        self.frame.slots[idx].clone()
    }

    /// This frame's layout (shared with all sibling activations).
    pub fn layout(&self) -> &Arc<FrameLayout> {
        &self.frame.layout
    }

    /// Declare (or re-declare) a local in this frame, returning its cell.
    /// Dynamic declarations always create a *fresh* cell in the overlay;
    /// because the overlay is consulted before the slots, this correctly
    /// shadows any slot the name may also own.
    pub fn declare(&self, name: &str, v: Value) -> Var {
        let var = Var::new(v);
        self.frame
            .overlay
            .lock()
            .insert(name.to_string(), var.clone());
        var
    }

    /// Find a variable's cell in this frame only (no parent search):
    /// overlay first, then the layout's slots.
    pub fn lookup_local(&self, name: &str) -> Option<Var> {
        if let Some(v) = self.frame.overlay.lock().get(name) {
            return Some(v.clone());
        }
        self.frame
            .layout
            .slot_of(name)
            .map(|i| self.frame.slots[i].clone())
    }

    /// Find a variable's cell, searching up the scope chain. This is the
    /// by-name slow path; resolved references use [`Env::slot`] instead.
    pub fn lookup(&self, name: &str) -> Option<Var> {
        obs_on!(crate::obs_hot::name_fallbacks().inc());
        let mut env = self;
        loop {
            if let Some(v) = env.lookup_local(name) {
                return Some(v);
            }
            env = env.frame.parent.as_ref()?;
        }
    }

    /// Find or create: undeclared names spring into existence as null
    /// locals in the current frame (Icon's implicit locals).
    pub fn lookup_or_declare(&self, name: &str) -> Var {
        self.lookup(name)
            .unwrap_or_else(|| self.declare(name, Value::Null))
    }

    /// Read a variable's value (null if undeclared).
    pub fn get(&self, name: &str) -> Value {
        self.lookup(name).map(|v| v.get()).unwrap_or(Value::Null)
    }

    /// Assign, declaring in the current frame if absent.
    pub fn set(&self, name: &str, v: Value) {
        self.lookup_or_declare(name).set(v);
    }

    /// The co-expression copy: a new frame containing *fresh cells* holding
    /// clones of this frame's current values, sharing the parent chain.
    /// Slot cells keep their coordinates (the layout is shared), so
    /// resolved code that runs against the shadow sees the copied cells at
    /// the same `(depth, slot)` addresses.
    ///
    /// The overlay entries are snapshotted (cheap `Var` handle clones)
    /// *before* any cell is copied, so the frame lock is never held while
    /// a cell lock is taken — a writer assigning through an alias of one
    /// of these cells can never deadlock or stall a concurrent shadow.
    pub fn shadow(&self) -> Env {
        let entries: Vec<(String, Var)> = {
            let overlay = self.frame.overlay.lock();
            overlay
                .iter()
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect()
        };
        // Frame lock released; now copy values cell by cell.
        let copied: HashMap<String, Var> = entries
            .into_iter()
            .map(|(k, v)| (k, v.fresh_copy()))
            .collect();
        let slots: Box<[Var]> = self.frame.slots.iter().map(Var::fresh_copy).collect();
        Env {
            frame: Arc::new(Frame {
                slots,
                layout: self.frame.layout.clone(),
                overlay: Mutex::new(copied),
                parent: self.frame.parent.clone(),
            }),
        }
    }

    /// Names declared in this frame (not the parents), sorted: overlay
    /// names plus the layout's slot names, deduplicated.
    pub fn local_names(&self) -> Vec<String> {
        let mut names: std::collections::BTreeSet<String> =
            self.frame.overlay.lock().keys().cloned().collect();
        for i in 0..self.frame.layout.len() {
            names.insert(self.frame.layout.name(i).as_str().to_string());
        }
        names.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn declare_get_set() {
        let env = Env::root();
        env.declare("x", Value::from(1));
        assert_eq!(env.get("x").as_int(), Some(1));
        env.set("x", Value::from(2));
        assert_eq!(env.get("x").as_int(), Some(2));
        assert!(env.get("missing").is_null());
    }

    #[test]
    fn child_sees_parent_and_can_shadow_locally() {
        let root = Env::root();
        root.declare("x", Value::from(1));
        let child = root.child();
        assert_eq!(child.get("x").as_int(), Some(1));
        // Assignment through the chain writes the parent's cell.
        child.set("x", Value::from(5));
        assert_eq!(root.get("x").as_int(), Some(5));
        // Declaring locally hides the parent.
        child.declare("x", Value::from(99));
        assert_eq!(child.get("x").as_int(), Some(99));
        assert_eq!(root.get("x").as_int(), Some(5));
    }

    #[test]
    fn implicit_declaration_in_current_frame() {
        let root = Env::root();
        let child = root.child();
        child.set("fresh", Value::from(3));
        assert_eq!(child.get("fresh").as_int(), Some(3));
        assert!(root.lookup("fresh").is_none());
    }

    #[test]
    fn shadow_copies_local_frame_only() {
        let root = Env::root();
        root.declare("outer", Value::from(10));
        let scope = root.child();
        scope.declare("local", Value::from(1));

        let shadowed = scope.shadow();
        // Writing the shadowed local does not affect the original...
        shadowed.set("local", Value::from(42));
        assert_eq!(scope.get("local").as_int(), Some(1));
        // ...but the outer (parent) variable is still shared.
        shadowed.set("outer", Value::from(20));
        assert_eq!(root.get("outer").as_int(), Some(20));
    }

    #[test]
    fn shadow_snapshots_current_values() {
        let scope = Env::root();
        scope.declare("n", Value::from(7));
        let shadowed = scope.shadow();
        scope.set("n", Value::from(8));
        assert_eq!(shadowed.get("n").as_int(), Some(7));
    }

    #[test]
    fn local_names_sorted() {
        let env = Env::root();
        env.declare("b", Value::Null);
        env.declare("a", Value::Null);
        assert_eq!(env.local_names(), vec!["a".to_string(), "b".to_string()]);
    }

    // ---- slot-frame semantics -------------------------------------------

    fn layout(names: &[&str]) -> Arc<FrameLayout> {
        FrameLayout::of(names.iter().map(|n| Symbol::new(n)))
    }

    #[test]
    fn slots_start_null_and_are_addressable() {
        let root = Env::root();
        let env = root.child_with_layout(layout(&["a", "b"]));
        assert!(env.slot(0, 0).get().is_null());
        env.slot_local(1).set(Value::from(9));
        assert_eq!(env.slot(0, 1).get().as_int(), Some(9));
    }

    #[test]
    fn slot_depth_walks_the_chain() {
        let root = Env::root();
        let outer = root.child_with_layout(layout(&["x"]));
        outer.slot_local(0).set(Value::from(1));
        let inner = outer.child_with_layout(layout(&["y"]));
        assert_eq!(inner.slot(1, 0).get().as_int(), Some(1));
        inner.slot(1, 0).set(Value::from(2));
        assert_eq!(outer.slot_local(0).get().as_int(), Some(2));
    }

    #[test]
    fn by_name_lookup_sees_slots() {
        let root = Env::root();
        let env = root.child_with_layout(layout(&["x"]));
        env.slot_local(0).set(Value::from(5));
        // The by-name fallback resolves to the same cell.
        assert_eq!(env.get("x").as_int(), Some(5));
        assert!(env.lookup("x").unwrap().same_cell(&env.slot_local(0)));
        assert!(env.lookup_local("x").unwrap().same_cell(&env.slot_local(0)));
    }

    #[test]
    fn overlay_declare_shadows_slot() {
        let root = Env::root();
        let env = root.child_with_layout(layout(&["x"]));
        env.slot_local(0).set(Value::from(1));
        // A dynamic re-declaration must hide the slot for by-name code...
        env.declare("x", Value::from(2));
        assert_eq!(env.get("x").as_int(), Some(2));
        // ...while slot-addressed references keep their own cell.
        assert_eq!(env.slot_local(0).get().as_int(), Some(1));
    }

    #[test]
    fn duplicate_slot_names_index_latest() {
        // Two slots for "x" (a re-declaration): by-name sees the latest.
        let root = Env::root();
        let env = root.child_with_layout(layout(&["x", "x"]));
        env.slot_local(0).set(Value::from(1));
        env.slot_local(1).set(Value::from(2));
        assert_eq!(env.get("x").as_int(), Some(2));
        assert_eq!(env.layout().slot_of("x"), Some(1));
    }

    #[test]
    fn shadow_copies_slots_with_same_coordinates() {
        let root = Env::root();
        root.declare("outer", Value::from(10));
        let env = root.child_with_layout(layout(&["n"]));
        env.slot_local(0).set(Value::from(7));

        let shadowed = env.shadow();
        // Same coordinate, fresh cell, snapshotted value.
        assert_eq!(shadowed.slot_local(0).get().as_int(), Some(7));
        assert!(!shadowed.slot_local(0).same_cell(&env.slot_local(0)));
        shadowed.slot_local(0).set(Value::from(42));
        assert_eq!(env.slot_local(0).get().as_int(), Some(7));
        // Parent chain still shared.
        shadowed.set("outer", Value::from(20));
        assert_eq!(root.get("outer").as_int(), Some(20));
    }

    #[test]
    fn local_names_merges_overlay_and_slots() {
        let root = Env::root();
        let env = root.child_with_layout(layout(&["b", "a"]));
        env.declare("c", Value::Null);
        env.declare("a", Value::Null); // overlay shadowing a slot: one name
        assert_eq!(
            env.local_names(),
            vec!["a".to_string(), "b".to_string(), "c".to_string()]
        );
    }

    #[test]
    fn shadow_races_with_writers() {
        // Regression test for the old shadow() holding the frame lock
        // while locking every cell: hammer shadow() from one set of
        // threads while writers mutate the same frame's cells and declare
        // new names. Must neither deadlock nor tear a snapshot (each
        // shadowed cell holds *some* value the writer actually wrote).
        use std::sync::atomic::{AtomicBool, Ordering};
        let stop = Arc::new(AtomicBool::new(false));
        let env = Env::root().child_with_layout(layout(&["n"]));
        env.slot_local(0).set(Value::from(0));
        for i in 0..8 {
            env.declare(&format!("d{i}"), Value::from(0));
        }

        let mut handles = Vec::new();
        for w in 0..4 {
            let env = env.clone();
            let stop = stop.clone();
            handles.push(std::thread::spawn(move || {
                let mut i: i64 = 0;
                while !stop.load(Ordering::Relaxed) {
                    env.slot_local(0).set(Value::from(i));
                    env.set(&format!("d{}", i.rem_euclid(8)), Value::from(i));
                    env.declare(&format!("w{w}-{}", i % 16), Value::from(i));
                    i += 1;
                }
            }));
        }
        for _ in 0..4 {
            let env = env.clone();
            let stop = stop.clone();
            handles.push(std::thread::spawn(move || {
                let mut count = 0;
                while !stop.load(Ordering::Relaxed) {
                    let s = env.shadow();
                    // Snapshot is self-consistent: every value readable.
                    assert!(s.slot_local(0).get().as_int().is_some());
                    for name in s.local_names() {
                        let _ = s.get(&name);
                    }
                    count += 1;
                    if count > 500 {
                        break;
                    }
                }
            }));
        }
        std::thread::sleep(std::time::Duration::from_millis(100));
        stop.store(true, Ordering::Relaxed);
        for h in handles {
            h.join().unwrap();
        }
    }
}
