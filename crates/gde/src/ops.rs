//! Goal-directed operators over [`Value`]s.
//!
//! Operations return `Option<Value>`: `None` means the operation *fails* in
//! the goal-directed sense (which, composed through the product combinator,
//! prunes that branch of the search). Two Icon-isms matter here:
//!
//! * **Coercion** — strings are converted to numbers where a number is
//!   required (`"5" + 1` is `6`), and machine integers promote to arbitrary
//!   precision on overflow ("arbitrary precision arithmetic ... is implicit
//!   in Unicon", Sec. VII).
//! * **Comparisons produce their right operand** — `4 < 5` *succeeds
//!   producing 5*, `5 < 4` fails. This is what lets comparisons chain and
//!   filter inside generator products, e.g. `1 <= x <= 10`.

use crate::value::Value;
use bigint::BigInt;
use std::cmp::Ordering;
use std::sync::Arc;

/// A numeric view of a value after coercion.
#[derive(Clone, Debug)]
pub enum Num {
    Int(i64),
    Big(BigInt),
    Real(f64),
}

/// Coerce a value to a number: integers and reals pass through, strings are
/// parsed (integer first, then big integer, then real). Fails (`None`) for
/// non-numeric values.
pub fn to_num(v: &Value) -> Option<Num> {
    match v.deref() {
        Value::Int(i) => Some(Num::Int(i)),
        Value::Big(b) => Some(Num::Big((*b).clone())),
        Value::Real(r) => Some(Num::Real(r)),
        s @ (Value::Str(_) | Value::Sym(_) | Value::Slice(_)) => {
            let s = s.as_str().expect("string form").trim();
            if let Ok(i) = s.parse::<i64>() {
                Some(Num::Int(i))
            } else if let Ok(b) = BigInt::from_str_radix(s, 10) {
                Some(Num::Big(b))
            } else if let Ok(r) = s.parse::<f64>() {
                Some(Num::Real(r))
            } else {
                None
            }
        }
        _ => None,
    }
}

fn to_big(n: &Num) -> BigInt {
    match n {
        Num::Int(i) => BigInt::from(*i),
        Num::Big(b) => b.clone(),
        Num::Real(r) => BigInt::from(*r as i64),
    }
}

fn to_real(n: &Num) -> f64 {
    match n {
        Num::Int(i) => *i as f64,
        Num::Big(b) => b.to_f64(),
        Num::Real(r) => *r,
    }
}

fn is_real(n: &Num) -> bool {
    matches!(n, Num::Real(_))
}

macro_rules! arith {
    ($name:ident, $checked:ident, $bigop:tt, $realop:tt) => {
        /// Arithmetic with big-integer promotion and string coercion;
        /// fails on non-numeric operands.
        pub fn $name(a: &Value, b: &Value) -> Option<Value> {
            let (x, y) = (to_num(a)?, to_num(b)?);
            if is_real(&x) || is_real(&y) {
                return Some(Value::Real(to_real(&x) $realop to_real(&y)));
            }
            if let (Num::Int(i), Num::Int(j)) = (&x, &y) {
                if let Some(r) = i.$checked(*j) {
                    return Some(Value::Int(r));
                }
            }
            Some(Value::big(&to_big(&x) $bigop &to_big(&y)))
        }
    };
}

arith!(add, checked_add, +, +);
arith!(sub, checked_sub, -, -);
arith!(mul, checked_mul, *, *);

/// Division. Integer operands use truncated integer division (failing on
/// division by zero); any real operand gives real division.
pub fn div(a: &Value, b: &Value) -> Option<Value> {
    let (x, y) = (to_num(a)?, to_num(b)?);
    if is_real(&x) || is_real(&y) {
        let d = to_real(&y);
        if d == 0.0 {
            return None;
        }
        return Some(Value::Real(to_real(&x) / d));
    }
    if let (Num::Int(i), Num::Int(j)) = (&x, &y) {
        if *j == 0 {
            return None;
        }
        if let Some(r) = i.checked_div(*j) {
            return Some(Value::Int(r));
        }
    }
    let d = to_big(&y);
    if d.is_zero() {
        return None;
    }
    Some(Value::big(&to_big(&x) / &d))
}

/// Remainder (`%`), truncated like Rust's; fails on zero divisor.
pub fn rem(a: &Value, b: &Value) -> Option<Value> {
    let (x, y) = (to_num(a)?, to_num(b)?);
    if is_real(&x) || is_real(&y) {
        let d = to_real(&y);
        if d == 0.0 {
            return None;
        }
        return Some(Value::Real(to_real(&x) % d));
    }
    if let (Num::Int(i), Num::Int(j)) = (&x, &y) {
        if *j == 0 {
            return None;
        }
        if let Some(r) = i.checked_rem(*j) {
            return Some(Value::Int(r));
        }
    }
    let d = to_big(&y);
    if d.is_zero() {
        return None;
    }
    Some(Value::big(&to_big(&x) % &d))
}

/// Exponentiation (`^`); negative integer exponents give reals.
pub fn pow(a: &Value, b: &Value) -> Option<Value> {
    let (x, y) = (to_num(a)?, to_num(b)?);
    match (&x, &y) {
        (_, Num::Int(e)) if *e >= 0 && !is_real(&x) => {
            Some(Value::big(big_pow(&to_big(&x), *e as u64)))
        }
        _ => Some(Value::Real(to_real(&x).powf(to_real(&y)))),
    }
}

fn big_pow(base: &BigInt, exp: u64) -> BigInt {
    let mut acc = BigInt::one();
    let mut b = base.clone();
    let mut e = exp;
    while e > 0 {
        if e & 1 == 1 {
            acc = &acc * &b;
        }
        e >>= 1;
        if e > 0 {
            b = &b * &b;
        }
    }
    acc
}

/// Numeric negation.
pub fn neg(a: &Value) -> Option<Value> {
    match to_num(a)? {
        Num::Int(i) => i
            .checked_neg()
            .map(Value::Int)
            .or_else(|| Some(Value::big(-BigInt::from(i)))),
        Num::Big(b) => Some(Value::big(-b)),
        Num::Real(r) => Some(Value::Real(-r)),
    }
}

/// Numeric three-way comparison with coercion.
pub fn num_cmp(a: &Value, b: &Value) -> Option<Ordering> {
    let (x, y) = (to_num(a)?, to_num(b)?);
    if is_real(&x) || is_real(&y) {
        to_real(&x).partial_cmp(&to_real(&y))
    } else {
        Some(to_big(&x).cmp(&to_big(&y)))
    }
}

macro_rules! cmp_op {
    ($name:ident, $($ord:pat_param)|+) => {
        /// Goal-directed numeric comparison: succeeds *producing the right
        /// operand* or fails.
        pub fn $name(a: &Value, b: &Value) -> Option<Value> {
            match num_cmp(a, b)? {
                $($ord)|+ => Some(b.deref()),
                _ => None,
            }
        }
    };
}

cmp_op!(lt, Ordering::Less);
cmp_op!(le, Ordering::Less | Ordering::Equal);
cmp_op!(gt, Ordering::Greater);
cmp_op!(ge, Ordering::Greater | Ordering::Equal);
cmp_op!(num_eq, Ordering::Equal);

/// Goal-directed numeric inequality (`~=`).
pub fn num_ne(a: &Value, b: &Value) -> Option<Value> {
    match num_cmp(a, b)? {
        Ordering::Equal => None,
        _ => Some(b.deref()),
    }
}

/// Coerce to a string (Icon's implicit string conversion).
pub fn to_str(v: &Value) -> Option<Arc<str>> {
    match v.deref() {
        Value::Str(s) => Some(s),
        // Interned handles already own a canonical shared allocation.
        Value::Sym(s) => Some(s.arc()),
        Value::Slice(s) => Some(Arc::from(s.as_str())),
        Value::Int(i) => Some(Arc::from(i.to_string().as_str())),
        Value::Big(b) => Some(Arc::from(b.to_string().as_str())),
        Value::Real(r) => Some(Arc::from(format_real(r).as_str())),
        _ => None,
    }
}

fn format_real(r: f64) -> String {
    if r == r.trunc() && r.is_finite() && r.abs() < 1e15 {
        format!("{r:.1}")
    } else {
        format!("{r}")
    }
}

/// String concatenation (`||`) with coercion.
pub fn concat(a: &Value, b: &Value) -> Option<Value> {
    let (x, y) = (to_str(a)?, to_str(b)?);
    let mut s = String::with_capacity(x.len() + y.len());
    s.push_str(&x);
    s.push_str(&y);
    Some(Value::from(s))
}

macro_rules! str_cmp_op {
    ($name:ident, $($ord:pat_param)|+) => {
        /// Goal-directed lexical comparison: succeeds producing the right
        /// operand or fails.
        pub fn $name(a: &Value, b: &Value) -> Option<Value> {
            let (x, y) = (to_str(a)?, to_str(b)?);
            match x.as_ref().cmp(y.as_ref()) {
                $($ord)|+ => Some(b.deref()),
                _ => None,
            }
        }
    };
}

str_cmp_op!(str_lt, Ordering::Less);
str_cmp_op!(str_le, Ordering::Less | Ordering::Equal);
str_cmp_op!(str_gt, Ordering::Greater);
str_cmp_op!(str_ge, Ordering::Greater | Ordering::Equal);
str_cmp_op!(str_eq, Ordering::Equal);

/// Goal-directed lexical inequality.
pub fn str_ne(a: &Value, b: &Value) -> Option<Value> {
    let (x, y) = (to_str(a)?, to_str(b)?);
    if x == y {
        None
    } else {
        Some(b.deref())
    }
}

/// Value equivalence `===`: succeeds producing the right operand.
pub fn equiv(a: &Value, b: &Value) -> Option<Value> {
    if a.equiv(b) {
        Some(b.deref())
    } else {
        None
    }
}

/// Subscript `x[i]` with Icon's 1-based, negative-from-end indexing for
/// strings and lists, and key lookup (with default) for tables.
pub fn index(x: &Value, i: &Value) -> Option<Value> {
    match x.deref() {
        s @ (Value::Str(_) | Value::Sym(_) | Value::Slice(_)) => {
            let chars: Vec<char> = s.as_str().expect("string form").chars().collect();
            let idx = icon_index(i, chars.len())?;
            Some(Value::from(chars[idx].to_string()))
        }
        Value::List(l) => {
            let l = l.lock();
            let idx = icon_index(i, l.len())?;
            Some(l[idx].clone())
        }
        Value::Table(t) => {
            let key = i.as_key()?;
            let t = t.lock();
            Some(
                t.entries
                    .get(&key)
                    .cloned()
                    .unwrap_or_else(|| t.default.clone()),
            )
        }
        _ => None,
    }
}

/// Assign `x[i] := v` for lists and tables; fails on other types or
/// out-of-range indices.
pub fn index_assign(x: &Value, i: &Value, v: Value) -> Option<Value> {
    match x.deref() {
        Value::List(l) => {
            let mut l = l.lock();
            let len = l.len();
            let idx = icon_index(i, len)?;
            l[idx] = v.clone();
            Some(v)
        }
        Value::Table(t) => {
            let key = i.as_key()?;
            t.lock().entries.insert(key, v.clone());
            Some(v)
        }
        _ => None,
    }
}

/// Convert an Icon subscript (1-based; 0 or negative count from the end in
/// Unicon style) to a 0-based offset, failing when out of range.
fn icon_index(i: &Value, len: usize) -> Option<usize> {
    let raw = match to_num(i)? {
        Num::Int(v) => v,
        Num::Big(b) => b.to_i64()?,
        Num::Real(r) => r as i64,
    };
    let idx = if raw > 0 {
        raw - 1
    } else {
        len as i64 + raw - 1
    };
    if idx >= 0 && (idx as usize) < len {
        Some(idx as usize)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn i(v: i64) -> Value {
        Value::from(v)
    }
    fn s(v: &str) -> Value {
        Value::str(v)
    }

    #[test]
    fn add_with_coercion() {
        assert_eq!(add(&i(2), &i(3)), Some(i(5)));
        assert_eq!(add(&s("5"), &i(1)), Some(i(6)));
        assert_eq!(add(&i(1), &Value::from(0.5)), Some(Value::from(1.5)));
        assert_eq!(add(&s("x"), &i(1)), None);
    }

    #[test]
    fn overflow_promotes_to_big() {
        let big = add(&i(i64::MAX), &i(1)).unwrap();
        assert!(matches!(big, Value::Big(_)));
        assert_eq!(big.to_string(), "9223372036854775808");
        let prod = mul(&i(i64::MAX), &i(i64::MAX)).unwrap();
        assert_eq!(prod.to_string(), "85070591730234615847396907784232501249");
    }

    #[test]
    fn big_arithmetic_roundtrips_down() {
        // Big - Big that fits in i64 normalizes back to Int.
        let b = add(&i(i64::MAX), &i(1)).unwrap();
        let back = sub(&b, &i(1)).unwrap();
        assert_eq!(back.as_int(), Some(i64::MAX));
    }

    #[test]
    fn division_semantics() {
        assert_eq!(div(&i(7), &i(2)), Some(i(3)));
        assert_eq!(div(&i(-7), &i(2)), Some(i(-3)));
        assert_eq!(div(&i(7), &i(0)), None);
        assert_eq!(div(&i(7), &Value::from(2.0)), Some(Value::from(3.5)));
        assert_eq!(rem(&i(7), &i(2)), Some(i(1)));
        assert_eq!(rem(&i(7), &i(0)), None);
    }

    #[test]
    fn pow_semantics() {
        assert_eq!(pow(&i(2), &i(10)), Some(i(1024)));
        assert_eq!(
            pow(&i(2), &i(100)).unwrap().to_string(),
            "1267650600228229401496703205376"
        );
        assert_eq!(pow(&i(2), &i(-1)), Some(Value::from(0.5)));
    }

    #[test]
    fn neg_handles_min() {
        assert_eq!(neg(&i(5)), Some(i(-5)));
        let negmin = neg(&i(i64::MIN)).unwrap();
        assert_eq!(negmin.to_string(), "9223372036854775808");
    }

    #[test]
    fn comparisons_produce_right_operand() {
        assert_eq!(lt(&i(4), &i(5)), Some(i(5)));
        assert_eq!(lt(&i(5), &i(4)), None);
        assert_eq!(le(&i(5), &i(5)), Some(i(5)));
        assert_eq!(gt(&i(5), &i(4)), Some(i(4)));
        assert_eq!(ge(&i(4), &i(5)), None);
        assert_eq!(num_eq(&s("3"), &i(3)), Some(i(3)));
        assert_eq!(num_ne(&i(3), &i(3)), None);
        assert_eq!(num_ne(&i(3), &i(4)), Some(i(4)));
    }

    #[test]
    fn comparison_chains_like_icon() {
        // 1 <= x <= 10 for x=5: (1 <= 5) -> 5, then (5 <= 10) -> 10.
        let step1 = le(&i(1), &i(5)).unwrap();
        let step2 = le(&step1, &i(10));
        assert_eq!(step2, Some(i(10)));
    }

    #[test]
    fn mixed_big_comparison() {
        let b = add(&i(i64::MAX), &i(1)).unwrap();
        assert_eq!(num_cmp(&b, &i(5)), Some(Ordering::Greater));
        assert!(lt(&i(5), &b).is_some());
    }

    #[test]
    fn string_ops() {
        assert_eq!(concat(&s("ab"), &s("cd")), Some(s("abcd")));
        assert_eq!(concat(&s("n="), &i(5)), Some(s("n=5")));
        assert_eq!(str_lt(&s("abc"), &s("abd")), Some(s("abd")));
        assert_eq!(str_eq(&s("x"), &s("x")), Some(s("x")));
        assert_eq!(str_ne(&s("x"), &s("x")), None);
        // Numeric strings compare lexically under string ops.
        assert_eq!(str_gt(&s("9"), &s("10")), Some(s("10")));
    }

    #[test]
    fn real_string_image() {
        assert_eq!(to_str(&Value::from(3.0)).unwrap().as_ref(), "3.0");
        assert_eq!(to_str(&Value::from(3.25)).unwrap().as_ref(), "3.25");
    }

    #[test]
    fn equiv_op() {
        assert_eq!(equiv(&i(3), &i(3)), Some(i(3)));
        assert_eq!(equiv(&i(3), &s("3")), None);
    }

    #[test]
    fn indexing_strings_and_lists() {
        let lst = Value::list(vec![i(10), i(20), i(30)]);
        assert_eq!(index(&lst, &i(1)), Some(i(10)));
        assert_eq!(index(&lst, &i(3)), Some(i(30)));
        assert_eq!(index(&lst, &i(0)), Some(i(30))); // 0 = from end
        assert_eq!(index(&lst, &i(-1)), Some(i(20)));
        assert_eq!(index(&lst, &i(4)), None);
        assert_eq!(index(&s("abc"), &i(2)), Some(s("b")));
        assert_eq!(index(&i(5), &i(1)), None);
    }

    #[test]
    fn index_assignment() {
        let lst = Value::list(vec![i(1), i(2)]);
        assert_eq!(index_assign(&lst, &i(2), i(99)), Some(i(99)));
        assert_eq!(index(&lst, &i(2)), Some(i(99)));
        assert_eq!(index_assign(&lst, &i(5), i(0)), None);

        let t = Value::table();
        assert_eq!(index(&t, &s("k")), Some(Value::Null)); // default
        index_assign(&t, &s("k"), i(7)).unwrap();
        assert_eq!(index(&t, &s("k")), Some(i(7)));
        assert_eq!(t.size(), Some(1));
    }

    #[test]
    fn to_num_parses_big_strings() {
        let v = s("123456789012345678901234567890");
        match to_num(&v).unwrap() {
            Num::Big(b) => assert_eq!(b.to_string(), "123456789012345678901234567890"),
            other => panic!("expected Big, got {other:?}"),
        }
        assert!(to_num(&s("3.5")).is_some());
        assert!(to_num(&s("")).is_none());
        assert!(to_num(&Value::list(vec![])).is_none());
    }
}
