//! Goal-directed operators over [`Value`]s.
//!
//! Operations return `Option<Value>`: `None` means the operation *fails* in
//! the goal-directed sense (which, composed through the product combinator,
//! prunes that branch of the search). Two Icon-isms matter here:
//!
//! * **Coercion** — strings are converted to numbers where a number is
//!   required (`"5" + 1` is `6`), and machine integers promote to arbitrary
//!   precision on overflow ("arbitrary precision arithmetic ... is implicit
//!   in Unicon", Sec. VII).
//! * **Comparisons produce their right operand** — `4 < 5` *succeeds
//!   producing 5*, `5 < 4` fails. This is what lets comparisons chain and
//!   filter inside generator products, e.g. `1 <= x <= 10`.

use crate::strbuf;
use crate::sym::Symbol;
use crate::value::Value;
use bigint::BigInt;
use std::cmp::Ordering;
use std::fmt::Write as _;
use std::sync::Arc;

/// A numeric view of a value after coercion.
#[derive(Clone, Debug)]
pub enum Num {
    Int(i64),
    Big(BigInt),
    Real(f64),
}

/// Coerce a value to a number: integers and reals pass through, strings are
/// parsed (integer first, then big integer, then real). Fails (`None`) for
/// non-numeric values.
pub fn to_num(v: &Value) -> Option<Num> {
    match v.deref() {
        Value::Int(i) => Some(Num::Int(i)),
        Value::Big(b) => Some(Num::Big((*b).clone())),
        Value::Real(r) => Some(Num::Real(r)),
        s @ (Value::Str(_) | Value::Sym(_) | Value::Slice(_) | Value::Built(_)) => {
            let s = s.as_str().expect("string form").trim();
            if let Ok(i) = s.parse::<i64>() {
                Some(Num::Int(i))
            } else if let Ok(b) = BigInt::from_str_radix(s, 10) {
                Some(Num::Big(b))
            } else if let Ok(r) = s.parse::<f64>() {
                Some(Num::Real(r))
            } else {
                None
            }
        }
        _ => None,
    }
}

fn to_big(n: &Num) -> BigInt {
    match n {
        Num::Int(i) => BigInt::from(*i),
        Num::Big(b) => b.clone(),
        Num::Real(r) => BigInt::from(*r as i64),
    }
}

fn to_real(n: &Num) -> f64 {
    match n {
        Num::Int(i) => *i as f64,
        Num::Big(b) => b.to_f64(),
        Num::Real(r) => *r,
    }
}

fn is_real(n: &Num) -> bool {
    matches!(n, Num::Real(_))
}

macro_rules! arith {
    ($name:ident, $checked:ident, $bigop:tt, $realop:tt) => {
        /// Arithmetic with big-integer promotion and string coercion;
        /// fails on non-numeric operands.
        pub fn $name(a: &Value, b: &Value) -> Option<Value> {
            let (x, y) = (to_num(a)?, to_num(b)?);
            if is_real(&x) || is_real(&y) {
                return Some(Value::Real(to_real(&x) $realop to_real(&y)));
            }
            if let (Num::Int(i), Num::Int(j)) = (&x, &y) {
                if let Some(r) = i.$checked(*j) {
                    return Some(Value::Int(r));
                }
            }
            Some(Value::big(&to_big(&x) $bigop &to_big(&y)))
        }
    };
}

arith!(add, checked_add, +, +);
arith!(sub, checked_sub, -, -);
arith!(mul, checked_mul, *, *);

/// Division. Integer operands use truncated integer division (failing on
/// division by zero); any real operand gives real division.
pub fn div(a: &Value, b: &Value) -> Option<Value> {
    let (x, y) = (to_num(a)?, to_num(b)?);
    if is_real(&x) || is_real(&y) {
        let d = to_real(&y);
        if d == 0.0 {
            return None;
        }
        return Some(Value::Real(to_real(&x) / d));
    }
    if let (Num::Int(i), Num::Int(j)) = (&x, &y) {
        if *j == 0 {
            return None;
        }
        if let Some(r) = i.checked_div(*j) {
            return Some(Value::Int(r));
        }
    }
    let d = to_big(&y);
    if d.is_zero() {
        return None;
    }
    Some(Value::big(&to_big(&x) / &d))
}

/// Remainder (`%`), truncated like Rust's; fails on zero divisor.
pub fn rem(a: &Value, b: &Value) -> Option<Value> {
    let (x, y) = (to_num(a)?, to_num(b)?);
    if is_real(&x) || is_real(&y) {
        let d = to_real(&y);
        if d == 0.0 {
            return None;
        }
        return Some(Value::Real(to_real(&x) % d));
    }
    if let (Num::Int(i), Num::Int(j)) = (&x, &y) {
        if *j == 0 {
            return None;
        }
        if let Some(r) = i.checked_rem(*j) {
            return Some(Value::Int(r));
        }
    }
    let d = to_big(&y);
    if d.is_zero() {
        return None;
    }
    Some(Value::big(&to_big(&x) % &d))
}

/// Exponentiation (`^`); negative integer exponents give reals.
pub fn pow(a: &Value, b: &Value) -> Option<Value> {
    let (x, y) = (to_num(a)?, to_num(b)?);
    match (&x, &y) {
        (_, Num::Int(e)) if *e >= 0 && !is_real(&x) => {
            Some(Value::big(big_pow(&to_big(&x), *e as u64)))
        }
        _ => Some(Value::Real(to_real(&x).powf(to_real(&y)))),
    }
}

fn big_pow(base: &BigInt, exp: u64) -> BigInt {
    let mut acc = BigInt::one();
    let mut b = base.clone();
    let mut e = exp;
    while e > 0 {
        if e & 1 == 1 {
            acc = &acc * &b;
        }
        e >>= 1;
        if e > 0 {
            b = &b * &b;
        }
    }
    acc
}

/// Numeric negation.
pub fn neg(a: &Value) -> Option<Value> {
    match to_num(a)? {
        Num::Int(i) => i
            .checked_neg()
            .map(Value::Int)
            .or_else(|| Some(Value::big(-BigInt::from(i)))),
        Num::Big(b) => Some(Value::big(-b)),
        Num::Real(r) => Some(Value::Real(-r)),
    }
}

/// Numeric three-way comparison with coercion.
pub fn num_cmp(a: &Value, b: &Value) -> Option<Ordering> {
    let (x, y) = (to_num(a)?, to_num(b)?);
    if is_real(&x) || is_real(&y) {
        to_real(&x).partial_cmp(&to_real(&y))
    } else {
        Some(to_big(&x).cmp(&to_big(&y)))
    }
}

macro_rules! cmp_op {
    ($name:ident, $($ord:pat_param)|+) => {
        /// Goal-directed numeric comparison: succeeds *producing the right
        /// operand* or fails.
        pub fn $name(a: &Value, b: &Value) -> Option<Value> {
            match num_cmp(a, b)? {
                $($ord)|+ => Some(b.deref()),
                _ => None,
            }
        }
    };
}

cmp_op!(lt, Ordering::Less);
cmp_op!(le, Ordering::Less | Ordering::Equal);
cmp_op!(gt, Ordering::Greater);
cmp_op!(ge, Ordering::Greater | Ordering::Equal);
cmp_op!(num_eq, Ordering::Equal);

/// Goal-directed numeric inequality (`~=`).
pub fn num_ne(a: &Value, b: &Value) -> Option<Value> {
    match num_cmp(a, b)? {
        Ordering::Equal => None,
        _ => Some(b.deref()),
    }
}

/// A stack-first scratch buffer for numeric→string coercion: 40 bytes
/// inline (room for any `i64` and the shortest-round-trip image of any
/// `f64` that fits it), spilling to a heap `String` only when a value's
/// image genuinely overflows (full decimal expansions of huge reals,
/// big integers). This is what lets [`to_text`], the lexical
/// comparisons, and [`concat`] coerce numbers without allocating on the
/// hot path.
pub struct NumBuf {
    bytes: [u8; 40],
    len: usize,
    spill: Option<String>,
}

impl Default for NumBuf {
    fn default() -> Self {
        NumBuf::new()
    }
}

impl NumBuf {
    pub fn new() -> NumBuf {
        NumBuf {
            bytes: [0; 40],
            len: 0,
            spill: None,
        }
    }

    pub fn as_str(&self) -> &str {
        match &self.spill {
            Some(s) => s,
            None => std::str::from_utf8(&self.bytes[..self.len]).expect("NumBuf holds UTF-8"),
        }
    }

    /// True iff the image stayed in the stack buffer (no allocation).
    fn on_stack(&self) -> bool {
        self.spill.is_none()
    }
}

impl std::fmt::Write for NumBuf {
    fn write_str(&mut self, s: &str) -> std::fmt::Result {
        if let Some(sp) = &mut self.spill {
            sp.push_str(s);
        } else if self.len + s.len() <= self.bytes.len() {
            self.bytes[self.len..self.len + s.len()].copy_from_slice(s.as_bytes());
            self.len += s.len();
        } else {
            let mut sp = String::with_capacity(self.len + s.len());
            sp.push_str(std::str::from_utf8(&self.bytes[..self.len]).expect("UTF-8"));
            sp.push_str(s);
            self.spill = Some(sp);
        }
        Ok(())
    }
}

/// Borrowed string coercion: string forms hand back their own text,
/// numbers format into the caller's [`NumBuf`]. No allocation unless the
/// image spills (see [`NumBuf`]). Fails for non-scalar values. Reified
/// variables are *not* dereferenced here (a borrowed result cannot
/// outlive a temporary) — callers deref first.
pub fn to_text<'a>(v: &'a Value, buf: &'a mut NumBuf) -> Option<&'a str> {
    match v {
        Value::Str(s) => Some(s),
        Value::Sym(s) => Some(s.as_str()),
        Value::Slice(s) => Some(s.as_str()),
        Value::Built(s) => Some(s.as_str()),
        Value::Int(i) => {
            write!(buf, "{i}").ok()?;
            obs_on!(crate::obs_hot::coerce_cached().inc());
            Some(buf.as_str())
        }
        Value::Real(r) => {
            format_real_into(*r, buf);
            if buf.on_stack() {
                obs_on!(crate::obs_hot::coerce_cached().inc());
            }
            Some(buf.as_str())
        }
        Value::Big(b) => {
            write!(buf, "{b}").ok()?;
            Some(buf.as_str())
        }
        _ => None,
    }
}

/// Dereference a reified variable into `slot` so its value can be
/// borrowed from; pass non-refs through untouched.
fn deref_into<'a>(v: &'a Value, slot: &'a mut Option<Value>) -> &'a Value {
    match v {
        Value::Ref(_) => slot.insert(v.deref()),
        other => other,
    }
}

/// Interned handles for the small-integer images (`"0"`..`"255"`):
/// table-key coercions and `word=count` formatting hit these constantly,
/// so they resolve to canonical immortal symbols instead of fresh
/// allocations.
fn small_int_sym(i: i64) -> Option<Symbol> {
    use std::sync::OnceLock;
    static SMALL: OnceLock<Vec<Symbol>> = OnceLock::new();
    if !(0..=255).contains(&i) {
        return None;
    }
    let table = SMALL.get_or_init(|| {
        let mut buf = NumBuf::new();
        (0..=255i64)
            .map(|n| {
                buf.len = 0;
                let _ = write!(buf, "{n}");
                Symbol::new(buf.as_str())
            })
            .collect()
    });
    Some(table[i as usize])
}

/// Coerce to a string (Icon's implicit string conversion).
pub fn to_str(v: &Value) -> Option<Arc<str>> {
    match v.deref() {
        Value::Str(s) => Some(s),
        // Interned handles already own a canonical shared allocation.
        Value::Sym(s) => Some(s.arc()),
        Value::Slice(s) => Some(Arc::from(s.as_str())),
        Value::Built(s) => Some(Arc::from(s.as_str())),
        Value::Int(i) => Some(int_arc(i)),
        Value::Big(b) => Some(Arc::from(b.to_string().as_str())),
        Value::Real(r) => {
            let mut buf = NumBuf::new();
            format_real_into(r, &mut buf);
            if buf.on_stack() {
                obs_on!(crate::obs_hot::coerce_cached().inc());
            }
            Some(Arc::from(buf.as_str()))
        }
        _ => None,
    }
}

/// An integer's string image as a shared allocation: small ints replay
/// the canonical interned symbol (zero allocation), larger ones format
/// on the stack and take a single `Arc` copy (down from the old
/// `String` + `Arc` pair).
fn int_arc(i: i64) -> Arc<str> {
    if let Some(sym) = small_int_sym(i) {
        obs_on!(crate::obs_hot::coerce_cached().inc());
        return sym.arc();
    }
    let mut buf = NumBuf::new();
    let _ = write!(buf, "{i}");
    Arc::from(buf.as_str())
}

/// Icon's image of a real: integral finite values show one decimal
/// (`3.0`), everything else the shortest round-trip form.
fn format_real_into(r: f64, buf: &mut NumBuf) {
    if r == r.trunc() && r.is_finite() && r.abs() < 1e15 {
        let _ = write!(buf, "{r:.1}");
    } else {
        let _ = write!(buf, "{r}");
    }
}

/// String concatenation (`||`) with coercion, backed by the builder
/// arena ([`crate::strbuf`]). Three regimes, cheapest first:
///
/// * both operands are windows of the same owner and textually adjacent
///   → the result is a *wider window*, nothing copied (`concat_slices`);
/// * the left operand is the last published window of this thread's
///   builder chunk → only the right operand's bytes are appended and the
///   window widens over both (`concat_slices`) — this is what makes
///   left-leaning concat chains (`((a || b) || c) || …`) linear instead
///   of quadratic;
/// * otherwise both coerced texts are appended into the arena and the
///   result windows over the pair (`concat_copies`).
///
/// The result is a borrowed [`Value::Built`] (or widened
/// [`Value::Slice`]) handle: it pins its chunk and promotes at every
/// escape route, exactly like the line-arena slices. For an owned result
/// (the pre-arena behaviour) use [`concat_owned`].
pub fn concat(a: &Value, b: &Value) -> Option<Value> {
    let (mut da, mut db) = (None, None);
    let a = deref_into(a, &mut da);
    let b = deref_into(b, &mut db);
    if let Some(widened) = try_widen(a, b) {
        return Some(widened);
    }
    if let Value::Built(x) = a {
        // Tail extension: `x` ends exactly at the current chunk's
        // published length, so appending `b` widens it in place.
        let mut bbuf = NumBuf::new();
        let btext = to_text(b, &mut bbuf)?;
        if let Some(w) = strbuf::with_builder(|bl| bl.try_extend(&x.window(), btext)) {
            obs_on!(crate::obs_hot::concat_slices().inc());
            return Some(Value::built(w));
        }
        obs_on!(crate::obs_hot::concat_copies().inc());
        return Some(Value::built(strbuf::with_builder(|bl| {
            bl.push_concat(x.as_str(), btext)
        })));
    }
    let (mut abuf, mut bbuf) = (NumBuf::new(), NumBuf::new());
    let x = to_text(a, &mut abuf)?;
    let y = to_text(b, &mut bbuf)?;
    obs_on!(crate::obs_hot::concat_copies().inc());
    Some(Value::built(strbuf::with_builder(|bl| {
        bl.push_concat(x, y)
    })))
}

/// The adjacency fast path: two windows of the same owner where `a` ends
/// exactly where `b` starts merge into one wider window of that owner —
/// zero bytes copied. (The test-only `strbuf::ADJACENCY_SKEW` hook
/// shortens the widened window by one byte so the differential suite can
/// prove an off-by-one here is caught.)
fn try_widen(a: &Value, b: &Value) -> Option<Value> {
    let skew = |len: u32| {
        if strbuf::adjacency_skew() {
            len.saturating_sub(1)
        } else {
            len
        }
    };
    match (a, b) {
        (Value::Slice(x), Value::Slice(y)) if Arc::ptr_eq(x.owner(), y.owner()) => {
            let ((xs, xl), (ys, yl)) = (x.bounds(), y.bounds());
            if xs + xl == ys {
                obs_on!(crate::obs_hot::concat_slices().inc());
                return Some(Value::Slice(x.with_bounds(xs, skew(xl + yl))));
            }
            None
        }
        (Value::Built(x), Value::Built(y)) if Arc::ptr_eq(x.owner(), y.owner()) => {
            let ((xs, xl), (ys, yl)) = (x.bounds(), y.bounds());
            if xs + xl == ys {
                obs_on!(crate::obs_hot::concat_slices().inc());
                return Some(Value::Built(x.with_bounds(xs, skew(xl + yl))));
            }
            None
        }
        _ => None,
    }
}

/// String concatenation into a fresh owned `String` — the pre-arena
/// implementation, kept as the reference ("builder off") side of the
/// boxed-vs-builder differential suite and for callers that genuinely
/// want an owned result.
pub fn concat_owned(a: &Value, b: &Value) -> Option<Value> {
    let (x, y) = (to_str(a)?, to_str(b)?);
    let mut s = String::with_capacity(x.len() + y.len());
    s.push_str(&x);
    s.push_str(&y);
    Some(Value::from(s))
}

/// Lexical three-way comparison over coerced texts, allocation-free for
/// every scalar whose image fits the stack buffers.
fn text_cmp(a: &Value, b: &Value) -> Option<Ordering> {
    let (mut da, mut db) = (None, None);
    let a = deref_into(a, &mut da);
    let b = deref_into(b, &mut db);
    let (mut abuf, mut bbuf) = (NumBuf::new(), NumBuf::new());
    let x = to_text(a, &mut abuf)?;
    let y = to_text(b, &mut bbuf)?;
    Some(x.cmp(y))
}

macro_rules! str_cmp_op {
    ($name:ident, $($ord:pat_param)|+) => {
        /// Goal-directed lexical comparison: succeeds producing the right
        /// operand or fails.
        pub fn $name(a: &Value, b: &Value) -> Option<Value> {
            match text_cmp(a, b)? {
                $($ord)|+ => Some(b.deref()),
                _ => None,
            }
        }
    };
}

str_cmp_op!(str_lt, Ordering::Less);
str_cmp_op!(str_le, Ordering::Less | Ordering::Equal);
str_cmp_op!(str_gt, Ordering::Greater);
str_cmp_op!(str_ge, Ordering::Greater | Ordering::Equal);
str_cmp_op!(str_eq, Ordering::Equal);

/// Goal-directed lexical inequality.
pub fn str_ne(a: &Value, b: &Value) -> Option<Value> {
    match text_cmp(a, b)? {
        Ordering::Equal => None,
        _ => Some(b.deref()),
    }
}

/// Value equivalence `===`: succeeds producing the right operand.
pub fn equiv(a: &Value, b: &Value) -> Option<Value> {
    if a.equiv(b) {
        Some(b.deref())
    } else {
        None
    }
}

/// Subscript `x[i]` with Icon's 1-based, negative-from-end indexing for
/// strings and lists, and key lookup (with default) for tables.
///
/// String subscripts are byte-indexed: the old per-call `Vec<char>`
/// collect is gone. ASCII text (the hot case) resolves the character in
/// O(1); other text takes a single `char_indices` walk with early exit
/// at the target. Negative and zero indices need the character count —
/// replayed from the [`BuiltStr`](crate::BuiltStr) cache or counted with
/// the ASCII fast path. The result is a *window into the subscripted
/// value's own owner* (its line buffer, arena chunk, or interner node) —
/// no allocation on any string path.
pub fn index(x: &Value, i: &Value) -> Option<Value> {
    match x.deref() {
        ref sv @ (Value::Str(_) | Value::Sym(_) | Value::Slice(_) | Value::Built(_)) => {
            let text = sv.as_str().expect("string form");
            let raw = raw_icon_index(i)?;
            let idx = if raw > 0 {
                (raw - 1) as usize
            } else {
                let chars = match sv {
                    Value::Built(s) => s.char_len(),
                    Value::Slice(s) => s.char_len(),
                    _ => crate::value::str_char_len(text),
                };
                let adj = chars as i64 + raw - 1;
                if adj < 0 {
                    return None;
                }
                adj as usize
            };
            let (bs, be) = char_window(text, idx)?;
            Some(match sv {
                Value::Slice(s) => {
                    let (start, _) = s.bounds();
                    Value::Slice(s.with_bounds(start + bs as u32, (be - bs) as u32))
                }
                Value::Built(s) => {
                    let (start, _) = s.bounds();
                    Value::Built(s.with_bounds(start + bs as u32, (be - bs) as u32))
                }
                Value::Str(s) => Value::slice(s.clone(), bs, be),
                // A symbol's text is a canonical immortal allocation:
                // windowing it costs one refcount, no interner walk.
                Value::Sym(s) => Value::slice(s.arc(), bs, be),
                _ => unreachable!("string form"),
            })
        }
        Value::List(l) => {
            let l = l.lock();
            let idx = icon_index(i, l.len())?;
            Some(l[idx].clone())
        }
        Value::Table(t) => {
            let key = i.as_key()?;
            let t = t.lock();
            Some(
                t.entries
                    .get(&key)
                    .cloned()
                    .unwrap_or_else(|| t.default.clone()),
            )
        }
        _ => None,
    }
}

/// Assign `x[i] := v` for lists and tables; fails on other types or
/// out-of-range indices.
pub fn index_assign(x: &Value, i: &Value, v: Value) -> Option<Value> {
    match x.deref() {
        Value::List(l) => {
            let mut l = l.lock();
            let len = l.len();
            let idx = icon_index(i, len)?;
            l[idx] = v.clone();
            Some(v)
        }
        Value::Table(t) => {
            let key = i.as_key()?;
            t.lock().entries.insert(key, v.clone());
            Some(v)
        }
        _ => None,
    }
}

/// The byte window of the `idx`-th (0-based) character of `text`:
/// all-ASCII text resolves in O(1), otherwise one `char_indices` walk
/// stopping at the target. `None` when `idx` is past the end.
fn char_window(text: &str, idx: usize) -> Option<(usize, usize)> {
    if text.is_ascii() {
        if idx < text.len() {
            Some((idx, idx + 1))
        } else {
            None
        }
    } else {
        let (start, c) = text.char_indices().nth(idx)?;
        Some((start, start + c.len_utf8()))
    }
}

/// The raw Icon subscript value (1-based; 0 or negative count from the
/// end in Unicon style), before length adjustment.
fn raw_icon_index(i: &Value) -> Option<i64> {
    match to_num(i)? {
        Num::Int(v) => Some(v),
        Num::Big(b) => b.to_i64(),
        Num::Real(r) => Some(r as i64),
    }
}

/// Convert an Icon subscript to a 0-based offset, failing when out of
/// range.
fn icon_index(i: &Value, len: usize) -> Option<usize> {
    let raw = raw_icon_index(i)?;
    let idx = if raw > 0 {
        raw - 1
    } else {
        len as i64 + raw - 1
    };
    if idx >= 0 && (idx as usize) < len {
        Some(idx as usize)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn i(v: i64) -> Value {
        Value::from(v)
    }
    fn s(v: &str) -> Value {
        Value::str(v)
    }

    #[test]
    fn add_with_coercion() {
        assert_eq!(add(&i(2), &i(3)), Some(i(5)));
        assert_eq!(add(&s("5"), &i(1)), Some(i(6)));
        assert_eq!(add(&i(1), &Value::from(0.5)), Some(Value::from(1.5)));
        assert_eq!(add(&s("x"), &i(1)), None);
    }

    #[test]
    fn overflow_promotes_to_big() {
        let big = add(&i(i64::MAX), &i(1)).unwrap();
        assert!(matches!(big, Value::Big(_)));
        assert_eq!(big.to_string(), "9223372036854775808");
        let prod = mul(&i(i64::MAX), &i(i64::MAX)).unwrap();
        assert_eq!(prod.to_string(), "85070591730234615847396907784232501249");
    }

    #[test]
    fn big_arithmetic_roundtrips_down() {
        // Big - Big that fits in i64 normalizes back to Int.
        let b = add(&i(i64::MAX), &i(1)).unwrap();
        let back = sub(&b, &i(1)).unwrap();
        assert_eq!(back.as_int(), Some(i64::MAX));
    }

    #[test]
    fn division_semantics() {
        assert_eq!(div(&i(7), &i(2)), Some(i(3)));
        assert_eq!(div(&i(-7), &i(2)), Some(i(-3)));
        assert_eq!(div(&i(7), &i(0)), None);
        assert_eq!(div(&i(7), &Value::from(2.0)), Some(Value::from(3.5)));
        assert_eq!(rem(&i(7), &i(2)), Some(i(1)));
        assert_eq!(rem(&i(7), &i(0)), None);
    }

    #[test]
    fn pow_semantics() {
        assert_eq!(pow(&i(2), &i(10)), Some(i(1024)));
        assert_eq!(
            pow(&i(2), &i(100)).unwrap().to_string(),
            "1267650600228229401496703205376"
        );
        assert_eq!(pow(&i(2), &i(-1)), Some(Value::from(0.5)));
    }

    #[test]
    fn neg_handles_min() {
        assert_eq!(neg(&i(5)), Some(i(-5)));
        let negmin = neg(&i(i64::MIN)).unwrap();
        assert_eq!(negmin.to_string(), "9223372036854775808");
    }

    #[test]
    fn comparisons_produce_right_operand() {
        assert_eq!(lt(&i(4), &i(5)), Some(i(5)));
        assert_eq!(lt(&i(5), &i(4)), None);
        assert_eq!(le(&i(5), &i(5)), Some(i(5)));
        assert_eq!(gt(&i(5), &i(4)), Some(i(4)));
        assert_eq!(ge(&i(4), &i(5)), None);
        assert_eq!(num_eq(&s("3"), &i(3)), Some(i(3)));
        assert_eq!(num_ne(&i(3), &i(3)), None);
        assert_eq!(num_ne(&i(3), &i(4)), Some(i(4)));
    }

    #[test]
    fn comparison_chains_like_icon() {
        // 1 <= x <= 10 for x=5: (1 <= 5) -> 5, then (5 <= 10) -> 10.
        let step1 = le(&i(1), &i(5)).unwrap();
        let step2 = le(&step1, &i(10));
        assert_eq!(step2, Some(i(10)));
    }

    #[test]
    fn mixed_big_comparison() {
        let b = add(&i(i64::MAX), &i(1)).unwrap();
        assert_eq!(num_cmp(&b, &i(5)), Some(Ordering::Greater));
        assert!(lt(&i(5), &b).is_some());
    }

    #[test]
    fn string_ops() {
        assert_eq!(concat(&s("ab"), &s("cd")), Some(s("abcd")));
        assert_eq!(concat(&s("n="), &i(5)), Some(s("n=5")));
        assert_eq!(str_lt(&s("abc"), &s("abd")), Some(s("abd")));
        assert_eq!(str_eq(&s("x"), &s("x")), Some(s("x")));
        assert_eq!(str_ne(&s("x"), &s("x")), None);
        // Numeric strings compare lexically under string ops.
        assert_eq!(str_gt(&s("9"), &s("10")), Some(s("10")));
    }

    #[test]
    fn concat_yields_arena_windows() {
        let v = concat(&s("ab"), &s("cd")).unwrap();
        assert!(
            matches!(v, Value::Built(_)),
            "fresh concat lands in the arena"
        );
        assert_eq!(v.as_str(), Some("abcd"));
        // A left-leaning chain tail-extends: every link shares one chunk
        // window with the previous result.
        let chain = concat(&concat(&v, &s("-")).unwrap(), &i(7)).unwrap();
        assert_eq!(chain.as_str(), Some("abcd-7"));
        if let (Value::Built(a), Value::Built(b)) = (&v, &chain) {
            assert!(
                Arc::ptr_eq(a.owner(), b.owner()),
                "chain must stay in one chunk"
            );
        } else {
            panic!("chain result must be Built");
        }
    }

    #[test]
    fn concat_widens_adjacent_slices_without_copying() {
        let line: Arc<str> = Arc::from("hello world");
        let a = Value::slice(line.clone(), 0, 5);
        let b = Value::slice(line.clone(), 5, 11);
        let joined = concat(&a, &b).unwrap();
        match &joined {
            Value::Slice(w) => {
                assert!(
                    Arc::ptr_eq(w.owner(), &line),
                    "widening must reuse the owner"
                );
                assert_eq!(w.as_str(), "hello world");
            }
            other => panic!("adjacent slices must widen, got {other:?}"),
        }
        // Non-adjacent windows of the same owner fall back to a copy.
        let c = Value::slice(line.clone(), 0, 5);
        let d = Value::slice(line.clone(), 6, 11);
        let copied = concat(&c, &d).unwrap();
        assert!(matches!(copied, Value::Built(_)));
        assert_eq!(copied.as_str(), Some("helloworld"));
    }

    #[test]
    fn concat_owned_matches_builder_concat() {
        let line: Arc<str> = Arc::from("one two three");
        let cases = [
            (s("a"), s("b")),
            (s(""), s("xy")),
            (
                Value::slice(line.clone(), 0, 3),
                Value::slice(line.clone(), 3, 7),
            ),
            (Value::interned("k"), i(255)),
            (i(-4), Value::from(2.5)),
            (s("r="), Value::from(3.0)),
        ];
        for (a, b) in cases {
            let owned = concat_owned(&a, &b);
            let built = concat(&a, &b);
            assert_eq!(owned, built, "{a:?} || {b:?} diverged");
        }
        assert_eq!(concat(&Value::list(vec![]), &s("x")), None);
        assert_eq!(concat(&s("x"), &Value::list(vec![])), None);
    }

    #[test]
    fn small_int_images_are_interned() {
        let a = to_str(&i(42)).unwrap();
        let b = to_str(&i(42)).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "small-int images must share the cache");
        assert_eq!(a.as_ref(), "42");
        assert_eq!(to_str(&i(0)).unwrap().as_ref(), "0");
        assert_eq!(to_str(&i(255)).unwrap().as_ref(), "255");
        // Outside the cache: still correct, single allocation.
        assert_eq!(to_str(&i(256)).unwrap().as_ref(), "256");
        assert_eq!(
            to_str(&i(i64::MIN)).unwrap().as_ref(),
            "-9223372036854775808"
        );
    }

    #[test]
    fn to_text_borrows_without_allocating() {
        let mut buf = NumBuf::new();
        assert_eq!(to_text(&s("plain"), &mut buf), Some("plain"));
        let mut buf = NumBuf::new();
        assert_eq!(to_text(&i(-17), &mut buf), Some("-17"));
        let mut buf = NumBuf::new();
        assert_eq!(to_text(&Value::from(2.5), &mut buf), Some("2.5"));
        let mut buf = NumBuf::new();
        assert_eq!(to_text(&Value::from(3.0), &mut buf), Some("3.0"));
        // A huge real's full decimal expansion spills to the heap but
        // stays correct.
        let mut buf = NumBuf::new();
        let huge = Value::from(1e300);
        let long = to_text(&huge, &mut buf).unwrap();
        assert_eq!(long.len(), 301);
        assert!(long.starts_with('1'));
        let mut buf = NumBuf::new();
        assert_eq!(to_text(&Value::list(vec![]), &mut buf), None);
    }

    #[test]
    fn str_cmp_coerces_through_refs_and_numbers() {
        use crate::var::Var;
        let r = Value::Ref(Var::new(s("abc")));
        assert_eq!(str_lt(&r, &s("abd")), Some(s("abd")));
        assert_eq!(str_eq(&i(12), &s("12")), Some(s("12")));
        assert_eq!(str_lt(&i(12), &i(3)), Some(i(3))); // lexical: "12" < "3"
    }

    #[test]
    fn index_returns_windows_into_the_owner() {
        let line: Arc<str> = Arc::from("alpha beta");
        let word = Value::slice(line.clone(), 0, 5);
        let c = index(&word, &i(2)).unwrap();
        match &c {
            Value::Slice(w) => {
                assert!(
                    Arc::ptr_eq(w.owner(), &line),
                    "subscript must window the owner"
                );
                assert_eq!(w.as_str(), "l");
            }
            other => panic!("expected a slice window, got {other:?}"),
        }
        // Built subscripts window the chunk.
        let built = concat(&s("wi"), &s("de")).unwrap();
        let d = index(&built, &i(4)).unwrap();
        assert!(matches!(d, Value::Built(_)));
        assert_eq!(d.as_str(), Some("e"));
        // Sym subscripts window the canonical interner allocation.
        let sym = Value::interned("symbolic");
        assert_eq!(index(&sym, &i(3)).unwrap().as_str(), Some("m"));
    }

    #[test]
    fn index_multibyte_and_negative() {
        let v = s("héllo");
        assert_eq!(index(&v, &i(1)).unwrap().as_str(), Some("h"));
        assert_eq!(index(&v, &i(2)).unwrap().as_str(), Some("é"));
        assert_eq!(index(&v, &i(5)).unwrap().as_str(), Some("o"));
        assert_eq!(index(&v, &i(6)), None);
        assert_eq!(index(&v, &i(0)).unwrap().as_str(), Some("o"));
        assert_eq!(index(&v, &i(-1)).unwrap().as_str(), Some("l"));
        assert_eq!(index(&v, &i(-5)), None);
        // ASCII fast path hits the same answers.
        let a = s("hello");
        assert_eq!(index(&a, &i(-1)).unwrap().as_str(), Some("l"));
        assert_eq!(index(&a, &i(0)).unwrap().as_str(), Some("o"));
    }

    #[test]
    fn real_string_image() {
        assert_eq!(to_str(&Value::from(3.0)).unwrap().as_ref(), "3.0");
        assert_eq!(to_str(&Value::from(3.25)).unwrap().as_ref(), "3.25");
    }

    #[test]
    fn equiv_op() {
        assert_eq!(equiv(&i(3), &i(3)), Some(i(3)));
        assert_eq!(equiv(&i(3), &s("3")), None);
    }

    #[test]
    fn indexing_strings_and_lists() {
        let lst = Value::list(vec![i(10), i(20), i(30)]);
        assert_eq!(index(&lst, &i(1)), Some(i(10)));
        assert_eq!(index(&lst, &i(3)), Some(i(30)));
        assert_eq!(index(&lst, &i(0)), Some(i(30))); // 0 = from end
        assert_eq!(index(&lst, &i(-1)), Some(i(20)));
        assert_eq!(index(&lst, &i(4)), None);
        assert_eq!(index(&s("abc"), &i(2)), Some(s("b")));
        assert_eq!(index(&i(5), &i(1)), None);
    }

    #[test]
    fn index_assignment() {
        let lst = Value::list(vec![i(1), i(2)]);
        assert_eq!(index_assign(&lst, &i(2), i(99)), Some(i(99)));
        assert_eq!(index(&lst, &i(2)), Some(i(99)));
        assert_eq!(index_assign(&lst, &i(5), i(0)), None);

        let t = Value::table();
        assert_eq!(index(&t, &s("k")), Some(Value::Null)); // default
        index_assign(&t, &s("k"), i(7)).unwrap();
        assert_eq!(index(&t, &s("k")), Some(i(7)));
        assert_eq!(t.size(), Some(1));
    }

    #[test]
    fn to_num_parses_big_strings() {
        let v = s("123456789012345678901234567890");
        match to_num(&v).unwrap() {
            Num::Big(b) => assert_eq!(b.to_string(), "123456789012345678901234567890"),
            other => panic!("expected Big, got {other:?}"),
        }
        assert!(to_num(&s("3.5")).is_some());
        assert!(to_num(&s("")).is_none());
        assert!(to_num(&Value::list(vec![])).is_none());
    }
}
