//! Differential property suite for the compact value representation.
//!
//! `gde::Value` claims that its three string forms — owned `Str`,
//! interned `Sym`, and arena-backed `Slice` — are *representations*, not
//! types: any pipeline must compute the same thing whichever form its
//! string payloads arrive in. This suite generates random word lists and
//! random stage pipelines over them (coercions, concatenation, table-key
//! counting, char expansion, explicit promotion), and runs each pipeline
//! twice — once fed boxed `Value::str` words, once fed compact words
//! (`Value::slice` windows into one shared line buffer, interleaved with
//! `Value::interned` handles) — asserting:
//!
//! * **identical outputs** (rendered value for value, in order);
//! * **identical per-stage evaluation counts** (failure points match);
//! * **identical table contents**: a counting stage keyed by the words
//!   themselves must produce the same multiset through `Key::Str`,
//!   `Key::Sym`, and promoted-slice keys;
//! * **identical restart replay**.
//!
//! A mutation sanity check proves the oracle has teeth: comparing a
//! pipeline against one whose source drops the last word diverges.

use gde::comb::fuse::StagePlan;
use gde::comb::values;
use gde::{BoxGen, Gen, GenExt, Value};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use tinyprop::prelude::*;

// ---------------------------------------------------------------------------
// Word and source generators
// ---------------------------------------------------------------------------

/// Render a deterministic word from a recipe integer: numeric words (the
/// coercion path), alphanumeric words, a non-ASCII word (slice boundary
/// checks), and a small high-collision set (interner hits).
fn word(n: u16) -> String {
    match n % 4 {
        0 => format!("{}", n / 4),
        1 => format!("w{}", n / 4),
        2 => format!("é{}", n % 8),
        _ => format!("x{}", n % 4),
    }
}

/// The boxed source: one owned `Value::str` per word.
fn boxed_source(words: &[String]) -> BoxGen {
    Box::new(values(words.iter().map(Value::str).collect()))
}

/// The compact source: the words live in ONE shared line buffer (the
/// arena) and are handed out as `Value::slice` windows; every third word
/// is an interned `Value::Sym` handle instead.
fn compact_source(words: &[String]) -> BoxGen {
    let line: Arc<str> = Arc::from(words.join(" ").as_str());
    let mut out = Vec::with_capacity(words.len());
    let mut pos = 0usize;
    for (i, w) in words.iter().enumerate() {
        if i % 3 == 2 {
            out.push(Value::interned(w));
        } else {
            out.push(Value::slice(line.clone(), pos, pos + w.len()));
        }
        pos += w.len() + 1;
    }
    Box::new(values(out))
}

// ---------------------------------------------------------------------------
// Pipeline generator
// ---------------------------------------------------------------------------

type StageOp = (u8, i64);
type Counters = Vec<Arc<AtomicUsize>>;

/// Build a string-flavored [`StagePlan`] from a recipe, instrumenting
/// every stage with an invocation counter. Each call builds independent
/// counters and tables, so a boxed and a compact instance compare stage
/// for stage.
fn build_plan(ops: &[StageOp]) -> (StagePlan, Counters) {
    let mut plan = StagePlan::new();
    let mut counters: Counters = Vec::with_capacity(ops.len());
    for &(code, k) in ops {
        let c = Arc::new(AtomicUsize::new(0));
        counters.push(Arc::clone(&c));
        let m = k.rem_euclid(4) + 1; // 1..=4
        plan = match code % 7 {
            // Numeric coercion: parses numeric words, drops the rest.
            0 => plan.filter_map(move |v| {
                c.fetch_add(1, Ordering::Relaxed);
                let n = gde::ops::to_num(v)?;
                match n {
                    gde::ops::Num::Int(i) => Some(Value::from(i.wrapping_add(k % 10))),
                    _ => Some(Value::from(0i64)),
                }
            }),
            // Length filter: keeps words whose char count % m != 0.
            1 => plan.filter(move |v| {
                c.fetch_add(1, Ordering::Relaxed);
                v.size().unwrap_or(0).rem_euclid(m) != 0
            }),
            // Concatenation: coerces to string, allocates an owned result.
            2 => plan.filter_map(move |v| {
                c.fetch_add(1, Ordering::Relaxed);
                gde::ops::concat(v, &Value::str("-t"))
            }),
            // Table-key counting: every value is counted under its own
            // key; the stage emits the running count for that key. Boxed
            // and compact runs must agree — this is the Key::Str /
            // Key::Sym / promoted-slice coherence property.
            3 => {
                let table = Value::table();
                plan.filter_map(move |v| {
                    c.fetch_add(1, Ordering::Relaxed);
                    let key = v.as_key()?;
                    let Value::Table(t) = &table else { return None };
                    let mut t = t.lock();
                    let n = t.entries.get(&key).and_then(Value::as_int).unwrap_or(0) + 1;
                    t.entries.insert(key, Value::from(n));
                    Some(Value::from(n))
                })
            }
            // Explicit promotion: the escape hatch itself is a stage.
            4 => plan.map(move |v| {
                c.fetch_add(1, Ordering::Relaxed);
                v.clone().promote()
            }),
            // Char expansion (flat barrier): `!word` — each string
            // explodes into its characters.
            5 => plan.flat(move |v| {
                c.fetch_add(1, Ordering::Relaxed);
                Box::new(gde::comb::promote_value(v.clone())) as BoxGen
            }),
            // First-char subscript: 1-based indexing through the string.
            _ => plan.filter_map(move |v| {
                c.fetch_add(1, Ordering::Relaxed);
                gde::ops::index(v, &Value::from(1))
            }),
        };
    }
    (plan, counters)
}

/// Canonical rendering: Debug prints all three string forms identically
/// (quoted text), so representation differences vanish and only meaning
/// remains.
fn rendered(g: &mut dyn Gen) -> Vec<String> {
    g.collect_values()
        .iter()
        .map(|v| format!("{v:?}"))
        .collect()
}

fn counts(cs: &Counters) -> Vec<usize> {
    cs.iter().map(|c| c.load(Ordering::Relaxed)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// The headline property: compact ≡ boxed on random word pipelines —
    /// outputs, per-stage counts, and restart replay.
    #[test]
    fn compact_and_boxed_sources_agree(
        word_recipe in prop::collection::vec(any::<u16>(), 0..24),
        ops in prop::collection::vec((0u8..=6, any::<i64>()), 0..6),
    ) {
        let words: Vec<String> = word_recipe.iter().map(|&n| word(n)).collect();
        let (plan_b, counters_b) = build_plan(&ops);
        let (plan_c, counters_c) = build_plan(&ops);

        let mut boxed = plan_b.instantiate(boxed_source(&words));
        let mut compact = plan_c.instantiate(compact_source(&words));

        let out_b = rendered(&mut *boxed);
        let out_c = rendered(&mut *compact);
        prop_assert_eq!(&out_b, &out_c, "outputs diverged for ops {:?} words {:?}", ops, words);
        prop_assert_eq!(
            counts(&counters_b),
            counts(&counters_c),
            "per-stage counts diverged for ops {:?} words {:?}", ops, words
        );

        // Restart replay: the counting stage is stateful (its table
        // persists across restarts), so the replayed stream need not
        // equal the first pass — but boxed and compact must still move in
        // lockstep.
        boxed.restart();
        compact.restart();
        prop_assert_eq!(
            rendered(&mut *boxed),
            rendered(&mut *compact),
            "restart replay diverged for ops {:?} words {:?}", ops, words
        );
        prop_assert_eq!(
            counts(&counters_b),
            counts(&counters_c),
            "post-restart counts diverged for ops {:?} words {:?}", ops, words
        );
    }

    /// Mutation sanity check: the oracle notices a single dropped word.
    #[test]
    fn dropped_word_mutation_is_caught(
        word_recipe in prop::collection::vec(any::<u16>(), 1..16),
    ) {
        let words: Vec<String> = word_recipe.iter().map(|&n| word(n)).collect();
        let mut full = compact_source(&words);
        let mut truncated = compact_source(&words[..words.len() - 1]);
        let out_full = rendered(&mut *full);
        let out_short = rendered(&mut *truncated);
        prop_assert_ne!(out_full, out_short);
    }
}

// ---------------------------------------------------------------------------
// Targeted regressions
// ---------------------------------------------------------------------------

/// The wordcount shape exactly: split-style slices → numeric parse →
/// arithmetic, compared against the same words boxed.
#[test]
fn wordcount_shape_agrees() {
    let words: Vec<String> = (0..40).map(|i| format!("{}", i * 37)).collect();
    let mk_plan = || {
        StagePlan::new()
            .filter_map(|v| {
                let n = gde::ops::to_num(v)?;
                match n {
                    gde::ops::Num::Int(i) => Some(Value::from(i * 3)),
                    _ => None,
                }
            })
            .map(|v| Value::Real(v.as_int().unwrap_or(0) as f64 * 0.5))
    };
    let mut b = mk_plan().instantiate(boxed_source(&words));
    let mut c = mk_plan().instantiate(compact_source(&words));
    assert_eq!(rendered(&mut *b), rendered(&mut *c));
}

/// A table populated through compact keys is observationally the same
/// table as one populated through boxed keys, probed through either form.
#[test]
fn tables_agree_across_key_forms() {
    let words = ["alpha", "beta", "alpha", "é7", "beta", "alpha"];
    let fill = |mk: &dyn Fn(&str) -> Value| {
        let t = Value::table();
        for w in words {
            let key = mk(w).as_key().unwrap();
            if let Value::Table(h) = &t {
                let mut h = h.lock();
                let n = h.entries.get(&key).and_then(Value::as_int).unwrap_or(0);
                h.entries.insert(key, Value::from(n + 1));
            }
        }
        t
    };
    let line: Arc<str> = Arc::from(words.join(" ").as_str());
    let mut pos = 0usize;
    let mut slice_vals = Vec::new();
    for w in words {
        slice_vals.push(Value::slice(line.clone(), pos, pos + w.len()));
        pos += w.len() + 1;
    }
    let it = std::cell::RefCell::new(slice_vals.into_iter());
    let boxed = fill(&|w| Value::str(w));
    let interned = fill(&|w| Value::interned(w));
    let sliced = fill(&|_| it.borrow_mut().next().unwrap());
    for t in [&boxed, &interned, &sliced] {
        assert_eq!(t.size(), Some(3));
        for (w, want) in [("alpha", 3), ("beta", 2), ("é7", 1)] {
            for probe in [Value::str(w), Value::interned(w)] {
                assert_eq!(
                    gde::ops::index(t, &probe).and_then(|v| v.as_int()),
                    Some(want),
                    "{w} through {probe:?}"
                );
            }
        }
    }
}
