//! Property suite for the promote-to-owned escape hatch.
//!
//! Borrowed string handles ([`Value::slice`]) pin their line buffer — the
//! pipeline's arena — alive. The runtime's claim is that a borrowed
//! handle can never *outlive* that arena, because every escape point a
//! value can take out of its stage promotes it to an owned form first:
//!
//! * storing into a [`Var`] cell (and therefore any `Env` slot,
//!   declaration, assignment, or in-place update);
//! * being used as a table key ([`Value::as_key`]);
//! * crossing a thread boundary ([`Value::deep_copy`], the pipe
//!   producer's isolation step);
//! * deferred bodies capture environments, not raw values, so a deferred
//!   read goes through a `Var` and observes only promoted values.
//!
//! The suite drives random schedules of escape events over words sliced
//! from shared line buffers and asserts, for every schedule: no escaped
//! value is a `Slice`; every escaped value still reads the right text;
//! and once the schedule's local handles drop, every line buffer is freed
//! (checked through `Weak` observers — escaped values do not pin the
//! arena).

use gde::{Env, Value, Var};
use std::sync::{Arc, Weak};
use tinyprop::prelude::*;

/// Deterministic word for a recipe integer (mix of numeric, ASCII and
/// multi-byte text so slice windows land on interesting boundaries).
fn word(n: u16) -> String {
    match n % 3 {
        0 => format!("{}", n),
        1 => format!("w{}", n % 32),
        _ => format!("é{}", n % 8),
    }
}

/// One arena line holding `words`, plus the slice handles into it and a
/// weak observer on the buffer.
fn build_line(words: &[String]) -> (Vec<Value>, Weak<str>) {
    let line: Arc<str> = Arc::from(words.join(" ").as_str());
    let weak = Arc::downgrade(&line);
    let mut out = Vec::with_capacity(words.len());
    let mut pos = 0usize;
    for w in words {
        out.push(Value::slice(line.clone(), pos, pos + w.len()));
        pos += w.len() + 1;
    }
    (out, weak)
}

/// Assert an escaped value upholds the invariant: owned form, right text.
fn assert_promoted(v: &Value, want: &str, how: &str) {
    assert!(
        !matches!(v, Value::Slice(_)),
        "{how}: a borrowed handle escaped unpromoted"
    );
    assert_eq!(v.as_str(), Some(want), "{how}: text corrupted by promotion");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Random schedules of escape events: whatever route a word takes out
    /// of its stage, the stored form is owned, reads back exactly, and
    /// the arena is released as soon as the pipeline-local handles drop.
    #[test]
    fn no_borrowed_handle_outlives_its_arena(
        word_recipe in prop::collection::vec(any::<u16>(), 1..12),
        routes in prop::collection::vec(0u8..=4, 1..12),
    ) {
        let words: Vec<String> = word_recipe.iter().map(|&n| word(n)).collect();
        let (slices, weak) = build_line(&words);

        // Escaped values outlive the local slice handles below.
        let mut escaped: Vec<(Value, String)> = Vec::new();
        let env = Env::root();
        let table = Value::table();

        for (i, v) in slices.into_iter().enumerate() {
            let text = words[i % words.len()].clone();
            match routes[i % routes.len()] {
                // Env declaration: slot storage goes through Var::new.
                0 => {
                    let cell = env.declare(&format!("x{i}"), v);
                    escaped.push((cell.get(), text));
                }
                // Bare Var assignment.
                1 => {
                    let cell = Var::null();
                    cell.set(v);
                    escaped.push((cell.get(), text));
                }
                // In-place update writing a borrowed handle.
                2 => {
                    let cell = Var::new(Value::Null);
                    cell.update(move |slot| *slot = v);
                    escaped.push((cell.get(), text));
                }
                // Table key: the key escapes into the table's storage.
                3 => {
                    if let (Some(key), Value::Table(t)) = (v.as_key(), &table) {
                        t.lock().entries.insert(key, Value::from(i as i64));
                    }
                    // Probe through an owned key; the entry must exist.
                    let got = gde::ops::index(&table, &Value::str(&text));
                    prop_assert!(got.is_some(), "table lost key {text}");
                }
                // Thread-boundary isolation (the pipe producer's step).
                _ => {
                    escaped.push((v.deep_copy(), text));
                }
            }
        }

        for (v, want) in &escaped {
            assert_promoted(v, want, "escape route");
        }

        // All local slice handles are gone; only escaped (promoted)
        // values and the env/table remain. The arena must be free.
        prop_assert!(
            weak.upgrade().is_none(),
            "escaped values still pin their line buffer (words {:?})",
            words
        );
    }

    /// Deferred-body reads go through `Var` cells, so a body resumed long
    /// after its pipeline finished observes only promoted values.
    #[test]
    fn deferred_bodies_observe_promoted_values(
        word_recipe in prop::collection::vec(any::<u16>(), 1..8),
    ) {
        let words: Vec<String> = word_recipe.iter().map(|&n| word(n)).collect();
        let (slices, weak) = build_line(&words);

        let env = Env::root();
        for (i, v) in slices.into_iter().enumerate() {
            env.declare(&format!("w{i}"), v);
        }
        // The pipeline is gone; the environment (and any deferred body
        // closing over it) lives on, without pinning the arena.
        prop_assert!(weak.upgrade().is_none(), "env capture pinned the arena");
        for (i, w) in words.iter().enumerate() {
            let got = env.get(&format!("w{i}"));
            assert_promoted(&got, w, "deferred env read");
        }
    }
}

/// Restart-replay: a generator that re-slices its line on every restart
/// keeps its escapes sound across replays (the arena of a *previous*
/// replay is never pinned by values escaped during it).
#[test]
fn restart_replay_escapes_stay_sound() {
    let words: Vec<String> = (0..6).map(|i| format!("r{i}")).collect();
    let cell = Var::null();
    let mut weaks = Vec::new();
    for _replay in 0..3 {
        let (slices, weak) = build_line(&words);
        weaks.push(weak);
        for v in slices {
            cell.set(v);
        }
        assert_promoted(&cell.get(), words.last().unwrap(), "replay escape");
    }
    for (i, weak) in weaks.iter().enumerate() {
        assert!(
            weak.upgrade().is_none(),
            "replay {i}'s arena is still pinned"
        );
    }
}
