//! Property-based tests for the generator combinators: the algebraic laws
//! of goal-directed composition, checked over random operand sequences.

use gde::comb::{alt_all, bind, limit, product, product_map, to_range, values};
use gde::{BoxGen, Gen, GenExt, Value, Var};
use tinyprop::prelude::*;

fn int_values(xs: &[i64]) -> Vec<Value> {
    xs.iter().map(|&x| Value::from(x)).collect()
}

fn drain_ints(g: &mut dyn gde::Gen) -> Vec<i64> {
    g.collect_values()
        .iter()
        .map(|v| v.as_int().expect("int"))
        .collect()
}

proptest! {
    /// `values(xs)` generates exactly xs.
    #[test]
    fn values_roundtrip(xs in prop::collection::vec(-1000i64..1000, 0..20)) {
        let mut g = values(int_values(&xs));
        prop_assert_eq!(drain_ints(&mut g), xs);
    }

    /// Restart always reproduces the same sequence (determinism of the
    /// restart contract).
    #[test]
    fn restart_reproduces(xs in prop::collection::vec(-100i64..100, 0..20)) {
        let mut g = values(int_values(&xs));
        let first = drain_ints(&mut g);
        g.restart();
        let second = drain_ints(&mut g);
        prop_assert_eq!(first, second);
    }

    /// Alternation concatenates: |a| + |b| results, in order.
    #[test]
    fn alt_is_concatenation(
        a in prop::collection::vec(-100i64..100, 0..10),
        b in prop::collection::vec(-100i64..100, 0..10),
    ) {
        let mut g = alt_all(vec![
            Box::new(values(int_values(&a))) as BoxGen,
            Box::new(values(int_values(&b))),
        ]);
        let mut expect = a.clone();
        expect.extend_from_slice(&b);
        prop_assert_eq!(drain_ints(&mut g), expect);
    }

    /// The product generates |a| * |b| results — the cross-product
    /// cardinality law — and every right value appears once per left value.
    #[test]
    fn product_cardinality(
        a in prop::collection::vec(0i64..50, 0..8),
        b in prop::collection::vec(0i64..50, 0..8),
    ) {
        let bv = b.clone();
        let mut g = product_map(
            values(int_values(&a)),
            move |_| Box::new(values(int_values(&bv))) as BoxGen,
            gde::ops::add,
        );
        let got = drain_ints(&mut g);
        prop_assert_eq!(got.len(), a.len() * b.len());
        let expect: Vec<i64> = a
            .iter()
            .flat_map(|x| b.iter().map(move |y| x + y))
            .collect();
        prop_assert_eq!(got, expect);
    }

    /// Limitation truncates: `e \ n` yields min(n, |e|) results, a prefix.
    #[test]
    fn limit_is_prefix(
        xs in prop::collection::vec(-100i64..100, 0..20),
        n in 0usize..30,
    ) {
        let mut g = limit(values(int_values(&xs)), n);
        let got = drain_ints(&mut g);
        let expect: Vec<i64> = xs.iter().copied().take(n).collect();
        prop_assert_eq!(got, expect);
    }

    /// to_range agrees with the native Rust range it models.
    #[test]
    fn to_range_matches_std(from in -50i64..50, to in -50i64..50, by in 1i64..5) {
        let mut g = to_range(from, to, by);
        let expect: Vec<i64> = (from..=to).step_by(by as usize).collect();
        prop_assert_eq!(drain_ints(&mut g), expect);
    }

    /// Bind assigns every generated value in order; the final binding is
    /// the last value.
    #[test]
    fn bind_tracks_last(xs in prop::collection::vec(-100i64..100, 1..20)) {
        let cell = Var::null();
        let mut g = bind(cell.clone(), values(int_values(&xs)));
        let got = drain_ints(&mut g);
        prop_assert_eq!(&got, &xs);
        prop_assert_eq!(cell.get().as_int(), xs.last().copied());
    }

    /// Product with a failing right side yields nothing regardless of the
    /// left (failure annihilates), and the left was still driven.
    #[test]
    fn product_with_empty_right(xs in prop::collection::vec(0i64..10, 0..10)) {
        let mut g = product(
            values(int_values(&xs)),
            gde::comb::fail(),
        );
        prop_assert_eq!(drain_ints(&mut g).len(), 0);
    }

    /// Arithmetic over generated operands equals arithmetic over the
    /// cross product of the sequences — the Sec. II.A semantics.
    #[test]
    fn operator_distributes_over_generation(
        a in prop::collection::vec(-20i64..20, 1..6),
        b in prop::collection::vec(-20i64..20, 1..6),
    ) {
        // (a1|a2|...) * (b1|b2|...) enumerated via the combinator product.
        let bv = b.clone();
        let mut g = product_map(
            values(int_values(&a)),
            move |_| Box::new(values(int_values(&bv))) as BoxGen,
            gde::ops::mul,
        );
        let expect: Vec<i64> = a.iter().flat_map(|x| b.iter().map(move |y| x * y)).collect();
        prop_assert_eq!(drain_ints(&mut g), expect);
    }

    /// Deep copies are structurally equal but independent.
    #[test]
    fn deep_copy_independent(xs in prop::collection::vec(-100i64..100, 0..10)) {
        let original = Value::list(int_values(&xs));
        let copy = original.deep_copy();
        prop_assert_eq!(original.size(), copy.size());
        if let Value::List(l) = &original {
            l.lock().push(Value::from(999));
        }
        prop_assert_eq!(copy.size(), Some(xs.len() as i64));
    }

    /// String→number coercion in ops agrees with Rust parsing for i64s.
    #[test]
    fn coercion_agrees_with_parse(n in any::<i32>()) {
        let s = Value::str(n.to_string());
        let sum = gde::ops::add(&s, &Value::from(0)).expect("numeric string");
        prop_assert_eq!(sum.as_int(), Some(n as i64));
    }
}
