//! Property suite for builder-arena lifetime: no `Value::Built` window
//! outlives its chunk, and no escaped value pins the arena.
//!
//! [`ops::concat`](gde::ops::concat) hands out windows into shared
//! [`gde::StrBuf`] chunks. Like slice handles, these are borrowed: they
//! pin their chunk alive, and every escape route out of a stage must
//! promote them to an owned form first —
//!
//! * storing into a [`Var`] cell (env slots, assignment, in-place update);
//! * being used as a table key ([`Value::as_key`]);
//! * crossing a thread boundary ([`Value::deep_copy`]);
//!
//! The suite drives random schedules of concat results through random
//! escape routes and asserts, for every schedule: no escaped value is
//! borrowed ([`Value::is_borrowed`]); every escaped value reads back the
//! right text; and once the schedule's local handles drop and the
//! thread's builder retires its chunk, every observed chunk is freed —
//! escaped values do not pin the arena.

use gde::{Env, Value, Var};
use std::sync::{Arc, Weak};
use tinyprop::prelude::*;

/// Deterministic word for a recipe integer (numeric, ASCII, multi-byte).
fn word(n: u16) -> String {
    match n % 3 {
        0 => format!("{}", n % 300),
        1 => format!("w{}", n % 32),
        _ => format!("é{}", n % 8),
    }
}

/// Build `word || "-"` through the arena: a `Value::Built` window (plus
/// the expected text), and a weak observer on the chunk it pins.
fn built_value(w: &str) -> (Value, String, Option<Weak<gde::StrBuf>>) {
    let line: Arc<str> = Arc::from(w);
    let v = gde::ops::concat(&Value::slice(line, 0, w.len()), &Value::str("-"))
        .expect("strings concatenate");
    let weak = match &v {
        Value::Built(s) => Some(Arc::downgrade(s.owner())),
        _ => None,
    };
    (v, format!("{w}-"), weak)
}

/// Drop the calling thread's current chunk from the builder: an oversize
/// push forces retirement, so only outstanding windows keep old chunks
/// alive.
fn retire_current_chunk() {
    gde::strbuf::with_builder(|b| {
        let _ = b.push_str(&"x".repeat(1 << 17));
    });
}

/// Assert an escaped value upholds the invariant: owned form, right text.
fn assert_promoted(v: &Value, want: &str, how: &str) {
    assert!(
        !v.is_borrowed(),
        "{how}: a builder window escaped unpromoted"
    );
    assert_eq!(v.as_str(), Some(want), "{how}: text corrupted by promotion");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Random schedules of escape events over arena-built values:
    /// whatever route a concat result takes out of its stage, the stored
    /// form is owned, reads back exactly, and the chunk is released once
    /// the stage-local windows drop.
    #[test]
    fn no_builder_window_outlives_its_chunk(
        word_recipe in prop::collection::vec(any::<u16>(), 1..12),
        routes in prop::collection::vec(0u8..=4, 1..12),
    ) {
        let words: Vec<String> = word_recipe.iter().map(|&n| word(n)).collect();
        let mut escaped: Vec<(Value, String)> = Vec::new();
        let mut weaks: Vec<Weak<gde::StrBuf>> = Vec::new();
        let env = Env::root();
        let table = Value::table();

        for (i, w) in words.iter().enumerate() {
            let (v, text, weak) = built_value(w);
            weaks.extend(weak);
            match routes[i % routes.len()] {
                // Env declaration: slot storage goes through Var::new.
                0 => {
                    let cell = env.declare(&format!("x{i}"), v);
                    escaped.push((cell.get(), text));
                }
                // Bare Var assignment.
                1 => {
                    let cell = Var::null();
                    cell.set(v);
                    escaped.push((cell.get(), text));
                }
                // In-place update writing a builder window.
                2 => {
                    let cell = Var::new(Value::Null);
                    cell.update(move |slot| *slot = v);
                    escaped.push((cell.get(), text));
                }
                // Table key: the key escapes into the table's storage.
                3 => {
                    if let (Some(key), Value::Table(t)) = (v.as_key(), &table) {
                        t.lock().entries.insert(key, Value::from(i as i64));
                    }
                    let got = gde::ops::index(&table, &Value::str(&text));
                    prop_assert!(got.is_some(), "table lost key {}", text);
                }
                // Thread-boundary isolation (the pipe producer's step).
                _ => {
                    escaped.push((v.deep_copy(), text));
                }
            }
        }

        for (v, want) in &escaped {
            assert_promoted(v, want, "escape route");
        }

        // All stage-local windows are gone; only escaped (promoted)
        // values and the env/table remain. Once the thread's builder
        // lets go of the chunk, nothing may pin it.
        retire_current_chunk();
        for (i, weak) in weaks.iter().enumerate() {
            prop_assert!(
                weak.upgrade().is_none(),
                "escaped values still pin chunk {} (words {:?})", i, words
            );
        }
    }

    /// Deep copies of compound values reach *into* structures: a list or
    /// table cell holding a builder window is promoted on the way across
    /// a pipe, and the copy does not pin the arena.
    #[test]
    fn deep_copy_promotes_nested_windows(
        word_recipe in prop::collection::vec(any::<u16>(), 1..8),
    ) {
        let words: Vec<String> = word_recipe.iter().map(|&n| word(n)).collect();
        let mut weaks: Vec<Weak<gde::StrBuf>> = Vec::new();
        let mut items = Vec::new();
        let mut texts = Vec::new();
        for w in &words {
            let (v, text, weak) = built_value(w);
            weaks.extend(weak);
            items.push(v);
            texts.push(text);
        }
        let list = Value::list(items);
        let crossed = list.deep_copy();
        drop(list);
        retire_current_chunk();
        for (i, weak) in weaks.iter().enumerate() {
            prop_assert!(
                weak.upgrade().is_none(),
                "deep copy pinned chunk {} (words {:?})", i, words
            );
        }
        let Value::List(l) = &crossed else {
            panic!("deep copy of a list is a list");
        };
        for (v, want) in l.lock().iter().zip(&texts) {
            assert_promoted(v, want, "nested deep copy");
        }
    }
}

/// Restart-replay: a loop that rebuilds its concat chain every replay
/// keeps its escapes sound, and no previous replay's chunk stays pinned.
#[test]
fn restart_replay_escapes_stay_sound() {
    let cell = Var::null();
    let mut weaks = Vec::new();
    for replay in 0..3 {
        let (v, text, weak) = built_value(&format!("r{replay}"));
        weaks.extend(weak);
        cell.set(v);
        assert_promoted(&cell.get(), &text, "replay escape");
        retire_current_chunk();
    }
    for (i, weak) in weaks.iter().enumerate() {
        assert!(
            weak.upgrade().is_none(),
            "replay {i}'s chunk is still pinned"
        );
    }
}
