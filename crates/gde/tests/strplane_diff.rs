//! Differential suite for the builder-arena string plane.
//!
//! `ops::concat` claims to be a pure *representation* change over the old
//! allocate-per-`||` implementation (kept as [`gde::ops::concat_owned`]):
//! whatever mix of widening, tail extension, and fresh appends a pipeline
//! hits, the texts computed must be byte-identical to the boxed results.
//! This suite generates random word lists and random concat-heavy stage
//! pipelines, builds each pipeline twice — once with the builder-backed
//! `concat`, once with the boxed `concat_owned` — and asserts:
//!
//! * **identical outputs** (rendered value for value, in order);
//! * **identical per-stage evaluation counts** (failure points match);
//! * **identical table contents** through a counting stage keyed by the
//!   concatenated values themselves (builder windows promote to the same
//!   keys owned strings produce);
//! * **identical restart replay**.
//!
//! A mutation sanity check proves the oracle has teeth: with the
//! `ADJACENCY_SKEW` hook enabled, the adjacency fast path widens its
//! window one byte short, and the differential catches it.

use gde::comb::fuse::StagePlan;
use gde::comb::values;
use gde::{BoxGen, Gen, GenExt, Value};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use tinyprop::prelude::*;

/// The skew hook is process-global; every test in this binary serializes
/// on this lock so the mutation check cannot corrupt a concurrent
/// differential run.
static SKEW_LOCK: Mutex<()> = Mutex::new(());

fn skew_guard() -> std::sync::MutexGuard<'static, ()> {
    SKEW_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Deterministic word from a recipe integer: numeric words (coercion +
/// small-int image cache), plain ASCII, and multi-byte text (widening
/// windows must respect char boundaries).
fn word(n: u16) -> String {
    match n % 4 {
        0 => format!("{}", n % 300),
        1 => format!("w{}", n / 4),
        2 => format!("é{}", n % 8),
        _ => format!("x{}", n % 4),
    }
}

/// Words as slice windows into one shared line (every third interned):
/// the form hot generators actually feed `||`.
fn compact_source(words: &[String]) -> BoxGen {
    let line: Arc<str> = Arc::from(words.join(" ").as_str());
    let mut out = Vec::with_capacity(words.len());
    let mut pos = 0usize;
    for (i, w) in words.iter().enumerate() {
        if i % 3 == 2 {
            out.push(Value::interned(w));
        } else {
            out.push(Value::slice(line.clone(), pos, pos + w.len()));
        }
        pos += w.len() + 1;
    }
    Box::new(values(out))
}

type StageOp = (u8, i64);
type Counters = Vec<Arc<AtomicUsize>>;
type ConcatFn = fn(&Value, &Value) -> Option<Value>;

/// Build a concat-heavy [`StagePlan`] from a recipe, parameterized by the
/// concatenation implementation under test. Each call builds independent
/// counters and tables, so a builder and a boxed instance compare stage
/// for stage.
fn build_plan(ops: &[StageOp], cat: ConcatFn) -> (StagePlan, Counters) {
    let mut plan = StagePlan::new();
    let mut counters: Counters = Vec::with_capacity(ops.len());
    for &(code, k) in ops {
        let c = Arc::new(AtomicUsize::new(0));
        counters.push(Arc::clone(&c));
        plan = match code % 7 {
            // Suffix concat: the report-assembly shape (`w || "-t"`).
            // Chained occurrences make the tail-extension regime hot.
            0 => plan.filter_map(move |v| {
                c.fetch_add(1, Ordering::Relaxed);
                cat(v, &Value::str("-t"))
            }),
            // Numeric image concat: the right operand coerces through the
            // small-int cache / stack formatter (`w || count`).
            1 => plan.filter_map(move |v| {
                c.fetch_add(1, Ordering::Relaxed);
                cat(v, &Value::from(k.rem_euclid(300)))
            }),
            // Self concat: both operands alias the same text.
            2 => plan.filter_map(move |v| {
                c.fetch_add(1, Ordering::Relaxed);
                cat(v, v)
            }),
            // Adjacent-window concat: subscripting hands out windows into
            // the value's own owner, so `v[1] || v[2]` is exactly the
            // adjacency-widening fast path (when both chars exist).
            3 => plan.filter_map(move |v| {
                c.fetch_add(1, Ordering::Relaxed);
                let first = gde::ops::index(v, &Value::from(1))?;
                match gde::ops::index(v, &Value::from(2)) {
                    Some(second) => cat(&first, &second),
                    None => Some(first),
                }
            }),
            // Table-key counting: concatenated values escape as keys; the
            // stage emits the running count for its key.
            4 => {
                let table = Value::table();
                plan.filter_map(move |v| {
                    c.fetch_add(1, Ordering::Relaxed);
                    let key = v.as_key()?;
                    let Value::Table(t) = &table else { return None };
                    let mut t = t.lock();
                    let n = t.entries.get(&key).and_then(Value::as_int).unwrap_or(0) + 1;
                    t.entries.insert(key, Value::from(n));
                    Some(Value::from(n))
                })
            }
            // Lexical comparison: coerces through the borrowed text path
            // (`NumBuf`), keeping words below the threshold.
            5 => {
                let threshold = Value::str(word((k.rem_euclid(64)) as u16));
                plan.filter(move |v| {
                    c.fetch_add(1, Ordering::Relaxed);
                    gde::ops::str_lt(v, &threshold).is_some()
                })
            }
            // Explicit promotion: the escape hatch itself as a stage.
            _ => plan.map(move |v| {
                c.fetch_add(1, Ordering::Relaxed);
                v.clone().promote()
            }),
        };
    }
    (plan, counters)
}

/// Canonical rendering: Debug prints every string form as quoted text,
/// so representation differences vanish and only meaning remains.
fn rendered(g: &mut dyn Gen) -> Vec<String> {
    g.collect_values()
        .iter()
        .map(|v| format!("{v:?}"))
        .collect()
}

fn counts(cs: &Counters) -> Vec<usize> {
    cs.iter().map(|c| c.load(Ordering::Relaxed)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// The headline property: builder-backed concat ≡ boxed concat on
    /// random concat-heavy pipelines — outputs, per-stage counts, and
    /// restart replay.
    #[test]
    fn builder_and_boxed_concat_agree(
        word_recipe in prop::collection::vec(any::<u16>(), 0..24),
        ops in prop::collection::vec((0u8..=6, any::<i64>()), 0..6),
    ) {
        let _guard = skew_guard();
        let words: Vec<String> = word_recipe.iter().map(|&n| word(n)).collect();
        let (plan_built, counters_built) = build_plan(&ops, gde::ops::concat);
        let (plan_boxed, counters_boxed) = build_plan(&ops, gde::ops::concat_owned);

        let mut built = plan_built.instantiate(compact_source(&words));
        let mut boxed = plan_boxed.instantiate(compact_source(&words));

        let out_built = rendered(&mut *built);
        let out_boxed = rendered(&mut *boxed);
        prop_assert_eq!(
            &out_built, &out_boxed,
            "outputs diverged for ops {:?} words {:?}", ops, words
        );
        prop_assert_eq!(
            counts(&counters_built),
            counts(&counters_boxed),
            "per-stage counts diverged for ops {:?} words {:?}", ops, words
        );

        // Restart replay: counting stages persist across restarts, so the
        // replay need not equal the first pass — but both concat
        // implementations must move in lockstep.
        built.restart();
        boxed.restart();
        prop_assert_eq!(
            rendered(&mut *built),
            rendered(&mut *boxed),
            "restart replay diverged for ops {:?} words {:?}", ops, words
        );
        prop_assert_eq!(
            counts(&counters_built),
            counts(&counters_boxed),
            "post-restart counts diverged for ops {:?} words {:?}", ops, words
        );
    }
}

/// Resets the skew hook even if the asserting test panics, so one failure
/// cannot cascade into every other test in the binary.
struct SkewReset;
impl Drop for SkewReset {
    fn drop(&mut self) {
        gde::strbuf::set_adjacency_skew(false);
    }
}

/// Mutation sanity check: an off-by-one in adjacency widening is exactly
/// the kind of bug this differential exists to catch. With the skew hook
/// on, `v[1] || v[2]` over a shared owner comes back one byte short, and
/// the boxed oracle disagrees.
#[test]
fn adjacency_off_by_one_is_caught() {
    let _guard = skew_guard();
    let _reset = SkewReset;

    let line: Arc<str> = Arc::from("hello world");
    let v = Value::slice(line, 0, 5); // "hello"
    let a = gde::ops::index(&v, &Value::from(1)).unwrap(); // "h"
    let b = gde::ops::index(&v, &Value::from(2)).unwrap(); // "e"

    // Sanity: with the hook off, the fast path is exact.
    let good = gde::ops::concat(&a, &b).unwrap();
    assert_eq!(good.as_str(), Some("he"));
    assert_eq!(
        format!("{good:?}"),
        format!("{:?}", gde::ops::concat_owned(&a, &b).unwrap())
    );

    // With the hook on, the widened window drops its last byte — and the
    // differential oracle notices.
    gde::strbuf::set_adjacency_skew(true);
    let skewed = gde::ops::concat(&a, &b).unwrap();
    let oracle = gde::ops::concat_owned(&a, &b).unwrap();
    assert_ne!(
        format!("{skewed:?}"),
        format!("{oracle:?}"),
        "skewed adjacency widening must diverge from the boxed oracle"
    );
    assert_eq!(skewed.as_str(), Some("h"));
}

/// The report-assembly shape exactly: `word || "=" || count` chains, the
/// concat sequence `wordcount::embedded::frequency_report` performs.
#[test]
fn report_chains_agree() {
    let _guard = skew_guard();
    let words: Vec<String> = (0..40).map(|i| format!("w{}", i % 7)).collect();
    let eq = Value::interned("=");
    let chain = |cat: ConcatFn| -> Vec<String> {
        let mut src = compact_source(&words);
        let mut out = Vec::new();
        let mut n = 0i64;
        while let Some(w) = src.next_value() {
            n += 1;
            let line = cat(&w, &eq)
                .and_then(|l| cat(&l, &Value::from(n % 260)))
                .unwrap();
            out.push(line.to_string());
        }
        out
    };
    assert_eq!(chain(gde::ops::concat), chain(gde::ops::concat_owned));
}
