//! Differential property suite for combinator stage fusion.
//!
//! `gde::comb::fuse` claims that fusing a pipeline ([`StagePlan::fuse`])
//! is a pure rewrite of the one-node-per-stage tree
//! ([`StagePlan::instantiate_unfused`]). This suite generates random
//! stage pipelines — arbitrary map/filter/filter_map/flat compositions,
//! including always-failing stages, empty flat expansions, and empty or
//! immediately-failing sources — and runs each both ways, asserting:
//!
//! * **identical outputs** (value for value, in order);
//! * **identical failure points**: every stage closure carries an
//!   invocation counter, and the per-stage counts must match exactly — a
//!   fused closure that evaluated a stage one extra time (or stopped one
//!   input early) diverges here even when the output streams agree;
//! * **identical restart behavior**: both pipelines restart and replay to
//!   the same stream and the same counts;
//! * **identical item counts through the obs counters** (with the `obs`
//!   feature on): fusing bumps `gde.comb.fused_stages` by exactly the
//!   dispatch seams the plan's shape predicts, and `fusion_barriers` by
//!   its flat-stage count — so fusion silently not happening is itself a
//!   failure.
//!
//! A mutation sanity check at the bottom proves the oracle has teeth: an
//! off-by-one injected into the fused closure's skip path (the classic
//! "value after a rejection leaks through raw" bug, available to tests as
//! `fuse::fuse_with_skip_mutation`) is caught as a divergence.

use gde::comb::fuse::{fuse_with_skip_mutation, StagePlan};
use gde::comb::{fail, to_range, values};
use gde::{BoxGen, GenExt, Value};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use tinyprop::prelude::*;

// ---------------------------------------------------------------------------
// Pipeline generator
// ---------------------------------------------------------------------------
//
// A pipeline is rendered from a vector of small opcode tuples, like the
// resolver suite's program generator: every recipe is valid by
// construction, and shrinking the vector shrinks the pipeline stage by
// stage.

/// One stage recipe: (opcode, parameter).
type StageOp = (u8, i64);

/// Per-stage invocation counters, shared between a plan and the test.
type Counters = Vec<Arc<AtomicUsize>>;

/// Build a [`StagePlan`] from a recipe, instrumenting every stage closure
/// with an invocation counter. Two calls with the same recipe build
/// independent counter sets, so a fused and an unfused instance can be
/// compared stage for stage.
fn build_plan(ops: &[StageOp]) -> (StagePlan, Counters) {
    let mut plan = StagePlan::new();
    let mut counters: Counters = Vec::with_capacity(ops.len());
    for &(code, k) in ops {
        let c = Arc::new(AtomicUsize::new(0));
        counters.push(Arc::clone(&c));
        let m = k.rem_euclid(5) + 1; // 1..=5
        plan = match code % 8 {
            // Total arithmetic map.
            0 => plan.map(move |v| {
                c.fetch_add(1, Ordering::Relaxed);
                Value::from(
                    v.as_int()
                        .unwrap_or(0)
                        .wrapping_mul(m)
                        .wrapping_add(k % 100),
                )
            }),
            // Modulus filter (drops a data-dependent subset).
            1 => plan.filter(move |v| {
                c.fetch_add(1, Ordering::Relaxed);
                v.as_int().unwrap_or(0).rem_euclid(m) != 0
            }),
            // Filter-map: transform half the inputs, reject the rest.
            2 => plan.filter_map(move |v| {
                c.fetch_add(1, Ordering::Relaxed);
                let n = v.as_int()?;
                (n.rem_euclid(2) == 0).then(|| Value::from(n / 2 + m))
            }),
            // Always-failing stage: prunes the whole stream from here on.
            3 => plan.filter_map(move |_| {
                c.fetch_add(1, Ordering::Relaxed);
                None
            }),
            // Pass-everything filter (identity with a side-effect count).
            4 => plan.filter(move |_| {
                c.fetch_add(1, Ordering::Relaxed);
                true
            }),
            // Flat: expand each value to a small data-dependent range
            // (empty for some inputs) — the fusion barrier.
            5 => plan.flat(move |v| {
                c.fetch_add(1, Ordering::Relaxed);
                let n = v.as_int().unwrap_or(0).rem_euclid(m + 1);
                Box::new(to_range(1, n, 1)) as BoxGen
            }),
            // Flat that always expands to nothing.
            6 => plan.flat(move |_| {
                c.fetch_add(1, Ordering::Relaxed);
                Box::new(fail()) as BoxGen
            }),
            // Negating map (exercises sign handling in later stages).
            _ => plan.map(move |v| {
                c.fetch_add(1, Ordering::Relaxed);
                Value::from(v.as_int().unwrap_or(0).wrapping_neg())
            }),
        };
    }
    (plan, counters)
}

/// Build the source generator for a recipe: a value list, a range, an
/// empty stream, or an immediate failure.
fn build_source(kind: u8, len: i64) -> BoxGen {
    let len = len.rem_euclid(9);
    match kind % 4 {
        0 => Box::new(values((0..len).map(|i| Value::from(i * 3 - 7)).collect())),
        1 => Box::new(to_range(-2, len, 1)),
        2 => Box::new(values(Vec::new())),
        _ => Box::new(fail()),
    }
}

fn ints(g: &mut dyn gde::Gen) -> Vec<Option<i64>> {
    g.collect_values().iter().map(|v| v.as_int()).collect()
}

/// The obs counters are process-global; tests that fuse plans while
/// another test measures counter deltas must not interleave. (Only the
/// delta *measurement* needs the lock, but taking it in every fusing
/// test keeps the invariant local.)
static OBS_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn counts(cs: &Counters) -> Vec<usize> {
    cs.iter().map(|c| c.load(Ordering::Relaxed)).collect()
}

/// The dispatch seams and barriers `fuse()` must report for a recipe:
/// a standalone monogenic run of `k` stages collapses k nodes into one
/// (k−1 seams); a run directly after a flat barrier is absorbed into the
/// barrier node (k seams); every flat stage is one barrier.
fn expected_obs(ops: &[StageOp]) -> (u64, u64) {
    let (mut seams, mut barriers) = (0u64, 0u64);
    let mut run = 0u64;
    let mut after_flat = false;
    for &(code, _) in ops {
        if code % 8 == 5 || code % 8 == 6 {
            if run > 0 {
                seams += if after_flat { run } else { run - 1 };
                run = 0;
            }
            barriers += 1;
            after_flat = true;
        } else {
            run += 1;
        }
    }
    if run > 0 {
        seams += if after_flat { run } else { run - 1 };
    }
    (seams, barriers)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// The headline property: a fused pipeline is observationally
    /// identical to the stage-per-node tree — outputs, per-stage
    /// evaluation counts (= failure points), and restart replay.
    #[test]
    fn fused_and_unfused_pipelines_agree(
        ops in prop::collection::vec((0u8..=7, any::<i64>()), 0..8),
        src_kind in 0u8..=3,
        src_len in any::<i64>(),
    ) {
        let _obs_guard = OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let (plan_f, counters_f) = build_plan(&ops);
        let (plan_u, counters_u) = build_plan(&ops);

        #[cfg(feature = "obs")]
        let seams_before = obs::counter("gde.comb.fused_stages").get();
        #[cfg(feature = "obs")]
        let barriers_before = obs::counter("gde.comb.fusion_barriers").get();

        let mut fused = plan_f.instantiate(build_source(src_kind, src_len));
        let mut unfused = plan_u.instantiate_unfused(build_source(src_kind, src_len));

        // Fusion is visible in the obs counters, and by exactly the
        // amount the plan's shape predicts.
        #[cfg(feature = "obs")]
        {
            let (want_seams, want_barriers) = expected_obs(&ops);
            prop_assert_eq!(
                obs::counter("gde.comb.fused_stages").get() - seams_before,
                want_seams,
                "fused_stages delta for ops {:?}", ops
            );
            prop_assert_eq!(
                obs::counter("gde.comb.fusion_barriers").get() - barriers_before,
                want_barriers,
                "fusion_barriers delta for ops {:?}", ops
            );
        }
        #[cfg(not(feature = "obs"))]
        let _ = expected_obs(&ops);

        // Identical outputs.
        let out_f = ints(&mut *fused);
        let out_u = ints(&mut *unfused);
        prop_assert_eq!(&out_f, &out_u, "outputs diverged for ops {:?}", ops);

        // Identical per-stage evaluation counts: the fused closure hit
        // every stage exactly as often as the stage-per-node tree, so
        // failure points and side-effect order match.
        prop_assert_eq!(
            counts(&counters_f),
            counts(&counters_u),
            "per-stage counts diverged for ops {:?}", ops
        );

        // Restart replay: both rewind to the same stream and stay in
        // lockstep on evaluation counts.
        fused.restart();
        unfused.restart();
        prop_assert_eq!(ints(&mut *fused), out_u.clone(), "fused restart replay diverged");
        prop_assert_eq!(ints(&mut *unfused), out_u, "unfused restart replay diverged");
        prop_assert_eq!(
            counts(&counters_f),
            counts(&counters_u),
            "post-restart counts diverged for ops {:?}", ops
        );
    }

    /// Mutation sanity check: the suite's oracle catches the classic
    /// fused-skip off-by-one. `fuse_with_skip_mutation` composes the same
    /// plan but leaks the value following every rejection through the
    /// closure raw; any pipeline that rejects a value and then transforms
    /// the next one must diverge in outputs or stage counts.
    #[test]
    fn skip_path_mutation_is_caught(
        reject_mod in 2i64..5,
        scale in 2i64..6,
    ) {
        let _obs_guard = OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let c = Arc::new(AtomicUsize::new(0));
        let c2 = Arc::clone(&c);
        let plan = StagePlan::new()
            .filter(move |v| v.as_int().unwrap_or(0).rem_euclid(reject_mod) != 0)
            .map(move |v| {
                c2.fetch_add(1, Ordering::Relaxed);
                Value::from(v.as_int().unwrap_or(0).wrapping_mul(scale))
            });
        let mut honest = plan.instantiate(Box::new(to_range(0, 16, 1)));
        let mut mutant = fuse_with_skip_mutation(&plan).instantiate(Box::new(to_range(0, 16, 1)));
        let out_honest = ints(&mut *honest);
        let out_mutant = ints(&mut *mutant);
        // (If this ever passes, the oracle failed to catch the mutant.)
        prop_assert_ne!(out_honest, out_mutant);
    }
}

// ---------------------------------------------------------------------------
// Targeted regressions (fixed pipelines for each fusion shape)
// ---------------------------------------------------------------------------

fn assert_agree(plan: &StagePlan, mk_src: impl Fn() -> BoxGen) {
    let mut fused = plan.instantiate(mk_src());
    let mut unfused = plan.instantiate_unfused(mk_src());
    assert_eq!(ints(&mut *fused), ints(&mut *unfused));
}

#[test]
fn empty_source_through_a_deep_monogenic_run() {
    let _obs_guard = OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let plan = StagePlan::new()
        .map(|v| v.clone())
        .filter(|_| true)
        .filter_map(|v| Some(v.clone()))
        .map(|v| v.clone());
    assert_agree(&plan, || Box::new(values(Vec::new())) as BoxGen);
}

#[test]
fn failing_stage_prunes_identically_mid_run() {
    // map | always-fail | map: the trailing map must never run, fused or
    // not.
    let _obs_guard = OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let tail = Arc::new(AtomicUsize::new(0));
    let (t1, t2) = (Arc::clone(&tail), Arc::clone(&tail));
    let mk = |t: Arc<AtomicUsize>| {
        StagePlan::new()
            .map(|v| Value::from(v.as_int().unwrap_or(0) + 1))
            .filter_map(|_| None)
            .map(move |v| {
                t.fetch_add(1, Ordering::Relaxed);
                v.clone()
            })
    };
    let mut fused = mk(t1).instantiate(Box::new(to_range(1, 10, 1)));
    let mut unfused = mk(t2).instantiate_unfused(Box::new(to_range(1, 10, 1)));
    assert_eq!(ints(&mut *fused), Vec::<Option<i64>>::new());
    assert_eq!(ints(&mut *unfused), Vec::<Option<i64>>::new());
    assert_eq!(
        tail.load(Ordering::Relaxed),
        0,
        "stage after a total failure ran"
    );
}

#[test]
fn flat_barriers_split_runs_without_changing_results() {
    // run | flat | run | flat | run: three fused segments, same stream.
    let _obs_guard = OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let plan = StagePlan::new()
        .map(|v| Value::from(v.as_int().unwrap_or(0) * 2))
        .flat(|v| {
            let n = v.as_int().unwrap_or(0).rem_euclid(4);
            Box::new(to_range(0, n, 1)) as BoxGen
        })
        .filter(|v| v.as_int().unwrap_or(0) != 1)
        .flat(|v| Box::new(values(vec![v.clone(), v.clone()])) as BoxGen)
        .map(|v| Value::from(v.as_int().unwrap_or(0) - 1));
    assert_eq!(plan.fuse().segment_count(), 3);
    assert_agree(&plan, || Box::new(to_range(1, 6, 1)) as BoxGen);
}

#[test]
fn empty_flat_expansions_do_not_stall_the_fused_node() {
    // Every input expands to nothing: the FlatFused node must keep
    // pulling from the left generator instead of spinning or failing.
    let _obs_guard = OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let plan = StagePlan::new()
        .flat(|_| Box::new(fail()) as BoxGen)
        .map(|v| v.clone());
    assert_agree(&plan, || Box::new(to_range(1, 8, 1)) as BoxGen);
}
