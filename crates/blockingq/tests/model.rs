//! Model-based property tests: the blocking queue against a plain
//! `VecDeque` reference model (single-threaded op sequences), plus
//! randomized multi-threaded conservation checks.

use blockingq::{BlockingQueue, TryPutError, TryTakeError};
use std::collections::VecDeque;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use tinyprop::prelude::*;

/// One operation in a generated scenario.
#[derive(Clone, Debug)]
enum Op {
    TryPut(i64),
    TryTake,
    Close,
    Len,
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => any::<i64>().prop_map(Op::TryPut),
        4 => Just(Op::TryTake),
        1 => Just(Op::Close),
        1 => Just(Op::Len),
    ]
}

/// How a stress consumer pulls from the queue — one of the three blocking
/// take shapes, so generated schedules interleave all of them.
fn consume(queue: &BlockingQueue<(u8, u64)>, mode: usize) -> Vec<(u8, u64)> {
    let mut seen = Vec::new();
    match mode % 3 {
        // Item-at-a-time.
        0 => {
            while let Some(v) = queue.take() {
                seen.push(v);
            }
        }
        // Bounded batches, cycling through small maxima.
        1 => {
            let mut max = 1;
            while let Some(chunk) = queue.take_batch(max) {
                seen.extend(chunk);
                max = max % 7 + 1;
            }
        }
        // Whole-buffer drains.
        _ => {
            let mut buf = Vec::new();
            while queue.drain_into(&mut buf) > 0 {
                seen.append(&mut buf);
            }
        }
    }
    seen
}

proptest! {
    /// The queue behaves exactly like a capacity-bounded VecDeque with a
    /// closed flag, under any sequence of non-blocking operations.
    #[test]
    fn matches_reference_model(
        capacity in 1usize..8,
        ops in prop::collection::vec(arb_op(), 0..60),
    ) {
        let q: BlockingQueue<i64> = BlockingQueue::bounded(capacity);
        let mut model: VecDeque<i64> = VecDeque::new();
        let mut closed = false;

        for op in ops {
            match op {
                Op::TryPut(v) => {
                    let got = q.try_put(v);
                    if closed {
                        prop_assert_eq!(got, Err(TryPutError::Closed(v)));
                    } else if model.len() >= capacity {
                        prop_assert_eq!(got, Err(TryPutError::Full(v)));
                    } else {
                        prop_assert_eq!(got, Ok(()));
                        model.push_back(v);
                    }
                }
                Op::TryTake => {
                    let got = q.try_take();
                    match model.pop_front() {
                        Some(v) => prop_assert_eq!(got, Ok(v)),
                        None if closed => prop_assert_eq!(got, Err(TryTakeError::Closed)),
                        None => prop_assert_eq!(got, Err(TryTakeError::Empty)),
                    }
                }
                Op::Close => {
                    q.close();
                    closed = true;
                }
                Op::Len => {
                    prop_assert_eq!(q.len(), model.len());
                    prop_assert_eq!(q.is_empty(), model.is_empty());
                    prop_assert_eq!(q.is_closed(), closed);
                }
            }
        }
        // Drain after close: exactly the model's remainder, in order.
        q.close();
        let drained: Vec<i64> = q.iter().collect();
        let expected: Vec<i64> = model.into_iter().collect();
        prop_assert_eq!(drained, expected);
    }

    /// Conservation under concurrency: every element put by any producer
    /// is taken exactly once by some consumer, for random thread/queue
    /// shapes.
    #[test]
    fn concurrent_conservation(
        capacity in 1usize..16,
        producers in 1usize..4,
        per_producer in 1u64..200,
    ) {
        let q: BlockingQueue<u64> = BlockingQueue::bounded(capacity);
        let mut handles = Vec::new();
        for p in 0..producers {
            let q = q.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..per_producer {
                    q.put(p as u64 * 1_000_000 + i).expect("queue open");
                }
            }));
        }
        let consumer = {
            let q = q.clone();
            std::thread::spawn(move || {
                let mut seen = Vec::new();
                while let Some(v) = q.take() {
                    seen.push(v);
                }
                seen
            })
        };
        for h in handles {
            h.join().expect("producer ok");
        }
        q.close();
        let mut seen = consumer.join().expect("consumer ok");
        seen.sort_unstable();
        let mut expect: Vec<u64> = (0..producers as u64)
            .flat_map(|p| (0..per_producer).map(move |i| p * 1_000_000 + i))
            .collect();
        expect.sort_unstable();
        prop_assert_eq!(seen, expect);
    }

    /// Per-producer FIFO: even with multiple producers, each producer's
    /// own elements arrive in its send order.
    #[test]
    fn per_producer_order_is_preserved(per in 1u64..300) {
        let q: BlockingQueue<(u8, u64)> = BlockingQueue::bounded(4);
        let producers: Vec<_> = (0..2u8)
            .map(|id| {
                let q = q.clone();
                std::thread::spawn(move || {
                    for i in 0..per {
                        q.put((id, i)).expect("open");
                    }
                })
            })
            .collect();
        let q2 = q.clone();
        let consumer = std::thread::spawn(move || {
            let mut last: [Option<u64>; 2] = [None, None];
            while let Some((id, i)) = q2.take() {
                let slot = &mut last[id as usize];
                assert!(slot.is_none_or(|prev| i > prev), "out of order for {id}");
                *slot = Some(i);
            }
            last
        });
        for p in producers {
            p.join().expect("producer ok");
        }
        q.close();
        let last = consumer.join().expect("consumer ok");
        prop_assert_eq!(last, [Some(per - 1), Some(per - 1)]);
    }

    /// Interleaved-schedule stress: N producers × M consumers, each
    /// producer mixing single `put`s with `put_all` chunks (sizes cycling
    /// through a generated pattern), each consumer using a different
    /// blocking take shape (`take` / `take_batch` / `drain_into`).
    /// Invariants, for every schedule the OS happens to produce:
    /// conservation (every element arrives exactly once — no loss, no
    /// duplication) and per-producer FIFO within each consumer's local
    /// stream.
    #[test]
    fn mixed_batch_schedules_conserve_and_order(
        capacity in 1usize..16,
        producers in 1usize..4,
        consumers in 1usize..4,
        per_producer in 1u64..200,
        pattern in prop::collection::vec(1usize..9, 1..5),
    ) {
        let q: BlockingQueue<(u8, u64)> = BlockingQueue::bounded(capacity);
        let mut handles = Vec::new();
        for p in 0..producers {
            let q = q.clone();
            let pattern = pattern.clone();
            handles.push(std::thread::spawn(move || {
                let mut next = 0u64;
                let mut pi = p; // offset the pattern per producer
                while next < per_producer {
                    let n = pattern[pi % pattern.len()].min((per_producer - next) as usize);
                    pi += 1;
                    if n == 1 {
                        q.put((p as u8, next)).expect("queue open");
                        next += 1;
                    } else {
                        let chunk: Vec<(u8, u64)> =
                            (next..next + n as u64).map(|i| (p as u8, i)).collect();
                        next += n as u64;
                        q.put_all(chunk).expect("queue open");
                    }
                }
            }));
        }
        let takers: Vec<_> = (0..consumers)
            .map(|c| {
                let q = q.clone();
                std::thread::spawn(move || consume(&q, c))
            })
            .collect();
        for h in handles {
            h.join().expect("producer ok");
        }
        q.close();
        let mut all: Vec<(u8, u64)> = Vec::new();
        for t in takers {
            let local = t.join().expect("consumer ok");
            // Per-producer FIFO within this consumer's local stream.
            let mut last: Vec<Option<u64>> = vec![None; producers];
            for &(id, i) in &local {
                let slot = &mut last[id as usize];
                prop_assert!(
                    slot.is_none_or(|prev| i > prev),
                    "consumer saw producer {} out of order", id
                );
                *slot = Some(i);
            }
            all.extend(local);
        }
        // Conservation: exactly the produced multiset, no dup, no loss.
        all.sort_unstable();
        let expect: Vec<(u8, u64)> = (0..producers as u8)
            .flat_map(|p| (0..per_producer).map(move |i| (p, i)))
            .collect();
        prop_assert_eq!(all, expect);
    }

    /// Close-under-fire accounting: a closer thread slams the queue shut
    /// while producers are mid-stream (some blocked inside a straddling
    /// `put_all`). For every producer, the consumed items must be a
    /// *prefix* of its sequence and the refunded suffix must resume
    /// exactly where consumption stopped: consumed ++ refunded ++
    /// never-attempted == the original sequence. Total conservation:
    /// puts == takes + refunds.
    #[test]
    fn close_under_fire_refunds_exact_suffixes(
        capacity in 1usize..8,
        producers in 1usize..4,
        chunk_size in 1usize..12,
        close_after in 0u64..64,
    ) {
        let q: BlockingQueue<(u8, u64)> = BlockingQueue::bounded(capacity);
        let total_per_producer = 400u64;
        let remaining = Arc::new(std::sync::atomic::AtomicUsize::new(producers));
        let mut handles = Vec::new();
        for p in 0..producers {
            let q = q.clone();
            let remaining = Arc::clone(&remaining);
            handles.push(std::thread::spawn(move || {
                let mut refunded: Vec<(u8, u64)> = Vec::new();
                let mut sent = 0u64;
                'send: while sent < total_per_producer {
                    let n = (chunk_size as u64).min(total_per_producer - sent);
                    let chunk: Vec<(u8, u64)> =
                        (sent..sent + n).map(|i| (p as u8, i)).collect();
                    sent += n;
                    if let Err(e) = q.put_all(chunk) {
                        // Whatever the queue did not accept comes back;
                        // everything after it was never attempted.
                        refunded = e.0;
                        break 'send;
                    }
                }
                // If the closer never fires, the last producer out closes
                // (close is idempotent) so the run always terminates.
                if remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
                    q.close();
                }
                (sent, refunded)
            }));
        }
        let closer = {
            let q = q.clone();
            std::thread::spawn(move || {
                // Let roughly `close_after` items through, then slam shut.
                // The running tally is a racy heuristic — precision is not
                // needed, only that close lands at varied points mid-run.
                let mut seen = 0u64;
                while seen < close_after && !q.is_closed() {
                    seen += q.len() as u64;
                    std::thread::yield_now();
                }
                q.close();
            })
        };
        let consumed: Vec<(u8, u64)> = {
            let q = q.clone();
            std::thread::spawn(move || {
                let mut seen = Vec::new();
                let mut buf = Vec::new();
                while q.drain_into(&mut buf) > 0 {
                    seen.append(&mut buf);
                }
                seen
            })
            .join()
            .expect("consumer ok")
        };
        let mut attempted_totals = 0u64;
        let mut refunds: Vec<Vec<(u8, u64)>> = vec![Vec::new(); producers];
        for (p, h) in handles.into_iter().enumerate() {
            let (sent, refunded) = h.join().expect("producer ok");
            attempted_totals += sent;
            refunds[p] = refunded;
        }
        closer.join().expect("closer ok");
        // Split consumption per producer; FIFO makes each a sorted run.
        let mut consumed_per: Vec<Vec<(u8, u64)>> = vec![Vec::new(); producers];
        for v in consumed {
            consumed_per[v.0 as usize].push(v);
        }
        let mut accounted = 0u64;
        for p in 0..producers {
            let got = &consumed_per[p];
            // Consumed is exactly the prefix 0..got.len() of p's sequence.
            for (k, &(id, i)) in got.iter().enumerate() {
                prop_assert_eq!((id, i), (p as u8, k as u64), "gap or dup in producer {}", p);
            }
            // Refund resumes exactly where consumption stopped.
            for (k, &(id, i)) in refunds[p].iter().enumerate() {
                prop_assert_eq!(
                    (id, i),
                    (p as u8, (got.len() + k) as u64),
                    "refund for producer {} is not the straddle suffix", p
                );
            }
            accounted += (got.len() + refunds[p].len()) as u64;
        }
        // Conservation: every attempted item was either taken or refunded.
        prop_assert_eq!(accounted, attempted_totals);
    }
}
