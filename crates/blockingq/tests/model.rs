//! Model-based property tests: the blocking queue against a plain
//! `VecDeque` reference model (single-threaded op sequences), plus
//! randomized multi-threaded conservation checks.

use blockingq::{BlockingQueue, TryPutError, TryTakeError};
use std::collections::VecDeque;
use tinyprop::prelude::*;

/// One operation in a generated scenario.
#[derive(Clone, Debug)]
enum Op {
    TryPut(i64),
    TryTake,
    Close,
    Len,
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => any::<i64>().prop_map(Op::TryPut),
        4 => Just(Op::TryTake),
        1 => Just(Op::Close),
        1 => Just(Op::Len),
    ]
}

proptest! {
    /// The queue behaves exactly like a capacity-bounded VecDeque with a
    /// closed flag, under any sequence of non-blocking operations.
    #[test]
    fn matches_reference_model(
        capacity in 1usize..8,
        ops in prop::collection::vec(arb_op(), 0..60),
    ) {
        let q: BlockingQueue<i64> = BlockingQueue::bounded(capacity);
        let mut model: VecDeque<i64> = VecDeque::new();
        let mut closed = false;

        for op in ops {
            match op {
                Op::TryPut(v) => {
                    let got = q.try_put(v);
                    if closed {
                        prop_assert_eq!(got, Err(TryPutError::Closed(v)));
                    } else if model.len() >= capacity {
                        prop_assert_eq!(got, Err(TryPutError::Full(v)));
                    } else {
                        prop_assert_eq!(got, Ok(()));
                        model.push_back(v);
                    }
                }
                Op::TryTake => {
                    let got = q.try_take();
                    match model.pop_front() {
                        Some(v) => prop_assert_eq!(got, Ok(v)),
                        None if closed => prop_assert_eq!(got, Err(TryTakeError::Closed)),
                        None => prop_assert_eq!(got, Err(TryTakeError::Empty)),
                    }
                }
                Op::Close => {
                    q.close();
                    closed = true;
                }
                Op::Len => {
                    prop_assert_eq!(q.len(), model.len());
                    prop_assert_eq!(q.is_empty(), model.is_empty());
                    prop_assert_eq!(q.is_closed(), closed);
                }
            }
        }
        // Drain after close: exactly the model's remainder, in order.
        q.close();
        let drained: Vec<i64> = q.iter().collect();
        let expected: Vec<i64> = model.into_iter().collect();
        prop_assert_eq!(drained, expected);
    }

    /// Conservation under concurrency: every element put by any producer
    /// is taken exactly once by some consumer, for random thread/queue
    /// shapes.
    #[test]
    fn concurrent_conservation(
        capacity in 1usize..16,
        producers in 1usize..4,
        per_producer in 1u64..200,
    ) {
        let q: BlockingQueue<u64> = BlockingQueue::bounded(capacity);
        let mut handles = Vec::new();
        for p in 0..producers {
            let q = q.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..per_producer {
                    q.put(p as u64 * 1_000_000 + i).expect("queue open");
                }
            }));
        }
        let consumer = {
            let q = q.clone();
            std::thread::spawn(move || {
                let mut seen = Vec::new();
                while let Some(v) = q.take() {
                    seen.push(v);
                }
                seen
            })
        };
        for h in handles {
            h.join().expect("producer ok");
        }
        q.close();
        let mut seen = consumer.join().expect("consumer ok");
        seen.sort_unstable();
        let mut expect: Vec<u64> = (0..producers as u64)
            .flat_map(|p| (0..per_producer).map(move |i| p * 1_000_000 + i))
            .collect();
        expect.sort_unstable();
        prop_assert_eq!(seen, expect);
    }

    /// Per-producer FIFO: even with multiple producers, each producer's
    /// own elements arrive in its send order.
    #[test]
    fn per_producer_order_is_preserved(per in 1u64..300) {
        let q: BlockingQueue<(u8, u64)> = BlockingQueue::bounded(4);
        let producers: Vec<_> = (0..2u8)
            .map(|id| {
                let q = q.clone();
                std::thread::spawn(move || {
                    for i in 0..per {
                        q.put((id, i)).expect("open");
                    }
                })
            })
            .collect();
        let q2 = q.clone();
        let consumer = std::thread::spawn(move || {
            let mut last: [Option<u64>; 2] = [None, None];
            while let Some((id, i)) = q2.take() {
                let slot = &mut last[id as usize];
                assert!(slot.is_none_or(|prev| i > prev), "out of order for {id}");
                *slot = Some(i);
            }
            last
        });
        for p in producers {
            p.join().expect("producer ok");
        }
        q.close();
        let last = consumer.join().expect("consumer ok");
        prop_assert_eq!(last, [Some(per - 1), Some(per - 1)]);
    }
}
