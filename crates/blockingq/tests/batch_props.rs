//! Property tests for the batch queue APIs (`put_all` / `take_batch` /
//! `drain_into` and their `try_` variants).
//!
//! The single-threaded suite checks random operation sequences — with
//! batch sizes deliberately spanning 0, 1, and well past the capacity —
//! against a plain `VecDeque` + closed-flag oracle, so any divergence
//! shrinks to a minimal op sequence. The concurrent suite exercises the
//! *blocking* straddle path (`put_all` larger than the queue bound parks
//! and resumes as space frees) and the refund accounting under mid-stream
//! close: `taken ++ refunded == original`, always.

use blockingq::{BlockingQueue, PutError, TryPutError, TryTakeError};
use std::collections::VecDeque;
use tinyprop::prelude::*;

/// One batch-flavored operation in a generated scenario.
#[derive(Clone, Debug)]
enum Op {
    TryPutAll(Vec<i64>),
    TryTakeBatch(usize),
    TryDrainInto,
    TryPut(i64),
    TryTake,
    Close,
    Len,
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        // Batch sizes 0..=12 against capacities 1..8: empty batches and
        // batches larger than the whole queue are both routine.
        4 => prop::collection::vec(any::<i64>(), 0..13).prop_map(Op::TryPutAll),
        3 => (0usize..13).prop_map(Op::TryTakeBatch),
        2 => Just(Op::TryDrainInto),
        2 => any::<i64>().prop_map(Op::TryPut),
        2 => Just(Op::TryTake),
        1 => Just(Op::Close),
        1 => Just(Op::Len),
    ]
}

proptest! {
    /// The batch APIs behave exactly like a capacity-bounded `VecDeque`
    /// with a closed flag: `try_put_all` accepts the fitting prefix and
    /// refunds the remainder, `try_take_batch` drains up to `max` in FIFO
    /// order, `try_drain_into` empties the buffer — under any interleaved
    /// sequence of batch and single-element operations.
    #[test]
    fn batch_ops_match_reference_model(
        capacity in 1usize..8,
        ops in prop::collection::vec(arb_op(), 0..60),
    ) {
        let q: BlockingQueue<i64> = BlockingQueue::bounded(capacity);
        let mut model: VecDeque<i64> = VecDeque::new();
        let mut closed = false;

        for op in ops {
            match op {
                Op::TryPutAll(items) => {
                    let got = q.try_put_all(items.clone());
                    if items.is_empty() {
                        // The degenerate batch is a no-op even when closed.
                        prop_assert_eq!(got, Ok(()));
                    } else if closed {
                        prop_assert_eq!(got, Err(TryPutError::Closed(items)));
                    } else {
                        let room = capacity - model.len();
                        if room == 0 {
                            prop_assert_eq!(got, Err(TryPutError::Full(items)));
                        } else if items.len() <= room {
                            prop_assert_eq!(got, Ok(()));
                            model.extend(items);
                        } else {
                            // Fitting prefix accepted, suffix refunded.
                            let suffix: Vec<i64> = items[room..].to_vec();
                            prop_assert_eq!(got, Err(TryPutError::Full(suffix)));
                            model.extend(items[..room].iter().copied());
                        }
                    }
                }
                Op::TryTakeBatch(max) => {
                    let got = q.try_take_batch(max);
                    if max == 0 {
                        prop_assert_eq!(got, Ok(Vec::new()));
                    } else if model.is_empty() {
                        let want = if closed { TryTakeError::Closed } else { TryTakeError::Empty };
                        prop_assert_eq!(got, Err(want));
                    } else {
                        let n = model.len().min(max);
                        let want: Vec<i64> = model.drain(..n).collect();
                        prop_assert_eq!(got, Ok(want));
                    }
                }
                Op::TryDrainInto => {
                    let mut out = vec![-1, -2]; // pre-existing content must survive
                    let got = q.try_drain_into(&mut out);
                    if model.is_empty() {
                        let want = if closed { TryTakeError::Closed } else { TryTakeError::Empty };
                        prop_assert_eq!(got, Err(want));
                        prop_assert_eq!(out, vec![-1, -2]);
                    } else {
                        let n = model.len();
                        let mut want = vec![-1, -2];
                        want.extend(model.drain(..));
                        prop_assert_eq!(got, Ok(n));
                        prop_assert_eq!(out, want);
                    }
                }
                Op::TryPut(v) => {
                    let got = q.try_put(v);
                    if closed {
                        prop_assert_eq!(got, Err(TryPutError::Closed(v)));
                    } else if model.len() >= capacity {
                        prop_assert_eq!(got, Err(TryPutError::Full(v)));
                    } else {
                        prop_assert_eq!(got, Ok(()));
                        model.push_back(v);
                    }
                }
                Op::TryTake => {
                    let got = q.try_take();
                    match model.pop_front() {
                        Some(v) => prop_assert_eq!(got, Ok(v)),
                        None if closed => prop_assert_eq!(got, Err(TryTakeError::Closed)),
                        None => prop_assert_eq!(got, Err(TryTakeError::Empty)),
                    }
                }
                Op::Close => {
                    q.close();
                    closed = true;
                }
                Op::Len => {
                    prop_assert_eq!(q.len(), model.len());
                    prop_assert_eq!(q.is_empty(), model.is_empty());
                    prop_assert_eq!(q.is_closed(), closed);
                }
            }
        }
        // Post-sequence drain: exactly the model's remainder, in order.
        q.close();
        let drained: Vec<i64> = q.iter().collect();
        let expected: Vec<i64> = model.into_iter().collect();
        prop_assert_eq!(drained, expected);
    }

    /// Blocking straddle roundtrip: a single `put_all` far larger than the
    /// queue bound must park, resume as the consumer frees space, and land
    /// every element in order — whatever the consumer's batch maximum is.
    #[test]
    fn straddling_put_all_delivers_everything_in_order(
        capacity in 1usize..6,
        len in 0usize..300,
        max in 1usize..9,
    ) {
        let q: BlockingQueue<usize> = BlockingQueue::bounded(capacity);
        let items: Vec<usize> = (0..len).collect();
        let producer = {
            let q = q.clone();
            let items = items.clone();
            std::thread::spawn(move || {
                q.put_all(items).expect("queue open for the whole batch");
                q.close();
            })
        };
        let mut taken: Vec<usize> = Vec::new();
        while let Some(chunk) = q.take_batch(max) {
            prop_assert!(!chunk.is_empty(), "blocking take_batch yielded an empty chunk");
            prop_assert!(chunk.len() <= max, "chunk exceeded max");
            taken.extend(chunk);
        }
        producer.join().expect("producer ok");
        prop_assert_eq!(taken, items);
    }

    /// Refund accounting under mid-stream close: whatever instant the
    /// close lands — before, during, or after the straddling `put_all` —
    /// the elements the consumer took plus the refunded suffix reassemble
    /// the original sequence exactly. Nothing is lost, duplicated, or
    /// reordered.
    #[test]
    fn taken_plus_refund_reassembles_the_batch(
        capacity in 1usize..6,
        len in 1usize..200,
        take_before_close in 0usize..64,
    ) {
        let q: BlockingQueue<usize> = BlockingQueue::bounded(capacity);
        let items: Vec<usize> = (0..len).collect();
        let producer = {
            let q = q.clone();
            let items = items.clone();
            std::thread::spawn(move || match q.put_all(items) {
                Ok(()) => Vec::new(),
                Err(PutError(refund)) => refund,
            })
        };
        // Take a bounded number of elements, then slam the queue shut
        // under the producer (who may be parked mid-straddle).
        let mut taken: Vec<usize> = Vec::new();
        for _ in 0..take_before_close {
            match q.take_timeout(std::time::Duration::from_millis(50)) {
                Ok(Some(v)) => taken.push(v),
                _ => break,
            }
        }
        q.close();
        let refunded = producer.join().expect("producer ok");
        // Anything accepted before the close is still in the buffer.
        let mut buf = Vec::new();
        let _ = q.try_drain_into(&mut buf);
        taken.extend(buf);
        taken.extend(refunded);
        prop_assert_eq!(taken, items, "taken ++ drained ++ refund != original");
    }
}
