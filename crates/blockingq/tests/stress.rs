//! Deterministic concurrency stress tests for `BlockingQueue` close/wakeup
//! semantics (ISSUE 1 satellite): N producers × M consumers under
//! `std::thread::scope`, asserting no value is lost or duplicated and that
//! `close()` wakes every blocked party for a clean shutdown.
//!
//! "Deterministic" here means: the *assertions* hold on every interleaving
//! (conservation, ordering, clean termination), not that the schedule is
//! fixed. Each shape is exercised at several capacities, including
//! capacity 1 where producers and consumers strictly alternate under
//! maximal contention.

use blockingq::{testkit, BlockingQueue, PutError};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;

/// Tag values as (producer_id, sequence) so conservation *and* per-producer
/// FIFO can both be checked on the consumer side.
fn run_matrix(producers: u64, consumers: usize, per_producer: u64, capacity: usize) {
    let q: BlockingQueue<(u64, u64)> = if capacity == 0 {
        BlockingQueue::unbounded()
    } else {
        BlockingQueue::bounded(capacity)
    };
    let mut harvested: Vec<Vec<(u64, u64)>> = Vec::new();

    thread::scope(|s| {
        let mut consumers_handles = Vec::new();
        for _ in 0..consumers {
            let q = &q;
            consumers_handles.push(s.spawn(move || {
                let mut got = Vec::new();
                // `take` returns None only when closed *and* drained, so
                // this loop is the clean-shutdown protocol under test.
                while let Some(v) = q.take() {
                    got.push(v);
                }
                got
            }));
        }

        let mut producer_handles = Vec::new();
        for p in 0..producers {
            let q = &q;
            producer_handles.push(s.spawn(move || {
                for i in 0..per_producer {
                    q.put((p, i)).expect("queue closed under producers");
                }
            }));
        }

        for h in producer_handles {
            h.join().expect("producer panicked");
        }
        // All values are in flight or consumed; closing must wake every
        // consumer blocked in `take` once the queue drains.
        q.close();
        for h in consumers_handles {
            harvested.push(h.join().expect("consumer panicked"));
        }
    });

    // Conservation: every (producer, seq) pair arrives exactly once.
    let mut seen: HashMap<(u64, u64), usize> = HashMap::new();
    for batch in &harvested {
        for &v in batch {
            *seen.entry(v).or_insert(0) += 1;
        }
    }
    let expected = producers * per_producer;
    assert_eq!(
        seen.len() as u64,
        expected,
        "lost values: got {} distinct of {expected}",
        seen.len()
    );
    for (v, count) in &seen {
        assert_eq!(*count, 1, "value {v:?} delivered {count} times");
    }

    // Per-producer FIFO within each consumer: a single consumer can
    // interleave producers, but each producer's sequence numbers must be
    // strictly increasing in any one consumer's stream (the queue is FIFO
    // and a value is removed exactly once).
    for batch in &harvested {
        let mut last: HashMap<u64, u64> = HashMap::new();
        for &(p, i) in batch {
            if let Some(prev) = last.insert(p, i) {
                assert!(prev < i, "producer {p}: {i} after {prev} in one consumer");
            }
        }
    }
}

#[test]
fn stress_4x4_capacity_1() {
    // Capacity 1 maximizes blocking on both sides: every put waits for a
    // take and vice versa.
    run_matrix(4, 4, 200, 1);
}

#[test]
fn stress_4x4_capacity_8() {
    run_matrix(4, 4, 200, 8);
}

#[test]
fn stress_8x2_unbounded() {
    run_matrix(8, 2, 150, 0);
}

#[test]
fn stress_2x8_more_consumers_than_values_sometimes() {
    // More consumers than producers: some consumers may harvest nothing
    // and must still shut down cleanly on close().
    run_matrix(2, 8, 50, 4);
}

#[test]
fn close_wakes_blocked_consumers() {
    // Consumers block on an empty queue; close() must wake all of them
    // with None — no timeout crutch, the join itself is the assertion.
    let q: BlockingQueue<i32> = BlockingQueue::bounded(4);
    let woken = AtomicUsize::new(0);
    thread::scope(|s| {
        for _ in 0..6 {
            let (q, woken) = (&q, &woken);
            s.spawn(move || {
                assert_eq!(q.take(), None, "no value was ever put");
                woken.fetch_add(1, Ordering::SeqCst);
            });
        }
        // Wait until every consumer is actually parked in `take` (not
        // required for correctness — close() wakes both parked and
        // about-to-park — but it makes the test exercise the parked path
        // on every run instead of by timing luck).
        testkit::wait_until("6 consumers parked", || q.blocked_consumers() == 6);
        q.close();
    });
    assert_eq!(woken.load(Ordering::SeqCst), 6);
}

#[test]
fn close_wakes_blocked_producers() {
    // Producers block on a full queue; close() must fail their puts and
    // hand the rejected values back.
    let q = Arc::new(BlockingQueue::bounded(1));
    q.put(0i32).unwrap();
    let rejected = AtomicUsize::new(0);
    thread::scope(|s| {
        for v in 1..=5 {
            let (q, rejected) = (&q, &rejected);
            s.spawn(move || match q.put(v) {
                Err(PutError(got)) => {
                    assert_eq!(got, v, "rejected put returns the value");
                    rejected.fetch_add(1, Ordering::SeqCst);
                }
                Ok(()) => panic!("put succeeded on a full-then-closed queue"),
            });
        }
        // All five producers parked in `put` before close fires.
        testkit::wait_until("5 producers parked", || q.blocked_producers() == 5);
        q.close();
    });
    assert_eq!(rejected.load(Ordering::SeqCst), 5);
    // The pre-close value is still drainable after close.
    assert_eq!(q.take(), Some(0));
    assert_eq!(q.take(), None);
}

#[test]
fn close_midstream_loses_nothing_already_queued() {
    // A producer races close(): whatever `put` accepted must be
    // delivered; whatever it rejected must be reported back. The two
    // tallies always account for every value exactly once.
    for trial in 0..20 {
        let q: BlockingQueue<u64> = BlockingQueue::bounded(2);
        let (accepted, drained) = thread::scope(|s| {
            let producer = {
                let q = &q;
                s.spawn(move || {
                    let mut accepted = 0u64;
                    for i in 0..1000u64 {
                        match q.put(i) {
                            Ok(()) => accepted += 1,
                            Err(PutError(v)) => {
                                assert_eq!(v, i);
                                break;
                            }
                        }
                    }
                    accepted
                })
            };
            let closer = {
                let q = &q;
                s.spawn(move || {
                    // Vary the race window across trials: the point is
                    // schedule jitter, not elapsed time, so yield instead
                    // of sleeping.
                    for _ in 0..trial * 8 {
                        thread::yield_now();
                    }
                    q.close();
                })
            };
            closer.join().unwrap();
            let accepted = producer.join().unwrap();
            let mut drained = 0u64;
            let mut expect = 0u64;
            while let Some(v) = q.take() {
                assert_eq!(v, expect, "drained out of order");
                expect += 1;
                drained += 1;
            }
            (accepted, drained)
        });
        assert_eq!(accepted, drained, "trial {trial}: accepted != drained");
    }
}
