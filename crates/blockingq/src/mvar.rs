//! Single-slot mutable variables and write-once futures.
//!
//! Sec. III.B of the paper: "In its simplest form, a singleton piped iterator
//! that produces one result forms a future or mutable variable, whose put and
//! take operations wait until the channel is empty or full respectively."

use parking_lot::{Condvar, Mutex};
use std::sync::atomic::{AtomicUsize, Ordering as AtomicOrdering};
use std::sync::Arc;

struct Slot<T> {
    value: Mutex<Option<T>>,
    cond: Condvar,
    /// Threads parked in `put`/`take`/`read`. A plain std atomic on
    /// purpose: it is test/diagnostic introspection (see
    /// [`MVar::waiters`]) and must not add scheduling points under the
    /// schedtest model.
    waiters: AtomicUsize,
}

/// A mutable variable in the M-structure / Concurrent-Haskell-MVar mould:
/// `put` blocks while full, `take` blocks while empty and empties the slot,
/// `read` blocks while empty without emptying.
pub struct MVar<T> {
    slot: Arc<Slot<T>>,
}

impl<T> Clone for MVar<T> {
    fn clone(&self) -> Self {
        MVar {
            slot: Arc::clone(&self.slot),
        }
    }
}

impl<T> Default for MVar<T> {
    fn default() -> Self {
        Self::empty()
    }
}

impl<T> MVar<T> {
    /// Create an empty MVar.
    pub fn empty() -> Self {
        MVar {
            slot: Arc::new(Slot {
                value: Mutex::new(None),
                cond: Condvar::new(),
                waiters: AtomicUsize::new(0),
            }),
        }
    }

    /// Create a full MVar.
    pub fn new(v: T) -> Self {
        MVar {
            slot: Arc::new(Slot {
                value: Mutex::new(Some(v)),
                cond: Condvar::new(),
                waiters: AtomicUsize::new(0),
            }),
        }
    }

    /// Block until the slot is empty, then fill it.
    pub fn put(&self, v: T) {
        let mut guard = self.slot.value.lock();
        obs_on!(if guard.is_some() {
            crate::stats::mvar().blocked_puts.inc();
        });
        while guard.is_some() {
            self.slot.waiters.fetch_add(1, AtomicOrdering::SeqCst);
            self.slot.cond.wait(&mut guard);
            self.slot.waiters.fetch_sub(1, AtomicOrdering::SeqCst);
        }
        *guard = Some(v);
        drop(guard);
        self.slot.cond.notify_all();
        obs_on!(crate::stats::mvar().puts.inc(););
    }

    /// Block until the slot is full, then empty and return it.
    pub fn take(&self) -> T {
        let mut guard = self.slot.value.lock();
        obs_on!(let mut waited = false;);
        loop {
            if let Some(v) = guard.take() {
                drop(guard);
                self.slot.cond.notify_all();
                obs_on!(crate::stats::mvar().takes.inc(););
                return v;
            }
            obs_on!(if !waited {
                waited = true;
                crate::stats::mvar().blocked_takes.inc();
            });
            self.slot.waiters.fetch_add(1, AtomicOrdering::SeqCst);
            self.slot.cond.wait(&mut guard);
            self.slot.waiters.fetch_sub(1, AtomicOrdering::SeqCst);
        }
    }

    /// Fill the slot only if currently empty.
    pub fn try_put(&self, v: T) -> Result<(), T> {
        let mut guard = self.slot.value.lock();
        if guard.is_some() {
            return Err(v);
        }
        *guard = Some(v);
        drop(guard);
        self.slot.cond.notify_all();
        obs_on!(crate::stats::mvar().puts.inc(););
        Ok(())
    }

    /// Empty the slot only if currently full.
    pub fn try_take(&self) -> Option<T> {
        let v = self.slot.value.lock().take();
        if v.is_some() {
            self.slot.cond.notify_all();
            obs_on!(crate::stats::mvar().takes.inc(););
        }
        v
    }

    /// True iff the slot currently holds a value.
    pub fn is_full(&self) -> bool {
        self.slot.value.lock().is_some()
    }

    /// Number of threads currently parked in `put`/`take`/`read`. Meant
    /// for tests and diagnostics — see [`crate::testkit::wait_until`].
    pub fn waiters(&self) -> usize {
        self.slot.waiters.load(AtomicOrdering::SeqCst)
    }
}

impl<T: Clone> MVar<T> {
    /// Block until the slot is full and return a copy, leaving it full.
    pub fn read(&self) -> T {
        let mut guard = self.slot.value.lock();
        obs_on!(let mut waited = false;);
        loop {
            if let Some(v) = guard.as_ref() {
                return v.clone();
            }
            obs_on!(if !waited {
                waited = true;
                crate::stats::mvar().blocked_takes.inc();
            });
            self.slot.waiters.fetch_add(1, AtomicOrdering::SeqCst);
            self.slot.cond.wait(&mut guard);
            self.slot.waiters.fetch_sub(1, AtomicOrdering::SeqCst);
        }
    }
}

/// A write-once future: `set` may succeed at most once; `get` blocks until
/// the value is available and then always returns a copy.
///
/// A future can also be *failed* ([`Future::fail`]) — the cause-carrying
/// analogue of a queue's `close_with`. Without it, a producer that dies
/// before resolving leaves every `get` blocked forever; failing the
/// future wakes them with the [`Fault`] instead (surfaced as a panic
/// from `get`, inspectable without panicking via [`Future::fault`]).
pub struct Future<T> {
    mvar: MVar<Result<T, crate::fault::Fault>>,
}

impl<T> Clone for Future<T> {
    fn clone(&self) -> Self {
        Future {
            mvar: self.mvar.clone(),
        }
    }
}

impl<T> Default for Future<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Future<T> {
    /// Create an unresolved future.
    pub fn new() -> Self {
        Future {
            mvar: MVar::empty(),
        }
    }

    /// Resolve the future. Returns the value back if already resolved
    /// (or failed).
    pub fn set(&self, v: T) -> Result<(), T> {
        self.mvar.try_put(Ok(v)).map_err(|r| match r {
            Ok(v) => v,
            Err(_) => unreachable!("refund is the rejected input"),
        })
    }

    /// Fail the future: every current and future `get` surfaces `fault`
    /// instead of blocking forever. Returns the fault back if the future
    /// was already resolved or failed (first outcome wins).
    pub fn fail(&self, fault: crate::fault::Fault) -> Result<(), crate::fault::Fault> {
        self.mvar.try_put(Err(fault)).map_err(|r| match r {
            Err(f) => f,
            Ok(_) => unreachable!("refund is the rejected input"),
        })
    }

    /// True iff resolved or failed.
    pub fn is_set(&self) -> bool {
        self.mvar.is_full()
    }

    /// The fault, if the future was failed.
    pub fn fault(&self) -> Option<crate::fault::Fault> {
        let guard = self.mvar.slot.value.lock();
        match guard.as_ref() {
            Some(Err(f)) => Some(f.clone()),
            _ => None,
        }
    }
}

impl<T: Clone> Future<T> {
    /// Block until resolved and return a copy of the value.
    ///
    /// # Panics
    ///
    /// If the future was [failed](Future::fail): the producer's fault is
    /// re-raised here rather than leaving the consumer blocked (or
    /// handing it a fabricated value). Use [`Future::fault`] /
    /// [`Future::try_result`] to observe failure without panicking.
    pub fn get(&self) -> T {
        match self.mvar.read() {
            Ok(v) => v,
            Err(fault) => panic!("future failed: {fault}"),
        }
    }

    /// Return a copy of the value if resolved.
    ///
    /// # Panics
    ///
    /// If the future was failed (a failed future will never produce a
    /// value; a perpetual `None` here would be the silent-truncation bug
    /// in miniature). See [`Future::try_result`].
    pub fn try_get(&self) -> Option<T> {
        self.try_result().map(|r| match r {
            Ok(v) => v,
            Err(fault) => panic!("future failed: {fault}"),
        })
    }

    /// Non-blocking, non-panicking outcome: `None` while unresolved,
    /// otherwise the value or the fault.
    pub fn try_result(&self) -> Option<Result<T, crate::fault::Fault>> {
        let guard = self.mvar.slot.value.lock();
        guard.as_ref().cloned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit;
    use std::thread;

    #[test]
    fn put_take_roundtrip() {
        let m = MVar::empty();
        m.put(7);
        assert!(m.is_full());
        assert_eq!(m.take(), 7);
        assert!(!m.is_full());
    }

    #[test]
    fn try_put_respects_fullness() {
        let m = MVar::new(1);
        assert_eq!(m.try_put(2), Err(2));
        assert_eq!(m.take(), 1);
        assert_eq!(m.try_put(2), Ok(()));
        assert_eq!(m.try_take(), Some(2));
        assert_eq!(m.try_take(), None);
    }

    #[test]
    fn take_blocks_until_put() {
        let m: MVar<i32> = MVar::empty();
        let m2 = m.clone();
        let h = thread::spawn(move || m2.take());
        testkit::wait_until("taker parked", || m.waiters() == 1);
        m.put(99);
        assert_eq!(h.join().unwrap(), 99);
    }

    #[test]
    fn put_blocks_until_take() {
        let m = MVar::new(1);
        let m2 = m.clone();
        let h = thread::spawn(move || m2.put(2));
        testkit::wait_until("putter parked", || m.waiters() == 1);
        assert_eq!(m.take(), 1);
        h.join().unwrap();
        assert_eq!(m.take(), 2);
    }

    #[test]
    fn read_does_not_empty() {
        let m = MVar::new("x");
        assert_eq!(m.read(), "x");
        assert!(m.is_full());
    }

    #[test]
    fn mvar_ping_pong() {
        // Alternating producer/consumer driven purely by MVar blocking.
        let m = MVar::empty();
        let m2 = m.clone();
        let h = thread::spawn(move || {
            for i in 0..100 {
                m2.put(i);
            }
        });
        for i in 0..100 {
            assert_eq!(m.take(), i);
        }
        h.join().unwrap();
    }

    #[test]
    fn future_single_assignment() {
        let f = Future::new();
        assert!(!f.is_set());
        assert_eq!(f.try_get(), None);
        assert_eq!(f.set(10), Ok(()));
        assert_eq!(f.set(11), Err(11));
        assert_eq!(f.get(), 10);
        assert_eq!(f.get(), 10); // repeatable
    }

    #[test]
    fn future_fail_wakes_getters_with_the_fault() {
        use crate::fault::Fault;
        use std::panic::{catch_unwind, AssertUnwindSafe};
        let f: Future<i32> = Future::new();
        let f2 = f.clone();
        let h = thread::spawn(move || catch_unwind(AssertUnwindSafe(|| f2.get())));
        testkit::wait_until("reader parked", || f.mvar.waiters() == 1);
        f.fail(Fault::new("producer", "boom")).unwrap();
        // The blocked getter woke up and surfaced the fault as a panic
        // instead of waiting forever.
        assert!(h.join().unwrap().is_err());
        assert!(f.is_set());
        assert_eq!(f.fault().expect("failed").message(), "boom");
        assert!(matches!(f.try_result(), Some(Err(_))));
        // First outcome wins: the failed future rejects a late value.
        assert_eq!(f.set(5), Err(5));
        // And try_get surfaces the failure loudly, not as a quiet None.
        assert!(catch_unwind(AssertUnwindSafe(|| f.try_get())).is_err());
    }

    #[test]
    fn future_set_rejects_late_fail() {
        use crate::fault::Fault;
        let f: Future<i32> = Future::new();
        f.set(1).unwrap();
        let refund = f.fail(Fault::new("s", "late")).expect_err("already set");
        assert_eq!(refund.message(), "late");
        assert_eq!(f.get(), 1);
        assert_eq!(f.fault(), None);
    }

    #[test]
    fn future_get_blocks_until_set() {
        let f: Future<String> = Future::new();
        let f2 = f.clone();
        let h = thread::spawn(move || f2.get());
        testkit::wait_until("reader parked", || f.mvar.waiters() == 1);
        f.set("done".to_string()).unwrap();
        assert_eq!(h.join().unwrap(), "done");
    }
}
