//! Single-slot mutable variables and write-once futures.
//!
//! Sec. III.B of the paper: "In its simplest form, a singleton piped iterator
//! that produces one result forms a future or mutable variable, whose put and
//! take operations wait until the channel is empty or full respectively."

use parking_lot::{Condvar, Mutex};
use std::sync::atomic::{AtomicUsize, Ordering as AtomicOrdering};
use std::sync::Arc;

struct Slot<T> {
    value: Mutex<Option<T>>,
    cond: Condvar,
    /// Threads parked in `put`/`take`/`read`. A plain std atomic on
    /// purpose: it is test/diagnostic introspection (see
    /// [`MVar::waiters`]) and must not add scheduling points under the
    /// schedtest model.
    waiters: AtomicUsize,
}

/// A mutable variable in the M-structure / Concurrent-Haskell-MVar mould:
/// `put` blocks while full, `take` blocks while empty and empties the slot,
/// `read` blocks while empty without emptying.
pub struct MVar<T> {
    slot: Arc<Slot<T>>,
}

impl<T> Clone for MVar<T> {
    fn clone(&self) -> Self {
        MVar {
            slot: Arc::clone(&self.slot),
        }
    }
}

impl<T> Default for MVar<T> {
    fn default() -> Self {
        Self::empty()
    }
}

impl<T> MVar<T> {
    /// Create an empty MVar.
    pub fn empty() -> Self {
        MVar {
            slot: Arc::new(Slot {
                value: Mutex::new(None),
                cond: Condvar::new(),
                waiters: AtomicUsize::new(0),
            }),
        }
    }

    /// Create a full MVar.
    pub fn new(v: T) -> Self {
        MVar {
            slot: Arc::new(Slot {
                value: Mutex::new(Some(v)),
                cond: Condvar::new(),
                waiters: AtomicUsize::new(0),
            }),
        }
    }

    /// Block until the slot is empty, then fill it.
    pub fn put(&self, v: T) {
        let mut guard = self.slot.value.lock();
        obs_on!(if guard.is_some() {
            crate::stats::mvar().blocked_puts.inc();
        });
        while guard.is_some() {
            self.slot.waiters.fetch_add(1, AtomicOrdering::SeqCst);
            self.slot.cond.wait(&mut guard);
            self.slot.waiters.fetch_sub(1, AtomicOrdering::SeqCst);
        }
        *guard = Some(v);
        drop(guard);
        self.slot.cond.notify_all();
        obs_on!(crate::stats::mvar().puts.inc(););
    }

    /// Block until the slot is full, then empty and return it.
    pub fn take(&self) -> T {
        let mut guard = self.slot.value.lock();
        obs_on!(let mut waited = false;);
        loop {
            if let Some(v) = guard.take() {
                drop(guard);
                self.slot.cond.notify_all();
                obs_on!(crate::stats::mvar().takes.inc(););
                return v;
            }
            obs_on!(if !waited {
                waited = true;
                crate::stats::mvar().blocked_takes.inc();
            });
            self.slot.waiters.fetch_add(1, AtomicOrdering::SeqCst);
            self.slot.cond.wait(&mut guard);
            self.slot.waiters.fetch_sub(1, AtomicOrdering::SeqCst);
        }
    }

    /// Fill the slot only if currently empty.
    pub fn try_put(&self, v: T) -> Result<(), T> {
        let mut guard = self.slot.value.lock();
        if guard.is_some() {
            return Err(v);
        }
        *guard = Some(v);
        drop(guard);
        self.slot.cond.notify_all();
        obs_on!(crate::stats::mvar().puts.inc(););
        Ok(())
    }

    /// Empty the slot only if currently full.
    pub fn try_take(&self) -> Option<T> {
        let v = self.slot.value.lock().take();
        if v.is_some() {
            self.slot.cond.notify_all();
            obs_on!(crate::stats::mvar().takes.inc(););
        }
        v
    }

    /// True iff the slot currently holds a value.
    pub fn is_full(&self) -> bool {
        self.slot.value.lock().is_some()
    }

    /// Number of threads currently parked in `put`/`take`/`read`. Meant
    /// for tests and diagnostics — see [`crate::testkit::wait_until`].
    pub fn waiters(&self) -> usize {
        self.slot.waiters.load(AtomicOrdering::SeqCst)
    }
}

impl<T: Clone> MVar<T> {
    /// Block until the slot is full and return a copy, leaving it full.
    pub fn read(&self) -> T {
        let mut guard = self.slot.value.lock();
        obs_on!(let mut waited = false;);
        loop {
            if let Some(v) = guard.as_ref() {
                return v.clone();
            }
            obs_on!(if !waited {
                waited = true;
                crate::stats::mvar().blocked_takes.inc();
            });
            self.slot.waiters.fetch_add(1, AtomicOrdering::SeqCst);
            self.slot.cond.wait(&mut guard);
            self.slot.waiters.fetch_sub(1, AtomicOrdering::SeqCst);
        }
    }
}

/// A write-once future: `set` may succeed at most once; `get` blocks until
/// the value is available and then always returns a copy.
pub struct Future<T> {
    mvar: MVar<T>,
}

impl<T> Clone for Future<T> {
    fn clone(&self) -> Self {
        Future {
            mvar: self.mvar.clone(),
        }
    }
}

impl<T> Default for Future<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Future<T> {
    /// Create an unresolved future.
    pub fn new() -> Self {
        Future {
            mvar: MVar::empty(),
        }
    }

    /// Resolve the future. Returns the value back if already resolved.
    pub fn set(&self, v: T) -> Result<(), T> {
        self.mvar.try_put(v)
    }

    /// True iff resolved.
    pub fn is_set(&self) -> bool {
        self.mvar.is_full()
    }
}

impl<T: Clone> Future<T> {
    /// Block until resolved and return a copy of the value.
    pub fn get(&self) -> T {
        self.mvar.read()
    }

    /// Return a copy of the value if resolved.
    pub fn try_get(&self) -> Option<T> {
        let guard = self.mvar.slot.value.lock();
        guard.as_ref().cloned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit;
    use std::thread;

    #[test]
    fn put_take_roundtrip() {
        let m = MVar::empty();
        m.put(7);
        assert!(m.is_full());
        assert_eq!(m.take(), 7);
        assert!(!m.is_full());
    }

    #[test]
    fn try_put_respects_fullness() {
        let m = MVar::new(1);
        assert_eq!(m.try_put(2), Err(2));
        assert_eq!(m.take(), 1);
        assert_eq!(m.try_put(2), Ok(()));
        assert_eq!(m.try_take(), Some(2));
        assert_eq!(m.try_take(), None);
    }

    #[test]
    fn take_blocks_until_put() {
        let m: MVar<i32> = MVar::empty();
        let m2 = m.clone();
        let h = thread::spawn(move || m2.take());
        testkit::wait_until("taker parked", || m.waiters() == 1);
        m.put(99);
        assert_eq!(h.join().unwrap(), 99);
    }

    #[test]
    fn put_blocks_until_take() {
        let m = MVar::new(1);
        let m2 = m.clone();
        let h = thread::spawn(move || m2.put(2));
        testkit::wait_until("putter parked", || m.waiters() == 1);
        assert_eq!(m.take(), 1);
        h.join().unwrap();
        assert_eq!(m.take(), 2);
    }

    #[test]
    fn read_does_not_empty() {
        let m = MVar::new("x");
        assert_eq!(m.read(), "x");
        assert!(m.is_full());
    }

    #[test]
    fn mvar_ping_pong() {
        // Alternating producer/consumer driven purely by MVar blocking.
        let m = MVar::empty();
        let m2 = m.clone();
        let h = thread::spawn(move || {
            for i in 0..100 {
                m2.put(i);
            }
        });
        for i in 0..100 {
            assert_eq!(m.take(), i);
        }
        h.join().unwrap();
    }

    #[test]
    fn future_single_assignment() {
        let f = Future::new();
        assert!(!f.is_set());
        assert_eq!(f.try_get(), None);
        assert_eq!(f.set(10), Ok(()));
        assert_eq!(f.set(11), Err(11));
        assert_eq!(f.get(), 10);
        assert_eq!(f.get(), 10); // repeatable
    }

    #[test]
    fn future_get_blocks_until_set() {
        let f: Future<String> = Future::new();
        let f2 = f.clone();
        let h = thread::spawn(move || f2.get());
        testkit::wait_until("reader parked", || f.mvar.waiters() == 1);
        f.set("done".to_string()).unwrap();
        assert_eq!(h.join().unwrap(), "done");
    }
}
