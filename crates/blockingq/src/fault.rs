//! Cause-carrying termination: *why* a channel ended.
//!
//! A closed queue used to be a single bit, which made a producer panic
//! indistinguishable from clean end-of-stream — the consumer of a pipe
//! whose generator crashed mid-stream saw a truncated but apparently
//! successful result. [`CloseCause`] splits that bit into a tiny
//! lattice: `Finished` (the clean end every existing `close()` call
//! still means) and `Failed(Fault)` (an abnormal end with attribution).
//! The first close wins; later closes — e.g. a producer's close-on-exit
//! guard running after the fault was already recorded — are no-ops.

use std::any::Any;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

static NEXT_FAULT_ID: AtomicU64 = AtomicU64::new(1);

/// Attribution for an abnormal stream end, carried through
/// [`crate::BlockingQueue::close_with`] to every consumer.
///
/// Cheap to clone (the strings are shared): a cause is handed to each
/// end-of-stream observer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Fault {
    stage: Arc<str>,
    message: Arc<str>,
    id: u64,
}

impl Fault {
    /// Record a fault at `stage` with a rendered `message`. Each fault
    /// gets a process-unique, monotonically increasing id.
    pub fn new(stage: impl AsRef<str>, message: impl AsRef<str>) -> Fault {
        Fault {
            stage: Arc::from(stage.as_ref()),
            message: Arc::from(message.as_ref()),
            id: NEXT_FAULT_ID.fetch_add(1, Ordering::Relaxed),
        }
    }

    /// Build a fault from a caught panic payload (`catch_unwind`'s
    /// `Err`), extracting the usual `&str` / `String` message forms.
    pub fn from_panic(stage: impl AsRef<str>, payload: &(dyn Any + Send)) -> Fault {
        Fault::new(stage, panic_message(payload))
    }

    /// The stage label (e.g. a pipe's label, a fan-in source name).
    pub fn stage(&self) -> &str {
        &self.stage
    }

    /// The rendered panic (or error) message.
    pub fn message(&self) -> &str {
        &self.message
    }

    /// Process-unique fault sequence number. Doubles as the obs snapshot
    /// id: counters recorded at fault time (`blockingq.close.failed`,
    /// `pipes.faults.*`) can be correlated to a fault by snapshotting
    /// around this sequence.
    pub fn id(&self) -> u64 {
        self.id
    }
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "stage `{}` failed: {} (fault #{})",
            self.stage, self.message, self.id
        )
    }
}

/// Extract a human-readable message from a panic payload.
pub fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Why a queue terminated. See the module docs for the lattice.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CloseCause {
    /// Clean end-of-stream — what plain [`crate::BlockingQueue::close`]
    /// records.
    Finished,
    /// Abnormal end, with attribution.
    Failed(Fault),
}

impl CloseCause {
    /// True iff this is a `Failed` cause.
    pub fn is_failed(&self) -> bool {
        matches!(self, CloseCause::Failed(_))
    }

    /// The fault, if this is a `Failed` cause.
    pub fn fault(&self) -> Option<&Fault> {
        match self {
            CloseCause::Finished => None,
            CloseCause::Failed(f) => Some(f),
        }
    }
}

impl fmt::Display for CloseCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CloseCause::Finished => write!(f, "finished"),
            CloseCause::Failed(fault) => write!(f, "failed: {fault}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_unique_and_monotone() {
        let a = Fault::new("s1", "m1");
        let b = Fault::new("s2", "m2");
        assert!(b.id() > a.id());
        assert_ne!(a, b);
    }

    #[test]
    fn display_carries_attribution() {
        let f = Fault::new("pipe-producer", "index out of bounds");
        let s = f.to_string();
        assert!(s.contains("pipe-producer"));
        assert!(s.contains("index out of bounds"));
        let c = CloseCause::Failed(f.clone());
        assert!(c.is_failed());
        assert_eq!(c.fault(), Some(&f));
        assert!(!CloseCause::Finished.is_failed());
    }

    #[test]
    fn panic_payload_forms() {
        let s: Box<dyn Any + Send> = Box::new("static str");
        assert_eq!(panic_message(&*s), "static str");
        let s: Box<dyn Any + Send> = Box::new("owned".to_string());
        assert_eq!(panic_message(&*s), "owned");
        let s: Box<dyn Any + Send> = Box::new(42u32);
        assert_eq!(panic_message(&*s), "non-string panic payload");
    }
}
