//! Timing-free synchronization helpers for concurrency tests.
//!
//! Stress and integration tests used to approximate "wait until the peer
//! thread is parked" with `thread::sleep`, which is both slow (the sleep
//! always pays its full duration) and flaky (a loaded machine can stretch
//! a 20 ms window past any bound). These helpers replace that pattern
//! with *conditions*: poll an observable predicate
//! ([`BlockingQueue::blocked_producers`](crate::BlockingQueue::blocked_producers),
//! [`MVar::waiters`](crate::MVar::waiters), a queue length, an epoch
//! count) and fail loudly if it never comes true.
//!
//! Under `--cfg schedtest` none of this is needed — the virtual scheduler
//! *proves* wake-ups instead of waiting for them — so the model suites in
//! `crates/schedtest/tests/` don't use this module. It exists for the
//! real-thread tier-1 stress tests.

use parking_lot::{Condvar, Mutex};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How long [`wait_until`] and [`Epoch::await_at_least`] poll before
/// declaring the condition unreachable. Generous on purpose: it is only
/// ever paid on genuine failure (or a pathologically loaded machine), and
/// a late loud panic beats a silently weakened test.
pub const WATCHDOG: Duration = Duration::from_secs(30);

/// Spin (with `yield_now`) until `cond` returns true; panic with `what`
/// after [`WATCHDOG`].
///
/// The condition must be *monotone for the duration of the wait* (once
/// true it stays true until the caller acts) for the return to be
/// meaningful — waiter counts while the test holds the only wake-up
/// trigger, queue lengths while the test holds the only consumer, etc.
pub fn wait_until(what: &str, mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + WATCHDOG;
    loop {
        if cond() {
            return;
        }
        if Instant::now() >= deadline {
            panic!("testkit::wait_until timed out after {WATCHDOG:?}: {what}");
        }
        std::thread::yield_now();
    }
}

/// A monotone arrival counter: threads [`arrive`](Epoch::arrive), other
/// threads [`await_at_least`](Epoch::await_at_least) a count. Unlike a
/// `Barrier` the waiter doesn't have to participate, and unlike a sleep
/// the wait ends the instant the count is reached.
#[derive(Clone, Default)]
pub struct Epoch {
    inner: Arc<EpochInner>,
}

#[derive(Default)]
struct EpochInner {
    count: Mutex<u64>,
    changed: Condvar,
}

impl Epoch {
    /// A new epoch counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one arrival and return the new count.
    pub fn arrive(&self) -> u64 {
        let mut c = self.inner.count.lock();
        *c += 1;
        let now = *c;
        drop(c);
        self.inner.changed.notify_all();
        now
    }

    /// Current arrival count.
    pub fn count(&self) -> u64 {
        *self.inner.count.lock()
    }

    /// Block until at least `n` arrivals have been recorded; panics after
    /// [`WATCHDOG`].
    pub fn await_at_least(&self, n: u64) {
        let deadline = Instant::now() + WATCHDOG;
        let mut c = self.inner.count.lock();
        while *c < n {
            if Instant::now() >= deadline {
                panic!(
                    "testkit::Epoch::await_at_least({n}) timed out after {WATCHDOG:?} \
                     (reached {})",
                    *c
                );
            }
            self.inner
                .changed
                .wait_for(&mut c, Duration::from_millis(100));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wait_until_returns_once_true() {
        let mut calls = 0;
        wait_until("three polls", || {
            calls += 1;
            calls >= 3
        });
        assert_eq!(calls, 3);
    }

    #[test]
    #[should_panic(expected = "testkit::wait_until timed out")]
    #[ignore = "pays the full watchdog; run explicitly"]
    fn wait_until_watchdog_fires() {
        wait_until("never", || false);
    }

    #[test]
    fn epoch_arrivals_unblock_waiter() {
        let e = Epoch::new();
        let e2 = e.clone();
        let h = std::thread::spawn(move || {
            e2.await_at_least(3);
            e2.count()
        });
        for _ in 0..3 {
            e.arrive();
        }
        assert!(h.join().unwrap() >= 3);
    }
}
