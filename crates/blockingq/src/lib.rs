//! Blocking channels: the communication substrate for generator proxies.
//!
//! The paper (Sec. III.B) builds pipes — multithreaded generator proxies —
//! on *blocking queues*: "A blocking channel, or blocking queue, has put and
//! take operations that wait until the queue of results is not full or not
//! empty, respectively", and notes that "bounding the output queue buffer
//! size can also be used to throttle a threaded co-expression". This crate
//! provides that substrate:
//!
//! * [`BlockingQueue`] — a bounded (or unbounded) MPMC FIFO with blocking
//!   `put`/`take`, non-blocking and timed variants, and close semantics used
//!   to signal generator failure across threads;
//! * [`MVar`] — a single-slot mutable variable whose `put` waits until empty
//!   and whose `take` waits until full, the classic building block the paper
//!   cites from Id's M-structures, Concurrent Haskell's MVars and CML;
//! * [`Future`] — a write-once MVar: "a singleton piped iterator that
//!   produces one result forms a future" (Sec. III.B).

/// Expands its body only when the `obs` feature is on, so instrumentation
/// call sites vanish from the compilation entirely (not even a no-op call)
/// when observability is disabled. Textual macro scoping makes this
/// visible in the modules declared below.
#[cfg(feature = "obs")]
macro_rules! obs_on {
    ($($body:tt)*) => { $($body)* };
}
#[cfg(not(feature = "obs"))]
macro_rules! obs_on {
    ($($body:tt)*) => {};
}

/// A deterministic fault-injection site (see the `faultinj` crate).
/// Compiles to nothing without the `faultinj` feature — the same
/// zero-cost pattern as `obs_on!` — so production builds carry no
/// injection code at all.
#[cfg(feature = "faultinj")]
macro_rules! faultpoint {
    ($site:expr) => {
        faultinj::hit($site)
    };
}
#[cfg(not(feature = "faultinj"))]
macro_rules! faultpoint {
    ($site:expr) => {};
}

pub mod fault;
mod mvar;
mod queue;
#[cfg(feature = "obs")]
mod stats;
pub mod testkit;

pub use fault::{CloseCause, Fault};
pub use mvar::{Future, MVar};
pub use queue::{BlockingQueue, PutError, TimedOut, TryPutError, TryTakeError};

/// Force-register this crate's obs metrics so snapshots carry explicit
/// zeros (`blockingq.close.failed` in particular) even before any event
/// fires. No-op without the `obs` feature.
pub fn obs_register() {
    #[cfg(feature = "obs")]
    {
        stats::queue();
        stats::mvar();
    }
}
