//! A bounded MPMC blocking queue with close semantics and batch
//! operations that amortize the per-element lock/condvar cost.

use crate::fault::CloseCause;
use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::fmt;
use std::sync::Arc;
use std::time::Duration;

/// Error returned by [`BlockingQueue::put`] when the queue has been closed;
/// carries the rejected element back to the caller.
#[derive(Debug, PartialEq, Eq)]
pub struct PutError<T>(pub T);

/// Error returned by [`BlockingQueue::try_put`].
#[derive(Debug, PartialEq, Eq)]
pub enum TryPutError<T> {
    /// The queue is at capacity.
    Full(T),
    /// The queue has been closed.
    Closed(T),
}

/// Error returned by [`BlockingQueue::take_timeout`] when the deadline
/// passes without an element or a close.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimedOut;

/// Error returned by [`BlockingQueue::try_take`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryTakeError {
    /// The queue is currently empty (but not closed).
    Empty,
    /// The queue is closed and fully drained.
    Closed,
}

struct State<T> {
    buf: VecDeque<T>,
    /// `Some(cause)` once closed. The first close wins: a later
    /// `close`/`close_with` never overwrites a recorded cause.
    cause: Option<CloseCause>,
    /// Threads currently parked waiting for space / for data. Maintained
    /// under the state lock (no extra synchronization); exposed through
    /// [`BlockingQueue::blocked_producers`]/[`BlockingQueue::blocked_consumers`]
    /// so tests can wait for a peer to actually park instead of sleeping.
    put_waiters: usize,
    take_waiters: usize,
}

struct Shared<T> {
    state: Mutex<State<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
}

/// A multi-producer multi-consumer FIFO with blocking `put`/`take`.
///
/// Cloning the handle is cheap and shares the same queue. Capacity `0` is
/// normalized to `1` (a rendezvous-ish single slot, as a `SynchronousQueue`
/// substitute); [`BlockingQueue::unbounded`] never blocks producers.
///
/// Closing the queue wakes all waiters: producers get their element back via
/// [`PutError`]; consumers drain the remaining buffered elements and then
/// observe end-of-stream (`None`). This is how a pipe signals that its
/// underlying generator failed (terminated). The close carries a
/// [`CloseCause`]: plain [`BlockingQueue::close`] records `Finished`
/// (clean end-of-stream), while [`BlockingQueue::close_with`] can record
/// `Failed(Fault)` so consumers — via the `*_with_cause` take variants or
/// [`BlockingQueue::close_cause`] — can tell a crash from completion.
pub struct BlockingQueue<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Clone for BlockingQueue<T> {
    fn clone(&self) -> Self {
        BlockingQueue {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> BlockingQueue<T> {
    /// Create a bounded queue holding at most `capacity` elements
    /// (minimum 1).
    pub fn bounded(capacity: usize) -> Self {
        BlockingQueue {
            shared: Arc::new(Shared {
                state: Mutex::new(State {
                    buf: VecDeque::new(),
                    cause: None,
                    put_waiters: 0,
                    take_waiters: 0,
                }),
                not_empty: Condvar::new(),
                not_full: Condvar::new(),
                capacity: capacity.max(1),
            }),
        }
    }

    /// Create a queue with no capacity bound; `put` never blocks.
    pub fn unbounded() -> Self {
        BlockingQueue {
            shared: Arc::new(Shared {
                state: Mutex::new(State {
                    buf: VecDeque::new(),
                    cause: None,
                    put_waiters: 0,
                    take_waiters: 0,
                }),
                not_empty: Condvar::new(),
                not_full: Condvar::new(),
                capacity: usize::MAX,
            }),
        }
    }

    /// The configured capacity (`usize::MAX` when unbounded).
    pub fn capacity(&self) -> usize {
        self.shared.capacity
    }

    /// Number of elements currently buffered.
    pub fn len(&self) -> usize {
        self.shared.state.lock().buf.len()
    }

    /// True iff no elements are buffered.
    pub fn is_empty(&self) -> bool {
        self.shared.state.lock().buf.is_empty()
    }

    /// True iff [`BlockingQueue::close`] has been called.
    pub fn is_closed(&self) -> bool {
        self.shared.state.lock().cause.is_some()
    }

    /// Number of threads currently parked in a blocking put waiting for
    /// space. Instantaneously accurate (maintained under the state lock),
    /// but of course stale the moment it returns; meant for tests and
    /// diagnostics — see [`crate::testkit::wait_until`].
    pub fn blocked_producers(&self) -> usize {
        self.shared.state.lock().put_waiters
    }

    /// Number of threads currently parked in a blocking take/batch-take
    /// waiting for data. Same caveats as
    /// [`BlockingQueue::blocked_producers`].
    pub fn blocked_consumers(&self) -> usize {
        self.shared.state.lock().take_waiters
    }

    /// Block until space is available, then enqueue `v`.
    ///
    /// Returns `Err(PutError(v))` if the queue is (or becomes, while
    /// waiting) closed.
    pub fn put(&self, v: T) -> Result<(), PutError<T>> {
        faultpoint!("blockingq.put");
        let mut st = self.shared.state.lock();
        obs_on!(let mut waited = false;);
        loop {
            if st.cause.is_some() {
                return Err(PutError(v));
            }
            if st.buf.len() < self.shared.capacity {
                st.buf.push_back(v);
                obs_on!(let depth = st.buf.len(););
                drop(st);
                self.shared.not_empty.notify_one();
                obs_on!({
                    crate::stats::queue().puts.inc();
                    crate::stats::queue()
                        .depth_highwater
                        .record_max(depth as i64);
                });
                return Ok(());
            }
            obs_on!(if !waited {
                waited = true;
                crate::stats::queue().blocked_puts.inc();
            });
            st.put_waiters += 1;
            self.shared.not_full.wait(&mut st);
            st.put_waiters -= 1;
        }
    }

    /// Enqueue without blocking.
    pub fn try_put(&self, v: T) -> Result<(), TryPutError<T>> {
        let mut st = self.shared.state.lock();
        if st.cause.is_some() {
            return Err(TryPutError::Closed(v));
        }
        if st.buf.len() >= self.shared.capacity {
            return Err(TryPutError::Full(v));
        }
        st.buf.push_back(v);
        obs_on!(let depth = st.buf.len(););
        drop(st);
        self.shared.not_empty.notify_one();
        obs_on!({
            crate::stats::queue().puts.inc();
            crate::stats::queue()
                .depth_highwater
                .record_max(depth as i64);
        });
        Ok(())
    }

    /// Enqueue a whole batch, blocking for space as needed, in one (or as
    /// few as possible) mutex acquisitions. FIFO order within the batch is
    /// preserved, and elements of a batch are never interleaved with a
    /// *concurrent* `put_all` from another producer unless this call had
    /// to block for space part-way through.
    ///
    /// A batch larger than the remaining capacity *straddles the bound*:
    /// the fitting prefix is enqueued (and consumers are woken) before the
    /// producer blocks for space for the rest. If the queue is — or
    /// becomes, while waiting — closed, the **unaccepted suffix** is
    /// refunded via `Err(PutError(suffix))`; everything before it was
    /// enqueued and will be seen by consumers. An empty batch succeeds
    /// trivially (even on a closed queue).
    pub fn put_all(&self, items: Vec<T>) -> Result<(), PutError<Vec<T>>> {
        if items.is_empty() {
            return Ok(());
        }
        faultpoint!("blockingq.put_all");
        obs_on!(let total = items.len(); let mut accepted = 0usize;);
        let mut iter = items.into_iter().peekable();
        let mut st = self.shared.state.lock();
        obs_on!(let mut waited = false;);
        loop {
            if st.cause.is_some() {
                drop(st);
                let rest: Vec<T> = iter.collect();
                obs_on!({
                    accepted = total - rest.len();
                    record_batch_put(accepted, 0);
                });
                return Err(PutError(rest));
            }
            let mut moved = false;
            while iter.peek().is_some() && st.buf.len() < self.shared.capacity {
                st.buf.push_back(iter.next().expect("peeked"));
                moved = true;
            }
            if iter.peek().is_none() {
                obs_on!(let depth = st.buf.len(););
                drop(st);
                self.shared.not_empty.notify_all();
                obs_on!({
                    let _ = accepted;
                    record_batch_put(total, depth);
                });
                return Ok(());
            }
            // Partial fill: make the accepted prefix visible to consumers
            // before sleeping, or a full queue with a blocked consumer
            // elsewhere could deadlock on a never-sent wakeup.
            if moved {
                self.shared.not_empty.notify_all();
            }
            obs_on!(if !waited {
                waited = true;
                crate::stats::queue().blocked_puts.inc();
            });
            st.put_waiters += 1;
            self.shared.not_full.wait(&mut st);
            st.put_waiters -= 1;
        }
    }

    /// Enqueue as much of a batch as fits, without blocking.
    ///
    /// * `Ok(())` — every element was enqueued.
    /// * `Err(TryPutError::Closed(items))` — the queue is closed; nothing
    ///   was enqueued, the whole batch is refunded.
    /// * `Err(TryPutError::Full(suffix))` — the fitting prefix **was
    ///   enqueued**; `suffix` is the refunded remainder (non-empty). The
    ///   accepted count is the original length minus `suffix.len()`.
    ///
    /// An empty batch succeeds trivially.
    pub fn try_put_all(&self, items: Vec<T>) -> Result<(), TryPutError<Vec<T>>> {
        if items.is_empty() {
            return Ok(());
        }
        let mut st = self.shared.state.lock();
        if st.cause.is_some() {
            return Err(TryPutError::Closed(items));
        }
        let room = self.shared.capacity - st.buf.len();
        if room == 0 {
            return Err(TryPutError::Full(items));
        }
        if items.len() <= room {
            obs_on!(let n = items.len(););
            st.buf.extend(items);
            obs_on!(let depth = st.buf.len(););
            drop(st);
            self.shared.not_empty.notify_all();
            obs_on!(record_batch_put(n, depth););
            Ok(())
        } else {
            let mut iter = items.into_iter();
            for _ in 0..room {
                st.buf.push_back(iter.next().expect("room < len"));
            }
            obs_on!(let depth = st.buf.len(););
            drop(st);
            self.shared.not_empty.notify_all();
            obs_on!(record_batch_put(room, depth););
            Err(TryPutError::Full(iter.collect()))
        }
    }

    /// Block until an element is available and dequeue it.
    ///
    /// Returns `None` once the queue is closed *and* drained. Callers
    /// that need to distinguish a clean end from a failure use
    /// [`BlockingQueue::take_with_cause`].
    pub fn take(&self) -> Option<T> {
        self.take_with_cause().ok()
    }

    /// Like [`BlockingQueue::take`], but end-of-stream returns the
    /// recorded [`CloseCause`] instead of a bare `None`.
    pub fn take_with_cause(&self) -> Result<T, CloseCause> {
        faultpoint!("blockingq.take");
        let mut st = self.shared.state.lock();
        obs_on!(let mut waited = false;);
        loop {
            if let Some(v) = st.buf.pop_front() {
                drop(st);
                self.shared.not_full.notify_one();
                obs_on!(crate::stats::queue().takes.inc(););
                return Ok(v);
            }
            if let Some(cause) = &st.cause {
                return Err(cause.clone());
            }
            obs_on!(if !waited {
                waited = true;
                crate::stats::queue().blocked_takes.inc();
            });
            st.take_waiters += 1;
            self.shared.not_empty.wait(&mut st);
            st.take_waiters -= 1;
        }
    }

    /// Dequeue without blocking.
    pub fn try_take(&self) -> Result<T, TryTakeError> {
        let mut st = self.shared.state.lock();
        if let Some(v) = st.buf.pop_front() {
            drop(st);
            self.shared.not_full.notify_one();
            obs_on!(crate::stats::queue().takes.inc(););
            return Ok(v);
        }
        if st.cause.is_some() {
            Err(TryTakeError::Closed)
        } else {
            Err(TryTakeError::Empty)
        }
    }

    /// Block until at least one element is available, then dequeue up to
    /// `max` elements in a single mutex acquisition, preserving FIFO
    /// order. Returns `None` once the queue is closed *and* drained.
    ///
    /// `max == 0` yields an empty batch immediately, without blocking or
    /// consulting the queue (the degenerate no-op batch).
    pub fn take_batch(&self, max: usize) -> Option<Vec<T>> {
        self.take_batch_with_cause(max).ok()
    }

    /// Like [`BlockingQueue::take_batch`], but end-of-stream returns the
    /// recorded [`CloseCause`] instead of a bare `None`.
    pub fn take_batch_with_cause(&self, max: usize) -> Result<Vec<T>, CloseCause> {
        if max == 0 {
            return Ok(Vec::new());
        }
        faultpoint!("blockingq.take");
        let mut st = self.shared.state.lock();
        obs_on!(let mut waited = false;);
        loop {
            if !st.buf.is_empty() {
                let n = st.buf.len().min(max);
                let out: Vec<T> = st.buf.drain(..n).collect();
                drop(st);
                self.shared.not_full.notify_all();
                obs_on!(record_batch_take(n););
                return Ok(out);
            }
            if let Some(cause) = &st.cause {
                return Err(cause.clone());
            }
            obs_on!(if !waited {
                waited = true;
                crate::stats::queue().blocked_takes.inc();
            });
            st.take_waiters += 1;
            self.shared.not_empty.wait(&mut st);
            st.take_waiters -= 1;
        }
    }

    /// Dequeue up to `max` elements without blocking.
    ///
    /// `Ok(batch)` is non-empty unless `max == 0` (which returns an empty
    /// batch immediately); an empty open queue is `Err(TryTakeError::Empty)`
    /// and a closed drained one is `Err(TryTakeError::Closed)`.
    pub fn try_take_batch(&self, max: usize) -> Result<Vec<T>, TryTakeError> {
        if max == 0 {
            return Ok(Vec::new());
        }
        let mut st = self.shared.state.lock();
        if st.buf.is_empty() {
            return if st.cause.is_some() {
                Err(TryTakeError::Closed)
            } else {
                Err(TryTakeError::Empty)
            };
        }
        let n = st.buf.len().min(max);
        let out: Vec<T> = st.buf.drain(..n).collect();
        drop(st);
        self.shared.not_full.notify_all();
        obs_on!(record_batch_take(n););
        Ok(out)
    }

    /// Block until at least one element is available, then move the
    /// *entire* buffered contents into `out` (appending, FIFO order) in a
    /// single mutex acquisition. Returns the number of elements moved;
    /// `0` means the queue is closed and drained (end-of-stream).
    pub fn drain_into(&self, out: &mut Vec<T>) -> usize {
        self.drain_into_with_cause(out).unwrap_or(0)
    }

    /// Like [`BlockingQueue::drain_into`], but end-of-stream returns the
    /// recorded [`CloseCause`] instead of a bare `0`. `Ok(moved)` is
    /// always ≥ 1.
    pub fn drain_into_with_cause(&self, out: &mut Vec<T>) -> Result<usize, CloseCause> {
        let mut st = self.shared.state.lock();
        obs_on!(let mut waited = false;);
        loop {
            if !st.buf.is_empty() {
                let n = st.buf.len();
                out.reserve(n);
                out.extend(st.buf.drain(..));
                drop(st);
                self.shared.not_full.notify_all();
                obs_on!(record_batch_take(n););
                return Ok(n);
            }
            if let Some(cause) = &st.cause {
                return Err(cause.clone());
            }
            obs_on!(if !waited {
                waited = true;
                crate::stats::queue().blocked_takes.inc();
            });
            st.take_waiters += 1;
            self.shared.not_empty.wait(&mut st);
            st.take_waiters -= 1;
        }
    }

    /// Non-blocking [`BlockingQueue::drain_into`]: moves the entire
    /// buffered contents into `out` and returns `Ok(moved)` (≥ 1), or the
    /// reason nothing could be moved.
    pub fn try_drain_into(&self, out: &mut Vec<T>) -> Result<usize, TryTakeError> {
        let mut st = self.shared.state.lock();
        if st.buf.is_empty() {
            return if st.cause.is_some() {
                Err(TryTakeError::Closed)
            } else {
                Err(TryTakeError::Empty)
            };
        }
        let n = st.buf.len();
        out.reserve(n);
        out.extend(st.buf.drain(..));
        drop(st);
        self.shared.not_full.notify_all();
        obs_on!(record_batch_take(n););
        Ok(n)
    }

    /// Like [`BlockingQueue::take`] but gives up after `timeout`,
    /// returning `Ok(None)` on end-of-stream and `Err(TimedOut)` on timeout.
    ///
    /// `Err(TimedOut)` is only returned when the queue is genuinely empty
    /// and open when the wait ends: an element enqueued (or a close
    /// recorded) at-or-before the deadline is returned even if the
    /// condvar wait itself reports a timeout — a timed wake re-checks the
    /// state before giving up, so a put that landed at the deadline is
    /// never lost to a spurious `TimedOut`.
    pub fn take_timeout(&self, timeout: Duration) -> Result<Option<T>, TimedOut> {
        let deadline = std::time::Instant::now() + timeout;
        let mut st = self.shared.state.lock();
        obs_on!(let mut waited = false;);
        loop {
            if let Some(v) = st.buf.pop_front() {
                drop(st);
                self.shared.not_full.notify_one();
                obs_on!(crate::stats::queue().takes.inc(););
                return Ok(Some(v));
            }
            if st.cause.is_some() {
                return Ok(None);
            }
            obs_on!(if !waited {
                waited = true;
                crate::stats::queue().blocked_takes.inc();
            });
            st.take_waiters += 1;
            let timed_out = self
                .shared
                .not_empty
                .wait_until(&mut st, deadline)
                .timed_out();
            st.take_waiters -= 1;
            if timed_out {
                // Timed out *and* raced a put/close: the state re-check
                // wins over the timeout report.
                if let Some(v) = st.buf.pop_front() {
                    drop(st);
                    self.shared.not_full.notify_one();
                    obs_on!(crate::stats::queue().takes.inc(););
                    return Ok(Some(v));
                }
                if st.cause.is_some() {
                    return Ok(None);
                }
                return Err(TimedOut);
            }
        }
    }

    /// Close the queue: pending and future `put`s fail, consumers drain the
    /// buffer and then observe end-of-stream. Records `Finished` — the
    /// clean end-of-stream cause. Idempotent; see
    /// [`BlockingQueue::close_with`].
    pub fn close(&self) {
        self.close_with(CloseCause::Finished);
    }

    /// Close the queue recording `cause`. The first close wins: if a
    /// cause is already recorded, this is a no-op (so a producer's
    /// close-on-exit guard running *after* a fault was recorded cannot
    /// launder a `Failed` into a `Finished`, and vice versa a consumer
    /// that already hung up keeps its `Finished`).
    pub fn close_with(&self, cause: CloseCause) {
        let mut st = self.shared.state.lock();
        if st.cause.is_some() {
            return;
        }
        obs_on!({
            crate::stats::queue().closes.inc();
            if cause.is_failed() {
                crate::stats::queue().close_failed.inc();
            }
        });
        st.cause = Some(cause);
        drop(st);
        self.shared.not_empty.notify_all();
        self.shared.not_full.notify_all();
    }

    /// The recorded close cause, or `None` while the queue is open.
    pub fn close_cause(&self) -> Option<CloseCause> {
        self.shared.state.lock().cause.clone()
    }

    /// A blocking iterator over the queue: yields until end-of-stream.
    pub fn iter(&self) -> Drain<'_, T> {
        Drain { queue: self }
    }
}

/// Record one batch-put transaction of `n` elements (obs only): items
/// count toward `puts` (throughput is measured in *items*, whatever the
/// transport granularity), the transaction toward `batch_puts`, and the
/// fill toward the `batch_fill` histogram. No-op for an empty batch.
#[cfg(feature = "obs")]
fn record_batch_put(n: usize, depth: usize) {
    if n == 0 {
        return;
    }
    let stats = crate::stats::queue();
    stats.puts.add(n as u64);
    stats.batch_puts.inc();
    stats.batch_fill.record(n as u64);
    if depth > 0 {
        stats.depth_highwater.record_max(depth as i64);
    }
}

/// Record one batch-take transaction of `n` elements (obs only); see
/// [`record_batch_put`].
#[cfg(feature = "obs")]
fn record_batch_take(n: usize) {
    if n == 0 {
        return;
    }
    let stats = crate::stats::queue();
    stats.takes.add(n as u64);
    stats.batch_takes.inc();
    stats.batch_fill.record(n as u64);
}

impl<T> fmt::Debug for BlockingQueue<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let st = self.shared.state.lock();
        f.debug_struct("BlockingQueue")
            .field("len", &st.buf.len())
            .field("capacity", &self.shared.capacity)
            .field("closed", &st.cause)
            .finish()
    }
}

/// Blocking consuming iterator returned by [`BlockingQueue::iter`].
pub struct Drain<'a, T> {
    queue: &'a BlockingQueue<T>,
}

impl<T> Iterator for Drain<'_, T> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        self.queue.take()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit;
    use std::thread;
    use std::time::Duration;

    #[test]
    fn fifo_order_single_thread() {
        let q = BlockingQueue::bounded(10);
        for i in 0..5 {
            q.put(i).unwrap();
        }
        for i in 0..5 {
            assert_eq!(q.take(), Some(i));
        }
    }

    #[test]
    fn capacity_zero_is_one_slot() {
        let q = BlockingQueue::bounded(0);
        assert_eq!(q.capacity(), 1);
        q.put(1).unwrap();
        assert!(matches!(q.try_put(2), Err(TryPutError::Full(2))));
    }

    #[test]
    fn try_take_empty_and_closed() {
        let q: BlockingQueue<i32> = BlockingQueue::bounded(2);
        assert_eq!(q.try_take(), Err(TryTakeError::Empty));
        q.close();
        assert_eq!(q.try_take(), Err(TryTakeError::Closed));
    }

    #[test]
    fn close_drains_then_ends() {
        let q = BlockingQueue::bounded(4);
        q.put(1).unwrap();
        q.put(2).unwrap();
        q.close();
        assert!(q.put(3).is_err());
        assert_eq!(q.take(), Some(1));
        assert_eq!(q.take(), Some(2));
        assert_eq!(q.take(), None);
        assert_eq!(q.take(), None); // stays ended
    }

    #[test]
    fn blocked_producer_wakes_on_take() {
        let q = BlockingQueue::bounded(1);
        q.put(0).unwrap();
        let q2 = q.clone();
        let h = thread::spawn(move || q2.put(1));
        testkit::wait_until("putter parked", || q.blocked_producers() == 1);
        assert_eq!(q.take(), Some(0));
        h.join().unwrap().unwrap();
        assert_eq!(q.take(), Some(1));
    }

    #[test]
    fn blocked_consumer_wakes_on_put() {
        let q: BlockingQueue<i32> = BlockingQueue::bounded(1);
        let q2 = q.clone();
        let h = thread::spawn(move || q2.take());
        testkit::wait_until("taker parked", || q.blocked_consumers() == 1);
        q.put(42).unwrap();
        assert_eq!(h.join().unwrap(), Some(42));
    }

    #[test]
    fn blocked_producer_wakes_on_close() {
        let q = BlockingQueue::bounded(1);
        q.put(0).unwrap();
        let q2 = q.clone();
        let h = thread::spawn(move || q2.put(1));
        testkit::wait_until("putter parked", || q.blocked_producers() == 1);
        q.close();
        assert_eq!(h.join().unwrap(), Err(PutError(1)));
    }

    #[test]
    fn blocked_consumer_wakes_on_close() {
        let q: BlockingQueue<i32> = BlockingQueue::bounded(1);
        let q2 = q.clone();
        let h = thread::spawn(move || q2.take());
        testkit::wait_until("taker parked", || q.blocked_consumers() == 1);
        q.close();
        assert_eq!(h.join().unwrap(), None);
    }

    #[test]
    fn take_timeout_times_out_then_succeeds() {
        let q: BlockingQueue<i32> = BlockingQueue::bounded(1);
        assert_eq!(q.take_timeout(Duration::from_millis(10)), Err(TimedOut));
        q.put(5).unwrap();
        assert_eq!(q.take_timeout(Duration::from_millis(10)), Ok(Some(5)));
        q.close();
        assert_eq!(q.take_timeout(Duration::from_millis(10)), Ok(None));
    }

    #[test]
    fn unbounded_never_blocks_producer() {
        let q = BlockingQueue::unbounded();
        for i in 0..10_000 {
            q.put(i).unwrap();
        }
        assert_eq!(q.len(), 10_000);
        assert_eq!(q.take(), Some(0));
    }

    #[test]
    fn mpmc_sum_is_conserved() {
        let q = BlockingQueue::bounded(8);
        let n_producers = 4;
        let per_producer = 1000u64;
        let mut handles = Vec::new();
        for p in 0..n_producers {
            let q = q.clone();
            handles.push(thread::spawn(move || {
                for i in 0..per_producer {
                    q.put(p * per_producer + i).unwrap();
                }
            }));
        }
        let mut consumers = Vec::new();
        for _ in 0..3 {
            let q = q.clone();
            consumers.push(thread::spawn(move || {
                let mut sum = 0u64;
                while let Some(v) = q.take() {
                    sum += v;
                }
                sum
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        q.close();
        let total: u64 = consumers.into_iter().map(|c| c.join().unwrap()).sum();
        let expect: u64 = (0..n_producers * per_producer).sum();
        assert_eq!(total, expect);
    }

    #[test]
    fn drain_iterator_ends_at_close() {
        let q = BlockingQueue::bounded(16);
        for i in 0..6 {
            q.put(i).unwrap();
        }
        q.close();
        let got: Vec<i32> = q.iter().collect();
        assert_eq!(got, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn put_all_take_batch_roundtrip_fifo() {
        let q = BlockingQueue::bounded(16);
        q.put_all((0..5).collect()).unwrap();
        q.put(5).unwrap();
        q.put_all(vec![6, 7]).unwrap();
        assert_eq!(q.take_batch(3), Some(vec![0, 1, 2]));
        assert_eq!(q.take(), Some(3));
        assert_eq!(q.take_batch(100), Some(vec![4, 5, 6, 7]));
    }

    #[test]
    fn empty_batch_is_a_noop_even_when_closed() {
        let q: BlockingQueue<i32> = BlockingQueue::bounded(2);
        q.close();
        assert_eq!(q.put_all(vec![]), Ok(()));
        assert_eq!(q.try_put_all(vec![]), Ok(()));
        assert_eq!(q.take_batch(0), Some(vec![]));
        assert_eq!(q.try_take_batch(0), Ok(vec![]));
    }

    #[test]
    fn put_all_on_closed_refunds_everything() {
        let q: BlockingQueue<i32> = BlockingQueue::bounded(4);
        q.close();
        assert_eq!(q.put_all(vec![1, 2, 3]), Err(PutError(vec![1, 2, 3])));
    }

    #[test]
    fn put_all_straddles_capacity_then_blocks() {
        // Batch of 6 into capacity 2: the prefix lands immediately, the
        // producer blocks, and the consumer receives everything in order.
        let q = BlockingQueue::bounded(2);
        let q2 = q.clone();
        let h = thread::spawn(move || q2.put_all((0..6).collect()));
        testkit::wait_until("producer parked mid-batch", || q.blocked_producers() == 1);
        assert_eq!(q.len(), 2, "prefix visible before producer unblocks");
        let mut got = Vec::new();
        while got.len() < 6 {
            got.extend(q.take_batch(4).expect("open"));
        }
        h.join().unwrap().unwrap();
        assert_eq!(got, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn put_all_close_mid_straddle_refunds_suffix() {
        let q = BlockingQueue::bounded(2);
        let q2 = q.clone();
        let h = thread::spawn(move || q2.put_all((0..6).collect()));
        testkit::wait_until("producer parked mid-batch", || q.blocked_producers() == 1);
        q.close();
        let refund = h.join().unwrap().expect_err("closed mid-batch").0;
        // Accepted prefix drains; refund is exactly the untaken suffix.
        let drained: Vec<i32> = q.iter().collect();
        let mut all = drained;
        all.extend(refund);
        assert_eq!(all, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn try_put_all_partial_accept_reports_suffix() {
        let q = BlockingQueue::bounded(3);
        q.put(0).unwrap();
        match q.try_put_all(vec![1, 2, 3, 4]) {
            Err(TryPutError::Full(rest)) => assert_eq!(rest, vec![3, 4]),
            other => panic!("expected Full suffix, got {other:?}"),
        }
        assert_eq!(q.take_batch(10), Some(vec![0, 1, 2]));
        // At capacity: nothing accepted, whole batch refunded.
        q.put_all(vec![9, 9, 9]).unwrap();
        assert_eq!(q.try_put_all(vec![5]), Err(TryPutError::Full(vec![5])));
        q.close();
        assert_eq!(
            q.try_put_all(vec![6, 7]),
            Err(TryPutError::Closed(vec![6, 7]))
        );
    }

    #[test]
    fn take_batch_blocks_until_data_or_close() {
        let q: BlockingQueue<i32> = BlockingQueue::bounded(4);
        let q2 = q.clone();
        let h = thread::spawn(move || q2.take_batch(8));
        testkit::wait_until("batch taker parked", || q.blocked_consumers() == 1);
        q.put_all(vec![1, 2]).unwrap();
        assert_eq!(h.join().unwrap(), Some(vec![1, 2]));
        let q3 = q.clone();
        let h = thread::spawn(move || q3.take_batch(8));
        testkit::wait_until("batch taker parked", || q.blocked_consumers() == 1);
        q.close();
        assert_eq!(h.join().unwrap(), None);
    }

    #[test]
    fn try_take_batch_empty_and_closed() {
        let q: BlockingQueue<i32> = BlockingQueue::bounded(4);
        assert_eq!(q.try_take_batch(3), Err(TryTakeError::Empty));
        q.put_all(vec![1, 2, 3]).unwrap();
        assert_eq!(q.try_take_batch(2), Ok(vec![1, 2]));
        q.close();
        assert_eq!(q.try_take_batch(2), Ok(vec![3]));
        assert_eq!(q.try_take_batch(2), Err(TryTakeError::Closed));
    }

    #[test]
    fn drain_into_appends_and_signals_eos() {
        let q = BlockingQueue::bounded(8);
        q.put_all(vec![1, 2, 3]).unwrap();
        let mut out = vec![0];
        assert_eq!(q.drain_into(&mut out), 3);
        assert_eq!(out, vec![0, 1, 2, 3]);
        assert_eq!(q.try_drain_into(&mut out), Err(TryTakeError::Empty));
        q.put(4).unwrap();
        assert_eq!(q.try_drain_into(&mut out), Ok(1));
        q.close();
        assert_eq!(q.drain_into(&mut out), 0, "end-of-stream");
        assert_eq!(q.try_drain_into(&mut out), Err(TryTakeError::Closed));
        assert_eq!(out, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn batch_take_wakes_multiple_blocked_producers() {
        // Draining a full queue in one batch must wake every producer
        // blocked on space, not just one.
        let q = BlockingQueue::bounded(2);
        q.put_all(vec![0, 1]).unwrap();
        let producers: Vec<_> = (0..3)
            .map(|i| {
                let q = q.clone();
                thread::spawn(move || q.put(10 + i))
            })
            .collect();
        testkit::wait_until("all three putters parked", || q.blocked_producers() == 3);
        let mut got = q.take_batch(16).expect("open");
        while got.len() < 5 {
            got.extend(q.take_batch(16).expect("open"));
        }
        for p in producers {
            p.join().unwrap().unwrap();
        }
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 10, 11, 12]);
    }

    #[test]
    fn close_with_failed_surfaces_the_cause() {
        use crate::fault::{CloseCause, Fault};
        let q = BlockingQueue::bounded(4);
        q.put_all(vec![1, 2]).unwrap();
        q.close_with(CloseCause::Failed(Fault::new("stage-x", "boom")));
        // The buffered prefix still drains...
        assert_eq!(q.take_with_cause(), Ok(1));
        assert_eq!(q.take_batch_with_cause(8), Ok(vec![2]));
        // ...then every take shape reports the cause, repeatably.
        let cause = q.take_with_cause().expect_err("ended");
        assert!(cause.is_failed());
        assert_eq!(cause.fault().unwrap().stage(), "stage-x");
        assert_eq!(cause.fault().unwrap().message(), "boom");
        assert_eq!(q.take_batch_with_cause(8).expect_err("ended"), cause);
        let mut out = Vec::new();
        assert_eq!(q.drain_into_with_cause(&mut out).expect_err("ended"), cause);
        assert_eq!(q.close_cause(), Some(cause));
        // The legacy shapes still see a plain end-of-stream.
        assert_eq!(q.take(), None);
        assert_eq!(q.take_batch(8), None);
        assert_eq!(q.drain_into(&mut out), 0);
    }

    #[test]
    fn first_close_cause_wins() {
        use crate::fault::{CloseCause, Fault};
        let q: BlockingQueue<i32> = BlockingQueue::bounded(1);
        q.close_with(CloseCause::Failed(Fault::new("s", "first")));
        q.close(); // the late Finished must not launder the failure
        assert!(q.close_cause().unwrap().is_failed());

        let q: BlockingQueue<i32> = BlockingQueue::bounded(1);
        q.close();
        q.close_with(CloseCause::Failed(Fault::new("s", "late")));
        assert_eq!(q.close_cause(), Some(CloseCause::Finished));
    }

    #[test]
    fn plain_close_reports_finished() {
        use crate::fault::CloseCause;
        let q: BlockingQueue<i32> = BlockingQueue::bounded(1);
        assert_eq!(q.close_cause(), None);
        q.close();
        assert_eq!(q.take_with_cause(), Err(CloseCause::Finished));
        assert_eq!(q.close_cause(), Some(CloseCause::Finished));
    }

    #[test]
    fn blocked_takers_wake_with_the_cause() {
        use crate::fault::{CloseCause, Fault};
        let q: BlockingQueue<i32> = BlockingQueue::bounded(1);
        let q2 = q.clone();
        let h = thread::spawn(move || q2.take_with_cause());
        testkit::wait_until("taker parked", || q.blocked_consumers() == 1);
        q.close_with(CloseCause::Failed(Fault::new("producer", "died")));
        let cause = h.join().unwrap().expect_err("ended");
        assert_eq!(cause.fault().unwrap().message(), "died");
    }

    #[test]
    fn take_timeout_prefers_item_over_concurrent_deadline() {
        // Deterministic corner: an element already buffered is returned
        // even when the deadline has long passed (a zero-length timeout
        // with data present must not report TimedOut).
        let q = BlockingQueue::bounded(2);
        q.put(7).unwrap();
        assert_eq!(q.take_timeout(Duration::from_millis(0)), Ok(Some(7)));
        q.close();
        assert_eq!(q.take_timeout(Duration::from_millis(0)), Ok(None));
    }

    #[test]
    fn bounded_capacity_throttles() {
        // A slow consumer bounds how far ahead the producer can run.
        let q = BlockingQueue::bounded(2);
        let q2 = q.clone();
        let produced = std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let produced2 = produced.clone();
        let h = thread::spawn(move || {
            for i in 0..100 {
                q2.put(i).unwrap();
                produced2.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            }
        });
        // Once the producer is parked on a full queue its progress
        // counter is stable: no consumer exists yet to free space.
        testkit::wait_until("producer throttled", || q.blocked_producers() == 1);
        let ahead = produced.load(std::sync::atomic::Ordering::SeqCst);
        assert!(ahead <= 3, "producer ran ahead: {ahead}");
        for _ in 0..100 {
            q.take().unwrap();
        }
        h.join().unwrap();
    }
}
