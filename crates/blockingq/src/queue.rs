//! A bounded MPMC blocking queue with close semantics.

use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::fmt;
use std::sync::Arc;
use std::time::Duration;

/// Error returned by [`BlockingQueue::put`] when the queue has been closed;
/// carries the rejected element back to the caller.
#[derive(Debug, PartialEq, Eq)]
pub struct PutError<T>(pub T);

/// Error returned by [`BlockingQueue::try_put`].
#[derive(Debug, PartialEq, Eq)]
pub enum TryPutError<T> {
    /// The queue is at capacity.
    Full(T),
    /// The queue has been closed.
    Closed(T),
}

/// Error returned by [`BlockingQueue::take_timeout`] when the deadline
/// passes without an element or a close.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimedOut;

/// Error returned by [`BlockingQueue::try_take`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryTakeError {
    /// The queue is currently empty (but not closed).
    Empty,
    /// The queue is closed and fully drained.
    Closed,
}

struct State<T> {
    buf: VecDeque<T>,
    closed: bool,
}

struct Shared<T> {
    state: Mutex<State<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
}

/// A multi-producer multi-consumer FIFO with blocking `put`/`take`.
///
/// Cloning the handle is cheap and shares the same queue. Capacity `0` is
/// normalized to `1` (a rendezvous-ish single slot, as a `SynchronousQueue`
/// substitute); [`BlockingQueue::unbounded`] never blocks producers.
///
/// Closing the queue wakes all waiters: producers get their element back via
/// [`PutError`]; consumers drain the remaining buffered elements and then
/// observe end-of-stream (`None`). This is how a pipe signals that its
/// underlying generator failed (terminated).
pub struct BlockingQueue<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Clone for BlockingQueue<T> {
    fn clone(&self) -> Self {
        BlockingQueue {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> BlockingQueue<T> {
    /// Create a bounded queue holding at most `capacity` elements
    /// (minimum 1).
    pub fn bounded(capacity: usize) -> Self {
        BlockingQueue {
            shared: Arc::new(Shared {
                state: Mutex::new(State {
                    buf: VecDeque::new(),
                    closed: false,
                }),
                not_empty: Condvar::new(),
                not_full: Condvar::new(),
                capacity: capacity.max(1),
            }),
        }
    }

    /// Create a queue with no capacity bound; `put` never blocks.
    pub fn unbounded() -> Self {
        BlockingQueue {
            shared: Arc::new(Shared {
                state: Mutex::new(State {
                    buf: VecDeque::new(),
                    closed: false,
                }),
                not_empty: Condvar::new(),
                not_full: Condvar::new(),
                capacity: usize::MAX,
            }),
        }
    }

    /// The configured capacity (`usize::MAX` when unbounded).
    pub fn capacity(&self) -> usize {
        self.shared.capacity
    }

    /// Number of elements currently buffered.
    pub fn len(&self) -> usize {
        self.shared.state.lock().buf.len()
    }

    /// True iff no elements are buffered.
    pub fn is_empty(&self) -> bool {
        self.shared.state.lock().buf.is_empty()
    }

    /// True iff [`BlockingQueue::close`] has been called.
    pub fn is_closed(&self) -> bool {
        self.shared.state.lock().closed
    }

    /// Block until space is available, then enqueue `v`.
    ///
    /// Returns `Err(PutError(v))` if the queue is (or becomes, while
    /// waiting) closed.
    pub fn put(&self, v: T) -> Result<(), PutError<T>> {
        let mut st = self.shared.state.lock();
        obs_on!(let mut waited = false;);
        loop {
            if st.closed {
                return Err(PutError(v));
            }
            if st.buf.len() < self.shared.capacity {
                st.buf.push_back(v);
                obs_on!(let depth = st.buf.len(););
                drop(st);
                self.shared.not_empty.notify_one();
                obs_on!({
                    crate::stats::queue().puts.inc();
                    crate::stats::queue()
                        .depth_highwater
                        .record_max(depth as i64);
                });
                return Ok(());
            }
            obs_on!(if !waited {
                waited = true;
                crate::stats::queue().blocked_puts.inc();
            });
            self.shared.not_full.wait(&mut st);
        }
    }

    /// Enqueue without blocking.
    pub fn try_put(&self, v: T) -> Result<(), TryPutError<T>> {
        let mut st = self.shared.state.lock();
        if st.closed {
            return Err(TryPutError::Closed(v));
        }
        if st.buf.len() >= self.shared.capacity {
            return Err(TryPutError::Full(v));
        }
        st.buf.push_back(v);
        obs_on!(let depth = st.buf.len(););
        drop(st);
        self.shared.not_empty.notify_one();
        obs_on!({
            crate::stats::queue().puts.inc();
            crate::stats::queue()
                .depth_highwater
                .record_max(depth as i64);
        });
        Ok(())
    }

    /// Block until an element is available and dequeue it.
    ///
    /// Returns `None` once the queue is closed *and* drained.
    pub fn take(&self) -> Option<T> {
        let mut st = self.shared.state.lock();
        obs_on!(let mut waited = false;);
        loop {
            if let Some(v) = st.buf.pop_front() {
                drop(st);
                self.shared.not_full.notify_one();
                obs_on!(crate::stats::queue().takes.inc(););
                return Some(v);
            }
            if st.closed {
                return None;
            }
            obs_on!(if !waited {
                waited = true;
                crate::stats::queue().blocked_takes.inc();
            });
            self.shared.not_empty.wait(&mut st);
        }
    }

    /// Dequeue without blocking.
    pub fn try_take(&self) -> Result<T, TryTakeError> {
        let mut st = self.shared.state.lock();
        if let Some(v) = st.buf.pop_front() {
            drop(st);
            self.shared.not_full.notify_one();
            obs_on!(crate::stats::queue().takes.inc(););
            return Ok(v);
        }
        if st.closed {
            Err(TryTakeError::Closed)
        } else {
            Err(TryTakeError::Empty)
        }
    }

    /// Like [`BlockingQueue::take`] but gives up after `timeout`,
    /// returning `Ok(None)` on end-of-stream and `Err(TimedOut)` on timeout.
    pub fn take_timeout(&self, timeout: Duration) -> Result<Option<T>, TimedOut> {
        let deadline = std::time::Instant::now() + timeout;
        let mut st = self.shared.state.lock();
        obs_on!(let mut waited = false;);
        loop {
            if let Some(v) = st.buf.pop_front() {
                drop(st);
                self.shared.not_full.notify_one();
                obs_on!(crate::stats::queue().takes.inc(););
                return Ok(Some(v));
            }
            if st.closed {
                return Ok(None);
            }
            obs_on!(if !waited {
                waited = true;
                crate::stats::queue().blocked_takes.inc();
            });
            if self
                .shared
                .not_empty
                .wait_until(&mut st, deadline)
                .timed_out()
            {
                return Err(TimedOut);
            }
        }
    }

    /// Close the queue: pending and future `put`s fail, consumers drain the
    /// buffer and then observe end-of-stream. Idempotent.
    pub fn close(&self) {
        let mut st = self.shared.state.lock();
        obs_on!(if !st.closed {
            crate::stats::queue().closes.inc();
        });
        st.closed = true;
        drop(st);
        self.shared.not_empty.notify_all();
        self.shared.not_full.notify_all();
    }

    /// A blocking iterator over the queue: yields until end-of-stream.
    pub fn iter(&self) -> Drain<'_, T> {
        Drain { queue: self }
    }
}

impl<T> fmt::Debug for BlockingQueue<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let st = self.shared.state.lock();
        f.debug_struct("BlockingQueue")
            .field("len", &st.buf.len())
            .field("capacity", &self.shared.capacity)
            .field("closed", &st.closed)
            .finish()
    }
}

/// Blocking consuming iterator returned by [`BlockingQueue::iter`].
pub struct Drain<'a, T> {
    queue: &'a BlockingQueue<T>,
}

impl<T> Iterator for Drain<'_, T> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        self.queue.take()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;
    use std::time::Duration;

    #[test]
    fn fifo_order_single_thread() {
        let q = BlockingQueue::bounded(10);
        for i in 0..5 {
            q.put(i).unwrap();
        }
        for i in 0..5 {
            assert_eq!(q.take(), Some(i));
        }
    }

    #[test]
    fn capacity_zero_is_one_slot() {
        let q = BlockingQueue::bounded(0);
        assert_eq!(q.capacity(), 1);
        q.put(1).unwrap();
        assert!(matches!(q.try_put(2), Err(TryPutError::Full(2))));
    }

    #[test]
    fn try_take_empty_and_closed() {
        let q: BlockingQueue<i32> = BlockingQueue::bounded(2);
        assert_eq!(q.try_take(), Err(TryTakeError::Empty));
        q.close();
        assert_eq!(q.try_take(), Err(TryTakeError::Closed));
    }

    #[test]
    fn close_drains_then_ends() {
        let q = BlockingQueue::bounded(4);
        q.put(1).unwrap();
        q.put(2).unwrap();
        q.close();
        assert!(q.put(3).is_err());
        assert_eq!(q.take(), Some(1));
        assert_eq!(q.take(), Some(2));
        assert_eq!(q.take(), None);
        assert_eq!(q.take(), None); // stays ended
    }

    #[test]
    fn blocked_producer_wakes_on_take() {
        let q = BlockingQueue::bounded(1);
        q.put(0).unwrap();
        let q2 = q.clone();
        let h = thread::spawn(move || q2.put(1));
        thread::sleep(Duration::from_millis(20));
        assert_eq!(q.take(), Some(0));
        h.join().unwrap().unwrap();
        assert_eq!(q.take(), Some(1));
    }

    #[test]
    fn blocked_consumer_wakes_on_put() {
        let q: BlockingQueue<i32> = BlockingQueue::bounded(1);
        let q2 = q.clone();
        let h = thread::spawn(move || q2.take());
        thread::sleep(Duration::from_millis(20));
        q.put(42).unwrap();
        assert_eq!(h.join().unwrap(), Some(42));
    }

    #[test]
    fn blocked_producer_wakes_on_close() {
        let q = BlockingQueue::bounded(1);
        q.put(0).unwrap();
        let q2 = q.clone();
        let h = thread::spawn(move || q2.put(1));
        thread::sleep(Duration::from_millis(20));
        q.close();
        assert_eq!(h.join().unwrap(), Err(PutError(1)));
    }

    #[test]
    fn blocked_consumer_wakes_on_close() {
        let q: BlockingQueue<i32> = BlockingQueue::bounded(1);
        let q2 = q.clone();
        let h = thread::spawn(move || q2.take());
        thread::sleep(Duration::from_millis(20));
        q.close();
        assert_eq!(h.join().unwrap(), None);
    }

    #[test]
    fn take_timeout_times_out_then_succeeds() {
        let q: BlockingQueue<i32> = BlockingQueue::bounded(1);
        assert_eq!(q.take_timeout(Duration::from_millis(10)), Err(TimedOut));
        q.put(5).unwrap();
        assert_eq!(q.take_timeout(Duration::from_millis(10)), Ok(Some(5)));
        q.close();
        assert_eq!(q.take_timeout(Duration::from_millis(10)), Ok(None));
    }

    #[test]
    fn unbounded_never_blocks_producer() {
        let q = BlockingQueue::unbounded();
        for i in 0..10_000 {
            q.put(i).unwrap();
        }
        assert_eq!(q.len(), 10_000);
        assert_eq!(q.take(), Some(0));
    }

    #[test]
    fn mpmc_sum_is_conserved() {
        let q = BlockingQueue::bounded(8);
        let n_producers = 4;
        let per_producer = 1000u64;
        let mut handles = Vec::new();
        for p in 0..n_producers {
            let q = q.clone();
            handles.push(thread::spawn(move || {
                for i in 0..per_producer {
                    q.put(p * per_producer + i).unwrap();
                }
            }));
        }
        let mut consumers = Vec::new();
        for _ in 0..3 {
            let q = q.clone();
            consumers.push(thread::spawn(move || {
                let mut sum = 0u64;
                while let Some(v) = q.take() {
                    sum += v;
                }
                sum
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        q.close();
        let total: u64 = consumers.into_iter().map(|c| c.join().unwrap()).sum();
        let expect: u64 = (0..n_producers * per_producer).sum();
        assert_eq!(total, expect);
    }

    #[test]
    fn drain_iterator_ends_at_close() {
        let q = BlockingQueue::bounded(16);
        for i in 0..6 {
            q.put(i).unwrap();
        }
        q.close();
        let got: Vec<i32> = q.iter().collect();
        assert_eq!(got, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn bounded_capacity_throttles() {
        // A slow consumer bounds how far ahead the producer can run.
        let q = BlockingQueue::bounded(2);
        let q2 = q.clone();
        let produced = std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let produced2 = produced.clone();
        let h = thread::spawn(move || {
            for i in 0..100 {
                q2.put(i).unwrap();
                produced2.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            }
        });
        thread::sleep(Duration::from_millis(30));
        // Producer can be at most capacity + 1 ahead (one element may be
        // mid-handoff).
        let ahead = produced.load(std::sync::atomic::Ordering::SeqCst);
        assert!(ahead <= 3, "producer ran ahead: {ahead}");
        for _ in 0..100 {
            q.take().unwrap();
        }
        h.join().unwrap();
    }
}
