//! Instrumentation points for the blocking channels (`obs` feature only).
//!
//! All queue instances share one family of process-wide metrics in the
//! global [`obs::Registry`] — the snapshot answers "what did the runtime's
//! queues do", which is what the Fig. 6 evaluation needs, at the cost of a
//! single relaxed atomic op per event. Call sites are wrapped in the
//! crate-local `obs_on!` macro, so none of this exists without the
//! feature.

use std::sync::{Arc, OnceLock};

/// Metrics for [`crate::BlockingQueue`].
pub(crate) struct QueueStats {
    /// Successful `put`s (elements enqueued).
    pub puts: Arc<obs::Counter>,
    /// Successful `take`s (elements dequeued).
    pub takes: Arc<obs::Counter>,
    /// `put` wait episodes: a producer found the queue full and blocked.
    pub blocked_puts: Arc<obs::Counter>,
    /// `take` wait episodes: a consumer found the queue empty and blocked.
    pub blocked_takes: Arc<obs::Counter>,
    /// `close` calls.
    pub closes: Arc<obs::Counter>,
    /// Closes that recorded a `Failed(Fault)` cause (first close only —
    /// later closes of an already-closed queue are no-ops).
    pub close_failed: Arc<obs::Counter>,
    /// High-water buffered depth across all queues.
    pub depth_highwater: Arc<obs::Gauge>,
    /// Batch-put transactions (`put_all` / `try_put_all` moving ≥ 1
    /// element under one lock acquisition). Items still count in `puts`.
    pub batch_puts: Arc<obs::Counter>,
    /// Batch-take transactions (`take_batch` / `try_take_batch` /
    /// `drain_into` moving ≥ 1 element). Items still count in `takes`.
    pub batch_takes: Arc<obs::Counter>,
    /// Elements moved per batch transaction (both directions) — the
    /// amortization factor. `p50 ≈ batch size` means the chunked
    /// transport is actually filling its chunks.
    pub batch_fill: Arc<obs::Histogram>,
}

pub(crate) fn queue() -> &'static QueueStats {
    static STATS: OnceLock<QueueStats> = OnceLock::new();
    STATS.get_or_init(|| QueueStats {
        puts: obs::counter("blockingq.queue.puts"),
        takes: obs::counter("blockingq.queue.takes"),
        blocked_puts: obs::counter("blockingq.queue.blocked_puts"),
        blocked_takes: obs::counter("blockingq.queue.blocked_takes"),
        closes: obs::counter("blockingq.queue.closes"),
        close_failed: obs::counter("blockingq.close.failed"),
        depth_highwater: obs::gauge("blockingq.queue.depth_highwater"),
        batch_puts: obs::counter("blockingq.queue.batch_puts"),
        batch_takes: obs::counter("blockingq.queue.batch_takes"),
        batch_fill: obs::histogram("blockingq.queue.batch_fill"),
    })
}

/// Metrics for [`crate::MVar`] (and therefore [`crate::Future`]).
pub(crate) struct MVarStats {
    pub puts: Arc<obs::Counter>,
    pub takes: Arc<obs::Counter>,
    /// `put` wait episodes (slot was full).
    pub blocked_puts: Arc<obs::Counter>,
    /// `take`/`read` wait episodes (slot was empty).
    pub blocked_takes: Arc<obs::Counter>,
}

pub(crate) fn mvar() -> &'static MVarStats {
    static STATS: OnceLock<MVarStats> = OnceLock::new();
    STATS.get_or_init(|| MVarStats {
        puts: obs::counter("blockingq.mvar.puts"),
        takes: obs::counter("blockingq.mvar.takes"),
        blocked_puts: obs::counter("blockingq.mvar.blocked_puts"),
        blocked_takes: obs::counter("blockingq.mvar.blocked_takes"),
    })
}
