//! Snapshot test for the Fig. 5 translation example.
//!
//! The paper's Fig. 5 shows the Java translation of
//! `def spawnMap (f, chunk) { suspend ! (|> f(!chunk)); }`.
//! Here the same procedure is transpiled to Rust; the checked-in fixture is
//! compared byte-for-byte against the current emitter output, and the
//! `emitted_exec` test compiles and runs the very same fixture. Regenerate
//! with `UPDATE_FIXTURES=1 cargo test -p junicon`.

use junicon::emit::emit_program_source;

pub const SPAWNMAP_SRC: &str = "def spawnMap(f, chunk) { suspend ! (|> f(!chunk)); }";

/// A second fixture covering statement-level emission: loops, suspend
/// inside a loop body, assignment, and goal-directed comparison.
pub const COUNTDOWN_SRC: &str = "def countdown(n) { while n > 0 do { suspend n; n := n - 1; }; }";

fn check_fixture(src: &str, path: &str) {
    let want = emit_program_source(src).unwrap();
    if std::env::var("UPDATE_FIXTURES").is_ok() {
        std::fs::write(path, &want).unwrap();
    }
    let have = std::fs::read_to_string(path)
        .expect("fixture missing — run UPDATE_FIXTURES=1 cargo test -p junicon");
    assert_eq!(
        have, want,
        "emitter output drifted from the checked-in fixture; \
         regenerate with UPDATE_FIXTURES=1 cargo test -p junicon"
    );
}

#[test]
fn spawnmap_fixture_is_current() {
    check_fixture(
        SPAWNMAP_SRC,
        concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/tests/fixtures/spawnmap_emitted.rs"
        ),
    );
}

#[test]
fn countdown_fixture_is_current() {
    check_fixture(
        COUNTDOWN_SRC,
        concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/tests/fixtures/countdown_emitted.rs"
        ),
    );
}
