//! Class-level embedding (Sec. V.C): goal-directed evaluation "can be
//! embedded at the method or expression level, as well as the class level
//! if desired". These tests exercise the Unicon class subset: constructors
//! with positional field initialization, methods bound to the instance,
//! field access and assignment from both embedded and host sides, and
//! generator methods.

use gde::Value;
use junicon::Interp;

fn ints(i: &Interp, src: &str) -> Vec<i64> {
    i.eval(src)
        .unwrap_or_else(|e| panic!("{src}: {e}"))
        .iter()
        .map(|v| v.as_int().unwrap())
        .collect()
}

#[test]
fn construct_and_read_fields() {
    let i = Interp::new();
    i.load(
        "class Point(x, y)\n\
           method dist2() { return x * x + y * y; }\n\
         end",
    )
    .unwrap();
    i.eval("p := Point(3, 4)").unwrap();
    assert_eq!(ints(&i, "p.x"), vec![3]);
    assert_eq!(ints(&i, "p.y"), vec![4]);
    assert_eq!(i.eval("type(p)").unwrap()[0].to_string(), "object");
}

#[test]
fn methods_see_and_mutate_fields() {
    let i = Interp::new();
    i.load(
        r#"
        class Counter(n) {
            method bump() { n := n + 1; return n; }
            method value() { return n; }
        }
        "#,
    )
    .unwrap();
    i.eval("c := Counter(10)").unwrap();
    assert_eq!(ints(&i, "c.bump()"), vec![11]);
    assert_eq!(ints(&i, "c.bump()"), vec![12]);
    assert_eq!(ints(&i, "c.value()"), vec![12]);
    // field state is visible through plain field access too
    assert_eq!(ints(&i, "c.n"), vec![12]);
}

#[test]
fn field_assignment_from_embedded_code() {
    let i = Interp::new();
    i.load("class Box(v)\n method get() { return v; }\n end")
        .unwrap();
    i.eval("b := Box(1)").unwrap();
    i.eval("b.v := 99").unwrap();
    assert_eq!(ints(&i, "b.get()"), vec![99]);
    // assigning an undeclared field fails rather than creating one
    assert!(i.eval("b.nosuch := 3").unwrap().is_empty());
}

#[test]
fn methods_can_be_generators() {
    let i = Interp::new();
    i.load(
        r#"
        class Range(lo, hi) {
            method each() { suspend lo to hi; }
            method evens() { suspend (lo to hi) % 2 = 0 & (lo to hi); }
        }
        "#,
    )
    .unwrap();
    i.eval("r := Range(2, 5)").unwrap();
    assert_eq!(ints(&i, "r.each()"), vec![2, 3, 4, 5]);
    // generator method used inside a larger goal-directed expression
    assert_eq!(ints(&i, "r.each() * 10"), vec![20, 30, 40, 50]);
}

#[test]
fn instances_are_independent() {
    let i = Interp::new();
    i.load("class Acc(total)\n method add(v) { total := total + v; return total; }\n end")
        .unwrap();
    i.eval("a := Acc(0)").unwrap();
    i.eval("b := Acc(100)").unwrap();
    assert_eq!(ints(&i, "a.add(5)"), vec![5]);
    assert_eq!(ints(&i, "b.add(5)"), vec![105]);
    assert_eq!(ints(&i, "a.add(1)"), vec![6]); // unaffected by b
}

#[test]
fn self_is_available_in_methods() {
    let i = Interp::new();
    i.load(
        r#"
        class Node(label) {
            method me() { return self; }
            method named() { return self.label; }
        }
        "#,
    )
    .unwrap();
    i.eval("n := Node(\"x\")").unwrap();
    assert_eq!(i.eval("n.named()").unwrap()[0].to_string(), "x");
    // method returning self gives back the same object (=== identity)
    assert_eq!(i.eval("n.me() === n").unwrap().len(), 1);
}

#[test]
fn missing_constructor_args_are_null() {
    let i = Interp::new();
    i.load("class Pair(a, b)\n method hasB() { if b === &null then fail; return 1; }\n end")
        .unwrap();
    i.eval("p := Pair(1)").unwrap();
    assert!(i.eval("p.hasB()").unwrap().is_empty());
}

#[test]
fn objects_cross_the_host_boundary() {
    // Host code reads fields and calls methods on an embedded object.
    let i = Interp::new();
    i.load("class Greeter(who)\n method greet() { return \"hi \" || who; }\n end")
        .unwrap();
    let obj = i.eval("Greeter(\"world\")").unwrap().remove(0);
    match obj.deref() {
        Value::Object(o) => {
            assert_eq!(o.class_name.as_ref(), "Greeter");
            assert_eq!(o.get_field("who").unwrap().to_string(), "world");
            let m = o.method("greet").expect("bound method");
            let out = gde::GenExt::next_value(&mut m.invoke(vec![])).unwrap();
            assert_eq!(out.to_string(), "hi world");
        }
        other => panic!("expected object, got {other:?}"),
    }
}

#[test]
fn methods_and_pipes_compose() {
    // A generator method piped to another thread.
    let i = Interp::new();
    i.load("class Src(n)\n method vals() { suspend 1 to n; }\n end")
        .unwrap();
    i.eval("s := Src(4)").unwrap();
    assert_eq!(ints(&i, "! (|> s.vals())"), vec![1, 2, 3, 4]);
}

#[test]
fn emitter_notes_classes() {
    let code =
        junicon::emit::emit_program_source("class C(x)\n method m() { return x; }\n end").unwrap();
    assert!(code.contains("class C(x)"));
    assert!(code.contains("interpreter-only"));
}
