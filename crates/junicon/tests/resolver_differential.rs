//! Differential property suite for the resolve pass.
//!
//! Slot resolution (`junicon::resolve`) is a pure optimization: a resolved
//! program must be observationally identical to the same program
//! interpreted entirely by name (the pre-resolution interpreter, still
//! reachable via `Interp::load_with_resolve(src, false)`). This suite
//! generates random programs that exercise every binding regime the
//! resolver distinguishes — parameters, `local` declarations, shadowing
//! re-declarations, implicit locals sprung by assignment, loop variables,
//! globals, and co-expression bodies (deferred compilation, `@`
//! activation, `^` refresh) — and asserts both interpreters produce the
//! same result streams.
//!
//! A mutation sanity check at the bottom proves the oracle has teeth: an
//! off-by-one slot assignment injected into a resolved program is caught
//! as a divergence.

use junicon::Interp;
use tinyprop::prelude::*;

// ---------------------------------------------------------------------------
// Program generator
// ---------------------------------------------------------------------------
//
// Programs are rendered from a vector of small opcode tuples rather than a
// recursive AST strategy: the renderer tracks which names are in scope, so
// every generated program is valid by construction, and shrinking a vector
// of tuples shrinks the *program* statement by statement.

/// One statement recipe: (opcode, operand, var-pick, var-pick).
type Op = (u8, i64, u8, u8);

/// A small arithmetic expression over the names in scope.
///
/// `k` selects shape, `a`/`b` pick operands. Only `+`, `-` and `*`-by-
/// small-literal are generated: `gde::ops` promotes overflow to big
/// integers, and division/modulo would need zero-guards that add nothing
/// to binding behavior.
fn expr(vars: &[String], k: i64, a: u8, b: u8) -> String {
    let pick = |i: u8| -> String {
        if vars.is_empty() {
            ((i % 7) as i64).to_string()
        } else {
            match i as usize % (vars.len() + 3) {
                n if n < vars.len() => vars[n].clone(),
                n => ((n - vars.len()) as i64 + (k % 5).abs()).to_string(),
            }
        }
    };
    match k.rem_euclid(5) {
        0 => pick(a),
        1 => format!("({} + {})", pick(a), pick(b)),
        2 => format!("({} - {})", pick(a), pick(b)),
        3 => format!("({} * {})", pick(a), (k.rem_euclid(4)) + 1),
        _ => format!("({} - {})", pick(a), k.rem_euclid(9)),
    }
}

/// Render an opcode vector into a procedure body, tracking scope.
///
/// Returns the full program source (a global `g`, the procedure `f(a, b)`,
/// and a second procedure `h(v)` that `f` may call by global name).
fn render_program(ops: &[Op]) -> String {
    let mut vars: Vec<String> = vec!["a".into(), "b".into()];
    let mut body = String::new();
    let mut fresh = 0usize;
    let mut coexprs: Vec<String> = Vec::new();
    for &(code, k, x, y) in ops {
        let stmt = match code % 10 {
            // New local, initialized from anything in scope.
            0 => {
                fresh += 1;
                let name = format!("v{fresh}");
                let s = format!("local {name} := {};\n", expr(&vars, k, x, y));
                vars.push(name);
                s
            }
            // Shadowing re-declaration of an existing name (fresh slot;
            // the initializer must read the *new* cell's world).
            1 => {
                let name = vars[x as usize % vars.len()].clone();
                format!("local {name} := {};\n", expr(&vars, k, y, x))
            }
            // Plain assignment to an existing name.
            2 => {
                let name = vars[x as usize % vars.len()].clone();
                format!("{name} := {};\n", expr(&vars, k, y, x))
            }
            // Assignment to a not-yet-declared name: springs an implicit
            // local / global binding — poisoned, stays by-name.
            3 => {
                fresh += 1;
                let name = format!("w{fresh}");
                let s = format!("{name} := {};\n", expr(&vars, k, x, y));
                vars.push(name);
                s
            }
            // A bounded loop over a generated range, mutating a var.
            4 => {
                let tgt = vars[x as usize % vars.len()].clone();
                let i = format!("i{fresh}");
                fresh += 1;
                format!(
                    "every {i} := 1 to {} do {tgt} := ({tgt} + {i});\n",
                    (k.rem_euclid(4)) + 1
                )
            }
            // Conditional on an in-scope comparison.
            5 => {
                let tgt = vars[x as usize % vars.len()].clone();
                format!(
                    "if {} > {} then {tgt} := ({tgt} + 1) else {tgt} := ({tgt} - 1);\n",
                    expr(&vars, k, x, y),
                    expr(&vars, k.wrapping_add(1), y, x)
                )
            }
            // Suspend a value mid-procedure.
            6 => format!("suspend {};\n", expr(&vars, k, x, y)),
            // Read the global by name.
            7 => {
                let tgt = vars[x as usize % vars.len()].clone();
                format!("{tgt} := ({tgt} + g);\n")
            }
            // Call the sibling procedure through its global binding.
            8 => {
                let tgt = vars[x as usize % vars.len()].clone();
                format!("{tgt} := h({});\n", expr(&vars, k, x, y))
            }
            // Co-expression: deferred body capturing current frame;
            // activate now and once more after a mutation, then refresh.
            _ => {
                fresh += 1;
                let c = format!("c{fresh}");
                let e = expr(&vars, k, x, y);
                coexprs.push(c.clone());
                format!("local {c} := <> ({e});\nsuspend @{c};\n")
            }
        };
        body.push_str("  ");
        body.push_str(&stmt);
    }
    // Re-activate refreshed copies of every co-expression at the end: the
    // refresh recompiles the deferred body against the *final* frame
    // state, the regime where by-name and slot frames are most likely to
    // disagree if the resolver is wrong.
    for c in &coexprs {
        body.push_str(&format!("  suspend @(^{c});\n"));
    }
    body.push_str("  return (a + b);\n");
    format!(
        "g := 7;\n\
         def h(v) {{ return (v + 1); }}\n\
         def f(a, b) {{\n{body}}}\n"
    )
}

/// Evaluate `f(x, y)` under an interpreter loaded with or without the
/// resolve pass, rendering the full result stream (and captured `write`
/// output, if any) to a comparable string. A result cap guards against
/// pathological generators; both sides share it.
fn run(src: &str, resolve: bool, x: i64, y: i64) -> String {
    let i = Interp::new();
    i.load_with_resolve(src, resolve).expect("load");
    let mut gen = i.gen(&format!("f({x}, {y})")).expect("gen");
    let mut out = String::new();
    let mut n = 0;
    while let Some(v) = gde::GenExt::next_value(&mut gen) {
        out.push_str(&format!("{v:?};"));
        n += 1;
        if n > 64 {
            out.push_str("...cap");
            break;
        }
    }
    for line in i.output() {
        out.push_str(&format!("|{line}"));
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// The headline property: resolved and by-name interpretation agree
    /// on the full result stream of a random procedure.
    #[test]
    fn resolved_and_unresolved_agree(
        ops in prop::collection::vec((0u8..=9, any::<i64>(), any::<u8>(), any::<u8>()), 0..12),
        x in -20i64..20,
        y in -20i64..20,
    ) {
        let src = render_program(&ops);
        let with = run(&src, true, x, y);
        let without = run(&src, false, x, y);
        prop_assert_eq!(with, without, "program:\n{}", src);
    }
}

// ---------------------------------------------------------------------------
// Targeted regressions (fixed programs for each binding regime)
// ---------------------------------------------------------------------------

fn assert_agree(src: &str, call: &str) {
    let a = {
        let i = Interp::new();
        i.load(src).unwrap();
        format!("{:?}", i.eval(call).unwrap())
    };
    let b = {
        let i = Interp::new();
        i.load_with_resolve(src, false).unwrap();
        format!("{:?}", i.eval(call).unwrap())
    };
    assert_eq!(a, b, "resolved vs by-name diverged for {src}");
}

#[test]
fn use_before_decl_binds_global_then_local() {
    // `y` is read before `local y` — the early read must see the global.
    assert_agree(
        "y := 100;\n def f() { suspend y; local y := 5; suspend y; }",
        "f()",
    );
}

#[test]
fn shadowing_redeclaration_is_a_fresh_cell() {
    assert_agree(
        "def f(x) { local d := <> x; local x := 9; suspend x; suspend @d; }",
        "f(3)",
    );
}

#[test]
fn refreshed_coexpr_rebinds_against_final_frame() {
    assert_agree(
        "def f(n) { local c := <> (n + 1); n := 40; suspend @c; suspend @(^c); }",
        "f(1)",
    );
}

#[test]
fn implicit_local_stays_dynamic() {
    assert_agree("def f(a) { q := a + 1; q := q * 2; return q; }", "f(5)");
}

// ---------------------------------------------------------------------------
// Mutation sanity check: the oracle must catch a broken resolver
// ---------------------------------------------------------------------------

mod mutation {
    use junicon::normalize::{normalize_program, Atom, Norm, VarRef};
    use junicon::parse::parse_program;
    use junicon::resolve::resolve_program;
    use junicon::Interp;

    /// Shift every depth-0 slot reference in a node tree by +1 (mod the
    /// frame width) — the classic off-by-one a slot-assigning resolver
    /// could commit.
    fn skew(n: &mut Norm, width: u16) {
        let bump = |a: &mut Atom| {
            if let Atom::Slot(0, i, _) = a {
                *i = (*i + 1) % width;
            }
        };
        let bump_ref = |t: &mut VarRef| {
            if let VarRef::Slot(0, i, _) = t {
                *i = (*i + 1) % width;
            }
        };
        match n {
            Norm::Atom(a)
            | Norm::Neg(a)
            | Norm::Size(a)
            | Norm::Promote(a)
            | Norm::Activate(a)
            | Norm::Refresh(a) => bump(a),
            Norm::Product(fs) | Norm::Alt(fs) | Norm::Block(fs) => {
                fs.iter_mut().for_each(|f| skew(f, width))
            }
            Norm::Bind(_, x) | Norm::Repeat(x) | Norm::Not(x) | Norm::Suspend(x) => skew(x, width),
            Norm::Return(Some(e)) => skew(e, width),
            Norm::Op(_, a, b) => {
                bump(a);
                bump(b);
            }
            Norm::SetVar { target, from } | Norm::RevSet { target, from } => {
                bump_ref(target);
                bump(from);
            }
            Norm::Decl(ds) => {
                for (t, init) in ds {
                    bump_ref(t);
                    if let Some(e) = init {
                        skew(e, width);
                    }
                }
            }
            _ => {}
        }
    }

    #[test]
    fn off_by_one_slots_are_caught_by_the_differential_oracle() {
        let src = "def f(a, b) { return (a - b); }";
        let mut np = normalize_program(&parse_program(src).unwrap());
        resolve_program(&mut np);
        assert_eq!(np.procs[0].slots, vec!["a", "b"], "precondition");

        // Control: the honestly resolved program agrees with by-name.
        let honest = Interp::new();
        honest.load_normalized(&np);
        let byname = Interp::new();
        byname.load_with_resolve(src, false).unwrap();
        let call = "f(10, 3)";
        assert_eq!(
            format!("{:?}", honest.eval(call).unwrap()),
            format!("{:?}", byname.eval(call).unwrap()),
        );

        // Mutant: skew every depth-0 slot index by one. `a - b` becomes
        // `b - a`, which the oracle must flag as a divergence.
        let width = np.procs[0].slots.len() as u16;
        for stmt in &mut np.procs[0].body {
            skew(stmt, width);
        }
        let mutant = Interp::new();
        mutant.load_normalized(&np);
        assert_ne!(
            format!("{:?}", mutant.eval(call).unwrap()),
            format!("{:?}", byname.eval(call).unwrap()),
            "the differential oracle failed to catch an off-by-one slot assignment"
        );
    }
}
