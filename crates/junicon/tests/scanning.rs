//! String scanning (`s ? expr`) — "search has particular application in
//! string processing, the forte of Icon and Unicon" (Sec. II.A). Tests the
//! scanning environment, the positional builtins, and the canonical Icon
//! scanning idioms.

use junicon::Interp;

const LETTERS: &str = "abcdefghijklmnopqrstuvwxyz";

fn strs(i: &Interp, src: &str) -> Vec<String> {
    i.eval(src)
        .unwrap_or_else(|e| panic!("{src}: {e}"))
        .iter()
        .map(|v| v.to_string())
        .collect()
}

fn ints(i: &Interp, src: &str) -> Vec<i64> {
    i.eval(src)
        .unwrap()
        .iter()
        .map(|v| v.as_int().unwrap())
        .collect()
}

#[test]
fn tab_and_pos_basics() {
    let i = Interp::new();
    assert_eq!(strs(&i, r#""hello" ? tab(3)"#), vec!["he"]);
    assert_eq!(ints(&i, r#""hello" ? { tab(3); pos() }"#), vec![3]);
    // tab(0) goes to the end
    assert_eq!(strs(&i, r#""hello" ? tab(0)"#), vec!["hello"]);
    // out of range fails
    assert!(i.eval(r#""hi" ? tab(99)"#).unwrap().is_empty());
}

#[test]
fn tab_backwards_returns_the_span() {
    let i = Interp::new();
    // move forward then tab back: the span is still produced.
    assert_eq!(strs(&i, r#""abcdef" ? { tab(5); tab(2) }"#), vec!["bcd"]);
}

#[test]
fn move_is_relative() {
    let i = Interp::new();
    assert_eq!(strs(&i, r#""hello" ? { move(2); move(2) }"#), vec!["ll"]);
    assert!(i.eval(r#""hi" ? move(5)"#).unwrap().is_empty());
}

#[test]
fn scanning_functions_use_implicit_subject() {
    let i = Interp::new();
    assert_eq!(ints(&i, r#""misty isles" ? find("is")"#), vec![2, 7]);
    assert_eq!(ints(&i, r#""strength" ? upto("aeiou")"#), vec![4]);
    assert_eq!(ints(&i, r#""42abc" ? many("0123456789")"#), vec![3]);
    assert_eq!(ints(&i, r#""abc" ? match("ab")"#), vec![3]);
}

#[test]
fn find_respects_current_pos() {
    let i = Interp::new();
    // after tabbing past the first "is", find only sees the second
    assert_eq!(
        ints(&i, r#""misty isles" ? { tab(4); find("is") }"#),
        vec![7]
    );
}

#[test]
fn the_canonical_word_splitting_idiom() {
    // every word: while tab(upto(letters)) do suspend tab(many(letters))
    let i = Interp::new();
    i.load(&format!(
        r#"
        def words(s) {{
            s ? {{
                while tab(upto("{LETTERS}")) do {{
                    suspend tab(many("{LETTERS}"));
                }};
            }};
        }}
        "#
    ))
    .unwrap();
    assert_eq!(
        strs(&i, r#"words("the quick brown fox")"#),
        vec!["the", "quick", "brown", "fox"]
    );
    assert_eq!(
        strs(&i, r#"words("  leading & trailing!  ")"#),
        vec!["leading", "trailing"]
    );
    assert_eq!(strs(&i, r#"words("   ")"#), Vec::<String>::new());
}

#[test]
fn subject_builtin_reports_the_string() {
    let i = Interp::new();
    assert_eq!(strs(&i, r#""abc" ? subject()"#), vec!["abc"]);
    // outside a scan, scanning builtins fail
    assert!(i.eval("pos()").unwrap().is_empty());
    assert!(i.eval("tab(2)").unwrap().is_empty());
}

#[test]
fn scans_nest_and_restore() {
    let i = Interp::new();
    let out = strs(&i, r#""outer" ? { tab(3); "in" ? tab(2) }"#);
    assert_eq!(out, vec!["i"]);
    // After the inner scan the outer frame is current again.
    assert_eq!(
        ints(&i, r#""outer" ? { tab(3); ("in" ? tab(2)) & pos() }"#),
        vec![3]
    );
}

#[test]
fn scan_value_is_the_body_value() {
    let i = Interp::new();
    // The scan expression generates the body's results.
    assert_eq!(ints(&i, r#""aaa" ? (upto("a") * 10)"#), vec![10, 20, 30]);
}

#[test]
fn scan_subject_coerces_and_fails_gracefully() {
    let i = Interp::new();
    // numeric subject coerces to its string image
    assert_eq!(strs(&i, "12345 ? tab(3)"), vec!["12"]);
    // unscannable subject fails
    assert!(i.eval("[1] ? tab(2)").unwrap().is_empty());
}

#[test]
fn scanning_composes_with_pipes() {
    // A scanning word-splitter running inside a pipe thread: the scan
    // stack is thread-local, so this must not disturb the consumer.
    let i = Interp::new();
    i.load(&format!(
        r#"
        def words(s) {{
            s ? {{
                while tab(upto("{LETTERS}")) do {{
                    suspend tab(many("{LETTERS}"));
                }};
            }};
        }}
        "#
    ))
    .unwrap();
    assert_eq!(
        strs(&i, r#"! (|> words("par all el"))"#),
        vec!["par", "all", "el"]
    );
}

#[test]
fn amp_subject_and_pos_keywords() {
    let i = Interp::new();
    assert_eq!(strs(&i, r#""abc" ? &subject"#), vec!["abc"]);
    assert_eq!(ints(&i, r#""abc" ? { tab(2); &pos }"#), vec![2]);
    // outside any scan the keywords are null
    assert_eq!(i.eval("&pos === &null").unwrap().len(), 1);
}

#[test]
fn letter_counting_with_scanning() {
    let i = Interp::new();
    i.load(
        r#"
        def vowels(s) {
            local n;
            n := 0;
            s ? { every upto("aeiou") do n := n + 1; };
            return n;
        }
        "#,
    )
    .unwrap();
    assert_eq!(ints(&i, r#"vowels("goal directed evaluation")"#), vec![11]);
}
