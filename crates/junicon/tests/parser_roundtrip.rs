//! Property test: randomly generated ASTs survive pretty-print → parse.
//!
//! Fuzzes the lexer, parser, and pretty-printer against each other over
//! the whole expression grammar.

use junicon::ast::{BinOp, Expr, UnOp};
use junicon::fmt::pretty;
use junicon::parse::parse_expr;
use tinyprop::prelude::*;

fn arb_ident() -> impl Strategy<Value = String> {
    // lowercase identifiers that are not keywords of the subset
    "[a-g][a-g0-9]{0,5}".prop_filter("keyword collision", |s| {
        !matches!(
            s.as_str(),
            "def" | "do" | "by" | "end" | "fail" | "class" | "every" | "create"
        )
    })
}

fn arb_leaf() -> impl Strategy<Value = Expr> {
    prop_oneof![
        (0i64..1000).prop_map(Expr::Int),
        arb_ident().prop_map(Expr::Var),
        "[a-z ]{0,8}".prop_map(Expr::Str),
        Just(Expr::Null),
    ]
}

fn arb_binop() -> impl Strategy<Value = BinOp> {
    prop_oneof![
        Just(BinOp::Add),
        Just(BinOp::Sub),
        Just(BinOp::Mul),
        Just(BinOp::Div),
        Just(BinOp::Rem),
        Just(BinOp::Pow),
        Just(BinOp::Lt),
        Just(BinOp::Le),
        Just(BinOp::Gt),
        Just(BinOp::Ge),
        Just(BinOp::NumEq),
        Just(BinOp::NumNe),
        Just(BinOp::Concat),
        Just(BinOp::StrEq),
        Just(BinOp::Equiv),
    ]
}

fn arb_unop() -> impl Strategy<Value = UnOp> {
    prop_oneof![
        Just(UnOp::Neg),
        Just(UnOp::Size),
        Just(UnOp::Promote),
        Just(UnOp::Activate),
        Just(UnOp::Refresh),
        Just(UnOp::FirstClass),
        Just(UnOp::CoExpr),
        Just(UnOp::Pipe),
    ]
}

fn arb_expr() -> impl Strategy<Value = Expr> {
    arb_leaf().prop_recursive(4, 40, 4, |inner| {
        prop_oneof![
            (arb_binop(), inner.clone(), inner.clone()).prop_map(|(op, a, b)| Expr::Binary(
                op,
                Box::new(a),
                Box::new(b)
            )),
            (arb_unop(), inner.clone()).prop_map(|(op, a)| Expr::Unary(op, Box::new(a))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Expr::Product(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Alt(Box::new(a), Box::new(b))),
            (
                inner.clone(),
                inner.clone(),
                prop::option::of(inner.clone())
            )
                .prop_map(|(a, b, by)| Expr::To {
                    from: Box::new(a),
                    to: Box::new(b),
                    by: by.map(Box::new),
                }),
            (arb_ident(), prop::collection::vec(inner.clone(), 0..3))
                .prop_map(|(f, args)| Expr::Call(Box::new(Expr::Var(f)), args)),
            prop::collection::vec(inner.clone(), 0..3).prop_map(Expr::List),
            (inner.clone(), inner.clone()).prop_map(|(b, i)| Expr::Index(Box::new(b), Box::new(i))),
            (inner.clone(), arb_ident()).prop_map(|(b, f)| Expr::Field(Box::new(b), f)),
            (arb_ident(), inner.clone())
                .prop_map(|(v, e)| Expr::Assign(Box::new(Expr::Var(v)), Box::new(e))),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn pretty_then_parse_is_identity(e in arb_expr()) {
        let printed = pretty(&e);
        let reparsed = parse_expr(&printed)
            .unwrap_or_else(|err| panic!("could not reparse {printed:?}: {err}"));
        prop_assert_eq!(&reparsed, &e, "printed: {}", printed);
    }

    #[test]
    fn pretty_is_stable(e in arb_expr()) {
        // pretty ∘ parse ∘ pretty == pretty (idempotence on the image)
        let p1 = pretty(&e);
        let p2 = pretty(&parse_expr(&p1).unwrap());
        prop_assert_eq!(p1, p2);
    }
}
