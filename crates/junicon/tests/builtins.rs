//! Tests for the Icon builtin library exposed to embedded programs —
//! especially the string-processing generators ("the forte of Icon").

use junicon::Interp;

fn ints(i: &Interp, src: &str) -> Vec<i64> {
    i.eval(src)
        .unwrap_or_else(|e| panic!("{src}: {e}"))
        .iter()
        .map(|v| v.as_int().unwrap())
        .collect()
}

fn strs(i: &Interp, src: &str) -> Vec<String> {
    i.eval(src).unwrap().iter().map(|v| v.to_string()).collect()
}

#[test]
fn find_generates_every_position() {
    let i = Interp::new();
    assert_eq!(ints(&i, r#"find("ab", "abcabab")"#), vec![1, 4, 6]);
    assert_eq!(ints(&i, r#"find("zz", "abc")"#), Vec::<i64>::new());
    // overlapping matches are found
    assert_eq!(ints(&i, r#"find("aa", "aaa")"#), vec![1, 2]);
}

#[test]
fn find_composes_with_goal_direction() {
    // First position of "is" after position 3: goal-directed filtering.
    let i = Interp::new();
    assert_eq!(ints(&i, r#"(3 < find("is", "misty isles")) \ 1"#), vec![7]);
}

#[test]
fn upto_and_many_and_match() {
    let i = Interp::new();
    assert_eq!(ints(&i, r#"upto("aeiou", "strength")"#), vec![4]);
    assert_eq!(ints(&i, r#"upto("aeiou", "audio")"#), vec![1, 2, 4, 5]);
    assert_eq!(ints(&i, r#"many("0123456789", "42abc")"#), vec![3]);
    assert_eq!(ints(&i, r#"many("xyz", "42abc")"#), Vec::<i64>::new());
    assert_eq!(ints(&i, r#"match("ab", "abc")"#), vec![3]);
    assert_eq!(ints(&i, r#"match("bc", "abc")"#), Vec::<i64>::new());
}

#[test]
fn string_builders() {
    let i = Interp::new();
    assert_eq!(strs(&i, r#"repl("ab", 3)"#), vec!["ababab"]);
    assert_eq!(strs(&i, r#"reverse("icon")"#), vec!["noci"]);
    assert_eq!(strs(&i, r#"left("ab", 5, ".")"#), vec!["ab..."]);
    assert_eq!(strs(&i, r#"right("ab", 5, ".")"#), vec!["...ab"]);
    assert_eq!(strs(&i, r#"center("ab", 6, "-")"#), vec!["--ab--"]);
    assert_eq!(strs(&i, r#"left("abcdef", 3)"#), vec!["abc"]);
    assert_eq!(strs(&i, r#"trim("ab   ")"#), vec!["ab"]);
}

#[test]
fn map_ord_char() {
    let i = Interp::new();
    assert_eq!(strs(&i, r#"map("hello", "el", "ip")"#), vec!["hippo"]);
    assert_eq!(ints(&i, r#"ord("A")"#), vec![65]);
    assert_eq!(strs(&i, r#"char(97)"#), vec!["a"]);
    assert_eq!(ints(&i, r#"ord("ab")"#), Vec::<i64>::new()); // not 1 char
}

#[test]
fn seq_is_unbounded_until_limited() {
    let i = Interp::new();
    assert_eq!(ints(&i, r#"seq(5) \ 4"#), vec![5, 6, 7, 8]);
    assert_eq!(ints(&i, r#"seq(0, 10) \ 3"#), vec![0, 10, 20]);
}

#[test]
fn sort_and_key() {
    let i = Interp::new();
    assert_eq!(ints(&i, "!sort([3, 1, 2])"), vec![1, 2, 3]);
    i.eval("t := table()").unwrap();
    i.eval(r#"t["b"] := 2"#).unwrap();
    i.eval(r#"t["a"] := 1"#).unwrap();
    let mut keys = strs(&i, "key(t)");
    keys.sort();
    assert_eq!(keys, vec!["a", "b"]);
}

#[test]
fn min_max_abs() {
    let i = Interp::new();
    assert_eq!(ints(&i, "min(3, 1, 2)"), vec![1]);
    assert_eq!(ints(&i, "max(3, 1, 2)"), vec![3]);
    assert_eq!(ints(&i, "abs(-9)"), vec![9]);
}

#[test]
fn primes_via_builtins() {
    // The generator composition the paper opens with, over a wider range.
    let i = Interp::new();
    assert_eq!(
        ints(&i, "isprime(2 to 30)"),
        vec![2, 3, 5, 7, 11, 13, 17, 19, 23, 29]
    );
    assert_eq!(ints(&i, "nextprime(100)"), vec![101]);
}

#[test]
fn word_counting_in_pure_junicon() {
    // A small end-to-end string-processing program, interpreter only.
    let i = Interp::new();
    i.load(
        r#"
        def countWords(s) {
            local n;
            n := 0;
            every n := n + (find(" ", s) & 1);
            return n + 1;
        }
        "#,
    )
    .unwrap();
    assert_eq!(ints(&i, r#"countWords("a b c d")"#), vec![4]);
}
