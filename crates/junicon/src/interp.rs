//! Tree-walking interpreter over the `gde` runtime.
//!
//! This is the interactive half of the paper's harness (the Groovy path of
//! Sec. VI): embedded Junicon text is parsed, normalized, and *compiled to
//! [`gde::Gen`] combinator trees*, which are then driven like any other
//! generator. Because the whole combinator tree is suspendable, `suspend`
//! works anywhere in a procedure body — including inside `while`/`every`
//! loops (as Fig. 4's `chunk` requires) — without any threads, exactly the
//! property the paper claims for its kernel ("implement it without
//! multithreading", Sec. VIII).
//!
//! Procedure-body control flow (`return`, `fail`, `break`, `next`) is
//! compiled using shared atomic flags checked by the enclosing statement
//! sequences and loops, mirroring how the paper's `IconIterator` kernel
//! threads failure through composed iterators.

mod builtins;

use crate::ast::BinOp;
use crate::normalize::{normalize_program, Atom, CoKind, NClass, NProc, Norm, VarRef};
use crate::parse::{parse_expr, parse_program, ParseError};
use crate::resolve::resolve_program;
use crate::rt::{self, Flag, Slot};
use bigint::BigInt;
use gde::comb;
use gde::env::{Env, FrameLayout};
use gde::func::arg;
use gde::{BoxGen, Gen, GenExt, ProcValue, Step, Symbol, Value, Var};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Errors surfaced by the interpreter API.
#[derive(Debug)]
pub enum JuniconError {
    Parse(ParseError),
}

impl fmt::Display for JuniconError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JuniconError::Parse(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for JuniconError {}

impl From<ParseError> for JuniconError {
    fn from(e: ParseError) -> Self {
        JuniconError::Parse(e)
    }
}

/// A native (`::`) method: receives the target value and the arguments.
pub type NativeFn = Arc<dyn Fn(&Value, &[Value]) -> Option<Value> + Send + Sync>;

pub(crate) struct Shared {
    pub globals: Env,
    pub natives: Mutex<HashMap<String, NativeFn>>,
    /// Completed lines produced by `write`, captured for tests and REPLs.
    pub output: Mutex<Vec<String>>,
    /// Text written by `writes` awaiting its line terminator.
    pub pending: Mutex<String>,
    /// Also echo writes to stdout.
    pub echo: AtomicBool,
}

/// The Junicon interpreter: loads embedded programs, registers host
/// procedures and native methods, evaluates expressions to generators.
#[derive(Clone)]
pub struct Interp {
    shared: Arc<Shared>,
}

impl Default for Interp {
    fn default() -> Self {
        Self::new()
    }
}

impl Interp {
    /// A fresh interpreter with the builtin procedures registered.
    pub fn new() -> Interp {
        let shared = Arc::new(Shared {
            globals: Env::root(),
            natives: Mutex::new(HashMap::new()),
            output: Mutex::new(Vec::new()),
            pending: Mutex::new(String::new()),
            echo: AtomicBool::new(false),
        });
        let interp = Interp { shared };
        builtins::install(&interp);
        interp
    }

    /// Echo `write` output to stdout as well as capturing it.
    pub fn with_echo(self, echo: bool) -> Interp {
        self.shared.echo.store(echo, Ordering::Relaxed);
        self
    }

    /// The global environment (host code may pre-set variables).
    pub fn globals(&self) -> &Env {
        &self.shared.globals
    }

    /// Register a host procedure callable as `name(args)` from embedded
    /// code — the interop path by which "native types can be transparently
    /// passed to and from Unicon".
    pub fn register_proc(&self, p: ProcValue) {
        let name = p.name().to_string();
        self.shared.globals.declare(&name, Value::Proc(p));
    }

    /// Register a native `::` method (e.g. `this::wordToNumber(w)`).
    pub fn register_native(
        &self,
        name: &str,
        f: impl Fn(&Value, &[Value]) -> Option<Value> + Send + Sync + 'static,
    ) {
        self.shared
            .natives
            .lock()
            .insert(name.to_string(), Arc::new(f));
    }

    /// Captured `write`/`writes` output so far (a trailing unterminated
    /// `writes` line is included as the final entry).
    pub fn output(&self) -> Vec<String> {
        let mut lines = self.shared.output.lock().clone();
        let pending = self.shared.pending.lock();
        if !pending.is_empty() {
            lines.push(pending.clone());
        }
        lines
    }

    /// Clear the captured output.
    pub fn clear_output(&self) {
        self.shared.output.lock().clear();
        self.shared.pending.lock().clear();
    }

    pub(crate) fn shared(&self) -> &Arc<Shared> {
        &self.shared
    }

    /// Load an embedded program: procedure declarations are registered as
    /// global generator functions; top-level statements are executed in
    /// order (each bounded, as at the outermost level of a program).
    pub fn load(&self, src: &str) -> Result<(), JuniconError> {
        self.load_with_resolve(src, true)
    }

    /// [`Interp::load`] with the resolve pass made optional.
    ///
    /// `resolve = false` loads procedures with every variable reference
    /// left by-name — the pre-resolution interpreter. Slot resolution is a
    /// pure optimization, so the two modes must be observationally
    /// identical; the differential property suite
    /// (`tests/resolver_differential.rs`) holds us to that. Not useful
    /// outside testing: by-name frames are strictly slower.
    pub fn load_with_resolve(&self, src: &str, resolve: bool) -> Result<(), JuniconError> {
        let prog = parse_program(src)?;
        let mut nprog = normalize_program(&prog);
        if resolve {
            resolve_program(&mut nprog);
        }
        self.load_normalized(&nprog);
        Ok(())
    }

    /// Register and run an already-normalized program exactly as given —
    /// no resolve pass, no checks on slot coordinates.
    ///
    /// This is a test hook: the resolver's mutation sanity check feeds a
    /// deliberately *mis*-resolved program through it to prove the
    /// differential suite has teeth. Deliberately not part of the stable
    /// surface.
    #[doc(hidden)]
    pub fn load_normalized(&self, nprog: &crate::normalize::NProgram) {
        for p in &nprog.procs {
            let proc_value = self.make_proc(Arc::new(p.clone()));
            self.shared
                .globals
                .declare(&p.name, Value::Proc(proc_value));
        }
        for c in &nprog.classes {
            let ctor = self.make_class(Arc::new(c.clone()));
            self.shared.globals.declare(&c.name, Value::Proc(ctor));
        }
        // Top-level statements: drive each once (bounded), like field
        // initializers / main in the paper's model.
        let tmps = rt::tmps(nprog.tmp_count);
        for stmt in &nprog.stmts {
            let ctx = Ctx {
                shared: Arc::clone(&self.shared),
                env: self.shared.globals.clone(),
                tmps: Arc::clone(&tmps),
                returned: rt::flag(),
                loop_flags: None,
            };
            let mut g = compile_stmt(stmt, &ctx);
            // drive to completion so that suspensions inside top-level
            // statements (rare) do not stall the load
            while let Step::Suspend(_) = g.resume() {}
        }
    }

    /// Compile a Junicon *expression* to a generator over the global
    /// environment — the `for (Object i : @<script>…@</script>)` interop
    /// of Fig. 3: the embedded expression "returns a generator, exposed as
    /// a Java Iterator".
    pub fn gen(&self, src: &str) -> Result<BoxGen, JuniconError> {
        let expr = parse_expr(src)?;
        let (norm, tmp_count) = crate::normalize::normalize_expr(&expr);
        let ctx = Ctx {
            shared: Arc::clone(&self.shared),
            env: self.shared.globals.clone(),
            tmps: rt::tmps(tmp_count),
            returned: rt::flag(),
            loop_flags: None,
        };
        Ok(compile(&norm, &ctx, Mode::Value))
    }

    /// Evaluate an expression, returning *all* its results.
    pub fn eval(&self, src: &str) -> Result<Vec<Value>, JuniconError> {
        Ok(self.gen(src)?.collect_values())
    }

    /// Evaluate an expression, returning its first result (or `None` on
    /// failure).
    pub fn eval_first(&self, src: &str) -> Result<Option<Value>, JuniconError> {
        Ok(self.gen(src)?.next_value())
    }

    /// Build the constructor [`ProcValue`] for a normalized class: calling
    /// `Name(args)` creates an instance whose fields are initialized
    /// positionally and whose methods are bound to the instance's field
    /// environment (the Sec. V.C class transformation: fields exist in
    /// plain and reified form; methods become variadic generator lambdas).
    fn make_class(&self, nclass: Arc<NClass>) -> ProcValue {
        let shared = Arc::clone(&self.shared);
        let name = nclass.name.clone();
        // One shared field layout per class: `[fields..., "self"]` — the
        // same coordinates the resolve pass hands to method bodies as
        // depth-1 slots.
        let field_layout = FrameLayout::of(
            nclass
                .fields
                .iter()
                .map(|f| Symbol::new(f))
                .chain([Symbol::new("self")]),
        );
        ProcValue::new(name, move |args: Vec<Value>| {
            let fields = shared.globals.child_with_layout(field_layout.clone());
            for (i, _) in nclass.fields.iter().enumerate() {
                fields.slot_local(i).set(arg(&args, i));
            }
            let mut methods = HashMap::new();
            for m in &nclass.methods {
                methods.insert(
                    m.name.clone(),
                    make_bound_proc(Arc::clone(&shared), Arc::new(m.clone()), fields.clone()),
                );
            }
            let obj = Arc::new(gde::ObjData {
                class_name: Arc::from(nclass.name.as_str()),
                fields: fields.clone(),
                methods: Arc::new(methods),
            });
            // Make `self` visible to method bodies (a reference cycle the
            // interpreter tolerates; objects live for the session). `self`
            // occupies the last field-frame slot.
            fields
                .slot_local(nclass.fields.len())
                .set(Value::Object(Arc::clone(&obj)));
            Box::new(comb::unit(Value::Object(obj))) as BoxGen
        })
    }

    /// Build the [`ProcValue`] for a normalized procedure.
    fn make_proc(&self, nproc: Arc<NProc>) -> ProcValue {
        let shared = Arc::clone(&self.shared);
        let scope = shared.globals.clone();
        make_bound_proc_in(shared, nproc, scope)
    }
}

/// A procedure whose invocation frames are children of `scope` (the
/// globals for free procedures, an instance's field env for methods).
fn make_bound_proc(shared: Arc<Shared>, nproc: Arc<NProc>, scope: Env) -> ProcValue {
    make_bound_proc_in(shared, nproc, scope)
}

fn make_bound_proc_in(shared: Arc<Shared>, nproc: Arc<NProc>, scope: Env) -> ProcValue {
    let name = nproc.name.clone();
    // Resolved procedures carry a slot layout (parameters first); build it
    // once and share it across every activation. Unresolved procedures
    // (none in practice after `load`, but `NProc` values can be built by
    // hand) keep the by-name declare path.
    let layout = (!nproc.slots.is_empty())
        .then(|| FrameLayout::of(nproc.slots.iter().map(|s| Symbol::new(s))));
    ProcValue::new(name, move |args: Vec<Value>| {
        // Fresh frame per invocation: parameters are the first slots,
        // missing arguments null (variadic convention).
        let env = match &layout {
            Some(layout) => {
                let env = scope.child_with_layout(layout.clone());
                for i in 0..nproc.params.len() {
                    env.slot_local(i).set(arg(&args, i));
                }
                env
            }
            None => {
                let env = scope.child();
                for (i, p) in nproc.params.iter().enumerate() {
                    env.declare(p, arg(&args, i));
                }
                env
            }
        };
        let ctx = Ctx {
            shared: Arc::clone(&shared),
            env,
            tmps: rt::tmps(nproc.tmp_count),
            returned: rt::flag(),
            loop_flags: None,
        };
        let stmts: Vec<BoxGen> = nproc.body.iter().map(|s| compile_stmt(s, &ctx)).collect();
        Box::new(rt::body_root(stmts, ctx.returned.clone())) as BoxGen
    })
}

// ---------------------------------------------------------------------------
// Compilation context
// ---------------------------------------------------------------------------

#[derive(Clone)]
struct Ctx {
    shared: Arc<Shared>,
    env: Env,
    tmps: Arc<Vec<Var>>,
    /// Set when the enclosing procedure has returned or failed.
    returned: Flag,
    /// (break, next) flags of the innermost enclosing loop.
    loop_flags: Option<(Flag, Flag)>,
}

impl Ctx {
    fn abort_flags(&self) -> Vec<Flag> {
        let mut flags = vec![self.returned.clone()];
        if let Some((b, n)) = &self.loop_flags {
            flags.push(b.clone());
            flags.push(n.clone());
        }
        flags
    }
}

/// Compilation mode: expression value position vs. statement position
/// (where `suspend` yields procedure results and `fail` terminates the
/// procedure).
#[derive(Clone, Copy, PartialEq, Eq)]
enum Mode {
    Value,
    Stmt,
}

fn rt_atom(a: &Atom, ctx: &Ctx) -> Slot {
    match a {
        Atom::Null => Slot::Const(Value::Null),
        Atom::Int(v) => Slot::Const(Value::Int(*v)),
        Atom::Big(s) => Slot::Const(
            BigInt::from_str_radix(s, 10)
                .map(Value::big)
                .unwrap_or(Value::Null),
        ),
        Atom::Real(v) => Slot::Const(Value::Real(*v)),
        Atom::Str(s) => Slot::Const(Value::str(s)),
        Atom::Var(name) if name == "&subject" => Slot::ScanSubject,
        Atom::Var(name) if name == "&pos" => Slot::ScanPos,
        Atom::Var(name) => Slot::Cell(ctx.env.lookup_or_declare(name)),
        Atom::Slot(depth, idx, _) => Slot::Cell(ctx.env.slot(*depth as usize, *idx as usize)),
        Atom::Tmp(i) => Slot::Cell(ctx.tmps[*i as usize].clone()),
    }
}

/// Bind an assignment / declaration target to its cell at compile time.
fn target_cell(t: &VarRef, ctx: &Ctx) -> Var {
    match t {
        VarRef::Named(name) => ctx.env.lookup_or_declare(name),
        VarRef::Slot(depth, idx, _) => ctx.env.slot(*depth as usize, *idx as usize),
    }
}

// ---------------------------------------------------------------------------
// Compilation
// ---------------------------------------------------------------------------

/// Compile a *statement*: statement forms keep their control semantics;
/// bare expressions are evaluated once (bounded) for their side effects and
/// contribute no suspensions.
fn compile_stmt(n: &Norm, ctx: &Ctx) -> BoxGen {
    match n {
        Norm::Suspend(_)
        | Norm::Return(_)
        | Norm::Fail
        | Norm::Break
        | Norm::Next
        | Norm::Block(_)
        | Norm::If { .. }
        | Norm::While { .. }
        | Norm::Until { .. }
        | Norm::Every { .. }
        | Norm::Scan { .. }
        | Norm::Repeat(_) => compile(n, ctx, Mode::Stmt),
        expr => Box::new(rt::mute_once(compile(expr, ctx, Mode::Value))),
    }
}

fn compile(n: &Norm, ctx: &Ctx, mode: Mode) -> BoxGen {
    match n {
        Norm::Atom(a) => {
            let rt = rt_atom(a, ctx);
            Box::new(comb::thunk(move || Some(rt.get())))
        }
        Norm::Product(factors) => {
            let gens: Vec<BoxGen> = factors
                .iter()
                .map(|f| compile(f, ctx, Mode::Value))
                .collect();
            comb::product_all(gens)
        }
        Norm::Bind(t, inner) => {
            let var = ctx.tmps[*t as usize].clone();
            Box::new(comb::bind(var, compile(inner, ctx, Mode::Value)))
        }
        Norm::Alt(items) => {
            let gens: Vec<BoxGen> = items.iter().map(|i| compile(i, ctx, mode)).collect();
            Box::new(comb::alt_all(gens))
        }
        Norm::Op(op, a, b) => {
            let (ra, rb) = (rt_atom(a, ctx), rt_atom(b, ctx));
            let op = *op;
            Box::new(comb::thunk(move || apply_binop(op, &ra.get(), &rb.get())))
        }
        Norm::Neg(a) => {
            let ra = rt_atom(a, ctx);
            Box::new(comb::thunk(move || gde::ops::neg(&ra.get())))
        }
        Norm::Size(a) => {
            let ra = rt_atom(a, ctx);
            Box::new(comb::thunk(move || ra.get().size().map(Value::from)))
        }
        Norm::Promote(a) => {
            let ra = rt_atom(a, ctx);
            Box::new(comb::promote(move || ra.get()))
        }
        Norm::Activate(a) => {
            let ra = rt_atom(a, ctx);
            Box::new(comb::thunk(move || coexpr::activate(&ra.get())))
        }
        Norm::Refresh(a) => {
            let ra = rt_atom(a, ctx);
            Box::new(comb::thunk(move || coexpr::refresh(&ra.get())))
        }
        Norm::Invoke { callee, args } => {
            let rc = rt_atom(callee, ctx);
            let rargs: Vec<Slot> = args.iter().map(|a| rt_atom(a, ctx)).collect();
            Box::new(comb::invoke_iter(move || {
                let callee = rc.get().deref();
                let argv: Vec<Value> = rargs.iter().map(|a| a.get()).collect();
                gde::func::invoke_value(&callee, argv)
            }))
        }
        Norm::NativeInvoke {
            target,
            method,
            args,
        } => {
            let rt = rt_atom(target, ctx);
            let rargs: Vec<Slot> = args.iter().map(|a| rt_atom(a, ctx)).collect();
            let shared = Arc::clone(&ctx.shared);
            let method = method.clone();
            Box::new(comb::thunk(move || {
                let argv: Vec<Value> = rargs.iter().map(|a| a.get()).collect();
                dispatch_native(&shared, &rt.get(), &method, &argv)
            }))
        }
        Norm::Index { base, index } => {
            let (rb, ri) = (rt_atom(base, ctx), rt_atom(index, ctx));
            Box::new(comb::thunk(move || gde::ops::index(&rb.get(), &ri.get())))
        }
        Norm::IndexAssign { base, index, value } => {
            let (rb, ri, rv) = (rt_atom(base, ctx), rt_atom(index, ctx), rt_atom(value, ctx));
            Box::new(comb::thunk(move || {
                gde::ops::index_assign(&rb.get(), &ri.get(), rv.get())
            }))
        }
        Norm::FieldGet { base, field } => {
            let rb = rt_atom(base, ctx);
            let field = field.clone();
            Box::new(comb::thunk(move || rt::field_get(&rb.get(), &field)))
        }
        Norm::FieldSet { base, field, value } => {
            let rb = rt_atom(base, ctx);
            let rv = rt_atom(value, ctx);
            let field = field.clone();
            Box::new(comb::thunk(move || {
                rt::field_set(&rb.get(), &field, rv.get())
            }))
        }
        Norm::ListLit(items) => {
            let ritems: Vec<Slot> = items.iter().map(|a| rt_atom(a, ctx)).collect();
            Box::new(comb::thunk(move || {
                Some(Value::list(ritems.iter().map(|a| a.get()).collect()))
            }))
        }
        Norm::SetVar { target, from } => {
            let cell = target_cell(target, ctx);
            let rv = rt_atom(from, ctx);
            Box::new(comb::thunk(move || {
                let v = rv.get();
                cell.set(v.clone());
                Some(v)
            }))
        }
        Norm::RevSet { target, from } => {
            let cell = target_cell(target, ctx);
            let rv = rt_atom(from, ctx);
            Box::new(rt::rev_set(cell, rv))
        }
        Norm::ToRange { from, to, by } => {
            let rf = rt_atom(from, ctx);
            let rt_ = rt_atom(to, ctx);
            let rb = by.as_ref().map(|b| rt_atom(b, ctx));
            Box::new(comb::to_range_dyn(
                move || rf.to_i64(),
                move || rt_.to_i64(),
                move || match &rb {
                    Some(b) => b.to_i64(),
                    None => Some(1),
                },
            ))
        }
        Norm::Limit { inner, n } => {
            let rn = rt_atom(n, ctx);
            Box::new(rt::dyn_limit(compile(inner, ctx, Mode::Value), rn))
        }
        Norm::If { cond, then, els } => {
            let cond_gen = Arc::new(Mutex::new(compile(cond, ctx, Mode::Value)));
            let branch = |b: &Norm| match mode {
                Mode::Stmt => compile_stmt(b, ctx),
                Mode::Value => compile(b, ctx, Mode::Value),
            };
            let then_gen = branch(then);
            let els_gen = match els {
                Some(e) => branch(e),
                None => Box::new(comb::fail()) as BoxGen,
            };
            Box::new(comb::if_then_else(
                move || {
                    let mut c = cond_gen.lock();
                    c.restart();
                    c.next_value()
                },
                then_gen,
                els_gen,
            ))
        }
        Norm::While { cond, body } => compile_loop(ctx, cond, body.as_deref(), false),
        Norm::Until { cond, body } => compile_loop(ctx, cond, body.as_deref(), true),
        Norm::Repeat(body) => {
            // repeat b ≡ while &null do b (a condition that always succeeds)
            compile_loop(ctx, &Norm::Atom(Atom::Null), Some(body), false)
        }
        Norm::Every { source, body } => {
            // Drive source; for each value run the body (a statement) to
            // completion, yielding the body's suspensions; `every` itself
            // contributes nothing and fails at the end.
            let (break_f, next_f) = (rt::flag(), rt::flag());
            let body_ctx = Ctx {
                loop_flags: Some((break_f.clone(), next_f.clone())),
                ..ctx.clone()
            };
            let source_gen = compile(source, ctx, Mode::Value);
            let body_gen = body.as_ref().map(|b| compile_stmt(b, &body_ctx));
            Box::new(rt::every_gen(
                source_gen,
                body_gen,
                ctx.returned.clone(),
                break_f,
                next_f,
                ctx.loop_flags.clone(),
            ))
        }
        Norm::Not(inner) => {
            let g = Arc::new(Mutex::new(compile(inner, ctx, Mode::Value)));
            Box::new(comb::thunk(move || {
                let mut g = g.lock();
                g.restart();
                match g.next_value() {
                    Some(_) => None,
                    None => Some(Value::Null),
                }
            }))
        }
        Norm::Block(stmts) => match mode {
            Mode::Stmt => {
                let gens: Vec<BoxGen> = stmts.iter().map(|s| compile_stmt(s, ctx)).collect();
                Box::new(rt::stmt_seq(gens, ctx.abort_flags()))
            }
            Mode::Value => {
                // Leading statements bounded and silent, last delegates
                // (IconSequence).
                let mut gens: Vec<BoxGen> = Vec::new();
                for (i, s) in stmts.iter().enumerate() {
                    if i + 1 == stmts.len() {
                        gens.push(compile(s, ctx, Mode::Value));
                    } else {
                        gens.push(compile_stmt(s, ctx));
                    }
                }
                comb::seq(gens)
            }
        },
        Norm::Suspend(inner) => compile(inner, ctx, Mode::Value),
        Norm::Return(inner) => {
            let value_gen = inner.as_ref().map(|e| compile(e, ctx, Mode::Value));
            Box::new(rt::return_gen(value_gen, ctx.returned.clone()))
        }
        Norm::Fail => match mode {
            Mode::Value => Box::new(comb::fail()),
            Mode::Stmt => {
                let flag = ctx.returned.clone();
                Box::new(rt::flag_fail(flag))
            }
        },
        Norm::Break => {
            let flag = ctx
                .loop_flags
                .as_ref()
                .map(|(b, _)| b.clone())
                .unwrap_or_else(rt::flag);
            Box::new(rt::flag_fail(flag))
        }
        Norm::Next => {
            let flag = ctx
                .loop_flags
                .as_ref()
                .map(|(_, n)| n.clone())
                .unwrap_or_else(rt::flag);
            Box::new(rt::flag_fail(flag))
        }
        Norm::Decl(decls) => {
            // Declare at compile time so later lookups bind to this frame;
            // initialize at run time.
            let cells: Vec<(Var, Option<Arc<Mutex<BoxGen>>>)> = decls
                .iter()
                .map(|(target, init)| {
                    // Resolved declarations own a pre-allocated slot cell;
                    // dynamic ones create a fresh overlay cell here, at
                    // compile time, so later lookups bind to this frame.
                    let cell = match target {
                        VarRef::Named(name) => ctx.env.declare(name, Value::Null),
                        VarRef::Slot(_, idx, _) => ctx.env.slot_local(*idx as usize),
                    };
                    let init_gen = init
                        .as_ref()
                        .map(|e| Arc::new(Mutex::new(compile(e, ctx, Mode::Value))));
                    (cell, init_gen)
                })
                .collect();
            Box::new(comb::thunk(move || {
                for (cell, init) in &cells {
                    match init {
                        Some(g) => {
                            let mut g = g.lock();
                            g.restart();
                            cell.set(g.next_value().unwrap_or(Value::Null));
                        }
                        None => cell.set(Value::Null),
                    }
                }
                Some(Value::Null)
            }))
        }
        Norm::CoCreate { kind, body } => {
            let body = body.clone();
            let shared = Arc::clone(&ctx.shared);
            let tmp_count = ctx.tmps.len() as u32;
            match kind {
                CoKind::FirstClass => {
                    let env = ctx.env.clone();
                    Box::new(comb::thunk(move || {
                        let body = body.clone();
                        let shared = Arc::clone(&shared);
                        let env = env.clone();
                        Some(coexpr::create(move || {
                            let ctx = Ctx {
                                shared: Arc::clone(&shared),
                                env: env.clone(),
                                tmps: rt::tmps(tmp_count),
                                returned: rt::flag(),
                                loop_flags: None,
                            };
                            compile(&body, &ctx, Mode::Value)
                        }))
                    }))
                }
                CoKind::Shadowed => {
                    let env = ctx.env.clone();
                    Box::new(comb::thunk(move || {
                        let body = body.clone();
                        let shared = Arc::clone(&shared);
                        Some(coexpr::create_shadowed(&env, move |shadow_env| {
                            let ctx = Ctx {
                                shared: Arc::clone(&shared),
                                env: shadow_env.clone(),
                                tmps: rt::tmps(tmp_count),
                                returned: rt::flag(),
                                loop_flags: None,
                            };
                            compile(&body, &ctx, Mode::Value)
                        }))
                    }))
                }
            }
        }
        Norm::Scan { subject, body } => Box::new(rt::scan_gen(
            compile(subject, ctx, Mode::Value),
            compile(body, ctx, mode),
        )),
        Norm::Pipe(body) => {
            // |>e evaluates to a *first-class proxy value*: each evaluation
            // shadows the environment (the pipe wraps a co-expression,
            // `|>e → c=|<>e; …`) and spawns a fresh producer thread; the
            // resulting Value::Co can be assigned, activated with `@`,
            // promoted with `!`, or refreshed with `^`.
            let outer_env = ctx.env.clone();
            let body = body.clone();
            let shared = Arc::clone(&ctx.shared);
            let tmp_count = ctx.tmps.len() as u32;
            Box::new(comb::thunk(move || {
                let pristine = outer_env.shadow();
                let body = body.clone();
                let shared = Arc::clone(&shared);
                Some(pipes::pipe_value(
                    move || {
                        let ctx = Ctx {
                            shared: Arc::clone(&shared),
                            env: pristine.shadow(),
                            tmps: rt::tmps(tmp_count),
                            returned: rt::flag(),
                            loop_flags: None,
                        };
                        compile(&body, &ctx, Mode::Value)
                    },
                    pipes::DEFAULT_CAPACITY,
                ))
            }))
        }
    }
}

fn compile_loop(ctx: &Ctx, cond: &Norm, body: Option<&Norm>, until: bool) -> BoxGen {
    let (break_f, next_f) = (rt::flag(), rt::flag());
    let body_ctx = Ctx {
        loop_flags: Some((break_f.clone(), next_f.clone())),
        ..ctx.clone()
    };
    let cond_gen = compile(cond, ctx, Mode::Value);
    let body_gen = body.map(|b| compile_stmt(b, &body_ctx));
    Box::new(rt::loop_gen(
        cond_gen,
        body_gen,
        until,
        ctx.returned.clone(),
        break_f,
        next_f,
        ctx.loop_flags.clone(),
    ))
}

fn apply_binop(op: BinOp, a: &Value, b: &Value) -> Option<Value> {
    use gde::ops;
    match op {
        BinOp::Add => ops::add(a, b),
        BinOp::Sub => ops::sub(a, b),
        BinOp::Mul => ops::mul(a, b),
        BinOp::Div => ops::div(a, b),
        BinOp::Rem => ops::rem(a, b),
        BinOp::Pow => ops::pow(a, b),
        BinOp::Lt => ops::lt(a, b),
        BinOp::Le => ops::le(a, b),
        BinOp::Gt => ops::gt(a, b),
        BinOp::Ge => ops::ge(a, b),
        BinOp::NumEq => ops::num_eq(a, b),
        BinOp::NumNe => ops::num_ne(a, b),
        BinOp::Concat => ops::concat(a, b),
        BinOp::StrLt => ops::str_lt(a, b),
        BinOp::StrLe => ops::str_le(a, b),
        BinOp::StrGt => ops::str_gt(a, b),
        BinOp::StrGe => ops::str_ge(a, b),
        BinOp::StrEq => ops::str_eq(a, b),
        BinOp::StrNe => ops::str_ne(a, b),
        BinOp::Equiv => ops::equiv(a, b),
    }
}

fn dispatch_native(
    shared: &Arc<Shared>,
    target: &Value,
    method: &str,
    args: &[Value],
) -> Option<Value> {
    if let Some(f) = shared.natives.lock().get(method).cloned() {
        return f(target, args);
    }
    rt::native_method(target, method, args)
}

#[cfg(test)]
mod tests;
