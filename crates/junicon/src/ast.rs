//! Abstract syntax for the Unicon subset.

/// Binary operators (operator tokens only; `&` and `|` have their own
/// nodes because they compose *generators* rather than values).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Pow,
    /// numeric comparisons — goal-directed (produce the right operand)
    Lt,
    Le,
    Gt,
    Ge,
    NumEq,
    NumNe,
    /// string concatenation `||`
    Concat,
    /// lexical comparisons
    StrLt,
    StrLe,
    StrGt,
    StrGe,
    StrEq,
    StrNe,
    /// `===`
    Equiv,
}

/// Unary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UnOp {
    /// `-e` numeric negation
    Neg,
    /// `*e` size
    Size,
    /// `!e` promotion to a generator of elements
    Promote,
    /// `@e` co-expression activation
    Activate,
    /// `^e` refresh
    Refresh,
    /// `<>e` first-class generator
    FirstClass,
    /// `|<>e` co-expression (environment shadowing)
    CoExpr,
    /// `|>e` threaded generator proxy (pipe)
    Pipe,
    /// `/e` — null test (succeeds producing e if e is null)  [unused: kept for extension]
    IsNull,
    /// `.e` — dereference
    Deref,
}

/// An expression (everything in Icon is an expression).
#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    Null,
    Int(i64),
    /// Integer literal that does not fit i64 (parsed to a big int later).
    BigLit(String),
    Real(f64),
    Str(String),
    /// `&keyword` — only `&null` and `&fail` are supported.
    KeywordAmp(String),
    Var(String),
    /// `[e1, e2, ...]` list literal
    List(Vec<Expr>),
    Binary(BinOp, Box<Expr>, Box<Expr>),
    Unary(UnOp, Box<Expr>),
    /// `e & e'` — iterator product / conjunction
    Product(Box<Expr>, Box<Expr>),
    /// `e | e'` — alternation
    Alt(Box<Expr>, Box<Expr>),
    /// `i to j [by k]`
    To {
        from: Box<Expr>,
        to: Box<Expr>,
        by: Option<Box<Expr>>,
    },
    /// `target := value`
    Assign(Box<Expr>, Box<Expr>),
    /// `target <- value` — *reversible* assignment: the old value is
    /// restored when the expression is resumed for backtracking
    /// (Sec. V.B's "optionally reversible" iteration)
    RevAssign(Box<Expr>, Box<Expr>),
    /// `f(args...)` — callee may be any expression (reference semantics)
    Call(Box<Expr>, Vec<Expr>),
    /// `o::m(args...)` — "native" invocation; `::` distinguishes host
    /// methods from generator-function application (Sec. IV)
    NativeCall(Box<Expr>, String, Vec<Expr>),
    /// `x[i]`
    Index(Box<Expr>, Box<Expr>),
    /// `o.f` field access
    Field(Box<Expr>, String),
    /// `e \ n` limitation
    Limit(Box<Expr>, Box<Expr>),
    /// `e1 ? e2` string scanning: evaluate `e2` with `&subject` set to
    /// `e1`'s value and `&pos` starting at 1
    Scan(Box<Expr>, Box<Expr>),
    /// `if c then t [else e]`
    If {
        cond: Box<Expr>,
        then: Box<Expr>,
        els: Option<Box<Expr>>,
    },
    /// `while c [do b]`
    While {
        cond: Box<Expr>,
        body: Option<Box<Expr>>,
    },
    /// `until c [do b]`
    Until {
        cond: Box<Expr>,
        body: Option<Box<Expr>>,
    },
    /// `every g [do b]`
    Every {
        source: Box<Expr>,
        body: Option<Box<Expr>>,
    },
    /// `repeat b`
    Repeat(Box<Expr>),
    /// `not e`
    Not(Box<Expr>),
    /// `{ e1; e2; ... }`
    Block(Vec<Expr>),
    /// `suspend e` (statement position)
    Suspend(Box<Expr>),
    /// `return [e]`
    Return(Option<Box<Expr>>),
    /// `fail`
    Fail,
    /// `break`
    Break,
    /// `next`
    Next,
    /// `create e` — synonym for `<>e` in Icon
    Create(Box<Expr>),
    /// local declaration with optional initializers:
    /// `local a, b := 2` / `var x := 1`
    Decl(Vec<(String, Option<Expr>)>),
}

/// A procedure declaration: `def f(a, b) { body }` or
/// `procedure f(a, b); body; end`.
#[derive(Clone, Debug, PartialEq)]
pub struct ProcDecl {
    pub name: String,
    pub params: Vec<String>,
    pub body: Vec<Expr>,
}

/// A class declaration (Sec. V.C): named fields (initialized positionally
/// by the constructor) plus methods that close over the instance's fields.
#[derive(Clone, Debug, PartialEq)]
pub struct ClassDecl {
    pub name: String,
    pub fields: Vec<String>,
    pub methods: Vec<ProcDecl>,
}

/// A parsed program: class and procedure declarations plus top-level
/// expressions (statements), in source order.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Program {
    pub procs: Vec<ProcDecl>,
    pub classes: Vec<ClassDecl>,
    pub stmts: Vec<Expr>,
}

impl Expr {
    /// Convenience constructor used by tests.
    pub fn var(name: &str) -> Expr {
        Expr::Var(name.to_string())
    }
}
