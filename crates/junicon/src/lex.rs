//! Lexer for the Unicon subset.

use std::fmt;

/// A lexical token.
#[derive(Clone, Debug, PartialEq)]
pub enum Tok {
    // literals
    Int(i64),
    /// Integer literal too large for i64 (kept textual; becomes a big int).
    BigInt(String),
    Real(f64),
    Str(String),
    Ident(String),
    Keyword(Kw),
    // punctuation / operators
    LParen,
    RParen,
    LBracket,
    RBracket,
    LBrace,
    RBrace,
    Comma,
    Semi,
    Dot,
    ColonColon,
    Assign,     // :=
    Amp,        // &
    Bar,        // |
    BarBar,     // ||
    Bang,       // !
    At,         // @
    Caret,      // ^
    Diamond,    // <>
    BarDiamond, // |<>
    PipeOp,     // |>
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Lt,
    Le,
    Gt,
    Ge,
    Eq,        // =
    Ne,        // ~=
    SEq,       // ==
    SNe,       // ~==
    SLt,       // <<
    SLe,       // <<=
    SGt,       // >>
    SGe,       // >>=
    EqEqEq,    // ===
    RevAssign, // <-
    Backslash, // \ (limitation)
    Question,  // ?
    Tilde,     // ~
}

/// Reserved words of the subset.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Kw {
    Def,
    Procedure,
    Method,
    Class,
    End,
    Local,
    Var,
    Static,
    Global,
    If,
    Then,
    Else,
    Every,
    While,
    Until,
    Repeat,
    Do,
    To,
    By,
    Suspend,
    Return,
    Fail,
    Break,
    Next,
    Create,
    Not,
    Null,
}

impl Kw {
    fn from_ident(s: &str) -> Option<Kw> {
        Some(match s {
            "def" => Kw::Def,
            "procedure" => Kw::Procedure,
            "method" => Kw::Method,
            "class" => Kw::Class,
            "end" => Kw::End,
            "local" => Kw::Local,
            "var" => Kw::Var,
            "static" => Kw::Static,
            "global" => Kw::Global,
            "if" => Kw::If,
            "then" => Kw::Then,
            "else" => Kw::Else,
            "every" => Kw::Every,
            "while" => Kw::While,
            "until" => Kw::Until,
            "repeat" => Kw::Repeat,
            "do" => Kw::Do,
            "to" => Kw::To,
            "by" => Kw::By,
            "suspend" => Kw::Suspend,
            "return" => Kw::Return,
            "fail" => Kw::Fail,
            "break" => Kw::Break,
            "next" => Kw::Next,
            "create" => Kw::Create,
            "not" => Kw::Not,
            _ => return None,
        })
    }
}

/// A token plus its source offset (for diagnostics).
#[derive(Clone, Debug, PartialEq)]
pub struct Spanned {
    pub tok: Tok,
    pub at: usize,
}

/// Lexical error.
#[derive(Clone, Debug, PartialEq)]
pub struct LexError {
    pub at: usize,
    pub msg: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for LexError {}

/// Tokenize a Unicon-subset source string. `#` comments run to end of line.
pub fn lex(src: &str) -> Result<Vec<Spanned>, LexError> {
    let b = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < b.len() {
        let c = b[i];
        let at = i;
        match c {
            b' ' | b'\t' | b'\r' | b'\n' => {
                i += 1;
                continue;
            }
            b'#' => {
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
                continue;
            }
            b'"' | b'\'' => {
                let quote = c;
                i += 1;
                let mut s = String::new();
                loop {
                    if i >= b.len() {
                        return Err(LexError {
                            at,
                            msg: "unterminated string".into(),
                        });
                    }
                    match b[i] {
                        q if q == quote => {
                            i += 1;
                            break;
                        }
                        b'\\' => {
                            i += 1;
                            if i >= b.len() {
                                return Err(LexError {
                                    at,
                                    msg: "unterminated escape".into(),
                                });
                            }
                            s.push(match b[i] {
                                b'n' => '\n',
                                b't' => '\t',
                                b'r' => '\r',
                                b'\\' => '\\',
                                b'"' => '"',
                                b'\'' => '\'',
                                b'0' => '\0',
                                other => other as char,
                            });
                            i += 1;
                        }
                        _ => {
                            // copy one full UTF-8 char
                            let ch_start = i;
                            i += 1;
                            while i < b.len() && (b[i] & 0xC0) == 0x80 {
                                i += 1;
                            }
                            s.push_str(&src[ch_start..i]);
                        }
                    }
                }
                out.push(Spanned {
                    tok: Tok::Str(s),
                    at,
                });
                continue;
            }
            b'0'..=b'9' => {
                let start = i;
                while i < b.len() && b[i].is_ascii_digit() {
                    i += 1;
                }
                // real: digits '.' digits (but not '..' or method call)
                if i < b.len() && b[i] == b'.' && i + 1 < b.len() && b[i + 1].is_ascii_digit() {
                    i += 1;
                    while i < b.len() && b[i].is_ascii_digit() {
                        i += 1;
                    }
                    // optional exponent
                    if i < b.len() && (b[i] == b'e' || b[i] == b'E') {
                        let mut j = i + 1;
                        if j < b.len() && (b[j] == b'+' || b[j] == b'-') {
                            j += 1;
                        }
                        if j < b.len() && b[j].is_ascii_digit() {
                            i = j;
                            while i < b.len() && b[i].is_ascii_digit() {
                                i += 1;
                            }
                        }
                    }
                    let text = &src[start..i];
                    let v: f64 = text.parse().map_err(|_| LexError {
                        at,
                        msg: format!("bad real {text}"),
                    })?;
                    out.push(Spanned {
                        tok: Tok::Real(v),
                        at,
                    });
                } else {
                    let text = &src[start..i];
                    match text.parse::<i64>() {
                        Ok(v) => out.push(Spanned {
                            tok: Tok::Int(v),
                            at,
                        }),
                        Err(_) => out.push(Spanned {
                            tok: Tok::BigInt(text.to_string()),
                            at,
                        }),
                    }
                }
                continue;
            }
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                let start = i;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                let word = &src[start..i];
                match Kw::from_ident(word) {
                    Some(kw) => out.push(Spanned {
                        tok: Tok::Keyword(kw),
                        at,
                    }),
                    None => out.push(Spanned {
                        tok: Tok::Ident(word.to_string()),
                        at,
                    }),
                }
                continue;
            }
            _ => {}
        }
        // operators: longest match first
        let rest = &src[i..];
        let table: &[(&str, Tok)] = &[
            ("|<>", Tok::BarDiamond),
            ("===", Tok::EqEqEq),
            ("~==", Tok::SNe),
            ("<<=", Tok::SLe),
            (">>=", Tok::SGe),
            ("|>", Tok::PipeOp),
            ("||", Tok::BarBar),
            ("<>", Tok::Diamond),
            (":=", Tok::Assign),
            ("::", Tok::ColonColon),
            ("<-", Tok::RevAssign),
            ("<=", Tok::Le),
            (">=", Tok::Ge),
            ("~=", Tok::Ne),
            ("==", Tok::SEq),
            ("<<", Tok::SLt),
            (">>", Tok::SGt),
            ("(", Tok::LParen),
            (")", Tok::RParen),
            ("[", Tok::LBracket),
            ("]", Tok::RBracket),
            ("{", Tok::LBrace),
            ("}", Tok::RBrace),
            (",", Tok::Comma),
            (";", Tok::Semi),
            (".", Tok::Dot),
            ("&", Tok::Amp),
            ("|", Tok::Bar),
            ("!", Tok::Bang),
            ("@", Tok::At),
            ("^", Tok::Caret),
            ("+", Tok::Plus),
            ("-", Tok::Minus),
            ("*", Tok::Star),
            ("/", Tok::Slash),
            ("%", Tok::Percent),
            ("<", Tok::Lt),
            (">", Tok::Gt),
            ("=", Tok::Eq),
            ("\\", Tok::Backslash),
            ("?", Tok::Question),
            ("~", Tok::Tilde),
        ];
        let mut matched = false;
        for (pat, tok) in table {
            if rest.starts_with(pat) {
                out.push(Spanned {
                    tok: tok.clone(),
                    at,
                });
                i += pat.len();
                matched = true;
                break;
            }
        }
        if !matched {
            return Err(LexError {
                at,
                msg: format!("unexpected character {:?}", rest.chars().next().unwrap()),
            });
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|s| s.tok).collect()
    }

    #[test]
    fn numbers() {
        assert_eq!(toks("42"), vec![Tok::Int(42)]);
        assert_eq!(toks("3.25"), vec![Tok::Real(3.25)]);
        assert_eq!(toks("2.5e-2"), vec![Tok::Real(0.025)]);
        assert_eq!(
            toks("99999999999999999999999999"),
            vec![Tok::BigInt("99999999999999999999999999".into())]
        );
    }

    #[test]
    fn real_exponent_without_dot() {
        // "1e3" — digits then exponent: our lexer sees 1 then ident e3?
        // Verify documented behaviour: plain digits followed by e<digits>.
        assert_eq!(toks("2.0e2"), vec![Tok::Real(200.0)]);
    }

    #[test]
    fn strings_and_escapes() {
        assert_eq!(toks(r#""hi there""#), vec![Tok::Str("hi there".into())]);
        assert_eq!(toks(r#""a\nb\"c""#), vec![Tok::Str("a\nb\"c".into())]);
        assert_eq!(toks(r#"'\\s+'"#), vec![Tok::Str("\\s+".into())]);
        assert!(lex("\"oops").is_err());
    }

    #[test]
    fn unicode_in_strings() {
        assert_eq!(toks("\"héllo\""), vec![Tok::Str("héllo".into())]);
    }

    #[test]
    fn keywords_vs_identifiers() {
        assert_eq!(
            toks("while whilex to toy"),
            vec![
                Tok::Keyword(Kw::While),
                Tok::Ident("whilex".into()),
                Tok::Keyword(Kw::To),
                Tok::Ident("toy".into())
            ]
        );
    }

    #[test]
    fn concurrency_operators_longest_match() {
        assert_eq!(
            toks("|<> |> <> | ||"),
            vec![
                Tok::BarDiamond,
                Tok::PipeOp,
                Tok::Diamond,
                Tok::Bar,
                Tok::BarBar
            ]
        );
    }

    #[test]
    fn comparison_operators() {
        assert_eq!(
            toks("< <= > >= = ~= == ~== << <<= >> >>= ==="),
            vec![
                Tok::Lt,
                Tok::Le,
                Tok::Gt,
                Tok::Ge,
                Tok::Eq,
                Tok::Ne,
                Tok::SEq,
                Tok::SNe,
                Tok::SLt,
                Tok::SLe,
                Tok::SGt,
                Tok::SGe,
                Tok::EqEqEq,
            ]
        );
    }

    #[test]
    fn assignment_vs_colon_colon() {
        assert_eq!(
            toks("x := o::m"),
            vec![
                Tok::Ident("x".into()),
                Tok::Assign,
                Tok::Ident("o".into()),
                Tok::ColonColon,
                Tok::Ident("m".into())
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(toks("1 # a comment\n2"), vec![Tok::Int(1), Tok::Int(2)]);
    }

    #[test]
    fn the_paper_pipeline_expression_lexes() {
        let src = "hashNumber( ! (|> wordToNumber( ! splitWords(readLines()))))";
        let tokens = toks(src);
        assert!(tokens.contains(&Tok::PipeOp));
        assert_eq!(tokens.iter().filter(|t| **t == Tok::Bang).count(), 2);
    }

    #[test]
    fn offsets_recorded() {
        let spanned = lex("a := 1").unwrap();
        assert_eq!(spanned[0].at, 0);
        assert_eq!(spanned[1].at, 2);
        assert_eq!(spanned[2].at, 5);
    }

    #[test]
    fn unexpected_character_errors() {
        assert!(lex("a ` b").is_err());
    }
}
