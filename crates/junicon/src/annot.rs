//! Scoped annotations: the mixed-language region metaparser.
//!
//! Scoped annotations "blend Java annotations and XML" (Sec. IV). The
//! admissible forms are:
//!
//! ```text
//! @<tag attr1=x1 ... attrn=xn> expression @</tag>
//! @<tag attr1=x1 ... attrn=xn/>
//! @<tag(attr1=x1, ..., attrn=xn)> expression @</tag>
//! @<tag(attr1=x1, ..., attrn=xn)/>
//! ```
//!
//! Tags may be namespace-qualified (`ns:tag` or `pkg.tag`); annotations may
//! surround multiple statements and may nest. The metaparser is oblivious
//! to the host grammar: it only tracks string/char literals (so an `@<`
//! inside a quoted literal is not a region start) and scans for the
//! annotation markers themselves.

use std::fmt;

/// One attribute of a scoped annotation, e.g. `lang="junicon"`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Attr {
    pub name: String,
    /// Attribute value with surrounding quotes removed (bare values are
    /// taken verbatim).
    pub value: String,
}

/// A parsed piece of a mixed-language source file.
#[derive(Clone, Debug, PartialEq)]
pub enum Segment {
    /// Host-language text, passed through untouched.
    Host(String),
    /// A scoped annotation region.
    Embedded(Region),
}

/// The contents of one scoped annotation.
#[derive(Clone, Debug, PartialEq)]
pub struct Region {
    /// Tag name, possibly qualified (`script`, `ns:tag`, `pkg.tag`).
    pub tag: String,
    pub attrs: Vec<Attr>,
    /// Child segments: embedded regions nest.
    pub body: Vec<Segment>,
    /// True for `@<tag .../>`.
    pub self_closing: bool,
}

impl Region {
    /// Look up an attribute value by name.
    pub fn attr(&self, name: &str) -> Option<&str> {
        self.attrs
            .iter()
            .find(|a| a.name == name)
            .map(|a| a.value.as_str())
    }

    /// The region's `lang` attribute (the common case:
    /// `@<script lang="junicon">`).
    pub fn lang(&self) -> Option<&str> {
        self.attr("lang")
    }

    /// Concatenated host text of the body (ignoring nested regions) —
    /// the embedded program text.
    pub fn text(&self) -> String {
        let mut out = String::new();
        for seg in &self.body {
            if let Segment::Host(t) = seg {
                out.push_str(t);
            }
        }
        out
    }
}

/// Error from the metaparser.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AnnotError {
    /// `@</tag>` without a matching opener, or mismatched tag name.
    MismatchedClose {
        found: String,
        expected: Option<String>,
        at: usize,
    },
    /// Reached end of input inside an open region.
    UnclosedRegion { tag: String, opened_at: usize },
    /// Malformed annotation syntax at the given byte offset.
    Malformed { at: usize, what: &'static str },
}

impl fmt::Display for AnnotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnnotError::MismatchedClose {
                found,
                expected,
                at,
            } => match expected {
                Some(e) => write!(f, "mismatched @</{found}> at byte {at}, expected @</{e}>"),
                None => write!(f, "stray @</{found}> at byte {at}"),
            },
            AnnotError::UnclosedRegion { tag, opened_at } => {
                write!(f, "unclosed @<{tag}> opened at byte {opened_at}")
            }
            AnnotError::Malformed { at, what } => {
                write!(f, "malformed annotation at byte {at}: {what}")
            }
        }
    }
}

impl std::error::Error for AnnotError {}

/// Split a mixed-language source into host text and (possibly nested)
/// scoped-annotation regions.
pub fn parse_annotated(src: &str) -> Result<Vec<Segment>, AnnotError> {
    let bytes = src.as_bytes();
    let mut root: Vec<Segment> = Vec::new();
    // Stack of open regions: (region under construction, open offset).
    let mut stack: Vec<(Region, usize)> = Vec::new();
    let mut host_start = 0usize;
    let mut i = 0usize;

    fn push_host(dst: &mut Vec<Segment>, src: &str, from: usize, to: usize) {
        if to > from {
            dst.push(Segment::Host(src[from..to].to_string()));
        }
    }

    while i < bytes.len() {
        match bytes[i] {
            // Skip string/char literals so quoted "@<" is not a marker.
            b'"' | b'\'' => {
                let quote = bytes[i];
                i += 1;
                while i < bytes.len() && bytes[i] != quote {
                    if bytes[i] == b'\\' {
                        i += 1;
                    }
                    i += 1;
                }
                i += 1; // closing quote (or EOF)
            }
            b'@' if bytes.get(i + 1) == Some(&b'<') => {
                let target = if let Some((r, _)) = stack.last_mut() {
                    &mut r.body
                } else {
                    &mut root
                };
                push_host(target, src, host_start, i);
                if bytes.get(i + 2) == Some(&b'/') {
                    // @</tag>
                    let start = i + 3;
                    let end = find_byte(bytes, start, b'>').ok_or(AnnotError::Malformed {
                        at: i,
                        what: "unterminated close tag",
                    })?;
                    let name = src[start..end].trim().to_string();
                    match stack.pop() {
                        Some((region, _)) if region.tag == name => {
                            let seg = Segment::Embedded(region);
                            if let Some((parent, _)) = stack.last_mut() {
                                parent.body.push(seg);
                            } else {
                                root.push(seg);
                            }
                        }
                        Some((region, opened_at)) => {
                            return Err(AnnotError::MismatchedClose {
                                found: name,
                                expected: Some(region.tag),
                                at: opened_at,
                            })
                        }
                        None => {
                            return Err(AnnotError::MismatchedClose {
                                found: name,
                                expected: None,
                                at: i,
                            })
                        }
                    }
                    i = end + 1;
                    host_start = i;
                } else {
                    // @<tag ...> or @<tag .../>
                    let (region, consumed, self_closing) = parse_open_tag(src, i)?;
                    if self_closing {
                        let seg = Segment::Embedded(region);
                        if let Some((parent, _)) = stack.last_mut() {
                            parent.body.push(seg);
                        } else {
                            root.push(seg);
                        }
                    } else {
                        stack.push((region, i));
                    }
                    i += consumed;
                    host_start = i;
                }
            }
            _ => i += 1,
        }
    }

    if let Some((region, opened_at)) = stack.pop() {
        return Err(AnnotError::UnclosedRegion {
            tag: region.tag,
            opened_at,
        });
    }
    push_host(&mut root, src, host_start, src.len());
    Ok(root)
}

fn find_byte(bytes: &[u8], from: usize, target: u8) -> Option<usize> {
    bytes[from..]
        .iter()
        .position(|&b| b == target)
        .map(|p| from + p)
}

/// Parse `@<tag attrs>` starting at `at`; returns the region (body empty),
/// the bytes consumed, and whether it was self-closing.
fn parse_open_tag(src: &str, at: usize) -> Result<(Region, usize, bool), AnnotError> {
    let bytes = src.as_bytes();
    let mut i = at + 2; // past "@<"
    let name_start = i;
    while i < bytes.len()
        && (bytes[i].is_ascii_alphanumeric() || matches!(bytes[i], b'_' | b':' | b'.'))
    {
        i += 1;
    }
    if i == name_start {
        return Err(AnnotError::Malformed {
            at,
            what: "missing tag name",
        });
    }
    let tag = src[name_start..i].to_string();

    // Optional parenthesized attribute list: @<tag(a=1, b=2)>.
    let mut attrs = Vec::new();
    let paren_form = bytes.get(i) == Some(&b'(');
    if paren_form {
        let close = find_byte(bytes, i, b')').ok_or(AnnotError::Malformed {
            at,
            what: "unterminated attribute list",
        })?;
        parse_attrs(&src[i + 1..close], b',', &mut attrs);
        i = close + 1;
    }

    // Scan to '>' collecting space-separated attributes (XML form).
    let gt = find_byte(bytes, i, b'>').ok_or(AnnotError::Malformed {
        at,
        what: "unterminated open tag",
    })?;
    let mut self_closing = false;
    let mut attr_text = &src[i..gt];
    if attr_text.ends_with('/') {
        self_closing = true;
        attr_text = &attr_text[..attr_text.len() - 1];
    }
    if !paren_form {
        parse_attrs(attr_text, b' ', &mut attrs);
    } else if !attr_text.trim().is_empty() && attr_text.trim() != "/" {
        return Err(AnnotError::Malformed {
            at,
            what: "text after attribute list",
        });
    }

    Ok((
        Region {
            tag,
            attrs,
            body: Vec::new(),
            self_closing,
        },
        gt + 1 - at,
        self_closing,
    ))
}

/// Parse `name=value` pairs separated by `sep` (values optionally quoted).
fn parse_attrs(text: &str, sep: u8, out: &mut Vec<Attr>) {
    let parts: Vec<&str> = if sep == b',' {
        text.split(',').collect()
    } else {
        text.split_whitespace().collect()
    };
    for part in parts {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        let (name, value) = match part.split_once('=') {
            Some((n, v)) => (n.trim(), v.trim()),
            None => (part, ""),
        };
        let value = value
            .strip_prefix('"')
            .and_then(|v| v.strip_suffix('"'))
            .or_else(|| value.strip_prefix('\'').and_then(|v| v.strip_suffix('\'')))
            .unwrap_or(value);
        out.push(Attr {
            name: name.to_string(),
            value: value.to_string(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn embedded(segs: &[Segment]) -> Vec<&Region> {
        segs.iter()
            .filter_map(|s| match s {
                Segment::Embedded(r) => Some(r),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn plain_host_text_passes_through() {
        let segs = parse_annotated("fn main() { println!(\"hi\"); }").unwrap();
        assert_eq!(segs.len(), 1);
        assert!(matches!(&segs[0], Segment::Host(t) if t.contains("main")));
    }

    #[test]
    fn single_region_with_lang_attr() {
        let src = r#"before @<script lang="junicon"> x := f(g(y)) @</script> after"#;
        let segs = parse_annotated(src).unwrap();
        assert_eq!(segs.len(), 3);
        let r = embedded(&segs)[0];
        assert_eq!(r.tag, "script");
        assert_eq!(r.lang(), Some("junicon"));
        assert_eq!(r.text().trim(), "x := f(g(y))");
    }

    #[test]
    fn paren_attribute_form() {
        let src = r#"@<script(lang=junicon, mode=expr)> 1 to 3 @</script>"#;
        let segs = parse_annotated(src).unwrap();
        let r = embedded(&segs)[0];
        assert_eq!(r.lang(), Some("junicon"));
        assert_eq!(r.attr("mode"), Some("expr"));
    }

    #[test]
    fn self_closing_forms() {
        let segs = parse_annotated(r#"a @<pragma lang="java"/> b"#).unwrap();
        let r = embedded(&segs)[0];
        assert!(r.self_closing);
        assert!(r.body.is_empty());
        // paren self-closing form
        let segs = parse_annotated("@<pragma(opt=fast)/>").unwrap();
        assert_eq!(embedded(&segs)[0].attr("opt"), Some("fast"));
    }

    #[test]
    fn regions_nest() {
        let src = r#"@<script lang="junicon"> outer
            @<script lang="java"> native() @</script>
        more @</script>"#;
        let segs = parse_annotated(src).unwrap();
        let outer = embedded(&segs)[0];
        assert_eq!(outer.lang(), Some("junicon"));
        let inner: Vec<&Region> = outer
            .body
            .iter()
            .filter_map(|s| match s {
                Segment::Embedded(r) => Some(r),
                _ => None,
            })
            .collect();
        assert_eq!(inner.len(), 1);
        assert_eq!(inner[0].lang(), Some("java"));
        assert_eq!(inner[0].text().trim(), "native()");
        // outer.text() skips the nested region
        assert!(outer.text().contains("outer"));
        assert!(!outer.text().contains("native"));
    }

    #[test]
    fn qualified_tag_names() {
        let segs = parse_annotated("@<ns:directive x=1/> @<pkg.tag/>").unwrap();
        let regions = embedded(&segs);
        assert_eq!(regions[0].tag, "ns:directive");
        assert_eq!(regions[1].tag, "pkg.tag");
    }

    #[test]
    fn markers_inside_string_literals_are_ignored() {
        let src = r#"let s = "@<script lang=x>"; @<real/> let c = '@';"#;
        let segs = parse_annotated(src).unwrap();
        let regions = embedded(&segs);
        assert_eq!(regions.len(), 1);
        assert_eq!(regions[0].tag, "real");
    }

    #[test]
    fn multiple_statements_in_one_region() {
        let src = "@<script lang=\"junicon\">\n a := 1;\n b := 2;\n @</script>";
        let segs = parse_annotated(src).unwrap();
        let r = embedded(&segs)[0];
        assert!(r.text().contains("a := 1"));
        assert!(r.text().contains("b := 2"));
    }

    #[test]
    fn error_on_mismatched_close() {
        let err = parse_annotated("@<a> x @</b>").unwrap_err();
        assert!(matches!(err, AnnotError::MismatchedClose { .. }));
    }

    #[test]
    fn error_on_stray_close() {
        let err = parse_annotated("x @</script>").unwrap_err();
        assert!(
            matches!(err, AnnotError::MismatchedClose { expected: None, .. }),
            "{err:?}"
        );
    }

    #[test]
    fn error_on_unclosed_region() {
        let err = parse_annotated("@<script lang=\"junicon\"> x").unwrap_err();
        assert!(matches!(err, AnnotError::UnclosedRegion { .. }));
    }

    #[test]
    fn error_on_missing_tag_name() {
        let err = parse_annotated("@<>").unwrap_err();
        assert!(matches!(err, AnnotError::Malformed { .. }));
    }

    #[test]
    fn attribute_quoting_variants() {
        let segs = parse_annotated(r#"@<t a="double" b='single' c=bare/>"#).unwrap();
        let r = embedded(&segs)[0];
        assert_eq!(r.attr("a"), Some("double"));
        assert_eq!(r.attr("b"), Some("single"));
        assert_eq!(r.attr("c"), Some("bare"));
        assert_eq!(r.attr("missing"), None);
    }

    #[test]
    fn roundtrip_order_is_preserved() {
        let src = "A@<x/>B@<y/>C";
        let segs = parse_annotated(src).unwrap();
        let kinds: Vec<String> = segs
            .iter()
            .map(|s| match s {
                Segment::Host(t) => format!("H:{t}"),
                Segment::Embedded(r) => format!("E:{}", r.tag),
            })
            .collect();
        assert_eq!(kinds, vec!["H:A", "E:x", "H:B", "E:y", "H:C"]);
    }
}
