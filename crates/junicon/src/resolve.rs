//! Static resolution: variable references → `(depth, slot)` coordinates.
//!
//! This pass runs after [`crate::normalize`] and before interpretation or
//! emission. It rewrites [`Atom::Var`] / [`VarRef::Named`] references whose
//! binding is statically known into [`Atom::Slot`] / [`VarRef::Slot`]
//! coordinates addressing the activation frame directly
//! ([`gde::env::Env::slot`]: two pointer hops, no hashing, no frame lock),
//! and records each procedure's frame shape in [`NProc::slots`] so the
//! interpreter / emitter can allocate the frame as a flat slot array.
//!
//! # What resolves, what stays by-name
//!
//! A reference is rewritten only when it provably binds the same cell the
//! unresolved interpreter would bind. The unresolved interpreter binds
//! cells **at compile time, in pre-order**, via `lookup_or_declare`
//! against a frame whose contents are: the parameters (declared at
//! invocation), plus every `local` declaration compiled so far (`Decl`
//! declares at compile time). That gives the following rules, checked per
//! procedure:
//!
//! * **Parameters** always occupy slots `0..params.len()` — they exist
//!   before any reference compiles, so every main-stream reference to a
//!   parameter binds it (until shadowed by a later `local` of the same
//!   name, which gets its *own fresh slot*, exactly as re-`declare` used
//!   to create a fresh cell).
//! * **Fields** (methods only): the enclosing field frame is laid out as
//!   `[fields..., "self"]`; a method-body reference to a field that is not
//!   (yet) shadowed by a method-local declaration resolves to depth 1.
//! * **`local` declarations** on the main compile stream get a fresh
//!   depth-0 slot each; references after the declaration resolve to the
//!   latest slot.
//! * **Everything else stays by-name** — these are the *genuinely dynamic*
//!   references: globals and implicit locals (whether the name exists in
//!   an outer frame is only known at invocation time), `&`-keywords,
//!   references inside deferred bodies, and anything poisoned below.
//!
//! # Poisoning
//!
//! Two situations force a name to keep by-name semantics for the whole
//! procedure (no slots at all), because a slot in the frame layout is
//! visible to by-name lookup *from frame birth*, while the unresolved
//! interpreter only sees a local cell once its `Decl` has compiled:
//!
//! * a main-stream **use before the first main-stream declaration** of a
//!   non-parameter, non-field name — the unresolved interpreter would have
//!   bound a global (or sprung an implicit local); a layout slot would
//!   shadow it too early;
//! * a declaration inside a **deferred body** (`<>e` / `|<>e` / `|>e`
//!   bodies compile at co-expression creation time, not on the main
//!   stream) — such declarations must create fresh overlay cells per
//!   creation, which slots cannot model.
//!
//! References *inside* deferred bodies are always left by-name: they bind
//! at creation time, after every main-stream declaration has executed, and
//! the by-name fallback (overlay → latest layout slot → parent) reproduces
//! that binding exactly — including against [`gde::env::Env::shadow`]
//! copies, which preserve the layout.

use crate::normalize::{Atom, NClass, NProc, NProgram, Norm, VarRef};
use gde::Symbol;
use std::collections::{HashMap, HashSet};

// ---------------------------------------------------------------------------
// Fusable-run annotation (consumed by the emitter)
// ---------------------------------------------------------------------------

/// The length of the maximal *fusable* suffix of a product's factors: the
/// trailing run of monogenic factors (at most one value per activation —
/// the flattened thunk shapes) whose operands are all statically
/// resolved. The emitter collapses such a run into a single composed
/// filter-map closure over the preceding factor
/// ([`gde::comb::fuse::emitted_fused`]), eliminating one product link and
/// one boxed `resume` per run factor per binding.
///
/// The analysis is deliberately conservative — a factor only joins a run
/// when the fused closure provably evaluates it with the by-node tree's
/// exact semantics:
///
/// * **generator factors** (invocation, promotion, ranges, alternation,
///   nested products, …) can yield many values per binding, so
///   backtracking must be able to re-enter them — they end every run;
/// * **dynamic-name operands** ([`Atom::Var`]) are barriers: a by-name
///   lookup can spring an implicit local mid-product
///   (`lookup_or_declare` mutates the frame), and the `&`-keywords
///   (`&subject`/`&pos`) read the scanning stack, whose innermost frame
///   can change between the product's construction and the closure's
///   evaluation — only slot-resolved cells, temporaries and literals are
///   known to read the same cell either way (see DESIGN.md § Stage
///   fusion);
/// * **by-name assignment targets** ([`VarRef::Named`]) stay unfused for
///   the same reason.
///
/// The suffix never includes *every* factor — the emitter keeps at least
/// one leading factor as the generator the fused closure hangs off — and
/// callers get that clamp here so the annotation is the single source of
/// truth.
pub fn fusable_suffix(factors: &[Norm]) -> usize {
    let run = factors
        .iter()
        .rev()
        .take_while(|f| fusable_monogenic(f))
        .count();
    run.min(factors.len().saturating_sub(1))
}

/// Is this atom a statically-resolved operand (literal, frame slot, or
/// temporary)? Dynamic names and `&`-keywords make the factor unfusable.
fn atom_is_static(a: &Atom) -> bool {
    !matches!(a, Atom::Var(_))
}

/// Is this factor a monogenic thunk shape over static operands?
fn fusable_monogenic(n: &Norm) -> bool {
    match n {
        Norm::Atom(a) | Norm::Neg(a) | Norm::Size(a) => atom_is_static(a),
        Norm::Op(_, a, b) | Norm::Index { base: a, index: b } => {
            atom_is_static(a) && atom_is_static(b)
        }
        Norm::IndexAssign { base, index, value } => {
            atom_is_static(base) && atom_is_static(index) && atom_is_static(value)
        }
        Norm::FieldGet { base, .. } => atom_is_static(base),
        Norm::FieldSet { base, value, .. } => atom_is_static(base) && atom_is_static(value),
        Norm::ListLit(items) => items.iter().all(atom_is_static),
        Norm::SetVar { target, from } => matches!(target, VarRef::Slot(..)) && atom_is_static(from),
        Norm::NativeInvoke { target, args, .. } => {
            atom_is_static(target) && args.iter().all(atom_is_static)
        }
        // Binding a temporary to a monogenic factor is itself monogenic
        // (the set runs as the factor produces its one value).
        Norm::Bind(_, inner) => fusable_monogenic(inner),
        _ => false,
    }
}

/// Resolve every procedure and class method in the program. Top-level
/// statements run directly in the global frame (the REPL frame) and are
/// left fully dynamic.
pub fn resolve_program(p: &mut NProgram) {
    for proc in &mut p.procs {
        resolve_proc(proc, None);
    }
    for class in &mut p.classes {
        let fields = field_coords(class);
        for method in &mut class.methods {
            resolve_proc(method, Some(&fields));
        }
    }
}

/// Field-frame coordinates for a class: name → depth-1 slot index, laid
/// out `[fields..., "self"]` (duplicates resolve to the last occurrence,
/// matching [`gde::env::FrameLayout`]'s latest-wins index).
fn field_coords(class: &NClass) -> HashMap<String, u16> {
    let mut map = HashMap::new();
    for (i, f) in class.fields.iter().enumerate() {
        map.insert(f.clone(), i as u16);
    }
    map.insert("self".to_string(), class.fields.len() as u16);
    map
}

/// Resolve one procedure (or method, when `fields` carries the enclosing
/// field frame's coordinates).
pub fn resolve_proc(proc: &mut NProc, fields: Option<&HashMap<String, u16>>) {
    let empty = HashMap::new();
    let fields = fields.unwrap_or(&empty);

    // Pass 1: find poisoned names.
    let mut scan = PoisonScan {
        declared: proc.params.iter().cloned().collect(),
        fields,
        poisoned: HashSet::new(),
    };
    for stmt in &proc.body {
        scan.walk(stmt, false);
    }
    let poisoned = scan.poisoned;

    // Pass 2: rewrite references in pre-order, assigning slots.
    let mut rs = Resolver {
        slots: proc.params.clone(),
        current: proc
            .params
            .iter()
            .enumerate()
            .map(|(i, p)| (p.clone(), (0u16, i as u16)))
            .collect(),
        fields,
        poisoned: &poisoned,
    };
    for stmt in &mut proc.body {
        rs.walk(stmt);
    }
    proc.slots = rs.slots;
}

// ---------------------------------------------------------------------------
// Pass 1: poisoning scan
// ---------------------------------------------------------------------------

struct PoisonScan<'a> {
    /// Names known to be bound in the frame at the current pre-order
    /// point: parameters, plus main-stream declarations seen so far.
    declared: HashSet<String>,
    fields: &'a HashMap<String, u16>,
    poisoned: HashSet<String>,
}

impl PoisonScan<'_> {
    fn use_of(&mut self, name: &str, deferred: bool) {
        if deferred || name.starts_with('&') {
            return; // deferred uses bind late, by name — never poison
        }
        if !self.declared.contains(name) && !self.fields.contains_key(name) {
            // Use before first main-stream declaration of a non-param,
            // non-field name: binding is only known at invocation time.
            self.poisoned.insert(name.to_string());
        }
    }

    fn decl_of(&mut self, name: &str, deferred: bool) {
        if deferred {
            // Declarations in deferred bodies need fresh overlay cells per
            // co-expression creation; the whole name stays dynamic.
            self.poisoned.insert(name.to_string());
        } else {
            self.declared.insert(name.to_string());
        }
    }

    fn atom(&mut self, a: &Atom, deferred: bool) {
        if let Atom::Var(name) = a {
            self.use_of(name, deferred);
        }
    }

    fn walk(&mut self, n: &Norm, deferred: bool) {
        match n {
            Norm::Atom(a)
            | Norm::Neg(a)
            | Norm::Size(a)
            | Norm::Promote(a)
            | Norm::Activate(a)
            | Norm::Refresh(a) => self.atom(a, deferred),
            Norm::Product(fs) | Norm::Alt(fs) | Norm::Block(fs) => {
                for f in fs {
                    self.walk(f, deferred);
                }
            }
            Norm::Bind(_, inner)
            | Norm::Repeat(inner)
            | Norm::Not(inner)
            | Norm::Suspend(inner) => self.walk(inner, deferred),
            Norm::Return(inner) => {
                if let Some(e) = inner {
                    self.walk(e, deferred);
                }
            }
            Norm::Op(_, a, b) | Norm::Index { base: a, index: b } => {
                self.atom(a, deferred);
                self.atom(b, deferred);
            }
            Norm::IndexAssign { base, index, value } => {
                self.atom(base, deferred);
                self.atom(index, deferred);
                self.atom(value, deferred);
            }
            Norm::FieldGet { base, .. } => self.atom(base, deferred),
            Norm::FieldSet { base, value, .. } => {
                self.atom(base, deferred);
                self.atom(value, deferred);
            }
            Norm::Invoke { callee, args } => {
                self.atom(callee, deferred);
                for a in args {
                    self.atom(a, deferred);
                }
            }
            Norm::NativeInvoke { target, args, .. } => {
                self.atom(target, deferred);
                for a in args {
                    self.atom(a, deferred);
                }
            }
            Norm::ListLit(items) => {
                for a in items {
                    self.atom(a, deferred);
                }
            }
            Norm::SetVar { target, from } | Norm::RevSet { target, from } => {
                self.use_of(target.name(), deferred);
                self.atom(from, deferred);
            }
            Norm::ToRange { from, to, by } => {
                self.atom(from, deferred);
                self.atom(to, deferred);
                if let Some(b) = by {
                    self.atom(b, deferred);
                }
            }
            Norm::Limit { inner, n } => {
                self.walk(inner, deferred);
                self.atom(n, deferred);
            }
            Norm::If { cond, then, els } => {
                self.walk(cond, deferred);
                self.walk(then, deferred);
                if let Some(e) = els {
                    self.walk(e, deferred);
                }
            }
            Norm::While { cond, body } | Norm::Until { cond, body } => {
                self.walk(cond, deferred);
                if let Some(b) = body {
                    self.walk(b, deferred);
                }
            }
            Norm::Every { source, body } => {
                self.walk(source, deferred);
                if let Some(b) = body {
                    self.walk(b, deferred);
                }
            }
            Norm::Scan { subject, body } => {
                self.walk(subject, deferred);
                self.walk(body, deferred);
            }
            Norm::Decl(decls) => {
                for (target, init) in decls {
                    // The unresolved interpreter declares the name *before*
                    // compiling the initializer, so the declaration comes
                    // first here too.
                    self.decl_of(target.name(), deferred);
                    if let Some(e) = init {
                        self.walk(e, deferred);
                    }
                }
            }
            // Deferred bodies: everything below compiles at co-expression
            // creation time.
            Norm::CoCreate { body, .. } | Norm::Pipe(body) => self.walk(body, true),
            Norm::Fail | Norm::Break | Norm::Next => {}
        }
    }
}

// ---------------------------------------------------------------------------
// Pass 2: rewrite
// ---------------------------------------------------------------------------

struct Resolver<'a> {
    /// Frame layout under construction: slot index → name.
    slots: Vec<String>,
    /// Name → coordinate it binds at the current pre-order point.
    current: HashMap<String, (u16, u16)>,
    fields: &'a HashMap<String, u16>,
    poisoned: &'a HashSet<String>,
}

impl Resolver<'_> {
    /// The coordinate a main-stream use of `name` binds, if static.
    fn coord_of(&self, name: &str) -> Option<(u16, u16)> {
        if name.starts_with('&') || self.poisoned.contains(name) {
            return None;
        }
        if let Some(&c) = self.current.get(name) {
            return Some(c);
        }
        // Not (yet) a frame local: an unshadowed field reference.
        self.fields.get(name).map(|&i| (1, i))
    }

    fn atom(&mut self, a: &mut Atom) {
        if let Atom::Var(name) = a {
            if let Some((depth, idx)) = self.coord_of(name) {
                *a = Atom::Slot(depth, idx, Symbol::new(name));
            }
        }
    }

    fn target(&mut self, t: &mut VarRef) {
        if let VarRef::Named(name) = t {
            if let Some((depth, idx)) = self.coord_of(name) {
                *t = VarRef::Slot(depth, idx, Symbol::new(name));
            }
        }
    }

    /// A main-stream declaration: a fresh depth-0 slot (re-declarations
    /// shadow earlier slots of the same name, as re-`declare` used to
    /// replace the cell).
    fn declare(&mut self, t: &mut VarRef) {
        let name = t.name().to_string();
        if self.poisoned.contains(&name) {
            return; // stays VarRef::Named → dynamic overlay cell
        }
        let idx = self.slots.len() as u16;
        self.slots.push(name.clone());
        self.current.insert(name.clone(), (0, idx));
        *t = VarRef::Slot(0, idx, Symbol::new(&name));
    }

    fn walk(&mut self, n: &mut Norm) {
        match n {
            Norm::Atom(a)
            | Norm::Neg(a)
            | Norm::Size(a)
            | Norm::Promote(a)
            | Norm::Activate(a)
            | Norm::Refresh(a) => self.atom(a),
            Norm::Product(fs) | Norm::Alt(fs) | Norm::Block(fs) => {
                for f in fs {
                    self.walk(f);
                }
            }
            Norm::Bind(_, inner)
            | Norm::Repeat(inner)
            | Norm::Not(inner)
            | Norm::Suspend(inner) => self.walk(inner),
            Norm::Return(inner) => {
                if let Some(e) = inner {
                    self.walk(e);
                }
            }
            Norm::Op(_, a, b) | Norm::Index { base: a, index: b } => {
                self.atom(a);
                self.atom(b);
            }
            Norm::IndexAssign { base, index, value } => {
                self.atom(base);
                self.atom(index);
                self.atom(value);
            }
            Norm::FieldGet { base, .. } => self.atom(base),
            Norm::FieldSet { base, value, .. } => {
                self.atom(base);
                self.atom(value);
            }
            Norm::Invoke { callee, args } => {
                self.atom(callee);
                for a in args {
                    self.atom(a);
                }
            }
            Norm::NativeInvoke { target, args, .. } => {
                self.atom(target);
                for a in args {
                    self.atom(a);
                }
            }
            Norm::ListLit(items) => {
                for a in items {
                    self.atom(a);
                }
            }
            Norm::SetVar { target, from } | Norm::RevSet { target, from } => {
                self.target(target);
                self.atom(from);
            }
            Norm::ToRange { from, to, by } => {
                self.atom(from);
                self.atom(to);
                if let Some(b) = by {
                    self.atom(b);
                }
            }
            Norm::Limit { inner, n } => {
                self.walk(inner);
                self.atom(n);
            }
            Norm::If { cond, then, els } => {
                self.walk(cond);
                self.walk(then);
                if let Some(e) = els {
                    self.walk(e);
                }
            }
            Norm::While { cond, body } | Norm::Until { cond, body } => {
                self.walk(cond);
                if let Some(b) = body {
                    self.walk(b);
                }
            }
            Norm::Every { source, body } => {
                self.walk(source);
                if let Some(b) = body {
                    self.walk(b);
                }
            }
            Norm::Scan { subject, body } => {
                self.walk(subject);
                self.walk(body);
            }
            Norm::Decl(decls) => {
                for (target, init) in decls {
                    // Declare before resolving the initializer: the
                    // unresolved interpreter creates the cell before the
                    // initializer compiles, so `local x := x + 1` reads
                    // the *new* cell.
                    self.declare(target);
                    if let Some(e) = init {
                        self.walk(e);
                    }
                }
            }
            // Deferred bodies stay fully by-name (see module docs).
            Norm::CoCreate { .. } | Norm::Pipe(_) => {}
            Norm::Fail | Norm::Break | Norm::Next => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::normalize::normalize_program;
    use crate::parse::parse_program;

    fn resolved(src: &str) -> NProgram {
        let mut np = normalize_program(&parse_program(src).unwrap());
        resolve_program(&mut np);
        np
    }

    /// Collect every (depth, idx, name) slot reference in a node tree.
    fn slot_refs(n: &Norm, out: &mut Vec<(u16, u16, String)>) {
        let on_atom = |a: &Atom, out: &mut Vec<(u16, u16, String)>| {
            if let Atom::Slot(d, i, s) = a {
                out.push((*d, *i, s.as_str().to_string()));
            }
        };
        match n {
            Norm::Atom(a)
            | Norm::Neg(a)
            | Norm::Size(a)
            | Norm::Promote(a)
            | Norm::Activate(a)
            | Norm::Refresh(a) => on_atom(a, out),
            Norm::Product(fs) | Norm::Alt(fs) | Norm::Block(fs) => {
                fs.iter().for_each(|f| slot_refs(f, out))
            }
            Norm::Bind(_, x) | Norm::Repeat(x) | Norm::Not(x) | Norm::Suspend(x) => {
                slot_refs(x, out)
            }
            Norm::Op(_, a, b) => {
                on_atom(a, out);
                on_atom(b, out);
            }
            Norm::Invoke { callee, args } => {
                on_atom(callee, out);
                args.iter().for_each(|a| on_atom(a, out));
            }
            Norm::SetVar { target, from } | Norm::RevSet { target, from } => {
                if let VarRef::Slot(d, i, s) = target {
                    out.push((*d, *i, s.as_str().to_string()));
                }
                on_atom(from, out);
            }
            Norm::While { cond, body } | Norm::Until { cond, body } => {
                slot_refs(cond, out);
                if let Some(b) = body {
                    slot_refs(b, out);
                }
            }
            Norm::Every { source, body } => {
                slot_refs(source, out);
                if let Some(b) = body {
                    slot_refs(b, out);
                }
            }
            Norm::If { cond, then, els } => {
                slot_refs(cond, out);
                slot_refs(then, out);
                if let Some(e) = els {
                    slot_refs(e, out);
                }
            }
            Norm::Decl(ds) => {
                for (t, init) in ds {
                    if let VarRef::Slot(d, i, s) = t {
                        out.push((*d, *i, s.as_str().to_string()));
                    }
                    if let Some(e) = init {
                        slot_refs(e, out);
                    }
                }
            }
            Norm::Return(Some(e)) => slot_refs(e, out),
            _ => {}
        }
    }

    fn proc_slot_refs(p: &NProc) -> Vec<(u16, u16, String)> {
        let mut out = Vec::new();
        p.body.iter().for_each(|s| slot_refs(s, &mut out));
        out
    }

    #[test]
    fn params_become_depth0_slots() {
        let np = resolved("def f(a, b) { return a + b; }");
        let p = &np.procs[0];
        assert_eq!(p.slots, vec!["a", "b"]);
        let refs = proc_slot_refs(p);
        assert!(refs.contains(&(0, 0, "a".into())));
        assert!(refs.contains(&(0, 1, "b".into())));
    }

    #[test]
    fn locals_get_fresh_slots_after_params() {
        let np = resolved(
            "def f(n) { local acc := 0; every i := 1 to n do acc := acc + 1; return acc; }",
        );
        let p = &np.procs[0];
        // n = slot 0, acc = slot 1; `i` is an implicit local (dynamic).
        assert_eq!(p.slots, vec!["n", "acc"]);
        let refs = proc_slot_refs(p);
        assert!(refs.contains(&(0, 1, "acc".into())));
        assert!(!refs.iter().any(|(_, _, s)| s == "i"));
    }

    #[test]
    fn redeclaration_gets_a_fresh_slot() {
        let np = resolved("def f(x) { suspend x; local x := 2; suspend x; }");
        let p = &np.procs[0];
        assert_eq!(p.slots, vec!["x", "x"]);
        let refs = proc_slot_refs(p);
        // First suspend reads the parameter slot, second the local slot.
        assert!(refs.contains(&(0, 0, "x".into())));
        assert!(refs.contains(&(0, 1, "x".into())));
    }

    #[test]
    fn use_before_decl_poisons() {
        // `y` is used before its declaration: must stay fully dynamic.
        let np = resolved("def f() { suspend y; local y := 1; suspend y; }");
        let p = &np.procs[0];
        assert_eq!(p.slots, Vec::<String>::new());
        assert!(proc_slot_refs(p).is_empty());
    }

    #[test]
    fn globals_stay_by_name() {
        let np = resolved("def f(x) { return g(x); }");
        let p = &np.procs[0];
        let refs = proc_slot_refs(p);
        assert!(!refs.iter().any(|(_, _, s)| s == "g"));
    }

    #[test]
    fn deferred_bodies_stay_by_name() {
        let np = resolved("def f(x) { local c := <> (x + 1); return c; }");
        let p = &np.procs[0];
        // `x` inside the co-expression body is untouched; the outer
        // `return c` resolves.
        assert_eq!(p.slots, vec!["x", "c"]);
        let refs = proc_slot_refs(p);
        assert!(refs.contains(&(0, 1, "c".into())));
        assert!(
            !refs.contains(&(0, 0, "x".into())),
            "x only occurs inside the deferred body and must stay by-name"
        );
    }

    #[test]
    fn decl_inside_deferred_body_poisons() {
        let np = resolved("def f() { local y := 1; local c := <> { local y := 2; y }; return y; }");
        let p = &np.procs[0];
        assert!(
            !p.slots.contains(&"y".to_string()),
            "y is declared in a deferred body and must stay dynamic, slots: {:?}",
            p.slots
        );
    }

    #[test]
    fn method_field_refs_resolve_to_depth1() {
        let np = resolved(
            "class Point(x, y) { def getx() { return x; } def setx(v) { x := v; return self; } }",
        );
        let class = &np.classes[0];
        let getx = &class.methods[0];
        let refs = proc_slot_refs(getx);
        assert!(
            refs.contains(&(1, 0, "x".into())),
            "field x at depth 1: {refs:?}"
        );
        let setx = &class.methods[1];
        let refs = proc_slot_refs(setx);
        assert!(refs.contains(&(1, 0, "x".into())));
        // `self` is the last field-frame slot.
        assert!(refs.contains(&(1, 2, "self".into())));
    }

    #[test]
    fn method_local_shadows_field_after_decl() {
        let np = resolved("class C(x) { def m() { suspend x; local x := 1; suspend x; } }");
        let m = &np.classes[0].methods[0];
        let refs = proc_slot_refs(m);
        // Before the decl: the field (depth 1); after: the local (depth 0).
        assert!(refs.contains(&(1, 0, "x".into())));
        assert!(refs.contains(&(0, 0, "x".into())));
    }

    #[test]
    fn toplevel_statements_are_untouched() {
        let np = resolved("x := 1; write(x + 1);");
        for s in &np.stmts {
            let mut refs = Vec::new();
            slot_refs(s, &mut refs);
            assert!(refs.is_empty(), "top level must stay dynamic: {refs:?}");
        }
    }

    #[test]
    fn fusable_suffix_marks_trailing_monogenic_runs_only() {
        use crate::ast::BinOp;
        let gen = Norm::ToRange {
            from: Atom::Int(1),
            to: Atom::Int(3),
            by: None,
        };
        let op = Norm::Op(BinOp::Mul, Atom::Tmp(0), Atom::Int(2));
        // generator | op → the op fuses onto the generator.
        assert_eq!(fusable_suffix(&[gen.clone(), op.clone()]), 1);
        // generator | bind(op) | op → the whole trailing run fuses.
        assert_eq!(
            fusable_suffix(&[gen.clone(), Norm::Bind(0, Box::new(op.clone())), op.clone()]),
            2
        );
        // Dynamic-name operands are fusion barriers.
        let dynamic = Norm::Op(BinOp::Mul, Atom::Var("x".into()), Atom::Int(2));
        assert_eq!(fusable_suffix(&[gen.clone(), dynamic]), 0);
        // &-keywords read the scanning stack: barrier.
        let keyword = Norm::Op(BinOp::Mul, Atom::Var("&pos".into()), Atom::Int(2));
        assert_eq!(fusable_suffix(&[gen.clone(), keyword]), 0);
        // An all-monogenic product keeps one leading factor as the base.
        assert_eq!(fusable_suffix(&[op.clone(), op.clone()]), 1);
        // A generator in last position ends the (empty) run.
        assert_eq!(fusable_suffix(&[op, gen]), 0);
    }

    #[test]
    fn keywords_stay_by_name() {
        let np = resolved("def f(s) { return s ? &subject; }");
        let refs = proc_slot_refs(&np.procs[0]);
        assert!(!refs.iter().any(|(_, _, n)| n.starts_with('&')));
    }
}
