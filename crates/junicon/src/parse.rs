//! Recursive-descent parser for the Unicon subset.
//!
//! Precedence (loosest to tightest), following Icon:
//!
//! ```text
//!   :=                      (assignment, right associative)
//!   &                       (product / conjunction)
//!   |                       (alternation)
//!   to .. by
//!   < <= > >= = ~= == ~== << <<= >> >>= ===   (comparisons)
//!   ||                      (concatenation)
//!   + -
//!   * / %
//!   ^                       (exponentiation, right associative)
//!   unary  - * ! @ ^ <> |<> |> not
//!   postfix  f(args) o::m(args) x[i] o.f e\n
//! ```

use crate::ast::{BinOp, ClassDecl, Expr, ProcDecl, Program, UnOp};
use crate::lex::{lex, Kw, LexError, Spanned, Tok};
use std::fmt;

/// Parse error.
#[derive(Clone, Debug, PartialEq)]
pub struct ParseError {
    pub at: usize,
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            at: e.at,
            msg: e.msg,
        }
    }
}

/// Parse a whole embedded region: procedure declarations and top-level
/// statements.
pub fn parse_program(src: &str) -> Result<Program, ParseError> {
    let toks = lex(src)?;
    let mut p = Parser { toks, pos: 0 };
    let mut prog = Program::default();
    while !p.at_end() {
        // allow stray semicolons between declarations
        if p.eat(&Tok::Semi) {
            continue;
        }
        if p.peek_kw(Kw::Def) || p.peek_kw(Kw::Procedure) || p.peek_kw(Kw::Method) {
            prog.procs.push(p.proc_decl()?);
        } else if p.peek_kw(Kw::Class) {
            prog.classes.push(p.class_decl()?);
        } else {
            prog.stmts.push(p.statement()?);
            // statement separator
            if !p.at_end() && !p.eat(&Tok::Semi) {
                // brace-terminated statements (blocks, if, while...) need no ';'
            }
        }
    }
    Ok(prog)
}

/// Parse a single expression (for REPL / tests).
pub fn parse_expr(src: &str) -> Result<Expr, ParseError> {
    let toks = lex(src)?;
    let mut p = Parser { toks, pos: 0 };
    let e = p.expr()?;
    if !p.at_end() {
        return Err(p.error("trailing input after expression"));
    }
    Ok(e)
}

struct Parser {
    toks: Vec<Spanned>,
    pos: usize,
}

impl Parser {
    fn at_end(&self) -> bool {
        self.pos >= self.toks.len()
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|s| &s.tok)
    }

    fn peek_kw(&self, kw: Kw) -> bool {
        matches!(self.peek(), Some(Tok::Keyword(k)) if *k == kw)
    }

    fn at(&self) -> usize {
        self.toks
            .get(self.pos)
            .or_else(|| self.toks.last())
            .map(|s| s.at)
            .unwrap_or(0)
    }

    fn error(&self, msg: impl Into<String>) -> ParseError {
        ParseError {
            at: self.at(),
            msg: msg.into(),
        }
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|s| s.tok.clone());
        self.pos += 1;
        t
    }

    fn eat(&mut self, t: &Tok) -> bool {
        if self.peek() == Some(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn eat_kw(&mut self, kw: Kw) -> bool {
        if self.peek_kw(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: &Tok, what: &str) -> Result<(), ParseError> {
        if self.eat(t) {
            Ok(())
        } else {
            Err(self.error(format!("expected {what}, found {:?}", self.peek())))
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.bump() {
            Some(Tok::Ident(s)) => Ok(s),
            other => Err(self.error(format!("expected identifier, found {other:?}"))),
        }
    }

    // ---- declarations ----------------------------------------------------

    /// `def f(a,b) { body }` | `procedure f(a,b); body...; end` |
    /// `method f(a,b) { body }`
    fn proc_decl(&mut self) -> Result<ProcDecl, ParseError> {
        let braced = match self.bump() {
            Some(Tok::Keyword(Kw::Def)) | Some(Tok::Keyword(Kw::Method)) => true,
            Some(Tok::Keyword(Kw::Procedure)) => false,
            other => return Err(self.error(format!("expected def/procedure, found {other:?}"))),
        };
        let name = self.ident()?;
        self.expect(&Tok::LParen, "'('")?;
        let mut params = Vec::new();
        if !self.eat(&Tok::RParen) {
            loop {
                params.push(self.ident()?);
                if self.eat(&Tok::RParen) {
                    break;
                }
                self.expect(&Tok::Comma, "',' or ')'")?;
            }
        }
        let mut body = Vec::new();
        if braced {
            self.expect(&Tok::LBrace, "'{'")?;
            while !self.eat(&Tok::RBrace) {
                if self.eat(&Tok::Semi) {
                    continue;
                }
                body.push(self.statement()?);
            }
        } else {
            // procedure ... end form, optional leading ';'
            while !self.eat_kw(Kw::End) {
                if self.eat(&Tok::Semi) {
                    continue;
                }
                if self.at_end() {
                    return Err(self.error("missing 'end' in procedure"));
                }
                body.push(self.statement()?);
            }
        }
        Ok(ProcDecl { name, params, body })
    }

    /// `class Name(f1, f2) { method m(..) {..} ... }` or
    /// `class Name(f1, f2) ... method decls ... end`.
    fn class_decl(&mut self) -> Result<ClassDecl, ParseError> {
        self.pos += 1; // 'class'
        let name = self.ident()?;
        self.expect(&Tok::LParen, "'(' after class name")?;
        let mut fields = Vec::new();
        if !self.eat(&Tok::RParen) {
            loop {
                fields.push(self.ident()?);
                if self.eat(&Tok::RParen) {
                    break;
                }
                self.expect(&Tok::Comma, "',' or ')'")?;
            }
        }
        let braced = self.eat(&Tok::LBrace);
        let mut methods = Vec::new();
        loop {
            if braced {
                if self.eat(&Tok::RBrace) {
                    break;
                }
            } else if self.eat_kw(Kw::End) {
                break;
            }
            if self.eat(&Tok::Semi) {
                continue;
            }
            if self.peek_kw(Kw::Method) || self.peek_kw(Kw::Def) || self.peek_kw(Kw::Procedure) {
                methods.push(self.proc_decl()?);
            } else if self.at_end() {
                return Err(self.error("unterminated class declaration"));
            } else {
                return Err(self.error("expected method declaration in class body"));
            }
        }
        Ok(ClassDecl {
            name,
            fields,
            methods,
        })
    }

    // ---- statements -------------------------------------------------------

    /// Statement = declaration | suspend/return/fail/break/next | expr.
    fn statement(&mut self) -> Result<Expr, ParseError> {
        if self.eat_kw(Kw::Local)
            || self.eat_kw(Kw::Var)
            || self.eat_kw(Kw::Static)
            || self.eat_kw(Kw::Global)
        {
            let mut decls = Vec::new();
            loop {
                let name = self.ident()?;
                let init = if self.eat(&Tok::Assign) {
                    Some(self.expr()?)
                } else {
                    None
                };
                decls.push((name, init));
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
            return Ok(Expr::Decl(decls));
        }
        if self.eat_kw(Kw::Suspend) {
            return Ok(Expr::Suspend(Box::new(self.expr()?)));
        }
        if self.eat_kw(Kw::Return) {
            // `return` with no expression
            if self.at_end()
                || matches!(self.peek(), Some(Tok::Semi) | Some(Tok::RBrace))
                || self.peek_kw(Kw::End)
            {
                return Ok(Expr::Return(None));
            }
            return Ok(Expr::Return(Some(Box::new(self.expr()?))));
        }
        if self.eat_kw(Kw::Fail) {
            return Ok(Expr::Fail);
        }
        if self.eat_kw(Kw::Break) {
            return Ok(Expr::Break);
        }
        if self.eat_kw(Kw::Next) {
            return Ok(Expr::Next);
        }
        self.expr()
    }

    // ---- expressions -------------------------------------------------------

    fn expr(&mut self) -> Result<Expr, ParseError> {
        self.assign_expr()
    }

    fn assign_expr(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.product_expr()?;
        if self.eat(&Tok::Assign) {
            let rhs = self.assign_expr()?; // right associative
            return Ok(Expr::Assign(Box::new(lhs), Box::new(rhs)));
        }
        if self.eat(&Tok::RevAssign) {
            let rhs = self.assign_expr()?;
            return Ok(Expr::RevAssign(Box::new(lhs), Box::new(rhs)));
        }
        Ok(lhs)
    }

    fn product_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.alt_expr()?;
        while self.eat(&Tok::Amp) {
            let rhs = self.alt_expr()?;
            lhs = Expr::Product(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn alt_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.scan_expr()?;
        while self.eat(&Tok::Bar) {
            let rhs = self.scan_expr()?;
            lhs = Expr::Alt(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn scan_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.range_expr()?;
        while self.eat(&Tok::Question) {
            let rhs = self.range_expr()?;
            lhs = Expr::Scan(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn range_expr(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.cmp_expr()?;
        if self.eat_kw(Kw::To) {
            let hi = self.cmp_expr()?;
            let by = if self.eat_kw(Kw::By) {
                Some(Box::new(self.cmp_expr()?))
            } else {
                None
            };
            return Ok(Expr::To {
                from: Box::new(lhs),
                to: Box::new(hi),
                by,
            });
        }
        Ok(lhs)
    }

    fn cmp_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.concat_expr()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Lt) => BinOp::Lt,
                Some(Tok::Le) => BinOp::Le,
                Some(Tok::Gt) => BinOp::Gt,
                Some(Tok::Ge) => BinOp::Ge,
                Some(Tok::Eq) => BinOp::NumEq,
                Some(Tok::Ne) => BinOp::NumNe,
                Some(Tok::SEq) => BinOp::StrEq,
                Some(Tok::SNe) => BinOp::StrNe,
                Some(Tok::SLt) => BinOp::StrLt,
                Some(Tok::SLe) => BinOp::StrLe,
                Some(Tok::SGt) => BinOp::StrGt,
                Some(Tok::SGe) => BinOp::StrGe,
                Some(Tok::EqEqEq) => BinOp::Equiv,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.concat_expr()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn concat_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.add_expr()?;
        while self.eat(&Tok::BarBar) {
            let rhs = self.add_expr()?;
            lhs = Expr::Binary(BinOp::Concat, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn add_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Plus) => BinOp::Add,
                Some(Tok::Minus) => BinOp::Sub,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.mul_expr()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn mul_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.pow_expr()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Star) => BinOp::Mul,
                Some(Tok::Slash) => BinOp::Div,
                Some(Tok::Percent) => BinOp::Rem,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.pow_expr()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn pow_expr(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.unary_expr()?;
        if self.eat(&Tok::Caret) {
            let rhs = self.pow_expr()?; // right associative
            return Ok(Expr::Binary(BinOp::Pow, Box::new(lhs), Box::new(rhs)));
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> Result<Expr, ParseError> {
        let op = match self.peek() {
            Some(Tok::Minus) => Some(UnOp::Neg),
            Some(Tok::Star) => Some(UnOp::Size),
            Some(Tok::Bang) => Some(UnOp::Promote),
            Some(Tok::At) => Some(UnOp::Activate),
            Some(Tok::Caret) => Some(UnOp::Refresh),
            Some(Tok::Diamond) => Some(UnOp::FirstClass),
            Some(Tok::BarDiamond) => Some(UnOp::CoExpr),
            Some(Tok::PipeOp) => Some(UnOp::Pipe),
            Some(Tok::Dot) => Some(UnOp::Deref),
            _ => None,
        };
        if let Some(op) = op {
            self.pos += 1;
            let operand = self.unary_expr()?;
            return Ok(Expr::Unary(op, Box::new(operand)));
        }
        if self.eat_kw(Kw::Not) {
            let operand = self.unary_expr()?;
            return Ok(Expr::Not(Box::new(operand)));
        }
        if self.eat_kw(Kw::Create) {
            let operand = self.unary_expr()?;
            return Ok(Expr::Create(Box::new(operand)));
        }
        self.postfix_expr()
    }

    fn postfix_expr(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.primary()?;
        loop {
            match self.peek() {
                Some(Tok::LParen) => {
                    self.pos += 1;
                    let args = self.arg_list()?;
                    e = Expr::Call(Box::new(e), args);
                }
                Some(Tok::LBracket) => {
                    self.pos += 1;
                    let idx = self.expr()?;
                    self.expect(&Tok::RBracket, "']'")?;
                    e = Expr::Index(Box::new(e), Box::new(idx));
                }
                Some(Tok::Dot) => {
                    self.pos += 1;
                    let field = self.ident()?;
                    e = Expr::Field(Box::new(e), field);
                }
                Some(Tok::ColonColon) => {
                    self.pos += 1;
                    let method = self.ident()?;
                    self.expect(&Tok::LParen, "'(' after '::' method")?;
                    let args = self.arg_list()?;
                    e = Expr::NativeCall(Box::new(e), method, args);
                }
                Some(Tok::Backslash) => {
                    self.pos += 1;
                    let n = self.unary_expr()?;
                    e = Expr::Limit(Box::new(e), Box::new(n));
                }
                _ => break,
            }
        }
        Ok(e)
    }

    fn arg_list(&mut self) -> Result<Vec<Expr>, ParseError> {
        let mut args = Vec::new();
        if self.eat(&Tok::RParen) {
            return Ok(args);
        }
        loop {
            args.push(self.expr()?);
            if self.eat(&Tok::RParen) {
                return Ok(args);
            }
            self.expect(&Tok::Comma, "',' or ')'")?;
        }
    }

    fn primary(&mut self) -> Result<Expr, ParseError> {
        match self.bump() {
            Some(Tok::Int(v)) => Ok(Expr::Int(v)),
            Some(Tok::BigInt(s)) => Ok(Expr::BigLit(s)),
            Some(Tok::Real(v)) => Ok(Expr::Real(v)),
            Some(Tok::Str(s)) => Ok(Expr::Str(s)),
            Some(Tok::Ident(s)) => Ok(Expr::Var(s)),
            Some(Tok::Keyword(Kw::Null)) => Ok(Expr::Null),
            Some(Tok::Amp) => {
                // &null / &fail / &keyword — only inside primary position
                // after bump of '&' we need an identifier
                match self.bump() {
                    // &null and &fail are the canonical Null/Fail nodes so
                    // that printing and parsing agree.
                    Some(Tok::Ident(name)) if name == "null" => Ok(Expr::Null),
                    Some(Tok::Ident(name)) if name == "fail" => Ok(Expr::Fail),
                    Some(Tok::Ident(name)) => Ok(Expr::KeywordAmp(name)),
                    Some(Tok::Keyword(Kw::Null)) => Ok(Expr::Null),
                    Some(Tok::Keyword(Kw::Fail)) => Ok(Expr::Fail),
                    other => {
                        Err(self.error(format!("expected keyword after '&', found {other:?}")))
                    }
                }
            }
            Some(Tok::LParen) => {
                let e = self.expr()?;
                self.expect(&Tok::RParen, "')'")?;
                Ok(e)
            }
            Some(Tok::LBracket) => {
                let mut items = Vec::new();
                if !self.eat(&Tok::RBracket) {
                    loop {
                        items.push(self.expr()?);
                        if self.eat(&Tok::RBracket) {
                            break;
                        }
                        self.expect(&Tok::Comma, "',' or ']'")?;
                    }
                }
                Ok(Expr::List(items))
            }
            Some(Tok::LBrace) => {
                let mut stmts = Vec::new();
                while !self.eat(&Tok::RBrace) {
                    if self.eat(&Tok::Semi) {
                        continue;
                    }
                    stmts.push(self.statement()?);
                }
                Ok(Expr::Block(stmts))
            }
            Some(Tok::Keyword(Kw::If)) => {
                let cond = self.expr()?;
                if !self.eat_kw(Kw::Then) {
                    return Err(self.error("expected 'then'"));
                }
                let then = self.statement()?;
                let els = if self.eat_kw(Kw::Else) {
                    Some(Box::new(self.statement()?))
                } else {
                    None
                };
                Ok(Expr::If {
                    cond: Box::new(cond),
                    then: Box::new(then),
                    els,
                })
            }
            Some(Tok::Keyword(Kw::While)) => {
                let cond = self.expr()?;
                let body = if self.eat_kw(Kw::Do) {
                    Some(Box::new(self.statement()?))
                } else {
                    None
                };
                Ok(Expr::While {
                    cond: Box::new(cond),
                    body,
                })
            }
            Some(Tok::Keyword(Kw::Until)) => {
                let cond = self.expr()?;
                let body = if self.eat_kw(Kw::Do) {
                    Some(Box::new(self.statement()?))
                } else {
                    None
                };
                Ok(Expr::Until {
                    cond: Box::new(cond),
                    body,
                })
            }
            Some(Tok::Keyword(Kw::Every)) => {
                let source = self.expr()?;
                let body = if self.eat_kw(Kw::Do) {
                    Some(Box::new(self.statement()?))
                } else {
                    None
                };
                Ok(Expr::Every {
                    source: Box::new(source),
                    body,
                })
            }
            Some(Tok::Keyword(Kw::Repeat)) => {
                let body = self.statement()?;
                Ok(Expr::Repeat(Box::new(body)))
            }
            Some(Tok::Keyword(Kw::Fail)) => Ok(Expr::Fail),
            other => Err(self.error(format!("unexpected token {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Expr as E;

    #[test]
    fn precedence_product_looser_than_alternation() {
        // a & b | c  parses as  a & (b | c)
        let e = parse_expr("a & b | c").unwrap();
        match e {
            E::Product(_, rhs) => assert!(matches!(*rhs, E::Alt(_, _))),
            other => panic!("got {other:?}"),
        }
    }

    #[test]
    fn arithmetic_precedence() {
        // 1 + 2 * 3 parses as 1 + (2 * 3)
        let e = parse_expr("1 + 2 * 3").unwrap();
        match e {
            E::Binary(BinOp::Add, _, rhs) => {
                assert!(matches!(*rhs, E::Binary(BinOp::Mul, _, _)))
            }
            other => panic!("got {other:?}"),
        }
    }

    #[test]
    fn pow_is_right_associative() {
        let e = parse_expr("2 ^ 3 ^ 2").unwrap();
        match e {
            E::Binary(BinOp::Pow, _, rhs) => {
                assert!(matches!(*rhs, E::Binary(BinOp::Pow, _, _)))
            }
            other => panic!("got {other:?}"),
        }
    }

    #[test]
    fn comparisons_chain_left() {
        // 1 <= x <= 10 parses as (1 <= x) <= 10 — exactly Icon's chaining.
        let e = parse_expr("1 <= x <= 10").unwrap();
        match e {
            E::Binary(BinOp::Le, lhs, _) => {
                assert!(matches!(*lhs, E::Binary(BinOp::Le, _, _)))
            }
            other => panic!("got {other:?}"),
        }
    }

    #[test]
    fn to_by_range() {
        let e = parse_expr("1 to 10 by 2").unwrap();
        match e {
            E::To { by: Some(_), .. } => {}
            other => panic!("got {other:?}"),
        }
        assert!(matches!(
            parse_expr("i to j").unwrap(),
            E::To { by: None, .. }
        ));
    }

    #[test]
    fn assignment_right_associative() {
        let e = parse_expr("a := b := 1").unwrap();
        match e {
            E::Assign(_, rhs) => assert!(matches!(*rhs, E::Assign(_, _))),
            other => panic!("got {other:?}"),
        }
    }

    #[test]
    fn unary_concurrency_operators() {
        assert!(matches!(
            parse_expr("<> f(x)").unwrap(),
            E::Unary(UnOp::FirstClass, _)
        ));
        assert!(matches!(
            parse_expr("|<> g()").unwrap(),
            E::Unary(UnOp::CoExpr, _)
        ));
        assert!(matches!(
            parse_expr("|> h(y)").unwrap(),
            E::Unary(UnOp::Pipe, _)
        ));
        assert!(matches!(
            parse_expr("@c").unwrap(),
            E::Unary(UnOp::Activate, _)
        ));
        assert!(matches!(
            parse_expr("^c").unwrap(),
            E::Unary(UnOp::Refresh, _)
        ));
        assert!(matches!(
            parse_expr("!xs").unwrap(),
            E::Unary(UnOp::Promote, _)
        ));
        assert!(matches!(
            parse_expr("*xs").unwrap(),
            E::Unary(UnOp::Size, _)
        ));
    }

    #[test]
    fn create_is_first_class_synonym() {
        assert!(matches!(parse_expr("create f()").unwrap(), E::Create(_)));
    }

    #[test]
    fn the_paper_pipeline_expression_parses() {
        // From Fig. 3's runPipeline body.
        let e = parse_expr("hashNumber( ! (|> wordToNumber( ! splitWords(readLines()))))").unwrap();
        // shape: Call(hashNumber, [Promote(Pipe(Call(wordToNumber, ...)))])
        match e {
            E::Call(callee, args) => {
                assert_eq!(*callee, E::var("hashNumber"));
                assert!(matches!(&args[0], E::Unary(UnOp::Promote, inner)
                    if matches!(&**inner, E::Unary(UnOp::Pipe, _))));
            }
            other => panic!("got {other:?}"),
        }
    }

    #[test]
    fn native_call_disambiguation() {
        // line::split("\s+") — '::' marks native invocation.
        let e = parse_expr(r#"line::split("x")"#).unwrap();
        match e {
            E::NativeCall(obj, method, args) => {
                assert_eq!(*obj, E::var("line"));
                assert_eq!(method, "split");
                assert_eq!(args.len(), 1);
            }
            other => panic!("got {other:?}"),
        }
    }

    #[test]
    fn calls_index_field_chain() {
        let e = parse_expr("e(ex, ey).c[ei]").unwrap();
        match e {
            E::Index(base, _) => match *base {
                E::Field(call, ref name) => {
                    assert_eq!(name, "c");
                    assert!(matches!(*call, E::Call(_, _)));
                }
                other => panic!("got {other:?}"),
            },
            other => panic!("got {other:?}"),
        }
    }

    #[test]
    fn limitation_operator() {
        let e = parse_expr("f(x) \\ 3").unwrap();
        assert!(matches!(e, E::Limit(_, _)));
    }

    #[test]
    fn control_constructs() {
        assert!(matches!(
            parse_expr("if x < 1 then 2 else 3").unwrap(),
            E::If { els: Some(_), .. }
        ));
        assert!(matches!(
            parse_expr("while x do f(x)").unwrap(),
            E::While { body: Some(_), .. }
        ));
        assert!(matches!(
            parse_expr("every x := 1 to 3 do put(l, x)").unwrap(),
            E::Every { body: Some(_), .. }
        ));
        assert!(matches!(
            parse_expr("until done").unwrap(),
            E::Until { body: None, .. }
        ));
    }

    #[test]
    fn list_literal_and_block() {
        assert_eq!(
            parse_expr("[1, 2, 3]").unwrap(),
            E::List(vec![E::Int(1), E::Int(2), E::Int(3)])
        );
        assert_eq!(parse_expr("[]").unwrap(), E::List(vec![]));
        let block = parse_expr("{ a := 1; b := 2; a + b }").unwrap();
        match block {
            E::Block(stmts) => assert_eq!(stmts.len(), 3),
            other => panic!("got {other:?}"),
        }
    }

    #[test]
    fn program_with_def_and_statements() {
        let prog = parse_program(
            "def squares(n) { suspend (1 to n) * (1 to n); }\n\
             total := 0;\n\
             every total := total + squares(3);",
        )
        .unwrap();
        assert_eq!(prog.procs.len(), 1);
        assert_eq!(prog.procs[0].name, "squares");
        assert_eq!(prog.procs[0].params, vec!["n"]);
        assert_eq!(prog.stmts.len(), 2);
    }

    #[test]
    fn procedure_end_form() {
        let prog = parse_program("procedure add(a, b)\n  return a + b\nend").unwrap();
        assert_eq!(prog.procs[0].name, "add");
        assert_eq!(prog.procs[0].body.len(), 1);
        assert!(matches!(prog.procs[0].body[0], E::Return(Some(_))));
    }

    #[test]
    fn local_declarations() {
        let prog = parse_program("def f() { local a, b := 2; return b; }").unwrap();
        match &prog.procs[0].body[0] {
            E::Decl(decls) => {
                assert_eq!(decls.len(), 2);
                assert_eq!(decls[0].0, "a");
                assert!(decls[0].1.is_none());
                assert!(decls[1].1.is_some());
            }
            other => panic!("got {other:?}"),
        }
    }

    #[test]
    fn keyword_amp_literals() {
        assert_eq!(parse_expr("&null").unwrap(), E::Null);
        assert_eq!(parse_expr("&fail").unwrap(), E::Fail);
        assert_eq!(parse_expr("&pos").unwrap(), E::KeywordAmp("pos".into()));
    }

    #[test]
    fn amp_is_product_in_infix_position() {
        let e = parse_expr("x & y").unwrap();
        assert!(matches!(e, E::Product(_, _)));
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse_expr("1 +").is_err());
        assert!(parse_expr("(1").is_err());
        assert!(parse_expr("if x then").is_err());
        assert!(parse_program("def f( { }").is_err());
    }

    #[test]
    fn mapreduce_figure4_parses() {
        // The chunk generator function from Fig. 4 (adapted to the subset).
        let src = r#"
            def chunk(e) {
                local chunk;
                chunk := [];
                while put(chunk, @e) do {
                    if *chunk >= 3 then { suspend chunk; chunk := []; };
                };
                if *chunk > 0 then { return chunk; };
            }
        "#;
        let prog = parse_program(src).unwrap();
        assert_eq!(prog.procs[0].name, "chunk");
        assert_eq!(prog.procs[0].body.len(), 4); // decl, init, while, if
    }
}
