//! Normalization: flattening nested generators (Sec. V.A).
//!
//! "To make iteration explicit, we introduce an operator for bound
//! iteration, and decompose nested generators into products of such bound
//! iterators." A primary such as `e(ex,ey).c[ei]` is rewritten to
//!
//! ```text
//! (f in ⟦e⟧) & (x in ⟦ex⟧) & (y in ⟦ey⟧) & (o in !f(x,y)) & (i in ⟦ei⟧) & (j in !o.c[i])
//! ```
//!
//! After this pass every *operand* of an operation, invocation, subscript or
//! field access is an [`Atom`] — a literal, a named variable, or a compiler
//! temporary bound by an enclosing `(t in e)` — and the residual expression
//! can be evaluated by mechanisms native to the target (here, the `gde`
//! combinators; in the paper, plain Java).

use crate::ast::{BinOp, ClassDecl, Expr, ProcDecl, Program, UnOp};
use gde::Symbol;

/// An atomic operand after flattening.
#[derive(Clone, Debug, PartialEq)]
pub enum Atom {
    Null,
    Int(i64),
    /// Big integer literal (decimal digits).
    Big(String),
    Real(f64),
    Str(String),
    /// Named variable, resolved in the environment at run time (the
    /// by-name fallback; the resolve pass rewrites statically-scoped
    /// references into [`Atom::Slot`]).
    Var(String),
    /// Statically resolved variable: `(depth, slot)` into the activation
    /// frame chain, produced by the resolve pass. The [`Symbol`] is the
    /// interned name, kept for diagnostics and emitted-code comments.
    Slot(u16, u16, Symbol),
    /// Compiler temporary, bound by a `(t in e)` factor.
    Tmp(u32),
}

/// An assignment / declaration target: a by-name reference (the dynamic
/// fallback) or a statically resolved `(depth, slot)` coordinate.
#[derive(Clone, Debug, PartialEq)]
pub enum VarRef {
    Named(String),
    Slot(u16, u16, Symbol),
}

impl VarRef {
    /// The referenced variable's name (for diagnostics and tests).
    pub fn name(&self) -> &str {
        match self {
            VarRef::Named(n) => n,
            VarRef::Slot(_, _, sym) => sym.as_str(),
        }
    }
}

/// Which co-expression form a creation node represents.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CoKind {
    /// `<>e` / `create e`
    FirstClass,
    /// `|<>e`
    Shadowed,
}

/// Normalized expression: generator composition over atomic operands.
#[derive(Clone, Debug, PartialEq)]
pub enum Norm {
    /// Singleton iterator over the atom's (current) value.
    Atom(Atom),
    /// `&`-product chain: factors evaluated left to right with
    /// backtracking.
    Product(Vec<Norm>),
    /// Bound iteration `(t in e)`.
    Bind(u32, Box<Norm>),
    /// Alternation `e | e'`.
    Alt(Vec<Norm>),
    /// Binary operation over atoms (fails when an operand fails to coerce).
    Op(BinOp, Atom, Atom),
    /// Unary negation / size over an atom.
    Neg(Atom),
    Size(Atom),
    /// Promotion `!a`.
    Promote(Atom),
    /// Co-expression activation `@a`.
    Activate(Atom),
    /// Refresh `^a`.
    Refresh(Atom),
    /// Generator-function invocation: iterate the generator returned by
    /// applying the (atom-valued) callee to atom arguments.
    Invoke {
        callee: Atom,
        args: Vec<Atom>,
    },
    /// Host-native invocation `target::method(args)` — promoted to a
    /// singleton result ("plain Java methods" treatment).
    NativeInvoke {
        target: Atom,
        method: String,
        args: Vec<Atom>,
    },
    /// Subscript read `base[index]`.
    Index {
        base: Atom,
        index: Atom,
    },
    /// Subscript write `base[index] := value`.
    IndexAssign {
        base: Atom,
        index: Atom,
        value: Atom,
    },
    /// Field read `base.field`.
    FieldGet {
        base: Atom,
        field: String,
    },
    /// Field write `base.field := value`.
    FieldSet {
        base: Atom,
        field: String,
        value: Atom,
    },
    /// List construction from atoms.
    ListLit(Vec<Atom>),
    /// Assignment into a variable; yields the assigned value.
    SetVar {
        target: VarRef,
        from: Atom,
    },
    /// Reversible assignment `x <- e`: assigns and yields, then restores
    /// the previous value when resumed for backtracking.
    RevSet {
        target: VarRef,
        from: Atom,
    },
    /// `from to to [by by]` with atom bounds.
    ToRange {
        from: Atom,
        to: Atom,
        by: Option<Atom>,
    },
    /// Limitation `e \ n` with an atom bound.
    Limit {
        inner: Box<Norm>,
        n: Atom,
    },
    /// `if`/`then`/`else`.
    If {
        cond: Box<Norm>,
        then: Box<Norm>,
        els: Option<Box<Norm>>,
    },
    /// `while cond do body`.
    While {
        cond: Box<Norm>,
        body: Option<Box<Norm>>,
    },
    /// `until cond do body`.
    Until {
        cond: Box<Norm>,
        body: Option<Box<Norm>>,
    },
    /// `every source do body`.
    Every {
        source: Box<Norm>,
        body: Option<Box<Norm>>,
    },
    /// `repeat body`.
    Repeat(Box<Norm>),
    /// `not e`: succeeds (null) iff e fails.
    Not(Box<Norm>),
    /// Statement sequence / block.
    Block(Vec<Norm>),
    /// `suspend e` (procedure bodies).
    Suspend(Box<Norm>),
    /// `return [e]`.
    Return(Option<Box<Norm>>),
    /// `fail`.
    Fail,
    Break,
    Next,
    /// Local declarations with optional initializers.
    Decl(Vec<(VarRef, Option<Norm>)>),
    /// `<>e` / `|<>e` / `create e`.
    CoCreate {
        kind: CoKind,
        body: Box<Norm>,
    },
    /// `|>e` — threaded generator proxy.
    Pipe(Box<Norm>),
    /// `e1 ? e2` — string scanning.
    Scan {
        subject: Box<Norm>,
        body: Box<Norm>,
    },
}

/// A normalized procedure.
#[derive(Clone, Debug, PartialEq)]
pub struct NProc {
    pub name: String,
    pub params: Vec<String>,
    pub body: Vec<Norm>,
    /// Number of compiler temporaries the body needs.
    pub tmp_count: u32,
    /// Activation-frame slot names assigned by the resolve pass
    /// (parameters first, then one slot per statically-scoped `local`
    /// declaration, in pre-order). Empty until resolved; an empty list
    /// means every reference goes through the by-name fallback.
    pub slots: Vec<String>,
}

/// A normalized class.
#[derive(Clone, Debug, PartialEq)]
pub struct NClass {
    pub name: String,
    pub fields: Vec<String>,
    pub methods: Vec<NProc>,
}

/// A normalized program.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct NProgram {
    pub procs: Vec<NProc>,
    pub classes: Vec<NClass>,
    pub stmts: Vec<Norm>,
    pub tmp_count: u32,
}

/// Temporary allocator (one namespace per procedure body / top level).
#[derive(Default)]
struct Tmps {
    next: u32,
}

impl Tmps {
    fn fresh(&mut self) -> u32 {
        let t = self.next;
        self.next += 1;
        t
    }
}

/// Normalize a whole program.
pub fn normalize_program(p: &Program) -> NProgram {
    let procs = p.procs.iter().map(normalize_proc).collect();
    let classes = p.classes.iter().map(normalize_class).collect();
    let mut tmps = Tmps::default();
    let stmts = p.stmts.iter().map(|e| normalize(e, &mut tmps)).collect();
    NProgram {
        procs,
        classes,
        stmts,
        tmp_count: tmps.next,
    }
}

/// Normalize one class declaration.
pub fn normalize_class(c: &ClassDecl) -> NClass {
    NClass {
        name: c.name.clone(),
        fields: c.fields.clone(),
        methods: c.methods.iter().map(normalize_proc).collect(),
    }
}

/// Normalize one procedure declaration.
pub fn normalize_proc(p: &ProcDecl) -> NProc {
    let mut tmps = Tmps::default();
    let body = p.body.iter().map(|e| normalize(e, &mut tmps)).collect();
    NProc {
        name: p.name.clone(),
        params: p.params.clone(),
        body,
        tmp_count: tmps.next,
        slots: Vec::new(),
    }
}

/// Normalize a standalone expression, reporting the temporaries used.
pub fn normalize_expr(e: &Expr) -> (Norm, u32) {
    let mut tmps = Tmps::default();
    let n = normalize(e, &mut tmps);
    (n, tmps.next)
}

/// Wrap hoisted bindings around a core node (identity when nothing was
/// hoisted).
fn with_binds(mut binds: Vec<Norm>, core: Norm) -> Norm {
    if binds.is_empty() {
        core
    } else {
        binds.push(core);
        Norm::Product(binds)
    }
}

/// Normalize an expression to a generator node.
fn normalize(e: &Expr, tmps: &mut Tmps) -> Norm {
    match e {
        Expr::Null => Norm::Atom(Atom::Null),
        Expr::Int(v) => Norm::Atom(Atom::Int(*v)),
        Expr::BigLit(s) => Norm::Atom(Atom::Big(s.clone())),
        Expr::Real(v) => Norm::Atom(Atom::Real(*v)),
        Expr::Str(s) => Norm::Atom(Atom::Str(s.clone())),
        Expr::Var(name) => Norm::Atom(Atom::Var(name.clone())),
        Expr::KeywordAmp(name) => match name.as_str() {
            "null" => Norm::Atom(Atom::Null),
            "fail" => Norm::Fail,
            other => Norm::Atom(Atom::Var(format!("&{other}"))),
        },

        Expr::Product(a, b) => {
            // Flatten nested products into one chain.
            let mut factors = Vec::new();
            collect_product(a, tmps, &mut factors);
            collect_product(b, tmps, &mut factors);
            Norm::Product(factors)
        }
        Expr::Alt(a, b) => {
            let mut items = Vec::new();
            collect_alt(a, tmps, &mut items);
            collect_alt(b, tmps, &mut items);
            Norm::Alt(items)
        }

        Expr::Binary(op, a, b) => {
            let mut binds = Vec::new();
            let fa = flatten(a, &mut binds, tmps);
            let fb = flatten(b, &mut binds, tmps);
            with_binds(binds, Norm::Op(*op, fa, fb))
        }

        Expr::Unary(op, inner) => match op {
            UnOp::Pipe => Norm::Pipe(Box::new(normalize(inner, tmps))),
            UnOp::FirstClass => Norm::CoCreate {
                kind: CoKind::FirstClass,
                body: Box::new(normalize(inner, tmps)),
            },
            UnOp::CoExpr => Norm::CoCreate {
                kind: CoKind::Shadowed,
                body: Box::new(normalize(inner, tmps)),
            },
            UnOp::Deref => normalize(inner, tmps),
            _ => {
                let mut binds = Vec::new();
                let a = flatten(inner, &mut binds, tmps);
                let core = match op {
                    UnOp::Neg => Norm::Neg(a),
                    UnOp::Size => Norm::Size(a),
                    UnOp::Promote => Norm::Promote(a),
                    UnOp::Activate => Norm::Activate(a),
                    UnOp::Refresh => Norm::Refresh(a),
                    UnOp::IsNull => Norm::Op(BinOp::Equiv, a, Atom::Null),
                    UnOp::Pipe | UnOp::FirstClass | UnOp::CoExpr | UnOp::Deref => {
                        unreachable!("handled above")
                    }
                };
                with_binds(binds, core)
            }
        },

        Expr::Create(inner) => Norm::CoCreate {
            kind: CoKind::FirstClass,
            body: Box::new(normalize(inner, tmps)),
        },

        Expr::To { from, to, by } => {
            let mut binds = Vec::new();
            let f = flatten(from, &mut binds, tmps);
            let t = flatten(to, &mut binds, tmps);
            let b = by.as_ref().map(|b| flatten(b, &mut binds, tmps));
            with_binds(
                binds,
                Norm::ToRange {
                    from: f,
                    to: t,
                    by: b,
                },
            )
        }

        Expr::RevAssign(target, value) => match &**target {
            Expr::Var(name) => {
                let mut binds = Vec::new();
                let v = flatten(value, &mut binds, tmps);
                with_binds(
                    binds,
                    Norm::RevSet {
                        target: VarRef::Named(name.clone()),
                        from: v,
                    },
                )
            }
            other => {
                let _ = normalize(other, tmps);
                let _ = normalize(value, tmps);
                Norm::Fail
            }
        },
        Expr::Assign(target, value) => match &**target {
            Expr::Var(name) => {
                let mut binds = Vec::new();
                let v = flatten(value, &mut binds, tmps);
                with_binds(
                    binds,
                    Norm::SetVar {
                        target: VarRef::Named(name.clone()),
                        from: v,
                    },
                )
            }
            Expr::Index(base, idx) => {
                let mut binds = Vec::new();
                let b = flatten(base, &mut binds, tmps);
                let i = flatten(idx, &mut binds, tmps);
                let v = flatten(value, &mut binds, tmps);
                with_binds(
                    binds,
                    Norm::IndexAssign {
                        base: b,
                        index: i,
                        value: v,
                    },
                )
            }
            Expr::Field(base, field) => {
                let mut binds = Vec::new();
                let b = flatten(base, &mut binds, tmps);
                let v = flatten(value, &mut binds, tmps);
                with_binds(
                    binds,
                    Norm::FieldSet {
                        base: b,
                        field: field.clone(),
                        value: v,
                    },
                )
            }
            other => {
                // Unsupported assignment target: normalize both sides and
                // fail at runtime (goal-directed error behaviour).
                let _ = normalize(other, tmps);
                let _ = normalize(value, tmps);
                Norm::Fail
            }
        },

        Expr::Call(callee, args) => {
            let mut binds = Vec::new();
            let f = flatten(callee, &mut binds, tmps);
            let fargs = args.iter().map(|a| flatten(a, &mut binds, tmps)).collect();
            with_binds(
                binds,
                Norm::Invoke {
                    callee: f,
                    args: fargs,
                },
            )
        }
        Expr::NativeCall(target, method, args) => {
            let mut binds = Vec::new();
            let t = flatten(target, &mut binds, tmps);
            let fargs = args.iter().map(|a| flatten(a, &mut binds, tmps)).collect();
            with_binds(
                binds,
                Norm::NativeInvoke {
                    target: t,
                    method: method.clone(),
                    args: fargs,
                },
            )
        }
        Expr::Index(base, idx) => {
            let mut binds = Vec::new();
            let b = flatten(base, &mut binds, tmps);
            let i = flatten(idx, &mut binds, tmps);
            with_binds(binds, Norm::Index { base: b, index: i })
        }
        Expr::Field(base, field) => {
            let mut binds = Vec::new();
            let b = flatten(base, &mut binds, tmps);
            with_binds(
                binds,
                Norm::FieldGet {
                    base: b,
                    field: field.clone(),
                },
            )
        }
        Expr::List(items) => {
            let mut binds = Vec::new();
            let atoms = items.iter().map(|i| flatten(i, &mut binds, tmps)).collect();
            with_binds(binds, Norm::ListLit(atoms))
        }
        Expr::Scan(subject, body) => Norm::Scan {
            subject: Box::new(normalize(subject, tmps)),
            body: Box::new(normalize(body, tmps)),
        },
        Expr::Limit(inner, n) => {
            let mut binds = Vec::new();
            let bound = flatten(n, &mut binds, tmps);
            let inner = normalize(inner, tmps);
            with_binds(
                binds,
                Norm::Limit {
                    inner: Box::new(inner),
                    n: bound,
                },
            )
        }

        Expr::If { cond, then, els } => Norm::If {
            cond: Box::new(normalize(cond, tmps)),
            then: Box::new(normalize(then, tmps)),
            els: els.as_ref().map(|e| Box::new(normalize(e, tmps))),
        },
        Expr::While { cond, body } => Norm::While {
            cond: Box::new(normalize(cond, tmps)),
            body: body.as_ref().map(|b| Box::new(normalize(b, tmps))),
        },
        Expr::Until { cond, body } => Norm::Until {
            cond: Box::new(normalize(cond, tmps)),
            body: body.as_ref().map(|b| Box::new(normalize(b, tmps))),
        },
        Expr::Every { source, body } => Norm::Every {
            source: Box::new(normalize(source, tmps)),
            body: body.as_ref().map(|b| Box::new(normalize(b, tmps))),
        },
        Expr::Repeat(body) => Norm::Repeat(Box::new(normalize(body, tmps))),
        Expr::Not(inner) => Norm::Not(Box::new(normalize(inner, tmps))),
        Expr::Block(stmts) => Norm::Block(stmts.iter().map(|s| normalize(s, tmps)).collect()),
        Expr::Suspend(inner) => Norm::Suspend(Box::new(normalize(inner, tmps))),
        Expr::Return(inner) => Norm::Return(inner.as_ref().map(|e| Box::new(normalize(e, tmps)))),
        Expr::Fail => Norm::Fail,
        Expr::Break => Norm::Break,
        Expr::Next => Norm::Next,
        Expr::Decl(decls) => Norm::Decl(
            decls
                .iter()
                .map(|(n, init)| {
                    (
                        VarRef::Named(n.clone()),
                        init.as_ref().map(|e| normalize(e, tmps)),
                    )
                })
                .collect(),
        ),
    }
}

fn collect_product(e: &Expr, tmps: &mut Tmps, out: &mut Vec<Norm>) {
    match e {
        Expr::Product(a, b) => {
            collect_product(a, tmps, out);
            collect_product(b, tmps, out);
        }
        other => out.push(normalize(other, tmps)),
    }
}

fn collect_alt(e: &Expr, tmps: &mut Tmps, out: &mut Vec<Norm>) {
    match e {
        Expr::Alt(a, b) => {
            collect_alt(a, tmps, out);
            collect_alt(b, tmps, out);
        }
        other => out.push(normalize(other, tmps)),
    }
}

/// Flatten a subexpression to an atom, hoisting generators into `(t in e)`
/// bindings pushed onto `binds`.
fn flatten(e: &Expr, binds: &mut Vec<Norm>, tmps: &mut Tmps) -> Atom {
    match e {
        Expr::Null => Atom::Null,
        Expr::Int(v) => Atom::Int(*v),
        Expr::BigLit(s) => Atom::Big(s.clone()),
        Expr::Real(v) => Atom::Real(*v),
        Expr::Str(s) => Atom::Str(s.clone()),
        Expr::Var(name) => Atom::Var(name.clone()),
        Expr::KeywordAmp(name) if name == "null" => Atom::Null,
        other => {
            let t = tmps.fresh();
            let n = normalize(other, tmps);
            binds.push(Norm::Bind(t, Box::new(n)));
            Atom::Tmp(t)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::{parse_expr, parse_program};

    fn norm(src: &str) -> Norm {
        normalize_expr(&parse_expr(src).unwrap()).0
    }

    #[test]
    fn atoms_stay_atoms() {
        assert_eq!(norm("42"), Norm::Atom(Atom::Int(42)));
        assert_eq!(norm("x"), Norm::Atom(Atom::Var("x".into())));
        assert_eq!(norm("\"s\""), Norm::Atom(Atom::Str("s".into())));
        assert_eq!(norm("&null"), Norm::Atom(Atom::Null));
        assert_eq!(norm("&fail"), Norm::Fail);
    }

    #[test]
    fn simple_op_needs_no_hoisting() {
        // x + 1 — both operands atomic: a bare Op node.
        assert_eq!(
            norm("x + 1"),
            Norm::Op(BinOp::Add, Atom::Var("x".into()), Atom::Int(1))
        );
    }

    #[test]
    fn nested_generator_operand_is_hoisted() {
        // (1 to 2) * y  ⇒  (t0 in 1 to 2) & t0 * y
        let n = norm("(1 to 2) * y");
        match n {
            Norm::Product(factors) => {
                assert_eq!(factors.len(), 2);
                assert!(matches!(&factors[0], Norm::Bind(0, inner)
                    if matches!(&**inner, Norm::ToRange { .. })));
                assert_eq!(
                    factors[1],
                    Norm::Op(BinOp::Mul, Atom::Tmp(0), Atom::Var("y".into()))
                );
            }
            other => panic!("got {other:?}"),
        }
    }

    #[test]
    fn both_operands_hoisted_in_order() {
        // (1 to 2) * isprime(4 to 7) — the paper's Sec. II example:
        // (t0 in 1 to 2) & (t1 in (t2 in 4 to 7) & !isprime(t2)) & t0*t1
        let n = norm("(1 to 2) * isprime(4 to 7)");
        match n {
            Norm::Product(factors) => {
                assert_eq!(factors.len(), 3);
                assert!(matches!(&factors[0], Norm::Bind(0, _)));
                // second bind holds the flattened invocation
                match &factors[1] {
                    Norm::Bind(t, inner) => {
                        assert!(*t > 0);
                        match &**inner {
                            Norm::Product(inner_factors) => {
                                assert!(matches!(inner_factors.last(), Some(Norm::Invoke { .. })));
                            }
                            other => panic!("inner {other:?}"),
                        }
                    }
                    other => panic!("got {other:?}"),
                }
                assert!(matches!(&factors[2], Norm::Op(BinOp::Mul, _, _)));
            }
            other => panic!("got {other:?}"),
        }
    }

    #[test]
    fn primary_chain_flattens_like_the_paper() {
        // e(ex).c[ei] ⇒ binds for e's call result, then field, then index.
        let n = norm("e(ex).c[ei]");
        match n {
            Norm::Product(factors) => {
                // (t in e(ex)) & (t2 in t.c) ... & index
                assert!(factors.len() >= 2);
                assert!(matches!(factors.last(), Some(Norm::Index { .. })));
                // every operand of the final Index is an atom
                if let Some(Norm::Index { base, index }) = factors.last() {
                    assert!(matches!(base, Atom::Tmp(_)));
                    assert!(matches!(index, Atom::Var(_)));
                }
            }
            other => panic!("got {other:?}"),
        }
    }

    #[test]
    fn product_chains_flatten() {
        let n = norm("a & b & c");
        match n {
            Norm::Product(fs) => assert_eq!(fs.len(), 3),
            other => panic!("got {other:?}"),
        }
    }

    #[test]
    fn alternation_chains_flatten() {
        let n = norm("a | b | c");
        match n {
            Norm::Alt(items) => assert_eq!(items.len(), 3),
            other => panic!("got {other:?}"),
        }
    }

    #[test]
    fn assignment_normalizes_to_bind_and_set() {
        let n = norm("x := f(y)");
        match n {
            Norm::Product(fs) => {
                assert!(matches!(&fs[0], Norm::Bind(_, _)));
                assert!(matches!(&fs[1], Norm::SetVar { target, .. } if target.name() == "x"));
            }
            other => panic!("got {other:?}"),
        }
        // atom rhs needs no bind
        assert_eq!(
            norm("x := 5"),
            Norm::SetVar {
                target: VarRef::Named("x".into()),
                from: Atom::Int(5)
            }
        );
    }

    #[test]
    fn index_assignment() {
        let n = norm("xs[2] := v");
        assert_eq!(
            n,
            Norm::IndexAssign {
                base: Atom::Var("xs".into()),
                index: Atom::Int(2),
                value: Atom::Var("v".into())
            }
        );
    }

    #[test]
    fn pipe_wraps_whole_expression() {
        let n = norm("|> f(!xs)");
        match n {
            Norm::Pipe(inner) => match *inner {
                Norm::Product(ref fs) => {
                    assert!(matches!(fs.last(), Some(Norm::Invoke { .. })))
                }
                ref other => panic!("inner {other:?}"),
            },
            other => panic!("got {other:?}"),
        }
    }

    #[test]
    fn coexpression_kinds() {
        assert!(matches!(
            norm("<> (1 to 3)"),
            Norm::CoCreate {
                kind: CoKind::FirstClass,
                ..
            }
        ));
        assert!(matches!(
            norm("|<> f()"),
            Norm::CoCreate {
                kind: CoKind::Shadowed,
                ..
            }
        ));
        assert!(matches!(
            norm("create g()"),
            Norm::CoCreate {
                kind: CoKind::FirstClass,
                ..
            }
        ));
    }

    #[test]
    fn promote_of_call_hoists_then_promotes() {
        // !splitWords(line) ⇒ (t in splitWords(line)) & !t
        let n = norm("!splitWords(line)");
        match n {
            Norm::Product(fs) => {
                assert!(matches!(&fs[0], Norm::Bind(_, _)));
                assert!(matches!(&fs[1], Norm::Promote(Atom::Tmp(_))));
            }
            other => panic!("got {other:?}"),
        }
    }

    #[test]
    fn control_constructs_recurse() {
        let n = norm("if x < 1 then f(x) else 0");
        assert!(matches!(n, Norm::If { els: Some(_), .. }));
        let n = norm("while x do f(x)");
        assert!(matches!(n, Norm::While { body: Some(_), .. }));
        let n = norm("every x := 1 to 3 do put(l, x)");
        assert!(matches!(n, Norm::Every { body: Some(_), .. }));
    }

    #[test]
    fn program_normalization_counts_tmps() {
        let prog = parse_program("def f(n) { suspend (1 to n) * 2; }").unwrap();
        let np = normalize_program(&prog);
        assert_eq!(np.procs.len(), 1);
        assert!(np.procs[0].tmp_count >= 1);
        assert_eq!(np.procs[0].params, vec!["n"]);
    }

    #[test]
    fn temporaries_are_distinct() {
        let (n, count) = normalize_expr(&parse_expr("f(g(x), h(y))").unwrap());
        assert!(count >= 2);
        // Collect all bind ids; they must be unique.
        fn collect(n: &Norm, out: &mut Vec<u32>) {
            if let Norm::Product(fs) = n {
                for f in fs {
                    collect(f, out);
                }
            }
            if let Norm::Bind(t, inner) = n {
                out.push(*t);
                collect(inner, out);
            }
        }
        let mut ids = Vec::new();
        collect(&n, &mut ids);
        let mut dedup = ids.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(ids.len(), dedup.len());
    }

    #[test]
    fn native_call_flattens() {
        let n = norm("line::split(\"x\")");
        assert_eq!(
            n,
            Norm::NativeInvoke {
                target: Atom::Var("line".into()),
                method: "split".into(),
                args: vec![Atom::Str("x".into())]
            }
        );
    }

    #[test]
    fn limitation_normalizes() {
        let n = norm("f(x) \\ 3");
        match n {
            Norm::Limit {
                n: Atom::Int(3), ..
            } => {}
            other => panic!("got {other:?}"),
        }
    }
}
