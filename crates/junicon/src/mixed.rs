//! Mixed-language driver: the cascading-interpreter harness of Sec. VI.
//!
//! "The harness provides a cascading set of interpreters that at each stage
//! transforms its input and either executes it on a script engine ... or
//! chooses another interpreter to pass to for further transformation. In
//! particular the outermost instantiation of the harness is a
//! meta-interpreter that detects the embedded language and its context using
//! scoped annotations, and dispatches statements to the appropriate
//! sub-interpreter."
//!
//! Here the meta-interpreter is [`crate::annot::parse_annotated`]; the two
//! sub-interpreters are the Junicon [`crate::Interp`] (interactive path) and
//! the [`crate::emit`] transpiler (compilation path). Host-language text is
//! left untouched in both paths — the transformations "leave code foreign to
//! Unicon unchanged".

use crate::annot::{parse_annotated, AnnotError, Region, Segment};
use crate::interp::{Interp, JuniconError};
use crate::parse::ParseError;
use std::fmt;

/// Error from mixed-language processing.
#[derive(Debug)]
pub enum MixedError {
    Annot(AnnotError),
    Parse(ParseError),
}

impl fmt::Display for MixedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MixedError::Annot(e) => write!(f, "{e}"),
            MixedError::Parse(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for MixedError {}

impl From<AnnotError> for MixedError {
    fn from(e: AnnotError) -> Self {
        MixedError::Annot(e)
    }
}

impl From<ParseError> for MixedError {
    fn from(e: ParseError) -> Self {
        MixedError::Parse(e)
    }
}

impl From<JuniconError> for MixedError {
    fn from(e: JuniconError) -> Self {
        match e {
            JuniconError::Parse(p) => MixedError::Parse(p),
        }
    }
}

/// Is this region embedded Junicon? (`@<script lang="junicon">` — an
/// unqualified `script` tag defaults to junicon, matching the paper's
/// examples where the lang attribute is always explicit.)
fn is_junicon(region: &Region) -> bool {
    region.tag == "script" && region.lang().unwrap_or("junicon") == "junicon"
}

/// Extract `(lang, text)` for every embedded region, in order (nested
/// regions are flattened depth-first).
pub fn extract_regions(src: &str) -> Result<Vec<(String, String)>, MixedError> {
    let segments = parse_annotated(src)?;
    let mut out = Vec::new();
    fn walk(segs: &[Segment], out: &mut Vec<(String, String)>) {
        for seg in segs {
            if let Segment::Embedded(r) = seg {
                out.push((r.lang().unwrap_or_default().to_string(), r.text()));
                walk(&r.body, out);
            }
        }
    }
    walk(&segments, &mut out);
    Ok(out)
}

/// The interactive path: load every Junicon region of a mixed source into
/// the interpreter, in order. Host text and foreign regions are skipped
/// (they belong to the host compiler). Returns how many regions were
/// loaded.
pub fn run_mixed(src: &str, interp: &Interp) -> Result<usize, MixedError> {
    let segments = parse_annotated(src)?;
    let mut loaded = 0;
    for seg in &segments {
        if let Segment::Embedded(r) = seg {
            if is_junicon(r) {
                interp.load(&r.text())?;
                loaded += 1;
            }
        }
    }
    Ok(loaded)
}

/// The compilation path: transpile a mixed source, replacing every Junicon
/// region with a generated Rust module (`mod junicon_region_N`) and leaving
/// host text verbatim. Foreign embedded regions (`lang="java"` etc.) are
/// passed through as their raw text, i.e. they are "exempted from being
/// transformed" (Sec. IV).
pub fn transpile_mixed(src: &str) -> Result<String, MixedError> {
    let segments = parse_annotated(src)?;
    let mut out = String::new();
    let mut n = 0;
    for seg in &segments {
        match seg {
            Segment::Host(text) => out.push_str(text),
            Segment::Embedded(r) if is_junicon(r) => {
                let module = crate::emit::emit_program_source(&r.text())?;
                out.push_str(&format!(
                    "mod junicon_region_{n} {{\n{}\n}}\n",
                    indent(&module)
                ));
                n += 1;
            }
            Segment::Embedded(r) => out.push_str(&r.text()),
        }
    }
    Ok(out)
}

fn indent(text: &str) -> String {
    text.lines()
        .map(|l| {
            if l.is_empty() {
                String::new()
            } else {
                format!("    {l}")
            }
        })
        .collect::<Vec<_>>()
        .join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use gde::Value;

    #[test]
    fn extract_finds_regions_in_order() {
        let src = r#"
            fn host() {}
            @<script lang="junicon"> def f(x) { return x; } @</script>
            more host
            @<script lang="java"> native(); @</script>
        "#;
        let regions = extract_regions(src).unwrap();
        assert_eq!(regions.len(), 2);
        assert_eq!(regions[0].0, "junicon");
        assert!(regions[0].1.contains("def f"));
        assert_eq!(regions[1].0, "java");
    }

    #[test]
    fn run_mixed_loads_junicon_only() {
        let interp = Interp::new();
        let src = r#"
            // host comment
            @<script lang="junicon"> def sq(x) { return x * x; } @</script>
            @<script lang="java"> int unused = 0; @</script>
            @<script lang="junicon"> answer := sq(7); @</script>
        "#;
        let loaded = run_mixed(src, &interp).unwrap();
        assert_eq!(loaded, 2);
        assert_eq!(interp.globals().get("answer").as_int(), Some(49));
    }

    #[test]
    fn run_mixed_interop_both_directions() {
        // Host pre-sets a global, embedded code computes, host reads back —
        // the "native types can be transparently passed" property.
        let interp = Interp::new();
        interp
            .globals()
            .declare("data", Value::list(vec![Value::from(3), Value::from(4)]));
        run_mixed(
            r#"@<script lang="junicon">
                total := 0;
                every total := total + !data;
            @</script>"#,
            &interp,
        )
        .unwrap();
        assert_eq!(interp.globals().get("total").as_int(), Some(7));
    }

    #[test]
    fn transpile_replaces_regions_and_keeps_host() {
        let src =
            "// before\n@<script lang=\"junicon\"> def id(x) { return x; } @</script>\n// after\n";
        let out = transpile_mixed(src).unwrap();
        assert!(out.contains("// before"));
        assert!(out.contains("// after"));
        assert!(out.contains("mod junicon_region_0"));
        assert!(out.contains("pub fn proc_id"));
        assert!(!out.contains("@<script"));
    }

    #[test]
    fn transpile_passes_foreign_regions_through() {
        let src = "@<script lang=\"java\"> keep_this_text(); @</script>";
        let out = transpile_mixed(src).unwrap();
        assert!(out.contains("keep_this_text()"));
        assert!(!out.contains("mod junicon_region"));
    }

    #[test]
    fn annotation_errors_propagate() {
        assert!(run_mixed("@<script lang=\"junicon\"> x", &Interp::new()).is_err());
        assert!(transpile_mixed("@<script lang=\"junicon\"> 1 + @</script>").is_err());
    }
}
