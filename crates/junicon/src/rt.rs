//! Public runtime support for interpreted *and emitted* code.
//!
//! The paper's translation targets a small kernel of runtime classes
//! (`IconIterator`, `IconSequence`, `IconSuspend`, `IconFail`, … — see
//! Fig. 5). This module is that kernel's public face in the Rust
//! reproduction: the interpreter compiles onto it, and the [`crate::emit`]
//! transpiler generates Rust source that calls exactly the same
//! constructors, so interpreted and emitted programs share one semantics.

use gde::ops;
use gde::{BoxGen, Gen, GenExt, Step, Value, Var};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A shared control flag (procedure return, loop break/next).
pub type Flag = Arc<AtomicBool>;

/// A fresh, unset flag.
pub fn flag() -> Flag {
    Arc::new(AtomicBool::new(false))
}

/// A vector of fresh temporaries (the reified `x_N_r` cells of Fig. 5).
pub fn tmps(count: u32) -> Arc<Vec<Var>> {
    Arc::new((0..count).map(|_| Var::null()).collect())
}

/// A runtime operand slot: a constant or a variable cell — the reified
/// operand form every flattened expression reads through.
#[derive(Clone)]
pub enum Slot {
    Const(Value),
    Cell(Var),
    /// `&subject`: the innermost scanning environment's string.
    ScanSubject,
    /// `&pos`: the innermost scanning environment's position.
    ScanPos,
}

impl Slot {
    /// Current value of the slot.
    pub fn get(&self) -> Value {
        match self {
            Slot::Const(v) => v.clone(),
            Slot::Cell(var) => var.get(),
            Slot::ScanSubject => scan_top()
                .map(|f| Value::Str(f.subject))
                .unwrap_or(Value::Null),
            Slot::ScanPos => scan_top()
                .map(|f| Value::from(f.pos))
                .unwrap_or(Value::Null),
        }
    }

    /// Coerce the slot's value to an integer.
    pub fn to_i64(&self) -> Option<i64> {
        match gde::ops::to_num(&self.get())? {
            gde::ops::Num::Int(i) => Some(i),
            gde::ops::Num::Big(b) => b.to_i64(),
            gde::ops::Num::Real(r) => Some(r as i64),
        }
    }
}

/// Slot over a named variable in an environment.
pub fn slot_var(env: &gde::env::Env, name: &str) -> Slot {
    Slot::Cell(env.lookup_or_declare(name))
}

/// Slot over a resolved `(depth, slot)` frame coordinate — the fast path
/// emitted for statically-resolved variable references (no hashing, no
/// frame lock; see `gde::Env::slot`).
pub fn slot_at(env: &gde::env::Env, depth: usize, idx: usize) -> Slot {
    Slot::Cell(env.slot(depth, idx))
}

/// Slot over a temporary.
pub fn slot_tmp(tmps: &Arc<Vec<Var>>, i: u32) -> Slot {
    Slot::Cell(tmps[i as usize].clone())
}

/// Slot over a constant.
pub fn slot_const(v: Value) -> Slot {
    Slot::Const(v)
}

/// Field read `base.field`: objects read their field (or produce a bound
/// method); tables fall back to string-keyed lookup.
pub fn field_get(base: &Value, field: &str) -> Option<Value> {
    match base.deref() {
        Value::Object(o) => o
            .get_field(field)
            .or_else(|| o.method(field).map(Value::Proc)),
        Value::Table(_) => ops::index(&base.deref(), &Value::str(field)),
        _ => None,
    }
}

/// Field write `base.field := v`: objects must have the field declared;
/// tables insert under the string key.
pub fn field_set(base: &Value, field: &str, v: Value) -> Option<Value> {
    match base.deref() {
        Value::Object(o) => o.set_field(field, v),
        Value::Table(_) => ops::index_assign(&base.deref(), &Value::str(field), v),
        _ => None,
    }
}

// ---------------------------------------------------------------------------
// Statement sequencing
// ---------------------------------------------------------------------------

/// Sequential statement driver: runs each statement generator to failure in
/// order, passing through suspended values; aborts early when any abort
/// flag (return / break / next) is raised.
pub struct StmtSeq {
    stmts: Vec<BoxGen>,
    pos: usize,
    aborts: Vec<Flag>,
}

/// Build a [`StmtSeq`].
pub fn stmt_seq(stmts: Vec<BoxGen>, aborts: Vec<Flag>) -> StmtSeq {
    StmtSeq {
        stmts,
        pos: 0,
        aborts,
    }
}

impl StmtSeq {
    fn aborted(&self) -> bool {
        self.aborts.iter().any(|f| f.load(Ordering::Relaxed))
    }
}

impl Gen for StmtSeq {
    fn resume(&mut self) -> Step {
        while self.pos < self.stmts.len() {
            if self.aborted() {
                return Step::Fail;
            }
            match self.stmts[self.pos].resume() {
                Step::Suspend(v) => return Step::Suspend(v),
                Step::Fail => self.pos += 1,
            }
        }
        Step::Fail
    }
    fn restart(&mut self) {
        for s in &mut self.stmts {
            s.restart();
        }
        self.pos = 0;
    }
}

/// Procedure-body root: a [`StmtSeq`] whose `returned` flag is reset on
/// restart (the `IconSequence(..., IconNullIterator, IconFail)` wrapper of
/// Fig. 5).
pub struct BodyRoot {
    seq: StmtSeq,
    returned: Flag,
}

/// Build a procedure body from statement generators and the return flag.
pub fn body_root(stmts: Vec<BoxGen>, returned: Flag) -> BodyRoot {
    BodyRoot {
        seq: stmt_seq(stmts, vec![returned.clone()]),
        returned,
    }
}

impl Gen for BodyRoot {
    fn resume(&mut self) -> Step {
        self.seq.resume()
    }
    fn restart(&mut self) {
        self.returned.store(false, Ordering::Relaxed);
        self.seq.restart();
    }
}

/// Bounded, silent evaluation of an expression statement.
pub struct MuteOnce {
    inner: BoxGen,
    done: bool,
}

/// Build a [`MuteOnce`].
pub fn mute_once(inner: BoxGen) -> MuteOnce {
    MuteOnce { inner, done: false }
}

impl Gen for MuteOnce {
    fn resume(&mut self) -> Step {
        if !self.done {
            self.done = true;
            let _ = self.inner.resume();
        }
        Step::Fail
    }
    fn restart(&mut self) {
        self.inner.restart();
        self.done = false;
    }
}

/// `return [e]`: yields the first value of `e` (or null for a bare
/// `return`), then raises the returned flag.
pub struct ReturnGen {
    value: Option<BoxGen>,
    returned: Flag,
    done: bool,
}

/// Build a [`ReturnGen`].
pub fn return_gen(value: Option<BoxGen>, returned: Flag) -> ReturnGen {
    ReturnGen {
        value,
        returned,
        done: false,
    }
}

impl Gen for ReturnGen {
    fn resume(&mut self) -> Step {
        if self.done {
            return Step::Fail;
        }
        self.done = true;
        let result = match &mut self.value {
            Some(g) => g.next_value(),
            None => Some(Value::Null),
        };
        self.returned.store(true, Ordering::Relaxed);
        match result {
            Some(v) => Step::Suspend(v),
            None => Step::Fail,
        }
    }
    fn restart(&mut self) {
        if let Some(g) = &mut self.value {
            g.restart();
        }
        self.done = false;
    }
}

/// `fail` / `break` / `next`: raise a flag and fail.
pub struct FlagFail {
    flag: Flag,
}

/// Build a [`FlagFail`].
pub fn flag_fail(flag: Flag) -> FlagFail {
    FlagFail { flag }
}

impl Gen for FlagFail {
    fn resume(&mut self) -> Step {
        self.flag.store(true, Ordering::Relaxed);
        Step::Fail
    }
    fn restart(&mut self) {}
}

// ---------------------------------------------------------------------------
// Loops
// ---------------------------------------------------------------------------

/// `while`/`until`/`repeat`: re-evaluates the bounded condition before each
/// pass, runs the body to completion, yields the body's suspensions.
pub struct LoopGen {
    cond: BoxGen,
    body: Option<BoxGen>,
    until: bool,
    in_pass: bool,
    returned: Flag,
    break_f: Flag,
    next_f: Flag,
    outer_loop: Option<(Flag, Flag)>,
}

/// Build a [`LoopGen`]. `until` inverts the condition test. `outer_loop`
/// carries the flags of the enclosing loop, if any, so that an outer
/// `break`/`next` raised mid-body also aborts this loop.
pub fn loop_gen(
    cond: BoxGen,
    body: Option<BoxGen>,
    until: bool,
    returned: Flag,
    break_f: Flag,
    next_f: Flag,
    outer_loop: Option<(Flag, Flag)>,
) -> LoopGen {
    LoopGen {
        cond,
        body,
        until,
        in_pass: false,
        returned,
        break_f,
        next_f,
        outer_loop,
    }
}

impl LoopGen {
    fn outer_abort(&self) -> bool {
        if self.returned.load(Ordering::Relaxed) {
            return true;
        }
        if let Some((b, n)) = &self.outer_loop {
            return b.load(Ordering::Relaxed) || n.load(Ordering::Relaxed);
        }
        false
    }
}

impl Gen for LoopGen {
    fn resume(&mut self) -> Step {
        loop {
            if self.outer_abort() || self.break_f.load(Ordering::Relaxed) {
                return Step::Fail;
            }
            if !self.in_pass {
                self.cond.restart();
                let succeeded = self.cond.next_value().is_some();
                if succeeded == self.until {
                    return Step::Fail;
                }
                self.in_pass = true;
                self.next_f.store(false, Ordering::Relaxed);
                if let Some(b) = &mut self.body {
                    b.restart();
                }
            }
            match &mut self.body {
                Some(b) => match b.resume() {
                    Step::Suspend(v) => {
                        if self.next_f.load(Ordering::Relaxed)
                            || self.break_f.load(Ordering::Relaxed)
                        {
                            self.in_pass = false;
                            continue;
                        }
                        return Step::Suspend(v);
                    }
                    Step::Fail => self.in_pass = false,
                },
                None => self.in_pass = false,
            }
        }
    }
    fn restart(&mut self) {
        self.cond.restart();
        if let Some(b) = &mut self.body {
            b.restart();
        }
        self.in_pass = false;
        self.break_f.store(false, Ordering::Relaxed);
        self.next_f.store(false, Ordering::Relaxed);
    }
}

/// `every source do body`: one body pass per source value.
pub struct EveryGen {
    source: BoxGen,
    body: Option<BoxGen>,
    in_pass: bool,
    returned: Flag,
    break_f: Flag,
    next_f: Flag,
    outer_loop: Option<(Flag, Flag)>,
}

/// Build an [`EveryGen`].
pub fn every_gen(
    source: BoxGen,
    body: Option<BoxGen>,
    returned: Flag,
    break_f: Flag,
    next_f: Flag,
    outer_loop: Option<(Flag, Flag)>,
) -> EveryGen {
    EveryGen {
        source,
        body,
        in_pass: false,
        returned,
        break_f,
        next_f,
        outer_loop,
    }
}

impl EveryGen {
    fn outer_abort(&self) -> bool {
        if self.returned.load(Ordering::Relaxed) {
            return true;
        }
        if let Some((b, n)) = &self.outer_loop {
            return b.load(Ordering::Relaxed) || n.load(Ordering::Relaxed);
        }
        false
    }
}

impl Gen for EveryGen {
    fn resume(&mut self) -> Step {
        loop {
            if self.outer_abort() || self.break_f.load(Ordering::Relaxed) {
                return Step::Fail;
            }
            if !self.in_pass {
                match self.source.resume() {
                    Step::Suspend(_) => {
                        self.in_pass = true;
                        self.next_f.store(false, Ordering::Relaxed);
                        if let Some(b) = &mut self.body {
                            b.restart();
                        }
                    }
                    Step::Fail => return Step::Fail,
                }
            }
            match &mut self.body {
                Some(b) => match b.resume() {
                    Step::Suspend(v) => {
                        if self.next_f.load(Ordering::Relaxed)
                            || self.break_f.load(Ordering::Relaxed)
                        {
                            self.in_pass = false;
                            continue;
                        }
                        return Step::Suspend(v);
                    }
                    Step::Fail => self.in_pass = false,
                },
                None => self.in_pass = false,
            }
        }
    }
    fn restart(&mut self) {
        self.source.restart();
        if let Some(b) = &mut self.body {
            b.restart();
        }
        self.in_pass = false;
        self.break_f.store(false, Ordering::Relaxed);
        self.next_f.store(false, Ordering::Relaxed);
    }
}

/// `e \ n` where `n` is re-read from its slot at each restart.
pub struct DynLimit {
    inner: BoxGen,
    n: Slot,
    remaining: Option<i64>,
}

/// Build a [`DynLimit`].
pub fn dyn_limit(inner: BoxGen, n: Slot) -> DynLimit {
    DynLimit {
        inner,
        n,
        remaining: None,
    }
}

impl Gen for DynLimit {
    fn resume(&mut self) -> Step {
        if self.remaining.is_none() {
            self.remaining = Some(self.n.to_i64().unwrap_or(0));
        }
        let rem = self.remaining.as_mut().expect("just set");
        if *rem <= 0 {
            return Step::Fail;
        }
        match self.inner.resume() {
            Step::Suspend(v) => {
                *rem -= 1;
                Step::Suspend(v)
            }
            Step::Fail => Step::Fail,
        }
    }
    fn restart(&mut self) {
        self.inner.restart();
        self.remaining = None;
    }
}

/// Reversible assignment `x <- e` (Sec. V.B's "optionally reversible"
/// iteration): the first resume saves the cell's value, assigns, and
/// suspends the new value; being resumed again — i.e. backtracked into —
/// restores the saved value and fails, undoing the binding.
pub struct RevSetGen {
    cell: Var,
    value: Slot,
    saved: Option<Value>,
}

/// Build a [`RevSetGen`].
pub fn rev_set(cell: Var, value: Slot) -> RevSetGen {
    RevSetGen {
        cell,
        value,
        saved: None,
    }
}

impl Gen for RevSetGen {
    fn resume(&mut self) -> Step {
        match self.saved.take() {
            None => {
                let new = self.value.get();
                self.saved = Some(self.cell.replace(new.clone()));
                Step::Suspend(new)
            }
            Some(old) => {
                self.cell.set(old);
                Step::Fail
            }
        }
    }
    fn restart(&mut self) {
        // A restart without an intervening backtrack abandons the undo:
        // the last committed value stands (matching Icon, where only
        // resumption-for-backtracking reverses the assignment).
        self.saved = None;
    }
}

// ---------------------------------------------------------------------------
// String scanning (s ? expr)
// ---------------------------------------------------------------------------

use std::cell::RefCell;

/// One scanning environment: the subject string and the 1-based position
/// (`&subject` / `&pos`), `1..=len+1`.
#[derive(Clone)]
pub struct ScanFrame {
    pub subject: std::sync::Arc<str>,
    pub pos: i64,
}

thread_local! {
    // Scanning environments nest per *thread*: a pipe producer scanning a
    // string does not disturb the consumer's scan.
    static SCAN: RefCell<Vec<ScanFrame>> = const { RefCell::new(Vec::new()) };
}

/// Push a new scanning environment with `&pos = 1`.
pub fn scan_push(subject: std::sync::Arc<str>) {
    SCAN.with(|s| s.borrow_mut().push(ScanFrame { subject, pos: 1 }));
}

/// Pop the innermost scanning environment.
pub fn scan_pop() {
    SCAN.with(|s| {
        s.borrow_mut().pop();
    });
}

/// Pop and return the innermost scanning environment (for suspension
/// save/restore).
pub fn scan_pop_frame() -> Option<ScanFrame> {
    SCAN.with(|s| s.borrow_mut().pop())
}

/// Re-establish a previously saved scanning environment.
pub fn scan_push_frame(frame: ScanFrame) {
    SCAN.with(|s| s.borrow_mut().push(frame));
}

/// The innermost scanning environment, if any.
pub fn scan_top() -> Option<ScanFrame> {
    SCAN.with(|s| s.borrow().last().cloned())
}

/// Set `&pos` in the innermost environment; fails (false) when out of the
/// valid range `1..=len+1` or when no scan is active.
pub fn scan_set_pos(pos: i64) -> bool {
    SCAN.with(|s| {
        let mut st = s.borrow_mut();
        match st.last_mut() {
            Some(frame) if pos >= 1 && pos <= frame.subject.chars().count() as i64 + 1 => {
                frame.pos = pos;
                true
            }
            _ => false,
        }
    })
}

/// The scanning generator `e1 ? e2`: evaluates the subject (bounded),
/// pushes a scanning environment, yields the body's results, and pops the
/// environment when the body fails. Restart pops any active frame and
/// starts over.
pub struct ScanGen {
    subject: BoxGen,
    body: BoxGen,
    active: bool,
    /// The scanning environment while this generator is suspended: Icon
    /// restores the *outer* environment at each suspension boundary and
    /// re-establishes the inner one on resumption.
    saved: Option<ScanFrame>,
}

/// Build a [`ScanGen`].
pub fn scan_gen(subject: BoxGen, body: BoxGen) -> ScanGen {
    ScanGen {
        subject,
        body,
        active: false,
        saved: None,
    }
}

impl Gen for ScanGen {
    fn resume(&mut self) -> Step {
        if !self.active {
            self.subject.restart();
            let subj = match self.subject.next_value().and_then(|v| ops::to_str(&v)) {
                Some(s) => s,
                None => return Step::Fail,
            };
            scan_push(subj);
            self.active = true;
            self.body.restart();
        } else if let Some(frame) = self.saved.take() {
            scan_push_frame(frame);
        }
        match self.body.resume() {
            Step::Suspend(v) => {
                self.saved = scan_pop_frame();
                Step::Suspend(v)
            }
            Step::Fail => {
                scan_pop();
                self.active = false;
                Step::Fail
            }
        }
    }
    fn restart(&mut self) {
        if self.active && self.saved.is_none() {
            scan_pop();
        }
        self.saved = None;
        self.active = false;
        self.subject.restart();
        self.body.restart();
    }
}

impl Drop for ScanGen {
    fn drop(&mut self) {
        if self.active && self.saved.is_none() {
            scan_pop();
        }
    }
}

/// Built-in `::` methods available on any value (used by emitted code and
/// as the interpreter's fallback when no host native of that name is
/// registered): the string/list operations of Fig. 3.
pub fn native_method(target: &Value, method: &str, args: &[Value]) -> Option<Value> {
    match method {
        // ((String) line)::split("\\s+") — whitespace or literal separator.
        "split" => {
            let s = ops::to_str(target)?;
            let pat = args.first().and_then(|p| p.as_str().map(str::to_string));
            let parts: Vec<Value> = match pat.as_deref() {
                None | Some("\\s+") | Some(" ") => s.split_whitespace().map(Value::str).collect(),
                Some(sep) => s
                    .split(sep)
                    .filter(|p| !p.is_empty())
                    .map(Value::str)
                    .collect(),
            };
            Some(Value::list(parts))
        }
        // ((List) tasks)::add(t)
        "add" => {
            let l = target.as_list()?.clone();
            for v in args {
                l.lock().push(v.clone());
            }
            Some(target.deref())
        }
        "size" | "length" => target.size().map(Value::from),
        "toString" => ops::to_str(target).map(Value::Str),
        "charAt" => {
            // 0-based, Java style.
            let s = ops::to_str(target)?;
            let i = args.first()?.as_int()?;
            s.chars()
                .nth(usize::try_from(i).ok()?)
                .map(|c| Value::from(c.to_string()))
        }
        "apply" => {
            // functional-interface invocation of a generator function:
            // yields the first result ("exposed as method references ...
            // invoked with an explicit method name such as apply").
            match target.deref() {
                Value::Proc(p) => p.invoke(args.to_vec()).next_value(),
                _ => None,
            }
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gde::comb::{thunk, to_range, unit};

    #[test]
    fn stmt_seq_passes_suspensions_in_order() {
        let mut s = stmt_seq(
            vec![
                Box::new(unit(Value::from(1))) as BoxGen,
                Box::new(gde::comb::fail()),
                Box::new(unit(Value::from(2))),
            ],
            vec![],
        );
        assert_eq!(s.collect_values().len(), 2);
    }

    #[test]
    fn stmt_seq_aborts_on_flag() {
        let f = flag();
        let mut s = stmt_seq(
            vec![
                Box::new(unit(Value::from(1))) as BoxGen,
                Box::new(unit(Value::from(2))),
            ],
            vec![f.clone()],
        );
        assert_eq!(s.next_value().unwrap().as_int(), Some(1));
        f.store(true, Ordering::Relaxed);
        assert!(s.next_value().is_none());
    }

    #[test]
    fn return_gen_yields_then_raises() {
        let f = flag();
        let mut r = return_gen(Some(Box::new(to_range(5, 9, 1))), f.clone());
        assert_eq!(r.next_value().unwrap().as_int(), Some(5)); // first only
        assert!(f.load(Ordering::Relaxed));
        assert!(r.next_value().is_none());
    }

    #[test]
    fn mute_once_is_silent_and_single() {
        let v = Var::new(Value::from(0));
        let v2 = v.clone();
        let mut m = mute_once(Box::new(thunk(move || {
            v2.set(Value::from(7));
            Some(Value::from(7))
        })));
        assert!(m.next_value().is_none());
        assert_eq!(v.get().as_int(), Some(7));
        assert!(m.next_value().is_none());
    }

    #[test]
    fn body_root_resets_flag_on_restart() {
        let f = flag();
        let mut b = body_root(
            vec![Box::new(return_gen(Some(Box::new(unit(Value::from(3)))), f.clone())) as BoxGen],
            f.clone(),
        );
        assert_eq!(b.next_value().unwrap().as_int(), Some(3));
        assert!(b.next_value().is_none());
        b.restart();
        assert_eq!(b.next_value().unwrap().as_int(), Some(3));
    }

    #[test]
    fn dyn_limit_rereads_bound() {
        let n = Var::new(Value::from(2));
        let mut l = dyn_limit(Box::new(to_range(1, 10, 1)), Slot::Cell(n.clone()));
        assert_eq!(l.collect_values().len(), 2);
        n.set(Value::from(4));
        l.restart();
        assert_eq!(l.collect_values().len(), 4);
    }

    #[test]
    fn slots_read_cells_and_constants() {
        let env = gde::env::Env::root();
        env.declare("x", Value::from(9));
        assert_eq!(slot_var(&env, "x").get().as_int(), Some(9));
        assert_eq!(slot_const(Value::from(3)).to_i64(), Some(3));
        let t = tmps(2);
        t[1].set(Value::from(5));
        assert_eq!(slot_tmp(&t, 1).get().as_int(), Some(5));
    }
}
