//! Junicon: the mixed-language embedding toolchain.
//!
//! This crate reproduces the transformation half of the paper (Secs. IV–VI):
//! embedding goal-directed evaluation into a host language via scoped
//! annotations and generator flattening. The pipeline is:
//!
//! ```text
//!   mixed source ──[annot]──► segments (host / embedded)
//!   embedded text ──[lex]──► tokens ──[parse]──► AST
//!   AST ──[normalize]──► flattened products of bound iterators
//!   flattened IR ──[resolve]──► slot-addressed IR (static frame coordinates)
//!   slotted IR ──[interp]──► gde combinator trees (executable)
//!             └─[emit]────► Rust source targeting the gde runtime
//! ```
//!
//! * [`annot`] — the *scoped annotations* metaparser: recognizes
//!   `@<script lang="junicon"> … @</script>` regions (attributed, nestable,
//!   self-closing) while remaining oblivious to the host grammar, "based on
//!   grouping delimiters such as braces and parentheses" (Sec. IV).
//! * [`lex`]/[`ast`]/[`parse`] — a Unicon-subset front end covering the
//!   constructs the paper uses: generator expressions, `to`/`by`, `&`
//!   product, `|` alternation, goal-directed comparisons, `suspend` /
//!   `return` / `fail`, `every` / `while` / `if`, procedure declarations,
//!   and the concurrency operators `<>`, `|<>`, `|>`, `@`, `!`, `^`.
//! * [`normalize`] — the Sec. V.A rewrite: flattening nested generators in
//!   primary expressions into products of bound iterators
//!   (`e(ex).c[ei]` ⇒ `(f in ⟦e⟧) & (x in ⟦ex⟧) & (o in !f(x)) & …`).
//! * [`resolve`] — the slot-resolution pass: assigns declared variables
//!   static `(depth, slot)` frame coordinates so the executors address
//!   frames by index instead of hashing names, with a conservative
//!   poisoning analysis keeping genuinely dynamic references by-name.
//! * [`interp`] — a tree-walking evaluator over the [`gde`] runtime with
//!   suspendable procedure bodies (so `suspend` works inside loops without
//!   threads, as the paper's kernel does).
//! * [`emit`] — the migration target: emits Rust source that builds the
//!   same combinator trees (the Fig. 5 analogue), snapshot-tested.
//! * [`mixed`] — the driver tying it together for whole mixed-language
//!   files: extract, transform, interpret or splice.

pub mod annot;
pub mod ast;
pub mod emit;
pub mod fmt;
pub mod interp;
pub mod lex;
pub mod mixed;
pub mod normalize;
pub mod parse;
pub mod resolve;
pub mod rt;

pub use annot::{parse_annotated, Segment};
pub use interp::Interp;
