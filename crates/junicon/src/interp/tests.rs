//! End-to-end interpreter tests: parse → normalize → compile → drive.

use super::*;

fn ints(vals: Vec<Value>) -> Vec<i64> {
    vals.iter()
        .map(|v| v.as_int().expect("int value"))
        .collect()
}

fn eval_ints(interp: &Interp, src: &str) -> Vec<i64> {
    ints(interp.eval(src).unwrap())
}

#[test]
fn literals_and_arithmetic() {
    let i = Interp::new();
    assert_eq!(eval_ints(&i, "1 + 2 * 3"), vec![7]);
    assert_eq!(eval_ints(&i, "2 ^ 10"), vec![1024]);
    assert_eq!(eval_ints(&i, "7 % 3"), vec![1]);
    assert_eq!(i.eval("3.5 + 1").unwrap()[0].as_real(), Some(4.5));
    assert_eq!(i.eval("\"5\" + 1").unwrap()[0].as_int(), Some(6)); // coercion
}

#[test]
fn big_integer_literals_and_promotion() {
    let i = Interp::new();
    let huge = i.eval("99999999999999999999 + 1").unwrap();
    assert_eq!(huge[0].to_string(), "100000000000000000000");
    let promoted = i.eval("9223372036854775807 + 1").unwrap();
    assert_eq!(promoted[0].to_string(), "9223372036854775808");
}

#[test]
fn to_range_generates() {
    let i = Interp::new();
    assert_eq!(eval_ints(&i, "1 to 5"), vec![1, 2, 3, 4, 5]);
    assert_eq!(eval_ints(&i, "10 to 1 by -4"), vec![10, 6, 2]);
}

#[test]
fn cross_product_of_nested_generators() {
    let i = Interp::new();
    // The transformation test: both operands are generators.
    assert_eq!(eval_ints(&i, "(1 to 2) * (10 to 11)"), vec![10, 11, 20, 22]);
}

#[test]
fn paper_prime_multiples_example() {
    // (1 to 2) * isprime(4 to 7)  ⇒  5, 7, 10, 14  (Sec. II).
    let i = Interp::new();
    assert_eq!(
        eval_ints(&i, "(1 to 2) * isprime(4 to 7)"),
        vec![5, 7, 10, 14]
    );
}

#[test]
fn goal_directed_comparisons_filter() {
    let i = Interp::new();
    // comparisons produce the right operand or fail
    assert_eq!(eval_ints(&i, "4 < 5"), vec![5]);
    assert_eq!(eval_ints(&i, "5 < 4"), Vec::<i64>::new());
    // chaining: 1 <= (2 to 8 by 3) <= 7 — each surviving element produces
    // the RIGHT operand (Icon semantics), and 8 is filtered out.
    assert_eq!(eval_ints(&i, "1 <= (2 to 8 by 3) <= 7"), vec![7, 7]);
}

#[test]
fn product_and_alternation() {
    let i = Interp::new();
    assert_eq!(eval_ints(&i, "(1 | 2 | 3) & 9"), vec![9, 9, 9]);
    assert_eq!(eval_ints(&i, "1 | (5 to 6)"), vec![1, 5, 6]);
}

#[test]
fn alternation_of_function_applications() {
    // (f | g)(x) ≡ f(x) | g(x): function names are expressions.
    let i = Interp::new();
    i.load("def f(x) { return x + 1; }\ndef g(x) { return x * 10; }")
        .unwrap();
    assert_eq!(eval_ints(&i, "(f | g)(5)"), vec![6, 50]);
}

#[test]
fn assignment_is_a_generator() {
    let i = Interp::new();
    // every x := 1 to 3 assigns repeatedly; final value visible afterwards
    i.eval("every x := 1 to 3").unwrap();
    assert_eq!(eval_ints(&i, "x"), vec![3]);
}

#[test]
fn assignment_yields_assigned_values() {
    let i = Interp::new();
    assert_eq!(eval_ints(&i, "y := 5 + 2"), vec![7]);
}

#[test]
fn list_literals_indexing_and_size() {
    let i = Interp::new();
    i.eval("xs := [10, 20, 30]").unwrap();
    assert_eq!(eval_ints(&i, "xs[1]"), vec![10]);
    assert_eq!(eval_ints(&i, "xs[3]"), vec![30]);
    assert_eq!(eval_ints(&i, "*xs"), vec![3]);
    i.eval("xs[2] := 99").unwrap();
    assert_eq!(eval_ints(&i, "xs[2]"), vec![99]);
    // out of range fails
    assert_eq!(eval_ints(&i, "xs[7]"), Vec::<i64>::new());
}

#[test]
fn bang_promotes_lists_and_strings() {
    let i = Interp::new();
    i.eval("xs := [1, 2, 3]").unwrap();
    assert_eq!(eval_ints(&i, "!xs"), vec![1, 2, 3]);
    let chars = i.eval("!\"abc\"").unwrap();
    let strs: Vec<&str> = chars.iter().map(|v| v.as_str().unwrap()).collect();
    assert_eq!(strs, vec!["a", "b", "c"]);
}

#[test]
fn procedures_suspend_multiple_results() {
    let i = Interp::new();
    i.load("def firstN(n) { suspend 1 to n; }").unwrap();
    assert_eq!(eval_ints(&i, "firstN(4)"), vec![1, 2, 3, 4]);
    // generator function used inside a larger expression
    assert_eq!(eval_ints(&i, "firstN(3) * 10"), vec![10, 20, 30]);
}

#[test]
fn procedures_return_once() {
    let i = Interp::new();
    i.load("def add(a, b) { return a + b; }").unwrap();
    assert_eq!(eval_ints(&i, "add(2, 3)"), vec![5]);
}

#[test]
fn return_stops_later_statements() {
    let i = Interp::new();
    i.load("def f() { return 1; write(\"unreachable\"); }")
        .unwrap();
    assert_eq!(eval_ints(&i, "f()"), vec![1]);
    assert!(i.output().is_empty());
}

#[test]
fn fail_statement_terminates_procedure() {
    let i = Interp::new();
    i.load("def f(x) { if x < 0 then fail; return x; }")
        .unwrap();
    assert_eq!(eval_ints(&i, "f(5)"), vec![5]);
    assert_eq!(eval_ints(&i, "f(-1)"), Vec::<i64>::new());
}

#[test]
fn implicit_fail_when_falling_off_end() {
    let i = Interp::new();
    i.load("def noop() { x := 1; }").unwrap();
    assert_eq!(eval_ints(&i, "noop()"), Vec::<i64>::new());
}

#[test]
fn suspend_inside_while_loop() {
    // The Fig. 4 pattern: suspend inside a loop body, no threads.
    let i = Interp::new();
    i.load("def countdown(n) { while n > 0 do { suspend n; n := n - 1; }; }")
        .unwrap();
    assert_eq!(eval_ints(&i, "countdown(4)"), vec![4, 3, 2, 1]);
}

#[test]
fn figure4_chunk_generator() {
    // The paper's chunk(): partition a co-expression into fixed-size lists.
    let i = Interp::new();
    i.load(
        r#"
        def chunk(e) {
            local c;
            c := [];
            while put(c, @e) do {
                if *c >= 3 then { suspend c; c := []; };
            };
            if *c > 0 then { return c; };
        }
        "#,
    )
    .unwrap();
    let chunks = i.eval("chunk(<> (1 to 7))").unwrap();
    let sizes: Vec<i64> = chunks.iter().map(|c| c.size().unwrap()).collect();
    assert_eq!(sizes, vec![3, 3, 1]);
}

#[test]
fn every_loop_accumulates() {
    let i = Interp::new();
    i.eval("total := 0").unwrap();
    i.eval("every total := total + (1 to 10)").unwrap();
    assert_eq!(eval_ints(&i, "total"), vec![55]);
}

#[test]
fn every_with_body() {
    let i = Interp::new();
    i.eval("l := []").unwrap();
    i.eval("every x := 1 to 3 do put(l, x * x)").unwrap();
    assert_eq!(eval_ints(&i, "!l"), vec![1, 4, 9]);
}

#[test]
fn break_and_next_in_loops() {
    let i = Interp::new();
    i.load(
        r#"
        def collect() {
            local out, n;
            out := []; n := 0;
            while n < 100 do {
                n := n + 1;
                if n = 3 then next;
                if n > 5 then break;
                put(out, n);
            };
            return out;
        }
        "#,
    )
    .unwrap();
    let l = i.eval("collect()").unwrap();
    assert_eq!(ints(i.eval("!collect()").unwrap()), vec![1, 2, 4, 5]);
    assert_eq!(l[0].size(), Some(4));
}

#[test]
fn nested_loop_break_is_inner_only() {
    let i = Interp::new();
    i.load(
        r#"
        def grid() {
            local out;
            out := [];
            every i := 1 to 3 do {
                every j := 1 to 3 do {
                    if j > i then break;
                    put(out, i * 10 + j);
                };
            };
            return out;
        }
        "#,
    )
    .unwrap();
    assert_eq!(
        ints(i.eval("!grid()").unwrap()),
        vec![11, 21, 22, 31, 32, 33]
    );
}

#[test]
fn if_then_else_value() {
    let i = Interp::new();
    assert_eq!(eval_ints(&i, "if 1 < 2 then 10 else 20"), vec![10]);
    assert_eq!(eval_ints(&i, "if 2 < 1 then 10 else 20"), vec![20]);
    // if with no else fails when cond fails
    assert_eq!(eval_ints(&i, "if 2 < 1 then 10"), Vec::<i64>::new());
}

#[test]
fn not_expression() {
    let i = Interp::new();
    assert_eq!(i.eval("not (2 < 1)").unwrap().len(), 1);
    assert_eq!(i.eval("not (1 < 2)").unwrap().len(), 0);
}

#[test]
fn limitation_operator() {
    let i = Interp::new();
    assert_eq!(eval_ints(&i, "(1 to 100) \\ 3"), vec![1, 2, 3]);
}

#[test]
fn string_operations() {
    let i = Interp::new();
    let v = i.eval(r#""foo" || "bar""#).unwrap();
    assert_eq!(v[0].as_str(), Some("foobar"));
    assert_eq!(i.eval(r#""abc" == "abc""#).unwrap().len(), 1);
    assert_eq!(i.eval(r#""abc" == "abd""#).unwrap().len(), 0);
    assert_eq!(eval_ints(&i, r#"*"hello""#), vec![5]);
}

#[test]
fn write_captures_output() {
    let i = Interp::new();
    i.eval(r#"write("n=", 42)"#).unwrap();
    i.eval(r#"writes("a")"#).unwrap();
    i.eval(r#"writes("b")"#).unwrap();
    assert_eq!(i.output(), vec!["n=42", "ab"]);
    i.clear_output();
    assert!(i.output().is_empty());
}

#[test]
fn coexpression_create_and_activate() {
    let i = Interp::new();
    i.eval("c := <> (1 to 3)").unwrap();
    assert_eq!(eval_ints(&i, "@c"), vec![1]);
    assert_eq!(eval_ints(&i, "@c"), vec![2]);
    assert_eq!(eval_ints(&i, "@c"), vec![3]);
    assert_eq!(eval_ints(&i, "@c"), Vec::<i64>::new());
}

#[test]
fn coexpression_refresh() {
    let i = Interp::new();
    i.eval("c := <> (1 to 3)").unwrap();
    i.eval("@c").unwrap();
    i.eval("d := ^c").unwrap();
    assert_eq!(eval_ints(&i, "@d"), vec![1]); // refreshed restarts
    assert_eq!(eval_ints(&i, "@c"), vec![2]); // original continues
}

#[test]
fn coexpression_shadowing_in_interp() {
    let i = Interp::new();
    i.eval("x := 10").unwrap();
    i.eval("c := |<> (x + 1)").unwrap();
    i.eval("x := 99").unwrap();
    // the co-expression captured x = 10 at creation
    assert_eq!(eval_ints(&i, "@c"), vec![11]);
}

#[test]
fn bang_unravels_coexpression() {
    let i = Interp::new();
    i.eval("c := <> (5 to 7)").unwrap();
    assert_eq!(eval_ints(&i, "!c"), vec![5, 6, 7]);
}

#[test]
fn size_of_coexpression_counts_results() {
    let i = Interp::new();
    i.eval("c := <> (1 to 10)").unwrap();
    i.eval("@c").unwrap();
    i.eval("@c").unwrap();
    assert_eq!(eval_ints(&i, "*c"), vec![2]);
}

#[test]
fn pipe_runs_in_separate_thread() {
    let i = Interp::new();
    // |> squares the values on a producer thread; ! consumes here.
    i.load("def squares(n) { suspend (1 to n) * (1 to n); }")
        .unwrap();
    let got = eval_ints(&i, "! (|> (1 to 5))");
    assert_eq!(got, vec![1, 2, 3, 4, 5]);
}

#[test]
fn pipeline_expression_from_figure3_shape() {
    // f(!(|> g(!xs))): stage g on its own thread, f downstream.
    let i = Interp::new();
    i.load("def double(x) { return x * 2; }").unwrap();
    i.load("def inc(x) { return x + 1; }").unwrap();
    i.eval("xs := [1, 2, 3]").unwrap();
    assert_eq!(eval_ints(&i, "inc( ! (|> double(!xs)))"), vec![3, 5, 7]);
}

#[test]
fn pipe_shadows_environment() {
    let i = Interp::new();
    i.eval("n := 3").unwrap();
    i.eval("p := |> (1 to n)").unwrap();
    i.eval("n := 99").unwrap(); // must not affect the running pipe
    assert_eq!(eval_ints(&i, "!p"), vec![1, 2, 3]);
}

#[test]
fn native_split_method() {
    let i = Interp::new();
    let words = i.eval(r#""a bb  ccc"::split("\\s+")"#).unwrap();
    let items = words[0].as_list().unwrap().lock().clone();
    let w: Vec<String> = items
        .iter()
        .map(|v| v.as_str().unwrap().to_string())
        .collect();
    assert_eq!(w, vec!["a", "bb", "ccc"]);
}

#[test]
fn registered_host_native_method() {
    let i = Interp::new();
    i.register_native("wordToNumber", |_this, args| {
        let w = args.first()?.as_str()?;
        bigint::BigInt::from_str_radix(w, 36).ok().map(Value::big)
    });
    i.eval("this := &null").unwrap();
    let v = i.eval(r#"this::wordToNumber("zz")"#).unwrap();
    assert_eq!(v[0].as_int(), Some(35 * 36 + 35));
}

#[test]
fn registered_host_procedure() {
    let i = Interp::new();
    i.register_proc(ProcValue::native("triple", |args| {
        gde::ops::mul(&gde::func::arg(args, 0), &Value::from(3))
    }));
    assert_eq!(eval_ints(&i, "triple(2 to 4)"), vec![6, 9, 12]);
}

#[test]
fn host_preset_globals_are_visible() {
    let i = Interp::new();
    i.globals().declare(
        "lines",
        Value::list(vec![Value::str("x y"), Value::str("z")]),
    );
    assert_eq!(eval_ints(&i, "*lines"), vec![2]);
}

#[test]
fn recursion_works() {
    let i = Interp::new();
    i.load("def fact(n) { if n <= 1 then return 1; return n * fact(n - 1); }")
        .unwrap();
    assert_eq!(eval_ints(&i, "fact(10)"), vec![3628800]);
    // big result via promotion
    let f30 = i.eval("fact(30)").unwrap();
    assert_eq!(f30[0].to_string(), "265252859812191058636308480000000");
}

#[test]
fn mutual_recursion_via_globals() {
    let i = Interp::new();
    i.load(
        "def isEven(n) { if n = 0 then return 1; return isOdd(n - 1); }\n\
         def isOdd(n) { if n = 0 then fail; return isEven(n - 1); }",
    )
    .unwrap();
    assert_eq!(eval_ints(&i, "isEven(10)"), vec![1]);
    assert_eq!(eval_ints(&i, "isEven(7)"), Vec::<i64>::new());
}

#[test]
fn variadic_missing_args_are_null() {
    let i = Interp::new();
    i.load("def probe(a, b) { if b === &null then return 1; return 2; }")
        .unwrap();
    assert_eq!(eval_ints(&i, "probe(9)"), vec![1]);
    assert_eq!(eval_ints(&i, "probe(9, 9)"), vec![2]);
}

#[test]
fn locals_do_not_leak_between_invocations() {
    let i = Interp::new();
    i.load("def counter() { local n; n := 0; n := n + 1; return n; }")
        .unwrap();
    assert_eq!(eval_ints(&i, "counter()"), vec![1]);
    assert_eq!(eval_ints(&i, "counter()"), vec![1]); // fresh frame
}

#[test]
fn until_loop() {
    let i = Interp::new();
    i.load("def f() { local n; n := 0; until n >= 3 do n := n + 1; return n; }")
        .unwrap();
    assert_eq!(eval_ints(&i, "f()"), vec![3]);
}

#[test]
fn repeat_with_break() {
    let i = Interp::new();
    i.load("def f() { local n; n := 0; repeat { n := n + 1; if n >= 5 then break; }; return n; }")
        .unwrap();
    assert_eq!(eval_ints(&i, "f()"), vec![5]);
}

#[test]
fn blocks_as_expressions() {
    let i = Interp::new();
    assert_eq!(eval_ints(&i, "{ a := 5; b := 6; a + b }"), vec![11]);
}

#[test]
fn table_literal_workflow() {
    let i = Interp::new();
    i.eval("t := table()").unwrap();
    i.eval(r#"t["k"] := 7"#).unwrap();
    assert_eq!(eval_ints(&i, r#"t["k"]"#), vec![7]);
    assert_eq!(eval_ints(&i, "*t"), vec![1]);
    // missing key returns the default (null) — using === to observe
    assert_eq!(i.eval(r#"t["nope"] === &null"#).unwrap().len(), 1);
}

#[test]
fn eval_first_and_failure() {
    let i = Interp::new();
    assert_eq!(i.eval_first("1 to 3").unwrap().unwrap().as_int(), Some(1));
    assert!(i.eval_first("&fail").unwrap().is_none());
}

#[test]
fn parse_errors_surface() {
    let i = Interp::new();
    assert!(i.eval("1 +").is_err());
    assert!(i.load("def f( {").is_err());
}

#[test]
fn interop_gen_into_rust_iteration() {
    // The Fig. 3 for-loop pattern: iterate an embedded generator natively.
    let i = Interp::new();
    let g = i.gen("(1 to 4) * 2").unwrap();
    let doubled: Vec<i64> = gde::GenIter(g).map(|v| v.as_int().unwrap()).collect();
    assert_eq!(doubled, vec![2, 4, 6, 8]);
}

#[test]
fn map_reduce_figure4_end_to_end() {
    // The full Fig. 4 mapReduce written in Junicon, executed by the
    // interpreter: chunk a source, spawn a pipe per chunk, reduce each.
    let i = Interp::new();
    i.load(
        r#"
        def chunk(e) {
            local c;
            c := [];
            while put(c, @e) do {
                if *c >= 4 then { suspend c; c := []; };
            };
            if *c > 0 then { return c; };
        }
        def mapReduce(f, s, r, i) {
            local c, t, tasks;
            tasks := [];
            every c := chunk(s) do {
                t := |> { local x; x := i; every x := r(x, f(!c)); x };
                tasks::add(t);
            };
            suspend ! (! tasks);
        }
        def double(x) { return x * 2; }
        def add(a, b) { return a + b; }
        "#,
    )
    .unwrap();
    let sums = eval_ints(&i, "mapReduce(double, <> (1 to 10), add, 0)");
    // chunks [1..4],[5..8],[9,10] doubled and summed: 20, 52, 38
    assert_eq!(sums, vec![20, 52, 38]);
}

#[test]
fn reversible_assignment_restores_on_backtrack() {
    let i = Interp::new();
    i.eval("x := 1").unwrap();
    // The product backtracks into the reversible assignment when &fail
    // rejects every alternative, undoing the binding.
    assert_eq!(i.eval("(x <- 99) & &fail").unwrap().len(), 0);
    assert_eq!(eval_ints(&i, "x"), vec![1]);
    // Plain := does NOT restore.
    assert_eq!(i.eval("(x := 99) & &fail").unwrap().len(), 0);
    assert_eq!(eval_ints(&i, "x"), vec![99]);
}

#[test]
fn reversible_assignment_commits_on_success() {
    let i = Interp::new();
    i.eval("x := 1").unwrap();
    // Taking only the first result leaves the assignment committed
    // (no backtrack resumed it).
    assert_eq!(
        i.eval_first("(x <- 42) & x").unwrap().unwrap().as_int(),
        Some(42)
    );
    assert_eq!(eval_ints(&i, "x"), vec![42]);
}

#[test]
fn reversible_assignment_searches_alternatives() {
    // The classic use: try bindings until one satisfies a condition.
    let i = Interp::new();
    i.eval("x := 0").unwrap();
    let hits = eval_ints(&i, "(x <- (3 | 8 | 4 | 9)) & (x > 7) & x");
    assert_eq!(hits, vec![8, 9]);
    // Driven to exhaustion, the final backtrack restored the original.
    assert_eq!(eval_ints(&i, "x"), vec![0]);
}
