//! Builtin procedures and native-method fallbacks.
//!
//! These are the subset of Icon's built-in functions the paper's examples
//! rely on (`write`, `put`, list and table construction, `sqrt`, the
//! `isprime` filter of the Sec. II example) plus the `::` method fallbacks
//! used in Fig. 3 (`split`, `add`).

use super::Interp;
use bigint::BigInt;
use gde::func::arg;
use gde::ops;
use gde::{ProcValue, Value};
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// Install the builtin procedures into the interpreter's globals.
pub(super) fn install(interp: &Interp) {
    let shared = Arc::clone(interp.shared());

    // write(x1, x2, ...): concatenates string images, appends a newline,
    // captures (and optionally echoes); returns its last argument.
    {
        let shared = Arc::clone(&shared);
        interp.register_proc(ProcValue::native("write", move |args| {
            let text: String = args.iter().map(image_for_write).collect();
            if shared.echo.load(Ordering::Relaxed) {
                println!("{text}");
            }
            let mut line = std::mem::take(&mut *shared.pending.lock());
            line.push_str(&text);
            shared.output.lock().push(line);
            Some(args.last().cloned().unwrap_or(Value::Null))
        }));
    }
    // writes(x1, ...): like write but no newline (appends to last line).
    {
        let shared = Arc::clone(&shared);
        interp.register_proc(ProcValue::native("writes", move |args| {
            let text: String = args.iter().map(image_for_write).collect();
            if shared.echo.load(Ordering::Relaxed) {
                print!("{text}");
            }
            shared.pending.lock().push_str(&text);
            Some(args.last().cloned().unwrap_or(Value::Null))
        }));
    }

    // put(L, x1, ...): append to a list; returns the list.
    interp.register_proc(ProcValue::native("put", |args| {
        let list = arg(args, 0);
        let l = list.as_list()?.clone();
        for v in &args[1..] {
            l.lock().push(v.clone());
        }
        Some(list)
    }));
    // push(L, x): prepend.
    interp.register_proc(ProcValue::native("push", |args| {
        let list = arg(args, 0);
        let l = list.as_list()?.clone();
        for v in &args[1..] {
            l.lock().insert(0, v.clone());
        }
        Some(list)
    }));
    // get(L) / pop(L): remove and return the first element; fails if empty.
    for name in ["get", "pop"] {
        interp.register_proc(ProcValue::native(name, |args| {
            let list = arg(args, 0);
            let l = list.as_list()?.clone();
            let mut l = l.lock();
            if l.is_empty() {
                None
            } else {
                Some(l.remove(0))
            }
        }));
    }
    // pull(L): remove and return the last element.
    interp.register_proc(ProcValue::native("pull", |args| {
        let list = arg(args, 0);
        let l = list.as_list()?.clone();
        let v = l.lock().pop();
        v
    }));

    // list(n, x): a list of n copies of x (default null); list() is empty.
    interp.register_proc(ProcValue::native("list", |args| match arg(args, 0) {
        Value::Null => Some(Value::list(Vec::new())),
        n => {
            let n = n.as_int()?;
            let init = arg(args, 1);
            Some(Value::list(vec![init; n.max(0) as usize]))
        }
    }));
    // table(): a fresh table (default value via arg 0).
    interp.register_proc(ProcValue::native("table", |args| {
        let t = Value::table();
        if let (Value::Table(h), d) = (&t, arg(args, 0)) {
            h.lock().default = d;
        }
        Some(t)
    }));
    // insert(T, k, v): insert into a table; returns the table.
    interp.register_proc(ProcValue::native("insert", |args| {
        let t = arg(args, 0);
        ops::index_assign(&t, &arg(args, 1), arg(args, 2))?;
        Some(t)
    }));
    // member(T, k): succeeds producing k if present.
    interp.register_proc(ProcValue::native("member", |args| {
        let t = arg(args, 0);
        let k = arg(args, 1);
        match t.deref() {
            Value::Table(h) => {
                let key = k.as_key()?;
                if h.lock().entries.contains_key(&key) {
                    Some(k)
                } else {
                    None
                }
            }
            _ => None,
        }
    }));

    // image(x): the string image; type(x): the type name.
    interp.register_proc(ProcValue::native("image", |args| {
        Some(Value::from(format!("{:?}", arg(args, 0))))
    }));
    interp.register_proc(ProcValue::native("type", |args| {
        Some(Value::str(arg(args, 0).type_name()))
    }));

    // numeric coercions: integer(x), real(x), string(x), numeric(x).
    interp.register_proc(ProcValue::native("integer", |args| {
        match ops::to_num(&arg(args, 0))? {
            ops::Num::Int(i) => Some(Value::Int(i)),
            ops::Num::Big(b) => Some(Value::big(b)),
            ops::Num::Real(r) => Some(Value::Int(r as i64)),
        }
    }));
    interp.register_proc(ProcValue::native("real", |args| {
        match ops::to_num(&arg(args, 0))? {
            ops::Num::Int(i) => Some(Value::Real(i as f64)),
            ops::Num::Big(b) => Some(Value::Real(b.to_f64())),
            ops::Num::Real(r) => Some(Value::Real(r)),
        }
    }));
    interp.register_proc(ProcValue::native("string", |args| {
        ops::to_str(&arg(args, 0)).map(Value::Str)
    }));
    interp.register_proc(ProcValue::native("numeric", |args| {
        let v = arg(args, 0);
        ops::to_num(&v).map(|n| match n {
            ops::Num::Int(i) => Value::Int(i),
            ops::Num::Big(b) => Value::big(b),
            ops::Num::Real(r) => Value::Real(r),
        })
    }));

    // math: sqrt (real), isqrt (integer floor), abs, min, max.
    interp.register_proc(ProcValue::native("sqrt", |args| {
        match ops::to_num(&arg(args, 0))? {
            ops::Num::Int(i) if i >= 0 => Some(Value::Real((i as f64).sqrt())),
            ops::Num::Big(b) if !b.is_negative() => Some(Value::Real(b.to_f64().sqrt())),
            ops::Num::Real(r) if r >= 0.0 => Some(Value::Real(r.sqrt())),
            _ => None,
        }
    }));
    interp.register_proc(ProcValue::native("isqrt", |args| {
        match ops::to_num(&arg(args, 0))? {
            ops::Num::Int(i) if i >= 0 => Some(Value::big(BigInt::from(i).sqrt())),
            ops::Num::Big(b) if !b.is_negative() => Some(Value::big(b.sqrt())),
            _ => None,
        }
    }));
    interp.register_proc(ProcValue::native("abs", |args| {
        match ops::to_num(&arg(args, 0))? {
            ops::Num::Int(i) => Some(Value::Int(i.abs())),
            ops::Num::Big(b) => Some(Value::big(b.abs())),
            ops::Num::Real(r) => Some(Value::Real(r.abs())),
        }
    }));
    interp.register_proc(ProcValue::native("min", |args| {
        args.iter()
            .cloned()
            .reduce(|a, b| if ops::le(&a, &b).is_some() { a } else { b })
    }));
    interp.register_proc(ProcValue::native("max", |args| {
        args.iter()
            .cloned()
            .reduce(|a, b| if ops::ge(&a, &b).is_some() { a } else { b })
    }));

    // isprime(n): produce n if it is a (probable) prime, else fail —
    // the filter from the paper's opening example.
    interp.register_proc(ProcValue::native("isprime", |args| {
        let v = arg(args, 0);
        let prime = match ops::to_num(&v)? {
            ops::Num::Int(i) if i >= 2 => BigInt::from(i).is_probable_prime(),
            ops::Num::Big(b) => b.is_probable_prime(),
            _ => false,
        };
        if prime {
            Some(v)
        } else {
            None
        }
    }));
    // nextprime(n): the next probable prime above n.
    interp.register_proc(ProcValue::native("nextprime", |args| {
        match ops::to_num(&arg(args, 0))? {
            ops::Num::Int(i) => Some(Value::big(BigInt::from(i).next_probable_prime())),
            ops::Num::Big(b) => Some(Value::big(b.next_probable_prime())),
            _ => None,
        }
    }));

    // copy(x): deep copy (structure isolation).
    interp.register_proc(ProcValue::native("copy", |args| {
        Some(arg(args, 0).deep_copy())
    }));

    install_strings(interp);
    install_scanning(interp);
    install_sequences(interp);
}

/// Icon's string-processing functions — "search has particular application
/// in string processing, the forte of Icon and Unicon" (Sec. II.A). The
/// position-returning functions are *generators* (find/upto produce every
/// position), which is what makes them compose with goal-directed search.
fn install_strings(interp: &Interp) {
    // find(s1, s2): generate each 1-based position where s1 occurs in s2.
    // find(s1) inside `subject ? expr` searches the scan subject from &pos.
    interp.register_proc(ProcValue::new("find", |args| {
        let needle = ops::to_str(&arg(&args, 0));
        let (hay, from) = scanning_subject(&args, 1);
        let positions: Vec<Value> = match (needle, hay) {
            (Some(n), Some(h)) if !n.is_empty() => {
                let h_chars: Vec<char> = h.chars().collect();
                let n_chars: Vec<char> = n.chars().collect();
                (0..=h_chars.len().saturating_sub(n_chars.len()))
                    .filter(|&i| i as i64 + 1 >= from)
                    .filter(|&i| h_chars[i..i + n_chars.len()] == n_chars[..])
                    .map(|i| Value::from(i as i64 + 1))
                    .collect()
            }
            _ => Vec::new(),
        };
        Box::new(gde::comb::values(positions))
    }));
    // upto(c, s): generate each position in s holding a char of c.
    // upto(c) searches the scan subject from &pos.
    interp.register_proc(ProcValue::new("upto", |args| {
        let cset = ops::to_str(&arg(&args, 0));
        let (subject, from) = scanning_subject(&args, 1);
        let positions: Vec<Value> = match (cset, subject) {
            (Some(c), Some(s)) => s
                .chars()
                .enumerate()
                .filter(|(i, _)| *i as i64 + 1 >= from)
                .filter(|(_, ch)| c.contains(*ch))
                .map(|(i, _)| Value::from(i as i64 + 1))
                .collect(),
            _ => Vec::new(),
        };
        Box::new(gde::comb::values(positions))
    }));
    // many(c, s): position after the longest run of chars in c starting at
    // the beginning (or at &pos in scanning form); fails on an empty run.
    interp.register_proc(ProcValue::native("many", |args| {
        let c = ops::to_str(&arg(args, 0))?;
        let (s, from) = scanning_subject(args, 1);
        let s = s?;
        let run = s
            .chars()
            .skip(from as usize - 1)
            .take_while(|ch| c.contains(*ch))
            .count();
        if run == 0 {
            None
        } else {
            Some(Value::from(from + run as i64))
        }
    }));
    // match(s1, s2): position after s1 if s2 continues with it (at the
    // start, or at &pos in scanning form), else fail.
    interp.register_proc(ProcValue::native("match", |args| {
        let prefix = ops::to_str(&arg(args, 0))?;
        let (s, from) = scanning_subject(args, 1);
        let s = s?;
        let rest: String = s.chars().skip(from as usize - 1).collect();
        if rest.starts_with(prefix.as_ref()) {
            Some(Value::from(from + prefix.chars().count() as i64))
        } else {
            None
        }
    }));
    // repl(s, n): s repeated n times.
    interp.register_proc(ProcValue::native("repl", |args| {
        let s = ops::to_str(&arg(args, 0))?;
        let n = arg(args, 1).as_int()?;
        Some(Value::from(s.repeat(n.max(0) as usize)))
    }));
    // reverse(s).
    interp.register_proc(ProcValue::native("reverse", |args| {
        let s = ops::to_str(&arg(args, 0))?;
        Some(Value::from(s.chars().rev().collect::<String>()))
    }));
    // trim(s): strip trailing spaces (Icon's default).
    interp.register_proc(ProcValue::native("trim", |args| {
        let s = ops::to_str(&arg(args, 0))?;
        Some(Value::str(s.trim_end_matches(' ')))
    }));
    // left(s, n, pad) / right / center: field adjustment.
    fn pad_char(args: &[Value]) -> char {
        args.get(2)
            .and_then(|p| p.as_str())
            .and_then(|p| p.chars().next())
            .unwrap_or(' ')
    }
    interp.register_proc(ProcValue::native("left", |args| {
        let s = ops::to_str(&arg(args, 0))?;
        let n = arg(args, 1).as_int()?.max(0) as usize;
        let chars: Vec<char> = s.chars().collect();
        let mut out: String = chars.iter().take(n).collect();
        while out.chars().count() < n {
            out.push(pad_char(args));
        }
        Some(Value::from(out))
    }));
    interp.register_proc(ProcValue::native("right", |args| {
        let s = ops::to_str(&arg(args, 0))?;
        let n = arg(args, 1).as_int()?.max(0) as usize;
        let chars: Vec<char> = s.chars().collect();
        let taken: String = chars
            .iter()
            .rev()
            .take(n)
            .collect::<Vec<_>>()
            .into_iter()
            .rev()
            .collect();
        let mut out = String::new();
        while out.chars().count() + taken.chars().count() < n {
            out.push(pad_char(args));
        }
        out.push_str(&taken);
        Some(Value::from(out))
    }));
    interp.register_proc(ProcValue::native("center", |args| {
        let s = ops::to_str(&arg(args, 0))?;
        let n = arg(args, 1).as_int()?.max(0) as usize;
        let len = s.chars().count();
        if len >= n {
            let skip = (len - n) / 2;
            return Some(Value::from(
                s.chars().skip(skip).take(n).collect::<String>(),
            ));
        }
        let pad = pad_char(args);
        let total = n - len;
        let left_pad = total / 2;
        let mut out: String = std::iter::repeat_n(pad, left_pad).collect();
        out.push_str(&s);
        while out.chars().count() < n {
            out.push(pad);
        }
        Some(Value::from(out))
    }));
    // map(s, from, to): character mapping.
    interp.register_proc(ProcValue::native("map", |args| {
        let s = ops::to_str(&arg(args, 0))?;
        let from: Vec<char> = ops::to_str(&arg(args, 1))?.chars().collect();
        let to: Vec<char> = ops::to_str(&arg(args, 2))?.chars().collect();
        if from.len() != to.len() {
            return None;
        }
        Some(Value::from(
            s.chars()
                .map(|c| match from.iter().position(|f| *f == c) {
                    Some(i) => to[i],
                    None => c,
                })
                .collect::<String>(),
        ))
    }));
    // ord(s) / char(n).
    interp.register_proc(ProcValue::native("ord", |args| {
        let s = ops::to_str(&arg(args, 0))?;
        let mut chars = s.chars();
        let c = chars.next()?;
        if chars.next().is_some() {
            return None; // ord wants a 1-char string
        }
        Some(Value::from(c as i64))
    }));
    interp.register_proc(ProcValue::native("char", |args| {
        let n = arg(args, 0).as_int()?;
        let c = char::from_u32(u32::try_from(n).ok()?)?;
        Some(Value::from(c.to_string()))
    }));
}

/// The subject for a position-searching builtin: the explicit argument at
/// `idx` if supplied, else the innermost scanning environment (whose `&pos`
/// becomes the search origin).
fn scanning_subject(args: &[Value], idx: usize) -> (Option<std::sync::Arc<str>>, i64) {
    match args.get(idx) {
        Some(v) if !v.is_null() => (ops::to_str(v), 1),
        _ => match crate::rt::scan_top() {
            Some(frame) => (Some(frame.subject), frame.pos),
            None => (None, 1),
        },
    }
}

/// String-scanning primitives: `tab`, `move`, `pos`, `subject` — only
/// meaningful inside `s ? expr`.
fn install_scanning(interp: &Interp) {
    // tab(i): set &pos to i and return the substring between the old and
    // new positions; fails outside a scan or out of range.
    interp.register_proc(ProcValue::native("tab", |args| {
        let target = match ops::to_num(&arg(args, 0))? {
            ops::Num::Int(i) => i,
            ops::Num::Big(b) => b.to_i64()?,
            ops::Num::Real(r) => r as i64,
        };
        let frame = crate::rt::scan_top()?;
        let len = frame.subject.chars().count() as i64;
        // Icon's nonpositive position spec: 0 is the end, -1 one before it.
        let target = if target <= 0 {
            len + 1 + target
        } else {
            target
        };
        if !crate::rt::scan_set_pos(target) {
            return None;
        }
        let (lo, hi) = if frame.pos <= target {
            (frame.pos, target)
        } else {
            (target, frame.pos)
        };
        let piece: String = frame
            .subject
            .chars()
            .skip(lo as usize - 1)
            .take((hi - lo) as usize)
            .collect();
        Some(Value::from(piece))
    }));
    // move(n): tab(&pos + n).
    interp.register_proc(ProcValue::native("move", |args| {
        let n = arg(args, 0).as_int()?;
        let frame = crate::rt::scan_top()?;
        let target = frame.pos + n;
        if !crate::rt::scan_set_pos(target) {
            return None;
        }
        let (lo, hi) = if frame.pos <= target {
            (frame.pos, target)
        } else {
            (target, frame.pos)
        };
        let piece: String = frame
            .subject
            .chars()
            .skip(lo as usize - 1)
            .take((hi - lo) as usize)
            .collect();
        Some(Value::from(piece))
    }));
    // pos(): the current &pos; subject(): the current &subject.
    interp.register_proc(ProcValue::native("pos", |_args| {
        crate::rt::scan_top().map(|f| Value::from(f.pos))
    }));
    interp.register_proc(ProcValue::native("subject", |_args| {
        crate::rt::scan_top().map(|f| Value::Str(f.subject))
    }));
}

/// Sequence helpers.
fn install_sequences(interp: &Interp) {
    // seq(i, step): the unbounded arithmetic sequence i, i+step, ...
    // (compose with limitation: seq(1) \ 10).
    interp.register_proc(ProcValue::new("seq", |args| {
        let start = arg(&args, 0).as_int().unwrap_or(1);
        let step = arg(&args, 1).as_int().unwrap_or(1);
        if step == 0 {
            return Box::new(gde::comb::fail()) as gde::BoxGen;
        }
        Box::new(gde::comb::to_range(
            start,
            if step > 0 { i64::MAX } else { i64::MIN },
            step,
        ))
    }));
    // sort(L): a sorted copy of a list of scalars.
    interp.register_proc(ProcValue::native("sort", |args| {
        let list = arg(args, 0);
        let items = list.as_list()?.lock().clone();
        let mut sorted = items;
        sorted.sort_by(|a, b| {
            gde::ops::num_cmp(a, b)
                .or_else(|| {
                    let (x, y) = (gde::ops::to_str(a)?, gde::ops::to_str(b)?);
                    Some(x.cmp(&y))
                })
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        Some(Value::list(sorted))
    }));
    // key(T): generate the keys of a table.
    interp.register_proc(ProcValue::new("key", |args| {
        let keys: Vec<Value> = match arg(&args, 0).deref() {
            Value::Table(t) => t
                .lock()
                .entries
                .keys()
                .map(|k| match k {
                    gde::Key::Null => Value::Null,
                    gde::Key::Int(i) => Value::from(*i),
                    gde::Key::RealBits(b) => Value::Real(f64::from_bits(*b)),
                    gde::Key::Str(s) => Value::Str(s.clone()),
                    gde::Key::Sym(s) => Value::Sym(*s),
                })
                .collect(),
            _ => Vec::new(),
        };
        Box::new(gde::comb::values(keys))
    }));
}

fn image_for_write(v: &Value) -> String {
    let v = v.deref();
    match v.as_str() {
        Some(s) => s.to_string(),
        None => format!("{v:?}"),
    }
}
