//! Pretty-printing of the Unicon-subset AST.
//!
//! Produces fully parenthesized, re-parseable source — used by the REPL for
//! echoing, by diagnostics, and by the parser round-trip property tests
//! (`pretty(parse(pretty(e))) == pretty(e)`).

use crate::ast::{BinOp, Expr, ProcDecl, UnOp};

/// Render an expression as re-parseable source text (fully parenthesized).
pub fn pretty(e: &Expr) -> String {
    let mut out = String::new();
    write_expr(e, &mut out);
    out
}

/// Render a procedure declaration.
pub fn pretty_proc(p: &ProcDecl) -> String {
    let mut out = format!("def {}({}) {{ ", p.name, p.params.join(", "));
    for stmt in &p.body {
        write_expr(stmt, &mut out);
        out.push_str("; ");
    }
    out.push('}');
    out
}

fn bin_op_str(op: BinOp) -> &'static str {
    match op {
        BinOp::Add => "+",
        BinOp::Sub => "-",
        BinOp::Mul => "*",
        BinOp::Div => "/",
        BinOp::Rem => "%",
        BinOp::Pow => "^",
        BinOp::Lt => "<",
        BinOp::Le => "<=",
        BinOp::Gt => ">",
        BinOp::Ge => ">=",
        BinOp::NumEq => "=",
        BinOp::NumNe => "~=",
        BinOp::Concat => "||",
        BinOp::StrLt => "<<",
        BinOp::StrLe => "<<=",
        BinOp::StrGt => ">>",
        BinOp::StrGe => ">>=",
        BinOp::StrEq => "==",
        BinOp::StrNe => "~==",
        BinOp::Equiv => "===",
    }
}

fn un_op_str(op: UnOp) -> &'static str {
    match op {
        UnOp::Neg => "-",
        UnOp::Size => "*",
        UnOp::Promote => "!",
        UnOp::Activate => "@",
        UnOp::Refresh => "^",
        UnOp::FirstClass => "<>",
        UnOp::CoExpr => "|<>",
        UnOp::Pipe => "|>",
        UnOp::IsNull => "/",
        UnOp::Deref => ".",
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            other => out.push(other),
        }
    }
    out
}

fn write_expr(e: &Expr, out: &mut String) {
    match e {
        Expr::Null => out.push_str("&null"),
        Expr::Int(v) => out.push_str(&v.to_string()),
        Expr::BigLit(s) => out.push_str(s),
        Expr::Real(v) => {
            // keep a decimal point so it re-lexes as a real
            let text = if v.fract() == 0.0 && v.is_finite() {
                format!("{v:.1}")
            } else {
                format!("{v}")
            };
            out.push_str(&text);
        }
        Expr::Str(s) => {
            out.push('"');
            out.push_str(&escape(s));
            out.push('"');
        }
        Expr::KeywordAmp(k) => {
            out.push('&');
            out.push_str(k);
        }
        Expr::Var(name) => out.push_str(name),
        Expr::List(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_expr(item, out);
            }
            out.push(']');
        }
        Expr::Binary(op, a, b) => {
            out.push('(');
            write_expr(a, out);
            out.push(' ');
            out.push_str(bin_op_str(*op));
            out.push(' ');
            write_expr(b, out);
            out.push(')');
        }
        Expr::Unary(op, inner) => {
            out.push('(');
            out.push_str(un_op_str(*op));
            write_expr(inner, out);
            out.push(')');
        }
        Expr::Product(a, b) => {
            out.push('(');
            write_expr(a, out);
            out.push_str(" & ");
            write_expr(b, out);
            out.push(')');
        }
        Expr::Alt(a, b) => {
            out.push('(');
            write_expr(a, out);
            out.push_str(" | ");
            write_expr(b, out);
            out.push(')');
        }
        Expr::To { from, to, by } => {
            out.push('(');
            write_expr(from, out);
            out.push_str(" to ");
            write_expr(to, out);
            if let Some(by) = by {
                out.push_str(" by ");
                write_expr(by, out);
            }
            out.push(')');
        }
        Expr::Assign(t, v) => {
            out.push('(');
            write_expr(t, out);
            out.push_str(" := ");
            write_expr(v, out);
            out.push(')');
        }
        Expr::RevAssign(t, v) => {
            out.push('(');
            write_expr(t, out);
            out.push_str(" <- ");
            write_expr(v, out);
            out.push(')');
        }
        Expr::Call(f, args) => {
            write_expr(f, out);
            out.push('(');
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_expr(a, out);
            }
            out.push(')');
        }
        Expr::NativeCall(target, method, args) => {
            write_expr(target, out);
            out.push_str("::");
            out.push_str(method);
            out.push('(');
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_expr(a, out);
            }
            out.push(')');
        }
        Expr::Index(b, i) => {
            write_expr(b, out);
            out.push('[');
            write_expr(i, out);
            out.push(']');
        }
        Expr::Field(b, f) => {
            write_expr(b, out);
            out.push('.');
            out.push_str(f);
        }
        Expr::Scan(a, b) => {
            out.push('(');
            write_expr(a, out);
            out.push_str(" ? ");
            write_expr(b, out);
            out.push(')');
        }
        Expr::Limit(e, n) => {
            out.push('(');
            write_expr(e, out);
            out.push_str(" \\ ");
            write_expr(n, out);
            out.push(')');
        }
        Expr::If { cond, then, els } => {
            out.push_str("if ");
            write_expr(cond, out);
            out.push_str(" then ");
            write_expr(then, out);
            if let Some(els) = els {
                out.push_str(" else ");
                write_expr(els, out);
            }
        }
        Expr::While { cond, body } => {
            out.push_str("while ");
            write_expr(cond, out);
            if let Some(b) = body {
                out.push_str(" do ");
                write_expr(b, out);
            }
        }
        Expr::Until { cond, body } => {
            out.push_str("until ");
            write_expr(cond, out);
            if let Some(b) = body {
                out.push_str(" do ");
                write_expr(b, out);
            }
        }
        Expr::Every { source, body } => {
            out.push_str("every ");
            write_expr(source, out);
            if let Some(b) = body {
                out.push_str(" do ");
                write_expr(b, out);
            }
        }
        Expr::Repeat(b) => {
            out.push_str("repeat ");
            write_expr(b, out);
        }
        Expr::Not(inner) => {
            out.push_str("not (");
            write_expr(inner, out);
            out.push(')');
        }
        Expr::Block(stmts) => {
            out.push_str("{ ");
            for s in stmts {
                write_expr(s, out);
                out.push_str("; ");
            }
            out.push('}');
        }
        Expr::Suspend(e) => {
            out.push_str("suspend ");
            write_expr(e, out);
        }
        Expr::Return(Some(e)) => {
            out.push_str("return ");
            write_expr(e, out);
        }
        Expr::Return(None) => out.push_str("return"),
        Expr::Fail => out.push_str("fail"),
        Expr::Break => out.push_str("break"),
        Expr::Next => out.push_str("next"),
        Expr::Create(e) => {
            out.push_str("create ");
            write_expr(e, out);
        }
        Expr::Decl(decls) => {
            out.push_str("local ");
            for (i, (name, init)) in decls.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str(name);
                if let Some(init) = init {
                    out.push_str(" := ");
                    write_expr(init, out);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_expr;

    fn roundtrips(src: &str) {
        let e1 = parse_expr(src).unwrap();
        let printed = pretty(&e1);
        let e2 = parse_expr(&printed)
            .unwrap_or_else(|err| panic!("reparse of {printed:?} failed: {err}"));
        assert_eq!(e1, e2, "roundtrip changed AST: {src:?} -> {printed:?}");
    }

    #[test]
    fn literals_and_operators_roundtrip() {
        for src in [
            "1 + 2 * 3",
            "x := f(g(y))",
            "(1 to 2) * isprime(4 to 7)",
            "a & b | c",
            "\"str\\\"with\\\\escapes\"",
            "xs[2] := v",
            "e \\ 3",
            "!(|> f(!chunk))",
            "o.field",
            "t::m(1, \"a\")",
            "[1, 2.5, \"x\"]",
            "&null === x",
            "1 <= x <= 10",
            "not (a < b)",
            "<> (1 to 3)",
            "|<> g()",
        ] {
            roundtrips(src);
        }
    }

    #[test]
    fn proc_pretty_is_reparseable() {
        let prog =
            crate::parse::parse_program("def f(a, b) { local t := a; suspend t to b; }").unwrap();
        let printed = pretty_proc(&prog.procs[0]);
        let reparsed = crate::parse::parse_program(&printed).unwrap();
        assert_eq!(prog.procs[0], reparsed.procs[0]);
    }
}
