//! Deterministic fault injection for the transport stack.
//!
//! Runtime crates mark interesting failure sites with an in-crate
//! `faultpoint!("crate.component.event")` macro (compiled out entirely
//! unless that crate's `faultinj` feature is on — the `obs_on!` pattern).
//! When compiled in, every site calls [`hit`], which consults a global
//! registry of *armed* sites and panics at the configured hit. The panic
//! then takes the normal containment path: producers convert it into a
//! `Failed(Fault)` close cause, so tests can enumerate
//! panic-at-every-site × schedule interleavings deterministically.
//!
//! # Arming
//!
//! From the environment (read once, on first hit):
//!
//! ```text
//! FAULTS="pipes.producer.resume:panic@3,blockingq.put:panic"
//! FAULTS_SEED=7   # only consulted by probabilistic triggers
//! ```
//!
//! or programmatically (tests): [`scenario`] replaces the whole registry
//! and resets all hit counters, so a model-checker can re-arm the same
//! spec at the top of every explored schedule.
//!
//! # Spec grammar
//!
//! `site:action` entries, comma-separated:
//!
//! * `site:panic@N` — panic on the Nth hit of `site` (1-based), once.
//! * `site:panic` — shorthand for `panic@1`.
//! * `site:panic@every:N` — panic on every Nth hit.
//! * `site:panic~P` — panic each hit with probability `P` (a SplitMix64
//!   stream seeded from `FAULTS_SEED` xor the site name, so runs are
//!   reproducible given the seed).
//!
//! Malformed specs panic immediately on arm: a typo'd site name or
//! action must fail loudly, never silently disarm a test.
//!
//! # Cost
//!
//! Sites compile out without the calling crate's `faultinj` feature.
//! Compiled in but unarmed, a hit is one `Once` fast-path check plus one
//! relaxed atomic load. The registry deliberately uses plain `std`
//! primitives (not the virtualized `parking_lot` shim): under the
//! schedtest explorer only one virtual thread runs at a time, so
//! registry accesses are already serialized by the schedule and must not
//! add scheduling points of their own.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, Once, OnceLock};

static ARMED: AtomicBool = AtomicBool::new(false);
static INJECTED: AtomicU64 = AtomicU64::new(0);
static ENV_PARSED: Once = Once::new();

#[derive(Clone, Debug, PartialEq)]
enum Trigger {
    /// Fire once, on the Nth hit (1-based).
    At(u64),
    /// Fire on every Nth hit.
    Every(u64),
    /// Fire each hit with probability `p`, from a seeded per-site stream.
    Prob(f64),
}

struct Site {
    trigger: Trigger,
    hits: u64,
    fired: bool,
    rng: u64,
}

fn sites() -> &'static Mutex<HashMap<String, Site>> {
    static SITES: OnceLock<Mutex<HashMap<String, Site>>> = OnceLock::new();
    SITES.get_or_init(|| Mutex::new(HashMap::new()))
}

fn lock_sites() -> std::sync::MutexGuard<'static, HashMap<String, Site>> {
    // An injected panic unwinds through callers, never while this lock is
    // held — but be robust to poisoning from foreign unwinds anyway.
    sites().lock().unwrap_or_else(|e| e.into_inner())
}

/// FNV-1a, used only to derive a per-site seed stream.
fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn seed() -> u64 {
    static SEED: OnceLock<u64> = OnceLock::new();
    *SEED.get_or_init(|| {
        std::env::var("FAULTS_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(0)
    })
}

fn parse_spec(entry: &str) -> (String, Trigger) {
    fn bad(entry: &str) -> ! {
        panic!("faultinj: malformed FAULTS entry `{entry}` (want site:panic[@N|@every:N|~P])")
    }
    let (site, action) = entry.split_once(':').unwrap_or_else(|| bad(entry));
    let site = site.trim();
    let action = action.trim();
    if site.is_empty() {
        bad(entry);
    }
    let trigger = if let Some(p) = action.strip_prefix("panic~") {
        let p: f64 = p.parse().unwrap_or_else(|_| {
            panic!("faultinj: bad probability in `{entry}`");
        });
        assert!(
            (0.0..=1.0).contains(&p),
            "faultinj: probability out of range in `{entry}`"
        );
        Trigger::Prob(p)
    } else if let Some(rest) = action.strip_prefix("panic@") {
        if let Some(n) = rest.strip_prefix("every:") {
            let n: u64 = n
                .parse()
                .unwrap_or_else(|_| panic!("faultinj: bad period in `{entry}`"));
            assert!(n > 0, "faultinj: period must be >= 1 in `{entry}`");
            Trigger::Every(n)
        } else {
            let n: u64 = rest
                .parse()
                .unwrap_or_else(|_| panic!("faultinj: bad hit index in `{entry}`"));
            assert!(n > 0, "faultinj: hit index is 1-based in `{entry}`");
            Trigger::At(n)
        }
    } else if action == "panic" {
        Trigger::At(1)
    } else {
        bad(entry)
    };
    (site.to_string(), trigger)
}

/// Arm sites from a `site:action,site:action` spec string, *adding to*
/// (or overwriting within) the current registry. Hit counters for the
/// named sites are reset. Panics on malformed specs.
pub fn arm(config: &str) {
    let mut map = lock_sites();
    for entry in config.split(',') {
        let entry = entry.trim();
        if entry.is_empty() {
            continue;
        }
        let (site, trigger) = parse_spec(entry);
        let rng = seed() ^ fnv1a(&site);
        map.insert(
            site,
            Site {
                trigger,
                hits: 0,
                fired: false,
                rng,
            },
        );
    }
    ARMED.store(!map.is_empty(), Ordering::Release);
}

/// Disarm every site and reset all hit counters. The process-wide
/// [`injected`] total is preserved (it is an audit trail, not state).
pub fn disarm_all() {
    lock_sites().clear();
    ARMED.store(false, Ordering::Release);
}

/// Replace the whole registry with `config` and reset every counter —
/// the idempotent re-arm used at the top of each explored schedule in
/// model tests.
pub fn scenario(config: &str) {
    disarm_all();
    arm(config);
}

/// True iff at least one site is armed.
pub fn armed() -> bool {
    ARMED.load(Ordering::Relaxed)
}

/// Process-wide count of faults actually injected (monotone).
pub fn injected() -> u64 {
    INJECTED.load(Ordering::Relaxed)
}

#[cfg(feature = "obs")]
fn injected_counter() -> &'static std::sync::Arc<obs::Counter> {
    static C: OnceLock<std::sync::Arc<obs::Counter>> = OnceLock::new();
    C.get_or_init(|| obs::counter("faults.injected"))
}

/// Force-register the `faults.injected` counter so snapshots carry an
/// explicit zero even before any fault fires. No-op without `obs`.
pub fn obs_register() {
    #[cfg(feature = "obs")]
    injected_counter();
}

/// One faultpoint execution. Fast no-op while unarmed; panics with a
/// recognizable `faultinj:` message when `site`'s trigger matches.
pub fn hit(site: &str) {
    ENV_PARSED.call_once(|| {
        if let Ok(cfg) = std::env::var("FAULTS") {
            arm(&cfg);
        }
    });
    if !ARMED.load(Ordering::Relaxed) {
        return;
    }
    let (fire, hit_no) = {
        let mut map = lock_sites();
        match map.get_mut(site) {
            None => return,
            Some(s) => {
                s.hits += 1;
                let fire = match s.trigger {
                    Trigger::At(n) => {
                        if !s.fired && s.hits == n {
                            s.fired = true;
                            true
                        } else {
                            false
                        }
                    }
                    Trigger::Every(n) => s.hits % n == 0,
                    Trigger::Prob(p) => {
                        let r = splitmix64(&mut s.rng);
                        (r as f64 / u64::MAX as f64) < p
                    }
                };
                (fire, s.hits)
            }
        }
    };
    if fire {
        INJECTED.fetch_add(1, Ordering::Relaxed);
        #[cfg(feature = "obs")]
        injected_counter().inc();
        panic!("faultinj: fault injected at {site} (hit #{hit_no})");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    // The registry is process-global; keep every test inside one lock to
    // avoid cross-test interference under the parallel test runner.
    fn serial() -> std::sync::MutexGuard<'static, ()> {
        static GUARD: Mutex<()> = Mutex::new(());
        GUARD.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn unarmed_hits_are_noops() {
        let _g = serial();
        scenario("");
        assert!(!armed());
        for _ in 0..100 {
            hit("some.site");
        }
    }

    #[test]
    fn panic_at_nth_hit_fires_once() {
        let _g = serial();
        scenario("a.b:panic@3");
        assert!(armed());
        hit("a.b");
        hit("a.b");
        let err = catch_unwind(AssertUnwindSafe(|| hit("a.b"))).unwrap_err();
        let msg = err.downcast_ref::<String>().expect("string payload");
        assert!(msg.contains("a.b"), "payload names the site: {msg}");
        assert!(msg.contains("hit #3"), "payload names the hit: {msg}");
        // One-shot: the site stays quiet afterwards.
        for _ in 0..10 {
            hit("a.b");
        }
        disarm_all();
    }

    #[test]
    fn every_n_fires_periodically() {
        let _g = serial();
        scenario("p.q:panic@every:2");
        hit("p.q");
        assert!(catch_unwind(AssertUnwindSafe(|| hit("p.q"))).is_err());
        hit("p.q");
        assert!(catch_unwind(AssertUnwindSafe(|| hit("p.q"))).is_err());
        disarm_all();
    }

    #[test]
    fn scenario_resets_hit_counters() {
        let _g = serial();
        scenario("x.y:panic@2");
        hit("x.y");
        scenario("x.y:panic@2"); // counter back to zero
        hit("x.y");
        assert!(catch_unwind(AssertUnwindSafe(|| hit("x.y"))).is_err());
        disarm_all();
    }

    #[test]
    fn unknown_sites_ignored_while_armed() {
        let _g = serial();
        scenario("known.site:panic@1");
        hit("unknown.site"); // must not panic
        disarm_all();
    }

    #[test]
    fn probabilistic_trigger_is_seed_deterministic() {
        let _g = serial();
        // p=1.0 always fires; p=0.0 never does — the endpoints are
        // deterministic regardless of seed.
        scenario("never.fires:panic~0.0");
        for _ in 0..50 {
            hit("never.fires");
        }
        scenario("always.fires:panic~1.0");
        assert!(catch_unwind(AssertUnwindSafe(|| hit("always.fires"))).is_err());
        disarm_all();
    }

    #[test]
    fn malformed_specs_fail_loudly() {
        let _g = serial();
        for bad in ["nosite", "a.b:explode", "a.b:panic@0", "a.b:panic~2.0"] {
            assert!(
                catch_unwind(AssertUnwindSafe(|| scenario(bad))).is_err(),
                "spec `{bad}` must be rejected"
            );
        }
        disarm_all();
    }

    #[test]
    fn injected_total_is_monotone() {
        let _g = serial();
        let before = injected();
        scenario("m.n:panic@1");
        let _ = catch_unwind(AssertUnwindSafe(|| hit("m.n")));
        assert!(injected() > before);
        disarm_all();
    }
}
