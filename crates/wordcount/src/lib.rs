//! The Fig. 3 / Fig. 6 evaluation workload.
//!
//! Sec. VII of the paper benchmarks a word-count-style hash program: "takes
//! lines of text, and computes a hash of the lines by splitting each line
//! into words, converting the words into numbers, taking their square root,
//! and then summing the result". Two suites are measured:
//!
//! * a **native** suite (the paper's "Java" programs): a sequential
//!   word-count, a pipelined version "built using BlockingQueues over two
//!   threads", a parallel map-reduce version, and a data-parallel version
//!   "that split out the reduction" — here written in plain Rust over the
//!   same substrates ([`native`]);
//! * an **embedded** suite (the paper's "Junicon" programs): the same four
//!   programs expressed with concurrent generators over the dynamic
//!   [`gde::Value`] runtime — the combinator trees that transpiled Junicon
//!   builds ([`embedded`]).
//!
//! Both suites use arbitrary-precision arithmetic (the [`bigint`] crate),
//! "which is implicit in Unicon but must be made explicit in Java", and
//! come in a **lightweight** and a **heavyweight** variant; the heavyweight
//! hash inflates the per-word work "by a factor of roughly 80, achieved
//! using trigonometry and prime number functions" ([`hash`]).

/// Expands its body only when the `obs` feature is on (see the identical
/// shim in `blockingq`): instrumentation sites vanish entirely when
/// observability is disabled.
#[cfg(feature = "obs")]
macro_rules! obs_on {
    ($($body:tt)*) => { $($body)* };
}
#[cfg(not(feature = "obs"))]
macro_rules! obs_on {
    ($($body:tt)*) => {};
}

pub mod corpus;
pub mod embedded;
pub mod hash;
pub mod native;

pub use corpus::Corpus;
pub use hash::Weight;

/// The four program variants of the evaluation suite.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Variant {
    Sequential,
    Pipeline,
    DataParallel,
    MapReduce,
}

impl Variant {
    /// All four, in the order of Fig. 6's histograms.
    pub const ALL: [Variant; 4] = [
        Variant::Sequential,
        Variant::Pipeline,
        Variant::DataParallel,
        Variant::MapReduce,
    ];

    /// Display name matching the paper's axis labels.
    pub fn name(&self) -> &'static str {
        match self {
            Variant::Sequential => "Sequential",
            Variant::Pipeline => "Pipeline",
            Variant::DataParallel => "DataParallel",
            Variant::MapReduce => "MapReduce",
        }
    }
}

/// Which suite a measurement belongs to (Fig. 6's bar colours).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Suite {
    /// Embedded concurrent generators (the paper's "Junicon" bars).
    Embedded,
    /// Plain Rust (the paper's "Java" bars).
    Native,
}

impl Suite {
    pub fn name(&self) -> &'static str {
        match self {
            Suite::Embedded => "Junicon",
            Suite::Native => "Native",
        }
    }
}

/// Pick a chunk size that yields roughly four chunks per worker, so the
/// chunked variants actually distribute even on small corpora (Fig. 3's
/// fixed `DataParallel(1000)` assumes a large input file).
fn adaptive_chunk(total_items: usize) -> usize {
    let workers = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    (total_items / (4 * workers).max(4)).max(1)
}

/// Run one (suite, variant, weight) cell of the Fig. 6 matrix and return
/// the total hash. Chunked variants use an adaptive chunk size
/// (see [`native::map_reduce_on`] / [`embedded::map_reduce_sized`] to pin
/// it explicitly).
pub fn run_cell(suite: Suite, variant: Variant, corpus: &Corpus, weight: Weight) -> f64 {
    // Per-phase wall time: one timer per (suite, variant) cell, e.g.
    // `wordcount.Junicon.Pipeline.wall`, plus a run counter — this is
    // what the figure6 JSON embeds next to the timings.
    obs_on!(
        obs::counter("wordcount.cells").inc();
        let cell_started = std::time::Instant::now();
    );
    let line_chunk = adaptive_chunk(corpus.lines().len());
    let word_chunk = adaptive_chunk(corpus.word_count());
    let pool = exec::global();
    let result = match (suite, variant) {
        (Suite::Native, Variant::Sequential) => native::sequential(corpus.lines(), weight),
        (Suite::Native, Variant::Pipeline) => native::pipeline(corpus.lines(), weight),
        (Suite::Native, Variant::MapReduce) => {
            native::map_reduce_on(corpus.lines(), weight, line_chunk, pool)
        }
        (Suite::Native, Variant::DataParallel) => {
            native::data_parallel_on(corpus.lines(), weight, line_chunk, pool)
        }
        (Suite::Embedded, Variant::Sequential) => embedded::sequential(corpus, weight),
        (Suite::Embedded, Variant::Pipeline) => embedded::pipeline(corpus, weight),
        (Suite::Embedded, Variant::MapReduce) => {
            embedded::map_reduce_sized(corpus, weight, word_chunk)
        }
        (Suite::Embedded, Variant::DataParallel) => {
            embedded::data_parallel_sized(corpus, weight, word_chunk)
        }
    };
    obs_on!({
        let name = format!("wordcount.{}.{}.wall", suite.name(), variant.name());
        obs::timer(&name).observe(cell_started.elapsed());
    });
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() <= a.abs().max(b.abs()) * 1e-9 + 1e-9
    }

    #[test]
    fn all_eight_cells_agree_lightweight() {
        let corpus = Corpus::generate(60, 8, 42);
        let reference = native::sequential(corpus.lines(), Weight::Light);
        assert!(reference > 0.0);
        for suite in [Suite::Native, Suite::Embedded] {
            for variant in Variant::ALL {
                let got = run_cell(suite, variant, &corpus, Weight::Light);
                assert!(
                    close(got, reference),
                    "{}/{} disagreed: {got} vs {reference}",
                    suite.name(),
                    variant.name()
                );
            }
        }
    }

    #[test]
    fn all_eight_cells_agree_heavyweight() {
        let corpus = Corpus::generate(12, 4, 7);
        let reference = native::sequential(corpus.lines(), Weight::Heavy);
        for suite in [Suite::Native, Suite::Embedded] {
            for variant in Variant::ALL {
                let got = run_cell(suite, variant, &corpus, Weight::Heavy);
                assert!(
                    close(got, reference),
                    "{}/{} disagreed: {got} vs {reference}",
                    suite.name(),
                    variant.name()
                );
            }
        }
    }
}
