//! The embedded suite — the paper's "Junicon" programs as concurrent
//! generators over the dynamic runtime.
//!
//! These four functions build exactly the combinator trees that transpiled
//! Junicon builds (values are boxed [`gde::Value`]s, words flow through
//! reified stages, coordination uses pipes and the Fig. 4 `DataParallel`),
//! so measuring them against [`crate::native`] reproduces Fig. 6's
//! embedded-vs-native comparison.
//!
//! The program is Fig. 3's: `readLines` → `splitWords` → `wordToNumber` →
//! `hashNumber` → sum. The sequential variant evaluates all stages inline;
//! the pipeline variant is `hashNumber(!(|> wordToNumber(!splitWords(
//! readLines()))))` — the parse stage on a producer thread; map-reduce and
//! data-parallel spread chunks of the word stream over the pool per Fig. 4.

use crate::corpus::Corpus;
use crate::hash::{hash_int, hash_number, word_to_number, Weight};
use gde::comb::fuse::StagePlan;
use gde::comb::{fail, filter_map, flat, promote_value};
use gde::{BoxGen, Gen, GenExt, Step, Value};
use mapreduce::DataParallel;
use pipes::Pipe;

/// Word-chunk size for the chunked variants (`new DataParallel(1000)`).
pub const CHUNK_SIZE: usize = 1000;

/// `splitWords(readLines())`: the word stream as a generator of string
/// values.
///
/// Words are borrowed [`Value::slice`] handles into the shared line
/// buffers — the corpus's per-line `Arc<str>` allocations act as the
/// pipeline's arena. Yielding a word costs a refcount on its line: no
/// interner hash, no bucket walk, no allocation. A word that outlives its
/// stage (env slot, table key, pipe crossing) is promoted to an owned
/// form by the runtime's escape hatches ([`Value::promote`]).
fn word_stream(lines: Value) -> BoxGen {
    Box::new(flat(promote_value(lines), word_split_factory))
}

/// `line::split("\\s+")` as a flat-stage factory: one lazy [`WordSplit`]
/// per line value. This is the pipeline's fusion *barrier* — a line
/// expands to many words, so monogenic stages cannot move across it, but
/// the run *after* it fuses into the barrier node itself
/// ([`gde::comb::fuse::FlatFused`]).
fn word_split_factory(line: &Value) -> BoxGen {
    match line_buffer(line) {
        Some(line) => Box::new(WordSplit {
            line,
            pos: 0,
            pending: 0,
        }) as BoxGen,
        None => Box::new(fail()) as BoxGen,
    }
}

/// The shared `Arc<str>` buffer behind a line value, for [`WordSplit`]
/// to scan in place.
fn line_buffer(line: &Value) -> Option<std::sync::Arc<str>> {
    match line {
        Value::Str(s) => Some(s.clone()),
        Value::Sym(s) => Some(s.arc()),
        // A slice-of-a-slice would need nested offsets, and builder-arena
        // lines would thread a second owner type through the splitter;
        // both are cold here — re-own the window instead.
        Value::Slice(s) => Some(std::sync::Arc::from(s.as_str())),
        Value::Built(s) => Some(std::sync::Arc::from(s.as_str())),
        _ => None,
    }
}

/// Lazy `line::split("\\s+")`: yields one borrowed word handle per
/// resume, scanning the shared line in place. No intermediate `Vec` of
/// words is ever built — each resume finds the next whitespace-delimited
/// run and hands out a [`Value::slice`] window into the line buffer
/// (no hash, no allocation; the compact-value hot path).
struct WordSplit {
    line: std::sync::Arc<str>,
    pos: usize,
    /// Windows yielded since the last `gde.value.inline_hits` flush —
    /// batched per line via [`Value::note_inline_windows`] so the
    /// per-word loop pays a register increment, not an atomic RMW.
    pending: u64,
}

impl WordSplit {
    fn flush_obs(&mut self) {
        Value::note_inline_windows(self.pending);
        self.pending = 0;
    }
}

impl Drop for WordSplit {
    fn drop(&mut self) {
        // A splitter abandoned mid-line still accounts for what it
        // yielded.
        self.flush_obs();
    }
}

impl Gen for WordSplit {
    fn resume(&mut self) -> Step {
        let bytes = self.line.as_bytes();
        // Slice-then-iterate so the scan is bounds-check-free.
        let start = match bytes[self.pos..]
            .iter()
            .position(|b| !b.is_ascii_whitespace())
        {
            Some(off) => self.pos + off,
            None => {
                self.pos = bytes.len();
                self.flush_obs();
                return Step::Fail;
            }
        };
        let end = match bytes[start..].iter().position(|b| b.is_ascii_whitespace()) {
            Some(off) => start + off,
            None => bytes.len(),
        };
        self.pos = end;
        self.pending += 1;
        // Splitting at ASCII whitespace always lands on char boundaries,
        // so the trusted constructor skips the per-word window check.
        Step::Suspend(Value::slice_at_ascii_delims(self.line.clone(), start, end))
    }
    fn restart(&mut self) {
        self.pos = 0;
        self.flush_obs();
    }
    /// Flat barriers recycle the splitter across lines: swap the buffer,
    /// rewind, skip the per-line factory call + box (see [`Gen::rebind`]).
    fn rebind(&mut self, v: &Value) -> bool {
        match line_buffer(v) {
            Some(line) => {
                self.line = line;
                self.pos = 0;
                self.flush_obs();
                true
            }
            None => false,
        }
    }
}

/// `wordToNumber` as a goal-directed stage: string value → integer
/// value, failing on unparsable words.
///
/// Machine-range results stay unboxed (`Value::Int`), exactly as Icon
/// stores small integers — only values beyond `i64` take the boxed
/// big-integer representation. This keeps the per-word hot path free of
/// the `Arc<BigInt>` allocation.
fn parse_stage(words: BoxGen, weight: Weight) -> BoxGen {
    Box::new(filter_map(words, parse_filter_map(weight)))
}

/// The `wordToNumber` transform as a shareable stage closure (both the
/// unfused [`parse_stage`] node and the fused plans compose it).
fn parse_filter_map(weight: Weight) -> impl Fn(&Value) -> Option<Value> + Send + Sync {
    move |w| {
        let s = w.as_str()?;
        let n = word_to_number(s, weight)?;
        Some(match n.to_u64() {
            Some(u) if u <= i64::MAX as u64 => Value::Int(u as i64),
            _ => Value::big(n.into()),
        })
    }
}

/// `hashNumber` as a stage: big-integer value → real value.
fn hash_stage(numbers: BoxGen, weight: Weight) -> BoxGen {
    Box::new(filter_map(numbers, hash_filter_map(weight)))
}

/// The `hashNumber` transform as a shareable stage closure.
fn hash_filter_map(weight: Weight) -> impl Fn(&Value) -> Option<Value> + Send + Sync {
    move |n| Some(Value::Real(hash_value(n, weight)?))
}

/// The full Fig. 3 stage pipeline as a fusable [`StagePlan`]:
/// `splitWords` (flat barrier) → `wordToNumber` → `hashNumber`. Fusing
/// collapses the two monogenic stages into the barrier node, so the whole
/// pipeline costs one [`gde::comb::fuse::FlatFused`] resume plus one
/// [`WordSplit`] resume per word — down from four boxed dispatches in the
/// stage-per-node tree.
fn stage_plan(weight: Weight) -> StagePlan {
    parse_plan(weight).filter_map(hash_filter_map(weight))
}

/// The producer half of the pipeline variant: `splitWords` →
/// `wordToNumber` (hashing runs downstream of the pipe).
fn parse_plan(weight: Weight) -> StagePlan {
    StagePlan::new()
        .flat(word_split_factory)
        .filter_map(parse_filter_map(weight))
}

/// Hash a dynamic big-integer value *by reference*: the dominant
/// `Value::Big` case borrows the shared magnitude ([`hash_number`] takes
/// `&BigUint`), so the hot path does no big-integer clone and no
/// allocation per word.
fn hash_value(v: &Value, weight: Weight) -> Option<f64> {
    match v {
        Value::Int(i) if *i >= 0 => Some(hash_int(*i as u64, weight)),
        Value::Big(b) if !b.is_negative() => Some(hash_number(b.magnitude(), weight)),
        Value::Ref(cell) => hash_value(&cell.get(), weight),
        _ => None,
    }
}

/// Drive a generator of reals to failure, summing (the `every` reduction
/// loop of Fig. 3's `runPipeline`).
///
/// The accumulator is a plain local: after slot resolution the reduction
/// variable of the embedded program is a direct cell reference, not a
/// name lookup, so a native fold over the resumed values is the faithful
/// analogue (and drops the two mutex acquisitions per word the old
/// reified-`Var` accumulator paid).
fn sum_gen(mut gen: BoxGen, seed: f64) -> f64 {
    let mut total = seed;
    while let Some(v) = gen.next_value() {
        if let Some(h) = v.as_real() {
            total += h;
        }
    }
    total
}

/// Sequential embedded word-count: all stages inline on one thread, with
/// the stage pipeline fused at construction (see [`stage_plan`]).
pub fn sequential(corpus: &Corpus, weight: Weight) -> f64 {
    let hashed = stage_plan(weight).instantiate(Box::new(promote_value(corpus.as_value())));
    sum_gen(hashed, 0.0)
}

/// [`sequential`] over the traditional one-combinator-node-per-stage tree
/// — the reference semantics the fusion equivalence suite compares
/// against (and the "before" side of the fused-vs-unfused bench).
pub fn sequential_unfused(corpus: &Corpus, weight: Weight) -> f64 {
    let words = word_stream(corpus.as_value());
    let hashed = hash_stage(parse_stage(words, weight), weight);
    sum_gen(hashed, 0.0)
}

/// Pipeline-parallel embedded word-count:
/// `hashNumber(!(|> wordToNumber(!splitWords(readLines()))))` — split and
/// parse on the pipe's producer thread, hash and sum downstream.
pub fn pipeline(corpus: &Corpus, weight: Weight) -> f64 {
    pipeline_with_capacity(corpus, weight, pipes::DEFAULT_CAPACITY)
}

/// [`pipeline`] with an explicit queue bound (throttling ablation).
pub fn pipeline_with_capacity(corpus: &Corpus, weight: Weight, capacity: usize) -> f64 {
    pipeline_batched(corpus, weight, capacity, pipes::DEFAULT_BATCH)
}

/// [`pipeline`] with explicit queue bound *and* transport batch: parsed
/// numbers cross the pipe's thread boundary in chunks of up to `batch`
/// values per queue transaction (`batch == 1` reproduces the
/// item-at-a-time transport of the original embedding).
pub fn pipeline_batched(corpus: &Corpus, weight: Weight, capacity: usize, batch: usize) -> f64 {
    let lines = corpus.as_value();
    let pipe = Pipe::staged(
        move || Box::new(promote_value(lines.clone())),
        &parse_plan(weight),
        capacity,
        batch,
    );
    let hashed = hash_stage(Box::new(pipe), weight);
    sum_gen(hashed, 0.0)
}

/// Fan-in embedded word-count: the corpus is split into `sources`
/// contiguous slices, each run as its own `splitWords` → `wordToNumber` →
/// `hashNumber` generator on a producer thread; per-word hashes arrive
/// *tagged with their source index* (as two-element lists) through one
/// batched [`pipes::merge`], are re-bucketed per source downstream, and
/// reduced in source order — so the float association is **identical to
/// [`sequential`]** (the sum is byte-for-byte equal) regardless of the
/// arrival interleaving.
pub fn fan_in(
    corpus: &Corpus,
    weight: Weight,
    sources: usize,
    capacity: usize,
    batch: usize,
) -> f64 {
    let sources = sources.max(1);
    let slice_len = corpus.lines().len().div_ceil(sources);
    let mut factories: Vec<Box<dyn Fn() -> BoxGen + Send + Sync>> = Vec::with_capacity(sources);
    for k in 0..sources {
        let slice: Value = Value::list(
            corpus
                .lines()
                .iter()
                .skip(k * slice_len)
                .take(slice_len)
                .map(Value::str)
                .collect(),
        );
        // Tag each hash with its source index so the consumer can restore
        // the sequential reduction order. The tag stage is monogenic, so
        // it fuses into the same closure as parse and hash — the whole
        // per-source pipeline is one FlatFused node.
        let fused = stage_plan(weight)
            .filter_map(move |h| Some(Value::list(vec![Value::from(k as i64), h.clone()])))
            .fuse();
        factories.push(Box::new(move || {
            fused.instantiate(Box::new(promote_value(slice.clone())))
        }));
    }
    let mut merged = pipes::merge(factories, capacity).with_batch(batch);
    // Bucket arrivals per source (per-producer FIFO keeps each bucket in
    // slice order), then reduce buckets in source order: the same hash
    // sequence — and therefore the same float association — as the
    // sequential fold.
    let mut buckets: Vec<Vec<f64>> = vec![Vec::new(); sources];
    while let Some(tagged) = merged.next_value() {
        let Some(list) = tagged.as_list().map(|l| l.lock().clone()) else {
            continue;
        };
        let (Some(k), Some(h)) = (
            list.first().and_then(|v| v.as_int()),
            list.get(1).and_then(|v| v.as_real()),
        ) else {
            continue;
        };
        buckets[k as usize].push(h);
    }
    let mut total = 0.0;
    for bucket in buckets {
        for h in bucket {
            total += h;
        }
    }
    total
}

/// Map-reduce embedded word-count: Fig. 4's `mapReduce(hashWords, …,
/// sumHash, 0)` — chunks of the parsed word stream are mapped and reduced
/// on pool tasks; the per-chunk partials are summed in order.
pub fn map_reduce(corpus: &Corpus, weight: Weight) -> f64 {
    map_reduce_sized(corpus, weight, CHUNK_SIZE)
}

/// [`map_reduce`] with an explicit chunk size (ablation).
pub fn map_reduce_sized(corpus: &Corpus, weight: Weight, chunk_size: usize) -> f64 {
    let dp = DataParallel::new(chunk_size);
    let numbers = parse_plan(weight).instantiate(Box::new(promote_value(corpus.as_value())));
    let mut partials = dp.map_reduce(
        move |n| Some(Value::Real(hash_value(n, weight)?)),
        numbers,
        |acc, h| gde::ops::add(&acc, &h),
        Value::Real(0.0),
    );
    let mut total = 0.0;
    while let Some(p) = partials.next_value() {
        total += p.as_real().unwrap_or(0.0);
    }
    total
}

/// Data-parallel embedded word-count: chunks are mapped on pool tasks but
/// every per-word hash is flattened back in order and reduced serially —
/// the variant that "split out the reduction and effected serialization".
pub fn data_parallel(corpus: &Corpus, weight: Weight) -> f64 {
    data_parallel_sized(corpus, weight, CHUNK_SIZE)
}

/// [`data_parallel`] with an explicit chunk size.
pub fn data_parallel_sized(corpus: &Corpus, weight: Weight, chunk_size: usize) -> f64 {
    let dp = DataParallel::new(chunk_size);
    let numbers = parse_plan(weight).instantiate(Box::new(promote_value(corpus.as_value())));
    let hashes = dp.map_flat(move |n| Some(Value::Real(hash_value(n, weight)?)), numbers);
    sum_gen(Box::new(hashes), 0.0)
}

/// Word-frequency report: one `word=count` line per distinct word, in
/// first-appearance order — the string-plane twin of
/// [`crate::native::frequency_report`].
///
/// This is the concat-heavy embedded program: counts accumulate in a
/// dynamic table keyed by *borrowed* word handles (promoted to owned
/// keys by [`Value::as_key`]), and each report line is built with the
/// goal-directed `||` ([`gde::ops::concat`]) — `word || "=" || count` —
/// so the first hop lands in the builder arena and the second extends
/// that window in place (the `gde.value.concat_slices` tail-extension
/// path), while the count image comes from the small-int coercion
/// cache. Figure 6 runs it once, untimed, so the obs snapshot proves
/// the arena is actually on the measured runtime's hot path.
pub fn frequency_report(corpus: &Corpus) -> Vec<String> {
    let counts = Value::table();
    let Value::Table(table) = &counts else {
        unreachable!("Value::table builds a table");
    };
    let mut words = word_stream(corpus.as_value());
    while let Some(w) = words.next_value() {
        let Some(key) = w.as_key() else { continue };
        let mut t = table.lock();
        let n = t.entries.get(&key).and_then(|v| v.as_int()).unwrap_or(0);
        t.entries.insert(key, Value::from(n + 1));
    }
    // Second pass replays the stream in first-appearance order; writing
    // a zero count back marks a word as already reported.
    let eq = Value::interned("=");
    let mut report = Vec::new();
    let mut words = word_stream(corpus.as_value());
    while let Some(w) = words.next_value() {
        let Some(key) = w.as_key() else { continue };
        let n = {
            let mut t = table.lock();
            let n = t.entries.get(&key).and_then(|v| v.as_int()).unwrap_or(0);
            if n > 0 {
                t.entries.insert(key, Value::from(0));
            }
            n
        };
        if n == 0 {
            continue;
        }
        let line = gde::ops::concat(&w, &eq)
            .and_then(|l| gde::ops::concat(&l, &Value::from(n)))
            .expect("string forms concatenate");
        report.push(line.to_string());
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() <= a.abs().max(b.abs()) * 1e-9 + 1e-12
    }

    #[test]
    fn sequential_matches_native() {
        let c = Corpus::generate(40, 8, 21);
        let native = crate::native::sequential(c.lines(), Weight::Light);
        let embedded = sequential(&c, Weight::Light);
        assert!(close(native, embedded), "{native} vs {embedded}");
    }

    #[test]
    fn pipeline_matches_native() {
        let c = Corpus::generate(40, 8, 22);
        let native = crate::native::sequential(c.lines(), Weight::Light);
        assert!(close(native, pipeline(&c, Weight::Light)));
        assert!(close(native, pipeline_with_capacity(&c, Weight::Light, 2)));
    }

    #[test]
    fn map_reduce_matches_native() {
        let c = Corpus::generate(40, 8, 23);
        let native = crate::native::sequential(c.lines(), Weight::Light);
        let mr = map_reduce_sized(&c, Weight::Light, 37);
        assert!(close(native, mr), "{native} vs {mr}");
    }

    #[test]
    fn data_parallel_matches_native() {
        let c = Corpus::generate(40, 8, 24);
        let native = crate::native::sequential(c.lines(), Weight::Light);
        let dp = data_parallel_sized(&c, Weight::Light, 37);
        assert!(close(native, dp));
    }

    #[test]
    fn fused_sequential_is_bitwise_unfused() {
        // Fusion is a pure rewrite: same hashes, same association, so the
        // sums are byte-for-byte equal — for both weights.
        let c = Corpus::generate(60, 8, 29);
        for weight in [Weight::Light, Weight::Heavy] {
            assert_eq!(sequential(&c, weight), sequential_unfused(&c, weight));
        }
    }

    #[test]
    fn stage_plan_fuses_to_one_node() {
        // splitWords | parse | hash: the monogenic run is absorbed into
        // the flat barrier — a single FlatFused segment.
        assert_eq!(stage_plan(Weight::Light).fuse().segment_count(), 1);
    }

    #[test]
    fn pipeline_batched_is_bitwise_sequential() {
        // The pipe preserves order and the reduction runs downstream with
        // the same association, so equality is exact for every batch.
        let c = Corpus::generate(40, 8, 26);
        let seq = sequential(&c, Weight::Light);
        for batch in [1, 2, 7, 64] {
            let got = pipeline_batched(&c, Weight::Light, 16, batch);
            assert_eq!(seq, got, "batch {batch} changed the embedded sum");
        }
    }

    #[test]
    fn fan_in_is_bitwise_sequential() {
        // Source-order bucketing restores the sequential association, so
        // equality is exact whatever the arrival interleaving was.
        let c = Corpus::generate(40, 8, 27);
        let seq = sequential(&c, Weight::Light);
        for sources in [1, 3, 4] {
            for batch in [1, 2, 7, 64] {
                let got = fan_in(&c, Weight::Light, sources, 16, batch);
                assert_eq!(seq, got, "sources {sources} batch {batch} diverged");
            }
        }
    }

    #[test]
    fn fan_in_empty_and_more_sources_than_lines() {
        let empty = Corpus::from_lines(vec![]);
        assert_eq!(fan_in(&empty, Weight::Light, 4, 8, 2), 0.0);
        let tiny = Corpus::generate(2, 4, 28);
        let seq = sequential(&tiny, Weight::Light);
        assert_eq!(seq, fan_in(&tiny, Weight::Light, 8, 8, 3));
    }

    #[test]
    fn frequency_report_matches_native_bytewise() {
        let c = Corpus::generate(30, 6, 31);
        let native = crate::native::frequency_report(c.lines());
        let embedded = frequency_report(&c);
        assert!(!native.is_empty());
        assert_eq!(native, embedded);
    }

    #[test]
    fn frequency_report_counts_repeats() {
        let c = Corpus::from_lines(vec!["ab cd ab".to_string(), "cd ab e".to_string()]);
        assert_eq!(frequency_report(&c), vec!["ab=3", "cd=2", "e=1"]);
    }

    #[test]
    fn word_stream_yields_every_word() {
        let c = Corpus::generate(5, 6, 25);
        let mut g = word_stream(c.as_value());
        assert_eq!(g.count(), 30);
    }

    #[test]
    fn parse_stage_drops_bad_words() {
        let c = Corpus::from_lines(vec!["zz !! 10".to_string()]);
        let mut g = parse_stage(word_stream(c.as_value()), Weight::Light);
        assert_eq!(g.count(), 2); // "!!" dropped
    }

    #[test]
    fn empty_corpus() {
        let c = Corpus::from_lines(vec![]);
        assert_eq!(sequential(&c, Weight::Light), 0.0);
        assert_eq!(pipeline(&c, Weight::Light), 0.0);
        assert_eq!(map_reduce(&c, Weight::Light), 0.0);
        assert_eq!(data_parallel(&c, Weight::Light), 0.0);
    }
}
