//! The hash-function computational nodes.
//!
//! Fig. 3's two stages, in light and heavyweight variants:
//!
//! * `wordToNumber(word)` — `new BigInteger(word, 36)`;
//! * `hashNumber(n)` — `Math.sqrt(n.doubleValue())`.
//!
//! The heavyweight variants follow Sec. VII: "a second heavyweight set …
//! increased the complexity of the hash function components and so the
//! weight of the threaded tasks … by a factor of roughly 80, achieved using
//! trigonometry and prime number functions of Java's Math and BigInteger
//! libraries". Here the heavy `wordToNumber` performs modular
//! exponentiation on the parsed value, and the heavy `hashNumber` searches
//! for the next probable prime and folds in a trigonometric series.

use bigint::{BigInt, BigUint};

/// Computational weight of the hash nodes (the two halves of Fig. 6).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Weight {
    Light,
    Heavy,
}

impl Weight {
    pub fn name(&self) -> &'static str {
        match self {
            Weight::Light => "Lightweight",
            Weight::Heavy => "Heavyweight",
        }
    }
}

/// Iterations of the trigonometric series in the heavy hash; tuned so the
/// heavy node weight is roughly two orders of magnitude above light, like
/// the paper's ~80x.
const TRIG_ROUNDS: u32 = 48;

/// `wordToNumber`: parse a word as a base-36 integer. Fails on words with
/// characters outside `[0-9a-zA-Z]` (the paper's version throws
/// `NumberFormatException`; goal-directed failure is the embedded analogue).
pub fn word_to_number(word: &str, weight: Weight) -> Option<BigUint> {
    let n = BigUint::from_str_radix(word, 36).ok()?;
    match weight {
        Weight::Light => Some(n),
        Weight::Heavy => {
            // Stretch the node: a modular exponentiation keyed by the word
            // itself (BigInteger.modPow in the Java suite).
            let m = BigUint::from(0xffff_ffff_ffff_ffc5u64); // large prime modulus
            let e = BigUint::from(65537u64);
            let stretched = n.add_ref(&BigUint::from(2u64)).modpow(&e, &m);
            // Keep the original magnitude so the final hash stays
            // comparable across weights in shape (sqrt of same n), but
            // force the stretched value to be consumed.
            if stretched > m {
                unreachable!("modpow result bounded by modulus");
            }
            Some(n)
        }
    }
}

/// `hashNumber`: the square root of the number as a double.
pub fn hash_number(n: &BigUint, weight: Weight) -> f64 {
    let base = n.to_f64().sqrt();
    match weight {
        Weight::Light => base,
        Weight::Heavy => {
            // Prime search (BigInteger.nextProbablePrime) ...
            let seed = n.div_rem(&BigUint::from(1_000_003u64)).1;
            let p = seed.next_probable_prime();
            let _consume = p.bits();
            // ... plus a trigonometric series (Math.sin/cos/atan).
            let mut acc = 0.0f64;
            let x = base.max(1.0);
            for k in 1..=TRIG_ROUNDS {
                let kf = k as f64;
                acc += (x / kf).sin() * (kf / x).atan().cos();
            }
            // The series is folded in at zero amplitude so heavy and light
            // totals are numerically identical (shape comparisons need the
            // same answer) while the work is real and not elided: the
            // compiler cannot prove acc * 0.0 hits the fast path away
            // because acc depends on runtime data.
            base + acc * f64::MIN_POSITIVE * 0.0
        }
    }
}

/// [`hash_number`] over a machine-range value — the unboxed fast path the
/// embedded runtime takes for `Value::Int`. Bit-identical to
/// `hash_number(&BigUint::from(n), weight)`: a single-limb `to_f64` is
/// exactly `n as f64`, so the lightweight path can skip the big-integer
/// allocation entirely. The heavyweight path needs the big-integer ops
/// (prime search), so it round-trips — the node is compute-dominated
/// there anyway.
pub fn hash_int(n: u64, weight: Weight) -> f64 {
    match weight {
        Weight::Light => (n as f64).sqrt(),
        Weight::Heavy => hash_number(&BigUint::from(n), weight),
    }
}

/// The composed per-word hash: `hashNumber(wordToNumber(word))`.
pub fn hash_word(word: &str, weight: Weight) -> Option<f64> {
    Some(hash_number(&word_to_number(word, weight)?, weight))
}

/// The reduction (`sumHash` in Fig. 3).
pub fn sum_hash(sofar: f64, hash: f64) -> f64 {
    sofar + hash
}

/// Signed wrapper used by embedded code (`Value::big` holds [`BigInt`]).
pub fn word_to_number_signed(word: &str, weight: Weight) -> Option<BigInt> {
    word_to_number(word, weight).map(BigInt::from)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    #[test]
    fn word_to_number_matches_biginteger() {
        // "hello" base 36 = 29234652 (cross-checked with java.math).
        let n = word_to_number("hello", Weight::Light).unwrap();
        assert_eq!(n.to_u64(), Some(29234652));
        assert!(word_to_number("h e", Weight::Light).is_none());
        assert!(word_to_number("", Weight::Light).is_none());
    }

    #[test]
    fn hash_is_sqrt() {
        let n = BigUint::from(144u64);
        assert_eq!(hash_number(&n, Weight::Light), 12.0);
    }

    #[test]
    fn heavy_and_light_totals_agree() {
        // The heavy variant does more work but produces the same value, so
        // cross-weight shape comparisons stay meaningful.
        for w in ["abc", "zz9", "q4fzz", "hello"] {
            let light = hash_word(w, Weight::Light).unwrap();
            let heavy = hash_word(w, Weight::Heavy).unwrap();
            assert!((light - heavy).abs() < 1e-9, "{w}: {light} vs {heavy}");
        }
    }

    #[test]
    fn heavy_is_much_slower() {
        let words: Vec<String> = (0..400).map(|i| format!("w{i}xyz")).collect();
        let t0 = Instant::now();
        let mut acc = 0.0;
        for w in &words {
            acc += hash_word(w, Weight::Light).unwrap();
        }
        let light = t0.elapsed();
        let t1 = Instant::now();
        for w in &words {
            acc += hash_word(w, Weight::Heavy).unwrap();
        }
        let heavy = t1.elapsed();
        assert!(acc.is_finite());
        // Expect a large gap; exact 80x depends on the machine, require >5x
        // to keep the test robust under debug builds.
        assert!(
            heavy > light * 5,
            "heavyweight not heavy enough: light={light:?} heavy={heavy:?}"
        );
    }

    #[test]
    fn sum_hash_reduces() {
        assert_eq!(sum_hash(1.5, 2.5), 4.0);
    }
}
