//! Deterministic synthetic corpora.
//!
//! The paper's benchmarks read "lines of text"; the authors' input file is
//! not published, so a seeded generator produces base-36 words of 3–8
//! characters — exactly the alphabet `BigInteger(word, 36)` accepts — which
//! exercises the identical code path.

use gde::Value;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::{Arc, OnceLock};

const ALPHABET: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789";

/// A generated corpus of text lines.
#[derive(Clone, Debug)]
pub struct Corpus {
    lines: Vec<String>,
    /// Lazily-built dynamic form of the lines (see [`Corpus::as_value`]).
    /// Shared across clones: the corpus is immutable input, so the boxed
    /// list is built once per corpus, not once per run.
    as_value: Arc<OnceLock<Value>>,
}

impl Corpus {
    /// Generate `lines` lines of `words_per_line` base-36 words each,
    /// deterministically from `seed`.
    pub fn generate(lines: usize, words_per_line: usize, seed: u64) -> Corpus {
        let mut rng = StdRng::seed_from_u64(seed);
        let lines = (0..lines)
            .map(|_| {
                let words: Vec<String> = (0..words_per_line)
                    .map(|_| {
                        let len = rng.random_range(3..=8);
                        (0..len)
                            .map(|_| ALPHABET[rng.random_range(0..ALPHABET.len())] as char)
                            .collect()
                    })
                    .collect();
                words.join(" ")
            })
            .collect();
        Corpus::from_lines(lines)
    }

    /// Wrap existing lines.
    pub fn from_lines(lines: Vec<String>) -> Corpus {
        Corpus {
            lines,
            as_value: Arc::new(OnceLock::new()),
        }
    }

    /// The text lines.
    pub fn lines(&self) -> &[String] {
        &self.lines
    }

    /// Total number of words.
    pub fn word_count(&self) -> usize {
        self.lines
            .iter()
            .map(|l| l.split_whitespace().count())
            .sum()
    }

    /// The lines as a shared dynamic list (for the embedded suite and the
    /// interpreter: the `static String[] lines` of Fig. 3). Built once per
    /// corpus and cached — Fig. 3's lines are a `static` array, so every
    /// run over the same corpus shares one boxed list instead of
    /// re-allocating a `Value::Str` per line per run.
    pub fn as_value(&self) -> Value {
        self.as_value
            .get_or_init(|| Value::list(self.lines.iter().map(Value::str).collect()))
            .clone()
    }
}

/// Split a line into words (the `splitWords` of Fig. 3:
/// `line::split("\\s+")`).
pub fn split_words(line: &str) -> impl Iterator<Item = &str> {
    line.split_whitespace()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let a = Corpus::generate(10, 5, 99);
        let b = Corpus::generate(10, 5, 99);
        assert_eq!(a.lines(), b.lines());
        let c = Corpus::generate(10, 5, 100);
        assert_ne!(a.lines(), c.lines());
    }

    #[test]
    fn shape_is_as_requested() {
        let c = Corpus::generate(7, 4, 1);
        assert_eq!(c.lines().len(), 7);
        assert_eq!(c.word_count(), 28);
        for line in c.lines() {
            for w in split_words(line) {
                assert!((3..=8).contains(&w.len()));
                assert!(w.bytes().all(|b| ALPHABET.contains(&b)));
            }
        }
    }

    #[test]
    fn words_parse_in_base_36() {
        let c = Corpus::generate(5, 5, 3);
        for line in c.lines() {
            for w in split_words(line) {
                assert!(bigint::BigUint::from_str_radix(w, 36).is_ok());
            }
        }
    }

    #[test]
    fn as_value_is_a_list_of_strings() {
        let c = Corpus::generate(3, 2, 5);
        let v = c.as_value();
        assert_eq!(v.size(), Some(3));
        let l = v.as_list().unwrap().lock().clone();
        assert_eq!(l[0].as_str(), Some(c.lines()[0].as_str()));
    }
}
