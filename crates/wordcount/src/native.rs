//! The native suite — the paper's "Java" comparison programs in plain Rust.
//!
//! Four variants (Sec. VII): sequential; a pipeline "built using
//! BlockingQueues over two threads"; a parallel map-reduce (the
//! parallel-stream baseline Fig. 6 normalizes to); and a data-parallel
//! version that is map-only in parallel with the reduction split out and
//! serialized.

use crate::corpus::split_words;
use crate::hash::{hash_number, sum_hash, word_to_number, Weight};
use bigint::BigUint;
use blockingq::BlockingQueue;
use exec::ThreadPool;
use std::sync::Arc;

/// Chunk size used by the chunked variants, as in Fig. 3's
/// `new DataParallel(1000)`.
pub const CHUNK_SIZE: usize = 1000;

/// Queue capacity for the pipelined variant.
pub const PIPE_CAPACITY: usize = 1024;

/// Sequential word-count: split, parse, hash, sum — one thread.
pub fn sequential(lines: &[String], weight: Weight) -> f64 {
    lines
        .iter()
        .flat_map(|l| split_words(l))
        .filter_map(|w| word_to_number(w, weight))
        .map(|n| hash_number(&n, weight))
        .fold(0.0, sum_hash)
}

/// Two-thread pipeline over a bounded blocking queue: the producer splits
/// and parses (`wordToNumber`), the consumer hashes and sums
/// (`hashNumber` + reduction) — "a pipelined version built using
/// BlockingQueues over two threads".
pub fn pipeline(lines: &[String], weight: Weight) -> f64 {
    pipeline_with_capacity(lines, weight, PIPE_CAPACITY)
}

/// [`pipeline`] with an explicit queue bound (for the throttling ablation).
pub fn pipeline_with_capacity(lines: &[String], weight: Weight, capacity: usize) -> f64 {
    let queue: BlockingQueue<BigUint> = BlockingQueue::bounded(capacity);
    let q2 = queue.clone();
    // Stage 1 thread: readLines -> splitWords -> wordToNumber.
    let lines: Vec<String> = lines.to_vec();
    let producer = std::thread::spawn(move || {
        for line in &lines {
            for word in split_words(line) {
                if let Some(n) = word_to_number(word, weight) {
                    if q2.put(n).is_err() {
                        return;
                    }
                }
            }
        }
        q2.close();
    });
    // Stage 2 (this thread): hashNumber + sum.
    let mut total = 0.0;
    while let Some(n) = queue.take() {
        total = sum_hash(total, hash_number(&n, weight));
    }
    producer.join().expect("pipeline producer panicked");
    total
}

/// Parallel map-reduce over chunks on a thread pool — the parallel-stream
/// analogue Fig. 6 normalizes against. Each task maps *and reduces* its
/// chunk; the per-chunk partials are combined in order.
pub fn map_reduce(lines: &[String], weight: Weight) -> f64 {
    map_reduce_on(lines, weight, CHUNK_SIZE, &default_pool())
}

/// [`map_reduce`] with explicit chunk size and pool (scaling ablations).
pub fn map_reduce_on(
    lines: &[String],
    weight: Weight,
    chunk_size: usize,
    pool: &ThreadPool,
) -> f64 {
    let tasks: Vec<exec::Task<f64>> = lines
        .chunks(chunk_size.max(1))
        .map(|chunk| {
            let chunk: Vec<String> = chunk.to_vec();
            pool.submit(move || {
                chunk
                    .iter()
                    .flat_map(|l| split_words(l))
                    .filter_map(|w| word_to_number(w, weight))
                    .map(|n| hash_number(&n, weight))
                    .fold(0.0, sum_hash)
            })
        })
        .collect();
    tasks.into_iter().map(|t| t.join()).fold(0.0, sum_hash)
}

/// Data-parallel variant: tasks only *map* their chunk (returning every
/// per-word hash); the reduction runs serially over the flattened,
/// order-preserved results — "splitting out the reduction and effecting
/// serialization".
pub fn data_parallel(lines: &[String], weight: Weight) -> f64 {
    data_parallel_on(lines, weight, CHUNK_SIZE, &default_pool())
}

/// [`data_parallel`] with explicit chunk size and pool.
pub fn data_parallel_on(
    lines: &[String],
    weight: Weight,
    chunk_size: usize,
    pool: &ThreadPool,
) -> f64 {
    let tasks: Vec<exec::Task<Vec<f64>>> = lines
        .chunks(chunk_size.max(1))
        .map(|chunk| {
            let chunk: Vec<String> = chunk.to_vec();
            pool.submit(move || {
                chunk
                    .iter()
                    .flat_map(|l| split_words(l))
                    .filter_map(|w| word_to_number(w, weight))
                    .map(|n| hash_number(&n, weight))
                    .collect()
            })
        })
        .collect();
    // Serial reduction over the in-order flattened stream.
    let mut total = 0.0;
    for t in tasks {
        for h in t.join() {
            total = sum_hash(total, h);
        }
    }
    total
}

fn default_pool() -> Arc<ThreadPool> {
    let n = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(4);
    Arc::new(ThreadPool::new(n))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::Corpus;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() <= a.abs().max(b.abs()) * 1e-9
    }

    #[test]
    fn sequential_known_small_case() {
        // "10 z" -> 36 and 35 -> 6 + sqrt(35).
        let lines = vec!["10 z".to_string()];
        let got = sequential(&lines, Weight::Light);
        assert!(close(got, 6.0 + 35f64.sqrt()));
    }

    #[test]
    fn unparsable_words_are_skipped() {
        // '_' is not a base-36 digit; word contributes nothing.
        let lines = vec!["zz a_b 10".to_string()];
        let got = sequential(&lines, Weight::Light);
        let expect = (35f64 * 36.0 + 35.0).sqrt() + 6.0;
        assert!(close(got, expect), "{got} vs {expect}");
    }

    #[test]
    fn pipeline_matches_sequential() {
        let c = Corpus::generate(50, 10, 11);
        let seq = sequential(c.lines(), Weight::Light);
        let pipe = pipeline(c.lines(), Weight::Light);
        assert!(close(seq, pipe));
    }

    #[test]
    fn pipeline_tiny_capacity_still_correct() {
        let c = Corpus::generate(20, 6, 12);
        let seq = sequential(c.lines(), Weight::Light);
        assert!(close(
            seq,
            pipeline_with_capacity(c.lines(), Weight::Light, 1)
        ));
    }

    #[test]
    fn map_reduce_matches_sequential() {
        let c = Corpus::generate(30, 10, 13);
        let seq = sequential(c.lines(), Weight::Light);
        let pool = ThreadPool::new(4);
        let mr = map_reduce_on(c.lines(), Weight::Light, 7, &pool);
        assert!(close(seq, mr));
    }

    #[test]
    fn data_parallel_matches_sequential_bitwise() {
        // Data-parallel reduces serially in element order: the sum is the
        // *same association* as sequential, so equality is exact.
        let c = Corpus::generate(30, 10, 14);
        let seq = sequential(c.lines(), Weight::Light);
        let pool = ThreadPool::new(4);
        let dp = data_parallel_on(c.lines(), Weight::Light, 7, &pool);
        assert_eq!(seq, dp);
    }

    #[test]
    fn empty_corpus_sums_to_zero() {
        let lines: Vec<String> = Vec::new();
        assert_eq!(sequential(&lines, Weight::Light), 0.0);
        assert_eq!(pipeline(&lines, Weight::Light), 0.0);
        assert_eq!(map_reduce(&lines, Weight::Light), 0.0);
        assert_eq!(data_parallel(&lines, Weight::Light), 0.0);
    }

    #[test]
    fn chunk_size_larger_than_input() {
        let c = Corpus::generate(3, 3, 15);
        let pool = ThreadPool::new(2);
        let seq = sequential(c.lines(), Weight::Light);
        assert!(close(
            seq,
            map_reduce_on(c.lines(), Weight::Light, 10_000, &pool)
        ));
    }
}
