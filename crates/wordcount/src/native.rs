//! The native suite — the paper's "Java" comparison programs in plain Rust.
//!
//! Four variants (Sec. VII): sequential; a pipeline "built using
//! BlockingQueues over two threads"; a parallel map-reduce (the
//! parallel-stream baseline Fig. 6 normalizes to); and a data-parallel
//! version that is map-only in parallel with the reduction split out and
//! serialized.

use crate::corpus::split_words;
use crate::hash::{hash_number, sum_hash, word_to_number, Weight};
use bigint::BigUint;
use blockingq::BlockingQueue;
use exec::ThreadPool;
use std::sync::Arc;

/// Chunk size used by the chunked variants, as in Fig. 3's
/// `new DataParallel(1000)`.
pub const CHUNK_SIZE: usize = 1000;

/// Queue capacity for the pipelined variant.
pub const PIPE_CAPACITY: usize = 1024;

/// Transport batch for the pipelined variant: parsed numbers cross the
/// inter-stage queue in chunks of this many per lock acquisition
/// (mirrors `pipes::DEFAULT_BATCH`).
pub const PIPE_BATCH: usize = 128;

/// Sequential word-count: split, parse, hash, sum — one thread.
pub fn sequential(lines: &[String], weight: Weight) -> f64 {
    lines
        .iter()
        .flat_map(|l| split_words(l))
        .filter_map(|w| word_to_number(w, weight))
        .map(|n| hash_number(&n, weight))
        .fold(0.0, sum_hash)
}

/// Two-thread pipeline over a bounded blocking queue: the producer splits
/// and parses (`wordToNumber`), the consumer hashes and sums
/// (`hashNumber` + reduction) — "a pipelined version built using
/// BlockingQueues over two threads".
pub fn pipeline(lines: &[String], weight: Weight) -> f64 {
    pipeline_with_capacity(lines, weight, PIPE_CAPACITY)
}

/// [`pipeline`] with an explicit queue bound (for the throttling ablation).
pub fn pipeline_with_capacity(lines: &[String], weight: Weight, capacity: usize) -> f64 {
    pipeline_batched(lines, weight, capacity, PIPE_BATCH)
}

/// [`pipeline`] with explicit queue bound *and* transport batch: the
/// producer accumulates up to `batch` parsed numbers before a single
/// `put_all`, and the consumer empties the queue with `drain_into`
/// (whole-buffer grabs) — the batched-transport analogue of the paper's
/// two-thread BlockingQueue pipeline. `batch` is clamped to
/// `[1, capacity]`; `batch == 1` reproduces the item-at-a-time transport.
pub fn pipeline_batched(lines: &[String], weight: Weight, capacity: usize, batch: usize) -> f64 {
    let batch = batch.clamp(1, capacity.max(1));
    let queue: BlockingQueue<BigUint> = BlockingQueue::bounded(capacity);
    let q2 = queue.clone();
    // Stage 1 thread: readLines -> splitWords -> wordToNumber, moved
    // downstream one chunk per queue transaction.
    let lines: Vec<String> = lines.to_vec();
    let producer = std::thread::spawn(move || {
        let mut chunk: Vec<BigUint> = Vec::with_capacity(batch);
        for line in &lines {
            for word in split_words(line) {
                if let Some(n) = word_to_number(word, weight) {
                    chunk.push(n);
                    if chunk.len() >= batch && q2.put_all(std::mem::take(&mut chunk)).is_err() {
                        return;
                    }
                }
            }
        }
        let _ = q2.put_all(chunk);
        q2.close();
    });
    // Stage 2 (this thread): hashNumber + sum, one queue transaction per
    // buffered burst.
    let mut total = 0.0;
    let mut buf: Vec<BigUint> = Vec::new();
    while queue.drain_into(&mut buf) > 0 {
        for n in buf.drain(..) {
            total = sum_hash(total, hash_number(&n, weight));
        }
    }
    producer.join().expect("pipeline producer panicked");
    total
}

/// Fan-in word-count: the corpus is split into `sources` contiguous
/// slices, each parsed *and hashed* on its own producer thread; per-word
/// hashes arrive tagged with their source index through one shared
/// batched queue, are re-bucketed per source, and reduced in source order
/// — so the fold association is **identical to [`sequential`]** (the sum
/// is byte-for-byte equal) while every hop uses the batched transport.
pub fn fan_in(
    lines: &[String],
    weight: Weight,
    sources: usize,
    capacity: usize,
    batch: usize,
) -> f64 {
    let sources = sources.max(1);
    let capacity = capacity.max(1);
    let batch = batch.clamp(1, capacity);
    let queue: BlockingQueue<(usize, f64)> = BlockingQueue::bounded(capacity);
    let slice_len = lines.len().div_ceil(sources);
    let remaining = Arc::new(std::sync::atomic::AtomicUsize::new(sources));
    let mut producers = Vec::new();
    for k in 0..sources {
        let q = queue.clone();
        let remaining = Arc::clone(&remaining);
        let slice: Vec<String> = lines
            .iter()
            .skip(k * slice_len)
            .take(slice_len)
            .cloned()
            .collect();
        producers.push(std::thread::spawn(move || {
            let mut chunk: Vec<(usize, f64)> = Vec::with_capacity(batch);
            'produce: for line in &slice {
                for word in split_words(line) {
                    if let Some(n) = word_to_number(word, weight) {
                        chunk.push((k, hash_number(&n, weight)));
                        if chunk.len() >= batch && q.put_all(std::mem::take(&mut chunk)).is_err() {
                            break 'produce;
                        }
                    }
                }
            }
            let _ = q.put_all(chunk);
            // Last producer out closes the shared queue.
            if remaining.fetch_sub(1, std::sync::atomic::Ordering::AcqRel) == 1 {
                q.close();
            }
        }));
    }
    // Consumer: bucket arrivals per source (per-producer FIFO keeps each
    // bucket in slice order), then reduce buckets in source order — the
    // same hash sequence, and therefore the same float association, as
    // the sequential fold.
    let mut buckets: Vec<Vec<f64>> = vec![Vec::new(); sources];
    let mut buf: Vec<(usize, f64)> = Vec::new();
    while queue.drain_into(&mut buf) > 0 {
        for (k, h) in buf.drain(..) {
            buckets[k].push(h);
        }
    }
    for p in producers {
        p.join().expect("fan-in producer panicked");
    }
    let mut total = 0.0;
    for bucket in buckets {
        for h in bucket {
            total = sum_hash(total, h);
        }
    }
    total
}

/// Parallel map-reduce over chunks on a thread pool — the parallel-stream
/// analogue Fig. 6 normalizes against. Each task maps *and reduces* its
/// chunk; the per-chunk partials are combined in order.
pub fn map_reduce(lines: &[String], weight: Weight) -> f64 {
    map_reduce_on(lines, weight, CHUNK_SIZE, &default_pool())
}

/// [`map_reduce`] with explicit chunk size and pool (scaling ablations).
pub fn map_reduce_on(
    lines: &[String],
    weight: Weight,
    chunk_size: usize,
    pool: &ThreadPool,
) -> f64 {
    let tasks: Vec<exec::Task<f64>> = lines
        .chunks(chunk_size.max(1))
        .map(|chunk| {
            let chunk: Vec<String> = chunk.to_vec();
            // try_submit: a shut-down pool degrades to inline
            // execution instead of panicking mid-scan.
            match pool.try_submit(move || {
                chunk
                    .iter()
                    .flat_map(|l| split_words(l))
                    .filter_map(|w| word_to_number(w, weight))
                    .map(|n| hash_number(&n, weight))
                    .fold(0.0, sum_hash)
            }) {
                Ok(task) => task,
                Err(rejected) => rejected.run_inline(),
            }
        })
        .collect();
    tasks.into_iter().map(|t| t.join()).fold(0.0, sum_hash)
}

/// Data-parallel variant: tasks only *map* their chunk (returning every
/// per-word hash); the reduction runs serially over the flattened,
/// order-preserved results — "splitting out the reduction and effecting
/// serialization".
pub fn data_parallel(lines: &[String], weight: Weight) -> f64 {
    data_parallel_on(lines, weight, CHUNK_SIZE, &default_pool())
}

/// [`data_parallel`] with explicit chunk size and pool.
pub fn data_parallel_on(
    lines: &[String],
    weight: Weight,
    chunk_size: usize,
    pool: &ThreadPool,
) -> f64 {
    let tasks: Vec<exec::Task<Vec<f64>>> = lines
        .chunks(chunk_size.max(1))
        .map(|chunk| {
            let chunk: Vec<String> = chunk.to_vec();
            match pool.try_submit(move || {
                chunk
                    .iter()
                    .flat_map(|l| split_words(l))
                    .filter_map(|w| word_to_number(w, weight))
                    .map(|n| hash_number(&n, weight))
                    .collect()
            }) {
                Ok(task) => task,
                Err(rejected) => rejected.run_inline(),
            }
        })
        .collect();
    // Serial reduction over the in-order flattened stream.
    let mut total = 0.0;
    for t in tasks {
        for h in t.join() {
            total = sum_hash(total, h);
        }
    }
    total
}

/// Word-frequency report: one `word=count` line per distinct word, in
/// first-appearance order — the plain-Rust reference the embedded
/// string-plane variant ([`crate::embedded::frequency_report`]) must
/// match byte-for-byte.
pub fn frequency_report(lines: &[String]) -> Vec<String> {
    let mut counts: std::collections::HashMap<&str, i64> = std::collections::HashMap::new();
    for line in lines {
        for w in split_words(line) {
            *counts.entry(w).or_insert(0) += 1;
        }
    }
    let mut seen = std::collections::HashSet::new();
    let mut report = Vec::new();
    for line in lines {
        for w in split_words(line) {
            if seen.insert(w) {
                report.push(format!("{w}={}", counts[w]));
            }
        }
    }
    report
}

fn default_pool() -> Arc<ThreadPool> {
    let n = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(4);
    Arc::new(ThreadPool::new(n))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::Corpus;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() <= a.abs().max(b.abs()) * 1e-9
    }

    #[test]
    fn sequential_known_small_case() {
        // "10 z" -> 36 and 35 -> 6 + sqrt(35).
        let lines = vec!["10 z".to_string()];
        let got = sequential(&lines, Weight::Light);
        assert!(close(got, 6.0 + 35f64.sqrt()));
    }

    #[test]
    fn unparsable_words_are_skipped() {
        // '_' is not a base-36 digit; word contributes nothing.
        let lines = vec!["zz a_b 10".to_string()];
        let got = sequential(&lines, Weight::Light);
        let expect = (35f64 * 36.0 + 35.0).sqrt() + 6.0;
        assert!(close(got, expect), "{got} vs {expect}");
    }

    #[test]
    fn pipeline_matches_sequential() {
        let c = Corpus::generate(50, 10, 11);
        let seq = sequential(c.lines(), Weight::Light);
        let pipe = pipeline(c.lines(), Weight::Light);
        assert!(close(seq, pipe));
    }

    #[test]
    fn pipeline_tiny_capacity_still_correct() {
        let c = Corpus::generate(20, 6, 12);
        let seq = sequential(c.lines(), Weight::Light);
        assert!(close(
            seq,
            pipeline_with_capacity(c.lines(), Weight::Light, 1)
        ));
    }

    #[test]
    fn pipeline_batched_across_batches() {
        let c = Corpus::generate(40, 8, 16);
        let seq = sequential(c.lines(), Weight::Light);
        for batch in [1, 2, 7, 64] {
            let got = pipeline_batched(c.lines(), Weight::Light, 16, batch);
            // Pipeline preserves element order and reduces downstream with
            // the sequential association: equality is exact.
            assert_eq!(seq, got, "batch {batch} changed the pipeline sum");
        }
    }

    #[test]
    fn fan_in_is_bitwise_sequential() {
        let c = Corpus::generate(40, 8, 17);
        let seq = sequential(c.lines(), Weight::Light);
        for sources in [1, 3, 4] {
            for batch in [1, 2, 7, 64] {
                let got = fan_in(c.lines(), Weight::Light, sources, 16, batch);
                assert_eq!(seq, got, "sources {sources} batch {batch} diverged");
            }
        }
    }

    #[test]
    fn fan_in_empty_and_oversubscribed() {
        let lines: Vec<String> = Vec::new();
        assert_eq!(fan_in(&lines, Weight::Light, 4, 8, 2), 0.0);
        let c = Corpus::generate(2, 4, 18);
        let seq = sequential(c.lines(), Weight::Light);
        assert_eq!(seq, fan_in(c.lines(), Weight::Light, 8, 8, 3));
    }

    #[test]
    fn map_reduce_matches_sequential() {
        let c = Corpus::generate(30, 10, 13);
        let seq = sequential(c.lines(), Weight::Light);
        let pool = ThreadPool::new(4);
        let mr = map_reduce_on(c.lines(), Weight::Light, 7, &pool);
        assert!(close(seq, mr));
    }

    #[test]
    fn data_parallel_matches_sequential_bitwise() {
        // Data-parallel reduces serially in element order: the sum is the
        // *same association* as sequential, so equality is exact.
        let c = Corpus::generate(30, 10, 14);
        let seq = sequential(c.lines(), Weight::Light);
        let pool = ThreadPool::new(4);
        let dp = data_parallel_on(c.lines(), Weight::Light, 7, &pool);
        assert_eq!(seq, dp);
    }

    #[test]
    fn empty_corpus_sums_to_zero() {
        let lines: Vec<String> = Vec::new();
        assert_eq!(sequential(&lines, Weight::Light), 0.0);
        assert_eq!(pipeline(&lines, Weight::Light), 0.0);
        assert_eq!(map_reduce(&lines, Weight::Light), 0.0);
        assert_eq!(data_parallel(&lines, Weight::Light), 0.0);
    }

    #[test]
    fn chunk_size_larger_than_input() {
        let c = Corpus::generate(3, 3, 15);
        let pool = ThreadPool::new(2);
        let seq = sequential(c.lines(), Weight::Light);
        assert!(close(
            seq,
            map_reduce_on(c.lines(), Weight::Light, 10_000, &pool)
        ));
    }
}
