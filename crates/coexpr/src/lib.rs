//! Co-expressions: first-class generators with environment shadowing.
//!
//! This crate implements the co-expression half of the paper's calculus for
//! concurrent generators (Fig. 1):
//!
//! | Form | Meaning | Here |
//! |---|---|---|
//! | `<> e`  | first-class generator | [`CoExpr::first_class`] / [`create`] |
//! | `\|<> e` | co-expression shadowing the local environment | [`CoExpr::shadowed`] / [`create_shadowed`] |
//! | `@ c`   | step one iteration | [`activate`] |
//! | `! c`   | promote back to a generator | [`promote_co`] |
//! | `^ c`   | restart with a new copy of the local environment | [`refresh`] |
//!
//! A co-expression is "similar to a first-class iterator, but in addition
//! creates a copy of its local environment, i.e., it shadows any referenced
//! method local variables and parameters" (Sec. III.A). The shadow is taken
//! once at creation ([`gde::env::Env::shadow`]); `^c` takes a fresh copy of
//! the *creation-time* snapshot, so refreshed co-expressions restart from
//! pristine values even if the previous activation mutated its locals.
//!
//! Because the whole [`gde::Gen`] tree is already suspendable and
//! resumable, coroutine activation needs no native stack switching: `@c` is
//! simply a `resume` of the co-expression's body iterator, and interleaving
//! two co-expressions is alternating `@` on them — the same implementation
//! strategy the paper uses when translating to Java ("implement it without
//! multithreading", Sec. VIII).

use gde::env::Env;
use gde::{BoxGen, CoRef, Coroutine, Gen, Step, Value};
use parking_lot::Mutex;
use std::sync::Arc;

type BodyFn = dyn Fn(&Env) -> BoxGen + Send + Sync;

/// A co-expression: a restartable, refreshable coroutine over a generator
/// body.
pub struct CoExpr {
    /// Creation-time snapshot of the shadowed locals; never exposed to the
    /// body, used only as the source for refreshes.
    pristine: Env,
    /// The environment the current body runs in (a copy of `pristine`).
    working: Env,
    body: Arc<BodyFn>,
    cur: Option<BoxGen>,
    produced: u64,
    done: bool,
}

impl CoExpr {
    /// `<>e`: a first-class generator with no environment shadowing — the
    /// body closure captures whatever it captures, shared.
    pub fn first_class(make: impl Fn() -> BoxGen + Send + Sync + 'static) -> CoExpr {
        let env = Env::root();
        CoExpr::build(env, Arc::new(move |_| make()))
    }

    /// `|<>e`: a co-expression that shadows `env`'s local frame. The body
    /// builder receives the shadowed environment and must resolve its
    /// variables through it.
    pub fn shadowed(env: &Env, body: impl Fn(&Env) -> BoxGen + Send + Sync + 'static) -> CoExpr {
        CoExpr::build(env.shadow(), Arc::new(body))
    }

    fn build(pristine: Env, body: Arc<BodyFn>) -> CoExpr {
        let working = pristine.shadow();
        CoExpr {
            pristine,
            working,
            body,
            cur: None,
            produced: 0,
            done: false,
        }
    }

    /// Wrap into a shared [`CoRef`] handle (the representation used inside
    /// [`Value::Co`]).
    pub fn into_ref(self) -> CoRef {
        Arc::new(Mutex::new(self))
    }

    /// Wrap into a [`Value`].
    pub fn into_value(self) -> Value {
        Value::Co(self.into_ref())
    }

    /// The environment the body is currently running in (test hook).
    pub fn working_env(&self) -> &Env {
        &self.working
    }
}

impl Coroutine for CoExpr {
    fn step(&mut self) -> Option<Value> {
        if self.done {
            return None;
        }
        let cur = self.cur.get_or_insert_with(|| (self.body)(&self.working));
        match cur.resume() {
            Step::Suspend(v) => {
                self.produced += 1;
                Some(v)
            }
            Step::Fail => {
                self.done = true;
                None
            }
        }
    }

    fn restart(&mut self) {
        // Plain restart: same working environment, iteration from the top.
        if let Some(cur) = &mut self.cur {
            cur.restart();
        }
        self.done = false;
        self.produced = 0;
    }

    fn refreshed(&self) -> Option<CoRef> {
        // ^c: a brand-new co-expression over a fresh copy of the pristine
        // creation-time environment.
        Some(CoExpr::build(self.pristine.shadow(), Arc::clone(&self.body)).into_ref())
    }

    fn produced(&self) -> u64 {
        self.produced
    }
}

/// `<>e` as a [`Value`].
pub fn create(make: impl Fn() -> BoxGen + Send + Sync + 'static) -> Value {
    CoExpr::first_class(make).into_value()
}

/// `|<>e` as a [`Value`].
pub fn create_shadowed(env: &Env, body: impl Fn(&Env) -> BoxGen + Send + Sync + 'static) -> Value {
    CoExpr::shadowed(env, body).into_value()
}

/// `@c`: step the co-expression held by `v` one iteration. Fails (`None`)
/// when `v` is not a co-expression or the co-expression is exhausted.
pub fn activate(v: &Value) -> Option<Value> {
    match v.deref() {
        Value::Co(c) => c.lock().step(),
        _ => None,
    }
}

/// `^c`: a refreshed copy with a new copy of the creation-time environment.
pub fn refresh(v: &Value) -> Option<Value> {
    match v.deref() {
        Value::Co(c) => {
            let refreshed = c.lock().refreshed()?;
            Some(Value::Co(refreshed))
        }
        _ => None,
    }
}

/// `!c`: promote a co-expression (or any promotable value) back to a
/// generator: `!e → repeatUntilFailure(suspend @e)`.
pub fn promote_co(v: Value) -> BoxGen {
    Box::new(gde::comb::promote_value(v))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gde::comb::thunk;
    use gde::comb::to_range;
    use gde::ops;
    use gde::GenExt;

    #[test]
    fn first_class_stepping() {
        let co = create(|| Box::new(to_range(1, 3, 1)));
        assert_eq!(activate(&co).unwrap().as_int(), Some(1));
        assert_eq!(activate(&co).unwrap().as_int(), Some(2));
        assert_eq!(activate(&co).unwrap().as_int(), Some(3));
        assert_eq!(activate(&co), None);
        assert_eq!(activate(&co), None); // stays failed
    }

    #[test]
    fn activate_non_coexpression_fails() {
        assert_eq!(activate(&Value::from(5)), None);
        assert_eq!(activate(&Value::Null), None);
    }

    #[test]
    fn produced_counts_results() {
        let co = create(|| Box::new(to_range(1, 10, 1)));
        activate(&co);
        activate(&co);
        assert_eq!(co.size(), Some(2)); // *c = results produced so far
    }

    #[test]
    fn interleaving_two_coroutines() {
        // The classic coroutine pattern: alternate stepping two generators.
        let evens = create(|| Box::new(to_range(0, 100, 2)));
        let odds = create(|| Box::new(to_range(1, 101, 2)));
        let mut merged = Vec::new();
        for _ in 0..4 {
            merged.push(activate(&evens).unwrap().as_int().unwrap());
            merged.push(activate(&odds).unwrap().as_int().unwrap());
        }
        assert_eq!(merged, vec![0, 1, 2, 3, 4, 5, 6, 7]);
    }

    #[test]
    fn shadowing_prevents_interference() {
        // x := 10; c := |<>(x + 1); x := 99 — activation must see 10.
        let env = Env::root();
        env.declare("x", Value::from(10));
        let co = create_shadowed(&env, |e| {
            let x = e.lookup("x").expect("shadowed");
            Box::new(thunk(move || ops::add(&x.get(), &Value::from(1))))
        });
        env.set("x", Value::from(99));
        assert_eq!(activate(&co).unwrap().as_int(), Some(11));
    }

    #[test]
    fn shadowed_writes_do_not_leak_out() {
        let env = Env::root();
        env.declare("n", Value::from(0));
        let co = create_shadowed(&env, |e| {
            let n = e.lookup("n").expect("shadowed");
            Box::new(thunk(move || {
                n.set(Value::from(77));
                Some(n.get())
            }))
        });
        assert_eq!(activate(&co).unwrap().as_int(), Some(77));
        assert_eq!(env.get("n").as_int(), Some(0));
    }

    #[test]
    fn refresh_resets_to_creation_values() {
        // A stateful counter co-expression; refresh rewinds it.
        let env = Env::root();
        env.declare("n", Value::from(0));
        let make = |e: &Env| -> BoxGen {
            let n = e.lookup("n").expect("shadowed");
            Box::new(gde::comb::repeat_alt(thunk(move || {
                let next = ops::add(&n.get(), &Value::from(1))?;
                n.set(next.clone());
                Some(next)
            })))
        };
        let co = create_shadowed(&env, make);
        assert_eq!(activate(&co).unwrap().as_int(), Some(1));
        assert_eq!(activate(&co).unwrap().as_int(), Some(2));
        let fresh = refresh(&co).expect("refreshable");
        assert_eq!(activate(&fresh).unwrap().as_int(), Some(1)); // reset
        assert_eq!(activate(&co).unwrap().as_int(), Some(3)); // original unaffected
    }

    #[test]
    fn refresh_of_non_co_fails() {
        assert!(refresh(&Value::from(1)).is_none());
    }

    #[test]
    fn promote_unravels_to_generator() {
        let co = create(|| Box::new(to_range(5, 7, 1)));
        let mut g = promote_co(co);
        let vals: Vec<i64> = g
            .collect_values()
            .iter()
            .map(|v| v.as_int().unwrap())
            .collect();
        assert_eq!(vals, vec![5, 6, 7]);
    }

    #[test]
    fn promote_partially_consumed_continues() {
        let co = create(|| Box::new(to_range(1, 4, 1)));
        activate(&co); // consume 1
        let mut g = promote_co(co);
        let vals: Vec<i64> = g
            .collect_values()
            .iter()
            .map(|v| v.as_int().unwrap())
            .collect();
        assert_eq!(vals, vec![2, 3, 4]);
    }

    #[test]
    fn coroutine_restart_vs_refresh() {
        let co_val = create(|| Box::new(to_range(1, 2, 1)));
        activate(&co_val);
        activate(&co_val);
        assert_eq!(activate(&co_val), None);
        if let Value::Co(c) = &co_val {
            c.lock().restart();
        }
        assert_eq!(activate(&co_val).unwrap().as_int(), Some(1));
    }

    #[test]
    fn refresh_isolates_working_environments() {
        // Two refreshes of the same co-expression have independent locals.
        let env = Env::root();
        env.declare("n", Value::from(0));
        let body = |e: &Env| -> BoxGen {
            let n = e.lookup("n").expect("shadowed");
            Box::new(gde::comb::repeat_alt(thunk(move || {
                let next = ops::add(&n.get(), &Value::from(1))?;
                n.set(next.clone());
                Some(next)
            })))
        };
        let co = create_shadowed(&env, body);
        let a = refresh(&co).unwrap();
        let b = refresh(&co).unwrap();
        assert_eq!(activate(&a).unwrap().as_int(), Some(1));
        assert_eq!(activate(&a).unwrap().as_int(), Some(2));
        assert_eq!(activate(&b).unwrap().as_int(), Some(1));
    }
}
