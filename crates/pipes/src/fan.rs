//! Fan-in combinators over multiple pipes.
//!
//! The paper's calculus composes pipes one at a time; real pipelines often
//! fan several producers into one consumer. Two disciplines are provided,
//! matching the two orderings a goal-directed program can want:
//!
//! * [`merge`] — *arrival order*: values are forwarded to a shared queue as
//!   each producer makes them, so the consumer sees an interleaving
//!   determined by runtime speed (maximum throughput, no ordering);
//! * [`round_robin`] — *deterministic interleave*: one value from each
//!   source in turn (skipping exhausted ones), the ordered analogue of
//!   alternately activating co-expressions with `@`.

use blockingq::{BlockingQueue, CloseCause, Fault};
#[cfg(test)]
use gde::GenExt;
use gde::{BoxGen, Gen, Step, Value};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

/// Fairness cap on the per-source transport batch in [`merge`]: however
/// large a batch is requested, no single source may move more than this
/// many values per queue transaction, so one fast producer cannot
/// monopolize arbitrarily long runs of the arrival-order stream while the
/// others are starved of queue space.
pub const MERGE_BATCH_FAIRNESS_CAP: usize = 8;

/// What a [`merge`] fan-in does when one of its source producers faults
/// (panics). Either way the panic is contained in the source's thread and
/// the source's clean prefix is still delivered.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum FanPolicy {
    /// Default: the first fault cancels the whole fan-in — the shared
    /// queue closes `Failed(Fault)` (cancelling the sibling producers,
    /// whose next put fails) and the consumer's next `resume` surfaces
    /// the fault by panicking.
    #[default]
    FailFast,
    /// Drop the faulted source and keep merging the survivors: the
    /// stream ends cleanly when the remaining sources are exhausted, and
    /// [`Merge::degraded_sources`] (plus the
    /// `pipes.faults.degraded_sources` counter) reports how many sources
    /// were lost.
    Degrade,
}

/// Merge several generator factories into one generator, each running on
/// its own producer thread, values in arrival order. The stream ends when
/// every producer has failed.
///
/// The default transport is item-at-a-time (`batch == 1`), preserving the
/// finest arrival-order interleaving; [`Merge::with_batch`] enables
/// chunked transport (capped by [`MERGE_BATCH_FAIRNESS_CAP`] per source).
pub fn merge(sources: Vec<Box<dyn Fn() -> BoxGen + Send + Sync>>, capacity: usize) -> Merge {
    Merge {
        sources,
        capacity,
        batch: 1,
        policy: FanPolicy::default(),
        state: None,
        fault: None,
        failed: false,
    }
}

pub struct Merge {
    sources: Vec<Box<dyn Fn() -> BoxGen + Send + Sync>>,
    capacity: usize,
    batch: usize,
    policy: FanPolicy,
    state: Option<MergeState>,
    /// The fault that cancelled the fan-in (`FailFast` only).
    fault: Option<Fault>,
    /// Set once a fault has been surfaced: later resumes report
    /// end-of-stream instead of re-spawning the producers.
    failed: bool,
}

struct MergeState {
    queue: BlockingQueue<Value>,
    /// Sources dropped by [`FanPolicy::Degrade`] in this run.
    degraded: Arc<parking_lot::sync::atomic::AtomicUsize>,
}

impl Merge {
    /// Builder-style transport batch: each source producer accumulates up
    /// to `batch` values (clamped to `[1, MERGE_BATCH_FAIRNESS_CAP]` and
    /// to the shared queue capacity) and moves them in one `put_all`.
    /// Chunks from different sources never interleave *within* a chunk,
    /// so per-source FIFO order is preserved; the cap keeps round-robin-ish
    /// arrival fairness honest. Takes effect immediately: if producers are
    /// already running with the old batch, their queue is closed and the
    /// next `resume` respawns them with the new one (the stream restarts
    /// from the top, exactly like [`Gen::restart`]).
    pub fn with_batch(mut self, batch: usize) -> Merge {
        self.batch = batch
            .clamp(1, MERGE_BATCH_FAIRNESS_CAP)
            .min(self.capacity.max(1));
        if let Some(st) = self.state.take() {
            st.queue.close();
        }
        self
    }

    /// The per-source transport batch in effect (post-clamping).
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// Builder-style fault policy. Takes effect on the next (re)spawn:
    /// like [`Merge::with_batch`], setting it after the producers are
    /// running closes the stale state so the next `resume` restarts the
    /// stream under the new policy.
    pub fn with_policy(mut self, policy: FanPolicy) -> Merge {
        self.policy = policy;
        if let Some(st) = self.state.take() {
            st.queue.close();
        }
        self
    }

    /// The fault policy in effect.
    pub fn policy(&self) -> FanPolicy {
        self.policy
    }

    /// The fault that cancelled the fan-in, if any (`FailFast` only;
    /// `Degrade` never cancels). Reset by [`Gen::restart`].
    pub fn fault(&self) -> Option<&Fault> {
        self.fault.as_ref()
    }

    /// Sources dropped by [`FanPolicy::Degrade`] since the last
    /// (re)spawn.
    pub fn degraded_sources(&self) -> usize {
        self.state
            .as_ref()
            .map(|st| {
                st.degraded
                    .load(parking_lot::sync::atomic::Ordering::Acquire)
            })
            .unwrap_or(0)
    }

    fn start(&mut self) -> &MergeState {
        if self.state.is_none() {
            let queue = BlockingQueue::bounded(self.capacity.max(1));
            // Atomics and spawns go through the parking_lot shim so merge
            // producers are virtual threads under --cfg schedtest.
            let remaining = std::sync::Arc::new(parking_lot::sync::atomic::AtomicUsize::new(
                self.sources.len(),
            ));
            let degraded = std::sync::Arc::new(parking_lot::sync::atomic::AtomicUsize::new(0));
            if self.sources.is_empty() {
                queue.close();
            }
            let batch = self.batch.min(self.capacity.max(1)).max(1);
            for (idx, src) in self.sources.iter().enumerate() {
                let mut g = src();
                let q = queue.clone();
                let remaining = remaining.clone();
                let degraded = degraded.clone();
                let policy = self.policy;
                let label: Arc<str> = Arc::from(format!("merge-source-{idx}"));
                obs_on!(crate::stats::fan().merge_sources.inc(););
                parking_lot::thread::Builder::new()
                    .name(format!("fan-merge-producer-{idx}"))
                    .spawn(move || {
                        // Departure guard: flushes the source's clean
                        // prefix, then settles the close protocol — a
                        // faulted source either cancels the whole fan-in
                        // (`FailFast`: close `Failed`, first cause wins)
                        // or just departs (`Degrade`: counted, and the
                        // last producer out closes `Finished`). Runs even
                        // on panic, so a crashed source can never leave
                        // the consumer hanging or miscount `remaining`.
                        // With obs on, each departing producer records
                        // its forwarded-item count (the fairness
                        // distribution).
                        struct Depart {
                            remaining: std::sync::Arc<parking_lot::sync::atomic::AtomicUsize>,
                            queue: BlockingQueue<Value>,
                            chunk: Vec<Value>,
                            fault: Option<Fault>,
                            policy: FanPolicy,
                            degraded: std::sync::Arc<parking_lot::sync::atomic::AtomicUsize>,
                            label: Arc<str>,
                            #[cfg(feature = "obs")]
                            forwarded: u64,
                        }
                        impl Depart {
                            /// Move the accumulated chunk across the
                            /// queue. `false` means the fan-in hung up.
                            fn flush(&mut self) -> bool {
                                if self.chunk.is_empty() {
                                    return true;
                                }
                                obs_on!(let n = self.chunk.len(););
                                if self.queue.put_all(std::mem::take(&mut self.chunk)).is_err() {
                                    return false;
                                }
                                obs_on!({
                                    self.forwarded += n as u64;
                                    crate::stats::fan().merge_items.add(n as u64);
                                    crate::stats::fan().merge_flushes.inc();
                                });
                                true
                            }
                        }
                        impl Drop for Depart {
                            fn drop(&mut self) {
                                // Contain a transport fault in the final
                                // flush too: the departure protocol below
                                // must always run.
                                if let Err(payload) =
                                    catch_unwind(AssertUnwindSafe(|| self.flush()))
                                {
                                    if self.fault.is_none() {
                                        self.fault =
                                            Some(Fault::from_panic(&self.label, &*payload));
                                    }
                                }
                                obs_on!(crate::stats::fan()
                                    .items_per_source
                                    .record(self.forwarded););
                                use parking_lot::sync::atomic::Ordering;
                                match self.fault.take() {
                                    Some(fault) if self.policy == FanPolicy::FailFast => {
                                        // First close wins: the Failed
                                        // cause cancels the siblings
                                        // (their next put fails) and is
                                        // what the consumer observes.
                                        self.queue.close_with(CloseCause::Failed(fault));
                                        self.remaining.fetch_sub(1, Ordering::AcqRel);
                                    }
                                    departed => {
                                        if departed.is_some() {
                                            self.degraded.fetch_add(1, Ordering::AcqRel);
                                            obs_on!(crate::stats::fan()
                                                .degraded_sources
                                                .inc(););
                                        }
                                        if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
                                            self.queue.close();
                                        }
                                    }
                                }
                            }
                        }
                        let mut guard = Depart {
                            remaining,
                            queue: q,
                            chunk: Vec::with_capacity(batch),
                            fault: None,
                            policy,
                            degraded,
                            label: Arc::clone(&label),
                            #[cfg(feature = "obs")]
                            forwarded: 0,
                        };
                        // Chunked transport, fairness-capped: at most
                        // `batch` values per queue transaction per
                        // source. The drive loop runs under catch_unwind
                        // so a source panic becomes a Fault, not a
                        // vanished producer.
                        let run = catch_unwind(AssertUnwindSafe(|| loop {
                            faultpoint!("pipes.merge.resume");
                            match g.resume() {
                                Step::Suspend(v) => {
                                    guard.chunk.push(v.deep_copy());
                                    if guard.chunk.len() >= batch && !guard.flush() {
                                        return;
                                    }
                                }
                                Step::Fail => return,
                            }
                        }));
                        if let Err(payload) = run {
                            guard.fault = Some(Fault::from_panic(&label, &*payload));
                        }
                        // guard drops here: flush + departure protocol.
                    })
                    .expect("spawn merge producer");
            }
            self.state = Some(MergeState { queue, degraded });
        }
        self.state.as_ref().expect("just set")
    }
}

impl Gen for Merge {
    fn resume(&mut self) -> Step {
        if self.failed {
            return Step::Fail;
        }
        self.start();
        match self
            .state
            .as_ref()
            .expect("started")
            .queue
            .take_with_cause()
        {
            Ok(v) => Step::Suspend(v),
            Err(CloseCause::Finished) => Step::Fail,
            Err(CloseCause::Failed(fault)) => {
                obs_on!(crate::stats::pipe().faults_propagated.inc(););
                // failed first: a caught propagation followed by another
                // resume must observe end-of-stream, not a respawn.
                self.failed = true;
                self.fault = Some(fault.clone());
                panic!("merge failed: {fault}");
            }
        }
    }
    fn restart(&mut self) {
        if let Some(st) = self.state.take() {
            st.queue.close();
        }
        self.fault = None;
        self.failed = false;
    }
}

impl Drop for Merge {
    fn drop(&mut self) {
        if let Some(st) = self.state.take() {
            st.queue.close();
        }
    }
}

/// Deterministic fan-in: one value from each live source per round,
/// skipping exhausted sources, until all are exhausted. Sources run in
/// *this* thread (compose with [`crate::Pipe`] per source for parallelism).
pub fn round_robin(sources: Vec<BoxGen>) -> RoundRobin {
    let len = sources.len();
    RoundRobin {
        sources,
        alive: vec![true; len],
        next: 0,
    }
}

pub struct RoundRobin {
    sources: Vec<BoxGen>,
    alive: Vec<bool>,
    next: usize,
}

impl Gen for RoundRobin {
    fn resume(&mut self) -> Step {
        let n = self.sources.len();
        if n == 0 {
            return Step::Fail;
        }
        for _ in 0..n {
            let i = self.next;
            self.next = (self.next + 1) % n;
            if !self.alive[i] {
                obs_on!(crate::stats::fan().rr_skips.inc(););
                continue;
            }
            match self.sources[i].resume() {
                Step::Suspend(v) => {
                    obs_on!(crate::stats::fan().rr_items.inc(););
                    return Step::Suspend(v);
                }
                Step::Fail => self.alive[i] = false,
            }
        }
        if self.alive.iter().any(|a| *a) {
            // All sources visited this round failed but some had failed
            // earlier rounds only; loop once more.
            self.resume()
        } else {
            Step::Fail
        }
    }
    fn restart(&mut self) {
        for s in &mut self.sources {
            s.restart();
        }
        self.alive.fill(true);
        self.next = 0;
    }
}

/// Collect all values of a merged fan-in, sorted by integer value (test
/// helper for order-insensitive assertions).
#[cfg(test)]
fn drain_sorted(mut g: impl Gen) -> Vec<i64> {
    let mut out: Vec<i64> = g
        .collect_values()
        .iter()
        .filter_map(|v| v.as_int())
        .collect();
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gde::comb::to_range;

    #[test]
    fn merge_delivers_everything_once() {
        let m = merge(
            vec![
                Box::new(|| Box::new(to_range(1, 10, 1)) as BoxGen),
                Box::new(|| Box::new(to_range(11, 20, 1)) as BoxGen),
                Box::new(|| Box::new(to_range(21, 30, 1)) as BoxGen),
            ],
            8,
        );
        assert_eq!(drain_sorted(m), (1..=30).collect::<Vec<_>>());
    }

    #[test]
    fn merge_of_nothing_fails_immediately() {
        let mut m = merge(vec![], 4);
        assert_eq!(m.resume(), Step::Fail);
    }

    #[test]
    fn merge_with_one_empty_source() {
        let m = merge(
            vec![
                Box::new(|| Box::new(gde::comb::fail()) as BoxGen),
                Box::new(|| Box::new(to_range(1, 3, 1)) as BoxGen),
            ],
            4,
        );
        assert_eq!(drain_sorted(m), vec![1, 2, 3]);
    }

    #[test]
    fn merge_restart_reruns_producers() {
        let mut m = merge(vec![Box::new(|| Box::new(to_range(1, 5, 1)) as BoxGen)], 4);
        assert_eq!(m.count(), 5);
        m.restart();
        assert_eq!(m.count(), 5);
    }

    #[test]
    fn round_robin_interleaves_deterministically() {
        let mut rr = round_robin(vec![
            Box::new(to_range(1, 3, 1)) as BoxGen,
            Box::new(to_range(10, 30, 10)) as BoxGen,
        ]);
        let got: Vec<i64> = rr
            .collect_values()
            .iter()
            .map(|v| v.as_int().unwrap())
            .collect();
        assert_eq!(got, vec![1, 10, 2, 20, 3, 30]);
    }

    #[test]
    fn round_robin_skips_exhausted_sources() {
        let mut rr = round_robin(vec![
            Box::new(to_range(1, 1, 1)) as BoxGen, // one value
            Box::new(to_range(10, 13, 1)) as BoxGen,
        ]);
        let got: Vec<i64> = rr
            .collect_values()
            .iter()
            .map(|v| v.as_int().unwrap())
            .collect();
        assert_eq!(got, vec![1, 10, 11, 12, 13]);
    }

    #[test]
    fn round_robin_restart() {
        let mut rr = round_robin(vec![Box::new(to_range(1, 2, 1)) as BoxGen]);
        assert_eq!(rr.count(), 2);
        rr.restart();
        assert_eq!(rr.count(), 2);
    }

    #[test]
    fn merge_batched_delivers_everything_once() {
        for batch in [1, 2, 7, 64] {
            let m = merge(
                vec![
                    Box::new(|| Box::new(to_range(1, 10, 1)) as BoxGen),
                    Box::new(|| Box::new(to_range(11, 20, 1)) as BoxGen),
                    Box::new(|| Box::new(to_range(21, 30, 1)) as BoxGen),
                ],
                8,
            )
            .with_batch(batch);
            assert_eq!(
                drain_sorted(m),
                (1..=30).collect::<Vec<_>>(),
                "batch {batch} lost or duplicated values"
            );
        }
    }

    #[test]
    fn merge_batch_clamps_to_fairness_cap_and_capacity() {
        let sources = || {
            vec![Box::new(|| Box::new(to_range(1, 3, 1)) as BoxGen)
                as Box<dyn Fn() -> BoxGen + Send + Sync>]
        };
        let m = merge(sources(), 64).with_batch(1000);
        assert_eq!(m.batch(), super::MERGE_BATCH_FAIRNESS_CAP);
        let m = merge(sources(), 2).with_batch(1000);
        assert_eq!(m.batch(), 2, "capacity bounds the per-source grab");
        let m = merge(sources(), 64).with_batch(0);
        assert_eq!(m.batch(), 1, "batch 0 normalizes to 1");
    }

    #[test]
    fn merge_with_batch_after_start_respawns_with_new_batch() {
        // Regression: with_batch used to be silently ignored once the
        // producers were running (start() only reads self.batch when the
        // state is first built). It must now close the stale state so the
        // next resume runs the requested transport.
        let mut m = merge(
            vec![Box::new(|| Box::new(to_range(1, 20, 1)) as BoxGen)
                as Box<dyn Fn() -> BoxGen + Send + Sync>],
            16,
        );
        assert!(matches!(m.resume(), Step::Suspend(_)), "producers running");
        let m = m.with_batch(7);
        assert_eq!(m.batch(), 7);
        assert_eq!(
            drain_sorted(m),
            (1..=20).collect::<Vec<_>>(),
            "post-start with_batch must restart the full stream"
        );
    }

    #[test]
    fn merge_batched_preserves_per_source_order() {
        // Arrival order across sources is nondeterministic, but each
        // source's own values must stay in sequence even when moved in
        // chunks.
        let m = merge(
            (0..3)
                .map(|k: i64| {
                    Box::new(move || Box::new(to_range(k * 100, k * 100 + 49, 1)) as BoxGen)
                        as Box<dyn Fn() -> BoxGen + Send + Sync>
                })
                .collect(),
            4,
        )
        .with_batch(7);
        let mut m = m;
        let mut last = [i64::MIN; 3];
        while let Step::Suspend(v) = m.resume() {
            let n = v.as_int().expect("int");
            let src = (n / 100) as usize;
            assert!(last[src] < n, "source {src} out of order: {n}");
            last[src] = n;
        }
        assert_eq!(last, [49, 149, 249]);
    }

    #[test]
    fn round_robin_over_batched_pipes_stays_deterministic() {
        // rr fairness is consumer-side and must survive chunked pipe
        // transport: one value from each live source per round.
        let mk = |lo: i64, hi: i64| {
            Box::new(crate::Pipe::batched(
                move || Box::new(to_range(lo, hi, 1)) as BoxGen,
                16,
                5,
            )) as BoxGen
        };
        let mut rr = round_robin(vec![mk(1, 3), mk(10, 50)]);
        let got: Vec<i64> = rr
            .collect_values()
            .iter()
            .map(|v| v.as_int().unwrap())
            .collect();
        assert_eq!(&got[..6], &[1, 10, 2, 11, 3, 12]);
        assert_eq!(got.len(), 3 + 41);
    }

    /// A source factory that panics when its generator is about to yield
    /// `panic_at` (yields `lo..` until then).
    fn faulty_source(lo: i64, panic_at: i64) -> Box<dyn Fn() -> BoxGen + Send + Sync> {
        Box::new(move || {
            let counter = std::sync::Arc::new(std::sync::atomic::AtomicI64::new(lo));
            Box::new(gde::comb::repeat_alt(gde::comb::thunk(move || {
                let n = counter.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                assert!(n != panic_at, "injected merge-source failure");
                Some(Value::from(n))
            }))) as BoxGen
        })
    }

    #[test]
    fn fail_fast_merge_surfaces_the_fault_not_clean_eos() {
        // Fan-in analogue of the producer-panic regression: a faulted
        // source must yield Failed(..) to the consumer under the default
        // FailFast policy — never a clean end-of-stream.
        use std::panic::{catch_unwind, AssertUnwindSafe};
        let mut m = merge(
            vec![
                faulty_source(0, 2), // yields 0, 1, then panics
                Box::new(|| Box::new(to_range(100, 200, 1)) as BoxGen),
            ],
            4,
        );
        let err = catch_unwind(AssertUnwindSafe(|| m.collect_values())).unwrap_err();
        let msg = err.downcast_ref::<String>().expect("string payload");
        assert!(msg.contains("merge-source-0"), "names the source: {msg}");
        let fault = m.fault().expect("fault recorded");
        assert_eq!(fault.stage(), "merge-source-0");
        assert!(fault.message().contains("injected merge-source failure"));
        // After a caught propagation the stream reports end-of-stream
        // (and does not respawn the producers).
        assert_eq!(m.resume(), Step::Fail);
    }

    #[test]
    fn degrade_merge_drops_faulted_source_and_keeps_merging() {
        let m = merge(
            vec![
                faulty_source(0, 0), // panics before yielding anything
                Box::new(|| Box::new(to_range(1, 10, 1)) as BoxGen),
                Box::new(|| Box::new(to_range(11, 20, 1)) as BoxGen),
            ],
            8,
        )
        .with_policy(FanPolicy::Degrade);
        let mut m = m;
        let mut got: Vec<i64> = m
            .collect_values()
            .iter()
            .filter_map(|v| v.as_int())
            .collect();
        got.sort_unstable();
        assert_eq!(got, (1..=20).collect::<Vec<_>>(), "survivors fully merged");
        assert_eq!(m.degraded_sources(), 1);
        assert!(m.fault().is_none(), "degrade never cancels the fan-in");
    }

    #[test]
    fn merge_restart_clears_fault_state() {
        use std::panic::{catch_unwind, AssertUnwindSafe};
        let mut m = merge(vec![faulty_source(0, 0)], 4);
        assert!(catch_unwind(AssertUnwindSafe(|| m.collect_values())).is_err());
        assert!(m.fault().is_some());
        m.restart();
        assert!(m.fault().is_none());
        // The faulty source faults again on the fresh run; the restarted
        // fan-in surfaces it again rather than reporting clean EOS.
        assert!(catch_unwind(AssertUnwindSafe(|| m.resume())).is_err());
    }

    #[test]
    fn merged_pipes_fan_into_one_consumer() {
        // Each source is itself a pipe: N producer threads, one consumer.
        let m = merge(
            (0..4)
                .map(|k: i64| {
                    Box::new(move || Box::new(to_range(k * 100 + 1, k * 100 + 25, 1)) as BoxGen)
                        as Box<dyn Fn() -> BoxGen + Send + Sync>
                })
                .collect(),
            16,
        );
        let got = drain_sorted(m);
        assert_eq!(got.len(), 100);
        assert_eq!(got[0], 1);
        assert_eq!(*got.last().expect("non-empty"), 325);
    }
}
