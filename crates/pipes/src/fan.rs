//! Fan-in combinators over multiple pipes.
//!
//! The paper's calculus composes pipes one at a time; real pipelines often
//! fan several producers into one consumer. Two disciplines are provided,
//! matching the two orderings a goal-directed program can want:
//!
//! * [`merge`] — *arrival order*: values are forwarded to a shared queue as
//!   each producer makes them, so the consumer sees an interleaving
//!   determined by runtime speed (maximum throughput, no ordering);
//! * [`round_robin`] — *deterministic interleave*: one value from each
//!   source in turn (skipping exhausted ones), the ordered analogue of
//!   alternately activating co-expressions with `@`.

use blockingq::BlockingQueue;
#[cfg(test)]
use gde::GenExt;
use gde::{BoxGen, Gen, Step, Value};

/// Merge several generator factories into one generator, each running on
/// its own producer thread, values in arrival order. The stream ends when
/// every producer has failed.
pub fn merge(sources: Vec<Box<dyn Fn() -> BoxGen + Send + Sync>>, capacity: usize) -> Merge {
    Merge {
        sources,
        capacity,
        state: None,
    }
}

pub struct Merge {
    sources: Vec<Box<dyn Fn() -> BoxGen + Send + Sync>>,
    capacity: usize,
    state: Option<MergeState>,
}

struct MergeState {
    queue: BlockingQueue<Value>,
    /// Producer count tracking lives in the threads: each decrements and
    /// the last closes the queue.
    _marker: (),
}

impl Merge {
    fn start(&mut self) -> &MergeState {
        if self.state.is_none() {
            let queue = BlockingQueue::bounded(self.capacity.max(1));
            let remaining =
                std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(self.sources.len()));
            if self.sources.is_empty() {
                queue.close();
            }
            for src in &self.sources {
                let mut g = src();
                let q = queue.clone();
                let remaining = remaining.clone();
                obs_on!(crate::stats::fan().merge_sources.inc(););
                std::thread::Builder::new()
                    .name("fan-merge-producer".into())
                    .spawn(move || {
                        // Last producer out closes the queue, even on panic.
                        // With obs on, each departing producer records its
                        // forwarded-item count (the fairness distribution).
                        struct Depart {
                            remaining: std::sync::Arc<std::sync::atomic::AtomicUsize>,
                            queue: BlockingQueue<Value>,
                            #[cfg(feature = "obs")]
                            forwarded: u64,
                        }
                        impl Drop for Depart {
                            fn drop(&mut self) {
                                obs_on!(crate::stats::fan()
                                    .items_per_source
                                    .record(self.forwarded););
                                if self
                                    .remaining
                                    .fetch_sub(1, std::sync::atomic::Ordering::AcqRel)
                                    == 1
                                {
                                    self.queue.close();
                                }
                            }
                        }
                        #[allow(unused_mut)]
                        let mut guard = Depart {
                            remaining,
                            queue: q,
                            #[cfg(feature = "obs")]
                            forwarded: 0,
                        };
                        while let Step::Suspend(v) = g.resume() {
                            if guard.queue.put(v.deep_copy()).is_err() {
                                return;
                            }
                            obs_on!({
                                guard.forwarded += 1;
                                crate::stats::fan().merge_items.inc();
                            });
                        }
                    })
                    .expect("spawn merge producer");
            }
            self.state = Some(MergeState { queue, _marker: () });
        }
        self.state.as_ref().expect("just set")
    }
}

impl Gen for Merge {
    fn resume(&mut self) -> Step {
        self.start();
        match self.state.as_ref().expect("started").queue.take() {
            Some(v) => Step::Suspend(v),
            None => Step::Fail,
        }
    }
    fn restart(&mut self) {
        if let Some(st) = self.state.take() {
            st.queue.close();
        }
    }
}

impl Drop for Merge {
    fn drop(&mut self) {
        if let Some(st) = self.state.take() {
            st.queue.close();
        }
    }
}

/// Deterministic fan-in: one value from each live source per round,
/// skipping exhausted sources, until all are exhausted. Sources run in
/// *this* thread (compose with [`crate::Pipe`] per source for parallelism).
pub fn round_robin(sources: Vec<BoxGen>) -> RoundRobin {
    let len = sources.len();
    RoundRobin {
        sources,
        alive: vec![true; len],
        next: 0,
    }
}

pub struct RoundRobin {
    sources: Vec<BoxGen>,
    alive: Vec<bool>,
    next: usize,
}

impl Gen for RoundRobin {
    fn resume(&mut self) -> Step {
        let n = self.sources.len();
        if n == 0 {
            return Step::Fail;
        }
        for _ in 0..n {
            let i = self.next;
            self.next = (self.next + 1) % n;
            if !self.alive[i] {
                obs_on!(crate::stats::fan().rr_skips.inc(););
                continue;
            }
            match self.sources[i].resume() {
                Step::Suspend(v) => {
                    obs_on!(crate::stats::fan().rr_items.inc(););
                    return Step::Suspend(v);
                }
                Step::Fail => self.alive[i] = false,
            }
        }
        if self.alive.iter().any(|a| *a) {
            // All sources visited this round failed but some had failed
            // earlier rounds only; loop once more.
            self.resume()
        } else {
            Step::Fail
        }
    }
    fn restart(&mut self) {
        for s in &mut self.sources {
            s.restart();
        }
        self.alive.fill(true);
        self.next = 0;
    }
}

/// Collect all values of a merged fan-in, sorted by integer value (test
/// helper for order-insensitive assertions).
#[cfg(test)]
fn drain_sorted(mut g: impl Gen) -> Vec<i64> {
    let mut out: Vec<i64> = g
        .collect_values()
        .iter()
        .filter_map(|v| v.as_int())
        .collect();
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gde::comb::to_range;

    #[test]
    fn merge_delivers_everything_once() {
        let m = merge(
            vec![
                Box::new(|| Box::new(to_range(1, 10, 1)) as BoxGen),
                Box::new(|| Box::new(to_range(11, 20, 1)) as BoxGen),
                Box::new(|| Box::new(to_range(21, 30, 1)) as BoxGen),
            ],
            8,
        );
        assert_eq!(drain_sorted(m), (1..=30).collect::<Vec<_>>());
    }

    #[test]
    fn merge_of_nothing_fails_immediately() {
        let mut m = merge(vec![], 4);
        assert_eq!(m.resume(), Step::Fail);
    }

    #[test]
    fn merge_with_one_empty_source() {
        let m = merge(
            vec![
                Box::new(|| Box::new(gde::comb::fail()) as BoxGen),
                Box::new(|| Box::new(to_range(1, 3, 1)) as BoxGen),
            ],
            4,
        );
        assert_eq!(drain_sorted(m), vec![1, 2, 3]);
    }

    #[test]
    fn merge_restart_reruns_producers() {
        let mut m = merge(vec![Box::new(|| Box::new(to_range(1, 5, 1)) as BoxGen)], 4);
        assert_eq!(m.count(), 5);
        m.restart();
        assert_eq!(m.count(), 5);
    }

    #[test]
    fn round_robin_interleaves_deterministically() {
        let mut rr = round_robin(vec![
            Box::new(to_range(1, 3, 1)) as BoxGen,
            Box::new(to_range(10, 30, 10)) as BoxGen,
        ]);
        let got: Vec<i64> = rr
            .collect_values()
            .iter()
            .map(|v| v.as_int().unwrap())
            .collect();
        assert_eq!(got, vec![1, 10, 2, 20, 3, 30]);
    }

    #[test]
    fn round_robin_skips_exhausted_sources() {
        let mut rr = round_robin(vec![
            Box::new(to_range(1, 1, 1)) as BoxGen, // one value
            Box::new(to_range(10, 13, 1)) as BoxGen,
        ]);
        let got: Vec<i64> = rr
            .collect_values()
            .iter()
            .map(|v| v.as_int().unwrap())
            .collect();
        assert_eq!(got, vec![1, 10, 11, 12, 13]);
    }

    #[test]
    fn round_robin_restart() {
        let mut rr = round_robin(vec![Box::new(to_range(1, 2, 1)) as BoxGen]);
        assert_eq!(rr.count(), 2);
        rr.restart();
        assert_eq!(rr.count(), 2);
    }

    #[test]
    fn merged_pipes_fan_into_one_consumer() {
        // Each source is itself a pipe: N producer threads, one consumer.
        let m = merge(
            (0..4)
                .map(|k: i64| {
                    Box::new(move || Box::new(to_range(k * 100 + 1, k * 100 + 25, 1)) as BoxGen)
                        as Box<dyn Fn() -> BoxGen + Send + Sync>
                })
                .collect(),
            16,
        );
        let got = drain_sorted(m);
        assert_eq!(got.len(), 100);
        assert_eq!(got[0], 1);
        assert_eq!(*got.last().expect("non-empty"), 325);
    }
}
