//! Instrumentation points for pipes and fan-ins (`obs` feature only).
//!
//! Shared process-wide metric families in the global [`obs::Registry`];
//! see `blockingq::stats` for the design rationale. The per-producer
//! histograms are what make *merge fairness* visible: if one fan-in
//! source starves, `pipes.fan.items_per_source` shows a wide min/max
//! spread.

use std::sync::{Arc, OnceLock};

/// Metrics for [`crate::Pipe`].
pub(crate) struct PipeStats {
    /// Producer threads spawned (including restarts and refreshes).
    pub spawned: Arc<obs::Counter>,
    /// Values forwarded across the thread boundary (successful puts).
    pub items: Arc<obs::Counter>,
    /// Wall-clock lifetime of each producer thread, from spawn to exit —
    /// items / time is per-pipe throughput.
    pub producer_wall: Arc<obs::Timer>,
    /// Items forwarded per finished producer (distribution).
    pub items_per_producer: Arc<obs::Histogram>,
    /// Producer-side chunk flushes (one `put_all` transaction each);
    /// `items / flushes` is the realized transport amortization.
    pub flushes: Arc<obs::Counter>,
    /// Producer faults surfaced to the consumer (`Propagate`, including
    /// exhausted retries).
    pub faults_propagated: Arc<obs::Counter>,
    /// Producer respawns consumed by `FaultPolicy::Retry`.
    pub faults_retried: Arc<obs::Counter>,
}

pub(crate) fn pipe() -> &'static PipeStats {
    static STATS: OnceLock<PipeStats> = OnceLock::new();
    STATS.get_or_init(|| PipeStats {
        spawned: obs::counter("pipes.pipe.spawned"),
        items: obs::counter("pipes.pipe.items"),
        producer_wall: obs::timer("pipes.pipe.producer_wall"),
        items_per_producer: obs::histogram("pipes.pipe.items_per_producer"),
        flushes: obs::counter("pipes.pipe.batch_flushes"),
        faults_propagated: obs::counter("pipes.faults.propagated"),
        faults_retried: obs::counter("pipes.faults.retries"),
    })
}

/// Metrics for [`crate::Merge`] / [`crate::RoundRobin`].
pub(crate) struct FanStats {
    /// Merge sources spawned.
    pub merge_sources: Arc<obs::Counter>,
    /// Values forwarded through merge queues (arrival order).
    pub merge_items: Arc<obs::Counter>,
    /// Items forwarded per merge source (fairness distribution).
    pub items_per_source: Arc<obs::Histogram>,
    /// Per-source chunk flushes through merge queues (one `put_all`
    /// each); `merge_items / merge_flushes` is the realized amortization,
    /// capped by [`crate::MERGE_BATCH_FAIRNESS_CAP`].
    pub merge_flushes: Arc<obs::Counter>,
    /// Values yielded by round-robin fan-ins.
    pub rr_items: Arc<obs::Counter>,
    /// Round-robin visits to already-exhausted sources (skips).
    pub rr_skips: Arc<obs::Counter>,
    /// Merge sources dropped by `FanPolicy::Degrade` after a fault.
    pub degraded_sources: Arc<obs::Counter>,
}

pub(crate) fn fan() -> &'static FanStats {
    static STATS: OnceLock<FanStats> = OnceLock::new();
    STATS.get_or_init(|| FanStats {
        merge_sources: obs::counter("pipes.fan.merge_sources"),
        merge_items: obs::counter("pipes.fan.merge_items"),
        items_per_source: obs::histogram("pipes.fan.items_per_source"),
        merge_flushes: obs::counter("pipes.fan.merge_batch_flushes"),
        rr_items: obs::counter("pipes.fan.rr_items"),
        rr_skips: obs::counter("pipes.fan.rr_skips"),
        degraded_sources: obs::counter("pipes.faults.degraded_sources"),
    })
}
