//! The pipe proxy itself.

use blockingq::{BlockingQueue, CloseCause, Fault};
use gde::{BoxGen, CoRef, Gen, GenExt, Step, Value};
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Duration;

/// Default output-queue capacity for pipes.
///
/// Finite so that an unconsumed pipe cannot buffer unboundedly, large
/// enough that a well-matched producer/consumer pair rarely blocks; the
/// throttling ablation bench sweeps this.
pub const DEFAULT_CAPACITY: usize = 1024;

/// Default transport batch for pipes: the producer accumulates up to this
/// many results locally and moves them across the queue in one
/// `put_all`, and the consumer refills its local buffer with one
/// `take_batch` — one lock/condvar transaction per *chunk* instead of per
/// item. Sized from the `BENCH_baseline.json` contention counters
/// (28 262 consumer blocking episodes against 378 288 takes pre-batching):
/// when the consumer outruns the producer it parks once per *flush*, so
/// the episode floor is ≈ items/batch — 128 keeps that floor more than 5×
/// under the pre-batching episode count while staying an order of
/// magnitude below [`DEFAULT_CAPACITY`]. The effective batch is always
/// clamped to the queue capacity so a small capacity still throttles at
/// its configured bound.
pub const DEFAULT_BATCH: usize = 128;

type GenFactory = Arc<dyn Fn() -> BoxGen + Send + Sync>;

/// What the consumer side of a pipe does when the producer *faults*
/// (its generator — or the transport under fault injection — panics).
///
/// The producer always contains the panic (`catch_unwind`), flushes the
/// clean prefix of results it had already accumulated, and closes the
/// queue with `Failed(Fault)`; the policy decides what the consumer's
/// next take does with that cause.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub enum FaultPolicy {
    /// Default: the consumer's next `resume` surfaces the fault by
    /// panicking with the producer's stage label and message. A crashed
    /// producer is never reported as clean end-of-stream.
    #[default]
    Propagate,
    /// Pre-fault-plane behavior, now opt-in: the stream simply ends
    /// after the clean prefix. The fault is still recorded
    /// ([`Pipe::fault`]) and counted — truncated, but never *silently*.
    Truncate,
    /// Respawn the producer from its factory (the restart `^` machinery)
    /// up to `limit` times, sleeping `backoff` before each respawn, and
    /// resume the stream via clean-prefix replay: the fresh run's first
    /// `produced`-so-far results are discarded, so a deterministic
    /// generator replays bitwise-identically to an unfaulted run. A
    /// fault past the last retry propagates.
    Retry {
        /// Maximum respawns before the fault propagates.
        limit: u32,
        /// Sleep before each respawn (virtual time under schedtest).
        backoff: Duration,
    },
}

/// A multithreaded generator proxy.
///
/// Construction spawns a producer thread that drives the underlying
/// generator to failure, `put`ting each result into a bounded blocking
/// queue; the `Pipe` itself is a [`Gen`] whose `resume` is a `take` from
/// that queue. The surrounding expression therefore "runs in parallel to
/// the piped expression" (Sec. III.B).
///
/// Restarting a pipe abandons the current producer (its next `put` fails
/// and the thread exits) and spawns a fresh one over a fresh queue, matching
/// the restart-re-evaluates contract of [`Gen`].
pub struct Pipe {
    factory: GenFactory,
    capacity: usize,
    batch: usize,
    queue: BlockingQueue<Value>,
    /// Consumer-side local buffer: refilled by one `take_batch`, then
    /// handed out item by item without touching the queue lock.
    buf: VecDeque<Value>,
    done: bool,
    produced: u64,
    /// Stage label stamped into faults (and the producer thread name).
    label: Arc<str>,
    policy: FaultPolicy,
    /// Last fault observed from the producer (terminal under
    /// `Propagate`/`Truncate`; most recent recovered one under `Retry`).
    fault: Option<Fault>,
    /// Respawns consumed by the `Retry` policy so far.
    retries: u32,
    /// During a retry replay: results of the fresh run still to discard
    /// before the stream continues where the consumer left off.
    replay_skip: u64,
}

impl Pipe {
    /// `|>e` with the default queue capacity. The factory is invoked on the
    /// producer thread to build the generator (and again on restart).
    pub fn new(make: impl Fn() -> BoxGen + Send + Sync + 'static) -> Pipe {
        Pipe::with_capacity(make, DEFAULT_CAPACITY)
    }

    /// `|>e` with a bounded output queue of `capacity` results — the
    /// throttling knob — and the default transport batch.
    pub fn with_capacity(
        make: impl Fn() -> BoxGen + Send + Sync + 'static,
        capacity: usize,
    ) -> Pipe {
        Pipe::batched(make, capacity, DEFAULT_BATCH)
    }

    /// `|>e` with explicit queue capacity *and* transport batch. The
    /// producer accumulates up to `batch` results before crossing the
    /// queue (flushing early on generator failure); the consumer refills
    /// its local buffer with up to `batch` results per queue transaction.
    /// `batch` is clamped to `[1, capacity]` so throttling still binds at
    /// the configured capacity. `batch == 1` reproduces the pre-batching
    /// item-at-a-time transport exactly.
    pub fn batched(
        make: impl Fn() -> BoxGen + Send + Sync + 'static,
        capacity: usize,
        batch: usize,
    ) -> Pipe {
        let factory: GenFactory = Arc::new(make);
        let batch = effective_batch(batch, capacity);
        let label: Arc<str> = Arc::from("pipe");
        let queue = spawn_producer(Arc::clone(&factory), capacity, batch, Arc::clone(&label));
        Pipe {
            factory,
            capacity,
            batch,
            queue,
            buf: VecDeque::new(),
            done: false,
            produced: 0,
            label,
            policy: FaultPolicy::default(),
            fault: None,
            retries: 0,
            replay_skip: 0,
        }
    }

    /// `|> plan(e)`: a pipe whose producer runs a combinator
    /// [`StagePlan`](gde::comb::fuse::StagePlan) over a source generator,
    /// **fused at `Pipe` construction**. The plan is rewritten once (its
    /// monogenic runs collapse into single composed closures —
    /// `gde.comb.fused_stages` counts the seams eliminated) and the fused
    /// recipe is instantiated afresh on every producer (re)spawn, so
    /// restart re-evaluation still sees a brand-new generator tree while
    /// paying the fusion rewrite exactly once.
    pub fn staged(
        make_source: impl Fn() -> BoxGen + Send + Sync + 'static,
        plan: &gde::comb::fuse::StagePlan,
        capacity: usize,
        batch: usize,
    ) -> Pipe {
        let fused = plan.fuse();
        Pipe::batched(move || fused.instantiate(make_source()), capacity, batch)
    }

    /// Builder-style batch override: abandons the producer spawned by the
    /// constructor and respawns it with the new batch (exactly like a
    /// restart, so call it before consuming). `with_batch(1)` disables
    /// chunking.
    pub fn with_batch(mut self, batch: usize) -> Pipe {
        let batch = effective_batch(batch, self.capacity);
        if batch != self.batch {
            self.batch = batch;
            Gen::restart(&mut self);
        }
        self
    }

    /// Builder-style fault policy override. Purely consumer-side: it
    /// does not respawn the producer and may be set at any point before
    /// the fault is observed.
    pub fn with_policy(mut self, policy: FaultPolicy) -> Pipe {
        self.policy = policy;
        self
    }

    /// Builder-style stage label for fault attribution (also names the
    /// producer thread). Respawns the producer, exactly like a restart,
    /// so call it before consuming.
    pub fn with_label(mut self, label: impl AsRef<str>) -> Pipe {
        self.label = Arc::from(label.as_ref());
        Gen::restart(&mut self);
        self
    }

    /// The transport batch actually in effect (post-clamping).
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// The fault policy in effect.
    pub fn policy(&self) -> &FaultPolicy {
        &self.policy
    }

    /// The stage label stamped into this pipe's faults.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The last fault observed from the producer, if any: terminal under
    /// `Propagate`/`Truncate`, the most recently *recovered* one under
    /// `Retry`. Reset by [`Gen::restart`].
    pub fn fault(&self) -> Option<&Fault> {
        self.fault.as_ref()
    }

    /// Producer respawns consumed by the `Retry` policy since the last
    /// restart.
    pub fn retries(&self) -> u32 {
        self.retries
    }

    /// The output blocking queue, exposed for further manipulation
    /// (draining, length inspection, early close). Note that with
    /// batching, up to `batch - 1` further results may sit in the
    /// consumer's local buffer rather than in this queue.
    pub fn queue(&self) -> &BlockingQueue<Value> {
        &self.queue
    }

    /// Box the pipe as a generic generator.
    pub fn boxed(self) -> BoxGen {
        Box::new(self)
    }
}

/// Clamp a requested batch to `[1, capacity]` (capacity is itself ≥ 1).
fn effective_batch(batch: usize, capacity: usize) -> usize {
    batch.clamp(1, capacity.max(1))
}

fn spawn_producer(
    factory: GenFactory,
    capacity: usize,
    batch: usize,
    label: Arc<str>,
) -> BlockingQueue<Value> {
    let queue = BlockingQueue::bounded(capacity);
    let out = queue.clone();
    let batch = effective_batch(batch, capacity);
    obs_on!(crate::stats::pipe().spawned.inc(););
    // Through the parking_lot shim so the producer is a virtual thread
    // under --cfg schedtest (see DESIGN.md § "Schedule exploration").
    parking_lot::thread::Builder::new()
        .name(format!("pipe-producer:{label}"))
        .spawn(move || {
            // Close the queue no matter how the producer exits: a
            // consumer blocked in take() must observe end-of-stream,
            // never hang. The guard owns the in-flight chunk so the
            // clean prefix accumulated before a panic is still flushed,
            // and carries the close cause (`Finished` unless a caught
            // panic upgraded it to `Failed`). With obs on, it also
            // records the producer's lifetime and forwarded-item count.
            struct CloseOnExit {
                queue: BlockingQueue<Value>,
                chunk: Vec<Value>,
                cause: CloseCause,
                label: Arc<str>,
                #[cfg(feature = "obs")]
                forwarded: u64,
                #[cfg(feature = "obs")]
                started: std::time::Instant,
            }
            impl CloseOnExit {
                /// Move the accumulated chunk across the queue. `false`
                /// means the consumer hung up (restart/drop) — stop.
                fn flush(&mut self) -> bool {
                    if self.chunk.is_empty() {
                        return true;
                    }
                    obs_on!(let n = self.chunk.len(););
                    if self.queue.put_all(std::mem::take(&mut self.chunk)).is_err() {
                        return false;
                    }
                    obs_on!({
                        self.forwarded += n as u64;
                        crate::stats::pipe().items.add(n as u64);
                        crate::stats::pipe().flushes.inc();
                    });
                    true
                }
            }
            impl Drop for CloseOnExit {
                fn drop(&mut self) {
                    // The final flush can itself panic (fault injection
                    // arms the transport sites too); contain it so the
                    // close below *always* runs — an unclosed queue
                    // would hang the consumer forever.
                    if let Err(payload) = catch_unwind(AssertUnwindSafe(|| self.flush())) {
                        if !self.cause.is_failed() {
                            self.cause =
                                CloseCause::Failed(Fault::from_panic(&*self.label, &*payload));
                        }
                    }
                    self.queue
                        .close_with(std::mem::replace(&mut self.cause, CloseCause::Finished));
                    obs_on!({
                        let stats = crate::stats::pipe();
                        stats.producer_wall.observe(self.started.elapsed());
                        stats.items_per_producer.record(self.forwarded);
                    });
                }
            }
            let mut guard = CloseOnExit {
                queue: out,
                chunk: Vec::with_capacity(batch),
                cause: CloseCause::Finished,
                label: Arc::clone(&label),
                #[cfg(feature = "obs")]
                forwarded: 0,
                #[cfg(feature = "obs")]
                started: std::time::Instant::now(),
            };
            // Chunked transport: accumulate up to `batch` results
            // locally, flushing on size; the guard flushes the partial
            // chunk and closes on every exit path. The whole drive loop
            // runs under catch_unwind: a generator panic becomes a
            // `Failed(Fault)` close cause instead of a silent truncation.
            let run = catch_unwind(AssertUnwindSafe(|| {
                let mut g = factory();
                loop {
                    faultpoint!("pipes.producer.resume");
                    match g.resume() {
                        Step::Suspend(v) => {
                            // Deep-copy at the thread boundary.
                            guard.chunk.push(v.deep_copy());
                            if guard.chunk.len() >= batch {
                                if !guard.flush() {
                                    return;
                                }
                                if guard.chunk.capacity() < batch {
                                    guard.chunk.reserve(batch);
                                }
                            }
                        }
                        Step::Fail => return,
                    }
                }
            }));
            if let Err(payload) = run {
                guard.cause = CloseCause::Failed(Fault::from_panic(&*label, &*payload));
            }
            // guard drops here: flushes the clean prefix, closes with
            // the recorded cause.
        })
        .expect("failed to spawn pipe producer");
    queue
}

impl Pipe {
    /// Policy dispatch on a `Failed` close cause. `None` means the fault
    /// was recovered (`Retry` respawned the producer) and the consumer
    /// should take again; `Some(step)` ends the stream; `Propagate` (and
    /// an exhausted `Retry`) panics with the fault instead.
    fn handle_fault(&mut self, fault: Fault) -> Option<Step> {
        match self.policy {
            FaultPolicy::Retry { limit, backoff } if self.retries < limit => {
                self.retries += 1;
                obs_on!(crate::stats::pipe().faults_retried.inc(););
                self.fault = Some(fault);
                if !backoff.is_zero() {
                    // Virtual time under --cfg schedtest.
                    parking_lot::thread::sleep(backoff);
                }
                // Clean-prefix replay: anything still in the local buffer
                // belongs to the dead run; the fresh run re-produces the
                // whole stream and the consumer discards the first
                // `produced` results it has already handed out.
                self.buf.clear();
                self.replay_skip = self.produced;
                self.queue = spawn_producer(
                    Arc::clone(&self.factory),
                    self.capacity,
                    self.batch,
                    Arc::clone(&self.label),
                );
                None
            }
            FaultPolicy::Truncate => {
                // Pre-fault-plane behavior: end the stream after the
                // clean prefix, but keep the fault inspectable.
                self.fault = Some(fault);
                self.done = true;
                Some(Step::Fail)
            }
            _ => {
                obs_on!(crate::stats::pipe().faults_propagated.inc(););
                // done first: a caught propagation followed by another
                // resume must observe end-of-stream, not re-take.
                self.done = true;
                self.fault = Some(fault.clone());
                panic!("pipe `{}` failed: {fault}", self.label);
            }
        }
    }
}

impl Gen for Pipe {
    fn resume(&mut self) -> Step {
        if let Some(v) = self.buf.pop_front() {
            self.produced += 1;
            return Step::Suspend(v);
        }
        if self.done {
            return Step::Fail;
        }
        // Local buffer dry: refill with up to a whole batch in one queue
        // transaction (blocking until the producer delivers a chunk). The
        // loop re-takes after a retry respawn or an all-replay chunk.
        loop {
            match self.queue.take_batch_with_cause(self.batch) {
                Ok(mut chunk) => {
                    if self.replay_skip > 0 {
                        let skip = (self.replay_skip as usize).min(chunk.len());
                        chunk.drain(..skip);
                        self.replay_skip -= skip as u64;
                        if chunk.is_empty() {
                            continue;
                        }
                    }
                    self.buf = VecDeque::from(chunk);
                    let v = self.buf.pop_front().expect("non-empty after replay skip");
                    self.produced += 1;
                    return Step::Suspend(v);
                }
                Err(CloseCause::Finished) => {
                    self.done = true;
                    return Step::Fail;
                }
                Err(CloseCause::Failed(fault)) => {
                    if let Some(step) = self.handle_fault(fault) {
                        return step;
                    }
                }
            }
        }
    }

    fn restart(&mut self) {
        // Abandon the old producer (it exits on its next put) and start a
        // fresh one: restart re-evaluates the piped expression. Locally
        // buffered results belong to the abandoned run and are discarded,
        // and the fault/retry state starts over with the fresh run.
        self.queue.close();
        self.queue = spawn_producer(
            Arc::clone(&self.factory),
            self.capacity,
            self.batch,
            Arc::clone(&self.label),
        );
        self.buf.clear();
        self.done = false;
        self.produced = 0;
        self.fault = None;
        self.retries = 0;
        self.replay_skip = 0;
    }
}

/// A pipe is also a first-class iterator in the calculus: `t := |>e`
/// assigns the proxy, `@t` steps it, `!t` promotes it back to a generator,
/// and `^t` spawns a refreshed copy. This impl is what lets a pipe live
/// inside a [`Value::Co`].
impl gde::Coroutine for Pipe {
    fn step(&mut self) -> Option<Value> {
        self.next_value()
    }
    fn restart(&mut self) {
        Gen::restart(self)
    }
    fn refreshed(&self) -> Option<gde::CoRef> {
        let factory = Arc::clone(&self.factory);
        let capacity = self.capacity;
        let batch = self.batch;
        let label = Arc::clone(&self.label);
        let queue = spawn_producer(Arc::clone(&factory), capacity, batch, Arc::clone(&label));
        Some(std::sync::Arc::new(parking_lot::Mutex::new(Pipe {
            factory,
            capacity,
            batch,
            queue,
            buf: VecDeque::new(),
            done: false,
            produced: 0,
            label,
            policy: self.policy.clone(),
            fault: None,
            retries: 0,
            replay_skip: 0,
        })))
    }
    fn produced(&self) -> u64 {
        self.produced
    }
}

/// `|>e` as a first-class [`Value`]: spawns the producer thread and wraps
/// the proxy as a co-expression value.
pub fn pipe_value(make: impl Fn() -> BoxGen + Send + Sync + 'static, capacity: usize) -> Value {
    Value::Co(std::sync::Arc::new(parking_lot::Mutex::new(
        Pipe::with_capacity(make, capacity),
    )))
}

impl Drop for Pipe {
    fn drop(&mut self) {
        // Unblock and terminate the producer if it is still running.
        self.queue.close();
    }
}

/// Convenience constructor mirroring the paper's `|>e` notation.
pub fn pipe(make: impl Fn() -> BoxGen + Send + Sync + 'static) -> Pipe {
    Pipe::new(make)
}

/// `|>` applied to an existing co-expression: the producer thread repeatedly
/// activates `c` until failure — literally
/// `while (!fail) { out.put(@c); }`.
pub fn pipe_coexpr(c: CoRef, capacity: usize) -> Pipe {
    // The factory wraps the co-expression as a generator; restart restarts
    // the coroutine itself.
    Pipe::with_capacity(
        move || {
            let c = Arc::clone(&c);
            Box::new(gde::comb::promote_value(Value::Co(c)))
        },
        capacity,
    )
}

/// The singleton pipe: spawn `f` and return a future for its one result
/// ("a singleton piped iterator that produces one result forms a future").
///
/// A panic in `f` is contained and *fails* the future — a blocked
/// [`get`](blockingq::Future::get) wakes up and re-raises the producer's
/// fault instead of waiting forever.
pub fn spawn_future(
    f: impl FnOnce() -> Option<Value> + Send + 'static,
) -> blockingq::Future<Value> {
    let fut: blockingq::Future<Value> = blockingq::Future::new();
    let fut2 = fut.clone();
    parking_lot::thread::Builder::new()
        .name("pipe-future".into())
        .spawn(move || {
            match catch_unwind(AssertUnwindSafe(|| {
                faultpoint!("pipes.future.run");
                f()
            })) {
                Ok(Some(v)) => {
                    let _ = fut2.set(v.deep_copy());
                }
                Ok(None) => {}
                Err(payload) => {
                    let _ = fut2.fail(Fault::from_panic("pipe-future", &*payload));
                }
            }
        })
        .expect("failed to spawn future");
    fut
}

/// Drain a pipe into a vector (drives it to failure).
pub fn drain(mut p: Pipe) -> Vec<Value> {
    p.collect_values()
}

#[cfg(test)]
mod tests {
    use super::*;
    use blockingq::testkit;
    use gde::comb::{thunk, to_range, values};
    use gde::Var;

    fn ints(vals: &[Value]) -> Vec<i64> {
        vals.iter().map(|v| v.as_int().unwrap()).collect()
    }

    #[test]
    fn pipe_preserves_sequence_and_order() {
        let p = pipe(|| Box::new(to_range(1, 100, 1)));
        assert_eq!(ints(&drain(p)), (1..=100).collect::<Vec<_>>());
    }

    #[test]
    fn empty_generator_fails_immediately() {
        let mut p = pipe(|| Box::new(gde::comb::fail()));
        assert_eq!(p.resume(), Step::Fail);
        assert_eq!(p.resume(), Step::Fail);
    }

    #[test]
    fn pipe_runs_concurrently_with_consumer() {
        // The producer makes progress while the consumer merely watches:
        // the queue fills with buffered results before the first take.
        let p = Pipe::with_capacity(|| Box::new(to_range(1, 64, 1)), 64);
        testkit::wait_until("producer ran ahead", || !p.queue().is_empty());
        assert_eq!(ints(&drain(p)), (1..=64).collect::<Vec<_>>());
    }

    /// An infinite counting source that records its progress in `progress`.
    fn counting_src(progress: Var) -> impl Fn() -> BoxGen + Send + Sync + 'static {
        move || {
            let progress = progress.clone();
            let counter = std::sync::Arc::new(std::sync::atomic::AtomicI64::new(0));
            Box::new(gde::comb::repeat_alt(thunk(move || {
                let n = counter.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                progress.set(Value::from(n));
                Some(Value::from(n))
            }))) as BoxGen
        }
    }

    #[test]
    fn capacity_throttles_producer() {
        let progress = Var::new(Value::from(0));
        // batch(1): item-at-a-time transport, the pre-batching bound.
        let p = Pipe::batched(counting_src(progress.clone()), 4, 1);
        // Producer is unbounded but must stall within capacity + 1: wait
        // for it to park in `put` on the full queue, then check how far
        // it got. No consumer runs, so the parked state is stable.
        testkit::wait_until("producer throttled", || p.queue().blocked_producers() == 1);
        let ahead = progress.get().as_int().unwrap();
        assert!(
            ahead <= 5,
            "producer ran ahead of the bounded queue: {ahead}"
        );
        drop(p); // close unblocks the producer thread
    }

    #[test]
    fn capacity_throttles_batched_producer() {
        // With chunking the producer may additionally hold one local chunk
        // (clamped to capacity), so the run-ahead bound is
        // capacity + effective_batch + 1; the default batch (32) clamps to
        // the capacity (4) here.
        let progress = Var::new(Value::from(0));
        let p = Pipe::with_capacity(counting_src(progress.clone()), 4);
        assert_eq!(p.batch(), 4, "batch clamps to capacity");
        // Full queue + full local chunk: the producer parks in `put_all`.
        testkit::wait_until("producer throttled", || p.queue().blocked_producers() == 1);
        let ahead = progress.get().as_int().unwrap();
        assert!(
            ahead <= 4 + 4 + 1,
            "producer ran ahead of capacity + batch: {ahead}"
        );
        drop(p);
    }

    #[test]
    fn batch_sizes_preserve_sequence() {
        for batch in [1, 2, 7, 32, 1000] {
            let p = Pipe::batched(|| Box::new(to_range(1, 100, 1)), 16, batch);
            assert_eq!(
                ints(&drain(p)),
                (1..=100).collect::<Vec<_>>(),
                "batch {batch} changed the sequence"
            );
        }
    }

    #[test]
    fn staged_pipe_fuses_at_construction_and_survives_restart() {
        // The plan fuses once; each producer (re)spawn instantiates the
        // fused recipe over a fresh source, so restart re-evaluation holds.
        let plan = gde::comb::fuse::StagePlan::new()
            .map(|v| Value::from(v.as_int().unwrap() * 2))
            .filter(|v| v.as_int().unwrap() % 4 == 0);
        let mut p = Pipe::staged(|| Box::new(to_range(1, 10, 1)), &plan, 8, 4);
        let want: Vec<i64> = (1..=10).map(|i| i * 2).filter(|i| i % 4 == 0).collect();
        assert_eq!(ints(&p.collect_values()), want);
        Gen::restart(&mut p);
        assert_eq!(ints(&p.collect_values()), want);
    }

    #[test]
    fn with_batch_builder_respawns() {
        let p = pipe(|| Box::new(to_range(1, 10, 1))).with_batch(3);
        assert_eq!(p.batch(), 3);
        assert_eq!(ints(&drain(p)), (1..=10).collect::<Vec<_>>());
    }

    #[test]
    fn restart_discards_locally_buffered_chunk() {
        let mut p = Pipe::batched(|| Box::new(to_range(1, 9, 1)), 16, 4);
        // Consume one value: the consumer buffer now holds 2..=4.
        assert_eq!(p.next_value().and_then(|v| v.as_int()), Some(1));
        p.restart();
        assert_eq!(ints(&p.collect_values()), (1..=9).collect::<Vec<_>>());
    }

    #[test]
    fn chained_pipes_form_a_pipeline() {
        // stage 1: 1..10; stage 2: squares of stage-1 results; both threaded.
        let stage1 = || Box::new(to_range(1, 10, 1)) as BoxGen;
        let p2 = pipe(move || {
            let inner = pipe(stage1);
            Box::new(gde::comb::filter_map(inner, |v| gde::ops::mul(v, v)))
        });
        assert_eq!(
            ints(&drain(p2)),
            (1..=10).map(|i| i * i).collect::<Vec<_>>()
        );
    }

    #[test]
    fn restart_respawns_and_reevaluates() {
        let bound = Var::new(Value::from(3));
        let bound2 = bound.clone();
        let mut p = pipe(move || {
            let n = bound2.get().as_int().unwrap();
            Box::new(to_range(1, n, 1))
        });
        assert_eq!(ints(&p.collect_values()), vec![1, 2, 3]);
        bound.set(Value::from(5));
        p.restart();
        assert_eq!(ints(&p.collect_values()), vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn values_are_deep_copied_across_the_boundary() {
        let shared = Value::list(vec![Value::from(1)]);
        let shared2 = shared.clone();
        let p = pipe(move || Box::new(values(vec![shared2.clone()])));
        let got = drain(p);
        // Mutating the received list must not affect the producer's.
        if let Value::List(l) = &got[0] {
            l.lock().push(Value::from(2));
        }
        assert_eq!(shared.size(), Some(1));
    }

    #[test]
    fn pipe_of_coexpression() {
        let co = coexpr::CoExpr::first_class(|| Box::new(to_range(10, 13, 1))).into_ref();
        let p = pipe_coexpr(co, 8);
        assert_eq!(ints(&drain(p)), vec![10, 11, 12, 13]);
    }

    #[test]
    fn partially_consumed_coexpr_pipe_continues() {
        let co = coexpr::CoExpr::first_class(|| Box::new(to_range(1, 5, 1))).into_ref();
        co.lock().step(); // consume 1 before piping
        let p = pipe_coexpr(co, 8);
        assert_eq!(ints(&drain(p)), vec![2, 3, 4, 5]);
    }

    #[test]
    fn spawn_future_resolves() {
        let f = spawn_future(|| Some(Value::from(42)));
        assert_eq!(f.get().as_int(), Some(42));
        assert!(f.is_set());
    }

    #[test]
    fn dropping_unconsumed_pipe_does_not_hang() {
        // An infinite producer must be reaped when the pipe is dropped.
        let p = Pipe::with_capacity(
            || Box::new(gde::comb::repeat_alt(thunk(|| Some(Value::from(1))))),
            2,
        );
        // Wait until the producer is genuinely parked on the full queue so
        // the drop exercises the close-wakes-blocked-put path every run.
        testkit::wait_until("producer parked", || p.queue().blocked_producers() == 1);
        drop(p);
        // Reaching here without deadlock is the assertion: drop closes the
        // queue, which fails the pending put and reaps the producer.
    }

    /// A source that yields `0..` but panics when it is about to yield
    /// `panic_at` — on its first `runs_before_clean` runs only, so retry
    /// respawns eventually see a clean pass.
    fn faulty_src(
        panic_at: i64,
        runs_before_clean: usize,
        end: i64,
    ) -> impl Fn() -> BoxGen + Send + Sync + 'static {
        let runs = std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(0));
        move || {
            let run = runs.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            let counter = std::sync::Arc::new(std::sync::atomic::AtomicI64::new(0));
            let faulty = run < runs_before_clean;
            Box::new(gde::comb::repeat_alt(thunk(move || {
                let n = counter.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                if faulty {
                    assert!(n != panic_at, "injected producer failure");
                }
                if n > end {
                    return None;
                }
                Some(Value::from(n))
            }))) as BoxGen
        }
    }

    #[test]
    fn panicking_producer_fails_the_stream_not_clean_eos() {
        // The satellite regression: a producer that panics mid-stream
        // must yield `Failed(..)` to the consumer — under the default
        // `Propagate` policy that surfaces as a labelled panic from
        // resume, never as a clean end-of-stream (and never a hang).
        use std::panic::{catch_unwind, AssertUnwindSafe};
        let src = faulty_src(3, usize::MAX, 10);
        let mut p = pipe(move || src()).with_label("flaky");
        // With the default batch the clean prefix 0..=2 arrives in the
        // chunk flushed by the producer's exit path.
        let err = catch_unwind(AssertUnwindSafe(|| p.collect_values())).unwrap_err();
        let msg = err.downcast_ref::<String>().expect("string payload");
        assert!(msg.contains("flaky"), "panic names the stage: {msg}");
        let fault = p.fault().expect("fault recorded");
        assert_eq!(fault.stage(), "flaky");
        assert!(fault.message().contains("injected producer failure"));
        // The cause on the queue itself is Failed, not Finished.
        assert!(p.queue().close_cause().expect("closed").is_failed());
        // After a caught propagation the stream reports end-of-stream.
        assert_eq!(p.resume(), Step::Fail);
    }

    #[test]
    fn truncate_policy_keeps_clean_prefix_and_records_fault() {
        let src = faulty_src(3, usize::MAX, 10);
        let mut p = pipe(move || src())
            .with_policy(FaultPolicy::Truncate)
            .with_label("truncated");
        let got = ints(&p.collect_values());
        assert_eq!(got, vec![0, 1, 2], "clean prefix only");
        assert_eq!(p.fault().expect("fault recorded").stage(), "truncated");
        assert_eq!(p.resume(), Step::Fail); // stream is closed, not hung
    }

    #[test]
    fn retry_policy_replays_bitwise_identically() {
        // Differential fixture: a deterministic source that faults on its
        // first run must, under Retry, deliver exactly the sequence an
        // unfaulted run would have — clean-prefix replay discards the
        // fresh run's already-delivered prefix.
        for batch in [1, 2, 128] {
            // Two pre-consumption spawns (construction + the with_label
            // restart) burn runs 0 and 1; the consumer's first observed
            // run is 1 (faulty), the retry respawn is run 2 (clean).
            let src = faulty_src(3, 2, 9);
            let p = Pipe::batched(move || src(), 16, batch)
                .with_policy(FaultPolicy::Retry {
                    limit: 2,
                    backoff: Duration::ZERO,
                })
                .with_label("retried");
            let mut p = p;
            let got = ints(&p.collect_values());
            assert_eq!(got, (0..=9).collect::<Vec<_>>(), "batch {batch}");
            assert_eq!(p.retries(), 1);
            // The recovered fault stays inspectable.
            assert_eq!(p.fault().expect("recovered fault").stage(), "retried");
        }
    }

    #[test]
    fn retry_exhaustion_propagates() {
        use std::panic::{catch_unwind, AssertUnwindSafe};
        // Faults on every run: two respawns are consumed, then the third
        // fault propagates.
        let src = faulty_src(2, usize::MAX, 9);
        let mut p = pipe(move || src())
            .with_policy(FaultPolicy::Retry {
                limit: 2,
                backoff: Duration::ZERO,
            })
            .with_label("doomed");
        let err = catch_unwind(AssertUnwindSafe(|| p.collect_values())).unwrap_err();
        let msg = err.downcast_ref::<String>().expect("string payload");
        assert!(msg.contains("doomed"), "{msg}");
        assert_eq!(p.retries(), 2, "both respawns consumed");
        assert_eq!(p.resume(), Step::Fail);
    }

    #[test]
    fn restart_resets_fault_state() {
        // As above: construction + with_label burn runs 0 and 1.
        let src = faulty_src(3, 2, 5);
        let mut p = pipe(move || src())
            .with_policy(FaultPolicy::Retry {
                limit: 1,
                backoff: Duration::ZERO,
            })
            .with_label("reset");
        assert_eq!(ints(&p.collect_values()), (0..=5).collect::<Vec<_>>());
        assert_eq!(p.retries(), 1);
        Gen::restart(&mut p);
        assert_eq!(p.retries(), 0);
        assert!(p.fault().is_none());
        // The source is clean from run 1 on; the restarted stream is too.
        assert_eq!(ints(&p.collect_values()), (0..=5).collect::<Vec<_>>());
    }

    #[test]
    fn spawn_future_contains_panics_as_faults() {
        use std::panic::{catch_unwind, AssertUnwindSafe};
        let f = spawn_future(|| panic!("future producer died"));
        // fail() resolves the future, so this does not hang…
        blockingq::testkit::wait_until("future failed", || f.is_set());
        let fault = f.fault().expect("failed future carries the fault");
        assert!(fault.message().contains("future producer died"));
        // …and get surfaces the fault loudly instead of blocking.
        assert!(catch_unwind(AssertUnwindSafe(|| f.get())).is_err());
    }

    #[test]
    fn pipe_composes_with_product() {
        // x * !(|> y): cross product where the right factor is threaded.
        let g = gde::comb::product_map(
            to_range(1, 2, 1),
            |_| pipe(|| Box::new(to_range(10, 11, 1))).boxed(),
            gde::ops::mul,
        );
        let mut g = g;
        assert_eq!(ints(&g.collect_values()), vec![10, 11, 20, 22]);
    }
}
