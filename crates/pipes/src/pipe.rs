//! The pipe proxy itself.

use blockingq::BlockingQueue;
use gde::{BoxGen, CoRef, Gen, GenExt, Step, Value};
use std::collections::VecDeque;
use std::sync::Arc;

/// Default output-queue capacity for pipes.
///
/// Finite so that an unconsumed pipe cannot buffer unboundedly, large
/// enough that a well-matched producer/consumer pair rarely blocks; the
/// throttling ablation bench sweeps this.
pub const DEFAULT_CAPACITY: usize = 1024;

/// Default transport batch for pipes: the producer accumulates up to this
/// many results locally and moves them across the queue in one
/// `put_all`, and the consumer refills its local buffer with one
/// `take_batch` — one lock/condvar transaction per *chunk* instead of per
/// item. Sized from the `BENCH_baseline.json` contention counters
/// (28 262 consumer blocking episodes against 378 288 takes pre-batching):
/// when the consumer outruns the producer it parks once per *flush*, so
/// the episode floor is ≈ items/batch — 128 keeps that floor more than 5×
/// under the pre-batching episode count while staying an order of
/// magnitude below [`DEFAULT_CAPACITY`]. The effective batch is always
/// clamped to the queue capacity so a small capacity still throttles at
/// its configured bound.
pub const DEFAULT_BATCH: usize = 128;

type GenFactory = Arc<dyn Fn() -> BoxGen + Send + Sync>;

/// A multithreaded generator proxy.
///
/// Construction spawns a producer thread that drives the underlying
/// generator to failure, `put`ting each result into a bounded blocking
/// queue; the `Pipe` itself is a [`Gen`] whose `resume` is a `take` from
/// that queue. The surrounding expression therefore "runs in parallel to
/// the piped expression" (Sec. III.B).
///
/// Restarting a pipe abandons the current producer (its next `put` fails
/// and the thread exits) and spawns a fresh one over a fresh queue, matching
/// the restart-re-evaluates contract of [`Gen`].
pub struct Pipe {
    factory: GenFactory,
    capacity: usize,
    batch: usize,
    queue: BlockingQueue<Value>,
    /// Consumer-side local buffer: refilled by one `take_batch`, then
    /// handed out item by item without touching the queue lock.
    buf: VecDeque<Value>,
    done: bool,
    produced: u64,
}

impl Pipe {
    /// `|>e` with the default queue capacity. The factory is invoked on the
    /// producer thread to build the generator (and again on restart).
    pub fn new(make: impl Fn() -> BoxGen + Send + Sync + 'static) -> Pipe {
        Pipe::with_capacity(make, DEFAULT_CAPACITY)
    }

    /// `|>e` with a bounded output queue of `capacity` results — the
    /// throttling knob — and the default transport batch.
    pub fn with_capacity(
        make: impl Fn() -> BoxGen + Send + Sync + 'static,
        capacity: usize,
    ) -> Pipe {
        Pipe::batched(make, capacity, DEFAULT_BATCH)
    }

    /// `|>e` with explicit queue capacity *and* transport batch. The
    /// producer accumulates up to `batch` results before crossing the
    /// queue (flushing early on generator failure); the consumer refills
    /// its local buffer with up to `batch` results per queue transaction.
    /// `batch` is clamped to `[1, capacity]` so throttling still binds at
    /// the configured capacity. `batch == 1` reproduces the pre-batching
    /// item-at-a-time transport exactly.
    pub fn batched(
        make: impl Fn() -> BoxGen + Send + Sync + 'static,
        capacity: usize,
        batch: usize,
    ) -> Pipe {
        let factory: GenFactory = Arc::new(make);
        let batch = effective_batch(batch, capacity);
        let queue = spawn_producer(Arc::clone(&factory), capacity, batch);
        Pipe {
            factory,
            capacity,
            batch,
            queue,
            buf: VecDeque::new(),
            done: false,
            produced: 0,
        }
    }

    /// `|> plan(e)`: a pipe whose producer runs a combinator
    /// [`StagePlan`](gde::comb::fuse::StagePlan) over a source generator,
    /// **fused at `Pipe` construction**. The plan is rewritten once (its
    /// monogenic runs collapse into single composed closures —
    /// `gde.comb.fused_stages` counts the seams eliminated) and the fused
    /// recipe is instantiated afresh on every producer (re)spawn, so
    /// restart re-evaluation still sees a brand-new generator tree while
    /// paying the fusion rewrite exactly once.
    pub fn staged(
        make_source: impl Fn() -> BoxGen + Send + Sync + 'static,
        plan: &gde::comb::fuse::StagePlan,
        capacity: usize,
        batch: usize,
    ) -> Pipe {
        let fused = plan.fuse();
        Pipe::batched(move || fused.instantiate(make_source()), capacity, batch)
    }

    /// Builder-style batch override: abandons the producer spawned by the
    /// constructor and respawns it with the new batch (exactly like a
    /// restart, so call it before consuming). `with_batch(1)` disables
    /// chunking.
    pub fn with_batch(mut self, batch: usize) -> Pipe {
        let batch = effective_batch(batch, self.capacity);
        if batch != self.batch {
            self.batch = batch;
            Gen::restart(&mut self);
        }
        self
    }

    /// The transport batch actually in effect (post-clamping).
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// The output blocking queue, exposed for further manipulation
    /// (draining, length inspection, early close). Note that with
    /// batching, up to `batch - 1` further results may sit in the
    /// consumer's local buffer rather than in this queue.
    pub fn queue(&self) -> &BlockingQueue<Value> {
        &self.queue
    }

    /// Box the pipe as a generic generator.
    pub fn boxed(self) -> BoxGen {
        Box::new(self)
    }
}

/// Clamp a requested batch to `[1, capacity]` (capacity is itself ≥ 1).
fn effective_batch(batch: usize, capacity: usize) -> usize {
    batch.clamp(1, capacity.max(1))
}

fn spawn_producer(factory: GenFactory, capacity: usize, batch: usize) -> BlockingQueue<Value> {
    let queue = BlockingQueue::bounded(capacity);
    let out = queue.clone();
    let batch = effective_batch(batch, capacity);
    obs_on!(crate::stats::pipe().spawned.inc(););
    // Through the parking_lot shim so the producer is a virtual thread
    // under --cfg schedtest (see DESIGN.md § "Schedule exploration").
    parking_lot::thread::Builder::new()
        .name("pipe-producer".into())
        .spawn(move || {
            // Close the queue even if the generator panics: a consumer
            // blocked in take() must observe end-of-stream, never hang.
            // With obs on, the same guard records the producer's lifetime
            // and forwarded-item count as it exits.
            struct CloseOnExit {
                queue: BlockingQueue<Value>,
                #[cfg(feature = "obs")]
                forwarded: u64,
                #[cfg(feature = "obs")]
                started: std::time::Instant,
            }
            impl Drop for CloseOnExit {
                fn drop(&mut self) {
                    self.queue.close();
                    obs_on!({
                        let stats = crate::stats::pipe();
                        stats.producer_wall.observe(self.started.elapsed());
                        stats.items_per_producer.record(self.forwarded);
                    });
                }
            }
            // (mut is only exercised by the obs-feature item accounting)
            #[allow(unused_mut)]
            let mut guard = CloseOnExit {
                queue: out,
                #[cfg(feature = "obs")]
                forwarded: 0,
                #[cfg(feature = "obs")]
                started: std::time::Instant::now(),
            };
            let mut g = factory();
            // Chunked transport: accumulate up to `batch` results locally,
            // flushing on size and on generator failure (the guard's close
            // still runs even if the generator panics mid-chunk — the
            // chunk accumulated so far is then dropped with the thread,
            // exactly as a single pending `put` was pre-batching).
            let mut chunk: Vec<Value> = Vec::with_capacity(batch);
            while let Step::Suspend(v) = g.resume() {
                // Deep-copy at the thread boundary; a failed put means the
                // consumer restarted or dropped the pipe — stop producing.
                chunk.push(v.deep_copy());
                if chunk.len() >= batch {
                    obs_on!(let n = chunk.len(););
                    if guard.queue.put_all(std::mem::take(&mut chunk)).is_err() {
                        return;
                    }
                    obs_on!({
                        guard.forwarded += n as u64;
                        crate::stats::pipe().items.add(n as u64);
                        crate::stats::pipe().flushes.inc();
                    });
                    if chunk.capacity() < batch {
                        chunk.reserve(batch);
                    }
                }
            }
            // Generator failed: flush the partial chunk, then the guard
            // closes the queue (end-of-stream).
            if !chunk.is_empty() {
                obs_on!(let n = chunk.len(););
                if guard.queue.put_all(chunk).is_err() {
                    return;
                }
                obs_on!({
                    guard.forwarded += n as u64;
                    crate::stats::pipe().items.add(n as u64);
                    crate::stats::pipe().flushes.inc();
                });
            }
        })
        .expect("failed to spawn pipe producer");
    queue
}

impl Gen for Pipe {
    fn resume(&mut self) -> Step {
        if let Some(v) = self.buf.pop_front() {
            self.produced += 1;
            return Step::Suspend(v);
        }
        if self.done {
            return Step::Fail;
        }
        // Local buffer dry: refill with up to a whole batch in one queue
        // transaction (blocking until the producer delivers a chunk).
        match self.queue.take_batch(self.batch) {
            Some(chunk) => {
                self.buf = VecDeque::from(chunk);
                let v = self.buf.pop_front().expect("take_batch(n>=1) is non-empty");
                self.produced += 1;
                Step::Suspend(v)
            }
            None => {
                self.done = true;
                Step::Fail
            }
        }
    }

    fn restart(&mut self) {
        // Abandon the old producer (it exits on its next put) and start a
        // fresh one: restart re-evaluates the piped expression. Locally
        // buffered results belong to the abandoned run and are discarded.
        self.queue.close();
        self.queue = spawn_producer(Arc::clone(&self.factory), self.capacity, self.batch);
        self.buf.clear();
        self.done = false;
        self.produced = 0;
    }
}

/// A pipe is also a first-class iterator in the calculus: `t := |>e`
/// assigns the proxy, `@t` steps it, `!t` promotes it back to a generator,
/// and `^t` spawns a refreshed copy. This impl is what lets a pipe live
/// inside a [`Value::Co`].
impl gde::Coroutine for Pipe {
    fn step(&mut self) -> Option<Value> {
        self.next_value()
    }
    fn restart(&mut self) {
        Gen::restart(self)
    }
    fn refreshed(&self) -> Option<gde::CoRef> {
        let factory = Arc::clone(&self.factory);
        let capacity = self.capacity;
        let batch = self.batch;
        let queue = spawn_producer(Arc::clone(&factory), capacity, batch);
        Some(std::sync::Arc::new(parking_lot::Mutex::new(Pipe {
            factory,
            capacity,
            batch,
            queue,
            buf: VecDeque::new(),
            done: false,
            produced: 0,
        })))
    }
    fn produced(&self) -> u64 {
        self.produced
    }
}

/// `|>e` as a first-class [`Value`]: spawns the producer thread and wraps
/// the proxy as a co-expression value.
pub fn pipe_value(make: impl Fn() -> BoxGen + Send + Sync + 'static, capacity: usize) -> Value {
    Value::Co(std::sync::Arc::new(parking_lot::Mutex::new(
        Pipe::with_capacity(make, capacity),
    )))
}

impl Drop for Pipe {
    fn drop(&mut self) {
        // Unblock and terminate the producer if it is still running.
        self.queue.close();
    }
}

/// Convenience constructor mirroring the paper's `|>e` notation.
pub fn pipe(make: impl Fn() -> BoxGen + Send + Sync + 'static) -> Pipe {
    Pipe::new(make)
}

/// `|>` applied to an existing co-expression: the producer thread repeatedly
/// activates `c` until failure — literally
/// `while (!fail) { out.put(@c); }`.
pub fn pipe_coexpr(c: CoRef, capacity: usize) -> Pipe {
    // The factory wraps the co-expression as a generator; restart restarts
    // the coroutine itself.
    Pipe::with_capacity(
        move || {
            let c = Arc::clone(&c);
            Box::new(gde::comb::promote_value(Value::Co(c)))
        },
        capacity,
    )
}

/// The singleton pipe: spawn `f` and return a future for its one result
/// ("a singleton piped iterator that produces one result forms a future").
pub fn spawn_future(
    f: impl FnOnce() -> Option<Value> + Send + 'static,
) -> blockingq::Future<Value> {
    let fut: blockingq::Future<Value> = blockingq::Future::new();
    let fut2 = fut.clone();
    parking_lot::thread::Builder::new()
        .name("pipe-future".into())
        .spawn(move || {
            if let Some(v) = f() {
                let _ = fut2.set(v.deep_copy());
            }
        })
        .expect("failed to spawn future");
    fut
}

/// Drain a pipe into a vector (drives it to failure).
pub fn drain(mut p: Pipe) -> Vec<Value> {
    p.collect_values()
}

#[cfg(test)]
mod tests {
    use super::*;
    use blockingq::testkit;
    use gde::comb::{thunk, to_range, values};
    use gde::Var;

    fn ints(vals: &[Value]) -> Vec<i64> {
        vals.iter().map(|v| v.as_int().unwrap()).collect()
    }

    #[test]
    fn pipe_preserves_sequence_and_order() {
        let p = pipe(|| Box::new(to_range(1, 100, 1)));
        assert_eq!(ints(&drain(p)), (1..=100).collect::<Vec<_>>());
    }

    #[test]
    fn empty_generator_fails_immediately() {
        let mut p = pipe(|| Box::new(gde::comb::fail()));
        assert_eq!(p.resume(), Step::Fail);
        assert_eq!(p.resume(), Step::Fail);
    }

    #[test]
    fn pipe_runs_concurrently_with_consumer() {
        // The producer makes progress while the consumer merely watches:
        // the queue fills with buffered results before the first take.
        let p = Pipe::with_capacity(|| Box::new(to_range(1, 64, 1)), 64);
        testkit::wait_until("producer ran ahead", || !p.queue().is_empty());
        assert_eq!(ints(&drain(p)), (1..=64).collect::<Vec<_>>());
    }

    /// An infinite counting source that records its progress in `progress`.
    fn counting_src(progress: Var) -> impl Fn() -> BoxGen + Send + Sync + 'static {
        move || {
            let progress = progress.clone();
            let counter = std::sync::Arc::new(std::sync::atomic::AtomicI64::new(0));
            Box::new(gde::comb::repeat_alt(thunk(move || {
                let n = counter.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                progress.set(Value::from(n));
                Some(Value::from(n))
            }))) as BoxGen
        }
    }

    #[test]
    fn capacity_throttles_producer() {
        let progress = Var::new(Value::from(0));
        // batch(1): item-at-a-time transport, the pre-batching bound.
        let p = Pipe::batched(counting_src(progress.clone()), 4, 1);
        // Producer is unbounded but must stall within capacity + 1: wait
        // for it to park in `put` on the full queue, then check how far
        // it got. No consumer runs, so the parked state is stable.
        testkit::wait_until("producer throttled", || p.queue().blocked_producers() == 1);
        let ahead = progress.get().as_int().unwrap();
        assert!(
            ahead <= 5,
            "producer ran ahead of the bounded queue: {ahead}"
        );
        drop(p); // close unblocks the producer thread
    }

    #[test]
    fn capacity_throttles_batched_producer() {
        // With chunking the producer may additionally hold one local chunk
        // (clamped to capacity), so the run-ahead bound is
        // capacity + effective_batch + 1; the default batch (32) clamps to
        // the capacity (4) here.
        let progress = Var::new(Value::from(0));
        let p = Pipe::with_capacity(counting_src(progress.clone()), 4);
        assert_eq!(p.batch(), 4, "batch clamps to capacity");
        // Full queue + full local chunk: the producer parks in `put_all`.
        testkit::wait_until("producer throttled", || p.queue().blocked_producers() == 1);
        let ahead = progress.get().as_int().unwrap();
        assert!(
            ahead <= 4 + 4 + 1,
            "producer ran ahead of capacity + batch: {ahead}"
        );
        drop(p);
    }

    #[test]
    fn batch_sizes_preserve_sequence() {
        for batch in [1, 2, 7, 32, 1000] {
            let p = Pipe::batched(|| Box::new(to_range(1, 100, 1)), 16, batch);
            assert_eq!(
                ints(&drain(p)),
                (1..=100).collect::<Vec<_>>(),
                "batch {batch} changed the sequence"
            );
        }
    }

    #[test]
    fn staged_pipe_fuses_at_construction_and_survives_restart() {
        // The plan fuses once; each producer (re)spawn instantiates the
        // fused recipe over a fresh source, so restart re-evaluation holds.
        let plan = gde::comb::fuse::StagePlan::new()
            .map(|v| Value::from(v.as_int().unwrap() * 2))
            .filter(|v| v.as_int().unwrap() % 4 == 0);
        let mut p = Pipe::staged(|| Box::new(to_range(1, 10, 1)), &plan, 8, 4);
        let want: Vec<i64> = (1..=10).map(|i| i * 2).filter(|i| i % 4 == 0).collect();
        assert_eq!(ints(&p.collect_values()), want);
        Gen::restart(&mut p);
        assert_eq!(ints(&p.collect_values()), want);
    }

    #[test]
    fn with_batch_builder_respawns() {
        let p = pipe(|| Box::new(to_range(1, 10, 1))).with_batch(3);
        assert_eq!(p.batch(), 3);
        assert_eq!(ints(&drain(p)), (1..=10).collect::<Vec<_>>());
    }

    #[test]
    fn restart_discards_locally_buffered_chunk() {
        let mut p = Pipe::batched(|| Box::new(to_range(1, 9, 1)), 16, 4);
        // Consume one value: the consumer buffer now holds 2..=4.
        assert_eq!(p.next_value().and_then(|v| v.as_int()), Some(1));
        p.restart();
        assert_eq!(ints(&p.collect_values()), (1..=9).collect::<Vec<_>>());
    }

    #[test]
    fn chained_pipes_form_a_pipeline() {
        // stage 1: 1..10; stage 2: squares of stage-1 results; both threaded.
        let stage1 = || Box::new(to_range(1, 10, 1)) as BoxGen;
        let p2 = pipe(move || {
            let inner = pipe(stage1);
            Box::new(gde::comb::filter_map(inner, |v| gde::ops::mul(v, v)))
        });
        assert_eq!(
            ints(&drain(p2)),
            (1..=10).map(|i| i * i).collect::<Vec<_>>()
        );
    }

    #[test]
    fn restart_respawns_and_reevaluates() {
        let bound = Var::new(Value::from(3));
        let bound2 = bound.clone();
        let mut p = pipe(move || {
            let n = bound2.get().as_int().unwrap();
            Box::new(to_range(1, n, 1))
        });
        assert_eq!(ints(&p.collect_values()), vec![1, 2, 3]);
        bound.set(Value::from(5));
        p.restart();
        assert_eq!(ints(&p.collect_values()), vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn values_are_deep_copied_across_the_boundary() {
        let shared = Value::list(vec![Value::from(1)]);
        let shared2 = shared.clone();
        let p = pipe(move || Box::new(values(vec![shared2.clone()])));
        let got = drain(p);
        // Mutating the received list must not affect the producer's.
        if let Value::List(l) = &got[0] {
            l.lock().push(Value::from(2));
        }
        assert_eq!(shared.size(), Some(1));
    }

    #[test]
    fn pipe_of_coexpression() {
        let co = coexpr::CoExpr::first_class(|| Box::new(to_range(10, 13, 1))).into_ref();
        let p = pipe_coexpr(co, 8);
        assert_eq!(ints(&drain(p)), vec![10, 11, 12, 13]);
    }

    #[test]
    fn partially_consumed_coexpr_pipe_continues() {
        let co = coexpr::CoExpr::first_class(|| Box::new(to_range(1, 5, 1))).into_ref();
        co.lock().step(); // consume 1 before piping
        let p = pipe_coexpr(co, 8);
        assert_eq!(ints(&drain(p)), vec![2, 3, 4, 5]);
    }

    #[test]
    fn spawn_future_resolves() {
        let f = spawn_future(|| Some(Value::from(42)));
        assert_eq!(f.get().as_int(), Some(42));
        assert!(f.is_set());
    }

    #[test]
    fn dropping_unconsumed_pipe_does_not_hang() {
        // An infinite producer must be reaped when the pipe is dropped.
        let p = Pipe::with_capacity(
            || Box::new(gde::comb::repeat_alt(thunk(|| Some(Value::from(1))))),
            2,
        );
        // Wait until the producer is genuinely parked on the full queue so
        // the drop exercises the close-wakes-blocked-put path every run.
        testkit::wait_until("producer parked", || p.queue().blocked_producers() == 1);
        drop(p);
        // Reaching here without deadlock is the assertion: drop closes the
        // queue, which fails the pending put and reaps the producer.
    }

    #[test]
    fn panicking_producer_ends_the_stream() {
        // Failure injection: the producer's generator panics mid-stream;
        // the consumer must see the values so far and then end-of-stream,
        // never a hang.
        let counter = std::sync::Arc::new(std::sync::atomic::AtomicI64::new(0));
        let c2 = counter.clone();
        let mut p = pipe(move || {
            let c = c2.clone();
            Box::new(gde::comb::repeat_alt(thunk(move || {
                let n = c.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                assert!(n < 3, "injected producer failure");
                Some(Value::from(n))
            })))
        });
        let got = ints(&p.collect_values());
        assert!(got.len() <= 3, "got {got:?}");
        assert_eq!(p.resume(), Step::Fail); // stream is closed, not hung
    }

    #[test]
    fn pipe_composes_with_product() {
        // x * !(|> y): cross product where the right factor is threaded.
        let g = gde::comb::product_map(
            to_range(1, 2, 1),
            |_| pipe(|| Box::new(to_range(10, 11, 1))).boxed(),
            gde::ops::mul,
        );
        let mut g = g;
        assert_eq!(ints(&g.collect_values()), vec![10, 11, 20, 22]);
    }
}
