//! Generator proxies ("pipes"): `|> e` from the paper's calculus (Fig. 1).
//!
//! "A pipe is simply a generator proxy for a co-expression that runs in a
//! separate thread and iterates until failure, and that uses a blocking
//! channel for the communication of results" (Sec. III.B):
//!
//! ```text
//! |>e → new Iterator() { next() { new Thread { run() {
//!    c=|<>e; while (!fail) { out.put(@c); }}}.start() }}
//! ```
//!
//! A [`Pipe`] spawns its producer thread on creation; the consuming side is
//! an ordinary [`gde::Gen`], so pipes compose with every other combinator —
//! `x * !(|> factorial(!(|> sqrt(y))))` really is a two-stage parallel
//! pipeline. Values are [deep-copied](gde::Value::deep_copy) as they enter
//! the channel, so the consumer can never alias the producer's structures
//! (the isolation the paper otherwise gets from environment shadowing).
//!
//! The output queue "is exposed as a public field to permit further
//! manipulation" — here via [`Pipe::queue`] — and "bounding the output queue
//! buffer size can also be used to throttle a threaded co-expression" — via
//! [`Pipe::with_capacity`].

/// Expands its body only when the `obs` feature is on (see the identical
/// shim in `blockingq`): instrumentation sites vanish entirely when
/// observability is disabled.
#[cfg(feature = "obs")]
macro_rules! obs_on {
    ($($body:tt)*) => { $($body)* };
}
#[cfg(not(feature = "obs"))]
macro_rules! obs_on {
    ($($body:tt)*) => {};
}

mod fan;
mod pipe;
#[cfg(feature = "obs")]
mod stats;

pub use fan::{merge, round_robin, Merge, RoundRobin, MERGE_BATCH_FAIRNESS_CAP};
pub use pipe::{
    drain, pipe, pipe_coexpr, pipe_value, spawn_future, Pipe, DEFAULT_BATCH, DEFAULT_CAPACITY,
};
