//! Generator proxies ("pipes"): `|> e` from the paper's calculus (Fig. 1).
//!
//! "A pipe is simply a generator proxy for a co-expression that runs in a
//! separate thread and iterates until failure, and that uses a blocking
//! channel for the communication of results" (Sec. III.B):
//!
//! ```text
//! |>e → new Iterator() { next() { new Thread { run() {
//!    c=|<>e; while (!fail) { out.put(@c); }}}.start() }}
//! ```
//!
//! A [`Pipe`] spawns its producer thread on creation; the consuming side is
//! an ordinary [`gde::Gen`], so pipes compose with every other combinator —
//! `x * !(|> factorial(!(|> sqrt(y))))` really is a two-stage parallel
//! pipeline. Values are [deep-copied](gde::Value::deep_copy) as they enter
//! the channel, so the consumer can never alias the producer's structures
//! (the isolation the paper otherwise gets from environment shadowing).
//!
//! The output queue "is exposed as a public field to permit further
//! manipulation" — here via [`Pipe::queue`] — and "bounding the output queue
//! buffer size can also be used to throttle a threaded co-expression" — via
//! [`Pipe::with_capacity`].

/// Expands its body only when the `obs` feature is on (see the identical
/// shim in `blockingq`): instrumentation sites vanish entirely when
/// observability is disabled.
#[cfg(feature = "obs")]
macro_rules! obs_on {
    ($($body:tt)*) => { $($body)* };
}
#[cfg(not(feature = "obs"))]
macro_rules! obs_on {
    ($($body:tt)*) => {};
}

/// A deterministic fault-injection site (see the `faultinj` crate): a
/// no-op unless this crate's `faultinj` feature is on *and* the site is
/// armed, in which case it panics and the panic takes the normal
/// containment path (producer `catch_unwind` → `Failed(Fault)` close).
#[cfg(feature = "faultinj")]
macro_rules! faultpoint {
    ($site:expr) => {
        faultinj::hit($site)
    };
}
#[cfg(not(feature = "faultinj"))]
macro_rules! faultpoint {
    ($site:expr) => {};
}

mod fan;
mod pipe;
#[cfg(feature = "obs")]
mod stats;

pub use blockingq::{CloseCause, Fault};
pub use fan::{merge, round_robin, FanPolicy, Merge, RoundRobin, MERGE_BATCH_FAIRNESS_CAP};
pub use pipe::{
    drain, pipe, pipe_coexpr, pipe_value, spawn_future, FaultPolicy, Pipe, DEFAULT_BATCH,
    DEFAULT_CAPACITY,
};

/// Force-create this crate's metric families (and the queue substrate's)
/// so snapshots carry explicit zeros before any pipe runs. No-op without
/// the `obs` feature.
pub fn obs_register() {
    #[cfg(feature = "obs")]
    {
        stats::pipe();
        stats::fan();
    }
    blockingq::obs_register();
}
