//! Fusion × fan-in fairness regressions.
//!
//! Stage fusion collapses a multi-node combinator chain into a single
//! [`gde::comb::fuse::Apply`] node, so a fan-in source that used to be a
//! deep tree is now one hot generator. That must not change the fairness
//! story:
//!
//! * the [`pipes::MERGE_BATCH_FAIRNESS_CAP`] clamp still applies — a fused
//!   source is *faster*, not *privileged*, and may not move more than the
//!   cap per queue transaction however large a batch is requested;
//! * [`pipes::round_robin`] still charges one visit per source per round —
//!   a fused source draining quickly produces the same pinned skip count
//!   as its unfused equivalent, so fusion cannot starve the interleave.
//!
//! The skip-count test is obs-gated and measures counter deltas; it lives
//! in this integration-test binary so no other round-robin traffic shares
//! the process-global registry, and nothing else in this file touches the
//! `pipes.fan.rr_*` counters.

use gde::comb::fuse::StagePlan;
use gde::comb::to_range;
use gde::{BoxGen, Gen, GenExt, Step, Value};
use pipes::{merge, round_robin, MERGE_BATCH_FAIRNESS_CAP};

/// A fused single-stage source factory: one `Apply` node over a range,
/// mapping each value into a distinct per-source band so arrival streams
/// can be told apart.
fn fused_band_source(band: i64, len: i64) -> Box<dyn Fn() -> BoxGen + Send + Sync> {
    let fused = StagePlan::new()
        .map(move |v| Value::from(band * 1000 + v.as_int().unwrap_or(0)))
        .fuse();
    Box::new(move || fused.instantiate(Box::new(to_range(1, len, 1))))
}

#[test]
fn fairness_cap_clamps_fused_single_stage_sources() {
    // An absurd batch request over fused sources must still clamp to the
    // fairness cap: fusion makes the producer hot enough to fill any batch
    // it is granted, which is exactly when the cap matters.
    let m = merge(
        vec![
            fused_band_source(1, 40),
            fused_band_source(2, 40),
            fused_band_source(3, 40),
        ],
        64,
    )
    .with_batch(1000);
    assert_eq!(m.batch(), MERGE_BATCH_FAIRNESS_CAP);

    let mut m = m;
    let mut got: Vec<i64> = m
        .collect_values()
        .iter()
        .filter_map(|v| v.as_int())
        .collect();
    got.sort_unstable();
    let mut want: Vec<i64> = Vec::new();
    for band in 1..=3 {
        want.extend((1..=40).map(|n| band * 1000 + n));
    }
    assert_eq!(got, want, "clamped fused merge lost or duplicated values");
}

#[test]
fn with_batch_after_start_takes_effect_for_fused_sources() {
    // Regression companion to the in-crate test: the post-start builder
    // call must respawn producers rather than silently keeping the old
    // transport, including when the sources are fused plans (whose Arc'd
    // closures must survive the respawn).
    let mut m = merge(vec![fused_band_source(7, 20)], 16);
    assert!(matches!(m.resume(), Step::Suspend(_)), "producer running");
    let mut m = m.with_batch(5);
    assert_eq!(m.batch(), 5);
    let got: Vec<i64> = m
        .collect_values()
        .iter()
        .filter_map(|v| v.as_int())
        .collect();
    let want: Vec<i64> = (1..=20).map(|n| 7000 + n).collect();
    let mut sorted = got.clone();
    sorted.sort_unstable();
    assert_eq!(sorted, want, "respawned fused producer must replay fully");
}

#[test]
fn round_robin_skip_counts_are_identical_fused_and_unfused() {
    // Pin the RR bookkeeping: a short source (1 value) next to a long one
    // (4 values). After the short source fails in round 3, every later
    // round charges it one skip — three in total:
    //   r1: A→v, B→v   r2: (A fail), B→v   r3: skip, B→v
    //   r4: skip, B→v  r5: skip, B fail → stream ends.
    // Fusion must not change this: the fused source is one node, but RR
    // charges visits per *source*, not per combinator depth.
    let fused_short = StagePlan::new()
        .map(|v| Value::from(v.as_int().unwrap_or(0) * 2))
        .filter(|_| true)
        .fuse();
    let fused_long = fused_short.clone();

    let run = |a: BoxGen, b: BoxGen| -> (Vec<i64>, u64) {
        #[cfg(feature = "obs")]
        let skips_before = obs::counter("pipes.fan.rr_skips").get();
        let mut rr = round_robin(vec![a, b]);
        let out: Vec<i64> = rr
            .collect_values()
            .iter()
            .filter_map(|v| v.as_int())
            .collect();
        #[cfg(feature = "obs")]
        let skips = obs::counter("pipes.fan.rr_skips").get() - skips_before;
        #[cfg(not(feature = "obs"))]
        let skips = 0u64;
        (out, skips)
    };

    let (out_fused, skips_fused) = run(
        fused_short.instantiate(Box::new(to_range(1, 1, 1))),
        fused_long.instantiate(Box::new(to_range(10, 13, 1))),
    );
    // The unfused reference: the same map + pass-all-filter chain built
    // as two separate filter_map nodes.
    let unfused = |lo: i64, hi: i64| -> BoxGen {
        Box::new(gde::comb::filter_map(
            gde::comb::filter_map(to_range(lo, hi, 1), |v| Some(Value::from(v.as_int()? * 2))),
            |v| Some(v.clone()),
        ))
    };
    let (out_unfused, skips_unfused) = run(unfused(1, 1), unfused(10, 13));

    assert_eq!(out_fused, vec![2, 20, 22, 24, 26]);
    assert_eq!(out_fused, out_unfused, "fusion changed the RR interleave");
    #[cfg(feature = "obs")]
    {
        assert_eq!(skips_fused, 3, "fused RR skip count drifted");
        assert_eq!(
            skips_fused, skips_unfused,
            "fusion changed RR fairness accounting"
        );
    }
    #[cfg(not(feature = "obs"))]
    let _ = (skips_fused, skips_unfused);
}
