//! Edge-case tests for `pipes::fan::{merge, round_robin}` (ISSUE 1
//! satellite): zero sources, single exhausted source, and capacity-1
//! throttling including mid-stream abandonment.

use gde::comb::{fail, to_range};
use gde::{BoxGen, Gen, GenExt, Step};
use pipes::{merge, round_robin};

fn range_src(lo: i64, hi: i64) -> Box<dyn Fn() -> BoxGen + Send + Sync> {
    Box::new(move || Box::new(to_range(lo, hi, 1)) as BoxGen)
}

fn drain_ints(g: &mut (impl Gen + ?Sized)) -> Vec<i64> {
    g.collect_values()
        .iter()
        .map(|v| v.as_int().expect("integer stream"))
        .collect()
}

// --- zero sources -----------------------------------------------------------

#[test]
fn merge_zero_sources_fails_and_stays_failed() {
    let mut m = merge(vec![], 1);
    // Failure must be stable under repeated resumption, not a one-shot.
    for _ in 0..3 {
        assert_eq!(m.resume(), Step::Fail);
    }
}

#[test]
fn round_robin_zero_sources_fails_and_stays_failed() {
    let mut rr = round_robin(vec![]);
    for _ in 0..3 {
        assert_eq!(rr.resume(), Step::Fail);
    }
}

#[test]
fn merge_zero_sources_restart_is_harmless() {
    let mut m = merge(vec![], 1);
    assert_eq!(m.resume(), Step::Fail);
    m.restart();
    assert_eq!(m.resume(), Step::Fail);
}

// --- single exhausted source ------------------------------------------------

#[test]
fn merge_single_exhausted_source_terminates() {
    let mut m = merge(vec![Box::new(|| Box::new(fail()) as BoxGen)], 1);
    assert_eq!(m.resume(), Step::Fail);
    assert_eq!(m.resume(), Step::Fail);
}

#[test]
fn merge_all_sources_exhausted_terminates() {
    let mut m = merge(
        vec![
            Box::new(|| Box::new(fail()) as BoxGen),
            Box::new(|| Box::new(fail()) as BoxGen),
            Box::new(|| Box::new(fail()) as BoxGen),
        ],
        1,
    );
    assert_eq!(drain_ints(&mut m), Vec::<i64>::new());
}

#[test]
fn round_robin_single_exhausted_source_terminates() {
    let mut rr = round_robin(vec![Box::new(fail()) as BoxGen]);
    assert_eq!(rr.resume(), Step::Fail);
    assert_eq!(rr.resume(), Step::Fail);
}

#[test]
fn round_robin_exhausted_source_between_live_ones() {
    // The dead middle source must be skipped without disturbing the
    // deterministic interleave of its neighbours.
    let mut rr = round_robin(vec![
        Box::new(to_range(1, 2, 1)) as BoxGen,
        Box::new(fail()) as BoxGen,
        Box::new(to_range(10, 20, 10)) as BoxGen,
    ]);
    assert_eq!(drain_ints(&mut rr), vec![1, 10, 2, 20]);
}

#[test]
fn round_robin_single_exhausted_source_restarts_fresh() {
    // A one-shot source fails immediately; restart() revives it.
    let mut rr = round_robin(vec![Box::new(to_range(5, 5, 1)) as BoxGen]);
    assert_eq!(drain_ints(&mut rr), vec![5]);
    assert_eq!(rr.resume(), Step::Fail);
    rr.restart();
    assert_eq!(drain_ints(&mut rr), vec![5]);
}

// --- capacity-1 throttling --------------------------------------------------

#[test]
fn merge_capacity_1_conserves_all_values() {
    // A 1-slot queue forces every producer to hand values over one at a
    // time; nothing may be lost or duplicated under that throttling.
    let mut m = merge(
        vec![range_src(1, 50), range_src(51, 100), range_src(101, 150)],
        1,
    );
    let mut got = drain_ints(&mut m);
    got.sort_unstable();
    assert_eq!(got, (1..=150).collect::<Vec<_>>());
}

#[test]
fn merge_capacity_zero_is_clamped_to_one() {
    // Capacity 0 would deadlock a put-before-take queue; merge clamps it.
    let mut m = merge(vec![range_src(1, 10)], 0);
    let mut got = drain_ints(&mut m);
    got.sort_unstable();
    assert_eq!(got, (1..=10).collect::<Vec<_>>());
}

#[test]
fn merge_capacity_1_slow_consumer_still_conserves() {
    let mut m = merge(vec![range_src(1, 12), range_src(13, 24)], 1);
    let mut got = Vec::new();
    // Yield between takes so the producers get scheduled and park on the
    // full queue repeatedly — schedule pressure, not wall-clock delay.
    while let Step::Suspend(v) = m.resume() {
        got.push(v.as_int().expect("int"));
        for _ in 0..4 {
            std::thread::yield_now();
        }
    }
    got.sort_unstable();
    assert_eq!(got, (1..=24).collect::<Vec<_>>());
}

#[test]
fn merge_capacity_1_abandoned_midstream_shuts_down_producers() {
    // Take a couple of values from a long stream, then drop the merge:
    // producers blocked in put() must observe the closed queue and exit
    // rather than deadlock. The test finishing (under the harness
    // timeout) is the assertion — drop closes the queue, which fails the
    // producers' pending puts. The schedtest model suite proves the
    // close-under-fire wakeup exhaustively; no wall-clock grace needed.
    let mut m = merge(vec![range_src(1, 100_000), range_src(1, 100_000)], 1);
    let mut seen = 0;
    while seen < 3 {
        match m.resume() {
            Step::Suspend(_) => seen += 1,
            Step::Fail => panic!("stream ended early"),
        }
    }
    drop(m);
}

#[test]
fn merge_capacity_1_restart_midstream_replays() {
    // restart() closes the old queue (unblocking throttled producers)
    // and spawns a fresh run on next resume.
    let mut m = merge(vec![range_src(1, 30)], 1);
    for _ in 0..5 {
        assert!(matches!(m.resume(), Step::Suspend(_)));
    }
    m.restart();
    let mut got = drain_ints(&mut m);
    got.sort_unstable();
    assert_eq!(got, (1..=30).collect::<Vec<_>>());
}
