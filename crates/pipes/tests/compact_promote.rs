//! Pipe-crossing stress for the compact-value promote hatch.
//!
//! The producer thread isolates every value with `Value::deep_copy`
//! before it enters the queue, which promotes borrowed [`Value::slice`]
//! handles to owned form. These tests drive slice-producing pipelines
//! through the batched transport — including mid-stream restarts and
//! close-under-fire schedules — and assert the consumer side never
//! observes a borrowed handle and always reads the right text.

use gde::comb::fuse::StagePlan;
use gde::comb::values;
use gde::{BoxGen, Gen, GenExt, Step, Value};
use pipes::Pipe;
use std::sync::Arc;

/// A generator that slices one shared line buffer into word windows —
/// the `WordSplit` shape, self-contained for this crate's tests.
struct SliceWords {
    line: Arc<str>,
    pos: usize,
}

impl Gen for SliceWords {
    fn resume(&mut self) -> Step {
        let bytes = self.line.as_bytes();
        let mut start = self.pos;
        while start < bytes.len() && bytes[start] == b' ' {
            start += 1;
        }
        if start >= bytes.len() {
            self.pos = bytes.len();
            return Step::Fail;
        }
        let mut end = start;
        while end < bytes.len() && bytes[end] != b' ' {
            end += 1;
        }
        self.pos = end;
        Step::Suspend(Value::slice(self.line.clone(), start, end))
    }
    fn restart(&mut self) {
        self.pos = 0;
    }
}

fn line_of(n: usize) -> Arc<str> {
    let words: Vec<String> = (0..n).map(|i| format!("w{i}")).collect();
    Arc::from(words.join(" ").as_str())
}

fn assert_owned_words(got: &[Value], want_count: usize, tag: &str) {
    assert_eq!(got.len(), want_count, "{tag}: wrong word count");
    for (i, v) in got.iter().enumerate() {
        assert!(
            !matches!(v, Value::Slice(_)),
            "{tag}: a borrowed handle crossed the pipe"
        );
        assert_eq!(
            v.as_str(),
            Some(format!("w{i}").as_str()),
            "{tag}: word {i}"
        );
    }
}

#[test]
fn slices_cross_the_pipe_promoted() {
    // Every delivered value is owned: nothing the consumer receives can
    // pin the producer's line buffer. (Arena release itself is proven
    // deterministically in gde/tests/promote_prop.rs — here the factory
    // and producer thread own the line, and when they drop is a
    // scheduling detail.)
    let line = line_of(100);
    let mk = move || {
        Box::new(SliceWords {
            line: line.clone(),
            pos: 0,
        }) as BoxGen
    };
    let p = Pipe::with_capacity(mk, 8);
    let got = pipes::drain(p);
    assert_owned_words(&got, 100, "plain pipe");
}

#[test]
fn staged_pipe_promotes_through_fused_stages() {
    // Slices flow through a fused monogenic run before the thread
    // boundary: promotion happens at the boundary, not per stage.
    let line = line_of(50);
    let mk = move || {
        Box::new(SliceWords {
            line: line.clone(),
            pos: 0,
        }) as BoxGen
    };
    let plan = StagePlan::new()
        .filter(|v| v.as_str().is_some_and(|s| !s.is_empty()))
        .map(|v| v.clone());
    let p = Pipe::staged(mk, &plan, 8, 4);
    let got = pipes::drain(p);
    assert_owned_words(&got, 50, "staged pipe");
}

#[test]
fn restart_replay_delivers_promoted_values_every_time() {
    // Restart respawns the producer over a fresh generator tree; every
    // replay must deliver owned values with identical text.
    let line = line_of(30);
    let mk = move || {
        Box::new(SliceWords {
            line: line.clone(),
            pos: 0,
        }) as BoxGen
    };
    let mut p = Pipe::with_capacity(mk, 4).with_batch(4);
    for replay in 0..3 {
        let mut got = Vec::new();
        while let Some(v) = p.next_value() {
            got.push(v);
        }
        assert_owned_words(&got, 30, &format!("replay {replay}"));
        Gen::restart(&mut p);
    }
}

#[test]
fn close_under_fire_never_leaks_borrowed_handles() {
    // Restart the pipe mid-stream at varying depths while the producer is
    // still firing: whatever prefix was consumed, plus the full replay
    // after the final restart, contains only owned values.
    for cut in [0usize, 1, 7, 23] {
        let line = line_of(40);
        let mk = move || {
            Box::new(SliceWords {
                line: line.clone(),
                pos: 0,
            }) as BoxGen
        };
        let mut p = Pipe::with_capacity(mk, 2).with_batch(3);
        let mut prefix = Vec::new();
        for _ in 0..cut {
            match p.next_value() {
                Some(v) => prefix.push(v),
                None => break,
            }
        }
        for v in &prefix {
            assert!(
                !matches!(v, Value::Slice(_)),
                "cut {cut}: borrowed handle in consumed prefix"
            );
        }
        // Close the running producer and replay from the top.
        Gen::restart(&mut p);
        let mut got = Vec::new();
        while let Some(v) = p.next_value() {
            got.push(v);
        }
        assert_owned_words(&got, 40, &format!("post-restart cut {cut}"));
    }
}

#[test]
fn mixed_compact_forms_cross_intact() {
    // Sym and Slice and Str all cross the boundary with their text (and
    // non-slice forms keep their representation — only Slice rewrites).
    let line: Arc<str> = Arc::from("alpha beta gamma");
    let mk = move || {
        Box::new(values(vec![
            Value::slice(line.clone(), 0, 5),
            Value::interned("beta"),
            Value::str("gamma"),
        ])) as BoxGen
    };
    let got = pipes::drain(Pipe::with_capacity(mk, 4));
    assert_eq!(got.len(), 3);
    assert_eq!(got[0].as_str(), Some("alpha"));
    assert!(!matches!(got[0], Value::Slice(_)));
    assert!(matches!(got[1], Value::Sym(_)), "Sym crosses as Sym");
    assert!(matches!(got[2], Value::Str(_)), "Str crosses as Str");
    assert_eq!(got[1].as_str(), Some("beta"));
    assert_eq!(got[2].as_str(), Some("gamma"));
}
