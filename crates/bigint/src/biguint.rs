//! Unsigned arbitrary-precision integers on little-endian 64-bit limbs.

use core::cmp::Ordering;
use core::fmt;
use core::ops::{Add, AddAssign, BitAnd, Div, Mul, Rem, Shl, Shr, Sub};

/// An arbitrary-precision unsigned integer.
///
/// The representation is a little-endian vector of 64-bit limbs with no
/// trailing zero limbs; zero is the empty vector. All arithmetic is exact.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct BigUint {
    pub(crate) limbs: Vec<u64>,
}

impl BigUint {
    /// The value `0`.
    pub fn zero() -> Self {
        BigUint { limbs: Vec::new() }
    }

    /// The value `1`.
    pub fn one() -> Self {
        BigUint { limbs: vec![1] }
    }

    /// True iff the value is `0`.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// True iff the value is `1`.
    pub fn is_one(&self) -> bool {
        self.limbs.len() == 1 && self.limbs[0] == 1
    }

    /// True iff the value is even (zero is even).
    pub fn is_even(&self) -> bool {
        self.limbs.first().is_none_or(|l| l & 1 == 0)
    }

    /// Construct from raw little-endian limbs, stripping trailing zeros.
    pub fn from_limbs(mut limbs: Vec<u64>) -> Self {
        while limbs.last() == Some(&0) {
            limbs.pop();
        }
        BigUint { limbs }
    }

    /// The little-endian limb slice (no trailing zeros).
    pub fn limbs(&self) -> &[u64] {
        &self.limbs
    }

    /// Number of significant bits; `0` has zero bits.
    pub fn bits(&self) -> u64 {
        match self.limbs.last() {
            None => 0,
            Some(hi) => (self.limbs.len() as u64 - 1) * 64 + (64 - hi.leading_zeros() as u64),
        }
    }

    /// Value of bit `i` (little-endian bit numbering).
    pub fn bit(&self, i: u64) -> bool {
        let limb = (i / 64) as usize;
        self.limbs
            .get(limb)
            .is_some_and(|l| (l >> (i % 64)) & 1 == 1)
    }

    /// Returns `self` if it fits in a `u64`.
    pub fn to_u64(&self) -> Option<u64> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0]),
            _ => None,
        }
    }

    /// Returns `self` if it fits in a `u128`.
    pub fn to_u128(&self) -> Option<u128> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0] as u128),
            2 => Some((self.limbs[1] as u128) << 64 | self.limbs[0] as u128),
            _ => None,
        }
    }

    /// Lossy conversion to `f64` (rounds; very large values become `inf`).
    pub fn to_f64(&self) -> f64 {
        match self.limbs.len() {
            0 => 0.0,
            1 => self.limbs[0] as f64,
            2 => (self.limbs[1] as u128) as f64 * 2f64.powi(64) + self.limbs[0] as f64,
            n => {
                // Use the top 128 bits and scale by the remaining bit count.
                let hi = (self.limbs[n - 1] as u128) << 64 | self.limbs[n - 2] as u128;
                hi as f64 * 2f64.powi(64 * (n as i32 - 2))
            }
        }
    }

    /// Three-way comparison of magnitudes.
    pub fn cmp_mag(&self, other: &Self) -> Ordering {
        match self.limbs.len().cmp(&other.limbs.len()) {
            Ordering::Equal => {
                for (a, b) in self.limbs.iter().rev().zip(other.limbs.iter().rev()) {
                    match a.cmp(b) {
                        Ordering::Equal => continue,
                        ord => return ord,
                    }
                }
                Ordering::Equal
            }
            ord => ord,
        }
    }

    /// `self + other`.
    pub fn add_ref(&self, other: &Self) -> Self {
        let (long, short) = if self.limbs.len() >= other.limbs.len() {
            (&self.limbs, &other.limbs)
        } else {
            (&other.limbs, &self.limbs)
        };
        let mut out = Vec::with_capacity(long.len() + 1);
        let mut carry = 0u64;
        let mut short_iter = short.iter().copied().chain(std::iter::repeat(0));
        for &a in long.iter() {
            let b = short_iter.next().expect("repeat(0) is endless");
            let (s1, c1) = a.overflowing_add(b);
            let (s2, c2) = s1.overflowing_add(carry);
            out.push(s2);
            carry = (c1 as u64) + (c2 as u64);
        }
        if carry != 0 {
            out.push(carry);
        }
        BigUint::from_limbs(out)
    }

    /// `self - other`; returns `None` if `other > self`.
    pub fn checked_sub_ref(&self, other: &Self) -> Option<Self> {
        if self.cmp_mag(other) == Ordering::Less {
            return None;
        }
        let mut out = Vec::with_capacity(self.limbs.len());
        let mut borrow = 0u64;
        for i in 0..self.limbs.len() {
            let b = other.limbs.get(i).copied().unwrap_or(0);
            let (d1, b1) = self.limbs[i].overflowing_sub(b);
            let (d2, b2) = d1.overflowing_sub(borrow);
            out.push(d2);
            borrow = (b1 as u64) + (b2 as u64);
        }
        debug_assert_eq!(borrow, 0);
        Some(BigUint::from_limbs(out))
    }

    /// `self * other` (schoolbook).
    pub fn mul_ref(&self, other: &Self) -> Self {
        if self.is_zero() || other.is_zero() {
            return BigUint::zero();
        }
        let mut out = vec![0u64; self.limbs.len() + other.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            if a == 0 {
                continue;
            }
            let mut carry = 0u128;
            for (j, &b) in other.limbs.iter().enumerate() {
                let t = a as u128 * b as u128 + out[i + j] as u128 + carry;
                out[i + j] = t as u64;
                carry = t >> 64;
            }
            let mut k = i + other.limbs.len();
            while carry != 0 {
                let t = out[k] as u128 + carry;
                out[k] = t as u64;
                carry = t >> 64;
                k += 1;
            }
        }
        BigUint::from_limbs(out)
    }

    /// Multiply in place by a single limb and add a single-limb carry.
    pub(crate) fn mul_add_small(&mut self, m: u64, a: u64) {
        let mut carry = a as u128;
        for l in self.limbs.iter_mut() {
            let t = *l as u128 * m as u128 + carry;
            *l = t as u64;
            carry = t >> 64;
        }
        while carry != 0 {
            self.limbs.push(carry as u64);
            carry >>= 64;
        }
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    /// Divide by a single limb in place, returning the remainder.
    ///
    /// # Panics
    /// Panics if `d == 0`.
    pub(crate) fn div_rem_small(&mut self, d: u64) -> u64 {
        assert!(d != 0, "division by zero");
        let mut rem = 0u128;
        for l in self.limbs.iter_mut().rev() {
            let cur = rem << 64 | *l as u128;
            *l = (cur / d as u128) as u64;
            rem = cur % d as u128;
        }
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
        rem as u64
    }

    /// Quotient and remainder of `self / other` (Knuth Algorithm D).
    ///
    /// # Panics
    /// Panics if `other` is zero.
    pub fn div_rem(&self, other: &Self) -> (Self, Self) {
        assert!(!other.is_zero(), "division by zero");
        match self.cmp_mag(other) {
            Ordering::Less => return (BigUint::zero(), self.clone()),
            Ordering::Equal => return (BigUint::one(), BigUint::zero()),
            Ordering::Greater => {}
        }
        if other.limbs.len() == 1 {
            let mut q = self.clone();
            let r = q.div_rem_small(other.limbs[0]);
            return (q, BigUint::from(r));
        }
        // Knuth TAOCP Vol. 2, 4.3.1, Algorithm D, with 64-bit limbs.
        let shift = other.limbs.last().unwrap().leading_zeros();
        let v = other.shl_bits(shift as u64);
        let mut u = self.shl_bits(shift as u64).limbs;
        u.push(0); // room for the extra high limb
        let n = v.limbs.len();
        let m = u.len() - n - 1;
        let v_hi = v.limbs[n - 1];
        let v_next = v.limbs[n - 2];
        let mut q = vec![0u64; m + 1];
        for j in (0..=m).rev() {
            // Estimate q_hat from the top two limbs of u and the top limb of v.
            let top = (u[j + n] as u128) << 64 | u[j + n - 1] as u128;
            let mut q_hat = top / v_hi as u128;
            let mut r_hat = top % v_hi as u128;
            // Correct q_hat down to at most off-by-one.
            while q_hat >> 64 != 0 || q_hat * v_next as u128 > (r_hat << 64 | u[j + n - 2] as u128)
            {
                q_hat -= 1;
                r_hat += v_hi as u128;
                if r_hat >> 64 != 0 {
                    break;
                }
            }
            // Multiply-and-subtract: u[j..j+n+1] -= q_hat * v.
            let mut borrow = 0i128;
            let mut carry = 0u128;
            for i in 0..n {
                let p = q_hat * v.limbs[i] as u128 + carry;
                carry = p >> 64;
                let t = u[j + i] as i128 - (p as u64) as i128 + borrow;
                u[j + i] = t as u64;
                borrow = t >> 64; // arithmetic shift: 0 or -1
            }
            let t = u[j + n] as i128 - carry as i128 + borrow;
            u[j + n] = t as u64;
            if t < 0 {
                // q_hat was one too large: add v back and decrement.
                q_hat -= 1;
                let mut c = 0u128;
                for i in 0..n {
                    let s = u[j + i] as u128 + v.limbs[i] as u128 + c;
                    u[j + i] = s as u64;
                    c = s >> 64;
                }
                u[j + n] = u[j + n].wrapping_add(c as u64);
            }
            q[j] = q_hat as u64;
        }
        let rem = BigUint::from_limbs(u[..n].to_vec()).shr_bits(shift as u64);
        (BigUint::from_limbs(q), rem)
    }

    /// `self << bits`.
    pub fn shl_bits(&self, bits: u64) -> Self {
        if self.is_zero() || bits == 0 {
            return self.clone();
        }
        let limb_shift = (bits / 64) as usize;
        let bit_shift = bits % 64;
        let mut out = vec![0u64; limb_shift];
        if bit_shift == 0 {
            out.extend_from_slice(&self.limbs);
        } else {
            let mut carry = 0u64;
            for &l in &self.limbs {
                out.push(l << bit_shift | carry);
                carry = l >> (64 - bit_shift);
            }
            if carry != 0 {
                out.push(carry);
            }
        }
        BigUint::from_limbs(out)
    }

    /// `self >> bits`.
    pub fn shr_bits(&self, bits: u64) -> Self {
        let limb_shift = (bits / 64) as usize;
        if limb_shift >= self.limbs.len() {
            return BigUint::zero();
        }
        let bit_shift = bits % 64;
        let src = &self.limbs[limb_shift..];
        if bit_shift == 0 {
            return BigUint::from_limbs(src.to_vec());
        }
        let mut out = Vec::with_capacity(src.len());
        for i in 0..src.len() {
            let hi = src.get(i + 1).copied().unwrap_or(0);
            out.push(src[i] >> bit_shift | (hi << (64 - bit_shift)));
        }
        BigUint::from_limbs(out)
    }

    /// `self^exp` by repeated squaring (exact, can be huge).
    pub fn pow(&self, mut exp: u64) -> Self {
        let mut base = self.clone();
        let mut acc = BigUint::one();
        while exp > 0 {
            if exp & 1 == 1 {
                acc = acc.mul_ref(&base);
            }
            exp >>= 1;
            if exp > 0 {
                base = base.mul_ref(&base);
            }
        }
        acc
    }

    /// `self^exp mod m` by square-and-multiply.
    ///
    /// # Panics
    /// Panics if `m` is zero.
    pub fn modpow(&self, exp: &Self, m: &Self) -> Self {
        assert!(!m.is_zero(), "modpow with zero modulus");
        if m.is_one() {
            return BigUint::zero();
        }
        let mut base = self.div_rem(m).1;
        let mut acc = BigUint::one();
        let nbits = exp.bits();
        for i in 0..nbits {
            if exp.bit(i) {
                acc = acc.mul_ref(&base).div_rem(m).1;
            }
            if i + 1 < nbits {
                base = base.mul_ref(&base).div_rem(m).1;
            }
        }
        acc
    }

    /// Greatest common divisor (Euclid).
    pub fn gcd(&self, other: &Self) -> Self {
        let mut a = self.clone();
        let mut b = other.clone();
        while !b.is_zero() {
            let r = a.div_rem(&b).1;
            a = b;
            b = r;
        }
        a
    }
}

impl From<u64> for BigUint {
    fn from(v: u64) -> Self {
        if v == 0 {
            BigUint::zero()
        } else {
            BigUint { limbs: vec![v] }
        }
    }
}

impl From<u128> for BigUint {
    fn from(v: u128) -> Self {
        BigUint::from_limbs(vec![v as u64, (v >> 64) as u64])
    }
}

impl From<u32> for BigUint {
    fn from(v: u32) -> Self {
        BigUint::from(v as u64)
    }
}

impl PartialOrd for BigUint {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigUint {
    fn cmp(&self, other: &Self) -> Ordering {
        self.cmp_mag(other)
    }
}

impl Add for &BigUint {
    type Output = BigUint;
    fn add(self, rhs: &BigUint) -> BigUint {
        self.add_ref(rhs)
    }
}

impl Add for BigUint {
    type Output = BigUint;
    fn add(self, rhs: BigUint) -> BigUint {
        self.add_ref(&rhs)
    }
}

impl AddAssign<&BigUint> for BigUint {
    fn add_assign(&mut self, rhs: &BigUint) {
        *self = self.add_ref(rhs);
    }
}

impl Sub for &BigUint {
    type Output = BigUint;
    /// # Panics
    /// Panics on underflow.
    fn sub(self, rhs: &BigUint) -> BigUint {
        self.checked_sub_ref(rhs).expect("BigUint underflow")
    }
}

impl Sub for BigUint {
    type Output = BigUint;
    fn sub(self, rhs: BigUint) -> BigUint {
        &self - &rhs
    }
}

impl Mul for &BigUint {
    type Output = BigUint;
    fn mul(self, rhs: &BigUint) -> BigUint {
        self.mul_ref(rhs)
    }
}

impl Mul for BigUint {
    type Output = BigUint;
    fn mul(self, rhs: BigUint) -> BigUint {
        self.mul_ref(&rhs)
    }
}

impl Div for &BigUint {
    type Output = BigUint;
    fn div(self, rhs: &BigUint) -> BigUint {
        self.div_rem(rhs).0
    }
}

impl Rem for &BigUint {
    type Output = BigUint;
    fn rem(self, rhs: &BigUint) -> BigUint {
        self.div_rem(rhs).1
    }
}

impl Shl<u64> for &BigUint {
    type Output = BigUint;
    fn shl(self, bits: u64) -> BigUint {
        self.shl_bits(bits)
    }
}

impl Shr<u64> for &BigUint {
    type Output = BigUint;
    fn shr(self, bits: u64) -> BigUint {
        self.shr_bits(bits)
    }
}

impl BitAnd<u64> for &BigUint {
    type Output = u64;
    /// Masks the low limb: convenient for parity/window tests.
    fn bitand(self, mask: u64) -> u64 {
        self.limbs.first().copied().unwrap_or(0) & mask
    }
}

impl fmt::Debug for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigUint({})", self)
    }
}

impl fmt::Display for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_str_radix(10))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn big(s: &str) -> BigUint {
        BigUint::from_str_radix(s, 10).unwrap()
    }

    #[test]
    fn zero_and_one_identities() {
        assert!(BigUint::zero().is_zero());
        assert!(BigUint::one().is_one());
        assert_eq!(BigUint::zero().add_ref(&BigUint::one()), BigUint::one());
        assert_eq!(
            BigUint::from(7u64).mul_ref(&BigUint::one()),
            BigUint::from(7u64)
        );
        assert_eq!(
            BigUint::from(7u64).mul_ref(&BigUint::zero()),
            BigUint::zero()
        );
    }

    #[test]
    fn add_carries_across_limbs() {
        let a = BigUint::from(u64::MAX);
        let b = BigUint::one();
        let s = a.add_ref(&b);
        assert_eq!(s.limbs(), &[0, 1]);
        assert_eq!(s.bits(), 65);
    }

    #[test]
    fn sub_borrows_across_limbs() {
        let a = BigUint::from_limbs(vec![0, 1]); // 2^64
        let b = BigUint::one();
        assert_eq!(a.checked_sub_ref(&b).unwrap(), BigUint::from(u64::MAX));
        assert_eq!(b.checked_sub_ref(&a), None);
    }

    #[test]
    fn mul_known_values() {
        let a = big("123456789012345678901234567890");
        let b = big("987654321098765432109876543210");
        let p = a.mul_ref(&b);
        assert_eq!(
            p.to_str_radix(10),
            "121932631137021795226185032733622923332237463801111263526900"
        );
    }

    #[test]
    fn div_rem_small_divisor() {
        let a = big("123456789012345678901234567890");
        let (q, r) = a.div_rem(&BigUint::from(97u64));
        assert_eq!(
            q.mul_ref(&BigUint::from(97u64))
                .add_ref(&r)
                .to_str_radix(10),
            "123456789012345678901234567890"
        );
        assert!(r < BigUint::from(97u64));
    }

    #[test]
    fn div_rem_multi_limb() {
        let a = big("340282366920938463463374607431768211456123456789");
        let b = big("18446744073709551629"); // > 2^64, prime-ish
        let (q, r) = a.div_rem(&b);
        assert_eq!(q.mul_ref(&b).add_ref(&r), a);
        assert!(r.cmp_mag(&b) == Ordering::Less);
    }

    #[test]
    fn div_rem_requires_add_back() {
        // A case engineered to trigger the Algorithm D add-back branch:
        // u = b^2 * (b/2) where the quotient estimate overshoots.
        let b = BigUint::from_limbs(vec![0, 0, 1]); // 2^128
        let d = BigUint::from_limbs(vec![1, 1 << 63]); // 2^127 + 1... keep general
        let (q, r) = b.div_rem(&d);
        assert_eq!(q.mul_ref(&d).add_ref(&r), b);
        assert!(r.cmp_mag(&d) == Ordering::Less);
    }

    #[test]
    fn shifts_roundtrip() {
        let a = big("987654321987654321987654321");
        for bits in [0u64, 1, 7, 63, 64, 65, 130] {
            assert_eq!(a.shl_bits(bits).shr_bits(bits), a);
        }
    }

    #[test]
    fn shr_to_zero() {
        assert!(BigUint::from(5u64).shr_bits(3).is_zero());
        assert!(BigUint::zero().shr_bits(100).is_zero());
    }

    #[test]
    fn pow_and_modpow_agree() {
        let b = BigUint::from(7u64);
        let m = BigUint::from(1_000_003u64);
        let full = b.pow(20).div_rem(&m).1;
        let modp = b.modpow(&BigUint::from(20u64), &m);
        assert_eq!(full, modp);
    }

    #[test]
    fn modpow_fermat_little() {
        // a^(p-1) ≡ 1 (mod p) for prime p not dividing a.
        let p = big("1000000007");
        let a = big("123456789");
        let e = p.checked_sub_ref(&BigUint::one()).unwrap();
        assert!(a.modpow(&e, &p).is_one());
    }

    #[test]
    fn gcd_basics() {
        assert_eq!(big("48").gcd(&big("36")), big("12"));
        assert_eq!(big("17").gcd(&big("5")), BigUint::one());
        assert_eq!(big("0").gcd(&big("9")), big("9"));
    }

    #[test]
    fn to_f64_small_and_large() {
        assert_eq!(BigUint::from(12345u64).to_f64(), 12345.0);
        let big128 = BigUint::from(u128::MAX);
        let f = big128.to_f64();
        assert!((f - 3.402823669209385e38).abs() / f < 1e-10);
    }

    #[test]
    fn bit_queries() {
        let a = BigUint::from(0b1011u64);
        assert!(a.bit(0) && a.bit(1) && !a.bit(2) && a.bit(3) && !a.bit(64));
        assert!(!a.is_even());
        assert!(BigUint::from(4u64).is_even());
        assert!(BigUint::zero().is_even());
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(big("999999999999999999999") > big("999999999999999999998"));
        assert!(big("1") < big("18446744073709551616"));
        assert_eq!(big("42").cmp(&big("42")), Ordering::Equal);
    }

    #[test]
    fn u128_roundtrip() {
        let v = 0x0123_4567_89ab_cdef_fedc_ba98_7654_3210u128;
        assert_eq!(BigUint::from(v).to_u128(), Some(v));
        assert_eq!(BigUint::from(7u64).to_u64(), Some(7));
        assert_eq!(BigUint::from(u128::MAX).to_u64(), None);
    }
}
